// Cache-line / SIMD aligned storage for kernel data.
//
// Tensor payloads are aligned to 64 bytes so that AVX-512 loads of
// 16-float channel blocks (the nCdhw16c layout of dnn/conv3d) are always
// aligned, mirroring the alignment contract MKL-DNN imposes on its
// primitives.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>

namespace cf::runtime {

inline constexpr std::size_t kAlignment = 64;

/// Owning, 64-byte-aligned, uninitialized array of trivially
/// destructible elements. Move-only.
template <typename T>
class AlignedBuffer {
  static_assert(std::is_trivially_destructible_v<T>,
                "AlignedBuffer holds raw kernel data only");

 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t count) : size_(count) {
    if (count == 0) return;
    const std::size_t bytes = round_up(count * sizeof(T));
    data_ = static_cast<T*>(std::aligned_alloc(kAlignment, bytes));
    if (data_ == nullptr) throw std::bad_alloc{};
  }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(other.data_), size_(other.size_) {
    other.data_ = nullptr;
    other.size_ = 0;
  }

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = other.data_;
      size_ = other.size_;
      other.data_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }

  ~AlignedBuffer() { release(); }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }

 private:
  static std::size_t round_up(std::size_t bytes) {
    return (bytes + kAlignment - 1) / kAlignment * kAlignment;
  }

  void release() noexcept {
    std::free(data_);
    data_ = nullptr;
    size_ = 0;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace cf::runtime
