// Synchronous data-parallel step-time and scaling model (Fig 4).
//
// One SSGD step on n nodes costs
//
//   t_step(n) = max(t_compute, t_io(n)) + t_allreduce(n)
//
// because the input pipeline overlaps reads with gradient computation
// (so only the slower of the two shows) while the fully-synchronous
// gradient aggregation serializes after it. The allreduce follows the
// alpha-beta model of a ring/tree reduction that "communicates twice
// the message length" (§VI-B), with an effective per-node bandwidth
// that degrades slowly with scale — calibrated so 28.15 MB aggregates
// in 33 ms at 1024 nodes (1.7 GB/s/node) and 39 ms at 8192
// (1.42 GB/s/node), the paper's measurements.
//
// Epoch walltime adds the validation loop and per-epoch overheads the
// paper's "epoch" efficiency includes:
//
//   t_epoch(n) = (N_train / n) t_step(n) + (N_val / n) t_val(n) + c
//
// Speedups/efficiencies are epoch-time ratios against n = 1, exactly
// the paper's metric.
#pragma once

#include <vector>

#include "iosim/filesystem_model.hpp"

namespace cf::iosim {

struct StepModelParams {
  double compute_seconds = 0.129;    // single-node fwd+bwd+update (§VI-B)
  double sample_mbytes = 8.0;        // one 128^3 f32 sub-volume
  double gradient_mbytes = 28.15;    // model size (§V-A)
  /// Allreduce latency per log2(n) stage.
  double allreduce_alpha = 1e-4;
  /// Effective per-node bandwidth bw0 / (1 + beta * log2(n)).
  double allreduce_bw0_gbps = 4.96;
  double allreduce_beta = 0.1918;
  /// Validation forward pass relative to a training step.
  double validation_step_fraction = 0.33;
  /// Fixed per-epoch overhead (loss averaging, loop bookkeeping). The
  /// paper's 3.35 s epochs at 8192 nodes (20 steps of 168 ms) leave
  /// only a few tens of ms unaccounted.
  double epoch_overhead_seconds = 0.02;
};

struct ScalingPoint {
  int nodes = 0;
  double step_seconds = 0.0;
  double io_seconds = 0.0;
  double allreduce_seconds = 0.0;
  double epoch_seconds = 0.0;
  double speedup = 0.0;      // t_epoch(1) / t_epoch(n)
  double efficiency = 0.0;   // speedup / n
  double samples_per_second = 0.0;  // aggregate throughput
  double sustained_pflops = 0.0;    // with flops_per_sample
};

class StepTimeModel {
 public:
  StepTimeModel(StepModelParams params, FilesystemModel filesystem);

  const StepModelParams& params() const noexcept { return params_; }
  const FilesystemModel& filesystem() const noexcept { return filesystem_; }

  double allreduce_seconds(int nodes) const;
  double io_seconds(int nodes) const;
  double step_seconds(int nodes) const;

  /// Epoch walltime for a training set of `train_samples` and a
  /// validation set of `val_samples`.
  double epoch_seconds(int nodes, std::int64_t train_samples,
                       std::int64_t val_samples) const;

  /// Full sweep over `node_counts`; flops_per_sample feeds the
  /// sustained-Pflop/s column (69.33e9 for the canonical network).
  std::vector<ScalingPoint> sweep(const std::vector<int>& node_counts,
                                  std::int64_t train_samples,
                                  std::int64_t val_samples,
                                  double flops_per_sample) const;

 private:
  StepModelParams params_;
  FilesystemModel filesystem_;
};

}  // namespace cf::iosim
