#include "dnn/exec_context.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

#include "dnn/cost_model.hpp"
#include "dnn/network.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"

namespace cf::dnn {

using tensor::Tensor;

namespace {

// Below this many elements the parallel_for overhead exceeds the work.
constexpr std::size_t kSerialWorkLimit = 4096;

/// dst += src, elementwise — the deterministic fan-in gradient merge.
void accumulate_into(Tensor& dst, const Tensor& src,
                     runtime::ThreadPool& pool) {
  float* d = dst.data();
  const float* s = src.data();
  const std::size_t n = dst.size();
  pool.parallel_for(
      n,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t i = begin; i < end; ++i) d[i] += s[i];
      },
      kSerialWorkLimit);
}

}  // namespace

ExecContext::ExecContext(Network& net, ExecMode mode, Precision precision)
    : net_(&net), mode_(mode), precision_(precision) {
  if (precision_ != Precision::kFp32 && mode_ != ExecMode::kInference) {
    throw std::logic_error(
        "ExecContext: training contexts are fp32-only (DESIGN.md §2.5)");
  }
  exec_.resize(net.layer_count());
  if (mode_ == ExecMode::kTraining) {
    input_ = Tensor(net.input_shape());
    build_training_buffers();
  } else if (precision_ == Precision::kBf16) {
    build_inference_buffers_bf16();
  } else {
    input_ = Tensor(net.input_shape());
    build_inference_buffers();
  }
  auto& reg = obs::Registry::global();
  reg.gauge("dnn/ctx/mode").set(mode_ == ExecMode::kInference ? 1.0 : 0.0);
  reg.gauge("dnn/ctx/precision").set(static_cast<double>(precision_));
  reg.gauge("dnn/ctx/activation_bytes")
      .set(static_cast<double>(activation_bytes()));
  reg.gauge("dnn/ctx/total_bytes").set(static_cast<double>(total_bytes()));
}

void ExecContext::apply_intraop(const IntraopPlan& plan) {
  if (plan.grains.size() != exec_.size()) {
    throw std::invalid_argument(
        "ExecContext::apply_intraop: plan has " +
        std::to_string(plan.grains.size()) + " grains for " +
        std::to_string(exec_.size()) + " layers");
  }
  std::size_t max_grain = 1;
  for (std::size_t i = 0; i < exec_.size(); ++i) {
    exec_[i].intraop_grain = std::max<std::size_t>(1, plan.grains[i]);
    max_grain = std::max(max_grain, exec_[i].intraop_grain);
  }
  auto& reg = obs::Registry::global();
  reg.gauge("dnn/intraop/threads")
      .set(static_cast<double>(plan.threads_per_stream));
  reg.gauge("dnn/intraop/grain").set(static_cast<double>(max_grain));
  reg.gauge("dnn/intraop/par_efficiency").set(plan.predicted_efficiency);
}

void ExecContext::build_training_buffers() {
  const Network::MemPlan& plan = net_->mem_plan();
  const bool planned = net_->memory_planning();
  const std::size_t n_layers = net_->layer_count();
  const Graph& graph = net_->graph();

  // Activations: per-node storage — backward re-reads every one of
  // them (a node's backward takes its own forward output *and* its
  // inputs), so nothing can be collapsed here.
  activations_.reserve(n_layers);
  diffs_.reserve(n_layers);
  for (std::size_t i = 0; i < n_layers; ++i) {
    activations_.emplace_back(net_->layer(i).output_shape());
    diffs_.emplace_back(net_->layer(i).output_shape());
  }
  act_bytes_ = plan.act_sum * sizeof(float);

  // Diffs: the slot-colored arena when the network was finalized with
  // memory planning (two diffs share a slot only if their live
  // intervals over the reverse schedule are disjoint — on a linear
  // chain this is exactly the historical even/odd parity ping-pong),
  // per-node storage otherwise.
  if (planned) {
    const Network::SlotPlan& slots = net_->diff_slots();
    diff_arena_ = runtime::AlignedBuffer<float>(slots.total);
    for (std::size_t i = 0; i < n_layers; ++i) {
      float* base = diff_arena_.data() + slots.offsets[i];
      diffs_[i].rebind({base, diffs_[i].size()});
    }
    diff_bytes_ = diff_arena_.size() * sizeof(float);
  } else {
    diff_bytes_ = plan.diff_sum * sizeof(float);
  }

  // Fan-in accumulation: one shared buffer sized to the largest tensor
  // that can receive several gradient contributions; every such node's
  // accum tensor aliases it at offset 0 — backward uses them strictly
  // one at a time. Empty for purely sequential networks.
  const std::size_t accum_floats = net_->bwd_accum_floats();
  if (accum_floats > 0) {
    accum_arena_ = runtime::AlignedBuffer<float>(accum_floats);
    accum_.resize(n_layers);
    for (std::size_t i = 0; i < n_layers; ++i) {
      const std::size_t contributions =
          graph.consumers(i).size() + (graph.is_head(i) ? 1 : 0);
      if (contributions > 1) {
        accum_[i] = Tensor(net_->layer(i).output_shape());
        accum_[i].alias({accum_arena_.data(), accum_[i].size()});
      }
    }
  }
  diff_written_.assign(n_layers, 0);

  // Backward scratch: one node's backward runs at a time within a
  // stream, so the planner hands every node the same max-sized arena;
  // unplanned contexts keep disjoint per-node regions.
  if (planned) {
    scratch_arena_ = runtime::AlignedBuffer<float>(plan.scratch_max);
    for (std::size_t i = 0; i < n_layers; ++i) {
      const std::size_t sc = net_->layer(i).backward_scratch_floats();
      if (sc > 0) exec_[i].scratch = {scratch_arena_.data(), sc};
    }
  } else {
    scratch_arena_ = runtime::AlignedBuffer<float>(plan.scratch_sum);
    std::size_t off = 0;
    for (std::size_t i = 0; i < n_layers; ++i) {
      const std::size_t sc = net_->layer(i).backward_scratch_floats();
      if (sc > 0) exec_[i].scratch = {scratch_arena_.data() + off, sc};
      off += sc;
    }
  }

  // Forward staging: disjoint per-node regions, zeroed once — each
  // node's region keeps its zero borders between calls (nothing else
  // touches it), so conv staging skips the per-call border memset.
  workspace_arena_ = runtime::AlignedBuffer<float>(plan.workspace_sum);
  if (!workspace_arena_.empty()) {
    std::memset(workspace_arena_.data(), 0,
                workspace_arena_.size() * sizeof(float));
  }
  {
    std::size_t off = 0;
    for (std::size_t i = 0; i < n_layers; ++i) {
      const std::size_t ws = net_->layer(i).forward_workspace_floats();
      if (ws > 0) exec_[i].workspace = {workspace_arena_.data() + off, ws};
      off += ws;
    }
  }

  // Gradients: one flat arena with the exact layout of the network's
  // param arena, each node's gradient tensors rebound onto its
  // segment (the allreduce operates on grad_arena() in place).
  grad_arena_ = runtime::AlignedBuffer<float>(net_->param_arena().size());
  zero_grads();
  std::size_t off = 0;
  for (std::size_t i = 0; i < n_layers; ++i) {
    std::vector<ParamSpec> specs = net_->layer(i).param_specs();
    exec_[i].grads.reserve(specs.size());
    for (const ParamSpec& spec : specs) {
      const std::size_t n =
          static_cast<std::size_t>(spec.value->shape().numel());
      Tensor grad(spec.value->shape());
      grad.rebind({grad_arena_.data() + off, n});
      exec_[i].grads.push_back(std::move(grad));
      off += n;
    }
  }

  if (net_->head_count() > 1) output_ = Tensor(net_->output_shape());
}

void ExecContext::build_inference_buffers() {
  const Network::MemPlan& plan = net_->mem_plan();
  const std::size_t n_layers = net_->layer_count();

  // Forward-only liveness: an activation dies once its last consumer
  // ran (heads survive the pass). The interval coloring collapses the
  // whole pass onto a few max-sized slots — two slots on a linear
  // chain, the historical even/odd ping-pong.
  const Network::SlotPlan& slots = net_->act_slots();
  act_arena_ = runtime::AlignedBuffer<float>(slots.total);
  activations_.reserve(n_layers);
  for (std::size_t i = 0; i < n_layers; ++i) {
    Tensor act(net_->layer(i).output_shape());
    float* base = act_arena_.data() + slots.offsets[i];
    act.rebind({base, act.size()});
    activations_.push_back(std::move(act));
  }
  act_bytes_ = act_arena_.size() * sizeof(float);

  // One shared staging workspace sized to the largest request. When
  // more than one layer uses it, each conv re-establishes its zero
  // border on entry (LayerExecState::workspace_shared).
  workspace_arena_ = runtime::AlignedBuffer<float>(plan.workspace_max);
  if (!workspace_arena_.empty()) {
    std::memset(workspace_arena_.data(), 0,
                workspace_arena_.size() * sizeof(float));
  }
  std::size_t users = 0;
  for (std::size_t i = 0; i < n_layers; ++i) {
    if (net_->layer(i).forward_workspace_floats() > 0) ++users;
  }
  for (std::size_t i = 0; i < n_layers; ++i) {
    const std::size_t ws = net_->layer(i).forward_workspace_floats();
    if (ws == 0) continue;
    exec_[i].workspace = {workspace_arena_.data(), ws};
    exec_[i].workspace_shared = users > 1;
  }
  if (net_->head_count() > 1) output_ = Tensor(net_->output_shape());
  // No diffs, no backward scratch, no gradients: backward() and
  // params() throw in this mode.
}

void ExecContext::build_inference_buffers_bf16() {
  const Network::MemPlan& plan = net_->mem_plan();
  const std::size_t n_layers = net_->layer_count();

  // Same forward-only slot coloring as build_inference_buffers, but
  // the arena elements are bf16 — the layer outputs never exist in
  // fp32. No fp32 activation tensors are allocated at all; the only
  // fp32 tensor is the widened head output forward() returns.
  input16_ = runtime::AlignedBuffer<bf16_t>(
      static_cast<std::size_t>(net_->input_shape().numel()));
  act16_arena_ = runtime::AlignedBuffer<bf16_t>(net_->act_slots().total);
  act_bytes_ = act16_arena_.size() * sizeof(bf16_t);
  output_ = Tensor(net_->output_shape());

  // The staging workspace is still allocated in floats (its size
  // contract is forward_workspace_floats()); the bf16 conv kernels
  // reinterpret it as bf16 storage. All-zero bytes are valid bf16
  // zeros, so the zero-once / re-zero-when-shared contract is
  // unchanged.
  workspace_arena_ = runtime::AlignedBuffer<float>(plan.workspace_max);
  if (!workspace_arena_.empty()) {
    std::memset(workspace_arena_.data(), 0,
                workspace_arena_.size() * sizeof(float));
  }
  std::size_t users = 0;
  for (std::size_t i = 0; i < n_layers; ++i) {
    if (net_->layer(i).forward_workspace_floats() > 0) ++users;
  }
  for (std::size_t i = 0; i < n_layers; ++i) {
    const std::size_t ws = net_->layer(i).forward_workspace_floats();
    if (ws == 0) continue;
    exec_[i].workspace = {workspace_arena_.data(), ws};
    exec_[i].workspace_shared = users > 1;
  }
}

const Tensor& ExecContext::forward(const Tensor& input,
                                   runtime::ThreadPool& pool) {
  if (input.shape() != net_->input_shape()) {
    throw std::invalid_argument("ExecContext::forward: input shape " +
                                input.shape().to_string() + ", expected " +
                                net_->input_shape().to_string());
  }
  if (precision_ == Precision::kBf16) {
    return forward_bf16_path(input, pool);
  }
  if (mode_ == ExecMode::kInference) {
    // Nothing re-reads the input after its consumers in inference
    // mode (no backward), so the staging copy is pure overhead: run
    // the schedule loop straight off the caller's tensor. Every
    // Tensor's storage is 64-byte aligned, so the kernels see identical
    // alignment and the outputs are bitwise-identical.
    return run_forward(input, pool);
  }
  std::memcpy(input_.data(), input.data(), input.size() * sizeof(float));
  return run_forward(input_, pool);
}

std::span<float> ExecContext::input_staging() {
  if (input_.size() == 0) {
    throw std::logic_error(
        "ExecContext::input_staging: bf16 context has no fp32 input "
        "buffer");
  }
  return {input_.data(), static_cast<std::size_t>(input_.size())};
}

const Tensor& ExecContext::forward_staged(runtime::ThreadPool& pool) {
  if (input_.size() == 0) {
    throw std::logic_error(
        "ExecContext::forward_staged: bf16 context has no fp32 input "
        "buffer");
  }
  return run_forward(input_, pool);
}

const Tensor& ExecContext::run_forward(const Tensor& staged,
                                       runtime::ThreadPool& pool) {
  CF_TRACE_SCOPE("net/forward", "dnn");
  const Graph& graph = net_->graph();
  const bool int8w = precision_ == Precision::kInt8Weights;
  for (std::size_t i = 0; i < net_->layer_count(); ++i) {
    const Layer& layer = net_->layer(i);
    CF_TRACE_SCOPE(layer.span_label_fwd().c_str(), layer.kind().c_str());
    const std::vector<NodeId>& ins = graph.inputs(i);
    if (ins.size() == 1) {
      const Tensor& src =
          ins[0] == kGraphInput ? staged : activations_[ins[0]];
      if (int8w && layer.int8_weight_count() > 0) {
        layer.forward_int8w(src, activations_[i],
                            net_->int8_weight_segment(i),
                            net_->int8_scale_segment(i), exec_[i], pool);
      } else {
        layer.forward(src, activations_[i], exec_[i], pool);
      }
    } else {
      src_ptrs_.clear();
      for (NodeId p : ins) {
        src_ptrs_.push_back(p == kGraphInput ? &staged : &activations_[p]);
      }
      layer.forward_multi({src_ptrs_.data(), src_ptrs_.size()},
                          activations_[i], exec_[i], pool);
    }
  }
  forward_done_ = true;
  // A single head hands back its activation directly (the bitwise path
  // every sequential network takes); multiple heads concatenate flat
  // into the context-owned output, in head order.
  if (net_->head_count() == 1) return activations_[net_->head(0)];
  for (std::size_t h = 0; h < net_->head_count(); ++h) {
    const Tensor& act = activations_[net_->head(h)];
    std::memcpy(output_.data() + net_->head_offset(h), act.data(),
                act.size() * sizeof(float));
  }
  return output_;
}

const Tensor& ExecContext::forward_bf16_path(const Tensor& input,
                                             runtime::ThreadPool& pool) {
  CF_TRACE_SCOPE("net/forward", "dnn");
  const Graph& graph = net_->graph();
  const Network::SlotPlan& slots = net_->act_slots();
  bf16_from_f32(input.data(), input16_.data(), input.size());
  for (std::size_t i = 0; i < net_->layer_count(); ++i) {
    const Layer& layer = net_->layer(i);
    CF_TRACE_SCOPE(layer.span_label_fwd().c_str(), layer.kind().c_str());
    const std::vector<NodeId>& ins = graph.inputs(i);
    if (ins.size() != 1) {
      // Unreachable in practice: multi-input layers decline kBf16 in
      // supports_precision, so prepare_inference_precision throws first.
      throw std::logic_error(
          "ExecContext: bf16 forward supports single-input nodes only");
    }
    const bf16_t* src = ins[0] == kGraphInput
                            ? input16_.data()
                            : act16_arena_.data() + slots.offsets[ins[0]];
    bf16_t* dst = act16_arena_.data() + slots.offsets[i];
    layer.forward_bf16(src, dst, net_->bf16_param_segment(i), exec_[i],
                       pool);
  }
  for (std::size_t h = 0; h < net_->head_count(); ++h) {
    const NodeId head = net_->head(h);
    const std::size_t numel =
        static_cast<std::size_t>(net_->layer(head).output_shape().numel());
    f32_from_bf16(act16_arena_.data() + slots.offsets[head],
                  output_.data() + net_->head_offset(h), numel);
  }
  forward_done_ = true;
  return output_;
}

void ExecContext::backward(const Tensor& dloss, runtime::ThreadPool& pool,
                           const GradReadyCallback& grad_ready) {
  if (mode_ != ExecMode::kTraining) {
    throw std::logic_error(
        "ExecContext::backward: inference context has no backward state");
  }
  if (!forward_done_) {
    throw std::logic_error("ExecContext::backward: no preceding forward");
  }
  if (dloss.shape() != net_->output_shape()) {
    throw std::invalid_argument(
        "ExecContext::backward: dloss shape mismatch");
  }
  CF_TRACE_SCOPE("net/backward", "dnn");
  const Graph& graph = net_->graph();
  const std::size_t n = net_->layer_count();

  // Seed the head diffs from the per-head slices of dloss. A head that
  // is also consumed downstream gets its consumers' contributions
  // added on top during the sweep.
  std::fill(diff_written_.begin(), diff_written_.end(), 0);
  for (std::size_t h = 0; h < net_->head_count(); ++h) {
    const NodeId head = net_->head(h);
    std::memcpy(diffs_[head].data(), dloss.data() + net_->head_offset(h),
                diffs_[head].size() * sizeof(float));
    diff_written_[head] = 1;
  }

  for (std::size_t i = n; i-- > 0;) {
    const Layer& layer = net_->layer(i);
    const std::vector<NodeId>& ins = graph.inputs(i);
    {
      CF_TRACE_SCOPE(layer.span_label_bwd().c_str(), layer.kind().c_str());
      if (ins.size() == 1) {
        const NodeId p = ins[0];
        const Tensor& src = p == kGraphInput ? input_ : activations_[p];
        if (p == kGraphInput) {
          // The data gradient toward the network input is skipped; pass
          // the node's own ddst as an untouched dummy dsrc.
          layer.backward(src, activations_[i], diffs_[i], diffs_[i],
                         /*need_dsrc=*/false, exec_[i], pool);
        } else if (!diff_written_[p]) {
          // First contribution: the layer overwrites the producer's
          // diff directly — the sequential fast path.
          layer.backward(src, activations_[i], diffs_[i], diffs_[p],
                         /*need_dsrc=*/true, exec_[i], pool);
          diff_written_[p] = 1;
        } else {
          // Fan-in: compute into the shared accumulation tensor, then
          // add in place. Contributions land in reverse schedule order
          // — deterministic by construction.
          layer.backward(src, activations_[i], diffs_[i], accum_[p],
                         /*need_dsrc=*/true, exec_[i], pool);
          accumulate_into(diffs_[p], accum_[p], pool);
        }
      } else {
        src_ptrs_.clear();
        dsrc_ptrs_.clear();
        need_flags_.clear();
        accum_flags_.clear();
        for (NodeId p : ins) {
          if (p == kGraphInput) {
            src_ptrs_.push_back(&input_);
            dsrc_ptrs_.push_back(&diffs_[i]);  // dummy, need=0
            need_flags_.push_back(0);
            accum_flags_.push_back(0);
          } else {
            src_ptrs_.push_back(&activations_[p]);
            dsrc_ptrs_.push_back(&diffs_[p]);
            need_flags_.push_back(1);
            // Edge order within one node is left to right; a repeated
            // producer accumulates on its second edge.
            accum_flags_.push_back(diff_written_[p] ? 1 : 0);
            diff_written_[p] = 1;
          }
        }
        layer.backward_multi(
            {src_ptrs_.data(), src_ptrs_.size()}, activations_[i],
            diffs_[i], {dsrc_ptrs_.data(), dsrc_ptrs_.size()},
            {need_flags_.data(), need_flags_.size()},
            {accum_flags_.data(), accum_flags_.size()}, exec_[i], pool);
      }
    }
    if (grad_ready && net_->segment_size(i) > 0) grad_ready(i);
  }
}

void ExecContext::zero_grads() {
  if (grad_arena_.empty()) return;
  std::memset(grad_arena_.data(), 0, grad_arena_.size() * sizeof(float));
}

std::vector<ParamView> ExecContext::params() {
  if (mode_ != ExecMode::kTraining) {
    throw std::logic_error(
        "ExecContext::params: inference context has no gradients");
  }
  std::vector<ParamView> views;
  for (std::size_t i = 0; i < net_->layer_count(); ++i) {
    std::vector<ParamSpec> specs = net_->layer(i).param_specs();
    for (std::size_t j = 0; j < specs.size(); ++j) {
      views.push_back({specs[j].name, specs[j].value, &exec_[i].grads[j]});
    }
  }
  return views;
}

std::span<float> ExecContext::grad_segment(std::size_t i) {
  return grad_arena().subspan(net_->segment_offset(i),
                              net_->segment_size(i));
}

void ExecContext::copy_grads_to(std::span<float> out) {
  if (out.size() != grad_arena_.size()) {
    throw std::invalid_argument(
        "ExecContext::copy_grads_to: span size mismatch");
  }
  if (grad_arena_.empty()) return;
  std::memcpy(out.data(), grad_arena_.data(),
              grad_arena_.size() * sizeof(float));
}

void ExecContext::set_grads_from(std::span<const float> in) {
  if (in.size() != grad_arena_.size()) {
    throw std::invalid_argument(
        "ExecContext::set_grads_from: span size mismatch");
  }
  if (grad_arena_.empty()) return;
  std::memcpy(grad_arena_.data(), in.data(),
              grad_arena_.size() * sizeof(float));
}

std::vector<LayerProfile> ExecContext::profiles() const {
  std::vector<LayerProfile> rows;
  rows.reserve(net_->layer_count());
  for (std::size_t i = 0; i < net_->layer_count(); ++i) {
    const Layer& layer = net_->layer(i);
    LayerProfile row;
    row.name = layer.name();
    row.kind = layer.kind();
    row.fwd = exec_[i].timers.fwd;
    row.bwd_data = exec_[i].timers.bwd_data;
    row.bwd_weights = exec_[i].timers.bwd_weights;
    row.flops = layer.flops();
    rows.push_back(row);
  }
  return rows;
}

void ExecContext::reset_profiles() {
  for (auto& st : exec_) st.timers = LayerTimers{};
}

std::size_t ExecContext::total_bytes() const noexcept {
  return input_.size() * sizeof(float) +
         input16_.size() * sizeof(bf16_t) +
         output_.size() * sizeof(float) + activation_bytes() +
         diff_arena_bytes() + scratch_bytes() + workspace_bytes() +
         grad_bytes() + accum_arena_.size() * sizeof(float);
}

}  // namespace cf::dnn
