// Mean-squared-error regression loss over the three predicted
// cosmological parameters (targets are normalized to [0, 1] by the data
// pipeline).
#pragma once

#include <span>

#include "tensor/tensor.hpp"

namespace cf::dnn {

/// loss = mean_i (pred[i] - target[i])^2
float mse_loss(std::span<const float> pred, std::span<const float> target);

/// dpred[i] = 2 * (pred[i] - target[i]) / n
void mse_loss_grad(std::span<const float> pred,
                   std::span<const float> target, std::span<float> dpred);

}  // namespace cf::dnn
