// CRC32-C (Castagnoli) and the TFRecord masking scheme.
//
// The cfrecord container (data/cfrecord.hpp) reuses TFRecord's exact
// integrity framing: every length word and payload carries a masked
// CRC32-C so truncation and corruption are detected at read time.
//
// Every sample is a multi-megabyte voxel payload, so the checksum is
// real bandwidth on the read path. Three kernels compute the same
// polynomial (DESIGN.md §2.7 pins them bitwise-identical):
//
//  * kTable    — the bytewise 256-entry table. One table lookup per
//                byte with a serial dependency chain (~1 GB/s); kept
//                as the reference implementation and the ablation
//                baseline (`bench_pipeline --crc=table`).
//  * kSlice8   — slice-by-8: one 64-bit load per 8 bytes folded
//                through 8 parallel tables, breaking the per-byte
//                dependency chain.
//  * kHardware — SSE4.2 `crc32q` (one 8-byte fold per ~3-cycle
//                latency chain), compiled with a target attribute and
//                selected only when cpuid reports the ISA.
//
// crc32c() dispatches once at process start to the fastest kernel the
// machine supports; crc32c_with() addresses a specific kernel (tests,
// bench ablations) and set_crc32c_impl() pins the process-wide choice
// (not thread-safe against in-flight crc32c() calls — call it before
// spinning up I/O threads).
#pragma once

#include <cstdint>
#include <span>

namespace cf::data {

/// CRC32-C over `bytes` (polynomial 0x1EDC6F41, reflected), via the
/// kernel selected by runtime dispatch.
std::uint32_t crc32c(std::span<const std::uint8_t> bytes);

enum class CrcImpl { kTable = 0, kSlice8 = 1, kHardware = 2 };

const char* to_string(CrcImpl impl) noexcept;

/// True when the CPU exposes SSE4.2 (the crc32 instruction).
bool crc32c_hardware_available() noexcept;

/// The kernel crc32c() currently dispatches to.
CrcImpl crc32c_impl() noexcept;

/// Forces crc32c() onto a specific kernel (ablation hook). Throws
/// std::invalid_argument for kHardware on a machine without SSE4.2.
void set_crc32c_impl(CrcImpl impl);

/// Computes with an explicit kernel, ignoring the dispatch choice.
std::uint32_t crc32c_with(CrcImpl impl, std::span<const std::uint8_t> bytes);

/// TFRecord CRC masking: rotate right by 15 and add a constant, so
/// CRCs stored alongside CRC-covered data do not confuse the checker.
std::uint32_t mask_crc(std::uint32_t crc);
std::uint32_t unmask_crc(std::uint32_t masked);

}  // namespace cf::data
