// Per-stream execution state for a finalized dnn::Network.
//
// The model/stream split (DESIGN.md §2.3): a Network holds only
// immutable-after-finalize state — the layers (geometry + weights in
// the flat param arena) and the plans computed by the fusion and
// memory-planner passes. Everything one execution stream mutates lives
// here instead: the input staging copy, the activation buffers, the
// parity ping-pong diff arena, the shared backward scratch, the flat
// gradient arena, and each layer's LayerExecState (timers, forward
// staging workspace, gradient tensors). N contexts over one Network run
// forward concurrently against one shared weight copy.
//
// ExecMode picks what gets allocated:
//  * kTraining — the full set. Buffer placement matches the planner
//    exactly (parity diff arena + shared scratch when the network was
//    finalized with memory planning, per-layer buffers otherwise), so a
//    training step through a context is bitwise identical to the
//    pre-split Network-owned step.
//  * kInference — forward-only: activations collapse onto a parity
//    ping-pong arena (layer i writes parity i%2, reads parity (i-1)%2,
//    never aliasing), one shared conv staging workspace sized to the
//    largest request, and *no* diff/scratch/grad arenas at all.
//    backward(), zero_grads() and params() throw.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "dnn/layer.hpp"
#include "dnn/precision.hpp"
#include "runtime/aligned_buffer.hpp"

namespace cf::dnn {

class Network;
struct IntraopPlan;

enum class ExecMode { kTraining, kInference };

class ExecContext {
 public:
  /// Built by Network::make_context. The context holds a pointer to the
  /// network: the network must outlive it and stay put (heap-owned or
  /// otherwise address-stable). Non-fp32 precisions are inference-only
  /// and require the network to be prepared
  /// (Network::prepare_inference_precision) — make_context enforces
  /// both. In kBf16 the activation ping-pong arena and the input
  /// staging copy are bf16 (half the bytes); the forward() return value
  /// is still an fp32 tensor, widened from the last layer's output.
  explicit ExecContext(Network& net, ExecMode mode,
                       Precision precision = Precision::kFp32);

  ExecContext(ExecContext&&) = default;
  ExecContext& operator=(ExecContext&&) = default;
  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  ExecMode mode() const noexcept { return mode_; }
  Precision precision() const noexcept { return precision_; }

  /// Runs the forward pass through this stream; the returned view stays
  /// valid until the next forward() on the same context. Training
  /// contexts stage `input` into the context-owned input copy first
  /// (backward re-reads it); fp32/int8w *inference* contexts skip that
  /// staging copy entirely and read `input` in place — `input` must
  /// stay alive and unmodified until forward returns.
  const tensor::Tensor& forward(const tensor::Tensor& input,
                                runtime::ThreadPool& pool);

  /// The context-owned input staging buffer (shape = network input
  /// shape). Callers that assemble the network input anyway — the
  /// Trainer's batch gather, with augmentation folded in — write it
  /// directly and call forward_staged(), eliminating forward()'s
  /// staging memcpy. fp32/int8w only: a bf16 context has no fp32 input
  /// buffer (throws std::logic_error).
  std::span<float> input_staging();

  /// forward() over the bytes already written into input_staging();
  /// bitwise-identical to forward(t, pool) with t holding those bytes.
  const tensor::Tensor& forward_staged(runtime::ThreadPool& pool);

  /// Invoked by backward() right after layer `i`'s backward pass (its
  /// bwd_weights included) finishes, i.e. the moment grad_segment(i)
  /// holds this step's final local gradients. Layers are visited last
  /// to first, so segments become ready tail-first and contiguously —
  /// callers can coalesce them into buckets and start communicating
  /// while earlier layers are still computing.
  using GradReadyCallback = std::function<void(std::size_t layer_index)>;

  /// Runs the backward pass from the loss gradient w.r.t. the network
  /// output. Parameter gradients accumulate into this context's grad
  /// arena; the first layer's input difference signal is skipped (the
  /// input is data, §V-A workflow). Requires a preceding forward() on
  /// this context; training mode only.
  void backward(const tensor::Tensor& dloss, runtime::ThreadPool& pool,
                const GradReadyCallback& grad_ready = {});

  void zero_grads();

  /// Applies a cost-model intra-op plan to this stream (DESIGN.md
  /// §2.6): copies the per-layer grains into each LayerExecState and
  /// publishes the dnn/intraop/* gauges. The grain only changes how the
  /// kernels' fixed job grids are partitioned across the stream's
  /// ThreadPool, never what any job computes, so applying (or not
  /// applying) a plan is bitwise-neutral. Plans whose grain list does
  /// not match this network's layer count throw.
  void apply_intraop(const IntraopPlan& plan);

  /// The per-layer grain currently applied (1 until apply_intraop).
  std::size_t intraop_grain(std::size_t i) const {
    return exec_[i].intraop_grain;
  }

  /// Parameter views pairing the network's (shared) values with this
  /// context's gradients, in layer order — the optimizer input.
  /// Training mode only.
  std::vector<ParamView> params();

  // Flat gradient arena views (training mode; empty in inference).
  // Layout is layer order, parameter-tensor order — identical to the
  // network's param arena layout.
  std::span<float> grad_arena() noexcept {
    return {grad_arena_.data(), grad_arena_.size()};
  }
  /// Layer i's slice of the grad arena (empty for parameterless layers).
  std::span<float> grad_segment(std::size_t i);

  void copy_grads_to(std::span<float> out);
  void set_grads_from(std::span<const float> in);

  /// The difference tensor written by layer i's producer (test hook for
  /// planner aliasing checks; training mode).
  const tensor::Tensor& diff(std::size_t i) const { return diffs_[i]; }

  /// Per-layer timing rows for Table I / Fig 3, read from this stream's
  /// LayerExecStates.
  std::vector<LayerProfile> profiles() const;
  void reset_profiles();

  // What this context actually allocated, in bytes. For a training
  // context the first three match the network's planned accounting; an
  // inference context reports a collapsed activation arena and zeros
  // for diff/scratch/grad.
  std::size_t activation_bytes() const noexcept { return act_bytes_; }
  std::size_t diff_arena_bytes() const noexcept {
    return diff_bytes_;
  }
  std::size_t scratch_bytes() const noexcept {
    return scratch_arena_.size() * sizeof(float);
  }
  std::size_t workspace_bytes() const noexcept {
    return workspace_arena_.size() * sizeof(float);
  }
  std::size_t grad_bytes() const noexcept {
    return grad_arena_.size() * sizeof(float);
  }
  /// Same definition the network uses for its planned footprint
  /// (activations + diffs + scratch; staging workspace excluded).
  std::size_t peak_tensor_bytes() const noexcept {
    return activation_bytes() + diff_arena_bytes() + scratch_bytes();
  }
  /// Everything: input staging + activations + diffs + scratch +
  /// workspace + grads.
  std::size_t total_bytes() const noexcept;

 private:
  void build_training_buffers();
  void build_inference_buffers();
  void build_inference_buffers_bf16();
  const tensor::Tensor& forward_bf16_path(const tensor::Tensor& input,
                                          runtime::ThreadPool& pool);
  /// The fp32/int8w layer loop over an already-staged input tensor.
  const tensor::Tensor& run_forward(const tensor::Tensor& staged,
                                    runtime::ThreadPool& pool);

  Network* net_ = nullptr;
  ExecMode mode_ = ExecMode::kTraining;
  Precision precision_ = Precision::kFp32;

  tensor::Tensor input_;
  std::vector<tensor::Tensor> activations_;  // output of each layer
  std::vector<tensor::Tensor> diffs_;        // d(loss)/d(activation)
  std::vector<LayerExecState> exec_;         // one per layer

  // kBf16 stream storage: bf16 input staging, bf16 activation
  // ping-pong arena (parity layout identical to act_arena_) and the
  // fp32 widening of the last layer's output that forward() returns.
  runtime::AlignedBuffer<bf16_t> input16_;
  runtime::AlignedBuffer<bf16_t> act16_arena_;
  std::size_t act16_even_ = 0;  // odd-parity base offset, in elements
  tensor::Tensor output_;

  // Context-owned storage. act_arena_ backs the inference ping-pong
  // activations (training activations own per-layer storage);
  // diff_arena_ backs the parity diff buffers when the network was
  // planned; scratch_arena_ the backward scratch; workspace_arena_ the
  // forward staging regions; grad_arena_ the flat gradients.
  runtime::AlignedBuffer<float> act_arena_;
  runtime::AlignedBuffer<float> diff_arena_;
  runtime::AlignedBuffer<float> scratch_arena_;
  runtime::AlignedBuffer<float> workspace_arena_;
  runtime::AlignedBuffer<float> grad_arena_;
  std::size_t act_bytes_ = 0;   // per-layer sum (training) / arena size
  std::size_t diff_bytes_ = 0;  // per-layer sum or parity-arena size

  bool forward_done_ = false;
};

}  // namespace cf::dnn
