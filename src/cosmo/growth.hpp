// Linear growth factor D(a) for flat LCDM.
//
// The paper trains exclusively on z = 0 snapshots but lists "extending
// the network to multiple redshift snapshots" as the natural next step
// (§VII-B). The growth factor is the missing ingredient: the linear
// density field at scale factor a is D(a)/D(1) times the z = 0 field,
// so the simulation driver can emit any-redshift snapshots from the
// same initial conditions.
//
//   D(a)  proportional to  H(a) * Int_0^a da' / (a' H(a'))^3,
//   H^2(a) = OmegaM a^-3 + OmegaL    (flat: OmegaL = 1 - OmegaM)
//
// normalized to D(1) = 1.
#pragma once

namespace cf::cosmo {

class GrowthFactor {
 public:
  /// Flat LCDM with the given matter fraction.
  explicit GrowthFactor(double omega_m);

  /// Normalized growth D(a)/D(1); a in (0, 1].
  double at_scale_factor(double a) const;

  /// Convenience: D(z)/D(0) with a = 1 / (1 + z).
  double at_redshift(double z) const;

  double omega_m() const noexcept { return omega_m_; }

 private:
  double unnormalized(double a) const;

  double omega_m_;
  double omega_l_;
  double norm_;
};

}  // namespace cf::cosmo
