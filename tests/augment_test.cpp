// Tests for orientation augmentation (data/augment.hpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "data/augment.hpp"
#include "runtime/rng.hpp"
#include "tensor/tensor_ops.hpp"

namespace cf::data {
namespace {

using tensor::Shape;
using tensor::Tensor;

Tensor random_volume(std::int64_t n, std::uint64_t seed) {
  Tensor volume(Shape{1, n, n, n});
  runtime::Rng rng(seed);
  tensor::fill_normal(volume, rng, 0.0f, 1.0f);
  return volume;
}

TEST(OrientVolume, IdentityCodeLeavesVolumeUntouched) {
  Tensor volume = random_volume(4, 1);
  const Tensor original = volume.clone();
  orient_volume(volume, 0);
  EXPECT_EQ(tensor::max_abs_diff(volume.values(), original.values()), 0.0f);
}

TEST(OrientVolume, ConservesMassAndMultiset) {
  Tensor volume = random_volume(4, 2);
  const double mass = tensor::sum(volume.values());
  std::multiset<float> original(volume.values().begin(),
                                volume.values().end());
  for (std::uint32_t code = 0; code < kOrientationCount; ++code) {
    Tensor oriented = volume.clone();
    orient_volume(oriented, code);
    EXPECT_NEAR(tensor::sum(oriented.values()), mass, 1e-3);
    std::multiset<float> values(oriented.values().begin(),
                                oriented.values().end());
    EXPECT_EQ(values, original) << "code " << code;
  }
}

TEST(OrientVolume, All48OrientationsAreDistinct) {
  // A generic volume has trivial symmetry group, so the 48 images must
  // be pairwise distinct.
  Tensor volume = random_volume(3, 3);
  std::set<std::vector<float>> images;
  for (std::uint32_t code = 0; code < kOrientationCount; ++code) {
    Tensor oriented = volume.clone();
    orient_volume(oriented, code);
    images.insert(oriented.to_vector());
  }
  EXPECT_EQ(images.size(), kOrientationCount);
}

TEST(OrientVolume, PureMirrorIsAnInvolution) {
  // Codes 1..7 are pure mirrors (identity permutation): applying twice
  // restores the volume.
  for (std::uint32_t mirror = 1; mirror < 8; ++mirror) {
    Tensor volume = random_volume(4, 4 + mirror);
    const Tensor original = volume.clone();
    orient_volume(volume, mirror);
    EXPECT_GT(tensor::max_abs_diff(volume.values(), original.values()),
              0.0f);
    orient_volume(volume, mirror);
    EXPECT_EQ(tensor::max_abs_diff(volume.values(), original.values()),
              0.0f);
  }
}

TEST(OrientVolume, MirrorBit0FlipsDepthAxis) {
  Tensor volume(Shape{1, 2, 2, 2});
  for (std::size_t i = 0; i < 8; ++i) {
    volume[i] = static_cast<float>(i);
  }
  // Mirror bit 0 flips coordinate 0 (the depth axis z).
  orient_volume(volume, 1);
  EXPECT_FLOAT_EQ(volume.at({0, 0, 0, 0}), 4.0f);
  EXPECT_FLOAT_EQ(volume.at({0, 0, 0, 1}), 5.0f);
  EXPECT_FLOAT_EQ(volume.at({0, 1, 1, 0}), 2.0f);
}

TEST(OrientVolumeInto, MatchesInPlaceOrientForEveryCode) {
  // The trainer's fused gather (augment folded into the staging copy)
  // must produce exactly the bytes of the two-step clone + in-place
  // orient it replaces.
  Tensor volume = random_volume(4, 7);
  std::vector<float> dst(volume.size());
  for (std::uint32_t code = 0; code < kOrientationCount; ++code) {
    Tensor expected = volume.clone();
    orient_volume(expected, code);
    std::fill(dst.begin(), dst.end(), -1.0f);
    orient_volume_into(volume, dst, code);
    EXPECT_EQ(tensor::max_abs_diff(dst, expected.values()), 0.0f)
        << "code " << code;
  }
}

TEST(OrientVolumeInto, RejectsMismatchedDestination) {
  Tensor volume = random_volume(4, 8);
  std::vector<float> wrong(volume.size() - 1);
  EXPECT_THROW(orient_volume_into(volume, wrong, 0), std::invalid_argument);
  EXPECT_THROW(orient_volume_into(volume, wrong, 5), std::invalid_argument);
  std::vector<float> dst(volume.size());
  EXPECT_THROW(orient_volume_into(volume, dst, 48), std::invalid_argument);
}

TEST(OrientVolume, RejectsBadInputs) {
  Tensor volume = random_volume(4, 6);
  EXPECT_THROW(orient_volume(volume, 48), std::invalid_argument);
  Tensor rect(Shape{1, 2, 2, 4});
  EXPECT_THROW(orient_volume(rect, 1), std::invalid_argument);
  Tensor channels(Shape{2, 4, 4, 4});
  EXPECT_THROW(orient_volume(channels, 1), std::invalid_argument);
}

}  // namespace
}  // namespace cf::data
