#include "optim/lr_schedule.hpp"

#include <stdexcept>

namespace cf::optim {

PolynomialDecay::PolynomialDecay(double base_lr, double min_lr,
                                 std::int64_t decay_steps)
    : base_lr_(base_lr), min_lr_(min_lr), decay_steps_(decay_steps) {
  if (base_lr <= 0.0 || min_lr < 0.0 || min_lr > base_lr) {
    throw std::invalid_argument("PolynomialDecay: need 0 <= min_lr <= "
                                "base_lr, base_lr > 0");
  }
  if (decay_steps <= 0) {
    throw std::invalid_argument("PolynomialDecay: decay_steps must be > 0");
  }
}

double PolynomialDecay::lr(std::int64_t step) const {
  if (step < 0) throw std::invalid_argument("PolynomialDecay: step < 0");
  if (step >= decay_steps_) return min_lr_;
  const double fraction =
      1.0 - static_cast<double>(step) / static_cast<double>(decay_steps_);
  return (base_lr_ - min_lr_) * fraction + min_lr_;
}

}  // namespace cf::optim
