// Quickstart: the whole CosmoFlow loop in one minute on one core.
//
//   1. simulate a handful of universes with different (OmegaM, sigma8,
//      ns) — the MUSIC + pycola substitute;
//   2. train the (scaled-down) CosmoFlow network with synchronous
//      data-parallel Adam + LARC across 2 thread-ranks;
//   3. predict the parameters of held-out universes.
//
//   ./examples/quickstart [--sims=12] [--epochs=6] [--ranks=2]
#include <cstdio>

#include "core/dataset_gen.hpp"
#include "core/metrics.hpp"
#include "core/topology.hpp"
#include "core/trainer.hpp"
#include "examples/example_utils.hpp"

int main(int argc, char** argv) {
  using namespace cf;
  const examples::Flags flags(
      argc, argv,
      "usage: quickstart [--sims=N] [--epochs=N] [--ranks=N]");

  // 1. Simulate.
  core::DatasetGenConfig gen;
  gen.simulations = static_cast<std::size_t>(flags.get_int("sims", 12));
  gen.sim.grid = {64, 128.0};  // 64^3 particles in a 128 Mpc/h box
  gen.sim.voxels = 32;         // mean count 8 (the paper's 512^3->256^3
                               // density), split to 8 x 16^3 samples
  gen.seed = 42;
  gen.val_fraction = 0.2;
  gen.test_fraction = 0.2;

  runtime::ThreadPool pool;
  std::printf("simulating %zu universes (%lld^3 particles each)...\n",
              gen.simulations, static_cast<long long>(gen.sim.grid.n));
  core::GeneratedDataset dataset = core::generate_dataset(gen, pool);
  std::printf("  train %zu / val %zu / test %zu sub-volumes\n",
              dataset.train.size(), dataset.val.size(),
              dataset.test.size());

  // 2. Train.
  data::InMemorySource train(std::move(dataset.train));
  data::InMemorySource val(std::move(dataset.val));

  core::TrainerConfig config;
  config.nranks = static_cast<int>(flags.get_int("ranks", 2));
  config.epochs = static_cast<int>(flags.get_int("epochs", 6));
  config.base_lr = 4e-3;

  core::Trainer trainer(core::cosmoflow_scaled(16), train, val, config);
  std::printf("training %s on %d thread-ranks, %d epochs...\n",
              trainer.topology().name.c_str(), config.nranks,
              config.epochs);
  for (const core::EpochStats& epoch : trainer.run()) {
    std::printf("  epoch %2d  train loss %.5f  val loss %.5f  (%.2fs)\n",
                epoch.epoch, epoch.train_loss, epoch.val_loss,
                epoch.epoch_seconds);
  }

  // 3. Predict on held-out universes.
  data::InMemorySource test(std::move(dataset.test));
  const auto predictions = trainer.evaluate(test);
  const auto rel = core::mean_relative_error(predictions);
  std::printf("\nheld-out relative errors:  OmegaM %.4f   sigma8 %.4f   "
              "ns %.4f\n",
              rel[0], rel[1], rel[2]);
  std::printf("(paper, full-scale 2048-node run: 0.0022 / 0.0094 / "
              "0.0096)\n");
  std::printf("\nsample predictions (predicted vs true):\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(4, predictions.size());
       ++i) {
    const auto& p = predictions[i];
    std::printf("  OmegaM %.3f/%.3f  sigma8 %.3f/%.3f  ns %.3f/%.3f\n",
                p.predicted[0], p.truth[0], p.predicted[1], p.truth[1],
                p.predicted[2], p.truth[2]);
  }
  return 0;
}
