// Inter-op vs intra-op split chooser (DESIGN.md §2.6).
//
// The paper's KNL configuration partitions each layer across 68 cores;
// this reproduction makes the same tradeoff explicit. A core budget can
// be spent on *streams* (independent ExecContexts — inter-op, scales
// near-linearly because streams share only the read-only weight arena)
// or on *threads per stream* (intra-op — splits each kernel's job grid
// through ThreadPool::parallel_for, paying a dispatch wake per pass and
// a parallel-efficiency tax on the shared memory system). The CostModel
// predicts per-layer pass times from a roofline estimate (flops at a
// measured single-thread rate + bytes at a stream rate), applies an
// efficiency curve eff(t) = 1 / (1 + alpha * (t - 1)), and enumerates
// the (streams, threads_per_stream) grid for a given budget. It also
// emits a per-layer *grain* — the minimum job-grid items per chunk —
// so layers whose whole pass is cheaper than a dispatch wake collapse
// to serial instead of paying for threads they cannot feed.
//
// The model only ever changes how fixed job grids are partitioned,
// never what any job computes, so every choice is bitwise-equivalent
// (deterministic-reduction rule, DESIGN.md §2.1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cf::dnn {

class Network;

/// Per-layer cost inputs, derived from the finalized network geometry.
struct LayerCost {
  std::string name;
  std::string kind;          // "conv", "pool", "dense", ...
  std::int64_t flops = 0;    // per forward pass (+ backward if training)
  std::int64_t bytes = 0;    // activation traffic estimate
  std::size_t jobs = 1;      // dominant pass's parallel job-grid size
  double serial_seconds = 0; // predicted single-thread pass time
};

/// Measured single-thread machine rates and threading overheads. The
/// defaults are deliberately conservative; benches may substitute
/// calibrated numbers. Only *ratios* matter for the split decision.
struct CostModelParams {
  double flops_per_second = 8.0e9;   // single-thread fp32 FMA rate
  double bytes_per_second = 1.0e10;  // single-thread sustained stream rate
  double dispatch_seconds = 3.0e-6;  // parallel_for wake+join cost
  double min_chunk_seconds = 2.0e-5; // smallest chunk worth a wake
  double efficiency_alpha = 0.05;    // eff(t) = 1 / (1 + alpha*(t-1))
};

/// What the model chose for a core budget. `grains` is parallel to the
/// network's layer list and feeds LayerExecState::intraop_grain.
struct IntraopPlan {
  std::size_t streams = 1;
  std::size_t threads_per_stream = 1;
  std::vector<std::size_t> grains;
  double predicted_efficiency = 1.0;  // eff at threads_per_stream
};

class CostModel {
 public:
  /// Derives per-layer costs from a finalized network. `training`
  /// includes the backward flops in each layer's cost (the trainer's
  /// view); inference counts the forward only.
  explicit CostModel(const Network& net, CostModelParams params = {},
                     bool training = false);

  const std::vector<LayerCost>& layer_costs() const noexcept {
    return costs_;
  }
  const CostModelParams& params() const noexcept { return params_; }

  /// Predicted wall-clock of one pass through the network on one
  /// stream with `threads` intra-op threads. Non-increasing in
  /// `threads`: extra threads beyond a layer's job grid idle rather
  /// than hurt (the model caps t at the grid size per layer).
  double predicted_seconds(std::size_t threads) const;

  /// Parallel efficiency of the whole-network pass at `threads`
  /// relative to serial: serial_time / (threads * time(threads)).
  double predicted_efficiency(std::size_t threads) const;

  /// Per-layer grains for a stream running `threads` intra-op threads:
  /// the minimum jobs per chunk so no chunk is cheaper than
  /// min_chunk_seconds. Always >= 1; layers with expensive jobs get 1
  /// (spread maximally), layers cheaper than a wake collapse serial.
  std::vector<std::size_t> grains_for(std::size_t threads) const;

  /// Chooses the inter-op/intra-op split for `core_budget` cores,
  /// maximizing predicted throughput streams / time(threads) over all
  /// (s, t) with s * t <= budget and s <= max_streams (0 = unbounded).
  /// Ties prefer more streams (inter-op has no efficiency tax). A
  /// 1-core budget always returns {1, 1}.
  IntraopPlan choose(std::size_t core_budget,
                     std::size_t max_streams = 0) const;

 private:
  double layer_seconds(const LayerCost& cost, std::size_t threads) const;

  CostModelParams params_;
  std::vector<LayerCost> costs_;
};

}  // namespace cf::dnn
