// Element-wise activations. CosmoFlow uses leaky ReLU on every conv
// and FC layer (§III-A). These ops are layout-agnostic (applying an
// element-wise map to a blocked tensor touches the same values) and
// are threaded with simple loop-level parallelism, exactly the OpenMP
// treatment the paper applies to TensorFlow's element-wise ops.
#pragma once

#include "dnn/layer.hpp"

namespace cf::dnn {

class LeakyRelu final : public Layer {
 public:
  /// The SC18 paper does not publish its slope; Ravanbakhsh et al. and
  /// the MLPerf-HPC descendant use small slopes — 0.01 is the default
  /// here and configurable per topology.
  explicit LeakyRelu(std::string name, float negative_slope = 0.01f);

  std::string kind() const override { return "activation"; }

  tensor::Shape plan(const tensor::Shape& input) override;

  using Layer::backward;
  using Layer::forward;

  void forward(const tensor::Tensor& src, tensor::Tensor& dst,
               LayerExecState& exec,
               runtime::ThreadPool& pool) const override;
  void backward(const tensor::Tensor& src, tensor::Tensor& ddst,
                tensor::Tensor& dsrc, bool need_dsrc, LayerExecState& exec,
                runtime::ThreadPool& pool) const override;

  // bf16 pass-through (dnn/forward_rp.cpp) for unfused networks: widen,
  // apply the slope in fp32, narrow. build_network() usually fuses this
  // layer away before it can run.
  bool supports_precision(Precision p) const override {
    static_cast<void>(p);
    return true;
  }
  void forward_bf16(const bf16_t* src, bf16_t* dst,
                    std::span<const bf16_t> params, LayerExecState& exec,
                    runtime::ThreadPool& pool) const override;

  FlopCounts flops() const override;

  std::unique_ptr<Layer> clone_unplanned() const override {
    return std::make_unique<LeakyRelu>(name(), slope_);
  }

  float negative_slope() const noexcept { return slope_; }

 private:
  float slope_;
};

}  // namespace cf::dnn
