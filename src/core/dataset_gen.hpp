// End-to-end dataset generation: the §IV-C path from sampled
// cosmologies to network-ready, split samples. Shared by the examples,
// the convergence/accuracy benches and the integration tests.
#pragma once

#include <cstdint>
#include <vector>

#include "cosmo/simulation.hpp"
#include "data/dataset.hpp"
#include "runtime/thread_pool.hpp"

namespace cf::core {

struct DatasetGenConfig {
  std::size_t simulations = 16;
  cosmo::SimulationConfig sim{};
  cosmo::ParamRanges ranges{};
  std::uint64_t seed = 0;
  /// Paper: 150 val + 50 test of 12,632 simulations — roughly 1.2% +
  /// 0.4%; on small suites we hold out more so the estimates mean
  /// something.
  double val_fraction = 0.15;
  double test_fraction = 0.10;
  /// §IV-C: "we duplicate once to augment our training dataset".
  bool duplicate_training = false;
};

struct GeneratedDataset {
  std::vector<data::Sample> train;
  std::vector<data::Sample> val;
  std::vector<data::Sample> test;
  std::vector<cosmo::CosmoParams> simulation_params;
};

/// Runs `simulations` boxes with sampled parameters, log1p-compresses
/// the voxel counts, splits every box into 8 sub-volumes and assigns
/// whole boxes to train/val/test. Deterministic in `seed`.
GeneratedDataset generate_dataset(const DatasetGenConfig& config,
                                  runtime::ThreadPool& pool);

}  // namespace cf::core
