file(REMOVE_RECURSE
  "libcosmoflow.a"
)
