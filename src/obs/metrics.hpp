// cf::obs metrics registry — named counters, gauges, stats and
// histograms.
//
// The paper's evidence is instrumentation (Fig 3's stage breakdown,
// Table I's per-layer costs, Fig 4's scaling study); this registry is
// the single authoritative store those views read from. Four metric
// kinds:
//
//  * Counter — monotonically increasing 64-bit integer (bytes read,
//    samples prefetched, allreduce chunks, straggler stalls). Lock-free
//    relaxed atomics: safe to bump from ThreadPool::parallel_for bodies
//    and pipeline producer threads.
//  * Gauge — last-write-wins double (current lr, queue depth).
//  * Stat — an aggregated distribution of observations (seconds,
//    usually): count/total/min/max/stddev, i.e. a thread-safe
//    runtime::TimeStats. Collectives, optimizer steps and pipeline
//    waits record here; Trainer::breakdown() and EpochStats are views
//    over these.
//  * Histogram — a log-bucketed latency distribution answering
//    percentile queries (p50/p99/p999). A Stat's mean/min/max cannot
//    describe a serving latency tail; the inference service
//    (SERVING.md) records its end-to-end latencies here. Lock-free
//    relaxed atomics per bucket, same concurrency contract as Counter.
//    Alongside the buckets it tracks exact count/sum/min/max, so the
//    ~12%-resolution percentile estimates ship with exact anchors.
//
// Handles returned by the registry are stable for the process lifetime
// (metrics are never deleted, only reset), so instrumented components
// look a name up once and record through the pointer on the hot path.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/timer.hpp"

namespace cf::obs {

/// Monotonic counter; relaxed atomics (no ordering is implied between
/// metric updates and the work they describe).
class Counter {
 public:
  void add(std::int64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-write-wins double.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Thread-safe observation aggregate (a mutex-guarded TimeStats).
/// Recording is one uncontended lock (~20 ns); instrumented sites sit
/// at span granularity (per layer call, per collective), never inside
/// compute kernels.
class Stat {
 public:
  void add(double value) {
    const std::lock_guard<std::mutex> lock(mutex_);
    stats_.add(value);
  }
  runtime::TimeStats snapshot() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }
  void reset() {
    const std::lock_guard<std::mutex> lock(mutex_);
    stats_ = runtime::TimeStats{};
  }

 private:
  mutable std::mutex mutex_;
  runtime::TimeStats stats_;
};

/// RAII timer recording elapsed seconds into a Stat on scope exit.
class ScopedStatTimer {
 public:
  explicit ScopedStatTimer(Stat& stat) : stat_(stat) {}
  ScopedStatTimer(const ScopedStatTimer&) = delete;
  ScopedStatTimer& operator=(const ScopedStatTimer&) = delete;
  ~ScopedStatTimer() { stat_.add(watch_.elapsed_seconds()); }

 private:
  Stat& stat_;
  runtime::Stopwatch watch_;
};

/// Point-in-time copy of a Histogram's buckets, with percentile
/// evaluation. Bucket i counts observations in
/// [kFloor·kGrowth^i, kFloor·kGrowth^(i+1)); percentile() walks the
/// cumulative counts and returns the matched bucket's upper bound, so
/// estimates are conservative (never below the true quantile) and
/// resolve to within one kGrowth factor (~12%).
struct HistogramSnapshot {
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  double sum = 0.0;
  /// Exact extremes of the observations (not bucket bounds); 0.0 when
  /// the histogram is empty. They bound the bucket-resolution
  /// percentile estimates — p99 == p999 at small counts just means
  /// both quantiles landed in the max's bucket.
  double min = 0.0;
  double max = 0.0;

  double mean() const noexcept {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
  /// Nearest-rank quantile, q in [0, 1]; 0 when empty.
  double percentile(double q) const noexcept;
};

/// Log-bucketed distribution for percentile queries. The bucket grid
/// is fixed at compile time: kBuckets exponential buckets of growth
/// kGrowth starting at kFloor seconds (1 µs), covering ~1 µs..2000 s —
/// below/above that, observations clamp to the first/last bucket.
/// add() is one transcendental + two relaxed atomics (≈20 ns), safe
/// from any thread; placement is per-request granularity (the serving
/// path), never inside compute kernels.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 96;
  static constexpr double kFloor = 1e-6;
  static constexpr double kGrowth = 1.25;

  void add(double value) noexcept {
    buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    double seen = min_.load(std::memory_order_relaxed);
    while (value < seen &&
           !min_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
    seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }

  HistogramSnapshot snapshot() const;
  void reset() noexcept;

  /// Upper bound of bucket i: kFloor·kGrowth^(i+1).
  static double bucket_upper_bound(std::size_t i) noexcept;

 private:
  static std::size_t bucket_index(double value) noexcept;

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Point-in-time copy of every registered metric.
struct MetricsSnapshot {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  std::map<std::string, runtime::TimeStats> stats;
};

class Registry {
 public:
  /// Process-wide registry; every instrumented module records here.
  static Registry& global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create. The returned reference never moves.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Stat& stat(std::string_view name);
  Histogram& histogram(std::string_view name);

  MetricsSnapshot snapshot() const;

  /// Zeroes every metric (registrations and handles survive).
  void reset();
  /// Zeroes metrics whose name starts with `prefix`.
  void reset_prefix(std::string_view prefix);

  /// Deterministic JSON dump: names sorted, fixed formatting. Schema
  /// documented in OBSERVABILITY.md.
  std::string to_json() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
      histograms_;
  std::map<std::string, std::unique_ptr<Stat>, std::less<>> stats_;
};

}  // namespace cf::obs
