#include "obs/jsonl.hpp"

namespace cf::obs {

namespace json {

void append_double(std::string& out, double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  out += buffer;
}

void append_quoted(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace json

void JsonObject::key(std::string_view k) {
  if (body_.size() > 1) body_ += ',';
  json::append_quoted(body_, k);
  body_ += ':';
}

JsonObject& JsonObject::field(std::string_view k, double value) {
  key(k);
  json::append_double(body_, value);
  return *this;
}

JsonObject& JsonObject::field(std::string_view k, std::int64_t value) {
  key(k);
  body_ += std::to_string(value);
  return *this;
}

JsonObject& JsonObject::field(std::string_view k, std::string_view value) {
  key(k);
  json::append_quoted(body_, value);
  return *this;
}

JsonObject& JsonObject::field(std::string_view k, bool value) {
  key(k);
  body_ += value ? "true" : "false";
  return *this;
}

JsonlSink::JsonlSink(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "w");
}

JsonlSink::~JsonlSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void JsonlSink::write(const JsonObject& record) { write_line(record.str()); }

void JsonlSink::write_line(const std::string& line) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return;
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
}

}  // namespace cf::obs
