#!/usr/bin/env sh
# AddressSanitizer gate for the memory-planner era: builds the repo
# with -DCOSMOFLOW_ASAN=ON into build-asan/ and runs the suites that
# drive tensors rebound onto shared arenas — the diff ping-pong
# buffers, the shared backward scratch, and the zero-free conv gather /
# pool direct-write kernels whose correctness now depends on exact
# in-bounds full-coverage writes. Any out-of-bounds access or
# use-after-free fails the script.
#
# Usage: check_asan.sh [repo_root]
set -eu

root="${1:-$(dirname "$0")/..}"
cd "$root" || exit 1

build_dir="build-asan"

cmake -B "$build_dir" -S . \
  -DCOSMOFLOW_ASAN=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "$build_dir" --target cosmoflow_tests -j "$(nproc)"

# halt_on_error stops at the first bad access; detect_stack_use_after_return
# widens coverage to the kernels' stack-local accumulator rows.
export ASAN_OPTIONS="halt_on_error=1 detect_stack_use_after_return=1"

"$build_dir/tests/cosmoflow_tests" \
  --gtest_filter='Memplan*.*:Network*.*:Blocked*.*:Shapes/FusedConvVsUnfused*.*:FusedDenseVsUnfused*.*:Fusion*.*:AvgPool*.*:Flatten*.*:Threads/ConvThreadInvariance*.*'

echo "ASan: no memory errors detected"
