// Fig 3 reproduction: time breakdown of the CosmoFlow application by
// stage — 3D convolutions, non-convolutional compute (pooling, dense,
// element-wise ops, reorders), optimizer, gradient-aggregation
// communication, and unhidden I/O wait.
//
// The paper profiles one KNL node: conv kernels dominate, followed by
// non-convolutional compute and framework overheads; the CPE ML Plugin
// threads mostly spin at single-node scale. Here the same breakdown is
// measured by instrumented training of the scaled network on simulated
// data.
//
//   ./bench_fig3_breakdown [--dhw=32] [--ranks=2] [--epochs=2]
//                          [--trace=trace.json]
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <utility>

#include "core/dataset_gen.hpp"
#include "core/topology.hpp"
#include "core/trainer.hpp"
#include "obs/telemetry.hpp"

int main(int argc, char** argv) {
  using namespace cf;
  std::int64_t dhw = 32;
  int ranks = 2;
  int epochs = 2;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--dhw=", 6) == 0) dhw = std::atoll(argv[i] + 6);
    if (std::strncmp(argv[i], "--ranks=", 8) == 0) {
      ranks = std::atoi(argv[i] + 8);
    }
    if (std::strncmp(argv[i], "--epochs=", 9) == 0) {
      epochs = std::atoi(argv[i] + 9);
    }
    if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    }
  }

  std::printf("=== bench_fig3_breakdown: single-node profile by stage "
              "===\n\n");

  runtime::ThreadPool pool;
  core::DatasetGenConfig gen;
  gen.simulations = 8;
  gen.sim.grid = {2 * dhw, 4.0 * static_cast<double>(dhw)};
  gen.sim.voxels = 2 * dhw;
  gen.seed = 3;
  core::GeneratedDataset dataset = core::generate_dataset(gen, pool);

  data::InMemorySource train(std::move(dataset.train));
  data::InMemorySource val(std::move(dataset.val));

  core::TrainerConfig config;
  config.nranks = ranks;
  config.epochs = epochs;
  config.pipeline.io_threads = 1;
  core::Trainer trainer(core::cosmoflow_scaled(dhw), train, val, config);
  std::printf("training %s, %d ranks x %d epochs on %zu samples...\n\n",
              trainer.topology().name.c_str(), ranks, epochs, train.size());
#if COSMOFLOW_TELEMETRY_ENABLED
  obs::Tracer::global().clear();
#endif
  const auto stats = trainer.run();

  const core::CategoryBreakdown breakdown = trainer.breakdown();
  double accounted = 0.0;
  for (const auto& [category, seconds] : breakdown.seconds) {
    accounted += seconds;
  }
  std::printf("%-22s %10s %8s\n", "stage (rank 0)", "seconds", "share");
  const auto row = [&](const char* name, double seconds) {
    std::printf("%-22s %10.3f %7.1f%%\n", name, seconds,
                100.0 * seconds / breakdown.total);
  };
  row("3D convolutions", breakdown.seconds.at("conv"));
  row("pooling", breakdown.seconds.at("pool"));
  row("dense layers", breakdown.seconds.at("dense"));
  row("element-wise (lrelu)", breakdown.seconds.at("activation"));
  row("layout reorders", breakdown.seconds.at("reorder"));
  row("optimizer (Adam+LARC)", breakdown.seconds.at("optimizer"));
  row("comm (allreduce)", breakdown.seconds.at("comm"));
  row("I/O wait (unhidden)", breakdown.seconds.at("io_wait"));
  row("other (framework)", breakdown.total - accounted);
  std::printf("%-22s %10.3f\n", "walltime", breakdown.total);

#if COSMOFLOW_TELEMETRY_ENABLED
  // Cross-check: the same shape regenerated from trace spans, grouped
  // by span category and summed over every rank thread.
  std::map<std::string, std::pair<double, std::int64_t>> by_category;
  for (const obs::TraceEvent& event : obs::Tracer::global().snapshot()) {
    auto& [seconds, count] = by_category[event.category];
    seconds += static_cast<double>(event.dur_ns) / 1e9;
    ++count;
  }
  std::printf("\n%-22s %10s %8s  (trace spans, all ranks)\n",
              "span category", "seconds", "events");
  for (const auto& [category, acc] : by_category) {
    std::printf("%-22s %10.3f %8lld\n", category.c_str(), acc.first,
                static_cast<long long>(acc.second));
  }
  if (obs::Tracer::global().dropped() > 0) {
    std::printf("(%llu events dropped; raise COSMOFLOW_TRACE_CAPACITY "
                "for full traces)\n",
                static_cast<unsigned long long>(
                    obs::Tracer::global().dropped()));
  }
  if (!trace_path.empty()) {
    if (obs::Tracer::global().write_chrome_trace(trace_path)) {
      std::printf("wrote chrome://tracing trace to %s\n",
                  trace_path.c_str());
    } else {
      std::printf("FAILED to write trace to %s\n", trace_path.c_str());
      return 1;
    }
  }
#else
  if (!trace_path.empty()) {
    std::printf("\n--trace ignored: built with COSMOFLOW_TELEMETRY=OFF\n");
  }
#endif

  std::printf("\nlast epoch: train loss %.5f, val loss %.5f\n",
              stats.back().train_loss, stats.back().val_loss);
  std::printf("\npaper (Fig 3, 68-core KNL, single node): 3D convolutions "
              "are the largest stage; element-wise ops + reorders form "
              "the bulk of the non-conv compute; plugin threads spin "
              "(no real communication at 1 node); I/O fully hidden.\n");
  std::printf("shape targets: conv >= every other single category; "
              "comm share grows with ranks; io_wait ~ 0 for in-memory "
              "sources.\n");
  return 0;
}
