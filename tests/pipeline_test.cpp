// Zero-copy data path integration tests (DESIGN.md §2.7).
//
// Three invariants pin the mmap + pooled-buffer pipeline against the
// seed ifstream + allocate-per-sample path:
//
//  1. Corruption safety: any single bit flip or truncation of a shard
//     surfaces as CorruptRecordError in *both* reader modes — never a
//     silent wrong sample, never a giant allocation.
//  2. Bounded allocation: with pooling on, cumulative pool misses per
//     pipeline never exceed the provable in-flight bound
//     queue_capacity + io_threads + 1 (ring slots + one buffer per
//     producer + the consumer-held buffer), across any number of
//     epochs.
//  3. Identity: delivered bytes — and therefore the whole training
//     trajectory — are bitwise identical at every io_threads × pool ×
//     reader-mode combination.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <vector>

#include "core/dataset_gen.hpp"
#include "core/topology.hpp"
#include "core/trainer.hpp"
#include "data/cfrecord.hpp"
#include "data/dataset.hpp"
#include "data/pipeline.hpp"
#include "data/sample.hpp"
#include "obs/metrics.hpp"
#include "runtime/rng.hpp"
#include "tensor/tensor_ops.hpp"

namespace cf::data {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    path_ = fs::temp_directory_path() /
            ("cf_pipe_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }
  fs::path path() const { return path_; }

 private:
  fs::path path_;
  static inline int counter_ = 0;
};

Sample make_sample(std::uint64_t seed, std::int64_t dhw = 4) {
  runtime::Rng rng(seed);
  Sample sample;
  sample.volume = tensor::Tensor(tensor::Shape{1, dhw, dhw, dhw});
  tensor::fill_normal(sample.volume, rng, 0.0f, 1.0f);
  sample.target = {rng.uniform(), rng.uniform(), rng.uniform()};
  return sample;
}

// ---------------------------------------------------------------------
// Corruption fuzz: framing must catch every single-bit flip and every
// mid-record truncation, identically in stream and mmap modes.

/// Writes three records (payload sizes 5, 0, 33) to `path`. With 12
/// header + 4 footer bytes of framing the records end at byte offsets
/// 21, 37 and 86 — the only prefixes at which a truncated file may
/// read back cleanly.
constexpr std::uint64_t kFuzzBoundaries[] = {0, 21, 37, 86};

void write_fuzz_file(const std::string& path) {
  RecordWriter writer(path);
  std::vector<std::uint8_t> payload(5);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(0xA0 + i);
  }
  writer.write(payload);
  writer.write({});
  payload.resize(33);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 7 + 1);
  }
  writer.write(payload);
  writer.close();
}

/// Drains every record; returns the record count on clean end-of-file
/// or nullopt if CorruptRecordError was raised.
std::optional<std::size_t> drain(const std::string& path, ReaderMode mode) {
  try {
    RecordReader reader(path, mode);
    std::vector<std::uint8_t> payload;
    std::size_t count = 0;
    while (reader.read(payload)) ++count;
    return count;
  } catch (const CorruptRecordError&) {
    return std::nullopt;
  }
}

TEST(CfrecordFuzz, EveryBitFlipRaisesCorruptionInBothModes) {
  TempDir dir;
  const std::string pristine = (dir.path() / "ok.cfrecord").string();
  const std::string mutated = (dir.path() / "bad.cfrecord").string();
  write_fuzz_file(pristine);
  std::vector<std::uint8_t> bytes;
  {
    std::ifstream in(pristine, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  ASSERT_EQ(bytes.size(), 86u);

  for (std::size_t i = 0; i < bytes.size(); ++i) {
    auto flipped = bytes;
    flipped[i] ^= static_cast<std::uint8_t>(1u << (i % 8));
    {
      std::ofstream out(mutated, std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(flipped.data()),
                static_cast<std::streamsize>(flipped.size()));
    }
    for (const ReaderMode mode : {ReaderMode::kStream, ReaderMode::kMmap}) {
      EXPECT_EQ(drain(mutated, mode), std::nullopt)
          << "bit flip at byte " << i << " undetected in mode "
          << static_cast<int>(mode);
    }
  }
  // Sanity: the pristine file reads all three records in both modes.
  EXPECT_EQ(drain(pristine, ReaderMode::kStream), 3u);
  EXPECT_EQ(drain(pristine, ReaderMode::kMmap), 3u);
}

TEST(CfrecordFuzz, TruncationsReadCleanlyOnlyAtRecordBoundaries) {
  TempDir dir;
  const std::string pristine = (dir.path() / "ok.cfrecord").string();
  const std::string cut = (dir.path() / "cut.cfrecord").string();
  write_fuzz_file(pristine);

  for (std::uint64_t len = 0; len <= 86; ++len) {
    fs::copy_file(pristine, cut, fs::copy_options::overwrite_existing);
    fs::resize_file(cut, len);
    const bool at_boundary =
        std::find(std::begin(kFuzzBoundaries), std::end(kFuzzBoundaries),
                  len) != std::end(kFuzzBoundaries);
    for (const ReaderMode mode : {ReaderMode::kStream, ReaderMode::kMmap}) {
      const auto result = drain(cut, mode);
      if (at_boundary) {
        // A prefix ending exactly on a record boundary is a valid
        // (shorter) file: the records before the cut read back.
        const std::size_t records =
            len == 0 ? 0 : (len == 21 ? 1 : (len == 37 ? 2 : 3));
        EXPECT_EQ(result, records) << "truncation at " << len;
      } else {
        EXPECT_EQ(result, std::nullopt)
            << "mid-record truncation at " << len
            << " undetected in mode " << static_cast<int>(mode);
      }
    }
  }
}

// ---------------------------------------------------------------------
// SamplePool steady state.

double pool_allocs() {
  return obs::Registry::global().gauge("data/pipeline/pool_allocs").value();
}
double pool_hits() {
  return obs::Registry::global().gauge("data/pipeline/pool_hits").value();
}

TEST(PipelinePool, SteadyStateAllocationsStayWithinInFlightBound) {
  std::vector<Sample> samples;
  for (int i = 0; i < 24; ++i) samples.push_back(make_sample(300 + i));
  InMemorySource source(std::move(samples));

  PipelineConfig config;
  config.queue_capacity = 4;
  config.io_threads = 2;
  config.pool = true;
  config.metric_prefix = "data/pipeline/test_pool";
  Pipeline pipeline(source, config);

  // Peak concurrent buffer demand: one Sample per ring slot, one in
  // each producer's hands, one held by the consumer. Pool misses are
  // only possible while that working set is still being built, so the
  // cumulative miss count is bounded by it — across *any* number of
  // epochs.
  const double bound = static_cast<double>(config.queue_capacity +
                                           config.io_threads + 1);
  const double allocs_before = pool_allocs();
  const double hits_before = pool_hits();

  std::vector<std::size_t> indices(source.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  Sample sample;  // one buffer reused across every next() call
  std::size_t delivered = 0;
  const int epochs = 6;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    pipeline.start_epoch(indices);
    while (pipeline.next(sample)) ++delivered;
  }
  EXPECT_EQ(delivered, indices.size() * epochs);
  EXPECT_LE(pool_allocs() - allocs_before, bound);
  // Nearly every acquire after warm-up is a recycle.
  EXPECT_GT(pool_hits() - hits_before,
            static_cast<double>(indices.size() * (epochs - 1)));
}

TEST(PipelinePool, DisabledPoolLeavesGaugesUntouched) {
  std::vector<Sample> samples;
  for (int i = 0; i < 8; ++i) samples.push_back(make_sample(400 + i));
  InMemorySource source(std::move(samples));

  PipelineConfig config;
  config.queue_capacity = 4;
  config.io_threads = 2;
  config.pool = false;
  config.metric_prefix = "data/pipeline/test_nopool";
  Pipeline pipeline(source, config);

  const double allocs_before = pool_allocs();
  const double hits_before = pool_hits();
  std::vector<std::size_t> indices(source.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  Sample sample;
  for (int epoch = 0; epoch < 3; ++epoch) {
    pipeline.start_epoch(indices);
    while (pipeline.next(sample)) {
    }
  }
  EXPECT_EQ(pool_allocs(), allocs_before);
  EXPECT_EQ(pool_hits(), hits_before);
}

// ---------------------------------------------------------------------
// End-to-end byte identity across every data-path configuration.

TEST(DataPath, BytesIdenticalAcrossMmapPoolAndThreadCombos) {
  TempDir dir;
  std::vector<Sample> samples;
  for (int i = 0; i < 13; ++i) samples.push_back(make_sample(500 + i, 6));
  const auto paths = write_shards(samples, dir.str(), "combo",
                                  /*samples_per_shard=*/5, /*seed=*/11);

  // Reference bytes: direct single-threaded reads, stream mode.
  CfrecordSource reference_source(paths, ReaderMode::kStream);
  ASSERT_FALSE(reference_source.mapped());
  const auto reference_reader = reference_source.make_reader();
  std::vector<Sample> reference;
  for (std::size_t i = 0; i < reference_source.size(); ++i) {
    reference.push_back(reference_reader->get(i));
  }

  std::vector<std::size_t> indices(reference.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;

  for (const ReaderMode mode : {ReaderMode::kAuto, ReaderMode::kStream}) {
    for (const bool pool : {true, false}) {
      for (const std::size_t io_threads : {std::size_t{1}, std::size_t{3}}) {
        CfrecordSource source(paths, mode);
        PipelineConfig config;
        config.queue_capacity = 4;
        config.io_threads = io_threads;
        config.pool = pool;
        config.metric_prefix = "data/pipeline/test_combo";
        Pipeline pipeline(source, config);
        pipeline.start_epoch(indices);
        Sample sample;
        std::size_t i = 0;
        while (pipeline.next(sample)) {
          ASSERT_LT(i, reference.size());
          const Sample& want = reference[i];
          ASSERT_EQ(sample.volume.shape(), want.volume.shape());
          EXPECT_EQ(std::memcmp(sample.volume.data(), want.volume.data(),
                                sample.volume.size() * sizeof(float)),
                    0)
              << "sample " << i << " mode " << static_cast<int>(mode)
              << " pool " << pool << " io_threads " << io_threads;
          EXPECT_EQ(std::memcmp(sample.target.data(), want.target.data(),
                                sample.target.size() * sizeof(float)),
                    0);
          ++i;
        }
        EXPECT_EQ(i, reference.size());
      }
    }
  }
}

// ---------------------------------------------------------------------
// Training trajectory is bitwise independent of the data path.

TEST(DataPath, TrainerTrajectoryBitwiseAcrossDataPathConfigs) {
  runtime::ThreadPool gen_pool;
  core::DatasetGenConfig gen;
  gen.simulations = 6;
  gen.sim.grid = {16, 64.0};
  gen.sim.voxels = 16;
  gen.seed = 20;
  // floor(0.15 * 6 sims) = 0 would leave the val split empty; hold out
  // one whole simulation instead.
  gen.val_fraction = 0.2;
  core::GeneratedDataset dataset = core::generate_dataset(gen, gen_pool);

  TempDir dir;
  const auto train_paths = write_shards(dataset.train, dir.str(), "train",
                                        /*samples_per_shard=*/16,
                                        /*seed=*/3);
  const auto val_paths = write_shards(dataset.val, dir.str(), "val",
                                      /*samples_per_shard=*/16, /*seed=*/4);

  const auto run = [&](ReaderMode mode, bool pool) {
    CfrecordSource train(train_paths, mode);
    CfrecordSource val(val_paths, mode);
    core::TrainerConfig config;
    config.nranks = 2;
    config.epochs = 2;
    config.pipeline.io_threads = 2;
    config.pipeline.pool = pool;
    core::Trainer trainer(core::cosmoflow_scaled(8), train, val, config);
    const auto metrics = trainer.run();
    return std::pair{metrics.back().train_loss, metrics.back().val_loss};
  };

  const auto baseline = run(ReaderMode::kStream, false);  // seed path
  EXPECT_TRUE(std::isfinite(baseline.first));
  EXPECT_EQ(run(ReaderMode::kAuto, true), baseline);
  EXPECT_EQ(run(ReaderMode::kAuto, false), baseline);
  EXPECT_EQ(run(ReaderMode::kStream, true), baseline);
}

}  // namespace
}  // namespace cf::data
