#include "obs/metrics.hpp"

#include "obs/jsonl.hpp"

namespace cf::obs {

Registry& Registry::global() {
  static Registry* registry = new Registry();  // leaked: outlives threads
  return *registry;
}

namespace {

template <typename Map>
auto& find_or_create(Map& map, std::string_view name, std::mutex& mutex) {
  const std::lock_guard<std::mutex> lock(mutex);
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name),
                     std::make_unique<typename Map::mapped_type::element_type>())
             .first;
  }
  return *it->second;
}

using json::append_double;
using json::append_quoted;

}  // namespace

Counter& Registry::counter(std::string_view name) {
  return find_or_create(counters_, name, mutex_);
}

Gauge& Registry::gauge(std::string_view name) {
  return find_or_create(gauges_, name, mutex_);
}

Stat& Registry::stat(std::string_view name) {
  return find_or_create(stats_, name, mutex_);
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace(name, gauge->value());
  }
  for (const auto& [name, stat] : stats_) {
    snap.stats.emplace(name, stat->snapshot());
  }
  return snap;
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, stat] : stats_) stat->reset();
}

void Registry::reset_prefix(std::string_view prefix) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto matches = [&](const std::string& name) {
    return name.size() >= prefix.size() &&
           std::string_view(name).substr(0, prefix.size()) == prefix;
  };
  for (auto& [name, counter] : counters_) {
    if (matches(name)) counter->reset();
  }
  for (auto& [name, gauge] : gauges_) {
    if (matches(name)) gauge->reset();
  }
  for (auto& [name, stat] : stats_) {
    if (matches(name)) stat->reset();
  }
}

std::string Registry::to_json() const {
  const MetricsSnapshot snap = snapshot();
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) out += ',';
    first = false;
    append_quoted(out, name);
    out += ':';
    out += std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) out += ',';
    first = false;
    append_quoted(out, name);
    out += ':';
    append_double(out, value);
  }
  out += "},\"stats\":{";
  first = true;
  for (const auto& [name, stats] : snap.stats) {
    if (!first) out += ',';
    first = false;
    append_quoted(out, name);
    out += ":{\"count\":";
    out += std::to_string(stats.count());
    out += ",\"total\":";
    append_double(out, stats.total());
    out += ",\"min\":";
    append_double(out, stats.min());
    out += ",\"max\":";
    append_double(out, stats.max());
    out += ",\"mean\":";
    append_double(out, stats.mean());
    out += '}';
  }
  out += "}}";
  return out;
}

}  // namespace cf::obs
