// Average pooling, the paper's spatial down-sampler (stride (2,2,2)
// after the early conv layers, §III-A).
//
// Pooling is a special case of convolution whose weights are the
// constant 1/K^3 (§III-C); it is bandwidth-bound, so the blocked
// implementation is a straight 16-lane streaming average over the
// window with threading over output voxels. Valid padding only — the
// CosmoFlow volumes divide evenly.
#pragma once

#include "dnn/layer.hpp"

namespace cf::dnn {

struct AvgPool3dConfig {
  std::int64_t kernel = 2;
  std::int64_t stride = 2;
};

class AvgPool3d final : public Layer {
 public:
  AvgPool3d(std::string name, AvgPool3dConfig config);

  std::string kind() const override { return "pool"; }

  /// Input and output are blocked {Cb, D, H, W, 16}.
  tensor::Shape plan(const tensor::Shape& input) override;

  using Layer::backward;
  using Layer::forward;

  void forward(const tensor::Tensor& src, tensor::Tensor& dst,
               LayerExecState& exec,
               runtime::ThreadPool& pool) const override;
  void backward(const tensor::Tensor& src, tensor::Tensor& ddst,
                tensor::Tensor& dsrc, bool need_dsrc, LayerExecState& exec,
                runtime::ThreadPool& pool) const override;

  // bf16 pass-through (dnn/forward_rp.cpp): widen, average in fp32,
  // narrow. kInt8Weights needs nothing — pooling has no weights.
  bool supports_precision(Precision p) const override {
    static_cast<void>(p);
    return true;
  }
  void forward_bf16(const bf16_t* src, bf16_t* dst,
                    std::span<const bf16_t> params, LayerExecState& exec,
                    runtime::ThreadPool& pool) const override;

  FlopCounts flops() const override;

  std::unique_ptr<Layer> clone_unplanned() const override {
    return std::make_unique<AvgPool3d>(name(), config_);
  }

  const AvgPool3dConfig& config() const noexcept { return config_; }

 private:
  AvgPool3dConfig config_;
  std::int64_t cb_ = 0;
  std::int64_t in_d_ = 0, in_h_ = 0, in_w_ = 0;
  std::int64_t out_d_ = 0, out_h_ = 0, out_w_ = 0;
};

/// Plain-layout oracle: dst {C, OD, OH, OW} = avgpool(src {C, D, H, W}).
void avgpool3d_forward_reference(const tensor::Tensor& src,
                                 std::int64_t kernel, std::int64_t stride,
                                 tensor::Tensor& dst);

}  // namespace cf::dnn
