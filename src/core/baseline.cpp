#include "core/baseline.hpp"

#include <cmath>
#include <stdexcept>

#include "cosmo/simulation.hpp"
#include "cosmo/statistics.hpp"

namespace cf::core {

std::vector<double> solve_spd(std::vector<double> a, std::vector<double> b) {
  const std::size_t n = b.size();
  if (a.size() != n * n) {
    throw std::invalid_argument("solve_spd: dimension mismatch");
  }
  // In-place Cholesky: a = L L^T (lower triangle).
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a[j * n + j];
    for (std::size_t k = 0; k < j; ++k) diag -= a[j * n + k] * a[j * n + k];
    if (diag <= 0.0) {
      throw std::invalid_argument("solve_spd: matrix not positive definite");
    }
    const double ljj = std::sqrt(diag);
    a[j * n + j] = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double value = a[i * n + j];
      for (std::size_t k = 0; k < j; ++k) {
        value -= a[i * n + k] * a[j * n + k];
      }
      a[i * n + j] = value / ljj;
    }
  }
  // Forward substitution L y = b.
  for (std::size_t i = 0; i < n; ++i) {
    double value = b[i];
    for (std::size_t k = 0; k < i; ++k) value -= a[i * n + k] * b[k];
    b[i] = value / a[i * n + i];
  }
  // Back substitution L^T x = y.
  for (std::size_t ii = n; ii-- > 0;) {
    double value = b[ii];
    for (std::size_t k = ii + 1; k < n; ++k) value -= a[k * n + ii] * b[k];
    b[ii] = value / a[ii * n + ii];
  }
  return b;
}

SummaryStatBaseline::SummaryStatBaseline(BaselineConfig config)
    : config_(config) {
  if (config_.spectrum_bins <= 0 || config_.box_size <= 0.0 ||
      config_.ridge_lambda < 0.0) {
    throw std::invalid_argument("SummaryStatBaseline: bad config");
  }
}

std::vector<double> SummaryStatBaseline::featurize(
    const data::Sample& sample, runtime::ThreadPool& pool) const {
  return cosmo::summary_features(sample.volume, config_.box_size,
                                 config_.spectrum_bins, pool);
}

void SummaryStatBaseline::fit(const data::SampleSource& train,
                              runtime::ThreadPool& pool) {
  const std::size_t count = train.size();
  if (count < 4) {
    throw std::invalid_argument("SummaryStatBaseline::fit: too few samples");
  }
  const auto reader = train.make_reader();

  std::vector<std::vector<double>> features;
  std::vector<std::array<float, 3>> targets;
  features.reserve(count);
  targets.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const data::Sample sample = reader->get(i);
    features.push_back(featurize(sample, pool));
    targets.push_back(sample.target);
  }
  const std::size_t dim = features.front().size();

  // Standardize features.
  feature_mean_.assign(dim, 0.0);
  feature_std_.assign(dim, 0.0);
  for (const auto& f : features) {
    for (std::size_t j = 0; j < dim; ++j) feature_mean_[j] += f[j];
  }
  for (double& m : feature_mean_) m /= static_cast<double>(count);
  for (const auto& f : features) {
    for (std::size_t j = 0; j < dim; ++j) {
      const double d = f[j] - feature_mean_[j];
      feature_std_[j] += d * d;
    }
  }
  for (double& s : feature_std_) {
    s = std::sqrt(s / static_cast<double>(count));
    if (s < 1e-12) s = 1.0;  // constant feature: neutralized
  }
  for (auto& f : features) {
    for (std::size_t j = 0; j < dim; ++j) {
      f[j] = (f[j] - feature_mean_[j]) / feature_std_[j];
    }
  }

  // Ridge normal equations with an (unregularized) intercept: the
  // augmented feature vector is [x, 1].
  const std::size_t aug = dim + 1;
  std::vector<double> gram(aug * aug, 0.0);
  for (const auto& f : features) {
    for (std::size_t i = 0; i < dim; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        gram[i * aug + j] += f[i] * f[j];
      }
      gram[dim * aug + i] += f[i];
    }
  }
  gram[dim * aug + dim] = static_cast<double>(count);
  // Symmetrize and regularize.
  for (std::size_t i = 0; i < aug; ++i) {
    for (std::size_t j = i + 1; j < aug; ++j) {
      gram[i * aug + j] = gram[j * aug + i];
    }
  }
  for (std::size_t i = 0; i < dim; ++i) {
    gram[i * aug + i] += config_.ridge_lambda * static_cast<double>(count);
  }

  for (int t = 0; t < 3; ++t) {
    std::vector<double> rhs(aug, 0.0);
    for (std::size_t s = 0; s < count; ++s) {
      const double y = targets[s][static_cast<std::size_t>(t)];
      for (std::size_t j = 0; j < dim; ++j) rhs[j] += features[s][j] * y;
      rhs[dim] += y;
    }
    weights_[static_cast<std::size_t>(t)] = solve_spd(gram, rhs);
  }
  fitted_ = true;
}

std::array<float, 3> SummaryStatBaseline::predict(
    const data::Sample& sample, runtime::ThreadPool& pool) const {
  if (!fitted_) {
    throw std::logic_error("SummaryStatBaseline::predict: fit() first");
  }
  auto features = featurize(sample, pool);
  const std::size_t dim = feature_mean_.size();
  if (features.size() != dim) {
    throw std::invalid_argument(
        "SummaryStatBaseline::predict: feature dimension changed");
  }
  for (std::size_t j = 0; j < dim; ++j) {
    features[j] = (features[j] - feature_mean_[j]) / feature_std_[j];
  }
  std::array<float, 3> out{};
  for (int t = 0; t < 3; ++t) {
    const auto& w = weights_[static_cast<std::size_t>(t)];
    double acc = w[dim];  // intercept
    for (std::size_t j = 0; j < dim; ++j) acc += w[j] * features[j];
    out[static_cast<std::size_t>(t)] = static_cast<float>(acc);
  }
  return out;
}

std::vector<Prediction> SummaryStatBaseline::evaluate(
    const data::SampleSource& source, runtime::ThreadPool& pool) const {
  const auto reader = source.make_reader();
  std::vector<Prediction> predictions;
  predictions.reserve(source.size());
  for (std::size_t i = 0; i < source.size(); ++i) {
    const data::Sample sample = reader->get(i);
    const auto normalized = predict(sample, pool);
    const cosmo::CosmoParams pred = cosmo::denormalize_params(normalized);
    const cosmo::CosmoParams truth = cosmo::denormalize_params(
        {sample.target[0], sample.target[1], sample.target[2]});
    Prediction p;
    p.predicted = {pred.omega_m, pred.sigma8, pred.ns};
    p.truth = {truth.omega_m, truth.sigma8, truth.ns};
    predictions.push_back(p);
  }
  return predictions;
}

}  // namespace cf::core
