// Serving latency/throughput under three canonical traffic shapes —
// the evidence for SERVING.md's latency/throughput trade-off story.
//
// One micro-batching Server (cf::serve) over one shared Network is
// driven by:
//
//  * closed-loop — C clients submit, wait, submit again. Offered load
//    self-regulates to the service rate; measures best-case
//    throughput and in-system latency, never trips admission control.
//  * open-loop poisson — arrivals on a Poisson process at ~0.7x the
//    calibrated service capacity, submitted on a timer regardless of
//    completions. The realistic regime: latency includes queueing
//    delay, and the tail (p99/p999) separates from the median.
//  * open-loop bursty — the same average rate delivered as on/off
//    square-wave bursts at ~10x capacity, each burst sized past the
//    admission budget. The overload regime: queue depth hits the
//    budget and requests are shed with a typed Overloaded rejection;
//    measures the rejection rate and what the latency tail looks like
//    for the survivors.
//
// Latency percentiles come from the server's own serve/latency
// histogram (OBSERVABILITY.md) — the bench reads the same metrics a
// production exporter would, not a private stopwatch. Every completed
// output is verified bitwise against a serial reference (DESIGN.md
// §2.4), so a batching or concurrency bug fails the bench loudly.
//
//   ./bench_serve [--dhw=16] [--workers=2] [--threads-per-worker=1]
//       [--max-batch=8] [--max-delay-us=2000] [--queue-capacity=64]
//       [--requests=384] [--clients=4] [--precision=fp32|bf16|int8w]
//       [--smoke] [--json=BENCH_serve.json]
//
// --threads-per-worker=0 selects the server's cost-model auto mode
// (DESIGN.md §2.6): the dnn::CostModel splits the hardware-thread
// budget across the workers and applies its per-layer grains to every
// worker context. Like bench_inference_throughput, the JSON records
// hardware_threads and a scaling_valid flag — false when workers x
// threads oversubscribe the machine, where throughput rows measure
// time-slicing rather than capacity.
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/topology.hpp"
#include "dnn/cost_model.hpp"
#include "dnn/precision.hpp"
#include "obs/jsonl.hpp"
#include "obs/metrics.hpp"
#include "runtime/rng.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/timer.hpp"
#include "serve/server.hpp"
#include "tensor/tensor_ops.hpp"

#ifndef COSMOFLOW_GIT_SHA
#define COSMOFLOW_GIT_SHA "unknown"
#endif

namespace {

using namespace cf;
using Clock = std::chrono::steady_clock;

// A small pool of distinct inputs cycled through by every phase, with
// serial reference outputs fixed up front for bitwise verification.
struct Workload {
  std::vector<tensor::Tensor> inputs;
  std::vector<std::vector<float>> expected;
};

// What one traffic phase measured; serialized into BENCH_serve.json.
struct PhaseResult {
  std::string name;
  std::size_t offered = 0;
  std::int64_t accepted = 0;
  std::int64_t rejected = 0;
  std::int64_t completed = 0;
  double seconds = 0.0;
  double throughput = 0.0;  // completed / seconds
  double p50 = 0.0, p99 = 0.0, p999 = 0.0;
  double mean_batch_fill = 0.0;
  double mean_queue_wait = 0.0;
  double rejection_rate = 0.0;
};

// Read the server's own serve/* metrics after shutdown — the bench
// consumes the same registry a production exporter would.
PhaseResult harvest(const std::string& name, std::size_t offered,
                    double seconds) {
  auto& reg = obs::Registry::global();
  PhaseResult r;
  r.name = name;
  r.offered = offered;
  r.accepted = reg.counter("serve/accepted").value();
  r.rejected = reg.counter("serve/rejected").value();
  r.completed = reg.counter("serve/completed").value();
  r.seconds = seconds;
  r.throughput =
      seconds > 0.0 ? static_cast<double>(r.completed) / seconds : 0.0;
  const obs::HistogramSnapshot lat =
      reg.histogram("serve/latency").snapshot();
  r.p50 = lat.percentile(0.50);
  r.p99 = lat.percentile(0.99);
  r.p999 = lat.percentile(0.999);
  r.mean_batch_fill = reg.stat("serve/batch_fill").snapshot().mean();
  r.mean_queue_wait = reg.stat("serve/queue_wait").snapshot().mean();
  r.rejection_rate =
      offered > 0 ? static_cast<double>(r.rejected) /
                        static_cast<double>(offered)
                  : 0.0;
  return r;
}

void print_result(const PhaseResult& r) {
  std::printf(
      "%-18s | %5zu offered | %5lld done | %4.1f%% shed | %8.2f req/s | "
      "p50 %7.2f ms | p99 %7.2f ms | p999 %7.2f ms | fill %.2f\n",
      r.name.c_str(), r.offered, static_cast<long long>(r.completed),
      100.0 * r.rejection_rate, r.throughput, r.p50 * 1e3, r.p99 * 1e3,
      r.p999 * 1e3, r.mean_batch_fill);
}

// Verify a completed result against the reference bits for its input.
void check_bits(const serve::InferenceResult& result,
                const std::vector<float>& expected,
                std::atomic<int>& mismatches) {
  if (tensor::max_abs_diff(result.output, expected) != 0.0f) {
    mismatches.fetch_add(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t dhw = 16;
  serve::ServerConfig config;
  config.workers = 2;
  config.threads_per_worker = 1;
  config.max_batch = 8;
  config.max_delay_seconds = 2000e-6;
  config.queue_capacity = 64;
  std::size_t requests = 384;
  std::size_t clients = 4;
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--dhw=", 6) == 0) dhw = std::atoll(argv[i] + 6);
    if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      config.workers = static_cast<std::size_t>(std::atoi(argv[i] + 10));
    }
    if (std::strncmp(argv[i], "--threads-per-worker=", 21) == 0) {
      config.threads_per_worker =
          static_cast<std::size_t>(std::atoi(argv[i] + 21));
    }
    if (std::strncmp(argv[i], "--max-batch=", 12) == 0) {
      config.max_batch = static_cast<std::size_t>(std::atoi(argv[i] + 12));
    }
    if (std::strncmp(argv[i], "--max-delay-us=", 15) == 0) {
      config.max_delay_seconds = std::atof(argv[i] + 15) * 1e-6;
    }
    if (std::strncmp(argv[i], "--queue-capacity=", 17) == 0) {
      config.queue_capacity =
          static_cast<std::size_t>(std::atoi(argv[i] + 17));
    }
    if (std::strncmp(argv[i], "--requests=", 11) == 0) {
      requests = static_cast<std::size_t>(std::atoll(argv[i] + 11));
    }
    if (std::strncmp(argv[i], "--clients=", 10) == 0) {
      clients = static_cast<std::size_t>(std::atoi(argv[i] + 10));
    }
    if (std::strncmp(argv[i], "--precision=", 12) == 0) {
      config.precision = dnn::precision_from_string(argv[i] + 12);
    }
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }
  if (smoke) {
    // Sanitizer-friendly: tiny model, short phases, same code paths.
    dhw = 8;
    requests = 48;
    clients = 2;
  }
  if (clients == 0) clients = 1;

  const unsigned hardware_threads = std::thread::hardware_concurrency();
  const bool threads_auto = config.threads_per_worker == 0;
  std::printf("=== bench_serve: micro-batching inference service under "
              "closed-loop / poisson / bursty traffic ===\n");
  std::printf("(cosmoflow_scaled(%lld), %zu workers x %s threads, "
              "max_batch %zu, max_delay %.0f us, queue %zu, %zu requests "
              "per phase, %zu clients, %s inference, %u hardware "
              "threads)\n\n",
              static_cast<long long>(dhw), config.workers,
              threads_auto
                  ? "auto"
                  : std::to_string(config.threads_per_worker).c_str(),
              config.max_batch, config.max_delay_seconds * 1e6,
              config.queue_capacity, requests, clients,
              dnn::to_string(config.precision).data(), hardware_threads);

  // Reduced-precision side arenas are packed on the mutable handle
  // before the const shared view is taken — the Server only accepts a
  // prepared network (DESIGN.md §2.5).
  auto mutable_network = std::make_shared<dnn::Network>(
      core::build_network(core::cosmoflow_scaled(dhw), 7));
  if (config.precision != dnn::Precision::kFp32) {
    mutable_network->prepare_inference_precision(config.precision);
  }
  const std::shared_ptr<const dnn::Network> network = mutable_network;

  // Resolve the auto width locally too (the Server repeats this in its
  // constructor): calibration must run with the same per-worker thread
  // count the server will use, or capacity is mis-estimated.
  std::size_t resolved_threads = config.threads_per_worker;
  if (threads_auto) {
    const dnn::CostModel cost_model(*network);
    const dnn::IntraopPlan plan = cost_model.choose(
        runtime::ThreadPool::default_num_threads(), config.workers);
    resolved_threads = plan.threads_per_stream;
    std::printf("cost model: auto resolved to %zu thread(s) per worker "
                "(predicted parallel efficiency %.2f)\n\n",
                resolved_threads, plan.predicted_efficiency);
  }

  // Input pool + serial reference bits, and service-time calibration
  // on the same context (the open-loop phases derive their arrival
  // rates from the measured per-request cost).
  Workload workload;
  double service_seconds = 0.0;
  {
    dnn::ExecContext ctx = network->make_context(
        dnn::ExecMode::kInference, config.precision);
    runtime::ThreadPool pool(resolved_threads);
    constexpr std::size_t kPool = 8;
    for (std::size_t i = 0; i < kPool; ++i) {
      runtime::Rng rng(97, i);
      tensor::Tensor input(network->input_shape());
      tensor::fill_normal(input, rng, 0.0f, 1.0f);
      workload.expected.push_back(ctx.forward(input, pool).to_vector());
      workload.inputs.push_back(std::move(input));
    }
    runtime::TimeStats calib;
    for (std::size_t i = 0; i < 2 * kPool; ++i) {
      const runtime::Stopwatch watch;
      ctx.forward(workload.inputs[i % kPool], pool);
      calib.add(watch.elapsed_seconds());
    }
    service_seconds = calib.mean();
  }
  // Capacity is calibrated with the worker topology the server will
  // actually run — config.workers concurrent streams — so core
  // contention is priced in (a serial estimate overstates capacity on
  // a small machine and turns the "below capacity" phase into
  // accidental overload).
  double capacity = 0.0;
  {
    constexpr std::size_t kCalibReps = 24;
    std::vector<std::thread> threads;
    const runtime::Stopwatch watch;
    for (std::size_t w = 0; w < config.workers; ++w) {
      threads.emplace_back([&, w] {
        dnn::ExecContext ctx = network->make_context(
            dnn::ExecMode::kInference, config.precision);
        runtime::ThreadPool pool(resolved_threads);
        for (std::size_t r = 0; r < kCalibReps; ++r) {
          ctx.forward(workload.inputs[(w + r) % workload.inputs.size()],
                      pool);
        }
      });
    }
    for (auto& t : threads) t.join();
    capacity = static_cast<double>(config.workers * kCalibReps) /
               watch.elapsed_seconds();
  }
  std::printf("calibration: %.3f ms/request serial, ~%.1f req/s "
              "aggregate capacity across %zu concurrent workers\n\n",
              service_seconds * 1e3, capacity, config.workers);
  const bool scaling_valid =
      static_cast<unsigned long long>(config.workers) *
          static_cast<unsigned long long>(
              resolved_threads == 0 ? 1 : resolved_threads) <=
      (hardware_threads == 0 ? 1u : hardware_threads);
  if (!scaling_valid) {
    std::printf("WARNING: %zu workers x %zu thread(s)/worker "
                "oversubscribe %u hardware thread(s) — throughput rows "
                "measure time-slicing, not capacity (scaling_valid will "
                "be false)\n\n",
                config.workers, resolved_threads, hardware_threads);
  }

  std::atomic<int> mismatches{0};
  std::vector<PhaseResult> results;
  const auto input_for = [&](std::size_t i) -> const tensor::Tensor& {
    return workload.inputs[i % workload.inputs.size()];
  };
  const auto expected_for =
      [&](std::size_t i) -> const std::vector<float>& {
    return workload.expected[i % workload.expected.size()];
  };

  // --- Phase 1: closed-loop. -----------------------------------------
  {
    serve::Server server(network, config);
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> threads;
    const runtime::Stopwatch watch;
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1);
          if (i >= requests) break;
          std::future<serve::InferenceResult> future;
          // A closed-loop client retries a shed request immediately —
          // its own outstanding work bounds the offered load.
          while (server.submit(input_for(i).clone(), &future) !=
                 serve::SubmitStatus::kAccepted) {
            std::this_thread::yield();
          }
          check_bits(future.get(), expected_for(i), mismatches);
        }
      });
    }
    for (auto& t : threads) t.join();
    const double seconds = watch.elapsed_seconds();
    server.shutdown();
    results.push_back(harvest("closed-loop", requests, seconds));
    print_result(results.back());
  }

  // --- Phases 2+3: open-loop. Arrivals come off a timer; completions
  // are collected behind them. ---------------------------------------
  const auto open_loop = [&](const std::string& name, auto next_gap) {
    serve::Server server(network, config);
    std::vector<std::pair<std::size_t, std::future<serve::InferenceResult>>>
        futures;
    futures.reserve(requests);
    const runtime::Stopwatch watch;
    Clock::time_point due = Clock::now();
    for (std::size_t i = 0; i < requests; ++i) {
      std::this_thread::sleep_until(due);
      due += std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(next_gap(i)));
      std::future<serve::InferenceResult> future;
      if (server.submit(input_for(i).clone(), &future) ==
          serve::SubmitStatus::kAccepted) {
        futures.emplace_back(i, std::move(future));
      }
      // Overloaded submissions are genuinely shed: an open-loop client
      // does not retry, the rejection rate is the measurement.
    }
    for (auto& [i, future] : futures) {
      check_bits(future.get(), expected_for(i), mismatches);
    }
    const double seconds = watch.elapsed_seconds();
    server.shutdown();
    results.push_back(harvest(name, requests, seconds));
    print_result(results.back());
  };

  // Poisson arrivals at ~0.7x capacity: exponential interarrivals.
  {
    runtime::Rng rng(131);
    const double lambda = 0.7 * capacity;
    open_loop("open-loop-poisson", [&rng, lambda](std::size_t) {
      double u = rng.uniform_double();
      if (u >= 1.0) u = 0.9999999;
      return -std::log(1.0 - u) / lambda;
    });
  }

  // Bursty square wave: bursts at ~10x capacity, long enough to
  // overrun the admission budget plus everything buffered behind it,
  // separated by idle gaps that keep the average at the Poisson rate.
  {
    const double burst_gap = 1.0 / (10.0 * capacity);
    const std::size_t burst_len = 2 * config.queue_capacity;
    const double idle_gap =
        static_cast<double>(burst_len) *
        (1.0 / (0.7 * capacity) - burst_gap);
    open_loop("open-loop-bursty",
              [burst_gap, idle_gap, burst_len](std::size_t i) {
                const bool burst_end = (i + 1) % burst_len == 0;
                return burst_end ? idle_gap : burst_gap;
              });
  }

  if (mismatches.load() != 0) {
    throw std::runtime_error(
        "served output diverged from the serial reference bits");
  }
  std::printf("\nall completed outputs bitwise-match the serial "
              "reference (DESIGN.md 2.4)\n");

  if (!json_path.empty()) {
    obs::JsonObject rec;
    rec.field("bench", "serve")
        .field("commit", COSMOFLOW_GIT_SHA)
        .field("dhw", static_cast<std::int64_t>(dhw))
        .field("workers", static_cast<std::int64_t>(config.workers))
        .field("threads_per_worker",
               static_cast<std::int64_t>(resolved_threads))
        .field("threads_auto", threads_auto)
        .field("hardware_threads",
               static_cast<std::int64_t>(hardware_threads))
        .field("scaling_valid", scaling_valid)
        .field("max_batch", static_cast<std::int64_t>(config.max_batch))
        .field("max_delay_us", config.max_delay_seconds * 1e6)
        .field("queue_capacity",
               static_cast<std::int64_t>(config.queue_capacity))
        .field("requests", static_cast<std::int64_t>(requests))
        .field("clients", static_cast<std::int64_t>(clients))
        .field("precision", dnn::to_string(config.precision))
        .field("service_ms_serial", service_seconds * 1e3)
        .field("capacity_rps", capacity);
    for (const PhaseResult& r : results) {
      std::string base = r.name;
      for (char& ch : base) {
        if (ch == '-') ch = '_';
      }
      rec.field(base + "_throughput_rps", r.throughput)
          .field(base + "_p50_ms", r.p50 * 1e3)
          .field(base + "_p99_ms", r.p99 * 1e3)
          .field(base + "_p999_ms", r.p999 * 1e3)
          .field(base + "_rejection_rate", r.rejection_rate)
          .field(base + "_mean_batch_fill", r.mean_batch_fill);
    }
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::printf("FAILED to write json to %s\n", json_path.c_str());
      return 1;
    }
    const std::string line = rec.str() + "\n";
    std::fwrite(line.data(), 1, line.size(), out);
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }

  std::printf(
      "\nshape target: closed-loop completes everything with zero shed "
      "and per-request latency ~ max_delay + batch service time (the "
      "deadline budget is the price of batch fill when few clients are "
      "outstanding); poisson at 0.7x capacity completes everything with "
      "a queueing tail (p99 above p50); bursty overload sheds a nonzero "
      "fraction at the admission budget while survivor latency stays "
      "bounded by roughly queue_capacity / service rate.\n");
  return 0;
}
