// Reduced-precision inference forwards (DESIGN.md §2.5).
//
// Every kernel here is a forward-only sibling of the fp32 engines in
// conv3d.cpp / dense.cpp / avgpool3d.cpp / flatten.cpp, kept in one
// translation unit so the fp32 files stay byte-for-byte untouched (the
// precision policy: fp32 is the bitwise reference, these paths are
// tolerance-gated).
//
//  * bf16 — weights and activations stored as bf16, widened on load
//    (vpmovzxwd + vpslld via precision.hpp's bf16_load_16), accumulated
//    in fp32, narrowed with round-to-nearest-even on store. Biases are
//    read from the layer's fp32 tensors — they are tiny and keeping
//    them fp32 costs nothing while removing one rounding step.
//  * int8w — weights-only int8: fp32 activations and accumulation; the
//    quantized tiles are dequantized on load against per-output-channel
//    scale vectors (int8_dequant_16).
//
// Loop structures and summation orders mirror the fp32 kernels exactly,
// so the serving determinism rule (a context's forward is a pure
// function of weights + input, independent of thread count) holds in
// every precision.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <span>
#include <stdexcept>
#include <vector>

#include "dnn/activations.hpp"
#include "dnn/avgpool3d.hpp"
#include "dnn/conv3d.hpp"
#include "dnn/dense.hpp"
#include "dnn/flatten.hpp"
#include "dnn/precision.hpp"
#include "tensor/layout.hpp"

// Kernel strategy: on this class of core vdpbf16ps sustains roughly
// half the MAC rate of the two fp32 FMA ports, so a bf16 conv cannot
// win on the MAC engine — the win has to come from bytes moved and
// from port pressure. The conv paths widen the padded source to fp32
// once at staging time (the broadcast operand wants plain floats),
// keep the weights bf16 and widen them on load inside the kernel
// (vpmovzxwd + vpslld — half the cache lines of an fp32 copy, which
// is what keeps a two-block weight slab L1-resident across a row
// sweep), and pair two output-channel blocks per source broadcast:
// each broadcast feeds two FMAs, halving the broadcast-load count per
// MAC that bounds the fp32 kernel. Dense
// keeps a vdpbf16ps tile (pack_weights_bf16) where available: the fc
// layers are weight-bandwidth-bound, so halving the streamed bytes is
// the whole story and the dp issue rate is irrelevant. Everything
// falls back to scalar conversion without __AVX512F__, with identical
// summation order.
#if defined(__AVX512F__) && defined(__AVX512BF16__)
#define CF_BF16_DP 1
#else
#define CF_BF16_DP 0
#endif

namespace cf::dnn {

using tensor::kChannelBlock;
using tensor::Tensor;

namespace {

constexpr std::int64_t kB = kChannelBlock;  // 16
constexpr std::int64_t kOwBlock = 8;        // accumulator rows in flight

#if CF_BF16_DP
/// Broadcast two adjacent bf16 source values as one 32-bit lane pair
/// (low half = *p, the vdpbf16ps b.lo operand).
inline __m512i bcast_pair(const bf16_t* p) noexcept {
  std::uint32_t u;
  std::memcpy(&u, p, sizeof(u));
  return _mm512_set1_epi32(static_cast<int>(u));
}
#endif

/// Fused-epilogue write: identical float ops to conv3d.cpp's
/// store_row_eltwise, applied to the fp32 accumulator row before any
/// narrowing.
inline void eltwise_row(float* __restrict row, std::int64_t n,
                        float slope) {
  for (std::int64_t i = 0; i < n; ++i) {
    const float v = row[i];
    row[i] = v > 0.0f ? v : slope * v;
  }
}

// --- conv micro-kernels -----------------------------------------------

#if defined(__AVX512F__)

/// One (source row, weight tile pair) tap of a per-row tap list: `s`
/// is the fp32-staged padded source row of this (icb, kd, kh, kw),
/// `w0`/`w1` the two 16x16 bf16 weight tiles of the paired
/// output-channel blocks, read straight from the network's bf16 arena
/// and widened on load (vpmovzxwd + vpslld — exact).
struct PairTap {
  const float* s;
  const bf16_t* w0;
  const bf16_t* w1;
};

/// Fused epilogue of the pair kernels: optional LeakyReLU (identical
/// float ops to eltwise_row) and the RNE narrow, applied while the
/// accumulator is still in a register — the row never round-trips
/// through an fp32 scratch.
inline void narrow_store(bf16_t* p, __m512 v, bool fused, __m512 slope_v,
                         __m512 zero_v) {
  if (fused) {
    v = _mm512_mask_blend_ps(_mm512_cmp_ps_mask(v, zero_v, _CMP_GT_OQ),
                             _mm512_mul_ps(slope_v, v), v);
  }
  bf16_store_16(p, v);
}

/// Paired-ocb held-accumulator kernel: 8 output positions x 2 output
/// channel blocks = 16 fp32 accumulator registers initialized from the
/// bias vectors and held across every tap of the row. Each source
/// broadcast feeds two FMAs (one per ocb tile), halving the
/// broadcast-load count per MAC versus the fp32 kernel, and the bf16
/// weight tiles halve the pair's slab to the point where it stays
/// L1-resident across the row sweep (a 2x16-deep fp32 copy would
/// not fit). `soff` shifts every tap source to the current 8-position
/// block; `dual` is false for the duplicated odd trailing block, whose
/// second accumulator set is computed but not stored.
inline void micro_fwd_row8_pair(bf16_t* __restrict d0, bf16_t* __restrict d1,
                                bool dual, const float* __restrict bias0,
                                const float* __restrict bias1,
                                const PairTap* taps, std::int64_t ntaps,
                                std::int64_t soff, std::int64_t sstep,
                                bool fused, float slope) {
  const __m512 bv0 = _mm512_loadu_ps(bias0);
  const __m512 bv1 = _mm512_loadu_ps(bias1);
  __m512 a0 = bv0, a1 = bv0, a2 = bv0, a3 = bv0;
  __m512 a4 = bv0, a5 = bv0, a6 = bv0, a7 = bv0;
  __m512 b0 = bv1, b1 = bv1, b2 = bv1, b3 = bv1;
  __m512 b4 = bv1, b5 = bv1, b6 = bv1, b7 = bv1;
  for (std::int64_t t = 0; t < ntaps; ++t) {
    const float* s = taps[t].s + soff;
    const bf16_t* w0 = taps[t].w0;
    const bf16_t* w1 = taps[t].w1;
    for (int ic = 0; ic < kB; ++ic) {
      const __m512 wv0 = bf16_load_16(w0 + ic * kB);
      const __m512 wv1 = bf16_load_16(w1 + ic * kB);
      __m512 sv = _mm512_set1_ps(s[0 * sstep + ic]);
      a0 = _mm512_fmadd_ps(wv0, sv, a0);
      b0 = _mm512_fmadd_ps(wv1, sv, b0);
      sv = _mm512_set1_ps(s[1 * sstep + ic]);
      a1 = _mm512_fmadd_ps(wv0, sv, a1);
      b1 = _mm512_fmadd_ps(wv1, sv, b1);
      sv = _mm512_set1_ps(s[2 * sstep + ic]);
      a2 = _mm512_fmadd_ps(wv0, sv, a2);
      b2 = _mm512_fmadd_ps(wv1, sv, b2);
      sv = _mm512_set1_ps(s[3 * sstep + ic]);
      a3 = _mm512_fmadd_ps(wv0, sv, a3);
      b3 = _mm512_fmadd_ps(wv1, sv, b3);
      sv = _mm512_set1_ps(s[4 * sstep + ic]);
      a4 = _mm512_fmadd_ps(wv0, sv, a4);
      b4 = _mm512_fmadd_ps(wv1, sv, b4);
      sv = _mm512_set1_ps(s[5 * sstep + ic]);
      a5 = _mm512_fmadd_ps(wv0, sv, a5);
      b5 = _mm512_fmadd_ps(wv1, sv, b5);
      sv = _mm512_set1_ps(s[6 * sstep + ic]);
      a6 = _mm512_fmadd_ps(wv0, sv, a6);
      b6 = _mm512_fmadd_ps(wv1, sv, b6);
      sv = _mm512_set1_ps(s[7 * sstep + ic]);
      a7 = _mm512_fmadd_ps(wv0, sv, a7);
      b7 = _mm512_fmadd_ps(wv1, sv, b7);
    }
  }
  const __m512 slope_v = _mm512_set1_ps(slope);
  const __m512 zero_v = _mm512_setzero_ps();
  narrow_store(d0 + 0 * kB, a0, fused, slope_v, zero_v);
  narrow_store(d0 + 1 * kB, a1, fused, slope_v, zero_v);
  narrow_store(d0 + 2 * kB, a2, fused, slope_v, zero_v);
  narrow_store(d0 + 3 * kB, a3, fused, slope_v, zero_v);
  narrow_store(d0 + 4 * kB, a4, fused, slope_v, zero_v);
  narrow_store(d0 + 5 * kB, a5, fused, slope_v, zero_v);
  narrow_store(d0 + 6 * kB, a6, fused, slope_v, zero_v);
  narrow_store(d0 + 7 * kB, a7, fused, slope_v, zero_v);
  if (!dual) return;
  narrow_store(d1 + 0 * kB, b0, fused, slope_v, zero_v);
  narrow_store(d1 + 1 * kB, b1, fused, slope_v, zero_v);
  narrow_store(d1 + 2 * kB, b2, fused, slope_v, zero_v);
  narrow_store(d1 + 3 * kB, b3, fused, slope_v, zero_v);
  narrow_store(d1 + 4 * kB, b4, fused, slope_v, zero_v);
  narrow_store(d1 + 5 * kB, b5, fused, slope_v, zero_v);
  narrow_store(d1 + 6 * kB, b6, fused, slope_v, zero_v);
  narrow_store(d1 + 7 * kB, b7, fused, slope_v, zero_v);
}

/// 4-position variant for narrow output rows (the stride-2 conv's
/// out_w = 4 slabs).
inline void micro_fwd_row4_pair(bf16_t* __restrict d0, bf16_t* __restrict d1,
                                bool dual, const float* __restrict bias0,
                                const float* __restrict bias1,
                                const PairTap* taps, std::int64_t ntaps,
                                std::int64_t soff, std::int64_t sstep,
                                bool fused, float slope) {
  const __m512 bv0 = _mm512_loadu_ps(bias0);
  const __m512 bv1 = _mm512_loadu_ps(bias1);
  __m512 a0 = bv0, a1 = bv0, a2 = bv0, a3 = bv0;
  __m512 b0 = bv1, b1 = bv1, b2 = bv1, b3 = bv1;
  for (std::int64_t t = 0; t < ntaps; ++t) {
    const float* s = taps[t].s + soff;
    const bf16_t* w0 = taps[t].w0;
    const bf16_t* w1 = taps[t].w1;
    for (int ic = 0; ic < kB; ++ic) {
      const __m512 wv0 = bf16_load_16(w0 + ic * kB);
      const __m512 wv1 = bf16_load_16(w1 + ic * kB);
      __m512 sv = _mm512_set1_ps(s[0 * sstep + ic]);
      a0 = _mm512_fmadd_ps(wv0, sv, a0);
      b0 = _mm512_fmadd_ps(wv1, sv, b0);
      sv = _mm512_set1_ps(s[1 * sstep + ic]);
      a1 = _mm512_fmadd_ps(wv0, sv, a1);
      b1 = _mm512_fmadd_ps(wv1, sv, b1);
      sv = _mm512_set1_ps(s[2 * sstep + ic]);
      a2 = _mm512_fmadd_ps(wv0, sv, a2);
      b2 = _mm512_fmadd_ps(wv1, sv, b2);
      sv = _mm512_set1_ps(s[3 * sstep + ic]);
      a3 = _mm512_fmadd_ps(wv0, sv, a3);
      b3 = _mm512_fmadd_ps(wv1, sv, b3);
    }
  }
  const __m512 slope_v = _mm512_set1_ps(slope);
  const __m512 zero_v = _mm512_setzero_ps();
  narrow_store(d0 + 0 * kB, a0, fused, slope_v, zero_v);
  narrow_store(d0 + 1 * kB, a1, fused, slope_v, zero_v);
  narrow_store(d0 + 2 * kB, a2, fused, slope_v, zero_v);
  narrow_store(d0 + 3 * kB, a3, fused, slope_v, zero_v);
  if (!dual) return;
  narrow_store(d1 + 0 * kB, b0, fused, slope_v, zero_v);
  narrow_store(d1 + 1 * kB, b1, fused, slope_v, zero_v);
  narrow_store(d1 + 2 * kB, b2, fused, slope_v, zero_v);
  narrow_store(d1 + 3 * kB, b3, fused, slope_v, zero_v);
}

/// Single-position tail (out_w % 4 columns).
inline void micro_fwd_row1_pair(bf16_t* __restrict d0, bf16_t* __restrict d1,
                                bool dual, const float* __restrict bias0,
                                const float* __restrict bias1,
                                const PairTap* taps, std::int64_t ntaps,
                                std::int64_t soff, bool fused, float slope) {
  __m512 a0 = _mm512_loadu_ps(bias0);
  __m512 b0 = _mm512_loadu_ps(bias1);
  for (std::int64_t t = 0; t < ntaps; ++t) {
    const float* s = taps[t].s + soff;
    const bf16_t* w0 = taps[t].w0;
    const bf16_t* w1 = taps[t].w1;
    for (int ic = 0; ic < kB; ++ic) {
      const __m512 sv = _mm512_set1_ps(s[ic]);
      a0 = _mm512_fmadd_ps(bf16_load_16(w0 + ic * kB), sv, a0);
      b0 = _mm512_fmadd_ps(bf16_load_16(w1 + ic * kB), sv, b0);
    }
  }
  const __m512 slope_v = _mm512_set1_ps(slope);
  const __m512 zero_v = _mm512_setzero_ps();
  narrow_store(d0, a0, fused, slope_v, zero_v);
  if (dual) narrow_store(d1, b0, fused, slope_v, zero_v);
}

/// First-layer (IC == 1) kernel: the fp32 micro_fwd_row_ic1 structure
/// (8 x 16-lane register accumulators across the whole window) over
/// the fp32-staged source and widened-on-load bf16 weights, with the
/// fused LeakyReLU and the RNE narrowing applied before the row
/// leaves the registers.
inline void micro_fwd_row_ic1_bf16(bf16_t* __restrict dst_row,
                                   const float* __restrict bias16,
                                   const float* const* splanes,
                                   const bf16_t* const* wtaps,
                                   std::int64_t taps, std::int64_t kernel_w,
                                   std::int64_t count, std::int64_t stride,
                                   bool fused, float slope) {
  const __m512 slope_v = _mm512_set1_ps(slope);
  const __m512 zero_v = _mm512_setzero_ps();
  std::int64_t ow = 0;
  for (; ow + kOwBlock <= count; ow += kOwBlock) {
    const __m512 b = _mm512_loadu_ps(bias16);
    __m512 a0 = b, a1 = b, a2 = b, a3 = b, a4 = b, a5 = b, a6 = b, a7 = b;
    for (std::int64_t tap = 0; tap < taps; ++tap) {
      const float* s = splanes[tap] + ow * stride;
      const bf16_t* w = wtaps[tap];
      for (std::int64_t kw = 0; kw < kernel_w; ++kw) {
        const __m512 wv = bf16_load_16(w + kw * kB);
        a0 = _mm512_fmadd_ps(wv, _mm512_set1_ps(s[0 * stride + kw]), a0);
        a1 = _mm512_fmadd_ps(wv, _mm512_set1_ps(s[1 * stride + kw]), a1);
        a2 = _mm512_fmadd_ps(wv, _mm512_set1_ps(s[2 * stride + kw]), a2);
        a3 = _mm512_fmadd_ps(wv, _mm512_set1_ps(s[3 * stride + kw]), a3);
        a4 = _mm512_fmadd_ps(wv, _mm512_set1_ps(s[4 * stride + kw]), a4);
        a5 = _mm512_fmadd_ps(wv, _mm512_set1_ps(s[5 * stride + kw]), a5);
        a6 = _mm512_fmadd_ps(wv, _mm512_set1_ps(s[6 * stride + kw]), a6);
        a7 = _mm512_fmadd_ps(wv, _mm512_set1_ps(s[7 * stride + kw]), a7);
      }
    }
    if (fused) {
      // v > 0 ? v : slope * v — float-identical to eltwise_row on the
      // fp32 accumulators.
      a0 = _mm512_mask_blend_ps(_mm512_cmp_ps_mask(a0, zero_v, _CMP_GT_OQ),
                                _mm512_mul_ps(slope_v, a0), a0);
      a1 = _mm512_mask_blend_ps(_mm512_cmp_ps_mask(a1, zero_v, _CMP_GT_OQ),
                                _mm512_mul_ps(slope_v, a1), a1);
      a2 = _mm512_mask_blend_ps(_mm512_cmp_ps_mask(a2, zero_v, _CMP_GT_OQ),
                                _mm512_mul_ps(slope_v, a2), a2);
      a3 = _mm512_mask_blend_ps(_mm512_cmp_ps_mask(a3, zero_v, _CMP_GT_OQ),
                                _mm512_mul_ps(slope_v, a3), a3);
      a4 = _mm512_mask_blend_ps(_mm512_cmp_ps_mask(a4, zero_v, _CMP_GT_OQ),
                                _mm512_mul_ps(slope_v, a4), a4);
      a5 = _mm512_mask_blend_ps(_mm512_cmp_ps_mask(a5, zero_v, _CMP_GT_OQ),
                                _mm512_mul_ps(slope_v, a5), a5);
      a6 = _mm512_mask_blend_ps(_mm512_cmp_ps_mask(a6, zero_v, _CMP_GT_OQ),
                                _mm512_mul_ps(slope_v, a6), a6);
      a7 = _mm512_mask_blend_ps(_mm512_cmp_ps_mask(a7, zero_v, _CMP_GT_OQ),
                                _mm512_mul_ps(slope_v, a7), a7);
    }
    bf16_store_16(dst_row + (ow + 0) * kB, a0);
    bf16_store_16(dst_row + (ow + 1) * kB, a1);
    bf16_store_16(dst_row + (ow + 2) * kB, a2);
    bf16_store_16(dst_row + (ow + 3) * kB, a3);
    bf16_store_16(dst_row + (ow + 4) * kB, a4);
    bf16_store_16(dst_row + (ow + 5) * kB, a5);
    bf16_store_16(dst_row + (ow + 6) * kB, a6);
    bf16_store_16(dst_row + (ow + 7) * kB, a7);
  }
  for (; ow < count; ++ow) {
    __m512 a = _mm512_loadu_ps(bias16);
    for (std::int64_t tap = 0; tap < taps; ++tap) {
      const float* s = splanes[tap] + ow * stride;
      const bf16_t* w = wtaps[tap];
      for (std::int64_t kw = 0; kw < kernel_w; ++kw) {
        a = _mm512_fmadd_ps(bf16_load_16(w + kw * kB),
                            _mm512_set1_ps(s[kw]), a);
      }
    }
    if (fused) {
      a = _mm512_mask_blend_ps(_mm512_cmp_ps_mask(a, zero_v, _CMP_GT_OQ),
                               _mm512_mul_ps(slope_v, a), a);
    }
    bf16_store_16(dst_row + ow * kB, a);
  }
}

#endif  // __AVX512F__ conv micro-kernels

#if defined(__AVX512F__)

/// int8 sibling: the 16x16 weight tile is int8, dequantized against
/// this output block's 16-lane scale vector; source row stays fp32.
inline void micro_fwd_row_i8(float* __restrict acc,
                             const float* __restrict src_row,
                             const std::int8_t* __restrict w,
                             __m512 scale16, std::int64_t count,
                             std::int64_t stride) {
  std::int64_t ow = 0;
  const std::int64_t sstep = stride * kB;
  for (; ow + kOwBlock <= count; ow += kOwBlock) {
    float* d = acc + ow * kB;
    const float* s = src_row + ow * sstep;
    __m512 a0 = _mm512_loadu_ps(d + 0 * kB);
    __m512 a1 = _mm512_loadu_ps(d + 1 * kB);
    __m512 a2 = _mm512_loadu_ps(d + 2 * kB);
    __m512 a3 = _mm512_loadu_ps(d + 3 * kB);
    __m512 a4 = _mm512_loadu_ps(d + 4 * kB);
    __m512 a5 = _mm512_loadu_ps(d + 5 * kB);
    __m512 a6 = _mm512_loadu_ps(d + 6 * kB);
    __m512 a7 = _mm512_loadu_ps(d + 7 * kB);
    for (int ic = 0; ic < kB; ++ic) {
      const __m512 wv = int8_dequant_16(w + ic * kB, scale16);
      a0 = _mm512_fmadd_ps(wv, _mm512_set1_ps(s[0 * sstep + ic]), a0);
      a1 = _mm512_fmadd_ps(wv, _mm512_set1_ps(s[1 * sstep + ic]), a1);
      a2 = _mm512_fmadd_ps(wv, _mm512_set1_ps(s[2 * sstep + ic]), a2);
      a3 = _mm512_fmadd_ps(wv, _mm512_set1_ps(s[3 * sstep + ic]), a3);
      a4 = _mm512_fmadd_ps(wv, _mm512_set1_ps(s[4 * sstep + ic]), a4);
      a5 = _mm512_fmadd_ps(wv, _mm512_set1_ps(s[5 * sstep + ic]), a5);
      a6 = _mm512_fmadd_ps(wv, _mm512_set1_ps(s[6 * sstep + ic]), a6);
      a7 = _mm512_fmadd_ps(wv, _mm512_set1_ps(s[7 * sstep + ic]), a7);
    }
    _mm512_storeu_ps(d + 0 * kB, a0);
    _mm512_storeu_ps(d + 1 * kB, a1);
    _mm512_storeu_ps(d + 2 * kB, a2);
    _mm512_storeu_ps(d + 3 * kB, a3);
    _mm512_storeu_ps(d + 4 * kB, a4);
    _mm512_storeu_ps(d + 5 * kB, a5);
    _mm512_storeu_ps(d + 6 * kB, a6);
    _mm512_storeu_ps(d + 7 * kB, a7);
  }
  for (; ow < count; ++ow) {
    const float* s = src_row + ow * sstep;
    float* d = acc + ow * kB;
    __m512 a = _mm512_loadu_ps(d);
    for (int ic = 0; ic < kB; ++ic) {
      a = _mm512_fmadd_ps(int8_dequant_16(w + ic * kB, scale16),
                          _mm512_set1_ps(s[ic]), a);
    }
    _mm512_storeu_ps(d, a);
  }
}

#else  // portable fallbacks

/// Scalar tier of the paired kernel's work: one tap over the
/// fp32-staged source row against one bf16 weight tile, same
/// (tap, ic, oc) summation order as the vector kernels.
inline void micro_fwd_row_bf16(float* __restrict acc,
                               const float* __restrict src_row,
                               const bf16_t* __restrict w,
                               std::int64_t count, std::int64_t stride) {
  const std::int64_t sstep = stride * kB;
  for (std::int64_t ow = 0; ow < count; ++ow) {
    const float* s = src_row + ow * sstep;
    float* d = acc + ow * kB;
    for (int ic = 0; ic < kB; ++ic) {
      const float sv = s[ic];
      const bf16_t* wrow = w + ic * kB;
      for (int oc = 0; oc < kB; ++oc) d[oc] += bf16_to_float(wrow[oc]) * sv;
    }
  }
}

inline void micro_fwd_row_i8(float* __restrict acc,
                             const float* __restrict src_row,
                             const std::int8_t* __restrict w,
                             const float* __restrict scale16,
                             std::int64_t count, std::int64_t stride) {
  const std::int64_t sstep = stride * kB;
  for (std::int64_t ow = 0; ow < count; ++ow) {
    const float* s = src_row + ow * sstep;
    float* d = acc + ow * kB;
    for (int ic = 0; ic < kB; ++ic) {
      const float sv = s[ic];
      const std::int8_t* wrow = w + ic * kB;
      for (int oc = 0; oc < kB; ++oc) {
        d[oc] += static_cast<float>(wrow[oc]) * scale16[oc] * sv;
      }
    }
  }
}

#endif  // __AVX512F__

// --- padded staging (bf16 -> fp32) ------------------------------------

/// Widening siblings of conv3d.cpp's copy_padded_* helpers: the bf16
/// activation rows are widened to fp32 as they are staged into the
/// zero-padded workspace, so every kernel tap below reads plain
/// floats and the widening cost is paid once per element instead of
/// once per tap.
void copy_padded_blocked_w(const bf16_t* src, float* padded,
                           std::int64_t cb, std::int64_t d, std::int64_t h,
                           std::int64_t w, const PadSpec& pd,
                           const PadSpec& ph, const PadSpec& pw,
                           std::int64_t hp, std::int64_t wp,
                           runtime::ThreadPool& pool, std::size_t grain) {
  pool.parallel_for(
      static_cast<std::size_t>(cb * d),
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t job = begin; job < end; ++job) {
          const std::int64_t c = static_cast<std::int64_t>(job) / d;
          const std::int64_t dd = static_cast<std::int64_t>(job) % d;
          for (std::int64_t hh = 0; hh < h; ++hh) {
            const bf16_t* s = src + (((c * d + dd) * h + hh) * w) * kB;
            float* t = padded +
                       (((c * (d + pd.total()) + dd + pd.lo) * hp + hh +
                         ph.lo) *
                            wp +
                        pw.lo) *
                           kB;
            f32_from_bf16(s, t, static_cast<std::size_t>(w) * kB);
          }
        }
      },
      grain);
}

void copy_padded_plain_w(const bf16_t* src, float* padded, std::int64_t c,
                         std::int64_t d, std::int64_t h, std::int64_t w,
                         const PadSpec& pd, const PadSpec& ph,
                         const PadSpec& pw, std::int64_t hp, std::int64_t wp,
                         runtime::ThreadPool& pool, std::size_t grain) {
  pool.parallel_for(
      static_cast<std::size_t>(c * d),
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t job = begin; job < end; ++job) {
          const std::int64_t cc = static_cast<std::int64_t>(job) / d;
          const std::int64_t dd = static_cast<std::int64_t>(job) % d;
          for (std::int64_t hh = 0; hh < h; ++hh) {
            const bf16_t* s = src + ((cc * d + dd) * h + hh) * w;
            float* t = padded +
                       ((cc * (d + pd.total()) + dd + pd.lo) * hp + hh +
                        ph.lo) *
                           wp +
                       pw.lo;
            f32_from_bf16(s, t, static_cast<std::size_t>(w));
          }
        }
      },
      grain);
}

}  // namespace

// --- Conv3d -----------------------------------------------------------

void Conv3d::forward_bf16(const bf16_t* src, bf16_t* dst,
                          std::span<const bf16_t> params,
                          LayerExecState& exec,
                          runtime::ThreadPool& pool) const {
  const runtime::ScopedTimer timer(exec.timers.fwd);
  if (params.size() !=
      static_cast<std::size_t>(weights_.size() + bias_.size())) {
    throw std::logic_error("Conv3d::forward_bf16: bad param segment size");
  }
  const std::size_t need = forward_workspace_floats();
  if (exec.workspace.size() < need) {
    throw std::logic_error("Conv3d::forward_bf16: workspace smaller than "
                           "forward_workspace_floats()");
  }
  // Staged as fp32, exactly like the fp32 forward: the bf16 source
  // rows are widened once here so the kernels below broadcast plain
  // floats ("widen once, not per tap" — header comment). The shared
  // re-zero contract matches stage_padded_src.
  float* padded = exec.workspace.data();
  if (exec.workspace_shared) {
    std::memset(padded, 0, need * sizeof(float));
  }
  const std::int64_t ic = config_.in_channels;
  if (plain_input_) {
    copy_padded_plain_w(src, padded, ic, in_d_, in_h_, in_w_, pad_d_,
                        pad_h_, pad_w_, ph_, pw_, pool,
                        exec.intraop_grain);
  } else {
    copy_padded_blocked_w(src, padded, ic / kB, in_d_, in_h_, in_w_,
                          pad_d_, pad_h_, pad_w_, ph_, pw_, pool,
                          exec.intraop_grain);
  }

  const bf16_t* wbase = params.data();  // segment = weights then bias
  const std::int64_t ocb_count = config_.out_channels / kB;
  const std::int64_t k = config_.kernel;
  const std::int64_t stride = config_.stride;
  const std::int64_t dp = pd_, hp = ph_, wp = pw_;
  const bool fused = fused_;
  const float slope = slope_;

  if (plain_input_) {
    // First-layer path (IC < 16). The weight image is tiny
    // (OCb * K^3 * IC * 16) and L1-resident, so the kernels read it as
    // bf16 and widen on load — the fp32 first-layer structures are
    // otherwise unchanged.
    const std::int64_t ic_count = ic;
#if defined(__AVX512F__)
    if (ic_count == 1) {
      // Mirror of the fp32 micro_fwd_row_ic1 dispatch.
      pool.parallel_for(
          static_cast<std::size_t>(ocb_count * out_d_),
          [&](std::size_t begin, std::size_t end, std::size_t) {
            std::vector<const float*> splanes(
                static_cast<std::size_t>(k * k));
            std::vector<const bf16_t*> wtaps(
                static_cast<std::size_t>(k * k));
            for (std::size_t job = begin; job < end; ++job) {
              const std::int64_t ocb =
                  static_cast<std::int64_t>(job) / out_d_;
              const std::int64_t od =
                  static_cast<std::int64_t>(job) % out_d_;
              for (std::int64_t oh = 0; oh < out_h_; ++oh) {
                std::int64_t tap = 0;
                for (std::int64_t kd = 0; kd < k; ++kd) {
                  const std::int64_t id = od * stride + kd;
                  for (std::int64_t kh = 0; kh < k; ++kh, ++tap) {
                    const std::int64_t ih = oh * stride + kh;
                    splanes[static_cast<std::size_t>(tap)] =
                        padded + (id * hp + ih) * wp;
                    wtaps[static_cast<std::size_t>(tap)] =
                        wbase + (((ocb * k + kd) * k + kh) * k) * kB;
                  }
                }
                bf16_t* drow =
                    dst +
                    (((ocb * out_d_ + od) * out_h_ + oh) * out_w_) * kB;
                micro_fwd_row_ic1_bf16(drow, bias_.data() + ocb * kB,
                                       splanes.data(), wtaps.data(), k * k,
                                       k, out_w_, stride, fused, slope);
              }
            }
          },
          exec.intraop_grain);
      return;
    }
#endif  // __AVX512F__
    // Generic plain tier (1 < IC < 16): widened once per forward.
    std::vector<float> wf(static_cast<std::size_t>(weights_.size()));
    f32_from_bf16(wbase, wf.data(), wf.size());
    const float* wfbase = wf.data();
    pool.parallel_for(
        static_cast<std::size_t>(ocb_count * out_d_),
        [&](std::size_t begin, std::size_t end, std::size_t) {
          std::vector<float> acc(static_cast<std::size_t>(out_w_) * kB);
          for (std::size_t job = begin; job < end; ++job) {
            const std::int64_t ocb =
                static_cast<std::int64_t>(job) / out_d_;
            const std::int64_t od = static_cast<std::int64_t>(job) % out_d_;
            const float* b = bias_.data() + ocb * kB;
            for (std::int64_t oh = 0; oh < out_h_; ++oh) {
              for (std::int64_t ow = 0; ow < out_w_; ++ow) {
                std::memcpy(acc.data() + ow * kB, b, kB * sizeof(float));
              }
              for (std::int64_t kd = 0; kd < k; ++kd) {
                const std::int64_t id = od * stride + kd;
                for (std::int64_t kh = 0; kh < k; ++kh) {
                  const std::int64_t ih = oh * stride + kh;
                  for (std::int64_t kw = 0; kw < k; ++kw) {
                    const float* wtile =
                        wfbase +
                        ((((ocb * k + kd) * k + kh) * k + kw) * ic_count) *
                            kB;
                    for (std::int64_t ci = 0; ci < ic_count; ++ci) {
                      const float* splane =
                          padded + ((ci * dp + id) * hp + ih) * wp + kw;
#if defined(__AVX512F__)
                      const __m512 wv = _mm512_loadu_ps(wtile + ci * kB);
                      std::int64_t ow = 0;
                      for (; ow + 4 <= out_w_; ow += 4) {
                        float* d = acc.data() + ow * kB;
                        const float* s = splane + ow * stride;
                        __m512 a0 = _mm512_loadu_ps(d + 0 * kB);
                        __m512 a1 = _mm512_loadu_ps(d + 1 * kB);
                        __m512 a2 = _mm512_loadu_ps(d + 2 * kB);
                        __m512 a3 = _mm512_loadu_ps(d + 3 * kB);
                        a0 = _mm512_fmadd_ps(
                            wv, _mm512_set1_ps(s[0 * stride]), a0);
                        a1 = _mm512_fmadd_ps(
                            wv, _mm512_set1_ps(s[1 * stride]), a1);
                        a2 = _mm512_fmadd_ps(
                            wv, _mm512_set1_ps(s[2 * stride]), a2);
                        a3 = _mm512_fmadd_ps(
                            wv, _mm512_set1_ps(s[3 * stride]), a3);
                        _mm512_storeu_ps(d + 0 * kB, a0);
                        _mm512_storeu_ps(d + 1 * kB, a1);
                        _mm512_storeu_ps(d + 2 * kB, a2);
                        _mm512_storeu_ps(d + 3 * kB, a3);
                      }
                      for (; ow < out_w_; ++ow) {
                        float* d = acc.data() + ow * kB;
                        _mm512_storeu_ps(
                            d, _mm512_fmadd_ps(
                                   wv,
                                   _mm512_set1_ps(splane[ow * stride]),
                                   _mm512_loadu_ps(d)));
                      }
#else
                      const float* wrow = wtile + ci * kB;
                      for (std::int64_t ow = 0; ow < out_w_; ++ow) {
                        const float sv = splane[ow * stride];
                        float* d = acc.data() + ow * kB;
                        for (int oc = 0; oc < kB; ++oc) {
                          d[oc] += wrow[oc] * sv;
                        }
                      }
#endif
                    }
                  }
                }
              }
              if (fused) eltwise_row(acc.data(), out_w_ * kB, slope);
              bf16_from_f32(acc.data(),
                            dst + (((ocb * out_d_ + od) * out_h_ + oh) *
                                   out_w_) *
                                      kB,
                            static_cast<std::size_t>(out_w_) * kB);
            }
          }
        },
        exec.intraop_grain);
    return;
  }

  const std::int64_t icb_count = ic / kB;
#if defined(__AVX512F__)
  // Blocked path: jobs over (ocb pair, od). The pair's bf16 weight
  // slabs are read in place from the network's bf16 arena (half the
  // lines of an fp32 copy — the whole pair stays L1-resident across
  // the row sweep); each worker flattens the window into a tap list
  // per output row and runs the paired held-accumulator kernels. An
  // odd trailing ocb is computed with its tile duplicated into both
  // slots and the second accumulator row discarded.
  const std::int64_t pair_count = (ocb_count + 1) / 2;
  const std::int64_t slab = icb_count * k * k * k * kB * kB;
  pool.parallel_for(
      static_cast<std::size_t>(pair_count * out_d_),
      [&](std::size_t begin, std::size_t end, std::size_t) {
        std::vector<PairTap> taps(
            static_cast<std::size_t>(icb_count * k * k * k));
        for (std::size_t job = begin; job < end; ++job) {
          const std::int64_t pair = static_cast<std::int64_t>(job) / out_d_;
          const std::int64_t od = static_cast<std::int64_t>(job) % out_d_;
          const std::int64_t ocb0 = pair * 2;
          const std::int64_t ocb1 = std::min(ocb0 + 1, ocb_count - 1);
          const bool dual = ocb1 != ocb0;
          const float* b0 = bias_.data() + ocb0 * kB;
          const float* b1 = bias_.data() + ocb1 * kB;
          const std::int64_t sstep = stride * kB;
          for (std::int64_t oh = 0; oh < out_h_; ++oh) {
            std::int64_t ntaps = 0;
            for (std::int64_t icb = 0; icb < icb_count; ++icb) {
              for (std::int64_t kd = 0; kd < k; ++kd) {
                const std::int64_t id = od * stride + kd;
                for (std::int64_t kh = 0; kh < k; ++kh) {
                  const std::int64_t ih = oh * stride + kh;
                  const float* srow =
                      padded + (((icb * dp + id) * hp + ih) * wp) * kB;
                  const std::int64_t woff =
                      (((icb * k + kd) * k + kh) * k) * kB * kB;
                  const bf16_t* w0 = wbase + ocb0 * slab + woff;
                  const bf16_t* w1 = wbase + ocb1 * slab + woff;
                  for (std::int64_t kw = 0; kw < k; ++kw) {
                    taps[static_cast<std::size_t>(ntaps++)] = {
                        srow + kw * kB, w0 + kw * kB * kB,
                        w1 + kw * kB * kB};
                  }
                }
              }
            }
            bf16_t* d0 =
                dst + (((ocb0 * out_d_ + od) * out_h_ + oh) * out_w_) * kB;
            bf16_t* d1 =
                dst + (((ocb1 * out_d_ + od) * out_h_ + oh) * out_w_) * kB;
            std::int64_t ow = 0;
            for (; ow + 8 <= out_w_; ow += 8) {
              micro_fwd_row8_pair(d0 + ow * kB, d1 + ow * kB, dual, b0, b1,
                                  taps.data(), ntaps, ow * sstep, sstep,
                                  fused, slope);
            }
            for (; ow + 4 <= out_w_; ow += 4) {
              micro_fwd_row4_pair(d0 + ow * kB, d1 + ow * kB, dual, b0, b1,
                                  taps.data(), ntaps, ow * sstep, sstep,
                                  fused, slope);
            }
            for (; ow < out_w_; ++ow) {
              micro_fwd_row1_pair(d0 + ow * kB, d1 + ow * kB, dual, b0, b1,
                                  taps.data(), ntaps, ow * sstep, fused,
                                  slope);
            }
          }
        }
      },
      exec.intraop_grain);
#else
  // Scalar tier: same (icb, kd, kh, kw) tap order over the fp32-staged
  // source, weights widened per access.
  pool.parallel_for(
      static_cast<std::size_t>(ocb_count * out_d_),
      [&](std::size_t begin, std::size_t end, std::size_t) {
        std::vector<float> acc(static_cast<std::size_t>(out_w_) * kB);
        for (std::size_t job = begin; job < end; ++job) {
          const std::int64_t ocb = static_cast<std::int64_t>(job) / out_d_;
          const std::int64_t od = static_cast<std::int64_t>(job) % out_d_;
          const float* b = bias_.data() + ocb * kB;
          for (std::int64_t oh = 0; oh < out_h_; ++oh) {
            for (std::int64_t ow = 0; ow < out_w_; ++ow) {
              std::memcpy(acc.data() + ow * kB, b, kB * sizeof(float));
            }
            for (std::int64_t icb = 0; icb < icb_count; ++icb) {
              for (std::int64_t kd = 0; kd < k; ++kd) {
                const std::int64_t id = od * stride + kd;
                for (std::int64_t kh = 0; kh < k; ++kh) {
                  const std::int64_t ih = oh * stride + kh;
                  const float* srow =
                      padded + (((icb * dp + id) * hp + ih) * wp) * kB;
                  const bf16_t* wtile =
                      wbase +
                      ((((ocb * icb_count + icb) * k + kd) * k + kh) * k) *
                          kB * kB;
                  for (std::int64_t kw = 0; kw < k; ++kw) {
                    micro_fwd_row_bf16(acc.data(), srow + kw * kB,
                                       wtile + kw * kB * kB, out_w_,
                                       stride);
                  }
                }
              }
            }
            if (fused) eltwise_row(acc.data(), out_w_ * kB, slope);
            bf16_from_f32(
                acc.data(),
                dst + (((ocb * out_d_ + od) * out_h_ + oh) * out_w_) * kB,
                static_cast<std::size_t>(out_w_) * kB);
          }
        }
      },
      exec.intraop_grain);
#endif  // __AVX512F__
}

void Conv3d::forward_int8w(const Tensor& src, Tensor& dst,
                           std::span<const std::int8_t> qweights,
                           std::span<const float> scales,
                           LayerExecState& exec,
                           runtime::ThreadPool& pool) const {
  const runtime::ScopedTimer timer(exec.timers.fwd);
  if (src.shape() != input_shape() || dst.shape() != output_shape()) {
    throw std::invalid_argument("Conv3d::forward_int8w: shape mismatch");
  }
  if (qweights.size() != int8_weight_count() ||
      scales.size() != int8_scale_count()) {
    throw std::logic_error("Conv3d::forward_int8w: bad quantized segment");
  }
  stage_padded_src(src, exec, pool);
  const float* padded = exec.workspace.data();
  const std::int8_t* qbase = qweights.data();
  const std::int64_t ocb_count = config_.out_channels / kB;
  const std::int64_t k = config_.kernel;
  const std::int64_t stride = config_.stride;
  const std::int64_t dp = pd_, hp = ph_, wp = pw_;
  const bool fused = fused_;
  const float slope = slope_;

  if (plain_input_) {
    const std::int64_t ic_count = config_.in_channels;
    pool.parallel_for(
        static_cast<std::size_t>(ocb_count * out_d_),
        [&](std::size_t begin, std::size_t end, std::size_t) {
          std::vector<float> acc(static_cast<std::size_t>(out_w_) * kB);
          for (std::size_t job = begin; job < end; ++job) {
            const std::int64_t ocb =
                static_cast<std::int64_t>(job) / out_d_;
            const std::int64_t od = static_cast<std::int64_t>(job) % out_d_;
            const float* b = bias_.data() + ocb * kB;
            const float* sc = scales.data() + ocb * kB;
#if defined(__AVX512F__)
            const __m512 scale16 = _mm512_loadu_ps(sc);
#endif
            for (std::int64_t oh = 0; oh < out_h_; ++oh) {
              for (std::int64_t ow = 0; ow < out_w_; ++ow) {
                std::memcpy(acc.data() + ow * kB, b, kB * sizeof(float));
              }
              for (std::int64_t kd = 0; kd < k; ++kd) {
                const std::int64_t id = od * stride + kd;
                for (std::int64_t kh = 0; kh < k; ++kh) {
                  const std::int64_t ih = oh * stride + kh;
                  for (std::int64_t kw = 0; kw < k; ++kw) {
                    const std::int8_t* wtile =
                        qbase +
                        ((((ocb * k + kd) * k + kh) * k + kw) * ic_count) *
                            kB;
                    for (std::int64_t ci = 0; ci < ic_count; ++ci) {
                      const float* splane =
                          padded + ((ci * dp + id) * hp + ih) * wp + kw;
#if defined(__AVX512F__)
                      const __m512 wv =
                          int8_dequant_16(wtile + ci * kB, scale16);
                      std::int64_t ow = 0;
                      for (; ow + 4 <= out_w_; ow += 4) {
                        float* d = acc.data() + ow * kB;
                        const float* s = splane + ow * stride;
                        __m512 a0 = _mm512_loadu_ps(d + 0 * kB);
                        __m512 a1 = _mm512_loadu_ps(d + 1 * kB);
                        __m512 a2 = _mm512_loadu_ps(d + 2 * kB);
                        __m512 a3 = _mm512_loadu_ps(d + 3 * kB);
                        a0 = _mm512_fmadd_ps(
                            wv, _mm512_set1_ps(s[0 * stride]), a0);
                        a1 = _mm512_fmadd_ps(
                            wv, _mm512_set1_ps(s[1 * stride]), a1);
                        a2 = _mm512_fmadd_ps(
                            wv, _mm512_set1_ps(s[2 * stride]), a2);
                        a3 = _mm512_fmadd_ps(
                            wv, _mm512_set1_ps(s[3 * stride]), a3);
                        _mm512_storeu_ps(d + 0 * kB, a0);
                        _mm512_storeu_ps(d + 1 * kB, a1);
                        _mm512_storeu_ps(d + 2 * kB, a2);
                        _mm512_storeu_ps(d + 3 * kB, a3);
                      }
                      for (; ow < out_w_; ++ow) {
                        float* d = acc.data() + ow * kB;
                        _mm512_storeu_ps(
                            d, _mm512_fmadd_ps(
                                   wv,
                                   _mm512_set1_ps(splane[ow * stride]),
                                   _mm512_loadu_ps(d)));
                      }
#else
                      const std::int8_t* wrow = wtile + ci * kB;
                      for (std::int64_t ow = 0; ow < out_w_; ++ow) {
                        const float sv = splane[ow * stride];
                        float* d = acc.data() + ow * kB;
                        for (int oc = 0; oc < kB; ++oc) {
                          d[oc] +=
                              static_cast<float>(wrow[oc]) * sc[oc] * sv;
                        }
                      }
#endif
                    }
                  }
                }
              }
              float* drow =
                  dst.data() +
                  (((ocb * out_d_ + od) * out_h_ + oh) * out_w_) * kB;
              if (fused) eltwise_row(acc.data(), out_w_ * kB, slope);
              std::memcpy(drow, acc.data(),
                          static_cast<std::size_t>(out_w_) * kB *
                              sizeof(float));
            }
          }
        },
        exec.intraop_grain);
    return;
  }

  const std::int64_t icb_count = config_.in_channels / kB;
  pool.parallel_for(
      static_cast<std::size_t>(ocb_count * out_d_),
      [&](std::size_t begin, std::size_t end, std::size_t) {
        std::vector<float> acc(static_cast<std::size_t>(out_w_) * kB);
        for (std::size_t job = begin; job < end; ++job) {
          const std::int64_t ocb = static_cast<std::int64_t>(job) / out_d_;
          const std::int64_t od = static_cast<std::int64_t>(job) % out_d_;
          const float* sc = scales.data() + ocb * kB;
#if defined(__AVX512F__)
          const __m512 scale16 = _mm512_loadu_ps(sc);
#endif
          for (std::int64_t oh = 0; oh < out_h_; ++oh) {
            const float* b = bias_.data() + ocb * kB;
            for (std::int64_t ow = 0; ow < out_w_; ++ow) {
              std::memcpy(acc.data() + ow * kB, b, kB * sizeof(float));
            }
            for (std::int64_t icb = 0; icb < icb_count; ++icb) {
              for (std::int64_t kd = 0; kd < k; ++kd) {
                const std::int64_t id = od * stride + kd;
                for (std::int64_t kh = 0; kh < k; ++kh) {
                  const std::int64_t ih = oh * stride + kh;
                  const float* srow =
                      padded + (((icb * dp + id) * hp + ih) * wp) * kB;
                  const std::int8_t* wtile =
                      qbase +
                      ((((ocb * icb_count + icb) * k + kd) * k + kh) * k) *
                          kB * kB;
                  for (std::int64_t kw = 0; kw < k; ++kw) {
#if defined(__AVX512F__)
                    micro_fwd_row_i8(acc.data(), srow + kw * kB,
                                     wtile + kw * kB * kB, scale16, out_w_,
                                     stride);
#else
                    micro_fwd_row_i8(acc.data(), srow + kw * kB,
                                     wtile + kw * kB * kB, sc, out_w_,
                                     stride);
#endif
                  }
                }
              }
            }
            float* drow = dst.data() +
                          (((ocb * out_d_ + od) * out_h_ + oh) * out_w_) *
                              kB;
            if (fused) eltwise_row(acc.data(), out_w_ * kB, slope);
            std::memcpy(drow, acc.data(),
                        static_cast<std::size_t>(out_w_) * kB *
                            sizeof(float));
          }
        }
      },
      exec.intraop_grain);
}

void Conv3d::quantize_weights_int8(std::span<std::int8_t> qweights,
                                   std::span<float> scales) const {
  if (qweights.size() != int8_weight_count() ||
      scales.size() != int8_scale_count()) {
    throw std::invalid_argument("Conv3d::quantize_weights_int8: bad spans");
  }
  // Both blocked layouts ({OCb, ICb, K, K, K, 16ic, 16oc} and the
  // plain-input {OCb, K, K, K, IC, 16oc}) keep the 16-oc lanes
  // innermost and OCb outermost, so oc = (i / per_ocb) * 16 + i % 16.
  const std::size_t n = qweights.size();
  const std::size_t ocb_count =
      static_cast<std::size_t>(config_.out_channels / kB);
  const std::size_t per_ocb = n / ocb_count;
  const float* w = weights_.data();
  std::vector<float> max_abs(scales.size(), 0.0f);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t oc = (i / per_ocb) * kB + i % kB;
    max_abs[oc] = std::max(max_abs[oc], std::fabs(w[i]));
  }
  std::vector<float> inv(scales.size());
  for (std::size_t oc = 0; oc < scales.size(); ++oc) {
    scales[oc] = int8_scale_from_max(max_abs[oc]);
    inv[oc] = max_abs[oc] > 0.0f ? 127.0f / max_abs[oc] : 0.0f;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t oc = (i / per_ocb) * kB + i % kB;
    qweights[i] = quantize_int8(w[i], inv[oc]);
  }
}

// --- Dense ------------------------------------------------------------

void Dense::forward_bf16(const bf16_t* src, bf16_t* dst,
                         std::span<const bf16_t> params,
                         LayerExecState& exec,
                         runtime::ThreadPool& pool) const {
  const runtime::ScopedTimer timer(exec.timers.fwd);
  if (params.size() != static_cast<std::size_t>(in_ * out_ + out_)) {
    throw std::logic_error("Dense::forward_bf16: bad param segment size");
  }
  const bf16_t* wbase = params.data();  // {I, O}, weights then bias
  // Same fixed 16-chunk deterministic reduction as the fp32 forward.
  constexpr std::size_t kChunks = 16;
  constexpr std::int64_t kSerialWorkLimit = 4096;
  const std::size_t chunks =
      std::min<std::size_t>(kChunks, static_cast<std::size_t>(in_));
  const std::size_t chunk_size =
      (static_cast<std::size_t>(in_) + chunks - 1) / chunks;
#if CF_BF16_DP
  // When the weights were pair-interleaved ({I/2, O, 2} — see
  // Dense::pack_weights_bf16, same condition) each vdpbf16ps retires
  // two input taps per 16 outputs. in_ % 32 == 0 keeps every chunk
  // boundary even, so chunk sums match the tap grouping exactly.
  const bool packed = (in_ % 32 == 0) && (out_ % kB == 0);
#endif
  std::vector<std::vector<float>> partial(
      chunks, std::vector<float>(static_cast<std::size_t>(out_), 0.0f));
  const std::size_t grain = std::max<std::size_t>(
      in_ * out_ <= kSerialWorkLimit ? chunks : 1, exec.intraop_grain);
  pool.parallel_for(
      chunks,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t chunk = begin; chunk < end; ++chunk) {
          float* acc = partial[chunk].data();
          const std::size_t lo = chunk * chunk_size;
          const std::size_t hi =
              std::min(static_cast<std::size_t>(in_), lo + chunk_size);
#if CF_BF16_DP
          if (packed) {
            for (std::size_t i = lo; i < hi; i += 2) {
              const __m512bh pv =
                  reinterpret_cast<__m512bh>(bcast_pair(src + i));
              const bf16_t* wrow =
                  wbase + (i / 2) * static_cast<std::size_t>(out_) * 2;
              for (std::int64_t o = 0; o < out_; o += kB) {
                _mm512_storeu_ps(
                    acc + o,
                    _mm512_dpbf16_ps(_mm512_loadu_ps(acc + o),
                                     reinterpret_cast<__m512bh>(
                                         _mm512_loadu_si512(wrow + o * 2)),
                                     pv));
              }
            }
            continue;
          }
#endif
          for (std::size_t i = lo; i < hi; ++i) {
            const float sv = bf16_to_float(src[i]);
            const bf16_t* wrow = wbase + i * static_cast<std::size_t>(out_);
            std::int64_t o = 0;
#if defined(__AVX512F__)
            for (; o + kB <= out_; o += kB) {
              _mm512_storeu_ps(
                  acc + o,
                  _mm512_fmadd_ps(bf16_load_16(wrow + o),
                                  _mm512_set1_ps(sv),
                                  _mm512_loadu_ps(acc + o)));
            }
#endif
            for (; o < out_; ++o) acc[o] += bf16_to_float(wrow[o]) * sv;
          }
        }
      },
      grain);
  std::vector<float> out(static_cast<std::size_t>(out_));
  std::memcpy(out.data(), bias_.data(),
              static_cast<std::size_t>(out_) * sizeof(float));
  for (const auto& acc : partial) {
    for (std::int64_t o = 0; o < out_; ++o) {
      out[static_cast<std::size_t>(o)] += acc[static_cast<std::size_t>(o)];
    }
  }
  if (fused_) eltwise_row(out.data(), out_, slope_);
  bf16_from_f32(out.data(), dst, static_cast<std::size_t>(out_));
}

void Dense::forward_int8w(const Tensor& src, Tensor& dst,
                          std::span<const std::int8_t> qweights,
                          std::span<const float> scales,
                          LayerExecState& exec,
                          runtime::ThreadPool& pool) const {
  const runtime::ScopedTimer timer(exec.timers.fwd);
  if (src.shape() != input_shape() || dst.shape() != output_shape()) {
    throw std::invalid_argument("Dense::forward_int8w: shape mismatch");
  }
  if (qweights.size() != int8_weight_count() ||
      scales.size() != int8_scale_count()) {
    throw std::logic_error("Dense::forward_int8w: bad quantized segment");
  }
  const std::int8_t* qbase = qweights.data();
  const float* sc = scales.data();
  constexpr std::size_t kChunks = 16;
  constexpr std::int64_t kSerialWorkLimit = 4096;
  const std::size_t chunks =
      std::min<std::size_t>(kChunks, static_cast<std::size_t>(in_));
  const std::size_t chunk_size =
      (static_cast<std::size_t>(in_) + chunks - 1) / chunks;
  std::vector<std::vector<float>> partial(
      chunks, std::vector<float>(static_cast<std::size_t>(out_), 0.0f));
  const std::size_t grain = std::max<std::size_t>(
      in_ * out_ <= kSerialWorkLimit ? chunks : 1, exec.intraop_grain);
  pool.parallel_for(
      chunks,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t chunk = begin; chunk < end; ++chunk) {
          float* acc = partial[chunk].data();
          const std::size_t lo = chunk * chunk_size;
          const std::size_t hi =
              std::min(static_cast<std::size_t>(in_), lo + chunk_size);
          for (std::size_t i = lo; i < hi; ++i) {
            const float sv = src[i];
            const std::int8_t* qrow =
                qbase + i * static_cast<std::size_t>(out_);
            std::int64_t o = 0;
#if defined(__AVX512F__)
            for (; o + kB <= out_; o += kB) {
              _mm512_storeu_ps(
                  acc + o,
                  _mm512_fmadd_ps(
                      int8_dequant_16(qrow + o, _mm512_loadu_ps(sc + o)),
                      _mm512_set1_ps(sv), _mm512_loadu_ps(acc + o)));
            }
#endif
            for (; o < out_; ++o) {
              acc[o] += static_cast<float>(qrow[o]) * sc[o] * sv;
            }
          }
        }
      },
      grain);
  std::memcpy(dst.data(), bias_.data(),
              static_cast<std::size_t>(out_) * sizeof(float));
  for (const auto& acc : partial) {
    for (std::int64_t o = 0; o < out_; ++o) {
      dst[static_cast<std::size_t>(o)] += acc[static_cast<std::size_t>(o)];
    }
  }
  if (fused_) eltwise_row(dst.data(), out_, slope_);
}

void Dense::quantize_weights_int8(std::span<std::int8_t> qweights,
                                  std::span<float> scales) const {
  if (qweights.size() != int8_weight_count() ||
      scales.size() != int8_scale_count()) {
    throw std::invalid_argument("Dense::quantize_weights_int8: bad spans");
  }
  // {I, O} input-major: o = i % out_.
  const float* w = weights_.data();
  const std::size_t n = qweights.size();
  const std::size_t o_count = scales.size();
  std::vector<float> max_abs(o_count, 0.0f);
  for (std::size_t i = 0; i < n; ++i) {
    max_abs[i % o_count] =
        std::max(max_abs[i % o_count], std::fabs(w[i]));
  }
  std::vector<float> inv(o_count);
  for (std::size_t o = 0; o < o_count; ++o) {
    scales[o] = int8_scale_from_max(max_abs[o]);
    inv[o] = max_abs[o] > 0.0f ? 127.0f / max_abs[o] : 0.0f;
  }
  for (std::size_t i = 0; i < n; ++i) {
    qweights[i] = quantize_int8(w[i], inv[i % o_count]);
  }
}

void Dense::pack_weights_bf16(std::span<bf16_t> segment) const {
#if CF_BF16_DP
  const std::size_t wn = static_cast<std::size_t>(in_ * out_);
  if (segment.size() != wn + static_cast<std::size_t>(out_)) {
    throw std::logic_error("Dense::pack_weights_bf16: bad segment size");
  }
  // Condition mirrors forward_bf16's `packed` check: in_ % 32 keeps
  // chunk boundaries even, out_ % 16 keeps rows whole. Layers that
  // fail it (e.g. a narrow head) keep the plain {I, O} image for the
  // widen path.
  if (in_ % 32 != 0 || out_ % kB != 0) return;
  std::vector<bf16_t> plain(segment.begin(), segment.begin() + wn);
  bf16_t* dst = segment.data();
  const std::size_t o_count = static_cast<std::size_t>(out_);
  // {I, O} → {I/2, O, 2}: the pair (w[2p][o], w[2p+1][o]) lands in one
  // 32-bit lane for vdpbf16ps against a broadcast source pair.
  for (std::size_t p = 0; p < static_cast<std::size_t>(in_) / 2; ++p) {
    for (std::size_t o = 0; o < o_count; ++o) {
      dst[(p * o_count + o) * 2 + 0] = plain[(2 * p + 0) * o_count + o];
      dst[(p * o_count + o) * 2 + 1] = plain[(2 * p + 1) * o_count + o];
    }
  }
#else
  static_cast<void>(segment);  // widen/scalar tiers read the plain image
#endif
}

// --- AvgPool3d --------------------------------------------------------

void AvgPool3d::forward_bf16(const bf16_t* src, bf16_t* dst,
                             std::span<const bf16_t> params,
                             LayerExecState& exec,
                             runtime::ThreadPool& pool) const {
  static_cast<void>(params);  // parameterless
  const runtime::ScopedTimer timer(exec.timers.fwd);
  const std::int64_t k = config_.kernel;
  const std::int64_t s = config_.stride;
  const float inv = 1.0f / static_cast<float>(k * k * k);
  pool.parallel_for(
      static_cast<std::size_t>(cb_ * out_d_),
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t job = begin; job < end; ++job) {
          const std::int64_t cb = static_cast<std::int64_t>(job) / out_d_;
          const std::int64_t od = static_cast<std::int64_t>(job) % out_d_;
          for (std::int64_t oh = 0; oh < out_h_; ++oh) {
            bf16_t* drow =
                dst + (((cb * out_d_ + od) * out_h_ + oh) * out_w_) * kB;
            for (std::int64_t ow = 0; ow < out_w_; ++ow) {
#if defined(__AVX512F__)
              __m512 acc = _mm512_setzero_ps();
              for (std::int64_t kd = 0; kd < k; ++kd) {
                for (std::int64_t kh = 0; kh < k; ++kh) {
                  const bf16_t* srow =
                      src +
                      (((cb * in_d_ + od * s + kd) * in_h_ + oh * s + kh) *
                           in_w_ +
                       ow * s) *
                          kB;
                  for (std::int64_t kw = 0; kw < k; ++kw) {
                    acc = _mm512_add_ps(acc, bf16_load_16(srow + kw * kB));
                  }
                }
              }
              bf16_store_16(drow + ow * kB,
                            _mm512_mul_ps(acc, _mm512_set1_ps(inv)));
#else
              float acc[kB] = {};
              for (std::int64_t kd = 0; kd < k; ++kd) {
                for (std::int64_t kh = 0; kh < k; ++kh) {
                  const bf16_t* srow =
                      src +
                      (((cb * in_d_ + od * s + kd) * in_h_ + oh * s + kh) *
                           in_w_ +
                       ow * s) *
                          kB;
                  for (std::int64_t kw = 0; kw < k; ++kw) {
                    const bf16_t* v = srow + kw * kB;
                    for (int c = 0; c < kB; ++c) {
                      acc[c] += bf16_to_float(v[c]);
                    }
                  }
                }
              }
              bf16_t* d = drow + ow * kB;
              for (int c = 0; c < kB; ++c) {
                d[c] = float_to_bf16(acc[c] * inv);
              }
#endif
            }
          }
        }
      },
      exec.intraop_grain);
}

// --- Flatten ----------------------------------------------------------

void Flatten::forward_bf16(const bf16_t* src, bf16_t* dst,
                           std::span<const bf16_t> params,
                           LayerExecState& exec,
                           runtime::ThreadPool& pool) const {
  static_cast<void>(params);  // parameterless
  const runtime::ScopedTimer timer(exec.timers.fwd);
  const std::int64_t spatial = d_ * h_ * w_;
  const std::size_t grain = std::max<std::size_t>(
      channels_ * spatial <= 4096 ? static_cast<std::size_t>(channels_) : 1,
      exec.intraop_grain);
  pool.parallel_for(
      static_cast<std::size_t>(channels_),
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t chi = begin; chi < end; ++chi) {
          const std::int64_t ch = static_cast<std::int64_t>(chi);
          const std::int64_t block = ch / kChannelBlock;
          const std::int64_t lane = ch % kChannelBlock;
          const bf16_t* s = src + block * spatial * kChannelBlock + lane;
          bf16_t* d = dst + ch * spatial;
          for (std::int64_t v = 0; v < spatial; ++v) {
            d[v] = s[v * kChannelBlock];
          }
        }
      },
      grain);
}

// --- LeakyRelu --------------------------------------------------------

void LeakyRelu::forward_bf16(const bf16_t* src, bf16_t* dst,
                             std::span<const bf16_t> params,
                             LayerExecState& exec,
                             runtime::ThreadPool& pool) const {
  static_cast<void>(params);  // parameterless
  const runtime::ScopedTimer timer(exec.timers.fwd);
  const std::size_t n =
      static_cast<std::size_t>(output_shape().numel());
  const float slope = slope_;
  pool.parallel_for(
      n,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        std::size_t i = begin;
#if defined(__AVX512F__)
        const __m512 sv = _mm512_set1_ps(slope);
        const __m512 zero = _mm512_setzero_ps();
        for (; i + kB <= end; i += kB) {
          const __m512 v = bf16_load_16(src + i);
          const __mmask16 pos =
              _mm512_cmp_ps_mask(v, zero, _CMP_GT_OQ);
          bf16_store_16(dst + i,
                        _mm512_mask_blend_ps(pos, _mm512_mul_ps(sv, v), v));
        }
#endif
        for (; i < end; ++i) {
          const float v = bf16_to_float(src[i]);
          dst[i] = float_to_bf16(v > 0.0f ? v : slope * v);
        }
      },
      /*grain=*/4096);
}

}  // namespace cf::dnn
