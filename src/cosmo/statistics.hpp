// Traditional summary statistics of a density volume.
//
// Cosmologists classically compress the matter distribution into
// reduced statistics — the power spectrum and low-order moments of the
// density PDF (§I-B). The paper's scientific claim (via Ravanbakhsh et
// al. 2017) is that a CNN consuming the raw field beats parameter
// estimates built on such statistics; core/baseline.hpp implements
// that classical estimator so the claim can be tested here.
#pragma once

#include <vector>

#include "runtime/thread_pool.hpp"
#include "tensor/tensor.hpp"

namespace cf::cosmo {

/// Low-order moments of the voxel-value PDF.
struct FieldMoments {
  double mean = 0.0;
  double variance = 0.0;
  double skewness = 0.0;  // standardized third moment
  double kurtosis = 0.0;  // standardized fourth moment (excess)
};

/// Moments of any {*, N, N, N} or flat tensor's values.
FieldMoments field_moments(const tensor::Tensor& volume);

/// Isotropic power spectrum of a real cubic field {1, N, N, N} or
/// {N, N, N} with physical box size `box_size` (Mpc/h): shell-averaged
/// |delta_k|^2 V / N^6 in `bins` linear shells up to Nyquist. N must be
/// a power of two.
std::vector<double> real_field_power_spectrum(const tensor::Tensor& volume,
                                              double box_size, int bins,
                                              runtime::ThreadPool& pool);

/// The feature vector used by the classical baseline estimator:
/// {variance, skewness, kurtosis, log power in each of `spectrum_bins`
/// shells}.
std::vector<double> summary_features(const tensor::Tensor& volume,
                                     double box_size, int spectrum_bins,
                                     runtime::ThreadPool& pool);

}  // namespace cf::cosmo
