// Shared helpers for the example executables: a tiny --flag=value
// parser and an ASCII volume renderer (the Fig 1 stand-in).
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace cf::examples {

/// Parses --key=value arguments; anything else aborts with usage help.
class Flags {
 public:
  Flags(int argc, char** argv, const std::string& usage) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument '%s'\n%s\n", argv[i],
                     usage.c_str());
        std::exit(2);
      }
      const std::size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "1";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    }
  }

  std::int64_t get_int(const std::string& key, std::int64_t fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stoll(it->second);
  }

  double get_double(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }

  std::string get_string(const std::string& key,
                         const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

 private:
  std::map<std::string, std::string> values_;
};

/// Renders a depth-projected {1, D, H, W} volume as ASCII art — the
/// terminal's version of the paper's Fig 1 sub-volume rendering.
inline void render_volume_ascii(const tensor::Tensor& volume) {
  const std::int64_t d = volume.shape()[1];
  const std::int64_t h = volume.shape()[2];
  const std::int64_t w = volume.shape()[3];
  const char* shades = " .:-=+*#%@";
  float max_column = 1e-6f;
  std::vector<float> projected(static_cast<std::size_t>(h * w), 0.0f);
  for (std::int64_t z = 0; z < d; ++z) {
    for (std::int64_t y = 0; y < h; ++y) {
      for (std::int64_t x = 0; x < w; ++x) {
        projected[static_cast<std::size_t>(y * w + x)] +=
            volume.at({0, z, y, x});
      }
    }
  }
  for (const float v : projected) max_column = std::max(max_column, v);
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      const float v = projected[static_cast<std::size_t>(y * w + x)];
      const int shade = std::min(
          9, static_cast<int>(v / max_column * 9.999f));
      std::putchar(shades[shade]);
      std::putchar(shades[shade]);  // square-ish aspect ratio
    }
    std::putchar('\n');
  }
}

}  // namespace cf::examples
