file(REMOVE_RECURSE
  "CMakeFiles/bench_flops_model.dir/bench_flops_model.cpp.o"
  "CMakeFiles/bench_flops_model.dir/bench_flops_model.cpp.o.d"
  "bench_flops_model"
  "bench_flops_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flops_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
