// cfrecord: a record-oriented binary container with TFRecord framing.
//
// The paper stores its 1.4 TB training set as TFRecord files of 64
// samples each (§IV-C). Each record is framed exactly as TFRecord
// frames it:
//
//   uint64  length          (little endian)
//   uint32  masked crc32c(length bytes)
//   bytes   payload[length]
//   uint32  masked crc32c(payload)
//
// so short writes, bit rot and misaligned seeks all surface as
// CorruptRecordError at read time rather than as silently-wrong
// training data.
//
// Reading has two modes (DESIGN.md §2.7):
//
//  * mmap (the default where the platform supports it) — the whole
//    shard is mapped read-only and read_view()/view_at() return
//    validated spans straight out of the page cache: zero copies
//    between the file and the deserializer. A mapped reader's
//    view_at() is const and thread-safe, so one reader (its mapping
//    and its index) is shared by every I/O thread.
//  * stream (the fallback, and the `--no-mmap` ablation) — buffered
//    ifstream reads into caller buffers, one private reader per
//    thread.
//
// Both modes validate the same framing and CRCs and deliver
// byte-identical payloads.
#pragma once

#include <cstdint>
#include <fstream>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace cf::data {

class CorruptRecordError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class RecordWriter {
 public:
  explicit RecordWriter(const std::string& path);
  ~RecordWriter();

  RecordWriter(const RecordWriter&) = delete;
  RecordWriter& operator=(const RecordWriter&) = delete;

  void write(std::span<const std::uint8_t> payload);
  std::size_t records_written() const noexcept { return count_; }

  /// Flushes and closes; throws on I/O failure. Called by the
  /// destructor if not called explicitly (errors then swallowed).
  void close();

 private:
  std::ofstream out_;
  std::string path_;
  /// Frame assembly scratch (header + payload + footer written as one
  /// out_.write); capacity persists across records.
  std::vector<std::uint8_t> frame_;
  std::size_t count_ = 0;
  bool closed_ = false;
};

enum class ReaderMode {
  kAuto,    ///< mmap when the platform supports it, else stream.
  kStream,  ///< buffered ifstream reads (the `--no-mmap` ablation).
  kMmap,    ///< mapped file; construction throws if mapping fails.
};

class RecordReader {
 public:
  explicit RecordReader(const std::string& path,
                        ReaderMode mode = ReaderMode::kAuto);
  ~RecordReader();

  RecordReader(const RecordReader&) = delete;
  RecordReader& operator=(const RecordReader&) = delete;

  /// Reads the next record; returns false at (clean) end of file.
  /// Throws CorruptRecordError on framing or checksum violations.
  bool read(std::vector<std::uint8_t>& payload);

  /// Zero-copy variant of read(): `*payload` points into the mapped
  /// file (mmap mode; valid for the reader's lifetime) or into an
  /// internal scratch buffer (stream mode; valid until the next read
  /// on this reader).
  bool read_view(std::span<const std::uint8_t>* payload);

  /// Byte offsets of every record in the file (a full validating
  /// scan); enables O(1) random access via read_at/view_at.
  std::vector<std::uint64_t> build_index();

  /// Reads the record at a byte offset previously returned by
  /// build_index().
  void read_at(std::uint64_t offset, std::vector<std::uint8_t>& payload);

  /// Validated zero-copy view of the record at `offset`. mmap mode
  /// only (throws std::logic_error in stream mode); const and safe to
  /// call concurrently from any number of threads.
  std::span<const std::uint8_t> view_at(std::uint64_t offset) const;

  /// True when the file is memory-mapped (view_at available).
  bool mapped() const noexcept { return map_data_ != nullptr; }

  const std::string& path() const noexcept { return path_; }

 private:
  bool read_one(std::vector<std::uint8_t>& payload);
  /// Parses and validates the frame at `offset` in the mapping;
  /// returns the payload view and sets `*next` to the following
  /// frame's offset. Throws CorruptRecordError.
  std::span<const std::uint8_t> parse_mapped(std::uint64_t offset,
                                             std::uint64_t* next) const;

  std::ifstream in_;
  std::string path_;
  std::uint64_t file_size_ = 0;

  // mmap mode state; null when streaming.
  const std::uint8_t* map_data_ = nullptr;
  std::size_t map_size_ = 0;
  std::uint64_t cursor_ = 0;  // sequential read position (mmap mode)

  // Stream-mode scratch backing read_view().
  std::vector<std::uint8_t> scratch_;
};

}  // namespace cf::data
