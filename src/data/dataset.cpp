#include "data/dataset.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <unordered_map>

#include "runtime/rng.hpp"

namespace cf::data {

namespace {

class InMemoryReader final : public SampleReader {
 public:
  explicit InMemoryReader(const std::vector<Sample>& samples)
      : samples_(samples) {}

  Sample get(std::size_t index) override {
    if (index >= samples_.size()) {
      throw std::out_of_range("InMemoryReader: index out of range");
    }
    return samples_[index].clone();
  }

  void get_into(std::size_t index, Sample& out) override {
    if (index >= samples_.size()) {
      throw std::out_of_range("InMemoryReader: index out of range");
    }
    out.copy_from(samples_[index]);
  }

 private:
  const std::vector<Sample>& samples_;
};

}  // namespace

InMemorySource::InMemorySource(std::vector<Sample> samples)
    : samples_(std::move(samples)) {}

std::unique_ptr<SampleReader> InMemorySource::make_reader() const {
  return std::make_unique<InMemoryReader>(samples_);
}

namespace {

class CfrecordReaderImpl final : public SampleReader {
 public:
  CfrecordReaderImpl(
      const std::vector<std::string>* paths,
      const std::vector<std::pair<std::uint32_t, std::uint64_t>>* index,
      const std::vector<std::unique_ptr<RecordReader>>* shared)
      : paths_(paths), index_(index), shared_(shared) {}

  Sample get(std::size_t index) override {
    Sample sample;
    get_into(index, sample);
    return sample;
  }

  void get_into(std::size_t index, Sample& out) override {
    if (index >= index_->size()) {
      throw std::out_of_range("CfrecordReader: index out of range");
    }
    const auto [shard, offset] = (*index_)[index];
    if (!shared_->empty()) {
      // Mapped shard shared across all readers: deserialize straight
      // from the page-cache view, no intermediate payload copy.
      deserialize_sample_into((*shared_)[shard]->view_at(offset), out);
      return;
    }
    RecordReader& reader = open(shard);
    reader.read_at(offset, payload_);
    deserialize_sample_into(payload_, out);
  }

 private:
  RecordReader& open(std::uint32_t shard) {
    auto it = readers_.find(shard);
    if (it == readers_.end()) {
      it = readers_
               .emplace(shard, std::make_unique<RecordReader>(
                                   (*paths_)[shard], ReaderMode::kStream))
               .first;
    }
    return *it->second;
  }

  const std::vector<std::string>* paths_;
  const std::vector<std::pair<std::uint32_t, std::uint64_t>>* index_;
  const std::vector<std::unique_ptr<RecordReader>>* shared_;
  std::unordered_map<std::uint32_t, std::unique_ptr<RecordReader>> readers_;
  std::vector<std::uint8_t> payload_;
};

}  // namespace

CfrecordSource::CfrecordSource(std::vector<std::string> shard_paths,
                               ReaderMode mode)
    : paths_(std::move(shard_paths)) {
  if (paths_.empty()) {
    throw std::invalid_argument("CfrecordSource: no shard paths");
  }
  // One validating scan per shard builds the shared index; the readers
  // opened for the scan are kept (and shared by every SampleReader)
  // when all of them mapped, discarded otherwise so every shard goes
  // through the same code path.
  shared_readers_.reserve(paths_.size());
  bool all_mapped = true;
  for (std::size_t s = 0; s < paths_.size(); ++s) {
    auto reader = std::make_unique<RecordReader>(paths_[s], mode);
    for (const std::uint64_t offset : reader->build_index()) {
      index_.push_back({static_cast<std::uint32_t>(s), offset});
    }
    all_mapped = all_mapped && reader->mapped();
    shared_readers_.push_back(std::move(reader));
  }
  if (!all_mapped) shared_readers_.clear();
}

std::unique_ptr<SampleReader> CfrecordSource::make_reader() const {
  return std::make_unique<CfrecordReaderImpl>(&paths_, &index_,
                                              &shared_readers_);
}

std::vector<std::string> write_shards(const std::vector<Sample>& samples,
                                      const std::string& directory,
                                      const std::string& prefix,
                                      std::size_t samples_per_shard,
                                      std::uint64_t shuffle_seed) {
  if (samples.empty()) {
    throw std::invalid_argument("write_shards: no samples");
  }
  if (samples_per_shard == 0) {
    throw std::invalid_argument("write_shards: samples_per_shard == 0");
  }
  std::filesystem::create_directories(directory);

  // Fisher-Yates shuffle of the sample order.
  std::vector<std::size_t> order(samples.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  runtime::Rng rng(shuffle_seed, /*stream=*/0x7368617264ULL);  // "shard"
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.uniform_index(i)]);
  }

  const std::size_t shards =
      (samples.size() + samples_per_shard - 1) / samples_per_shard;
  std::vector<std::string> paths;
  paths.reserve(shards);
  std::size_t cursor = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    char name[64];
    std::snprintf(name, sizeof(name), "%s_%04zu.cfrecord", prefix.c_str(),
                  s);
    const std::string path =
        (std::filesystem::path(directory) / name).string();
    RecordWriter writer(path);
    for (std::size_t i = 0;
         i < samples_per_shard && cursor < samples.size(); ++i, ++cursor) {
      const auto payload = serialize_sample(samples[order[cursor]]);
      writer.write(payload);
    }
    writer.close();
    paths.push_back(path);
  }
  return paths;
}

SplitIndices split_by_group(const std::vector<std::size_t>& groups,
                            double val_fraction, double test_fraction,
                            std::uint64_t seed) {
  if (val_fraction < 0.0 || test_fraction < 0.0 ||
      val_fraction + test_fraction >= 1.0) {
    throw std::invalid_argument("split_by_group: bad fractions");
  }
  std::vector<std::size_t> unique = groups;
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());

  runtime::Rng rng(seed, /*stream=*/0x73706C6974ULL);  // "split"
  for (std::size_t i = unique.size(); i > 1; --i) {
    std::swap(unique[i - 1], unique[rng.uniform_index(i)]);
  }
  const std::size_t val_groups = static_cast<std::size_t>(
      val_fraction * static_cast<double>(unique.size()));
  const std::size_t test_groups = static_cast<std::size_t>(
      test_fraction * static_cast<double>(unique.size()));

  enum class Bucket : std::uint8_t { kTrain, kVal, kTest };
  std::unordered_map<std::size_t, Bucket> assignment;
  for (std::size_t i = 0; i < unique.size(); ++i) {
    Bucket bucket = Bucket::kTrain;
    if (i < val_groups) {
      bucket = Bucket::kVal;
    } else if (i < val_groups + test_groups) {
      bucket = Bucket::kTest;
    }
    assignment[unique[i]] = bucket;
  }

  SplitIndices split;
  for (std::size_t i = 0; i < groups.size(); ++i) {
    switch (assignment[groups[i]]) {
      case Bucket::kTrain:
        split.train.push_back(i);
        break;
      case Bucket::kVal:
        split.val.push_back(i);
        break;
      case Bucket::kTest:
        split.test.push_back(i);
        break;
    }
  }
  return split;
}

}  // namespace cf::data
