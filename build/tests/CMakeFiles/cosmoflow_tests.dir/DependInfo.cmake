
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/augment_test.cpp" "tests/CMakeFiles/cosmoflow_tests.dir/augment_test.cpp.o" "gcc" "tests/CMakeFiles/cosmoflow_tests.dir/augment_test.cpp.o.d"
  "/root/repo/tests/baseline_test.cpp" "tests/CMakeFiles/cosmoflow_tests.dir/baseline_test.cpp.o" "gcc" "tests/CMakeFiles/cosmoflow_tests.dir/baseline_test.cpp.o.d"
  "/root/repo/tests/comm_test.cpp" "tests/CMakeFiles/cosmoflow_tests.dir/comm_test.cpp.o" "gcc" "tests/CMakeFiles/cosmoflow_tests.dir/comm_test.cpp.o.d"
  "/root/repo/tests/conv3d_test.cpp" "tests/CMakeFiles/cosmoflow_tests.dir/conv3d_test.cpp.o" "gcc" "tests/CMakeFiles/cosmoflow_tests.dir/conv3d_test.cpp.o.d"
  "/root/repo/tests/core_test.cpp" "tests/CMakeFiles/cosmoflow_tests.dir/core_test.cpp.o" "gcc" "tests/CMakeFiles/cosmoflow_tests.dir/core_test.cpp.o.d"
  "/root/repo/tests/cosmo_test.cpp" "tests/CMakeFiles/cosmoflow_tests.dir/cosmo_test.cpp.o" "gcc" "tests/CMakeFiles/cosmoflow_tests.dir/cosmo_test.cpp.o.d"
  "/root/repo/tests/data_test.cpp" "tests/CMakeFiles/cosmoflow_tests.dir/data_test.cpp.o" "gcc" "tests/CMakeFiles/cosmoflow_tests.dir/data_test.cpp.o.d"
  "/root/repo/tests/determinism_test.cpp" "tests/CMakeFiles/cosmoflow_tests.dir/determinism_test.cpp.o" "gcc" "tests/CMakeFiles/cosmoflow_tests.dir/determinism_test.cpp.o.d"
  "/root/repo/tests/fft_test.cpp" "tests/CMakeFiles/cosmoflow_tests.dir/fft_test.cpp.o" "gcc" "tests/CMakeFiles/cosmoflow_tests.dir/fft_test.cpp.o.d"
  "/root/repo/tests/growth_test.cpp" "tests/CMakeFiles/cosmoflow_tests.dir/growth_test.cpp.o" "gcc" "tests/CMakeFiles/cosmoflow_tests.dir/growth_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/cosmoflow_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/cosmoflow_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/iosim_test.cpp" "tests/CMakeFiles/cosmoflow_tests.dir/iosim_test.cpp.o" "gcc" "tests/CMakeFiles/cosmoflow_tests.dir/iosim_test.cpp.o.d"
  "/root/repo/tests/layers_test.cpp" "tests/CMakeFiles/cosmoflow_tests.dir/layers_test.cpp.o" "gcc" "tests/CMakeFiles/cosmoflow_tests.dir/layers_test.cpp.o.d"
  "/root/repo/tests/network_test.cpp" "tests/CMakeFiles/cosmoflow_tests.dir/network_test.cpp.o" "gcc" "tests/CMakeFiles/cosmoflow_tests.dir/network_test.cpp.o.d"
  "/root/repo/tests/optim_test.cpp" "tests/CMakeFiles/cosmoflow_tests.dir/optim_test.cpp.o" "gcc" "tests/CMakeFiles/cosmoflow_tests.dir/optim_test.cpp.o.d"
  "/root/repo/tests/runtime_test.cpp" "tests/CMakeFiles/cosmoflow_tests.dir/runtime_test.cpp.o" "gcc" "tests/CMakeFiles/cosmoflow_tests.dir/runtime_test.cpp.o.d"
  "/root/repo/tests/tensor_test.cpp" "tests/CMakeFiles/cosmoflow_tests.dir/tensor_test.cpp.o" "gcc" "tests/CMakeFiles/cosmoflow_tests.dir/tensor_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cosmoflow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
