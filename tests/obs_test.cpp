// Tests for the cf::obs telemetry subsystem: metrics registry
// (counters / gauges / stats), the span tracer with its per-thread
// rings and deterministic chrome://tracing export, the JSONL sink, and
// the end-to-end guarantee that the Trainer's per-step JSONL records
// telescope to Trainer::breakdown().
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/topology.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "obs/telemetry.hpp"
#include "runtime/thread_pool.hpp"

namespace cf::obs {
namespace {

// --- Metrics registry ------------------------------------------------

TEST(Metrics, CounterAggregatesUnderContention) {
  Registry registry;
  Counter& counter = registry.counter("test/contended");
  runtime::ThreadPool pool(4);
  constexpr std::size_t kIters = 100000;
  pool.parallel_for(kIters,
                    [&](std::size_t begin, std::size_t end, std::size_t) {
                      for (std::size_t i = begin; i < end; ++i) {
                        counter.add(1);
                      }
                    });
  EXPECT_EQ(counter.value(), static_cast<std::int64_t>(kIters));
}

TEST(Metrics, StatAggregatesUnderContention) {
  Registry registry;
  Stat& stat = registry.stat("test/stat");
  runtime::ThreadPool pool(4);
  constexpr std::size_t kIters = 10000;
  pool.parallel_for(kIters,
                    [&](std::size_t begin, std::size_t end, std::size_t) {
                      for (std::size_t i = begin; i < end; ++i) {
                        stat.add(2.0);
                      }
                    });
  const runtime::TimeStats snap = stat.snapshot();
  EXPECT_EQ(snap.count(), static_cast<std::int64_t>(kIters));
  EXPECT_DOUBLE_EQ(snap.total(), 2.0 * kIters);
  EXPECT_DOUBLE_EQ(snap.min(), 2.0);
  EXPECT_DOUBLE_EQ(snap.max(), 2.0);
}

TEST(Metrics, HandlesAreStableAcrossRegistrations) {
  Registry registry;
  Counter* first = &registry.counter("stable/a");
  for (int i = 0; i < 100; ++i) {
    registry.counter("stable/filler" + std::to_string(i));
    registry.stat("stable/stat" + std::to_string(i));
  }
  EXPECT_EQ(first, &registry.counter("stable/a"));
}

TEST(Metrics, ResetPrefixZeroesOnlyMatches) {
  Registry registry;
  registry.counter("pipe/a").add(3);
  registry.counter("other/b").add(5);
  registry.stat("pipe/wait").add(1.0);
  registry.reset_prefix("pipe/");
  EXPECT_EQ(registry.counter("pipe/a").value(), 0);
  EXPECT_EQ(registry.counter("other/b").value(), 5);
  EXPECT_EQ(registry.stat("pipe/wait").snapshot().count(), 0);
}

TEST(Metrics, ToJsonIsDeterministic) {
  Registry registry;
  registry.counter("c").add(2);
  registry.gauge("g").set(1.5);
  Stat& stat = registry.stat("s");
  stat.add(2.0);
  stat.add(4.0);
  const std::string expected =
      "{\"counters\":{\"c\":2},\"gauges\":{\"g\":1.5},\"histograms\":{},"
      "\"stats\":{\"s\":{\"count\":2,\"total\":6,\"min\":2,\"max\":4,"
      "\"mean\":3}}}";
  EXPECT_EQ(registry.to_json(), expected);
  EXPECT_EQ(registry.to_json(), expected);  // stable across calls
}

// --- Histogram -------------------------------------------------------

TEST(Metrics, HistogramPercentilesBoundTheSample) {
  Registry registry;
  Histogram& hist = registry.histogram("h");
  // 1000 observations spread linearly over [1 ms, 100 ms]: p50 ≈ 50 ms,
  // p99 ≈ 99 ms. The log-bucket estimate reports a bucket upper bound,
  // so it is >= the true quantile and within one growth factor of it.
  for (int i = 1; i <= 1000; ++i) {
    hist.add(1e-3 + (100e-3 - 1e-3) * (i - 1) / 999.0);
  }
  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_NEAR(snap.mean(), 50.5e-3, 1e-4);
  const double p50 = snap.percentile(0.50);
  const double p99 = snap.percentile(0.99);
  const double p999 = snap.percentile(0.999);
  EXPECT_GE(p50, 50.0e-3);
  EXPECT_LE(p50, 50.0e-3 * Histogram::kGrowth * Histogram::kGrowth);
  EXPECT_GE(p99, 99.0e-3);
  EXPECT_LE(p99, 99.0e-3 * Histogram::kGrowth * Histogram::kGrowth);
  EXPECT_GE(p999, p99);
  EXPECT_LE(snap.percentile(0.0), snap.percentile(1.0));
}

TEST(Metrics, HistogramClampsOutOfRangeAndResets) {
  Histogram hist;
  hist.add(0.0);     // below floor -> first bucket
  hist.add(-1.0);    // negative -> first bucket
  hist.add(1e9);     // beyond last bucket -> last bucket
  HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.buckets.front(), 2u);
  EXPECT_EQ(snap.buckets.back(), 1u);
  // The exact extremes are untouched by bucket clamping.
  EXPECT_DOUBLE_EQ(snap.min, -1.0);
  EXPECT_DOUBLE_EQ(snap.max, 1e9);
  hist.reset();
  snap = hist.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.percentile(0.99), 0.0);
  EXPECT_EQ(snap.min, 0.0);  // empty histogram reports 0.0 anchors
  EXPECT_EQ(snap.max, 0.0);
}

TEST(Metrics, HistogramExportsExactAnchors) {
  Registry registry;
  Histogram& hist = registry.histogram("lat");
  hist.add(0.25);
  hist.add(1.0);
  hist.add(0.5);
  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.sum, 1.75);
  EXPECT_DOUBLE_EQ(snap.min, 0.25);
  EXPECT_DOUBLE_EQ(snap.max, 1.0);
  // The stats sink carries the exact anchors next to the ~12%-bucket
  // percentiles, so p99 == p999 at small counts is interpretable.
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"sum\":1.75"), std::string::npos);
  EXPECT_NE(json.find("\"min\":0.25"), std::string::npos);
  EXPECT_NE(json.find("\"max\":1"), std::string::npos);
}

TEST(Metrics, HistogramAggregatesUnderContention) {
  Registry registry;
  Histogram& hist = registry.histogram("contended");
  runtime::ThreadPool pool(4);
  constexpr std::size_t kIters = 100000;
  pool.parallel_for(kIters,
                    [&](std::size_t begin, std::size_t end, std::size_t) {
                      for (std::size_t i = begin; i < end; ++i) {
                        hist.add(1e-3);
                      }
                    });
  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kIters));
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
  // Every contended add() observed the same value; the CAS-maintained
  // extremes must agree exactly.
  EXPECT_DOUBLE_EQ(snap.min, 1e-3);
  EXPECT_DOUBLE_EQ(snap.max, 1e-3);
}

TEST(Metrics, ResetPrefixCoversHistograms) {
  Registry registry;
  registry.histogram("serve/latency").add(1e-3);
  registry.histogram("other/latency").add(1e-3);
  registry.reset_prefix("serve/");
  EXPECT_EQ(registry.histogram("serve/latency").snapshot().count, 0u);
  EXPECT_EQ(registry.histogram("other/latency").snapshot().count, 1u);
}

TEST(Metrics, ScopedStatTimerRecordsOneObservation) {
  Registry registry;
  Stat& stat = registry.stat("timed");
  { const ScopedStatTimer timer(stat); }
  const runtime::TimeStats snap = stat.snapshot();
  EXPECT_EQ(snap.count(), 1);
  EXPECT_GE(snap.total(), 0.0);
}

// --- Span tracer -----------------------------------------------------

TEST(Trace, GoldenChromeJsonExport) {
  Tracer tracer(/*ring_capacity=*/8);
  tracer.record_at("a", "cat0", /*tid=*/0, /*ts_ns=*/100, /*dur_ns=*/50);
  tracer.record_at("b", "cat1", /*tid=*/1, /*ts_ns=*/75, /*dur_ns=*/25);
  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"name\":\"b\",\"cat\":\"cat1\",\"ph\":\"X\",\"pid\":0,\"tid\":1,"
      "\"ts\":0.075,\"dur\":0.025},\n"
      "{\"name\":\"a\",\"cat\":\"cat0\",\"ph\":\"X\",\"pid\":0,\"tid\":0,"
      "\"ts\":0.100,\"dur\":0.050}\n"
      "]}\n";
  EXPECT_EQ(tracer.to_chrome_json(), expected);
}

TEST(Trace, SnapshotMergesAndSortsAcrossThreads) {
  Tracer tracer(/*ring_capacity=*/16);
  // Interleaved timestamps across three logical threads, registered
  // out of order; ties broken by tid.
  tracer.record_at("t2_late", "x", 2, 300, 1);
  tracer.record_at("t0_early", "x", 0, 100, 1);
  tracer.record_at("t1_tie", "x", 1, 200, 1);
  tracer.record_at("t0_tie", "x", 0, 200, 1);
  const std::vector<TraceEvent> events = tracer.snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_STREQ(events[0].name, "t0_early");
  EXPECT_STREQ(events[1].name, "t0_tie");   // ts tie: tid 0 before 1
  EXPECT_STREQ(events[2].name, "t1_tie");
  EXPECT_STREQ(events[3].name, "t2_late");
}

TEST(Trace, RingKeepsNewestAndCountsDrops) {
  Tracer tracer(/*ring_capacity=*/4);
  for (int i = 0; i < 6; ++i) {
    const std::string name = "e" + std::to_string(i);
    tracer.record_at(name.c_str(), "x", 0,
                     static_cast<std::uint64_t>(i), 1);
  }
  const std::vector<TraceEvent> events = tracer.snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_STREQ(events.front().name, "e2");  // e0, e1 overwritten
  EXPECT_STREQ(events.back().name, "e5");
  EXPECT_EQ(tracer.dropped(), 2u);
  tracer.clear();
  EXPECT_TRUE(tracer.snapshot().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Trace, SpanScopesNestAndSurviveThreadExit) {
  Tracer& tracer = Tracer::global();
  tracer.clear();
  {
    const SpanScope outer("outer", "test");
    const SpanScope inner("inner", "test");
  }
  std::thread worker([] { const SpanScope span("worker", "test"); });
  worker.join();

  const std::vector<TraceEvent> events = tracer.snapshot();
  ASSERT_EQ(events.size(), 3u);
  std::map<std::string, TraceEvent> by_name;
  for (const TraceEvent& event : events) by_name[event.name] = event;
  ASSERT_TRUE(by_name.count("outer"));
  ASSERT_TRUE(by_name.count("inner"));
  ASSERT_TRUE(by_name.count("worker"));  // recorded on an exited thread
  const TraceEvent& outer = by_name["outer"];
  const TraceEvent& inner = by_name["inner"];
  // The inner span is contained within the outer one.
  EXPECT_GE(inner.ts_ns, outer.ts_ns);
  EXPECT_LE(inner.ts_ns + inner.dur_ns, outer.ts_ns + outer.dur_ns);
  // Spans on different threads carry different tids.
  EXPECT_NE(by_name["worker"].tid, outer.tid);
  tracer.clear();
}

TEST(Trace, DisabledTracerRecordsNothing) {
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.set_enabled(false);
  {
    const SpanScope span("should_not_appear", "test");
  }
  tracer.set_enabled(true);
  for (const TraceEvent& event : tracer.snapshot()) {
    EXPECT_STRNE(event.name, "should_not_appear");
  }
  tracer.clear();
}

// --- JSONL sink ------------------------------------------------------

TEST(Jsonl, ObjectFormatsDeterministically) {
  JsonObject record;
  record.field("a", 1)
      .field("b", 2.5)
      .field("c", "x\"y\n")
      .field("d", true)
      .field("e", std::int64_t{-7});
  EXPECT_EQ(record.str(),
            "{\"a\":1,\"b\":2.5,\"c\":\"x\\\"y\\n\",\"d\":true,\"e\":-7}");
}

TEST(Jsonl, SinkWritesOneRecordPerLine) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "cf_obs_jsonl_test.jsonl")
          .string();
  {
    JsonlSink sink(path);
    ASSERT_TRUE(sink.ok());
    JsonObject a;
    a.field("step", 0);
    sink.write(a);
    JsonObject b;
    b.field("step", 1);
    sink.write(b);
  }
  std::ifstream in(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  EXPECT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "{\"step\":0}");
  EXPECT_EQ(lines[1], "{\"step\":1}");
  std::filesystem::remove(path);
}

// --- Trainer step log vs breakdown -----------------------------------

std::vector<data::Sample> make_samples(std::size_t count, std::int64_t dhw,
                                       std::uint64_t seed) {
  std::vector<data::Sample> samples;
  samples.reserve(count);
  runtime::Rng rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    const float level = rng.uniform();
    data::Sample s;
    s.volume = tensor::Tensor(tensor::Shape{1, dhw, dhw, dhw});
    for (float& v : s.volume.values()) v = level + 0.05f * rng.normal();
    s.target = {level, 1.0f - level, 0.5f * level + 0.25f};
    samples.push_back(std::move(s));
  }
  return samples;
}

/// Extracts `"key":<number>` from a flat JSONL record; nan if absent.
double field_of(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return std::strtod(line.c_str() + pos + needle.size(), nullptr);
}

bool has_field(const std::string& line, const std::string& key) {
  return line.find("\"" + key + "\":") != std::string::npos;
}

TEST(StepLog, Rank0RecordsTelescopeToBreakdown) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "cf_obs_steplog_test.jsonl")
          .string();
  data::InMemorySource train(make_samples(16, 16, 21));
  data::InMemorySource val(make_samples(4, 16, 22));
  core::TrainerConfig config;
  config.nranks = 2;
  config.epochs = 2;
  config.step_log_path = path;
  core::Trainer trainer(core::cosmoflow_scaled(16), train, val, config);
  trainer.run();
  const core::CategoryBreakdown breakdown = trainer.breakdown();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::map<std::string, double> summed;
  std::int64_t rank0_steps = 0;
  std::int64_t epoch_records = 0;
  while (std::getline(in, line)) {
    if (field_of(line, "rank") != 0.0) continue;
    if (line.find("\"phase\":\"step\"") != std::string::npos) {
      ++rank0_steps;
      EXPECT_TRUE(has_field(line, "loss"));
      EXPECT_TRUE(has_field(line, "lr"));
      EXPECT_TRUE(has_field(line, "sec_step"));
    } else {
      ASSERT_NE(line.find("\"phase\":\"epoch\""), std::string::npos);
      ++epoch_records;
      EXPECT_TRUE(has_field(line, "train_loss"));
      EXPECT_TRUE(has_field(line, "val_loss"));
    }
    for (const auto& [category, unused] : breakdown.seconds) {
      (void)unused;
      const double delta = field_of(line, "sec_" + category);
      ASSERT_FALSE(std::isnan(delta)) << category << " missing: " << line;
      summed[category] += delta;
    }
  }
  // 2 epochs x (16 samples / 2 ranks) steps, plus one epoch record per
  // epoch, on rank 0.
  EXPECT_EQ(rank0_steps, 2 * trainer.steps_per_epoch_per_rank());
  EXPECT_EQ(epoch_records, 2);

  // Acceptance: summed per-category deltas match breakdown within 1%.
  for (const auto& [category, seconds] : breakdown.seconds) {
    EXPECT_NEAR(summed[category], seconds,
                0.01 * seconds + 1e-6)
        << "category " << category;
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace cf::obs
