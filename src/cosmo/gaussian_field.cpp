#include "cosmo/gaussian_field.hpp"

#include <cmath>
#include <stdexcept>

#include "cosmo/fft3d.hpp"

namespace cf::cosmo {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

double GridSpec::k_fundamental() const { return 2.0 * kPi / box_size; }

std::vector<std::complex<float>> generate_delta_k(
    const PowerSpectrum& ps, const GridSpec& grid, runtime::Rng& rng,
    runtime::ThreadPool& pool) {
  const std::int64_t n = grid.n;
  const std::int64_t total = grid.cells();
  std::vector<std::complex<float>> modes(static_cast<std::size_t>(total));

  // White noise in real space (Hermitian symmetry for free). The draw
  // is sequential to stay independent of the thread count.
  for (std::int64_t i = 0; i < total; ++i) {
    modes[static_cast<std::size_t>(i)] = {rng.normal(), 0.0f};
  }

  Fft3d fft(n);
  fft.forward(modes.data(), pool);

  const double kf = grid.k_fundamental();
  const double volume = grid.box_size * grid.box_size * grid.box_size;
  const double mode_norm = static_cast<double>(total) / volume;

  pool.parallel_for(
      static_cast<std::size_t>(n),
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t zi = begin; zi < end; ++zi) {
          const std::int64_t z = static_cast<std::int64_t>(zi);
          const double kz =
              kf * static_cast<double>(fft_freq_index(z, n));
          for (std::int64_t y = 0; y < n; ++y) {
            const double ky =
                kf * static_cast<double>(fft_freq_index(y, n));
            for (std::int64_t x = 0; x < n; ++x) {
              const double kx =
                  kf * static_cast<double>(fft_freq_index(x, n));
              const double k = std::sqrt(kx * kx + ky * ky + kz * kz);
              const std::size_t idx =
                  static_cast<std::size_t>((z * n + y) * n + x);
              if (k == 0.0) {
                modes[idx] = {0.0f, 0.0f};  // zero mean density
                continue;
              }
              const float scale =
                  static_cast<float>(std::sqrt(ps(k) * mode_norm));
              modes[idx] *= scale;
            }
          }
        }
      });
  return modes;
}

tensor::Tensor delta_x_from_modes(std::vector<std::complex<float>> delta_k,
                                  const GridSpec& grid,
                                  runtime::ThreadPool& pool) {
  const std::int64_t n = grid.n;
  Fft3d fft(n);
  fft.inverse(delta_k.data(), pool);
  tensor::Tensor delta(tensor::Shape{n, n, n});
  const std::int64_t total = grid.cells();
  for (std::int64_t i = 0; i < total; ++i) {
    delta[static_cast<std::size_t>(i)] =
        delta_k[static_cast<std::size_t>(i)].real();
  }
  return delta;
}

std::vector<SpectrumBin> measure_power_spectrum(
    const std::vector<std::complex<float>>& delta_k, const GridSpec& grid,
    int bins) {
  const std::int64_t n = grid.n;
  if (delta_k.size() != static_cast<std::size_t>(grid.cells())) {
    throw std::invalid_argument("measure_power_spectrum: size mismatch");
  }
  if (bins <= 0) {
    throw std::invalid_argument("measure_power_spectrum: bins <= 0");
  }
  const double kf = grid.k_fundamental();
  const double k_nyquist = kf * static_cast<double>(n) / 2.0;
  const double volume = grid.box_size * grid.box_size * grid.box_size;
  const double n6 = static_cast<double>(grid.cells()) *
                    static_cast<double>(grid.cells());

  std::vector<SpectrumBin> result(static_cast<std::size_t>(bins));
  std::vector<double> power_acc(static_cast<std::size_t>(bins), 0.0);
  std::vector<double> k_acc(static_cast<std::size_t>(bins), 0.0);

  for (std::int64_t z = 0; z < n; ++z) {
    const double kz = kf * static_cast<double>(fft_freq_index(z, n));
    for (std::int64_t y = 0; y < n; ++y) {
      const double ky = kf * static_cast<double>(fft_freq_index(y, n));
      for (std::int64_t x = 0; x < n; ++x) {
        const double kx = kf * static_cast<double>(fft_freq_index(x, n));
        const double k = std::sqrt(kx * kx + ky * ky + kz * kz);
        if (k == 0.0 || k >= k_nyquist) continue;
        const int bin = static_cast<int>(k / k_nyquist * bins);
        const std::size_t idx = static_cast<std::size_t>((z * n + y) * n + x);
        const double amp2 = std::norm(std::complex<double>(delta_k[idx]));
        power_acc[static_cast<std::size_t>(bin)] += amp2 * volume / n6;
        k_acc[static_cast<std::size_t>(bin)] += k;
        ++result[static_cast<std::size_t>(bin)].modes;
      }
    }
  }
  for (int b = 0; b < bins; ++b) {
    const std::size_t i = static_cast<std::size_t>(b);
    if (result[i].modes > 0) {
      result[i].k = k_acc[i] / static_cast<double>(result[i].modes);
      result[i].power = power_acc[i] / static_cast<double>(result[i].modes);
    }
  }
  return result;
}

}  // namespace cf::cosmo
