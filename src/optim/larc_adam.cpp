#include "optim/larc_adam.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cf::optim {

namespace {

/// Block granularity for the norm reduction and the update sweep. The
/// block table — not the thread partition — fixes the reduction order,
/// so any thread count produces the same bits.
constexpr std::size_t kBlockElems = 4096;

constexpr std::size_t kLanes = 8;

/// Sum of squares with a fixed 8-lane accumulator split: lane j owns
/// elements j, j + 8, j + 16, ... so the combine order depends only on
/// n. The independent lanes break the serial double-add latency chain
/// (the old per-tensor l2_norm was latency-bound) and vectorize.
inline double sumsq_lanes(const float* __restrict x, std::size_t n) {
  double lane[kLanes] = {};
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (std::size_t j = 0; j < kLanes; ++j) {
      const double v = static_cast<double>(x[i + j]);
      lane[j] += v * v;
    }
  }
  double total = 0.0;
  for (std::size_t j = 0; j < kLanes; ++j) total += lane[j];
  for (; i < n; ++i) {
    const double v = static_cast<double>(x[i]);
    total += v * v;
  }
  return total;
}

}  // namespace

LarcAdam::LarcAdam(std::vector<dnn::ParamView> params, AdamConfig adam,
                   LarcConfig larc,
                   std::shared_ptr<const LrSchedule> schedule)
    : params_(std::move(params)),
      adam_(adam),
      larc_(larc),
      schedule_(std::move(schedule)) {
  if (params_.empty()) {
    throw std::invalid_argument("LarcAdam: no parameters");
  }
  if (!schedule_) {
    throw std::invalid_argument("LarcAdam: schedule is null");
  }
  if (larc_.trust_coefficient <= 0.0 || larc_.fallback_ratio <= 0.0) {
    throw std::invalid_argument("LarcAdam: bad LARC constants");
  }
  if (adam_.beta1 < 0.0 || adam_.beta1 >= 1.0 || adam_.beta2 < 0.0 ||
      adam_.beta2 >= 1.0 || adam_.epsilon <= 0.0) {
    throw std::invalid_argument("LarcAdam: bad Adam hyper-parameters");
  }
  std::size_t total = 0;
  moment_offset_.reserve(params_.size());
  for (std::size_t group = 0; group < params_.size(); ++group) {
    const dnn::ParamView& p = params_[group];
    if (p.value == nullptr || p.grad == nullptr ||
        p.value->shape() != p.grad->shape()) {
      throw std::invalid_argument("LarcAdam: malformed parameter view");
    }
    moment_offset_.push_back(total);
    const std::size_t n = p.value->size();
    total += n;
    for (std::size_t lo = 0; lo < n; lo += kBlockElems) {
      blocks_.push_back({static_cast<std::uint32_t>(group),
                         static_cast<std::uint32_t>(lo),
                         static_cast<std::uint32_t>(
                             std::min(n, lo + kBlockElems))});
    }
  }
  m_.assign(total, 0.0f);
  v_.assign(total, 0.0f);
  weight_sumsq_.assign(blocks_.size(), 0.0);
  grad_sumsq_.assign(blocks_.size(), 0.0);
  group_scale_.assign(params_.size(), 0.0f);
  last_local_rates_.assign(params_.size(), 0.0);
}

void LarcAdam::step() { step_impl(nullptr); }

void LarcAdam::step(runtime::ThreadPool& pool) { step_impl(&pool); }

void LarcAdam::norm_blocks(std::size_t begin, std::size_t end) {
  for (std::size_t b = begin; b < end; ++b) {
    const Block& blk = blocks_[b];
    const dnn::ParamView& p = params_[blk.group];
    const std::size_t n = blk.hi - blk.lo;
    weight_sumsq_[b] = sumsq_lanes(p.value->data() + blk.lo, n);
    grad_sumsq_[b] = sumsq_lanes(p.grad->data() + blk.lo, n);
  }
}

void LarcAdam::update_blocks(std::size_t begin, std::size_t end, float rate,
                             float inv_bias1, float inv_bias2) {
  const float beta1 = static_cast<float>(adam_.beta1);
  const float beta2 = static_cast<float>(adam_.beta2);
  const float eps = static_cast<float>(adam_.epsilon);
  for (std::size_t b = begin; b < end; ++b) {
    const Block& blk = blocks_[b];
    const dnn::ParamView& p = params_[blk.group];
    const std::size_t n = blk.hi - blk.lo;
    float* __restrict w = p.value->data() + blk.lo;
    const float* __restrict grad = p.grad->data() + blk.lo;
    float* __restrict m = m_.data() + moment_offset_[blk.group] + blk.lo;
    float* __restrict v = v_.data() + moment_offset_[blk.group] + blk.lo;
    const float scale = group_scale_[blk.group];
    for (std::size_t i = 0; i < n; ++i) {
      // Identical expressions (and therefore bits) to AdamState::step
      // fed the materialized scale * g — the scratch pass is fused
      // into the gradient read.
      const float g = scale * grad[i];
      m[i] = beta1 * m[i] + (1.0f - beta1) * g;
      v[i] = beta2 * v[i] + (1.0f - beta2) * g * g;
      const float m_hat = m[i] * inv_bias1;
      const float v_hat = v[i] * inv_bias2;
      w[i] -= rate * m_hat / (std::sqrt(v_hat) + eps);
    }
  }
}

void LarcAdam::step_impl(runtime::ThreadPool* pool) {
  const double eta_t = schedule_->lr(step_);
  ++step_;
  last_lr_ = eta_t;

  // Phase 1: per-block partial sums of squares over weights + grads.
  if (pool != nullptr) {
    pool->parallel_for(blocks_.size(),
                       [this](std::size_t begin, std::size_t end,
                              std::size_t) { norm_blocks(begin, end); });
  } else {
    norm_blocks(0, blocks_.size());
  }

  // Serial in-order combine per tensor: one partial pair per ~4096
  // elements, the canonical reduction order for every thread count.
  std::size_t b = 0;
  for (std::size_t group = 0; group < params_.size(); ++group) {
    double wsum = 0.0;
    double gsum = 0.0;
    for (; b < blocks_.size() && blocks_[b].group == group; ++b) {
      wsum += weight_sumsq_[b];
      gsum += grad_sumsq_[b];
    }
    const double weight_norm = std::sqrt(wsum);
    const double grad_norm = std::sqrt(gsum);
    double local_rate = larc_.fallback_ratio;
    if (weight_norm != 0.0 && grad_norm != 0.0) {
      local_rate = larc_.trust_coefficient * weight_norm / grad_norm;
    }
    if (larc_.clip) local_rate = std::min(local_rate, 1.0);
    last_local_rates_[group] = local_rate;
    group_scale_[group] = static_cast<float>(local_rate);
  }

  // Phase 2: the fused update. Bias correction uses the shared step
  // counter — every tensor has taken every step, so this matches the
  // old per-tensor AdamState counters exactly.
  const double bias1 = 1.0 - std::pow(adam_.beta1, step_);
  const double bias2 = 1.0 - std::pow(adam_.beta2, step_);
  const float inv_bias1 = static_cast<float>(1.0 / bias1);
  const float inv_bias2 = static_cast<float>(1.0 / bias2);
  const float rate = static_cast<float>(eta_t);
  if (pool != nullptr) {
    pool->parallel_for(
        blocks_.size(),
        [this, rate, inv_bias1, inv_bias2](
            std::size_t begin, std::size_t end, std::size_t) {
          update_blocks(begin, end, rate, inv_bias1, inv_bias2);
        });
  } else {
    update_blocks(0, blocks_.size(), rate, inv_bias1, inv_bias2);
  }
}

}  // namespace cf::optim
