#include "tensor/tensor_ops.hpp"

#include <cmath>
#include <stdexcept>

namespace cf::tensor {

namespace {

void require_same_size(std::span<const float> x, std::span<const float> y,
                       const char* what) {
  if (x.size() != y.size()) {
    throw std::invalid_argument(std::string(what) + ": size mismatch");
  }
}

}  // namespace

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  require_same_size(x, y, "axpy");
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scale(std::span<float> x, float alpha) {
  for (float& v : x) v *= alpha;
}

double dot(std::span<const float> x, std::span<const float> y) {
  require_same_size(x, y, "dot");
  double acc = 0.0;
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) {
    acc += static_cast<double>(x[i]) * static_cast<double>(y[i]);
  }
  return acc;
}

double l2_norm(std::span<const float> x) { return std::sqrt(dot(x, x)); }

double sum(std::span<const float> x) {
  double acc = 0.0;
  for (const float v : x) acc += v;
  return acc;
}

float max_abs(std::span<const float> x) {
  float m = 0.0f;
  for (const float v : x) m = std::max(m, std::fabs(v));
  return m;
}

float max_abs_diff(std::span<const float> x, std::span<const float> y) {
  require_same_size(x, y, "max_abs_diff");
  float m = 0.0f;
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) {
    m = std::max(m, std::fabs(x[i] - y[i]));
  }
  return m;
}

bool allclose(std::span<const float> x, std::span<const float> y, float rtol,
              float atol) {
  require_same_size(x, y, "allclose");
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (std::fabs(x[i] - y[i]) > atol + rtol * std::fabs(y[i])) {
      return false;
    }
  }
  return true;
}

void fill_uniform(Tensor& t, runtime::Rng& rng, float lo, float hi) {
  for (float& v : t.values()) v = rng.uniform(lo, hi);
}

void fill_normal(Tensor& t, runtime::Rng& rng, float mean, float stddev) {
  for (float& v : t.values()) v = rng.normal(mean, stddev);
}

}  // namespace cf::tensor
