// CosmoFlow network topologies (§III-A).
//
// The canonical 128^3 network: 7 conv layers (channel counts multiples
// of 16 for AVX-512 vectorization), 3 average-pooling stride-2
// down-samplers, 3 dense layers, leaky-ReLU activations everywhere, no
// batch-norm, 3 outputs. The widths below reproduce the paper's
// published aggregates: 7,054,259 parameters (28.2 MB vs the paper's
// "slightly more than seven million" / 28.15 MB) and 68.4 Gflop per
// sample fwd+bwd (vs 69.33) — both pinned by unit tests.
//
// cosmoflow_64_baseline() is the Ravanbakhsh et al. (2017) starting
// point: 64^3 input, two predicted parameters. cosmoflow_scaled()
// shrinks the input for single-core training studies while keeping the
// architecture family identical.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dnn/network.hpp"
#include "runtime/rng.hpp"

namespace cf::core {

struct ConvSpec {
  std::int64_t out_channels = 16;
  std::int64_t kernel = 3;
  std::int64_t stride = 1;
  bool pool_after = false;  // AvgPool3d k2 s2 following the activation
};

struct TopologyConfig {
  std::string name;
  std::int64_t input_dhw = 128;
  std::vector<ConvSpec> convs;
  /// Hidden dense widths; the output layer is appended automatically.
  std::vector<std::int64_t> dense_hidden;
  std::int64_t outputs = 3;
  float leaky_slope = 0.01f;
};

/// The canonical 128^3 / 3-parameter network of the paper.
TopologyConfig cosmoflow_128();

/// Ravanbakhsh et al. (2017) baseline: 64^3 input, 2 parameters.
TopologyConfig cosmoflow_64_baseline();

/// Architecture-preserving reduction for small inputs (dhw in
/// {8, 16, 32, 64}); used by the convergence/accuracy experiments on
/// this single-core machine.
TopologyConfig cosmoflow_scaled(std::int64_t input_dhw);

/// Picks the topology matching an input size: the canonical network
/// for 128, the scaled variants otherwise.
TopologyConfig topology_for_input(std::int64_t input_dhw);

/// Builds and finalizes the network; parameters are deterministically
/// initialized (He for convs, Xavier for dense) from `seed`. By default
/// the network fuses every Conv3d/Dense → LeakyRelu pair into the
/// producer's epilogue (bitwise identical to the unfused graph);
/// `fuse_eltwise = false` keeps the standalone activation layers.
/// `memplan` likewise defaults to the liveness-planned diff/scratch
/// arenas (placement-only, bitwise identical; DESIGN.md §2.2);
/// `memplan = false` keeps per-layer buffers.
dnn::Network build_network(const TopologyConfig& config, std::uint64_t seed,
                           bool fuse_eltwise = true, bool memplan = true);

/// Input tensor shape of a topology: plain {1, dhw, dhw, dhw}.
tensor::Shape input_shape(const TopologyConfig& config);

}  // namespace cf::core
