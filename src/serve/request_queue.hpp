// Bounded MPMC request queue with admission control — the front door
// of the inference service (SERVING.md).
//
// Producers are client threads calling Server::submit(); the consumer
// is the batch former. The queue never blocks a producer: when depth
// has reached the capacity budget, try_push rejects with a typed
// Overloaded status instead of queueing unbounded work — the
// load-shedding half of the paper-era QueueRunner idiom that
// cf::data::Pipeline uses for training I/O, inverted for serving
// (training backpressure *blocks* the producer because every sample
// must be seen; serving backpressure *rejects* because a client is
// better served by a fast no than a slow yes).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "tensor/tensor.hpp"

namespace cf::serve {

/// Typed admission verdict for one submission.
enum class SubmitStatus {
  kAccepted,    // queued; the future will be fulfilled
  kOverloaded,  // queue depth at capacity; request dropped, try later
  kShutdown,    // server no longer accepts work
};

std::string_view to_string(SubmitStatus status) noexcept;

/// What a completed request resolves to.
struct InferenceResult {
  std::vector<float> output;  // network output values (e.g. the 3
                              // predicted cosmological parameters)
  std::uint64_t request_id = 0;
  std::uint64_t batch_id = 0;    // which formed batch executed it
  std::size_t batch_size = 0;    // how many requests shared that batch
  std::size_t worker = 0;        // worker stream that ran it
  double queue_seconds = 0.0;    // submit -> worker picked the batch up
  double compute_seconds = 0.0;  // forward pass on the worker
  double total_seconds = 0.0;    // submit -> result ready
};

/// One queued inference request.
struct Request {
  std::uint64_t id = 0;
  tensor::Tensor input;
  std::promise<InferenceResult> promise;
  std::chrono::steady_clock::time_point submit_time;
};

class RequestQueue {
 public:
  /// `depth_gauge` (optional) tracks the live queue depth.
  explicit RequestQueue(std::size_t capacity,
                        obs::Gauge* depth_gauge = nullptr);

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Non-blocking admission: rejects instead of waiting. On kAccepted
  /// the request has been moved in; on rejection it is left untouched
  /// so the caller can fail its promise.
  SubmitStatus try_push(Request&& request);

  enum class PopStatus {
    kItem,     // *out holds a request
    kTimeout,  // deadline passed with the queue empty
    kClosed,   // closed and fully drained — no request will ever come
  };

  /// Blocks until a request arrives, `deadline` passes, or the queue
  /// is closed *and* empty (close drains: queued requests are still
  /// delivered after close()).
  PopStatus pop(Request* out, std::chrono::steady_clock::time_point deadline);

  /// Blocks without a deadline (request, or kClosed).
  PopStatus pop(Request* out);

  /// Stops admission (try_push -> kShutdown) and wakes poppers; queued
  /// requests remain poppable so shutdown can drain in-flight work.
  void close();

  std::size_t depth() const;
  std::size_t capacity() const noexcept { return capacity_; }
  bool closed() const;

 private:
  PopStatus pop_impl(Request* out, bool has_deadline,
                     std::chrono::steady_clock::time_point deadline);
  void update_gauge_locked();

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::deque<Request> items_;
  const std::size_t capacity_;
  bool closed_ = false;
  obs::Gauge* depth_gauge_ = nullptr;
};

}  // namespace cf::serve
