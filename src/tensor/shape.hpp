// Tensor shapes.
//
// CosmoFlow trains with a mini-batch of one sample per rank (§III-B),
// so activations carry no batch dimension: a conv activation is
// {C, D, H, W} in plain layout or {Cb, D, H, W, 16} in the blocked
// layout of Algorithm 1; dense activations are {N}. Shapes are small
// fixed-capacity value types.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>

namespace cf::tensor {

class Shape {
 public:
  static constexpr std::size_t kMaxRank = 7;

  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims);

  static Shape of(std::initializer_list<std::int64_t> dims) {
    return Shape(dims);
  }

  std::size_t rank() const noexcept { return rank_; }
  std::int64_t dim(std::size_t axis) const;
  std::int64_t operator[](std::size_t axis) const { return dim(axis); }

  /// Total number of elements (1 for a rank-0 shape).
  std::int64_t numel() const noexcept;

  /// Row-major stride of `axis`.
  std::int64_t stride(std::size_t axis) const;

  bool operator==(const Shape& other) const noexcept;
  bool operator!=(const Shape& other) const noexcept {
    return !(*this == other);
  }

  std::string to_string() const;

 private:
  std::array<std::int64_t, kMaxRank> dims_{};
  std::size_t rank_ = 0;
};

/// Output spatial size of a convolution/pooling window:
/// floor((in + pad_total - kernel) / stride) + 1, where pad_total is
/// the sum of leading and trailing padding. Throws on non-positive
/// results.
std::int64_t conv_out_dim(std::int64_t in, std::int64_t kernel,
                          std::int64_t stride, std::int64_t pad_total);

/// Total padding that keeps out == ceil(in / stride) for a given kernel
/// ("same" padding). Split as lo = total / 2, hi = total - lo — the
/// extra element goes at the end, matching TensorFlow.
std::int64_t same_pad_total(std::int64_t in, std::int64_t kernel,
                            std::int64_t stride);

}  // namespace cf::tensor
