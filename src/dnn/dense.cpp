#include "dnn/dense.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "obs/telemetry.hpp"
#include "tensor/tensor_ops.hpp"

namespace cf::dnn {

using tensor::Shape;
using tensor::Tensor;

Dense::Dense(std::string name, std::int64_t in_features,
             std::int64_t out_features)
    : Layer(std::move(name)), in_(in_features), out_(out_features) {
  if (in_ <= 0 || out_ <= 0) {
    throw std::invalid_argument("Dense: feature counts must be positive");
  }
}

Shape Dense::plan(const Shape& input) {
  if (input.rank() != 1 || input[0] != in_) {
    throw std::invalid_argument("Dense::plan: expected plain {" +
                                std::to_string(in_) + "}, got " +
                                input.to_string());
  }
  weights_ = Tensor(Shape{in_, out_});
  bias_ = Tensor(Shape{out_});
  const Shape out{out_};
  set_shapes(input, out);
  return out;
}

std::vector<ParamSpec> Dense::param_specs() {
  return {{name() + ".weights", &weights_},
          {name() + ".bias", &bias_}};
}

FlopCounts Dense::flops() const {
  FlopCounts counts;
  counts.fwd = 2 * in_ * out_;
  counts.bwd_data = 2 * in_ * out_;
  counts.bwd_weights = 2 * in_ * out_;
  if (fused_) {
    counts.fwd += out_;
    counts.bwd_weights += out_;
  }
  return counts;
}

bool Dense::fuse_leaky_relu(float slope) {
  if (slope < 0.0f || slope >= 1.0f) return false;
  fused_ = true;
  slope_ = slope;
  return true;
}

namespace {
// Below this many multiply-adds the dispatch/wake cost of the pool
// exceeds the loop itself; run on the caller (same body, same result).
constexpr std::int64_t kSerialWorkLimit = 4096;
}  // namespace

void Dense::init_xavier(runtime::Rng& rng) {
  const float limit = std::sqrt(6.0f / static_cast<float>(in_ + out_));
  tensor::fill_uniform(weights_, rng, -limit, limit);
  bias_.zero();
}

void Dense::forward(const Tensor& src, Tensor& dst, LayerExecState& exec,
                    runtime::ThreadPool& pool) const {
  const runtime::ScopedTimer timer(exec.timers.fwd);
  if (src.shape() != input_shape() || dst.shape() != output_shape()) {
    throw std::invalid_argument("Dense::forward: shape mismatch");
  }
  // Split the reduction over the input dimension into a *fixed* number
  // of chunks combined in chunk order, so the floating-point summation
  // order — and therefore the result — is independent of the thread
  // count (the determinism invariant synchronous training rests on).
  constexpr std::size_t kChunks = 16;
  const std::size_t chunks =
      std::min<std::size_t>(kChunks, static_cast<std::size_t>(in_));
  const std::size_t chunk_size =
      (static_cast<std::size_t>(in_) + chunks - 1) / chunks;
  std::vector<std::vector<float>> partial(
      chunks, std::vector<float>(static_cast<std::size_t>(out_), 0.0f));
  const std::size_t grain = std::max<std::size_t>(
      in_ * out_ <= kSerialWorkLimit ? chunks : 1, exec.intraop_grain);
  pool.parallel_for(
      chunks,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t chunk = begin; chunk < end; ++chunk) {
          float* acc = partial[chunk].data();
          const std::size_t lo = chunk * chunk_size;
          const std::size_t hi = std::min(
              static_cast<std::size_t>(in_), lo + chunk_size);
          for (std::size_t i = lo; i < hi; ++i) {
            const float sv = src[i];
            const float* wrow = weights_.data() + i * out_;
            for (std::int64_t o = 0; o < out_; ++o) acc[o] += wrow[o] * sv;
          }
        }
      },
      grain);
  std::memcpy(dst.data(), bias_.data(),
              static_cast<std::size_t>(out_) * sizeof(float));
  for (const auto& acc : partial) {
    for (std::int64_t o = 0; o < out_; ++o) {
      dst[static_cast<std::size_t>(o)] += acc[static_cast<std::size_t>(o)];
    }
  }
  if (fused_) {
    // Fused LeakyReLU epilogue over the just-combined output.
    float* d = dst.data();
    for (std::int64_t o = 0; o < out_; ++o) {
      const float v = d[o];
      d[o] = v > 0.0f ? v : slope_ * v;
    }
  }
}

void Dense::backward(const Tensor& src, Tensor& ddst, Tensor& dsrc,
                     bool need_dsrc, LayerExecState& exec,
                     runtime::ThreadPool& pool) const {
  if (fused_) {
    throw std::logic_error(
        "Dense::backward: fused layer needs its forward output — use the "
        "dst overload");
  }
  backward(src, /*dst=*/ddst, ddst, dsrc, need_dsrc, exec, pool);
}

void Dense::backward(const Tensor& src, const Tensor& dst, Tensor& ddst,
                     Tensor& dsrc, bool need_dsrc, LayerExecState& exec,
                     runtime::ThreadPool& pool) const {
  if (src.shape() != input_shape() || ddst.shape() != output_shape()) {
    throw std::invalid_argument("Dense::backward: shape mismatch");
  }
  if (exec.grads.size() != 2) {
    throw std::logic_error("Dense::backward: exec state has no grads");
  }
  Tensor& weight_grad = exec.grads[0];
  Tensor& bias_grad = exec.grads[1];
  const std::size_t grain = std::max<std::size_t>(
      in_ * out_ <= kSerialWorkLimit ? static_cast<std::size_t>(in_) : 1,
      exec.intraop_grain);
  const float* d = ddst.data();
  {
    CF_TRACE_SCOPE(span_label_bww().c_str(), "dense");
    const runtime::ScopedTimer timer(exec.timers.bwd_weights);
    if (fused_) {
      if (dst.shape() != output_shape()) {
        throw std::invalid_argument("Dense::backward: dst shape mismatch");
      }
      // Mask ddst in place — it is consumed by this layer's backward
      // (the Layer contract), so no side buffer is needed.
      float* md = ddst.data();
      const float* y = dst.data();
      for (std::int64_t o = 0; o < out_; ++o) {
        md[o] = y[o] > 0.0f ? md[o] : slope_ * md[o];
      }
    }
    tensor::axpy(1.0f, ddst.values(), bias_grad.values());
    pool.parallel_for(
        static_cast<std::size_t>(in_),
        [&](std::size_t begin, std::size_t end, std::size_t) {
          for (std::size_t i = begin; i < end; ++i) {
            const float sv = src[i];
            float* grow = weight_grad.data() + i * out_;
            for (std::int64_t o = 0; o < out_; ++o) grow[o] += d[o] * sv;
          }
        },
        grain);
  }
  if (!need_dsrc) return;
  CF_TRACE_SCOPE(span_label_bwd_data().c_str(), "dense");
  const runtime::ScopedTimer timer(exec.timers.bwd_data);
  if (dsrc.shape() != input_shape()) {
    throw std::invalid_argument("Dense::backward: dsrc shape mismatch");
  }
  pool.parallel_for(
      static_cast<std::size_t>(in_),
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t i = begin; i < end; ++i) {
          const float* wrow = weights_.data() + i * out_;
          float acc = 0.0f;
          for (std::int64_t o = 0; o < out_; ++o) acc += wrow[o] * d[o];
          dsrc[i] = acc;
        }
      },
      grain);
}

}  // namespace cf::dnn
