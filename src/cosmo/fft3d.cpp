#include "cosmo/fft3d.hpp"

#include <cmath>
#include <stdexcept>

namespace cf::cosmo {

namespace {

bool is_power_of_two(std::int64_t n) { return n > 0 && (n & (n - 1)) == 0; }

constexpr double kPi = 3.14159265358979323846;

}  // namespace

void fft_1d(std::complex<float>* data, std::int64_t n, bool inverse) {
  if (!is_power_of_two(n)) {
    throw std::invalid_argument("fft_1d: length must be a power of two");
  }
  // Bit-reversal permutation.
  for (std::int64_t i = 1, j = 0; i < n; ++i) {
    std::int64_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  // Butterflies.
  for (std::int64_t len = 2; len <= n; len <<= 1) {
    const double angle = 2.0 * kPi / static_cast<double>(len) *
                         (inverse ? 1.0 : -1.0);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::int64_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::int64_t j = 0; j < len / 2; ++j) {
        const std::complex<double> u(data[i + j]);
        const std::complex<double> v =
            std::complex<double>(data[i + j + len / 2]) * w;
        data[i + j] = std::complex<float>(u + v);
        data[i + j + len / 2] = std::complex<float>(u - v);
        w *= wlen;
      }
    }
  }
}

Fft3d::Fft3d(std::int64_t n) : n_(n) {
  if (!is_power_of_two(n)) {
    throw std::invalid_argument("Fft3d: grid size must be a power of two");
  }
}

void Fft3d::transform(std::complex<float>* grid, bool inverse,
                      runtime::ThreadPool& pool) const {
  const std::int64_t n = n_;
  const std::int64_t n2 = n * n;

  // Axis x (contiguous lines): one line per (z, y).
  pool.parallel_for(static_cast<std::size_t>(n2),
                    [&](std::size_t begin, std::size_t end, std::size_t) {
                      for (std::size_t line = begin; line < end; ++line) {
                        fft_1d(grid + static_cast<std::int64_t>(line) * n, n,
                               inverse);
                      }
                    });

  // Axis y (stride n): gather lines into scratch.
  pool.parallel_for(
      static_cast<std::size_t>(n2),
      [&](std::size_t begin, std::size_t end, std::size_t) {
        std::vector<std::complex<float>> scratch(
            static_cast<std::size_t>(n));
        for (std::size_t line = begin; line < end; ++line) {
          const std::int64_t z = static_cast<std::int64_t>(line) / n;
          const std::int64_t x = static_cast<std::int64_t>(line) % n;
          std::complex<float>* base = grid + z * n2 + x;
          for (std::int64_t y = 0; y < n; ++y) {
            scratch[static_cast<std::size_t>(y)] = base[y * n];
          }
          fft_1d(scratch.data(), n, inverse);
          for (std::int64_t y = 0; y < n; ++y) {
            base[y * n] = scratch[static_cast<std::size_t>(y)];
          }
        }
      });

  // Axis z (stride n^2).
  pool.parallel_for(
      static_cast<std::size_t>(n2),
      [&](std::size_t begin, std::size_t end, std::size_t) {
        std::vector<std::complex<float>> scratch(
            static_cast<std::size_t>(n));
        for (std::size_t line = begin; line < end; ++line) {
          const std::int64_t y = static_cast<std::int64_t>(line) / n;
          const std::int64_t x = static_cast<std::int64_t>(line) % n;
          std::complex<float>* base = grid + y * n + x;
          for (std::int64_t z = 0; z < n; ++z) {
            scratch[static_cast<std::size_t>(z)] = base[z * n2];
          }
          fft_1d(scratch.data(), n, inverse);
          for (std::int64_t z = 0; z < n; ++z) {
            base[z * n2] = scratch[static_cast<std::size_t>(z)];
          }
        }
      });
}

void Fft3d::forward(std::complex<float>* grid,
                    runtime::ThreadPool& pool) const {
  transform(grid, /*inverse=*/false, pool);
}

void Fft3d::inverse(std::complex<float>* grid,
                    runtime::ThreadPool& pool) const {
  transform(grid, /*inverse=*/true, pool);
  const std::int64_t total = n_ * n_ * n_;
  const float scale = 1.0f / static_cast<float>(total);
  pool.parallel_for(static_cast<std::size_t>(total),
                    [&](std::size_t begin, std::size_t end, std::size_t) {
                      for (std::size_t i = begin; i < end; ++i) {
                        grid[i] *= scale;
                      }
                    });
}

std::int64_t fft_freq_index(std::int64_t i, std::int64_t n) {
  return i <= n / 2 ? i : i - n;
}

}  // namespace cf::cosmo
