// Layer abstraction for the CosmoFlow network.
//
// The paper trains with a mini-batch of one sample per rank, so a layer
// maps one activation tensor to one activation tensor. Convolutional
// activations travel in the blocked nCdhw16c layout end-to-end (the
// network inserts explicit reorders only at the plain-input boundary
// and before the dense head), mirroring the MKL-DNN graph the paper
// describes in §V-B.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "runtime/timer.hpp"
#include "tensor/tensor.hpp"

namespace cf::dnn {

/// Floating point operation counts per pass for one sample, used for
/// the §V-A flop-rate accounting and Table I.
struct FlopCounts {
  std::int64_t fwd = 0;
  std::int64_t bwd_data = 0;
  std::int64_t bwd_weights = 0;

  std::int64_t total() const { return fwd + bwd_data + bwd_weights; }

  FlopCounts& operator+=(const FlopCounts& other) {
    fwd += other.fwd;
    bwd_data += other.bwd_data;
    bwd_weights += other.bwd_weights;
    return *this;
  }
};

/// Mutable view of one parameter tensor and its gradient, used by the
/// optimizer (LARC normalizes per parameter tensor) and by gradient
/// aggregation.
struct ParamView {
  std::string name;
  tensor::Tensor* value = nullptr;
  tensor::Tensor* grad = nullptr;
};

/// Per-layer wall-clock accounting (Table I / Fig 3).
struct LayerTimers {
  runtime::TimeStats fwd;
  runtime::TimeStats bwd_data;
  runtime::TimeStats bwd_weights;
};

class Layer {
 public:
  explicit Layer(std::string name)
      : name_(std::move(name)),
        label_fwd_(name_ + "/fwd"),
        label_bwd_(name_ + "/bwd"),
        label_bww_(name_ + "/bww"),
        label_bwd_data_(name_ + "/bwd_data") {}
  virtual ~Layer() = default;

  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  const std::string& name() const noexcept { return name_; }

  /// One of "conv", "pool", "dense", "activation", "reorder" — the
  /// category key for the Fig 3 breakdown.
  virtual std::string kind() const = 0;

  /// Validates `input` and computes the output shape; called once by
  /// Network::finalize. Allocates parameters and scratch.
  virtual tensor::Shape plan(const tensor::Shape& input) = 0;

  const tensor::Shape& input_shape() const noexcept { return input_shape_; }
  const tensor::Shape& output_shape() const noexcept {
    return output_shape_;
  }

  /// dst must have output_shape().
  virtual void forward(const tensor::Tensor& src, tensor::Tensor& dst,
                       runtime::ThreadPool& pool) = 0;

  /// Computes parameter gradients (accumulated into the grad tensors —
  /// callers zero them per step) and, when `need_dsrc`, the input
  /// difference signal. `src` is the forward input of this layer.
  /// `ddst` is *consumed*: fused layers mask it with the activation
  /// derivative in place (it is dead after this call — the network's
  /// backward sweep never re-reads a layer's ddst, so no copy is owed).
  virtual void backward(const tensor::Tensor& src, tensor::Tensor& ddst,
                        tensor::Tensor& dsrc, bool need_dsrc,
                        runtime::ThreadPool& pool) = 0;

  /// Backward variant that also receives this layer's own forward
  /// output `dst`. Network calls this one: layers with a fused eltwise
  /// epilogue recover the activation-derivative mask from `dst`;
  /// everything else ignores it and falls through to the plain
  /// overload.
  virtual void backward(const tensor::Tensor& src,
                        const tensor::Tensor& dst, tensor::Tensor& ddst,
                        tensor::Tensor& dsrc, bool need_dsrc,
                        runtime::ThreadPool& pool) {
    static_cast<void>(dst);
    backward(src, ddst, dsrc, need_dsrc, pool);
  }

  /// Floats of backward scratch this layer wants. Layer backwards run
  /// strictly one at a time, so the network sizes ONE shared arena to
  /// the max across layers and hands each layer a view of it via
  /// bind_backward_scratch (the memory planner; see DESIGN.md §2.2).
  /// Layers driven outside a planned network (unit tests, benches)
  /// lazily allocate their own scratch of the same size instead.
  virtual std::size_t backward_scratch_floats() const { return 0; }

  /// Points the layer at its slice of the network-owned scratch arena
  /// (size >= backward_scratch_floats(); contents are step-transient —
  /// nothing may be carried across backward calls).
  virtual void bind_backward_scratch(std::span<float> scratch) {
    static_cast<void>(scratch);
  }

  /// Ask the layer to absorb a trailing LeakyReLU (negative slope
  /// `slope`) into its own forward epilogue and backward entry. Layers
  /// that support MKL-DNN-style post-op fusion override this to return
  /// true; the network then drops the standalone activation layer.
  virtual bool fuse_leaky_relu(float slope) {
    static_cast<void>(slope);
    return false;
  }

  /// Parameter tensors (empty for parameterless layers).
  virtual std::vector<ParamView> params() { return {}; }

  virtual FlopCounts flops() const { return {}; }

  std::int64_t param_count() {
    std::int64_t n = 0;
    for (const auto& p : params()) n += p.value->shape().numel();
    return n;
  }

  LayerTimers& timers() noexcept { return timers_; }
  const LayerTimers& timers() const noexcept { return timers_; }
  void reset_timers() { timers_ = LayerTimers{}; }

  // Precomputed CF_TRACE_SCOPE labels ("conv2/fwd", ...) so the span
  // hot path never concatenates strings.
  const std::string& span_label_fwd() const noexcept { return label_fwd_; }
  const std::string& span_label_bwd() const noexcept { return label_bwd_; }
  const std::string& span_label_bww() const noexcept { return label_bww_; }
  const std::string& span_label_bwd_data() const noexcept {
    return label_bwd_data_;
  }

 protected:
  void set_shapes(const tensor::Shape& in, const tensor::Shape& out) {
    input_shape_ = in;
    output_shape_ = out;
  }

  LayerTimers timers_;

 private:
  std::string name_;
  std::string label_fwd_;
  std::string label_bwd_;
  std::string label_bww_;
  std::string label_bwd_data_;
  tensor::Shape input_shape_;
  tensor::Shape output_shape_;
};

}  // namespace cf::dnn
