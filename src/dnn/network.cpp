#include "dnn/network.hpp"

#include <cstring>
#include <stdexcept>

#include "dnn/activations.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"

namespace cf::dnn {

using tensor::Shape;
using tensor::Tensor;

void Network::add(std::unique_ptr<Layer> layer) {
  if (finalized_) {
    throw std::logic_error("Network::add: network already finalized");
  }
  layers_.push_back(std::move(layer));
}

void Network::fuse_eltwise_pass() {
  std::vector<std::unique_ptr<Layer>> kept;
  kept.reserve(layers_.size());
  for (auto& layer : layers_) {
    if (!kept.empty()) {
      if (const auto* act = dynamic_cast<const LeakyRelu*>(layer.get())) {
        if (kept.back()->fuse_leaky_relu(act->negative_slope())) {
          ++fused_pairs_;
          continue;  // drop the standalone activation layer
        }
      }
    }
    kept.push_back(std::move(layer));
  }
  layers_ = std::move(kept);
  obs::Registry::global().gauge("dnn/fused_pairs").set(
      static_cast<double>(fused_pairs_));
}

void Network::finalize(const Shape& input_shape) {
  if (finalized_) throw std::logic_error("Network::finalize: called twice");
  if (layers_.empty()) {
    throw std::logic_error("Network::finalize: no layers");
  }
  if (fuse_eltwise_) fuse_eltwise_pass();
  input_shape_ = input_shape;
  input_ = Tensor(input_shape);
  Shape shape = input_shape;
  activations_.reserve(layers_.size());
  diffs_.reserve(layers_.size());
  for (auto& layer : layers_) {
    shape = layer->plan(shape);
    activations_.emplace_back(shape);
    diffs_.emplace_back(shape);
  }
  output_shape_ = shape;
  build_arena();
  finalized_ = true;
}

void Network::build_arena() {
  segment_offsets_.assign(layers_.size(), 0);
  segment_sizes_.assign(layers_.size(), 0);
  std::size_t total = 0;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    segment_offsets_[i] = total;
    for (const ParamView& p : layers_[i]->params()) {
      segment_sizes_[i] += static_cast<std::size_t>(p.value->shape().numel());
    }
    total += segment_sizes_[i];
  }
  param_arena_ = runtime::AlignedBuffer<float>(total);
  grad_arena_ = runtime::AlignedBuffer<float>(total);
  // Rebind every layer tensor onto its arena segment; plan() contents
  // (zeros — init runs after finalize) are carried over by rebind.
  std::size_t offset = 0;
  for (auto& layer : layers_) {
    for (ParamView& p : layer->params()) {
      const std::size_t n =
          static_cast<std::size_t>(p.value->shape().numel());
      p.value->rebind({param_arena_.data() + offset, n});
      p.grad->rebind({grad_arena_.data() + offset, n});
      offset += n;
    }
  }
}

const Tensor& Network::forward(const Tensor& input,
                               runtime::ThreadPool& pool) {
  if (!finalized_) throw std::logic_error("Network::forward: not finalized");
  if (input.shape() != input_shape_) {
    throw std::invalid_argument("Network::forward: input shape " +
                                input.shape().to_string() + ", expected " +
                                input_shape_.to_string());
  }
  CF_TRACE_SCOPE("net/forward", "dnn");
  std::memcpy(input_.data(), input.data(), input.size() * sizeof(float));
  const Tensor* src = &input_;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    CF_TRACE_SCOPE(layers_[i]->span_label_fwd().c_str(),
                   layers_[i]->kind().c_str());
    layers_[i]->forward(*src, activations_[i], pool);
    src = &activations_[i];
  }
  forward_done_ = true;
  return activations_.back();
}

void Network::backward(const Tensor& dloss, runtime::ThreadPool& pool,
                       const GradReadyCallback& grad_ready) {
  if (!forward_done_) {
    throw std::logic_error("Network::backward: no preceding forward");
  }
  if (dloss.shape() != output_shape_) {
    throw std::invalid_argument("Network::backward: dloss shape mismatch");
  }
  CF_TRACE_SCOPE("net/backward", "dnn");
  std::memcpy(diffs_.back().data(), dloss.data(),
              dloss.size() * sizeof(float));
  for (std::size_t i = layers_.size(); i-- > 0;) {
    const Tensor& src = i == 0 ? input_ : activations_[i - 1];
    const bool need_dsrc = i > 0;
    // diffs_[i - 1] is overwritten by layer i's backward; pass a dummy
    // for the first layer (its dsrc is skipped).
    Tensor& dsrc = need_dsrc ? diffs_[i - 1] : diffs_[0];
    {
      CF_TRACE_SCOPE(layers_[i]->span_label_bwd().c_str(),
                     layers_[i]->kind().c_str());
      // The dst overload: fused layers recover their activation mask
      // from their own forward output.
      layers_[i]->backward(src, activations_[i], diffs_[i], dsrc,
                           need_dsrc, pool);
    }
    if (grad_ready && segment_sizes_[i] > 0) grad_ready(i);
  }
}

void Network::zero_grads() {
  if (grad_arena_.empty()) return;
  std::memset(grad_arena_.data(), 0, grad_arena_.size() * sizeof(float));
}

std::vector<ParamView> Network::params() {
  std::vector<ParamView> all;
  for (auto& layer : layers_) {
    for (ParamView& p : layer->params()) all.push_back(p);
  }
  return all;
}

std::int64_t Network::param_count() {
  if (finalized_) return static_cast<std::int64_t>(param_arena_.size());
  std::int64_t n = 0;
  for (const ParamView& p : params()) n += p.value->shape().numel();
  return n;
}

FlopCounts Network::flops(bool skip_first_bwd_data) const {
  FlopCounts total;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    FlopCounts f = layers_[i]->flops();
    if (i == 0 && skip_first_bwd_data) f.bwd_data = 0;
    total += f;
  }
  return total;
}

namespace {

void check_flat_size(std::size_t got, std::size_t expected) {
  if (got != expected) {
    throw std::invalid_argument(
        "Network flat vector: span size does not match parameter count");
  }
}

}  // namespace

void Network::copy_params_to(std::span<float> out) {
  check_flat_size(out.size(), param_arena_.size());
  if (param_arena_.empty()) return;
  std::memcpy(out.data(), param_arena_.data(),
              param_arena_.size() * sizeof(float));
}

void Network::set_params_from(std::span<const float> in) {
  check_flat_size(in.size(), param_arena_.size());
  if (param_arena_.empty()) return;
  std::memcpy(param_arena_.data(), in.data(),
              param_arena_.size() * sizeof(float));
}

void Network::copy_grads_to(std::span<float> out) {
  check_flat_size(out.size(), grad_arena_.size());
  if (grad_arena_.empty()) return;
  std::memcpy(out.data(), grad_arena_.data(),
              grad_arena_.size() * sizeof(float));
}

void Network::set_grads_from(std::span<const float> in) {
  check_flat_size(in.size(), grad_arena_.size());
  if (grad_arena_.empty()) return;
  std::memcpy(grad_arena_.data(), in.data(),
              grad_arena_.size() * sizeof(float));
}

std::vector<LayerProfile> Network::profiles() const {
  std::vector<LayerProfile> rows;
  rows.reserve(layers_.size());
  for (const auto& layer : layers_) {
    LayerProfile row;
    row.name = layer->name();
    row.kind = layer->kind();
    row.fwd = layer->timers().fwd;
    row.bwd_data = layer->timers().bwd_data;
    row.bwd_weights = layer->timers().bwd_weights;
    row.flops = layer->flops();
    rows.push_back(row);
  }
  return rows;
}

void Network::reset_profiles() {
  for (auto& layer : layers_) layer->reset_timers();
}

}  // namespace cf::dnn
