#include "tensor/shape.hpp"

#include <sstream>
#include <stdexcept>

namespace cf::tensor {

Shape::Shape(std::initializer_list<std::int64_t> dims) {
  if (dims.size() > kMaxRank) {
    throw std::invalid_argument("Shape: rank exceeds kMaxRank");
  }
  for (const std::int64_t d : dims) {
    if (d < 0) throw std::invalid_argument("Shape: negative dimension");
    dims_[rank_++] = d;
  }
}

std::int64_t Shape::dim(std::size_t axis) const {
  if (axis >= rank_) throw std::out_of_range("Shape::dim: axis out of range");
  return dims_[axis];
}

std::int64_t Shape::numel() const noexcept {
  std::int64_t n = 1;
  for (std::size_t i = 0; i < rank_; ++i) n *= dims_[i];
  return n;
}

std::int64_t Shape::stride(std::size_t axis) const {
  if (axis >= rank_) {
    throw std::out_of_range("Shape::stride: axis out of range");
  }
  std::int64_t s = 1;
  for (std::size_t i = axis + 1; i < rank_; ++i) s *= dims_[i];
  return s;
}

bool Shape::operator==(const Shape& other) const noexcept {
  if (rank_ != other.rank_) return false;
  for (std::size_t i = 0; i < rank_; ++i) {
    if (dims_[i] != other.dims_[i]) return false;
  }
  return true;
}

std::string Shape::to_string() const {
  std::ostringstream out;
  out << '{';
  for (std::size_t i = 0; i < rank_; ++i) {
    if (i > 0) out << ", ";
    out << dims_[i];
  }
  out << '}';
  return out.str();
}

std::int64_t conv_out_dim(std::int64_t in, std::int64_t kernel,
                          std::int64_t stride, std::int64_t pad_total) {
  if (kernel <= 0 || stride <= 0 || pad_total < 0) {
    throw std::invalid_argument("conv_out_dim: bad window parameters");
  }
  const std::int64_t padded = in + pad_total - kernel;
  if (padded < 0) {
    throw std::invalid_argument("conv_out_dim: window larger than input");
  }
  return padded / stride + 1;
}

std::int64_t same_pad_total(std::int64_t in, std::int64_t kernel,
                            std::int64_t stride) {
  const std::int64_t out = (in + stride - 1) / stride;
  const std::int64_t needed = (out - 1) * stride + kernel - in;
  return needed > 0 ? needed : 0;
}

}  // namespace cf::tensor
