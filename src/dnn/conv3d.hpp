// 3D convolution: the computational heart of CosmoFlow (§III-C).
//
// Two engines are provided:
//  * reference — plain-layout 7-loop direct convolution used as the
//    correctness oracle in tests (free functions below);
//  * blocked — the production kernels implementing Algorithm 1 of the
//    paper: activations in nCdhw16c, weights in OIdhw16i16o, innermost
//    (ow, ic, oc) loops unrolled/vectorized to AVX-512 FMAs, threading
//    over the output voxel space (forward/backward-data) and over
//    channel-block pairs (backward-weights).
//
// Kernels are cubic and "same"/"valid" padding is resolved per spatial
// dimension at plan time (asymmetric when the total is odd, matching
// TensorFlow). The first layer of the network has a single input
// channel; it uses a dedicated plain-source kernel instead of blowing
// the 128^3 input up to 16 channels.
//
// The layer object is immutable per stream: all per-step staging (the
// zero-padded source copy, the transposed-weight scratch, the weight
// and bias gradients) lives in the LayerExecState the caller passes in,
// so concurrent streams can share one Conv3d.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "dnn/layer.hpp"
#include "runtime/rng.hpp"
#include "tensor/layout.hpp"

namespace cf::dnn {

enum class Padding { kSame, kValid };

struct Conv3dConfig {
  std::int64_t in_channels = 0;
  std::int64_t out_channels = 0;
  std::int64_t kernel = 3;  // cubic
  std::int64_t stride = 1;
  Padding padding = Padding::kSame;
};

/// Resolved padding for one spatial dimension.
struct PadSpec {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  std::int64_t total() const { return lo + hi; }
};

class Conv3d final : public Layer {
 public:
  Conv3d(std::string name, Conv3dConfig config);

  std::string kind() const override { return "conv"; }

  /// Input: blocked {ICb, D, H, W, 16} when in_channels is a multiple
  /// of 16, else plain {IC, D, H, W} (first layer). Output: blocked
  /// {OCb, OD, OH, OW, 16}. out_channels must be a multiple of 16.
  tensor::Shape plan(const tensor::Shape& input) override;

  using Layer::backward;
  using Layer::forward;

  void forward(const tensor::Tensor& src, tensor::Tensor& dst,
               LayerExecState& exec,
               runtime::ThreadPool& pool) const override;
  void backward(const tensor::Tensor& src, tensor::Tensor& ddst,
                tensor::Tensor& dsrc, bool need_dsrc, LayerExecState& exec,
                runtime::ThreadPool& pool) const override;
  void backward(const tensor::Tensor& src, const tensor::Tensor& dst,
                tensor::Tensor& ddst, tensor::Tensor& dsrc, bool need_dsrc,
                LayerExecState& exec,
                runtime::ThreadPool& pool) const override;

  // Reduced-precision inference forwards (dnn/forward_rp.cpp): bf16
  // weights+activations with fp32 accumulation, and weights-only int8
  // with per-output-channel scales. fp32 kernels above are untouched.
  bool supports_precision(Precision p) const override {
    static_cast<void>(p);
    return true;
  }
  void forward_bf16(const bf16_t* src, bf16_t* dst,
                    std::span<const bf16_t> params, LayerExecState& exec,
                    runtime::ThreadPool& pool) const override;
  void forward_int8w(const tensor::Tensor& src, tensor::Tensor& dst,
                     std::span<const std::int8_t> qweights,
                     std::span<const float> scales, LayerExecState& exec,
                     runtime::ThreadPool& pool) const override;
  std::size_t int8_weight_count() const override {
    return static_cast<std::size_t>(weights_.size());
  }
  std::size_t int8_scale_count() const override {
    return static_cast<std::size_t>(config_.out_channels);
  }
  void quantize_weights_int8(std::span<std::int8_t> qweights,
                             std::span<float> scales) const override;

  /// Forward stages the source into a zero-padded workspace (written by
  /// forward, re-read by backward-weights of the same stream).
  std::size_t forward_workspace_floats() const override;

  /// Backward-data reads the weights transposed ({..., 16oc, 16ic});
  /// the transposed copy lives in the stream's scratch span, which a
  /// planned context shares across layers (DESIGN.md §2.2).
  std::size_t backward_scratch_floats() const override;

  /// MKL-DNN-style post-op fusion: fold a trailing LeakyReLU into the
  /// forward output write and mask ddst once on backward entry. For
  /// slope in [0, 1) the output sign equals the pre-activation sign,
  /// so the fused results are bitwise identical to the unfused pair.
  bool fuse_leaky_relu(float slope) override;
  bool fused() const noexcept { return fused_; }

  std::vector<ParamSpec> param_specs() override;
  FlopCounts flops() const override;

  /// Un-planned copy (same config + fusion state, fresh geometry and
  /// weights) for Network::make_shape_view.
  std::unique_ptr<Layer> clone_unplanned() const override {
    auto copy = std::make_unique<Conv3d>(name(), config_);
    if (fused_) copy->fuse_leaky_relu(slope_);
    return copy;
  }

  const Conv3dConfig& config() const noexcept { return config_; }

  /// Deterministic He initialization (fan-in = IC * K^3).
  void init_he(runtime::Rng& rng);

  /// Replace weights from / export weights to the plain
  /// {OC, IC, KD, KH, KW} layout (tests, checkpoints).
  void set_plain_weights(const tensor::Tensor& weights,
                         const tensor::Tensor& bias);
  tensor::Tensor plain_weights() const;

  /// Standalone-drive gradient views (the layer-owned LayerExecState
  /// behind the convenience forward/backward overloads). Context-driven
  /// gradients live in the context instead.
  tensor::Tensor plain_weight_grads();
  const tensor::Tensor& bias_grad() { return standalone_state().grads[1]; }

  const tensor::Tensor& bias() const noexcept { return bias_; }

  /// When false (default for the first network layer via Network),
  /// backward skips the input difference signal.
  bool input_is_plain() const noexcept { return plain_input_; }

 private:
  // The trailing `grain` on each pass is the stream's per-layer
  // intra-op grain (LayerExecState::intraop_grain) — forwarded to
  // parallel_for as the minimum jobs per chunk. It only changes how the
  // fixed job grid is partitioned, never the per-job arithmetic, so any
  // value is bitwise-equivalent (DESIGN.md §2.6).
  void forward_blocked(const tensor::Tensor& src, tensor::Tensor& dst,
                       const float* padded, runtime::ThreadPool& pool,
                       std::size_t grain) const;
  void forward_plain_src(const tensor::Tensor& src, tensor::Tensor& dst,
                         const float* padded, runtime::ThreadPool& pool,
                         std::size_t grain) const;
  void bias_grad_pass(const tensor::Tensor& ddst, tensor::Tensor& bias_grad,
                      runtime::ThreadPool& pool, std::size_t grain) const;
  void mask_bias_grad_pass(const tensor::Tensor& dst, tensor::Tensor& ddst,
                           tensor::Tensor& bias_grad,
                           runtime::ThreadPool& pool,
                           std::size_t grain) const;
  void backward_weights_blocked(const tensor::Tensor& ddst,
                                const float* padded,
                                tensor::Tensor& weight_grad,
                                runtime::ThreadPool& pool,
                                std::size_t grain) const;
  void backward_weights_plain_src(const tensor::Tensor& ddst,
                                  const float* padded,
                                  tensor::Tensor& weight_grad,
                                  runtime::ThreadPool& pool,
                                  std::size_t grain) const;
  void backward_data_blocked(const tensor::Tensor& ddst,
                             tensor::Tensor& dsrc, std::span<float> scratch,
                             runtime::ThreadPool& pool,
                             std::size_t grain) const;
  void backward_data_plain_src(const tensor::Tensor& ddst,
                               tensor::Tensor& dsrc,
                               runtime::ThreadPool& pool) const;

  /// Stages `src` into the stream's padded workspace. When the
  /// workspace is shared between layers the zero border may have been
  /// clobbered since the context was created, so it is re-zeroed here;
  /// a private (per-layer) region keeps its construction-time zeros and
  /// only the interior rows are rewritten.
  void stage_padded_src(const tensor::Tensor& src, LayerExecState& exec,
                        runtime::ThreadPool& pool) const;

  Conv3dConfig config_;
  bool plain_input_ = false;

  // Fused LeakyReLU epilogue (see fuse_leaky_relu).
  bool fused_ = false;
  float slope_ = 0.0f;

  // Spatial geometry (set by plan). pd_/ph_/pw_ are the padded extents
  // in_x_ + pad_x_.total() of the staging workspace.
  std::int64_t in_d_ = 0, in_h_ = 0, in_w_ = 0;
  std::int64_t out_d_ = 0, out_h_ = 0, out_w_ = 0;
  std::int64_t pd_ = 0, ph_ = 0, pw_ = 0;
  PadSpec pad_d_, pad_h_, pad_w_;

  // Parameters. Weights live permanently in the blocked layout
  // ({OCb, ICb, K, K, K, 16ic, 16oc}, or {OCb, K, K, K, IC, 16oc} for
  // the plain-input case).
  tensor::Tensor weights_;
  tensor::Tensor bias_;
};

// ---------------------------------------------------------------------------
// Reference engine (plain layouts, correctness oracle).

/// dst {OC, OD, OH, OW} = conv(src {IC, D, H, W}, weights
/// {OC, IC, K, K, K}) + bias, with the given stride and per-dim pads.
void conv3d_forward_reference(const tensor::Tensor& src,
                              const tensor::Tensor& weights,
                              const tensor::Tensor& bias, std::int64_t stride,
                              const PadSpec& pd, const PadSpec& ph,
                              const PadSpec& pw, tensor::Tensor& dst);

void conv3d_backward_data_reference(const tensor::Tensor& ddst,
                                    const tensor::Tensor& weights,
                                    std::int64_t stride, const PadSpec& pd,
                                    const PadSpec& ph, const PadSpec& pw,
                                    tensor::Tensor& dsrc);

void conv3d_backward_weights_reference(
    const tensor::Tensor& src, const tensor::Tensor& ddst,
    std::int64_t stride, const PadSpec& pd, const PadSpec& ph,
    const PadSpec& pw, tensor::Tensor& dweights, tensor::Tensor& dbias);

/// Resolves the padding of one spatial dimension.
PadSpec resolve_pad(Padding mode, std::int64_t in, std::int64_t kernel,
                    std::int64_t stride);

}  // namespace cf::dnn
