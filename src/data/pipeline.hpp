// Prefetching input pipeline — the QueueRunner/coordinator substitute.
//
// The paper hides I/O behind gradient computation with dedicated I/O
// threads that buffer randomly-selected samples into memory (§V-A,
// §VI-A). Pipeline does the same: producer threads read samples from a
// SampleSource through private readers into a bounded reorder buffer;
// the training loop pops. Delivery is *order-preserving* — samples
// arrive exactly in epoch-index order regardless of how many I/O
// threads race on the reads — so the training trajectory is bitwise
// independent of the prefetch parallelism (a determinism invariant the
// tests pin). The time a consumer spends blocked in next() is the
// *unhidden* I/O cost — exactly the quantity Eq. 1 bounds — and is
// tracked for the Fig 3 breakdown.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "data/dataset.hpp"
#include "data/sample_pool.hpp"
#include "obs/metrics.hpp"
#include "runtime/timer.hpp"

namespace cf::data {

struct PipelineConfig {
  std::size_t queue_capacity = 8;
  std::size_t io_threads = 1;
  /// Injected per-read delay in seconds (filesystem model hook for the
  /// I/O experiments); 0 disables.
  double injected_read_delay = 0.0;
  /// Recycle sample buffers through a SamplePool (steady state: zero
  /// allocations per sample). False is the `--no-pool` ablation;
  /// delivered bytes are identical either way.
  bool pool = true;
  /// obs registry prefix for this pipeline's metrics; the consumer
  /// wait Stat is `<metric_prefix>/wait` (reset at construction). The
  /// Trainer names its pipelines per rank and split, e.g.
  /// `data/pipeline/r0/train`.
  std::string metric_prefix = "data/pipeline";
};

class Pipeline {
 public:
  Pipeline(const SampleSource& source, PipelineConfig config);
  ~Pipeline();

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Starts a pass over the given sample indices (the caller shards
  /// and shuffles). Any previous epoch must be fully drained.
  void start_epoch(std::vector<std::size_t> indices);

  /// Pops the next sample; returns false when the epoch is exhausted.
  /// When pooling is enabled, `out`'s previous buffer is recycled into
  /// the pool first — callers reuse one Sample across next() calls and
  /// must not hold references into the buffer they passed in.
  bool next(Sample& out);

  /// Time spent blocked inside next() (unhidden I/O) — a snapshot of
  /// the `<metric_prefix>/wait` Stat in the obs registry.
  runtime::TimeStats wait_time() const { return wait_stat_->snapshot(); }
  void reset_wait_time() { wait_stat_->reset(); }

 private:
  void producer_loop(std::size_t thread_index);

  const SampleSource& source_;
  PipelineConfig config_;

  std::mutex mutex_;
  std::condition_variable queue_not_full_;
  std::condition_variable queue_not_empty_;
  std::condition_variable epoch_started_;
  /// Fixed-ring reorder buffer: epoch position p lives in slot
  /// p % queue_capacity. The backpressure invariant (at most
  /// queue_capacity positions in flight beyond the consumer) makes the
  /// mapping collision-free, so the seed's std::map (a node allocation
  /// per sample) becomes queue_capacity slots allocated once.
  struct Slot {
    Sample sample;
    bool full = false;
  };
  std::vector<Slot> ring_;
  std::vector<std::size_t> indices_;
  std::size_t cursor_ = 0;
  std::size_t consumed_ = 0;
  std::size_t epoch_ = 0;
  bool stopping_ = false;

  obs::Stat* wait_stat_ = nullptr;        // <metric_prefix>/wait
  obs::Counter* samples_counter_ = nullptr;  // data/pipeline/samples_prefetched
  obs::Counter* bytes_counter_ = nullptr;    // data/pipeline/bytes_prefetched
  SamplePool pool_;  // buffer recycling (config_.pool)
  std::vector<std::thread> producers_;
};

/// The indices rank `rank` of `nranks` processes in one epoch: a
/// deterministic shuffle of [0, total) sliced round-robin. Every rank
/// sees floor(total / nranks) samples (the remainder is dropped, as a
/// fixed step count per rank is required by synchronous training).
std::vector<std::size_t> epoch_indices_for_rank(std::size_t total,
                                                int nranks, int rank,
                                                std::uint64_t epoch_seed,
                                                bool shuffle);

}  // namespace cf::data
