// Learning-rate schedules. CosmoFlow uses a polynomial decay with
// power 1 (§III-B):
//
//   eta_t = (eta_0 - eta_min) * (1 - t / t_decay) + eta_min
//
// which enables large learning rates early in training and decays to
// eta_min to help convergence at large effective batch sizes.
#pragma once

#include <cstdint>

namespace cf::optim {

class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  virtual double lr(std::int64_t step) const = 0;
};

class PolynomialDecay final : public LrSchedule {
 public:
  /// Paper defaults: eta_0 = 2e-3, eta_min = 1e-4.
  PolynomialDecay(double base_lr, double min_lr, std::int64_t decay_steps);

  /// Clamped to min_lr once t >= decay_steps.
  double lr(std::int64_t step) const override;

  double base_lr() const noexcept { return base_lr_; }
  double min_lr() const noexcept { return min_lr_; }
  std::int64_t decay_steps() const noexcept { return decay_steps_; }

 private:
  double base_lr_;
  double min_lr_;
  std::int64_t decay_steps_;
};

class ConstantLr final : public LrSchedule {
 public:
  explicit ConstantLr(double lr) : lr_(lr) {}
  double lr(std::int64_t) const override { return lr_; }

 private:
  double lr_;
};

}  // namespace cf::optim
