#include "dnn/avgpool3d.hpp"

#include <cstring>
#include <stdexcept>

#include "tensor/layout.hpp"
#include "tensor/shape.hpp"

namespace cf::dnn {

using tensor::kChannelBlock;
using tensor::Shape;
using tensor::Tensor;

namespace {
constexpr std::int64_t kB = kChannelBlock;
}

AvgPool3d::AvgPool3d(std::string name, AvgPool3dConfig config)
    : Layer(std::move(name)), config_(config) {
  if (config_.kernel <= 0 || config_.stride <= 0) {
    throw std::invalid_argument("AvgPool3d: bad kernel/stride");
  }
}

Shape AvgPool3d::plan(const Shape& input) {
  if (input.rank() != 5 || input[4] != kB) {
    throw std::invalid_argument("AvgPool3d::plan: expected blocked input, "
                                "got " + input.to_string());
  }
  cb_ = input[0];
  in_d_ = input[1];
  in_h_ = input[2];
  in_w_ = input[3];
  out_d_ = tensor::conv_out_dim(in_d_, config_.kernel, config_.stride, 0);
  out_h_ = tensor::conv_out_dim(in_h_, config_.kernel, config_.stride, 0);
  out_w_ = tensor::conv_out_dim(in_w_, config_.kernel, config_.stride, 0);
  const Shape out{cb_, out_d_, out_h_, out_w_, kB};
  set_shapes(input, out);
  return out;
}

FlopCounts AvgPool3d::flops() const {
  const std::int64_t k3 = config_.kernel * config_.kernel * config_.kernel;
  FlopCounts counts;
  counts.fwd = out_d_ * out_h_ * out_w_ * cb_ * kB * (k3 + 1);
  counts.bwd_data = counts.fwd;
  return counts;
}

void AvgPool3d::forward(const Tensor& src, Tensor& dst,
                        LayerExecState& exec,
                        runtime::ThreadPool& pool) const {
  const runtime::ScopedTimer timer(exec.timers.fwd);
  if (src.shape() != input_shape() || dst.shape() != output_shape()) {
    throw std::invalid_argument("AvgPool3d::forward: shape mismatch");
  }
  const std::int64_t k = config_.kernel;
  const std::int64_t s = config_.stride;
  const float inv = 1.0f / static_cast<float>(k * k * k);

  pool.parallel_for(
      static_cast<std::size_t>(cb_ * out_d_),
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t job = begin; job < end; ++job) {
          const std::int64_t cb = static_cast<std::int64_t>(job) / out_d_;
          const std::int64_t od = static_cast<std::int64_t>(job) % out_d_;
          for (std::int64_t oh = 0; oh < out_h_; ++oh) {
            float* drow =
                dst.data() +
                (((cb * out_d_ + od) * out_h_ + oh) * out_w_) * kB;
            for (std::int64_t ow = 0; ow < out_w_; ++ow) {
              float acc[kB] = {};
              for (std::int64_t kd = 0; kd < k; ++kd) {
                for (std::int64_t kh = 0; kh < k; ++kh) {
                  const float* srow =
                      src.data() +
                      (((cb * in_d_ + od * s + kd) * in_h_ + oh * s + kh) *
                           in_w_ +
                       ow * s) *
                          kB;
                  for (std::int64_t kw = 0; kw < k; ++kw) {
                    const float* v = srow + kw * kB;
                    for (int c = 0; c < kB; ++c) acc[c] += v[c];
                  }
                }
              }
              float* d = drow + ow * kB;
              for (int c = 0; c < kB; ++c) d[c] = acc[c] * inv;
            }
          }
        }
      },
      exec.intraop_grain);
}

void AvgPool3d::backward(const Tensor& src, Tensor& ddst, Tensor& dsrc,
                         bool need_dsrc, LayerExecState& exec,
                         runtime::ThreadPool& pool) const {
  (void)src;
  if (!need_dsrc) return;
  const runtime::ScopedTimer timer(exec.timers.bwd_data);
  if (ddst.shape() != output_shape() || dsrc.shape() != input_shape()) {
    throw std::invalid_argument("AvgPool3d::backward: shape mismatch");
  }
  const std::int64_t k = config_.kernel;
  const std::int64_t s = config_.stride;
  const float inv = 1.0f / static_cast<float>(k * k * k);

  if (s >= k) {
    // Non-overlapping windows (the CosmoFlow case, k == s == 2): every
    // dsrc element belongs to at most one window, so broadcast
    // ddst * inv straight into it with *assignments* — no zero() pass,
    // one write stream instead of two. Elements outside every window
    // (the s > k gaps and the in % s tails) are zeroed explicitly, so
    // the pass fully overwrites dsrc and is safe on reused (dirty)
    // planner buffers. Each (cb, od) job owns the disjoint depth slice
    // [od*s, (od+1)*s) — plus the depth tail for the last od — which
    // both widens the parallel decomposition from cb_ to cb_ * out_d_
    // jobs and keeps writes race-free.
    const std::size_t row_bytes =
        static_cast<std::size_t>(in_w_) * kB * sizeof(float);
    pool.parallel_for(
        static_cast<std::size_t>(cb_ * out_d_),
        [&](std::size_t begin, std::size_t end, std::size_t) {
          for (std::size_t job = begin; job < end; ++job) {
            const std::int64_t cb = static_cast<std::int64_t>(job) / out_d_;
            const std::int64_t od = static_cast<std::int64_t>(job) % out_d_;
            const std::int64_t id_end =
                od + 1 == out_d_ ? in_d_ : (od + 1) * s;
            for (std::int64_t id = od * s; id < id_end; ++id) {
              float* plane =
                  dsrc.data() + ((cb * in_d_ + id) * in_h_) * in_w_ * kB;
              if (id - od * s >= k) {  // gap/tail plane: no window hits it
                std::memset(plane, 0,
                            static_cast<std::size_t>(in_h_) * row_bytes);
                continue;
              }
              for (std::int64_t ih = 0; ih < in_h_; ++ih) {
                float* trow = plane + ih * in_w_ * kB;
                const std::int64_t oh = ih / s;
                if (oh >= out_h_ || ih - oh * s >= k) {  // gap/tail row
                  std::memset(trow, 0, row_bytes);
                  continue;
                }
                const float* drow =
                    ddst.data() +
                    (((cb * out_d_ + od) * out_h_ + oh) * out_w_) * kB;
                for (std::int64_t ow = 0; ow < out_w_; ++ow) {
                  const float* d = drow + ow * kB;
                  float* t = trow + ow * s * kB;
                  for (std::int64_t kw = 0; kw < k; ++kw) {
                    for (int c = 0; c < kB; ++c) {
                      t[kw * kB + c] = d[c] * inv;
                    }
                  }
                  // Gap between this window and the next; the stretch
                  // after the last window belongs to the tail memset
                  // below (the gap's end (ow+1)*s may exceed in_w_).
                  if (s > k && ow + 1 < out_w_) {
                    std::memset(t + k * kB, 0,
                                static_cast<std::size_t>(s - k) * kB *
                                    sizeof(float));
                  }
                }
                const std::int64_t tail = (out_w_ - 1) * s + k;
                if (tail < in_w_) {
                  std::memset(trow + tail * kB, 0,
                              static_cast<std::size_t>(in_w_ - tail) * kB *
                                  sizeof(float));
                }
              }
            }
          }
        },
        exec.intraop_grain);
    return;
  }

  // Overlapping windows (stride < kernel): contributions accumulate, so
  // zero first; the per-cb decomposition keeps the += writes race-free.
  dsrc.zero();
  pool.parallel_for(
      static_cast<std::size_t>(cb_),
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t cbi = begin; cbi < end; ++cbi) {
          const std::int64_t cb = static_cast<std::int64_t>(cbi);
          for (std::int64_t od = 0; od < out_d_; ++od) {
            for (std::int64_t oh = 0; oh < out_h_; ++oh) {
              const float* drow =
                  ddst.data() +
                  (((cb * out_d_ + od) * out_h_ + oh) * out_w_) * kB;
              for (std::int64_t ow = 0; ow < out_w_; ++ow) {
                const float* d = drow + ow * kB;
                for (std::int64_t kd = 0; kd < k; ++kd) {
                  for (std::int64_t kh = 0; kh < k; ++kh) {
                    float* trow =
                        dsrc.data() +
                        (((cb * in_d_ + od * s + kd) * in_h_ + oh * s +
                          kh) *
                             in_w_ +
                         ow * s) *
                            kB;
                    for (std::int64_t kw = 0; kw < k; ++kw) {
                      float* t = trow + kw * kB;
                      for (int c = 0; c < kB; ++c) t[c] += d[c] * inv;
                    }
                  }
                }
              }
            }
          }
        }
      },
      exec.intraop_grain);
}

void avgpool3d_forward_reference(const Tensor& src, std::int64_t kernel,
                                 std::int64_t stride, Tensor& dst) {
  if (src.shape().rank() != 4 || dst.shape().rank() != 4) {
    throw std::invalid_argument("avgpool reference: expected plain rank-4");
  }
  const std::int64_t c = src.shape()[0];
  const std::int64_t id = src.shape()[1];
  const std::int64_t ih = src.shape()[2];
  const std::int64_t iw = src.shape()[3];
  const std::int64_t od = tensor::conv_out_dim(id, kernel, stride, 0);
  const std::int64_t oh = tensor::conv_out_dim(ih, kernel, stride, 0);
  const std::int64_t ow = tensor::conv_out_dim(iw, kernel, stride, 0);
  if (dst.shape() != Shape{c, od, oh, ow}) {
    throw std::invalid_argument("avgpool reference: bad dst shape");
  }
  const double inv = 1.0 / static_cast<double>(kernel * kernel * kernel);
  for (std::int64_t ch = 0; ch < c; ++ch) {
    for (std::int64_t d = 0; d < od; ++d) {
      for (std::int64_t h = 0; h < oh; ++h) {
        for (std::int64_t w = 0; w < ow; ++w) {
          double acc = 0.0;
          for (std::int64_t kd = 0; kd < kernel; ++kd) {
            for (std::int64_t kh = 0; kh < kernel; ++kh) {
              for (std::int64_t kw = 0; kw < kernel; ++kw) {
                acc += src.at(
                    {ch, d * stride + kd, h * stride + kh, w * stride + kw});
              }
            }
          }
          dst.at({ch, d, h, w}) = static_cast<float>(acc * inv);
        }
      }
    }
  }
}

}  // namespace cf::dnn
