// Sequential network container: owns the layers, the inter-layer
// activation/difference buffers, and the flat parameter/gradient
// *arena* — two contiguous 64-byte-aligned buffers holding every
// parameter (resp. gradient) tensor back to back in layer order.
// Layer tensors are rebound onto arena segments at finalize() time, so
// the optimizer walks one contiguous region, the gradient allreduce
// operates on grad_arena() in place with zero copies, and a layer's
// gradient segment is directly addressable for bucketed communication
// (grad_segment()).
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dnn/layer.hpp"
#include "runtime/aligned_buffer.hpp"

namespace cf::dnn {

/// Per-layer profile row (Table I).
struct LayerProfile {
  std::string name;
  std::string kind;
  runtime::TimeStats fwd;
  runtime::TimeStats bwd_data;
  runtime::TimeStats bwd_weights;
  FlopCounts flops;
};

class Network {
 public:
  Network() = default;

  /// Adds a layer; returns a reference for further configuration.
  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    add(std::move(layer));
    return ref;
  }

  void add(std::unique_ptr<Layer> layer);

  /// When enabled (before finalize), finalize() runs an MKL-DNN-style
  /// post-op fusion pass: every Conv3d→LeakyRelu / Dense→LeakyRelu pair
  /// is collapsed into the producer layer (forward epilogue + backward
  /// mask) and the standalone activation layer — its two buffers and
  /// its two full-tensor sweeps — disappears. Off by default so
  /// hand-built test networks keep their literal layer list;
  /// build_network() turns it on.
  void set_fuse_eltwise(bool enabled) noexcept { fuse_eltwise_ = enabled; }
  bool fuse_eltwise() const noexcept { return fuse_eltwise_; }
  /// Number of activation layers absorbed by the fusion pass.
  std::size_t fused_pairs() const noexcept { return fused_pairs_; }

  /// When enabled (before finalize), finalize() runs the liveness-based
  /// memory planner (DESIGN.md §2.2): during backward only diffs_[i]
  /// (read) and diffs_[i-1] (written) are live, so all difference
  /// tensors are rebound onto two alternating max-sized buffers keyed
  /// by layer-index parity, and every layer's backward scratch is
  /// served from one shared arena sized to the largest request.
  /// Placement-only: the planned step is bitwise identical to the
  /// unplanned one. Off by default so hand-built test networks keep
  /// per-layer buffers; build_network() turns it on.
  void set_memory_planning(bool enabled) noexcept { memplan_ = enabled; }
  bool memory_planning() const noexcept { return memplan_; }

  /// Plans every layer, allocating parameters and activation buffers.
  /// Must be called exactly once, after all layers are added.
  void finalize(const tensor::Shape& input_shape);
  bool finalized() const noexcept { return finalized_; }

  std::size_t layer_count() const noexcept { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }
  const Layer& layer(std::size_t i) const { return *layers_[i]; }

  const tensor::Shape& input_shape() const noexcept { return input_shape_; }
  const tensor::Shape& output_shape() const noexcept {
    return output_shape_;
  }

  /// Runs the forward pass; the returned view stays valid until the
  /// next forward() call.
  const tensor::Tensor& forward(const tensor::Tensor& input,
                                runtime::ThreadPool& pool);

  /// Invoked by backward() right after layer `i`'s backward pass (its
  /// bwd_weights included) finishes, i.e. the moment grad_segment(i)
  /// holds this step's final local gradients. Layers are visited last
  /// to first, so segments become ready tail-first and contiguously —
  /// callers can coalesce them into buckets and start communicating
  /// while earlier layers are still computing.
  using GradReadyCallback = std::function<void(std::size_t layer_index)>;

  /// Runs the backward pass from the loss gradient w.r.t. the network
  /// output. Parameter gradients accumulate; the first layer's input
  /// difference signal is skipped (the input is data, §V-A workflow).
  /// Requires a preceding forward() on the same input.
  void backward(const tensor::Tensor& dloss, runtime::ThreadPool& pool,
                const GradReadyCallback& grad_ready = {});

  void zero_grads();

  std::vector<ParamView> params();
  std::int64_t param_count();
  std::size_t param_bytes() { return param_count() * sizeof(float); }

  // Flat arena views (valid after finalize). Layout is layer order,
  // parameter-tensor order — identical to the copy_*_to flat layout.
  std::span<float> param_arena() noexcept {
    return {param_arena_.data(), param_arena_.size()};
  }
  std::span<float> grad_arena() noexcept {
    return {grad_arena_.data(), grad_arena_.size()};
  }
  /// Layer i's slice of the arenas (empty for parameterless layers).
  std::span<float> param_segment(std::size_t i) {
    return param_arena().subspan(segment_offsets_[i], segment_sizes_[i]);
  }
  std::span<float> grad_segment(std::size_t i) {
    return grad_arena().subspan(segment_offsets_[i], segment_sizes_[i]);
  }
  std::size_t segment_offset(std::size_t i) const {
    return segment_offsets_[i];
  }

  /// Total per-sample flops; `skip_first_bwd_data` drops the unneeded
  /// first-layer data gradient (the default, matching the real
  /// workload).
  FlopCounts flops(bool skip_first_bwd_data = true) const;

  // Flat vector interface (checkpoints, tests). Order is layer order,
  // value tensor order — a straight copy of the arena. The training
  // step loop uses the arena spans directly instead.
  void copy_params_to(std::span<float> out);
  void set_params_from(std::span<const float> in);
  void copy_grads_to(std::span<float> out);
  void set_grads_from(std::span<const float> in);

  std::vector<LayerProfile> profiles() const;
  void reset_profiles();

  // Memory accounting (valid after finalize). Activations always keep
  // per-layer storage; diff/scratch bytes reflect the planner when it
  // is on and the per-layer totals when it is off.
  std::size_t activation_bytes() const noexcept;
  std::size_t diff_arena_bytes() const noexcept;
  std::size_t scratch_bytes() const noexcept;
  std::size_t peak_tensor_bytes() const noexcept {
    return activation_bytes() + diff_arena_bytes() + scratch_bytes();
  }

  /// The difference tensor written by layer i's producer (test hook for
  /// planner aliasing checks).
  const tensor::Tensor& diff(std::size_t i) const { return diffs_[i]; }

 private:
  void build_arena();
  void plan_memory();
  void fuse_eltwise_pass();

  std::vector<std::unique_ptr<Layer>> layers_;
  std::vector<tensor::Tensor> activations_;   // output of each layer
  std::vector<tensor::Tensor> diffs_;         // d(loss)/d(activation)
  // Contiguous parameter/gradient storage; layer tensors are views
  // into these after finalize() (see build_arena).
  runtime::AlignedBuffer<float> param_arena_;
  runtime::AlignedBuffer<float> grad_arena_;
  // Memory-planner storage: the two parity diff buffers (back to back
  // in one allocation) and the shared backward scratch arena.
  runtime::AlignedBuffer<float> diff_arena_;
  runtime::AlignedBuffer<float> scratch_arena_;
  std::vector<std::size_t> segment_offsets_;  // per layer, in floats
  std::vector<std::size_t> segment_sizes_;
  tensor::Tensor input_;
  tensor::Shape input_shape_;
  tensor::Shape output_shape_;
  bool finalized_ = false;
  bool forward_done_ = false;
  bool fuse_eltwise_ = false;
  bool memplan_ = false;
  std::size_t fused_pairs_ = 0;
};

}  // namespace cf::dnn
