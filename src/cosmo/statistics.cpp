#include "cosmo/statistics.hpp"

#include <cmath>
#include <complex>
#include <stdexcept>

#include "cosmo/fft3d.hpp"
#include "cosmo/gaussian_field.hpp"

namespace cf::cosmo {

FieldMoments field_moments(const tensor::Tensor& volume) {
  const std::size_t n = volume.size();
  if (n == 0) throw std::invalid_argument("field_moments: empty volume");
  double mean = 0.0;
  for (const float v : volume.values()) mean += v;
  mean /= static_cast<double>(n);

  double m2 = 0.0, m3 = 0.0, m4 = 0.0;
  for (const float v : volume.values()) {
    const double d = v - mean;
    const double d2 = d * d;
    m2 += d2;
    m3 += d2 * d;
    m4 += d2 * d2;
  }
  m2 /= static_cast<double>(n);
  m3 /= static_cast<double>(n);
  m4 /= static_cast<double>(n);

  FieldMoments moments;
  moments.mean = mean;
  moments.variance = m2;
  if (m2 > 0.0) {
    moments.skewness = m3 / std::pow(m2, 1.5);
    moments.kurtosis = m4 / (m2 * m2) - 3.0;
  }
  return moments;
}

namespace {

std::int64_t cubic_side(const tensor::Tensor& volume) {
  const auto& shape = volume.shape();
  if (shape.rank() == 3 && shape[0] == shape[1] && shape[0] == shape[2]) {
    return shape[0];
  }
  if (shape.rank() == 4 && shape[0] == 1 && shape[1] == shape[2] &&
      shape[1] == shape[3]) {
    return shape[1];
  }
  throw std::invalid_argument(
      "real_field_power_spectrum: expected cubic {N,N,N} or {1,N,N,N}");
}

}  // namespace

std::vector<double> real_field_power_spectrum(const tensor::Tensor& volume,
                                              double box_size, int bins,
                                              runtime::ThreadPool& pool) {
  const std::int64_t n = cubic_side(volume);
  if (bins <= 0 || box_size <= 0.0) {
    throw std::invalid_argument("real_field_power_spectrum: bad arguments");
  }
  std::vector<std::complex<float>> modes(
      static_cast<std::size_t>(n * n * n));
  for (std::size_t i = 0; i < modes.size(); ++i) {
    modes[i] = {volume[i], 0.0f};
  }
  Fft3d fft(n);
  fft.forward(modes.data(), pool);

  const GridSpec grid{n, box_size};
  const auto spectrum_bins = measure_power_spectrum(modes, grid, bins);
  std::vector<double> power(static_cast<std::size_t>(bins), 0.0);
  for (int b = 0; b < bins; ++b) {
    power[static_cast<std::size_t>(b)] =
        spectrum_bins[static_cast<std::size_t>(b)].power;
  }
  return power;
}

std::vector<double> summary_features(const tensor::Tensor& volume,
                                     double box_size, int spectrum_bins,
                                     runtime::ThreadPool& pool) {
  const FieldMoments moments = field_moments(volume);
  std::vector<double> features;
  features.reserve(3 + static_cast<std::size_t>(spectrum_bins));
  features.push_back(moments.variance);
  features.push_back(moments.skewness);
  features.push_back(moments.kurtosis);
  const auto power =
      real_field_power_spectrum(volume, box_size, spectrum_bins, pool);
  for (const double p : power) {
    features.push_back(std::log(p + 1e-12));
  }
  return features;
}

}  // namespace cf::cosmo
