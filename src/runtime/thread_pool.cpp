#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace cf::runtime {

namespace {

/// Set while this thread is executing a parallel_for body — on a pool
/// worker or on the dispatching caller. Global across pools on purpose:
/// dispatching to a *different* pool from inside a region would
/// oversubscribe the core budget just as surely as re-entering the same
/// pool would deadlock its single task slot.
thread_local bool tls_in_parallel_region = false;

struct RegionGuard {
  RegionGuard() noexcept { tls_in_parallel_region = true; }
  ~RegionGuard() { tls_in_parallel_region = false; }
  RegionGuard(const RegionGuard&) = delete;
  RegionGuard& operator=(const RegionGuard&) = delete;
};

}  // namespace

bool ThreadPool::in_parallel_region() noexcept {
  return tls_in_parallel_region;
}

std::size_t ThreadPool::default_num_threads() {
  if (const char* env = std::getenv("COSMOFLOW_NUM_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::ThreadPool(std::size_t num_threads)
    : num_threads_(std::max<std::size_t>(1, num_threads)) {
  workers_.reserve(num_threads_ - 1);
  for (std::size_t i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::chunk_bounds(std::size_t total, std::size_t worker,
                              std::size_t* begin, std::size_t* end) const {
  const std::size_t base = total / task_.chunks;
  const std::size_t remainder = total % task_.chunks;
  *begin = worker * base + std::min(worker, remainder);
  *end = *begin + base + (worker < remainder ? 1 : 0);
}

void ThreadPool::run_chunk(std::size_t worker) {
  if (worker >= task_.chunks) return;
  std::size_t begin = 0;
  std::size_t end = 0;
  chunk_bounds(task_.total, worker, &begin, &end);
  if (begin >= end) return;
  const RegionGuard region;
  task_.invoke(task_.ctx, begin, end, worker);
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  std::size_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock lock(mutex_);
      work_ready_.wait(lock, [&] {
        return stopping_ || generation_ != seen_generation;
      });
      if (stopping_) return;
      seen_generation = generation_;
    }
    std::exception_ptr error;
    try {
      run_chunk(worker_index);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      if (--pending_ == 0) work_done_.notify_all();
    }
  }
}

void ThreadPool::dispatch(std::size_t total, void* ctx, TaskInvoke invoke,
                          std::size_t grain_threshold) {
  if (total == 0) return;
  if (tls_in_parallel_region) {
    // Nested dispatch from inside a running body: the pool's single
    // task slot is (or may be) occupied, so queueing would deadlock and
    // spawning would oversubscribe. Run the body serially instead —
    // identical range, identical result — and flag the nesting in
    // debug builds so callers fix it rather than lean on the fallback.
    assert(!"ThreadPool::parallel_for called from inside a parallel "
            "region; running serially");
    invoke(ctx, 0, total, 0);
    return;
  }
  // grain = minimum items per chunk: a range shorter than two grains
  // runs serially, and a range of K grains spreads over at most K
  // workers. The chunk count depends only on (total, grain,
  // num_threads) — never on runtime load — so partitioning stays a
  // pure function (deterministic-reduction rule, DESIGN.md §2.1).
  const std::size_t grain = std::max<std::size_t>(1, grain_threshold);
  const std::size_t chunks =
      std::min(num_threads_, std::max<std::size_t>(1, total / grain));
  if (chunks == 1) {
    const RegionGuard region;
    invoke(ctx, 0, total, 0);
    return;
  }
  {
    std::lock_guard lock(mutex_);
    task_.ctx = ctx;
    task_.invoke = invoke;
    task_.total = total;
    task_.chunks = chunks;
    pending_ = num_threads_ - 1;
    first_error_ = nullptr;
    ++generation_;
  }
  work_ready_.notify_all();

  std::exception_ptr caller_error;
  try {
    run_chunk(0);
  } catch (...) {
    caller_error = std::current_exception();
  }

  std::unique_lock lock(mutex_);
  work_done_.wait(lock, [&] { return pending_ == 0; });
  task_.ctx = nullptr;
  task_.invoke = nullptr;
  const std::exception_ptr error =
      caller_error ? caller_error : first_error_;
  first_error_ = nullptr;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

}  // namespace cf::runtime
