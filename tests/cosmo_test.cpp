// Tests for the cosmology substrate: power spectrum physics, Gaussian
// random field statistics, LPT displacement, mass deposit and the
// simulation driver.
#include <gtest/gtest.h>

#include <cmath>

#include "cosmo/deposit.hpp"
#include "cosmo/gaussian_field.hpp"
#include "cosmo/power_spectrum.hpp"
#include "cosmo/simulation.hpp"
#include "cosmo/zeldovich.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/tensor_ops.hpp"

namespace cf::cosmo {
namespace {

TEST(TophatWindow, LimitsAndValues) {
  EXPECT_NEAR(tophat_window(1e-8), 1.0, 1e-9);
  // W(pi): 3(sin(pi) - pi cos(pi))/pi^3 = 3/pi^2.
  EXPECT_NEAR(tophat_window(3.14159265358979), 3.0 / (3.14159265 * 3.14159265),
              1e-6);
  EXPECT_LT(std::fabs(tophat_window(50.0)), 0.01);  // decays
}

TEST(PowerSpectrum, Sigma8NormalizationIsExact) {
  for (const double s8 : {0.78, 0.8159, 0.95}) {
    CosmoParams params;
    params.sigma8 = s8;
    const PowerSpectrum ps(params);
    EXPECT_NEAR(ps.sigma_r(8.0), s8, 1e-4 * s8);
  }
}

TEST(PowerSpectrum, TransferIsMonotonicallyDecreasing) {
  const PowerSpectrum ps(CosmoParams{});
  double previous = ps.transfer(1e-4);
  EXPECT_NEAR(previous, 1.0, 2e-3);
  for (double k = 1e-3; k < 100.0; k *= 2.0) {
    const double current = ps.transfer(k);
    EXPECT_LT(current, previous + 1e-12) << "k = " << k;
    previous = current;
  }
}

TEST(PowerSpectrum, SigmaDecreasesWithRadius) {
  const PowerSpectrum ps(CosmoParams{});
  EXPECT_GT(ps.sigma_r(2.0), ps.sigma_r(8.0));
  EXPECT_GT(ps.sigma_r(8.0), ps.sigma_r(32.0));
}

TEST(PowerSpectrum, TiltShiftsSmallScalePower) {
  // Higher ns boosts small scales relative to large scales (both
  // normalized to the same sigma8).
  CosmoParams low;
  low.ns = 0.9;
  CosmoParams high;
  high.ns = 1.0;
  const PowerSpectrum ps_low(low);
  const PowerSpectrum ps_high(high);
  const double k_small = 5.0;   // h/Mpc, small scales
  const double k_large = 0.01;  // large scales
  const double ratio_low = ps_low(k_small) / ps_low(k_large);
  const double ratio_high = ps_high(k_small) / ps_high(k_large);
  EXPECT_GT(ratio_high, ratio_low);
}

TEST(PowerSpectrum, OmegaMShiftsTurnover) {
  // Larger OmegaM * h pushes the matter-radiation-equality turnover to
  // larger k, raising small-scale power relative to the peak.
  CosmoParams low;
  low.omega_m = 0.25;
  CosmoParams high;
  high.omega_m = 0.35;
  const PowerSpectrum ps_low(low);
  const PowerSpectrum ps_high(high);
  EXPECT_GT(ps_high.transfer(1.0), ps_low.transfer(1.0));
}

TEST(PowerSpectrum, RejectsUnphysicalParameters) {
  CosmoParams bad;
  bad.omega_m = 0.0;
  EXPECT_THROW(PowerSpectrum{bad}, std::invalid_argument);
  bad = CosmoParams{};
  bad.sigma8 = -1.0;
  EXPECT_THROW(PowerSpectrum{bad}, std::invalid_argument);
}

TEST(GaussianField, RecoversInputSpectrum) {
  const GridSpec grid{32, 256.0};
  const PowerSpectrum ps(CosmoParams{});
  runtime::ThreadPool pool(2);
  runtime::Rng rng(101);
  const auto modes = generate_delta_k(ps, grid, rng, pool);

  const auto bins = measure_power_spectrum(modes, grid, 8);
  int checked = 0;
  for (const auto& bin : bins) {
    if (bin.modes < 200) continue;  // skip noisy shells
    const double expected = ps(bin.k);
    EXPECT_NEAR(bin.power, expected, 0.25 * expected)
        << "k = " << bin.k << " (" << bin.modes << " modes)";
    ++checked;
  }
  EXPECT_GE(checked, 3);
}

TEST(GaussianField, RealFieldHasZeroMean) {
  const GridSpec grid{16, 128.0};
  const PowerSpectrum ps(CosmoParams{});
  runtime::ThreadPool pool(2);
  runtime::Rng rng(102);
  auto modes = generate_delta_k(ps, grid, rng, pool);
  const tensor::Tensor delta = delta_x_from_modes(std::move(modes), grid,
                                                  pool);
  EXPECT_NEAR(tensor::sum(delta.values()) / delta.size(), 0.0, 1e-4);
  // And nonzero fluctuation power.
  EXPECT_GT(tensor::l2_norm(delta.values()), 1.0);
}

TEST(GaussianField, DeterministicInSeed) {
  const GridSpec grid{16, 128.0};
  const PowerSpectrum ps(CosmoParams{});
  runtime::ThreadPool pool(2);
  runtime::Rng rng_a(103);
  runtime::Rng rng_b(103);
  const auto a = generate_delta_k(ps, grid, rng_a, pool);
  const auto b = generate_delta_k(ps, grid, rng_b, pool);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].real(), b[i].real());
    ASSERT_EQ(a[i].imag(), b[i].imag());
  }
}

TEST(GaussianField, HigherSigma8MeansStrongerFluctuations) {
  const GridSpec grid{16, 128.0};
  runtime::ThreadPool pool(2);
  CosmoParams low;
  low.sigma8 = 0.78;
  CosmoParams high;
  high.sigma8 = 0.95;
  runtime::Rng rng_a(104);
  runtime::Rng rng_b(104);  // same noise, different coloring
  auto modes_low = generate_delta_k(PowerSpectrum(low), grid, rng_a, pool);
  auto modes_high = generate_delta_k(PowerSpectrum(high), grid, rng_b, pool);
  const auto delta_low =
      delta_x_from_modes(std::move(modes_low), grid, pool);
  const auto delta_high =
      delta_x_from_modes(std::move(modes_high), grid, pool);
  EXPECT_GT(tensor::l2_norm(delta_high.values()),
            tensor::l2_norm(delta_low.values()));
}

TEST(Zeldovich, ZeroFieldLeavesLatticeInPlace) {
  const GridSpec grid{8, 64.0};
  runtime::ThreadPool pool(1);
  std::vector<std::complex<float>> modes(
      static_cast<std::size_t>(grid.cells()), {0.0f, 0.0f});
  const ParticleSet particles = zeldovich_displace(modes, grid, 1.0, pool);
  ASSERT_EQ(particles.size(), static_cast<std::size_t>(grid.cells()));
  const double cell = grid.cell_size();
  for (std::int64_t z = 0; z < grid.n; ++z) {
    for (std::int64_t y = 0; y < grid.n; ++y) {
      for (std::int64_t x = 0; x < grid.n; ++x) {
        const std::size_t idx = static_cast<std::size_t>(
            (z * grid.n + y) * grid.n + x);
        ASSERT_FLOAT_EQ(particles.x[idx], static_cast<float>(x * cell));
        ASSERT_FLOAT_EQ(particles.y[idx], static_cast<float>(y * cell));
        ASSERT_FLOAT_EQ(particles.z[idx], static_cast<float>(z * cell));
      }
    }
  }
}

TEST(Zeldovich, PositionsStayInBox) {
  const GridSpec grid{16, 128.0};
  const PowerSpectrum ps(CosmoParams{});
  runtime::ThreadPool pool(2);
  runtime::Rng rng(105);
  const auto modes = generate_delta_k(ps, grid, rng, pool);
  const ParticleSet particles = zeldovich_displace(modes, grid, 1.0, pool);
  for (std::size_t i = 0; i < particles.size(); ++i) {
    ASSERT_GE(particles.x[i], 0.0f);
    ASSERT_LT(particles.x[i], grid.box_size);
    ASSERT_GE(particles.y[i], 0.0f);
    ASSERT_LT(particles.y[i], grid.box_size);
    ASSERT_GE(particles.z[i], 0.0f);
    ASSERT_LT(particles.z[i], grid.box_size);
  }
}

TEST(Zeldovich, DisplacementCreatesClustering) {
  // Deposited counts of a displaced lattice must fluctuate (uniform
  // lattice deposits exactly one particle per cell).
  const GridSpec grid{16, 128.0};
  const PowerSpectrum ps(CosmoParams{});
  runtime::ThreadPool pool(2);
  runtime::Rng rng(106);
  const auto modes = generate_delta_k(ps, grid, rng, pool);
  const ParticleSet particles = zeldovich_displace(modes, grid, 1.0, pool);
  const tensor::Tensor counts =
      deposit_particles(particles, grid.n, DepositScheme::kNgp);
  double variance = 0.0;
  for (const float c : counts.values()) {
    variance += (c - 1.0) * (c - 1.0);
  }
  variance /= static_cast<double>(counts.size());
  EXPECT_GT(variance, 0.05);
}

TEST(Zeldovich, Lpt2ReducesToZaForWeakFields) {
  const GridSpec grid{8, 64.0};
  const PowerSpectrum ps(CosmoParams{});
  runtime::ThreadPool pool(1);
  runtime::Rng rng(107);
  auto modes = generate_delta_k(ps, grid, rng, pool);
  for (auto& m : modes) m *= 1e-4f;  // linear regime
  const ParticleSet za = zeldovich_displace(modes, grid, 1.0, pool);
  const ParticleSet lpt2 = lpt2_displace(modes, grid, 1.0, pool);
  float max_diff = 0.0f;
  for (std::size_t i = 0; i < za.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(za.x[i] - lpt2.x[i]));
    max_diff = std::max(max_diff, std::fabs(za.y[i] - lpt2.y[i]));
    max_diff = std::max(max_diff, std::fabs(za.z[i] - lpt2.z[i]));
  }
  EXPECT_LT(max_diff, 1e-4f * grid.box_size);
}

TEST(Deposit, ConservesMass) {
  const GridSpec grid{8, 64.0};
  const PowerSpectrum ps(CosmoParams{});
  runtime::ThreadPool pool(1);
  runtime::Rng rng(108);
  const auto modes = generate_delta_k(ps, grid, rng, pool);
  const ParticleSet particles = zeldovich_displace(modes, grid, 1.0, pool);
  for (const DepositScheme scheme :
       {DepositScheme::kNgp, DepositScheme::kCic}) {
    const tensor::Tensor counts = deposit_particles(particles, 16, scheme);
    EXPECT_NEAR(tensor::sum(counts.values()),
                static_cast<double>(particles.size()), 1e-2);
  }
}

TEST(Deposit, SingleParticleNgpPlacement) {
  ParticleSet particles;
  particles.box_size = 10.0;
  particles.x = {7.3f};
  particles.y = {0.1f};
  particles.z = {9.99f};
  const tensor::Tensor counts =
      deposit_particles(particles, 10, DepositScheme::kNgp);
  EXPECT_FLOAT_EQ(counts.at({9, 0, 7}), 1.0f);  // [z][y][x]
  EXPECT_NEAR(tensor::sum(counts.values()), 1.0, 1e-6);
}

TEST(Deposit, CicSplitsWeightAcrossNeighbours) {
  ParticleSet particles;
  particles.box_size = 8.0;
  // Exactly on a cell-center: all weight in one cell.
  particles.x = {0.5f};
  particles.y = {0.5f};
  particles.z = {0.5f};
  tensor::Tensor counts = deposit_particles(particles, 8, DepositScheme::kCic);
  EXPECT_NEAR(counts.at({0, 0, 0}), 1.0f, 1e-6);
  // Exactly on a cell corner: split 8 ways.
  particles.x = {1.0f};
  particles.y = {1.0f};
  particles.z = {1.0f};
  counts = deposit_particles(particles, 8, DepositScheme::kCic);
  EXPECT_NEAR(counts.at({0, 0, 0}), 0.125f, 1e-6);
  EXPECT_NEAR(counts.at({1, 1, 1}), 0.125f, 1e-6);
}

TEST(Deposit, RejectsBadArguments) {
  ParticleSet particles;
  particles.box_size = 0.0;
  EXPECT_THROW(deposit_particles(particles, 8, DepositScheme::kNgp),
               std::invalid_argument);
  particles.box_size = 10.0;
  EXPECT_THROW(deposit_particles(particles, 0, DepositScheme::kNgp),
               std::invalid_argument);
}

TEST(Simulation, DeterministicInSeed) {
  SimulationConfig config;
  config.grid = {16, 128.0};
  config.voxels = 16;
  const Simulation sim(config);
  runtime::ThreadPool pool(2);
  const Universe a = sim.run(CosmoParams{}, 42, pool);
  const Universe b = sim.run(CosmoParams{}, 42, pool);
  const Universe c = sim.run(CosmoParams{}, 43, pool);
  EXPECT_EQ(tensor::max_abs_diff(a.voxels.values(), b.voxels.values()), 0.0f);
  EXPECT_GT(tensor::max_abs_diff(a.voxels.values(), c.voxels.values()), 0.0f);
}

TEST(Simulation, Sigma8ControlsClumpiness) {
  // The learnability property behind the whole paper: voxel statistics
  // respond to the cosmological parameters.
  SimulationConfig config;
  config.grid = {16, 128.0};
  config.voxels = 16;
  const Simulation sim(config);
  runtime::ThreadPool pool(2);
  CosmoParams low;
  low.sigma8 = 0.78;
  CosmoParams high;
  high.sigma8 = 0.95;
  const Universe ulow = sim.run(low, 7, pool);
  const Universe uhigh = sim.run(high, 7, pool);

  const auto count_variance = [](const tensor::Tensor& v) {
    const double mean =
        tensor::sum(v.values()) / static_cast<double>(v.size());
    double acc = 0.0;
    for (const float c : v.values()) acc += (c - mean) * (c - mean);
    return acc / static_cast<double>(v.size());
  };
  EXPECT_GT(count_variance(uhigh.voxels), count_variance(ulow.voxels));
}

TEST(Simulation, SplitOctantsReassembles) {
  tensor::Tensor voxels(tensor::Shape{4, 4, 4});
  for (std::size_t i = 0; i < voxels.size(); ++i) {
    voxels[i] = static_cast<float>(i);
  }
  const auto octants = split_octants(voxels);
  ASSERT_EQ(octants.size(), 8u);
  for (const auto& o : octants) {
    EXPECT_EQ(o.shape(), tensor::Shape({1, 2, 2, 2}));
  }
  // Octant order is (oz, oy, ox) row-major; element (z, y, x) of octant
  // (oz, oy, ox) equals voxels[oz*2+z][oy*2+y][ox*2+x].
  for (std::int64_t oz = 0; oz < 2; ++oz) {
    for (std::int64_t oy = 0; oy < 2; ++oy) {
      for (std::int64_t ox = 0; ox < 2; ++ox) {
        const auto& sub = octants[static_cast<std::size_t>(
            (oz * 2 + oy) * 2 + ox)];
        for (std::int64_t z = 0; z < 2; ++z) {
          for (std::int64_t y = 0; y < 2; ++y) {
            for (std::int64_t x = 0; x < 2; ++x) {
              ASSERT_EQ(sub.at({0, z, y, x}),
                        voxels.at({oz * 2 + z, oy * 2 + y, ox * 2 + x}));
            }
          }
        }
      }
    }
  }
}

TEST(Simulation, SplitOctantsRejectsOddGrids) {
  tensor::Tensor odd(tensor::Shape{3, 3, 3});
  EXPECT_THROW(split_octants(odd), std::invalid_argument);
  tensor::Tensor rect(tensor::Shape{4, 4, 2});
  EXPECT_THROW(split_octants(rect), std::invalid_argument);
}

TEST(Simulation, SampleParametersStayInRanges) {
  const ParamRanges ranges;
  const auto params = sample_parameters(500, 11, ranges);
  ASSERT_EQ(params.size(), 500u);
  for (const auto& p : params) {
    EXPECT_GE(p.omega_m, ranges.omega_m_lo);
    EXPECT_LT(p.omega_m, ranges.omega_m_hi);
    EXPECT_GE(p.sigma8, ranges.sigma8_lo);
    EXPECT_LT(p.sigma8, ranges.sigma8_hi);
    EXPECT_GE(p.ns, ranges.ns_lo);
    EXPECT_LT(p.ns, ranges.ns_hi);
  }
  // Deterministic.
  const auto again = sample_parameters(500, 11, ranges);
  EXPECT_EQ(again[499].omega_m, params[499].omega_m);
}

TEST(Simulation, NormalizeDenormalizeRoundTrip) {
  CosmoParams p;
  p.omega_m = 0.31;
  p.sigma8 = 0.85;
  p.ns = 0.96;
  const auto n = normalize_params(p);
  for (const float v : n) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
  const CosmoParams back = denormalize_params(n);
  EXPECT_NEAR(back.omega_m, p.omega_m, 1e-6);
  EXPECT_NEAR(back.sigma8, p.sigma8, 1e-6);
  EXPECT_NEAR(back.ns, p.ns, 1e-6);
}

TEST(Simulation, Log1pCompressesCounts) {
  tensor::Tensor v(tensor::Shape{3}, std::vector<float>{0.0f, 1.0f, 999.0f});
  log1p_in_place(v);
  EXPECT_FLOAT_EQ(v[0], 0.0f);
  EXPECT_NEAR(v[1], std::log(2.0f), 1e-6);
  EXPECT_NEAR(v[2], std::log(1000.0f), 1e-4);
}

TEST(Simulation, RejectsBadConfig) {
  SimulationConfig odd;
  odd.voxels = 15;
  EXPECT_THROW(Simulation{odd}, std::invalid_argument);
  SimulationConfig bad_growth;
  bad_growth.growth = 0.0;
  EXPECT_THROW(Simulation{bad_growth}, std::invalid_argument);
}

}  // namespace
}  // namespace cf::cosmo
