#include "optim/sgd.hpp"

#include <algorithm>
#include <stdexcept>

namespace cf::optim {

namespace {

constexpr std::size_t kBlockElems = 4096;

}  // namespace

SgdMomentum::SgdMomentum(std::vector<dnn::ParamView> params, double momentum,
                         std::shared_ptr<const LrSchedule> schedule)
    : params_(std::move(params)),
      momentum_(momentum),
      schedule_(std::move(schedule)) {
  if (params_.empty()) throw std::invalid_argument("SgdMomentum: no params");
  if (!schedule_) throw std::invalid_argument("SgdMomentum: null schedule");
  if (momentum < 0.0 || momentum >= 1.0) {
    throw std::invalid_argument("SgdMomentum: momentum must be in [0, 1)");
  }
  std::size_t total = 0;
  velocity_offset_.reserve(params_.size());
  for (std::size_t group = 0; group < params_.size(); ++group) {
    const dnn::ParamView& p = params_[group];
    if (p.value == nullptr || p.grad == nullptr) {
      throw std::invalid_argument("SgdMomentum: malformed parameter view");
    }
    velocity_offset_.push_back(total);
    const std::size_t n = p.value->size();
    total += n;
    for (std::size_t lo = 0; lo < n; lo += kBlockElems) {
      blocks_.push_back({static_cast<std::uint32_t>(group),
                         static_cast<std::uint32_t>(lo),
                         static_cast<std::uint32_t>(
                             std::min(n, lo + kBlockElems))});
    }
  }
  velocity_.assign(total, 0.0f);
}

void SgdMomentum::step() { step_impl(nullptr); }

void SgdMomentum::step(runtime::ThreadPool& pool) { step_impl(&pool); }

void SgdMomentum::update_blocks(std::size_t begin, std::size_t end,
                                float rate) {
  const float mu = static_cast<float>(momentum_);
  for (std::size_t b = begin; b < end; ++b) {
    const Block& blk = blocks_[b];
    const dnn::ParamView& p = params_[blk.group];
    const std::size_t n = blk.hi - blk.lo;
    float* __restrict w = p.value->data() + blk.lo;
    const float* __restrict g = p.grad->data() + blk.lo;
    float* __restrict vel =
        velocity_.data() + velocity_offset_[blk.group] + blk.lo;
    for (std::size_t i = 0; i < n; ++i) {
      vel[i] = mu * vel[i] + g[i];
      w[i] -= rate * vel[i];
    }
  }
}

void SgdMomentum::step_impl(runtime::ThreadPool* pool) {
  const double lr = schedule_->lr(step_);
  ++step_;
  const float rate = static_cast<float>(lr);
  if (pool != nullptr) {
    pool->parallel_for(blocks_.size(),
                       [this, rate](std::size_t begin, std::size_t end,
                                    std::size_t) {
                         update_blocks(begin, end, rate);
                       });
  } else {
    update_blocks(0, blocks_.size(), rate);
  }
}

}  // namespace cf::optim
