// SamplePool — recycled sample buffers for the zero-copy data path.
//
// The seed pipeline allocated a fresh volume tensor for every sample it
// prefetched (~1 MB per 64^3 sub-volume, thousands of times per
// epoch). The pool closes that loop: the consumer hands each drained
// sample's buffer back, producers re-acquire it, and
// deserialize_sample_into() reuses the storage when the shape matches —
// so after a one-epoch warmup the steady state performs zero
// allocations per sample (a property tests/pipeline_test.cpp pins).
//
// Accounting lives in two process-wide obs gauges (OBSERVABILITY.md):
//
//   data/pipeline/pool_hits    cumulative acquires served by a
//                              recycled buffer
//   data/pipeline/pool_allocs  cumulative acquires that started from
//                              an empty sample (a fresh allocation on
//                              first deserialize)
//
// Totals are cumulative across every pool in the process (Gauge is
// last-write-wins, so per-pool counts would stomp each other).
#pragma once

#include <mutex>
#include <vector>

#include "data/sample.hpp"

namespace cf::data {

class SamplePool {
 public:
  SamplePool() = default;

  SamplePool(const SamplePool&) = delete;
  SamplePool& operator=(const SamplePool&) = delete;

  /// Pops a recycled sample (its volume storage intact, contents
  /// stale) or, when the free list is empty, returns an empty sample
  /// whose first deserialize allocates. Thread-safe.
  Sample acquire();

  /// Returns a sample's buffer to the free list. Samples without
  /// owning volume storage are dropped (nothing to recycle).
  /// Thread-safe.
  void release(Sample&& sample);

  std::size_t free_count() const;

 private:
  mutable std::mutex mutex_;
  std::vector<Sample> free_;
};

}  // namespace cf::data
