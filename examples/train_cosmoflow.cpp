// Full training driver: synchronous data-parallel Adam + LARC training
// from cfrecord shards, with checkpointing — the §III stack end to end.
//
//   ./examples/generate_dataset --out=/tmp/cosmoflow_data
//   ./examples/train_cosmoflow --data=/tmp/cosmoflow_data
//       [--ranks=4] [--epochs=8] [--base-lr=2e-3] [--min-lr=1e-4]
//       [--checkpoint=/tmp/cosmoflow.ckpt] [--optimizer=adamlarc|adam|sgd]
//       [--trace=trace.json] [--step-log=steps.jsonl]
//       [--no-overlap] [--no-memplan] [--bucket-kb=4096]
//
// --trace writes a chrome://tracing/Perfetto-loadable span trace,
// --step-log a JSONL record per training step (see OBSERVABILITY.md).
// Gradient aggregation is overlapped with backprop by default
// (bucketed async allreduce, bitwise identical to the synchronous
// path); --no-overlap is the escape hatch and --bucket-kb tunes the
// coalescing bucket size.
#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "core/checkpoint.hpp"
#include "core/topology.hpp"
#include "core/trainer.hpp"
#include "examples/example_utils.hpp"
#include "obs/telemetry.hpp"

namespace {

std::vector<std::string> find_shards(const std::string& dir,
                                     const std::string& prefix) {
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) == 0 &&
        name.find(".cfrecord") != std::string::npos) {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cf;
  const examples::Flags flags(
      argc, argv,
      "usage: train_cosmoflow --data=DIR [--preset=NAME] [--ranks=N] "
      "[--epochs=N] [--base-lr=F] [--min-lr=F] [--checkpoint=PATH] "
      "[--optimizer=adamlarc|adam|sgd] [--trace=PATH] "
      "[--step-log=PATH] [--no-overlap] [--no-memplan] [--bucket-kb=N]");

  const std::string dir = flags.get_string("data", "/tmp/cosmoflow_data");
  const auto train_shards = find_shards(dir, "train");
  const auto val_shards = find_shards(dir, "val");
  if (train_shards.empty() || val_shards.empty()) {
    std::fprintf(stderr,
                 "no train/val shards under %s — run generate_dataset "
                 "first\n",
                 dir.c_str());
    return 1;
  }

  const data::CfrecordSource train(train_shards);
  const data::CfrecordSource val(val_shards);
  std::printf("dataset: %zu training / %zu validation samples in %zu + "
              "%zu shards\n",
              train.size(), val.size(), train_shards.size(),
              val_shards.size());

  // Infer the input size from the first sample.
  const data::Sample first = train.make_reader()->get(0);
  const std::int64_t dhw = first.volume.shape()[1];

  core::TrainerConfig config;
  config.nranks = static_cast<int>(flags.get_int("ranks", 4));
  config.epochs = static_cast<int>(flags.get_int("epochs", 8));
  config.base_lr = flags.get_double("base-lr", 2e-3);
  config.min_lr = flags.get_double("min-lr", 1e-4);
  config.pipeline.io_threads = 2;
  config.overlap_comm = flags.get_int("no-overlap", 0) == 0;
  // Liveness-planned diff/scratch arenas; --no-memplan is the ablation
  // (bitwise identical, per-layer buffers).
  config.memplan = flags.get_int("no-memplan", 0) == 0;
  config.bucket_bytes =
      static_cast<std::size_t>(flags.get_int("bucket-kb", 4096)) * 1024;
  config.step_log_path = flags.get_string("step-log", "");
  const std::string trace_path = flags.get_string("trace", "");
  const std::string optimizer = flags.get_string("optimizer", "adamlarc");
  if (optimizer == "adam") {
    config.optimizer = core::OptimizerKind::kAdam;
  } else if (optimizer == "sgd") {
    config.optimizer = core::OptimizerKind::kSgdMomentum;
  }

  // --preset picks a stock topology by name (cosmoflow-128 for the
  // paper's canonical network); the default infers one from the data's
  // input size. Either way the network must match the shards.
  const std::string preset = flags.get_string("preset", "");
  core::TopologyConfig topology;
  try {
    topology = preset.empty() ? core::topology_for_input(dhw)
                              : core::preset_topology(preset);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  if (topology.input_dhw != dhw) {
    std::fprintf(stderr,
                 "preset %s expects %lld^3 input but the dataset holds "
                 "%lld^3 volumes\n",
                 topology.name.c_str(),
                 static_cast<long long>(topology.input_dhw),
                 static_cast<long long>(dhw));
    return 1;
  }
  {
    dnn::Network probe = core::build_network(topology, 0);
    std::printf("training %s (%lld params, %.2f Gflop/sample) on %d "
                "thread-ranks (global batch %d), optimizer %s\n",
                topology.name.c_str(),
                static_cast<long long>(probe.param_count()),
                static_cast<double>(probe.flops().total()) / 1e9,
                config.nranks, config.nranks, optimizer.c_str());
  }
  core::Trainer trainer(topology, train, val, config);

#if COSMOFLOW_TELEMETRY_ENABLED
  obs::Tracer::global().clear();
#endif
  std::vector<core::EpochStats> stats;
  try {
    stats = trainer.run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "training failed: %s\n", e.what());
    return 1;
  }
  for (const core::EpochStats& epoch : stats) {
    std::printf("epoch %3d  train %.5f  val %.5f  %.2fs  "
                "(step mean %.1f ms)\n",
                epoch.epoch, epoch.train_loss, epoch.val_loss,
                epoch.epoch_seconds, epoch.step_time.mean() * 1e3);
  }

  const auto breakdown = trainer.breakdown();
  std::printf("\nstage breakdown (rank 0, %.1fs total):\n", breakdown.total);
  for (const auto& [category, seconds] : breakdown.seconds) {
    std::printf("  %-11s %8.2fs\n", category.c_str(), seconds);
  }
  if (config.overlap_comm) {
    std::printf("comm overlap: %.0f%% of allreduce time hidden behind "
                "backprop\n",
                breakdown.overlap_fraction * 100.0);
  }

  if (!trace_path.empty()) {
#if COSMOFLOW_TELEMETRY_ENABLED
    if (obs::Tracer::global().write_chrome_trace(trace_path)) {
      std::printf("\ntrace written to %s (open in chrome://tracing or "
                  "https://ui.perfetto.dev)\n",
                  trace_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write trace to %s\n",
                   trace_path.c_str());
      return 1;
    }
#else
    std::printf("\n--trace ignored: built with COSMOFLOW_TELEMETRY=OFF\n");
#endif
  }
  if (!config.step_log_path.empty()) {
    std::printf("step log written to %s\n", config.step_log_path.c_str());
  }

  const std::string ckpt =
      flags.get_string("checkpoint", "/tmp/cosmoflow.ckpt");
  core::save_checkpoint(ckpt, trainer.topology().name, trainer.network(0));
  std::printf("\ncheckpoint written to %s\n", ckpt.c_str());
  std::printf("next: ./examples/predict_params --data=%s "
              "--checkpoint=%s\n",
              dir.c_str(), ckpt.c_str());
  return 0;
}
