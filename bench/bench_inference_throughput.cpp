// Concurrent inference throughput over one shared Network — the
// payoff of the model/stream split (DESIGN.md §2.3).
//
// One immutable Network holds the weights; S streams each own an
// inference-mode ExecContext (ping-pong activations + staging
// workspace, no backward state) and a private worker pool, and hammer
// forward passes concurrently. Because the replica is shared, the
// weight arena is read by every stream and copied by none — aggregate
// throughput should scale with the stream count until the cores run
// out, and the per-stream memory cost is the lean inference footprint
// rather than a full training replica.
//
// The sweep runs 1..--streams streams (powers of two) and reports
// aggregate samples/s plus the speedup over the single-stream run;
// every stream's outputs are checked bitwise against a serial
// reference, so a hidden shared mutable buffer fails loudly rather
// than quietly corrupting the numbers.
//
//   ./bench_inference_throughput [--dhw=32] [--streams=4]
//       [--threads-per-stream=1] [--reps=16]
//       [--json=BENCH_inference.json]
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/topology.hpp"
#include "obs/jsonl.hpp"
#include "runtime/rng.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/timer.hpp"
#include "tensor/tensor_ops.hpp"

#ifndef COSMOFLOW_GIT_SHA
#define COSMOFLOW_GIT_SHA "unknown"
#endif

int main(int argc, char** argv) {
  using namespace cf;
  std::int64_t dhw = 32;
  int max_streams = 4;
  int threads_per_stream = 1;
  int reps = 16;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--dhw=", 6) == 0) dhw = std::atoll(argv[i] + 6);
    if (std::strncmp(argv[i], "--streams=", 10) == 0) {
      max_streams = std::atoi(argv[i] + 10);
    }
    if (std::strncmp(argv[i], "--threads-per-stream=", 21) == 0) {
      threads_per_stream = std::atoi(argv[i] + 21);
    }
    if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      reps = std::atoi(argv[i] + 7);
    }
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }

  std::printf("=== bench_inference_throughput: concurrent streams over "
              "one shared Network ===\n");
  std::printf("(cosmoflow_scaled(%lld), %d reps/stream, %d worker "
              "thread(s) per stream, %u hardware threads)\n\n",
              static_cast<long long>(dhw), reps, threads_per_stream,
              std::thread::hardware_concurrency());

  dnn::Network net = core::build_network(core::cosmoflow_scaled(dhw), 7);
  {
    dnn::ExecContext probe = net.make_context(dnn::ExecMode::kInference);
    std::printf("per-stream context: %.2f MB total (%.2f MB planned "
                "training footprint)\n\n",
                static_cast<double>(probe.total_bytes()) / 1e6,
                static_cast<double>(net.peak_tensor_bytes()) / 1e6);
  }

  // One distinct input per stream; the serial reference fixes the
  // expected bits for each.
  std::vector<tensor::Tensor> inputs;
  std::vector<std::vector<float>> expected;
  {
    dnn::ExecContext ctx = net.make_context(dnn::ExecMode::kInference);
    runtime::ThreadPool pool(
        static_cast<std::size_t>(threads_per_stream));
    for (int s = 0; s < max_streams; ++s) {
      runtime::Rng rng(41, static_cast<std::uint64_t>(s));
      tensor::Tensor input(net.input_shape());
      tensor::fill_normal(input, rng, 0.0f, 1.0f);
      expected.push_back(ctx.forward(input, pool).to_vector());
      inputs.push_back(std::move(input));
    }
  }

  // Timed sweep: S streams, each forwards its input `reps` times.
  // Contexts and worker pools are built before the clock starts — the
  // steady-state sample rate is the quantity of interest, not the
  // one-time arena setup.
  const auto run_streams = [&](int streams) {
    std::atomic<int> mismatches{0};
    std::vector<dnn::ExecContext> ctxs;
    std::vector<std::unique_ptr<runtime::ThreadPool>> pools;
    ctxs.reserve(static_cast<std::size_t>(streams));
    for (int s = 0; s < streams; ++s) {
      ctxs.push_back(net.make_context(dnn::ExecMode::kInference));
      pools.push_back(std::make_unique<runtime::ThreadPool>(
          static_cast<std::size_t>(threads_per_stream)));
    }
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(streams));
    const runtime::Stopwatch watch;
    for (int s = 0; s < streams; ++s) {
      threads.emplace_back([&, s] {
        for (int r = 0; r < reps; ++r) {
          const auto out =
              ctxs[s].forward(inputs[s], *pools[s]).to_vector();
          if (tensor::max_abs_diff(out, expected[s]) != 0.0f) {
            mismatches.fetch_add(1);
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    const double seconds = watch.elapsed_seconds();
    if (mismatches.load() != 0) {
      throw std::runtime_error(
          "concurrent stream output diverged from serial reference");
    }
    return static_cast<double>(streams) * reps / seconds;
  };

  run_streams(1);  // warm-up: pages in weights and code
  std::printf("%8s | %14s | %8s\n", "streams", "samples/s", "speedup");
  std::vector<std::pair<int, double>> results;
  double base_sps = 0.0;
  for (int streams = 1; streams <= max_streams; streams *= 2) {
    const double sps = run_streams(streams);
    if (streams == 1) base_sps = sps;
    results.emplace_back(streams, sps);
    std::printf("%8d | %14.2f | %7.2fx\n", streams, sps,
                base_sps > 0.0 ? sps / base_sps : 0.0);
  }

  if (!json_path.empty()) {
    obs::JsonObject rec;
    rec.field("bench", "inference_throughput")
        .field("commit", COSMOFLOW_GIT_SHA)
        .field("dhw", static_cast<std::int64_t>(dhw))
        .field("reps", reps)
        .field("threads_per_stream", threads_per_stream)
        .field("hardware_threads",
               static_cast<std::int64_t>(
                   std::thread::hardware_concurrency()));
    for (const auto& [streams, sps] : results) {
      rec.field("sps_streams_" + std::to_string(streams), sps);
    }
    rec.field("speedup_max_streams",
              base_sps > 0.0 ? results.back().second / base_sps : 0.0);
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::printf("FAILED to write json to %s\n", json_path.c_str());
      return 1;
    }
    const std::string line = rec.str() + "\n";
    std::fwrite(line.data(), 1, line.size(), out);
    std::fclose(out);
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  std::printf("\nshape target: aggregate samples/s grows with the stream "
              "count (shared weights, zero per-stream copies) until the "
              "machine runs out of cores; on a single-core machine the "
              "target degrades to ~flat (time-sliced streams, no "
              "concurrency overhead).\n");
  return 0;
}
