#include "serve/server.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "obs/telemetry.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/timer.hpp"

namespace cf::serve {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

ServerConfig sanitized(ServerConfig config) {
  if (config.workers == 0) config.workers = 1;
  // threads_per_worker == 0 is meaningful (cost-model auto) and is
  // resolved in the Server constructor once the network is known.
  if (config.max_batch == 0) config.max_batch = 1;
  if (config.max_delay_seconds < 0.0) config.max_delay_seconds = 0.0;
  if (config.queue_capacity == 0) config.queue_capacity = 1;
  return config;
}

}  // namespace

// --- BatchQueue ------------------------------------------------------

void Server::BatchQueue::push(Batch&& batch) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return;  // drained shutdown never reaches here
    items_.push_back(std::move(batch));
  }
  not_empty_.notify_one();
}

bool Server::BatchQueue::pop(Batch* out) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return false;  // closed and drained
    *out = std::move(items_.front());
    items_.pop_front();
  }
  not_full_.notify_one();
  return true;
}

void Server::BatchQueue::close() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

// --- Server ----------------------------------------------------------

Server::Server(std::shared_ptr<const dnn::Network> network,
               ServerConfig config)
    : network_(std::move(network)),
      config_(sanitized(std::move(config))),
      queue_(config_.queue_capacity,
             &obs::Registry::global().gauge(config_.metric_prefix +
                                            "/queue_depth")),
      batch_queue_(config_.workers) {
  if (network_ == nullptr || !network_->finalized()) {
    throw std::invalid_argument(
        "serve::Server: requires a finalized Network");
  }
  if (!network_->precision_prepared(config_.precision)) {
    throw std::invalid_argument(
        std::string("serve::Server: network not prepared for ") +
        std::string(dnn::to_string(config_.precision)) +
        " (call prepare_inference_precision before constructing)");
  }
  if (config_.threads_per_worker == 0) {
    // Cost-model auto mode (DESIGN.md §2.6): split the machine's
    // hardware-thread budget across the worker streams and take the
    // model's per-layer grains. Resolved here, before any worker thread
    // starts, so worker_loop sees a concrete thread count.
    const dnn::CostModel cost_model(*network_);
    intraop_plan_ = cost_model.choose(
        runtime::ThreadPool::default_num_threads(), config_.workers);
    config_.threads_per_worker = intraop_plan_.threads_per_stream;
    intraop_auto_ = true;
  }
  auto& reg = obs::Registry::global();
  // Each server instance measures from zero, like a Pipeline does for
  // its metric_prefix.
  reg.reset_prefix(config_.metric_prefix + "/");
  accepted_ = &reg.counter(config_.metric_prefix + "/accepted");
  rejected_ = &reg.counter(config_.metric_prefix + "/rejected");
  completed_ = &reg.counter(config_.metric_prefix + "/completed");
  batches_ = &reg.counter(config_.metric_prefix + "/batches");
  batch_size_gauge_ = &reg.gauge(config_.metric_prefix + "/batch_size");
  batch_fill_stat_ = &reg.stat(config_.metric_prefix + "/batch_fill");
  queue_wait_stat_ = &reg.stat(config_.metric_prefix + "/queue_wait");
  compute_stat_ = &reg.stat(config_.metric_prefix + "/compute");
  latency_hist_ = &reg.histogram(config_.metric_prefix + "/latency");
  reg.gauge(config_.metric_prefix + "/workers")
      .set(static_cast<double>(config_.workers));
  reg.gauge(config_.metric_prefix + "/threads_per_worker")
      .set(static_cast<double>(config_.threads_per_worker));
  reg.gauge(config_.metric_prefix + "/precision")
      .set(static_cast<double>(config_.precision));

  former_ = std::thread(&Server::former_loop, this);
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back(&Server::worker_loop, this, i);
  }
}

Server::~Server() { shutdown(); }

SubmitStatus Server::submit(tensor::Tensor input,
                            std::future<InferenceResult>* result) {
  if (input.shape() != network_->input_shape()) {
    throw std::invalid_argument("serve::Server::submit: input shape " +
                                input.shape().to_string() + ", expected " +
                                network_->input_shape().to_string());
  }
  Request request;
  request.id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  request.input = std::move(input);
  request.submit_time = Clock::now();
  std::future<InferenceResult> future = request.promise.get_future();

  const SubmitStatus status = queue_.try_push(std::move(request));
  if (status == SubmitStatus::kAccepted) {
    accepted_->add();
    if (result != nullptr) *result = std::move(future);
  } else if (status == SubmitStatus::kOverloaded) {
    rejected_->add();
  }
  return status;
}

void Server::former_loop() {
  for (;;) {
    // Idle until traffic arrives (or the queue closes and drains).
    Request first;
    if (queue_.pop(&first) == RequestQueue::PopStatus::kClosed) break;

    Batch batch;
    batch.id = next_batch_id_++;
    batch.requests.reserve(config_.max_batch);
    batch.requests.push_back(std::move(first));
    {
      // The span covers forming only, not the idle wait above.
      CF_TRACE_SCOPE("serve/form", "serve");
      const Clock::time_point deadline =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(
                                 config_.max_delay_seconds));
      while (batch.requests.size() < config_.max_batch) {
        Request request;
        if (queue_.pop(&request, deadline) !=
            RequestQueue::PopStatus::kItem) {
          break;  // deadline flush, or closed-and-drained flush
        }
        batch.requests.push_back(std::move(request));
      }
    }
    batch_queue_.push(std::move(batch));
  }
}

void Server::worker_loop(std::size_t worker_index) {
  // Per-stream state, built once: the lean forward-only context plus a
  // private worker pool. The Network is shared and read-only.
  dnn::ExecContext ctx =
      intraop_auto_
          ? network_->make_context(dnn::ExecMode::kInference,
                                   config_.precision, intraop_plan_)
          : network_->make_context(dnn::ExecMode::kInference,
                                   config_.precision);
  runtime::ThreadPool pool(config_.threads_per_worker);

  Batch batch;
  while (batch_queue_.pop(&batch)) {
    CF_TRACE_SCOPE("serve/batch", "serve");
    const Clock::time_point dispatch = Clock::now();
    const std::size_t batch_size = batch.requests.size();
    batches_->add();
    batch_size_gauge_->set(static_cast<double>(batch_size));
    batch_fill_stat_->add(static_cast<double>(batch_size));

    for (Request& request : batch.requests) {
      InferenceResult result;
      result.request_id = request.id;
      result.batch_id = batch.id;
      result.batch_size = batch_size;
      result.worker = worker_index;
      result.queue_seconds =
          seconds_between(request.submit_time, dispatch);
      try {
        const runtime::Stopwatch compute_watch;
        {
          CF_TRACE_SCOPE("serve/infer", "serve");
          // fp32/int8w inference forward reads request.input in place
          // (no staging copy — DESIGN.md §2.7); the request owns its
          // tensor for the whole call, so the aliasing contract holds.
          result.output = ctx.forward(request.input, pool).to_vector();
        }
        result.compute_seconds = compute_watch.elapsed_seconds();
        result.total_seconds =
            seconds_between(request.submit_time, Clock::now());
        queue_wait_stat_->add(result.queue_seconds);
        compute_stat_->add(result.compute_seconds);
        latency_hist_->add(result.total_seconds);
        completed_->add();
        request.promise.set_value(std::move(result));
      } catch (...) {
        request.promise.set_exception(std::current_exception());
      }
    }
  }
}

void Server::shutdown() {
  const std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (stopped_) return;
  // Stop admission; the former drains whatever was accepted into final
  // (possibly underfull) batches and exits, then the workers drain the
  // batch queue — every accepted request resolves its future.
  queue_.close();
  if (former_.joinable()) former_.join();
  batch_queue_.close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  stopped_ = true;
}

}  // namespace cf::serve
