#include "core/trainer.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

#include "cosmo/simulation.hpp"
#include "data/augment.hpp"
#include "dnn/cost_model.hpp"
#include "dnn/loss.hpp"
#include "obs/telemetry.hpp"

namespace cf::core {

using tensor::Tensor;

Trainer::Trainer(TopologyConfig topology, const data::SampleSource& train,
                 const data::SampleSource& val, TrainerConfig config)
    : topology_(std::move(topology)),
      config_(config),
      train_(train),
      val_(val) {
  if (config_.nranks <= 0 || config_.epochs <= 0) {
    throw std::invalid_argument("Trainer: nranks and epochs must be > 0");
  }
  if (topology_.outputs > 3) {
    throw std::invalid_argument(
        "Trainer: samples carry 3 targets; topology.outputs must be <= 3");
  }
  steps_per_epoch_ = static_cast<std::int64_t>(train.size()) /
                     config_.nranks;
  if (steps_per_epoch_ == 0) {
    throw std::invalid_argument(
        "Trainer: fewer training samples than ranks (data-parallel "
        "training needs substantially more samples than ranks, §VII-B)");
  }
  networks_.resize(static_cast<std::size_t>(config_.nranks));
  contexts_.resize(static_cast<std::size_t>(config_.nranks));
}

std::vector<EpochStats> Trainer::run() {
  if (ran_) throw std::logic_error("Trainer::run: called twice");
  ran_ = true;
  stats_.assign(static_cast<std::size_t>(config_.epochs), EpochStats{});
  if (!config_.step_log_path.empty()) {
    step_log_ = std::make_unique<obs::JsonlSink>(config_.step_log_path);
    if (!step_log_->ok()) {
      throw std::runtime_error("Trainer: cannot open step log " +
                               config_.step_log_path);
    }
  }

  CF_TRACE_SCOPE("trainer/run", "train");
  comm::MlComm comm(config_.nranks, config_.comm);
  const runtime::Stopwatch total_watch;
  comm.run([&](comm::RankHandle& rank) { rank_body(rank, train_, val_); });
  train_walltime_ = total_watch.elapsed_seconds();
  return stats_;
}

void Trainer::rank_body(comm::RankHandle& rank,
                        const data::SampleSource& train,
                        const data::SampleSource& val) {
  const int r = rank.rank();
  const std::size_t threads_per_rank = resolved_threads_per_rank();
  runtime::ThreadPool pool(threads_per_rank);

  obs::Registry& registry = obs::Registry::global();
  obs::Stat& opt_stat =
      registry.stat("trainer/optimizer/r" + std::to_string(r));
  obs::Stat& step_stat = registry.stat("trainer/step/r" + std::to_string(r));
  opt_stat.reset();
  step_stat.reset();

  // Build this rank's replica; every rank uses the same init seed and
  // rank 0 broadcasts anyway (the Algorithm 2 preamble).
  auto net = std::make_unique<dnn::Network>(
      build_network(topology_, config_.seed, config_.fuse_eltwise,
                    config_.memplan));
  dnn::Network& network = *net;
  networks_[static_cast<std::size_t>(r)] = std::move(net);
  // This rank's execution stream: all per-step mutable state
  // (activations, diffs, scratch, gradients) lives here; the network
  // stays immutable except for the optimizer's weight writes.
  auto ctx_ptr = std::make_unique<dnn::ExecContext>(
      network.make_context(dnn::ExecMode::kTraining));
  dnn::ExecContext& ctx = *ctx_ptr;
  if (config_.threads_per_rank == 0) {
    // Auto mode: one stream per rank is fixed by the data-parallel
    // layout, so the cost model spends the whole per-rank budget on
    // intra-op threads and tunes the per-layer grains for that width.
    // Grains are bitwise-neutral, and every rank derives the identical
    // plan (same geometry, same budget), so replicas stay bit-equal.
    const dnn::CostModel cost_model(network, {}, /*training=*/true);
    ctx.apply_intraop(cost_model.choose(threads_per_rank,
                                        /*max_streams=*/1));
  }
  contexts_[static_cast<std::size_t>(r)] = std::move(ctx_ptr);

  const std::int64_t decay_epochs =
      config_.decay_epochs > 0 ? config_.decay_epochs : config_.epochs;
  const auto schedule = std::make_shared<optim::PolynomialDecay>(
      config_.base_lr, config_.min_lr, decay_epochs * steps_per_epoch_);

  std::unique_ptr<optim::LarcAdam> larc_opt;
  std::unique_ptr<optim::SgdMomentum> sgd_opt;
  switch (config_.optimizer) {
    case OptimizerKind::kAdamLarc:
      larc_opt = std::make_unique<optim::LarcAdam>(
          ctx.params(), config_.adam, config_.larc, schedule);
      break;
    case OptimizerKind::kAdam: {
      optim::LarcConfig pass_through;
      // trust >= any norm ratio with clip keeps eta† = 1: plain Adam.
      pass_through.trust_coefficient = 1e12;
      pass_through.clip = true;
      larc_opt = std::make_unique<optim::LarcAdam>(
          ctx.params(), config_.adam, pass_through, schedule);
      break;
    }
    case OptimizerKind::kSgdMomentum:
      sgd_opt = std::make_unique<optim::SgdMomentum>(
          ctx.params(), config_.sgd_momentum, schedule);
      break;
  }
  const auto optimizer_step = [&] {
    if (larc_opt) {
      larc_opt->step(pool);
    } else {
      sgd_opt->step(pool);
    }
  };

  // Pipelines carry per-rank metric prefixes so each rank's unhidden
  // I/O wait is its own registry Stat (`data/pipeline/r<r>/train/wait`).
  data::PipelineConfig train_pipe_cfg = config_.pipeline;
  train_pipe_cfg.metric_prefix =
      config_.pipeline.metric_prefix + "/r" + std::to_string(r) + "/train";
  data::PipelineConfig val_pipe_cfg = config_.pipeline;
  val_pipe_cfg.metric_prefix =
      config_.pipeline.metric_prefix + "/r" + std::to_string(r) + "/val";
  data::Pipeline train_pipeline(train, train_pipe_cfg);
  data::Pipeline val_pipeline(val, val_pipe_cfg);

  // This rank's cumulative stage seconds by category — the quantity
  // breakdown() reports for rank 0. Step/epoch JSONL records log
  // *deltas* of these totals, so summing a rank's records telescopes
  // back to the totals exactly.
  const auto category_totals = [&] {
    // Seed the dnn category keys: the fusion pass removes standalone
    // activation layers, but the key set — and so the step-log schema
    // and breakdown() — must not depend on fusion.
    std::map<std::string, double> totals = {{"conv", 0.0},
                                            {"pool", 0.0},
                                            {"dense", 0.0},
                                            {"activation", 0.0},
                                            {"reorder", 0.0}};
    for (const dnn::LayerProfile& profile : ctx.profiles()) {
      totals[profile.kind] += profile.fwd.total() +
                              profile.bwd_data.total() +
                              profile.bwd_weights.total();
    }
    totals["optimizer"] = opt_stat.snapshot().total();
    totals["comm"] = rank.comm_time().total();
    totals["comm_hidden"] = rank.hidden_comm_time().total();
    totals["io_wait"] = train_pipeline.wait_time().total();
    return totals;
  };
  // Baseline captured before the initial broadcast so the first step's
  // comm delta charges for it.
  std::map<std::string, double> prev_totals =
      step_log_ ? category_totals() : std::map<std::string, double>{};

  // Every replica's parameters live in one contiguous arena, so the
  // initial broadcast needs no staging copy.
  rank.broadcast(network.param_arena(), /*root=*/0);

  // Overlap machinery: ready gradient segments extend [bucket_begin,
  // bucket_end) downward (backward visits layers last to first and the
  // arena is laid out in layer order); a bucket is posted once the
  // region reaches bucket_elems.
  const std::span<float> grads = ctx.grad_arena();
  const std::size_t bucket_elems =
      std::max<std::size_t>(1, config_.bucket_bytes / sizeof(float));
  std::vector<comm::PendingReduce> pending;
  pending.reserve(16);

  const std::int64_t n_outputs = network.output_shape()[0];
  std::vector<float> target(static_cast<std::size_t>(n_outputs));
  Tensor dloss(network.output_shape());

  runtime::Rng augment_rng(config_.seed ^ 0xA46D454E54ULL,
                           static_cast<std::uint64_t>(r));

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    CF_TRACE_SCOPE("train/epoch", "train");
    const runtime::Stopwatch epoch_watch;
    train_pipeline.start_epoch(data::epoch_indices_for_rank(
        train.size(), config_.nranks, r,
        config_.seed + static_cast<std::uint64_t>(epoch) + 1,
        config_.shuffle));

    double loss_sum = 0.0;
    std::int64_t steps = 0;
    data::Sample sample;
    while (steps < steps_per_epoch_ && train_pipeline.next(sample)) {
      CF_TRACE_SCOPE("train/step", "train");
      const runtime::Stopwatch step_watch;
      // Stage the sample straight into the context's input buffer,
      // with the orientation folded into that single copy — no
      // clone-per-step, no second staging memcpy inside forward. The
      // staged bytes match the seed path (orient in place, then copy)
      // exactly, so the trajectory is bitwise-unchanged.
      const std::span<float> staged = ctx.input_staging();
      if (static_cast<std::size_t>(sample.volume.size()) !=
          staged.size()) {
        throw std::invalid_argument(
            "Trainer: sample volume does not match network input shape");
      }
      if (config_.augment) {
        data::orient_volume_into(
            sample.volume, staged,
            static_cast<std::uint32_t>(
                augment_rng.uniform_index(data::kOrientationCount)));
      } else {
        std::memcpy(staged.data(), sample.volume.data(),
                    staged.size() * sizeof(float));
      }
      // Local gradients (Algorithm 2, line 3).
      const Tensor& output = ctx.forward_staged(pool);
      for (std::int64_t i = 0; i < n_outputs; ++i) {
        target[static_cast<std::size_t>(i)] =
            sample.target[static_cast<std::size_t>(i)];
      }
      const double loss = dnn::mse_loss(output.values(), target);
      loss_sum += loss;
      dnn::mse_loss_grad(output.values(), target, dloss.values());
      ctx.zero_grads();

      // Global gradient averaging (line 4) — either launched in
      // buckets during backward (grad_ready fires tail-first as each
      // layer's weight gradients finish) and drained after, or one
      // synchronous in-place allreduce over the arena. No flat-vector
      // staging copies either way.
      if (config_.overlap_comm) {
        pending.clear();
        std::size_t bucket_begin = grads.size();
        std::size_t bucket_end = grads.size();
        ctx.backward(dloss, pool, [&](std::size_t layer) {
          bucket_begin = network.segment_offset(layer);
          if (bucket_end - bucket_begin >= bucket_elems) {
            pending.push_back(rank.allreduce_average_async(grads.subspan(
                bucket_begin, bucket_end - bucket_begin)));
            bucket_end = bucket_begin;
          }
        });
        if (bucket_end > bucket_begin) {
          pending.push_back(rank.allreduce_average_async(
              grads.subspan(bucket_begin, bucket_end - bucket_begin)));
        }
        for (comm::PendingReduce& p : pending) rank.wait(p);
      } else {
        ctx.backward(dloss, pool);
        rank.allreduce_average(grads);
      }

      // Identical model update on every replica (line 5).
      {
        CF_TRACE_SCOPE("train/optimizer", "optim");
        const obs::ScopedStatTimer opt_timer(opt_stat);
        optimizer_step();
      }
      ++steps;
      const double step_seconds = step_watch.elapsed_seconds();
      step_stat.add(step_seconds);
      if (step_log_) {
        std::map<std::string, double> totals = category_totals();
        obs::JsonObject rec;
        rec.field("phase", "step")
            .field("epoch", epoch)
            .field("step", static_cast<std::int64_t>(steps - 1))
            .field("rank", r)
            .field("loss", loss)
            .field("lr", larc_opt ? larc_opt->last_lr()
                                  : schedule->lr(sgd_opt->steps_taken() - 1))
            .field("sec_step", step_seconds);
        for (const auto& [category, total] : totals) {
          rec.field("sec_" + category, total - prev_totals[category]);
        }
        // Standalone element-wise sweep time; 0 when fused (the eltwise
        // work then lives inside sec_conv / sec_dense).
        rec.field("sec_eltwise",
                  totals.at("activation") - prev_totals["activation"]);
        rec.field("activation_bytes",
                  static_cast<std::int64_t>(network.activation_bytes()))
            .field("diff_arena_bytes",
                   static_cast<std::int64_t>(network.diff_arena_bytes()))
            .field("scratch_bytes",
                   static_cast<std::int64_t>(network.scratch_bytes()));
        step_log_->write(rec);
        prev_totals = std::move(totals);
      }
    }
    const double train_loss =
        rank.allreduce_average_scalar(loss_sum /
                                      static_cast<double>(steps));

    // Validation loop: forward + loss only, averaged across ranks.
    double val_sum = 0.0;
    std::int64_t val_steps = 0;
    {
      CF_TRACE_SCOPE("train/validate", "train");
      val_pipeline.start_epoch(data::epoch_indices_for_rank(
          val.size(), config_.nranks, r, /*epoch_seed=*/0,
          /*shuffle=*/false));
      while (val_pipeline.next(sample)) {
        const std::span<float> staged = ctx.input_staging();
        if (static_cast<std::size_t>(sample.volume.size()) !=
            staged.size()) {
          throw std::invalid_argument(
              "Trainer: sample volume does not match network input "
              "shape");
        }
        std::memcpy(staged.data(), sample.volume.data(),
                    staged.size() * sizeof(float));
        const Tensor& output = ctx.forward_staged(pool);
        for (std::int64_t i = 0; i < n_outputs; ++i) {
          target[static_cast<std::size_t>(i)] =
              sample.target[static_cast<std::size_t>(i)];
        }
        val_sum += dnn::mse_loss(output.values(), target);
        ++val_steps;
      }
    }
    const double val_loss = rank.allreduce_average_scalar(
        val_steps > 0 ? val_sum / static_cast<double>(val_steps) : 0.0);

    rank.barrier();  // epoch walltime measured across all ranks
    if (r == 0) {
      EpochStats& es = stats_[static_cast<std::size_t>(epoch)];
      es.epoch = epoch;
      es.train_loss = train_loss;
      es.val_loss = val_loss;
      es.epoch_seconds = epoch_watch.elapsed_seconds();
      es.step_time = step_stat.snapshot();
      step_stat.reset();
      if (step_log_) {
        // The epoch record carries the residual deltas (validation
        // forward passes, scalar reductions) so the record stream
        // telescopes to the cumulative totals with nothing missing.
        std::map<std::string, double> totals = category_totals();
        obs::JsonObject rec;
        rec.field("phase", "epoch")
            .field("epoch", epoch)
            .field("rank", r)
            .field("train_loss", train_loss)
            .field("val_loss", val_loss)
            .field("epoch_seconds", es.epoch_seconds);
        for (const auto& [category, total] : totals) {
          rec.field("sec_" + category, total - prev_totals[category]);
        }
        rec.field("sec_eltwise",
                  totals.at("activation") - prev_totals["activation"]);
        step_log_->write(rec);
        prev_totals = std::move(totals);
      }
    }
  }

  if (r == 0) {
    // Snapshot the registry-backed stats so breakdown() keeps its
    // answer even if a later run registers over the same names.
    optimizer_time_ = opt_stat.snapshot();
    io_wait_time_ = train_pipeline.wait_time();
    comm_time_ = rank.comm_time();
    exposed_comm_time_ = rank.exposed_comm_time();
    hidden_comm_time_ = rank.hidden_comm_time();
  }
}

dnn::Network& Trainer::network(int rank) {
  if (!ran_) throw std::logic_error("Trainer::network: run() first");
  auto& net = networks_.at(static_cast<std::size_t>(rank));
  if (!net) throw std::logic_error("Trainer::network: rank not trained");
  return *net;
}

dnn::ExecContext& Trainer::context(int rank) {
  if (!ran_) throw std::logic_error("Trainer::context: run() first");
  auto& ctx = contexts_.at(static_cast<std::size_t>(rank));
  if (!ctx) throw std::logic_error("Trainer::context: rank not trained");
  return *ctx;
}

std::size_t Trainer::resolved_threads_per_rank() const {
  if (config_.threads_per_rank != 0) return config_.threads_per_rank;
  const std::size_t hw = runtime::ThreadPool::default_num_threads();
  return std::max<std::size_t>(
      1, hw / static_cast<std::size_t>(std::max(1, config_.nranks)));
}

runtime::ThreadPool& Trainer::inference_pool() {
  if (!inference_pool_) {
    inference_pool_ =
        std::make_unique<runtime::ThreadPool>(resolved_threads_per_rank());
  }
  return *inference_pool_;
}

dnn::ExecContext& Trainer::inference_context() {
  if (!inference_ctx_) {
    inference_ctx_ = std::make_unique<dnn::ExecContext>(
        network(0).make_context(dnn::ExecMode::kInference));
    if (config_.threads_per_rank == 0) {
      const dnn::CostModel cost_model(network(0));
      inference_ctx_->apply_intraop(cost_model.choose(
          resolved_threads_per_rank(), /*max_streams=*/1));
    }
  }
  return *inference_ctx_;
}

std::vector<float> Trainer::predict(const Tensor& volume) {
  const Tensor& out = inference_context().forward(volume, inference_pool());
  return out.to_vector();
}

std::vector<Prediction> Trainer::evaluate(const data::SampleSource& source) {
  dnn::Network& net = network(0);
  if (net.output_shape()[0] != 3) {
    throw std::logic_error(
        "Trainer::evaluate: physical-unit evaluation needs 3 outputs");
  }
  runtime::ThreadPool& pool = inference_pool();
  dnn::ExecContext& ctx = inference_context();
  const auto reader = source.make_reader();
  std::vector<Prediction> predictions;
  predictions.reserve(source.size());
  for (std::size_t i = 0; i < source.size(); ++i) {
    const data::Sample sample = reader->get(i);
    const Tensor& out = ctx.forward(sample.volume, pool);
    const cosmo::CosmoParams pred = cosmo::denormalize_params(
        {out[0], out[1], out[2]});
    const cosmo::CosmoParams truth = cosmo::denormalize_params(
        {sample.target[0], sample.target[1], sample.target[2]});
    Prediction p;
    p.predicted = {pred.omega_m, pred.sigma8, pred.ns};
    p.truth = {truth.omega_m, truth.sigma8, truth.ns};
    predictions.push_back(p);
  }
  return predictions;
}

CategoryBreakdown Trainer::breakdown() const {
  if (!ran_) throw std::logic_error("Trainer::breakdown: run() first");
  CategoryBreakdown breakdown;
  // Same fixed dnn category keys as the per-step totals (the JSONL
  // records must telescope to this map key-for-key, fused or not).
  breakdown.seconds = {{"conv", 0.0},
                       {"pool", 0.0},
                       {"dense", 0.0},
                       {"activation", 0.0},
                       {"reorder", 0.0}};
  const dnn::ExecContext& ctx = *contexts_.front();
  for (const dnn::LayerProfile& profile : ctx.profiles()) {
    breakdown.seconds[profile.kind] += profile.fwd.total() +
                                       profile.bwd_data.total() +
                                       profile.bwd_weights.total();
  }
  breakdown.seconds["optimizer"] = optimizer_time_.total();
  breakdown.seconds["comm"] = comm_time_.total();
  breakdown.seconds["comm_hidden"] = hidden_comm_time_.total();
  breakdown.seconds["io_wait"] = io_wait_time_.total();
  breakdown.total = train_walltime_;
  const double hidden = hidden_comm_time_.total();
  const double exposed = exposed_comm_time_.total();
  breakdown.overlap_fraction =
      hidden + exposed > 0.0 ? hidden / (hidden + exposed) : 0.0;
  return breakdown;
}

}  // namespace cf::core
