#include "core/dataset_gen.hpp"

#include <cmath>
#include <stdexcept>

namespace cf::core {

GeneratedDataset generate_dataset(const DatasetGenConfig& config,
                                  runtime::ThreadPool& pool) {
  if (config.simulations == 0) {
    throw std::invalid_argument("generate_dataset: need >= 1 simulation");
  }
  const cosmo::Simulation sim(config.sim);
  const auto params =
      cosmo::sample_parameters(config.simulations, config.seed,
                               config.ranges);

  // Zero-center the log1p counts around the mean-density level.
  const double mean_count =
      std::pow(static_cast<double>(config.sim.grid.n) /
                   static_cast<double>(config.sim.voxels),
               3.0);
  const float offset = std::log1p(static_cast<float>(mean_count));

  std::vector<data::Sample> all;
  std::vector<std::size_t> groups;
  all.reserve(config.simulations * 8);
  groups.reserve(config.simulations * 8);

  for (std::size_t s = 0; s < config.simulations; ++s) {
    cosmo::Universe universe =
        sim.run(params[s], config.seed * 1000003ULL + s, pool);
    const auto target = cosmo::normalize_params(params[s], config.ranges);
    for (tensor::Tensor& octant : cosmo::split_octants(universe.voxels)) {
      cosmo::log1p_in_place(octant);
      cosmo::center_in_place(octant, offset);
      data::Sample sample;
      sample.volume = std::move(octant);
      sample.target = target;
      all.push_back(std::move(sample));
      groups.push_back(s);
    }
  }

  const data::SplitIndices split = data::split_by_group(
      groups, config.val_fraction, config.test_fraction, config.seed);

  GeneratedDataset dataset;
  dataset.simulation_params = params;
  dataset.train.reserve(split.train.size() *
                        (config.duplicate_training ? 2 : 1));
  for (const std::size_t i : split.train) {
    dataset.train.push_back(all[i].clone());
  }
  if (config.duplicate_training) {
    for (const std::size_t i : split.train) {
      dataset.train.push_back(all[i].clone());
    }
  }
  for (const std::size_t i : split.val) dataset.val.push_back(all[i].clone());
  for (const std::size_t i : split.test) {
    dataset.test.push_back(all[i].clone());
  }
  return dataset;
}

}  // namespace cf::core
