// One training sample: a preprocessed sub-volume and its normalized
// target parameters (OmegaM, sigma8, ns), plus the binary
// serialization used inside cfrecord payloads.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace cf::data {

struct Sample {
  /// Network-ready volume, shape {1, D, H, W} (log1p-compressed
  /// counts).
  tensor::Tensor volume;
  /// Targets normalized to [0, 1] over the sampled parameter ranges.
  std::array<float, 3> target{};

  Sample clone() const {
    Sample copy;
    copy.volume = volume.clone();
    copy.target = target;
    return copy;
  }

  /// In-place deep copy: reuses this sample's volume storage when the
  /// shapes match (no allocation), reallocating only on shape change.
  void copy_from(const Sample& other);
};

/// Serializes a sample into a record payload (little-endian, self-
/// describing: magic + version + dims + targets + voxels).
std::vector<std::uint8_t> serialize_sample(const Sample& sample);

/// Inverse of serialize_sample; throws std::invalid_argument on
/// malformed payloads.
Sample deserialize_sample(std::span<const std::uint8_t> payload);

/// Allocation-free inverse of serialize_sample: deserializes into
/// `out`, reusing its volume storage when the shape matches (the
/// steady state of a pooled pipeline — see data/sample_pool.hpp) and
/// allocating only on first use or shape change. The result is
/// byte-identical to deserialize_sample's.
void deserialize_sample_into(std::span<const std::uint8_t> payload,
                             Sample& out);

}  // namespace cf::data
