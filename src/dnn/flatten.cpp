#include "dnn/flatten.hpp"

#include <stdexcept>

#include "tensor/layout.hpp"

namespace cf::dnn {

using tensor::kChannelBlock;
using tensor::Shape;
using tensor::Tensor;

Flatten::Flatten(std::string name, std::int64_t channels)
    : Layer(std::move(name)), channels_(channels) {
  if (channels <= 0) {
    throw std::invalid_argument("Flatten: channels must be positive");
  }
}

Shape Flatten::plan(const Shape& input) {
  if (input.rank() != 5 || input[4] != kChannelBlock ||
      input[0] != tensor::blocked_channel_count(channels_)) {
    throw std::invalid_argument("Flatten::plan: expected blocked input "
                                "matching channel count, got " +
                                input.to_string());
  }
  d_ = input[1];
  h_ = input[2];
  w_ = input[3];
  const Shape out{channels_ * d_ * h_ * w_};
  set_shapes(input, out);
  return out;
}

void Flatten::forward(const Tensor& src, Tensor& dst, LayerExecState& exec,
                      runtime::ThreadPool& pool) const {
  const runtime::ScopedTimer timer(exec.timers.fwd);
  if (src.shape() != input_shape() || dst.shape() != output_shape()) {
    throw std::invalid_argument("Flatten::forward: shape mismatch");
  }
  const std::int64_t spatial = d_ * h_ * w_;
  // Strided gather of a few KiB at small spatial sizes — stay on the
  // caller rather than paying the pool wake-up.
  const std::size_t grain =
      channels_ * spatial <= 4096 ? static_cast<std::size_t>(channels_) : 1;
  pool.parallel_for(
      static_cast<std::size_t>(channels_),
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t chi = begin; chi < end; ++chi) {
          const std::int64_t ch = static_cast<std::int64_t>(chi);
          const std::int64_t block = ch / kChannelBlock;
          const std::int64_t lane = ch % kChannelBlock;
          const float* s =
              src.data() + block * spatial * kChannelBlock + lane;
          float* d = dst.data() + ch * spatial;
          for (std::int64_t v = 0; v < spatial; ++v) {
            d[v] = s[v * kChannelBlock];
          }
        }
      },
      grain);
}

void Flatten::backward(const Tensor& src, Tensor& ddst, Tensor& dsrc,
                       bool need_dsrc, LayerExecState& exec,
                       runtime::ThreadPool& pool) const {
  (void)src;
  if (!need_dsrc) return;
  const runtime::ScopedTimer timer(exec.timers.bwd_data);
  if (ddst.shape() != output_shape() || dsrc.shape() != input_shape()) {
    throw std::invalid_argument("Flatten::backward: shape mismatch");
  }
  const std::int64_t spatial = d_ * h_ * w_;
  // Padded lanes (channels_ < Cb * 16) must stay zero in dsrc.
  if (channels_ % kChannelBlock != 0) dsrc.zero();
  const std::size_t grain =
      channels_ * spatial <= 4096 ? static_cast<std::size_t>(channels_) : 1;
  pool.parallel_for(
      static_cast<std::size_t>(channels_),
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t chi = begin; chi < end; ++chi) {
          const std::int64_t ch = static_cast<std::int64_t>(chi);
          const std::int64_t block = ch / kChannelBlock;
          const std::int64_t lane = ch % kChannelBlock;
          const float* d = ddst.data() + ch * spatial;
          float* t = dsrc.data() + block * spatial * kChannelBlock + lane;
          for (std::int64_t v = 0; v < spatial; ++v) {
            t[v * kChannelBlock] = d[v];
          }
        }
      },
      grain);
}

}  // namespace cf::dnn
