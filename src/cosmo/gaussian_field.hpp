// Gaussian random field generation on a periodic cubic grid.
//
// Replaces MUSIC in the paper's data path: the initial density
// fluctuations are a Gaussian random field whose two-point statistics
// follow the linear power spectrum P(k; OmegaM, sigma8, ns). We draw
// unit white noise in real space and color it in Fourier space, which
// guarantees the Hermitian symmetry of delta_k and makes every
// simulation reproducible from a (seed, stream) pair.
//
// Normalization: delta_k = w_k * sqrt(N^3 P(k) / V) for a grid with N^3
// cells and box volume V, so the measured spectrum
// P_hat(k) = V |delta_k|^2 / N^6 reproduces P(k) in expectation.
#pragma once

#include <complex>
#include <vector>

#include "cosmo/power_spectrum.hpp"
#include "runtime/rng.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/tensor.hpp"

namespace cf::cosmo {

struct GridSpec {
  std::int64_t n = 64;        // cells per dimension (power of two)
  double box_size = 512.0;    // Mpc/h

  double cell_size() const { return box_size / static_cast<double>(n); }
  std::int64_t cells() const { return n * n * n; }
  /// Fundamental frequency 2 pi / L in h/Mpc.
  double k_fundamental() const;
};

/// Colored density modes delta_k (row-major [z][y][x], FFT frequency
/// ordering). Deterministic in (rng state).
std::vector<std::complex<float>> generate_delta_k(
    const PowerSpectrum& ps, const GridSpec& grid, runtime::Rng& rng,
    runtime::ThreadPool& pool);

/// Real-space density contrast delta(x) from the modes (inverse FFT;
/// imaginary residue discarded — it is zero up to rounding).
tensor::Tensor delta_x_from_modes(std::vector<std::complex<float>> delta_k,
                                  const GridSpec& grid,
                                  runtime::ThreadPool& pool);

/// Shell-averaged measured power spectrum of a set of modes: returns
/// (k_center, P_hat) pairs for `bins` linear k-shells up to the Nyquist
/// frequency. Used by tests to verify generation and by the dataset
/// example to sanity-check simulations.
struct SpectrumBin {
  double k = 0.0;
  double power = 0.0;
  std::int64_t modes = 0;
};
std::vector<SpectrumBin> measure_power_spectrum(
    const std::vector<std::complex<float>>& delta_k, const GridSpec& grid,
    int bins);

}  // namespace cf::cosmo
