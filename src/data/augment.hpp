// Orientation augmentation for cubic sub-volumes.
//
// The matter distribution is statistically isotropic, so any of the 48
// orientation-preserving-or-not symmetries of the cube (6 axis
// permutations x 8 mirror combinations) maps a valid universe to a
// valid universe with the same cosmological parameters. Applying a
// random element per draw multiplies the effective training set 48x at
// zero storage cost — the antidote to sub-volume memorization on small
// suites (the paper's analogue is its dataset duplication plus its
// sheer 100k-sample scale).
#pragma once

#include <cstdint>
#include <span>

#include "tensor/tensor.hpp"

namespace cf::data {

inline constexpr std::uint32_t kOrientationCount = 48;

/// Re-orients a cubic {1, N, N, N} volume in place according to
/// `code` in [0, 48): code % 8 selects the mirror mask (bit per axis),
/// code / 8 the axis permutation. Code 0 is the identity.
void orient_volume(tensor::Tensor& volume, std::uint32_t code);

/// Gather form: writes the re-oriented volume into `dst` (n^3 floats,
/// must not alias `src`) without touching `src`. Lets the Trainer fold
/// augmentation into its one staging copy into the network input —
/// the in-place form's clone-per-step disappears. Same codes, same
/// result as orient_volume.
void orient_volume_into(const tensor::Tensor& src, std::span<float> dst,
                        std::uint32_t code);

}  // namespace cf::data
