// The model/stream split (DESIGN.md §2.3): a finalized Network is
// immutable, every mutable buffer lives in an ExecContext. The
// properties pinned here are the contract of the split — training
// through a context is bitwise stable across fusion×memplan modes,
// inference contexts allocate no backward state at all, and N
// concurrent inference streams over one shared Network reproduce the
// serial results bit for bit (the TSan gate runs this suite).
#include <gtest/gtest.h>

#include <cstddef>
#include <thread>
#include <vector>

#include "core/dataset_gen.hpp"
#include "core/topology.hpp"
#include "core/trainer.hpp"
#include "dnn/network.hpp"
#include "obs/metrics.hpp"
#include "runtime/rng.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/tensor_ops.hpp"

namespace cf {
namespace {

using tensor::Tensor;

// --- The inference-lean guarantee: no diff, no scratch, no grads. ---

TEST(Context, InferenceContextAllocatesForwardStateOnly) {
  dnn::Network net = core::build_network(core::cosmoflow_scaled(32), 5);
  dnn::ExecContext ctx = net.make_context(dnn::ExecMode::kInference);

  EXPECT_EQ(ctx.mode(), dnn::ExecMode::kInference);
  EXPECT_EQ(ctx.diff_arena_bytes(), 0u);
  EXPECT_EQ(ctx.scratch_bytes(), 0u);
  EXPECT_EQ(ctx.grad_bytes(), 0u);
  EXPECT_TRUE(ctx.grad_arena().empty());
  // Ping-pong activations: far below the per-layer training sum.
  EXPECT_GT(ctx.activation_bytes(), 0u);
  EXPECT_LT(ctx.activation_bytes(), net.activation_bytes());
  EXPECT_LT(ctx.peak_tensor_bytes(), net.peak_tensor_bytes());

  // The ctx gauges said the same thing at construction.
  auto& reg = obs::Registry::global();
  EXPECT_EQ(reg.gauge("dnn/ctx/mode").value(), 1.0);
  EXPECT_EQ(reg.gauge("dnn/ctx/activation_bytes").value(),
            static_cast<double>(ctx.activation_bytes()));
  EXPECT_EQ(reg.gauge("dnn/ctx/total_bytes").value(),
            static_cast<double>(ctx.total_bytes()));

  // Backward-side entry points are hard errors, not silent no-ops.
  runtime::ThreadPool pool(1);
  Tensor input(net.input_shape());
  runtime::Rng rng(3);
  tensor::fill_normal(input, rng, 0.0f, 1.0f);
  ctx.forward(input, pool);
  Tensor dloss(net.output_shape());
  dloss.fill(1.0f);
  EXPECT_THROW(ctx.backward(dloss, pool), std::logic_error);
  EXPECT_THROW(ctx.params(), std::logic_error);
}

TEST(Context, TrainingContextMatchesPlannedFootprint) {
  for (const bool plan : {true, false}) {
    dnn::Network net =
        core::build_network(core::cosmoflow_scaled(16), 5,
                            /*fuse_eltwise=*/true, /*memplan=*/plan);
    dnn::ExecContext ctx = net.make_context(dnn::ExecMode::kTraining);
    // What the context actually allocated is exactly what the network
    // planned at finalize (nothing was allocated at finalize).
    EXPECT_EQ(ctx.activation_bytes(), net.activation_bytes());
    EXPECT_EQ(ctx.diff_arena_bytes(), net.diff_arena_bytes());
    EXPECT_EQ(ctx.scratch_bytes(), net.scratch_bytes());
    EXPECT_EQ(ctx.peak_tensor_bytes(), net.peak_tensor_bytes());
    EXPECT_EQ(ctx.grad_bytes(), net.param_bytes());
    EXPECT_EQ(obs::Registry::global().gauge("dnn/ctx/mode").value(), 0.0);
  }
}

// --- Inference placement is invisible in the bits: the collapsed
// ping-pong activations produce the training context's outputs. ---

TEST(Context, InferenceForwardBitwiseMatchesTraining) {
  dnn::Network net = core::build_network(core::cosmoflow_scaled(16), 7);
  dnn::ExecContext train_ctx = net.make_context(dnn::ExecMode::kTraining);
  dnn::ExecContext infer_ctx =
      net.make_context(dnn::ExecMode::kInference);
  runtime::ThreadPool pool(3);
  runtime::Rng rng(11);
  for (int rep = 0; rep < 3; ++rep) {
    Tensor input(net.input_shape());
    tensor::fill_normal(input, rng, 0.0f, 1.0f);
    const std::vector<float> a =
        train_ctx.forward(input, pool).to_vector();
    const std::vector<float> b =
        infer_ctx.forward(input, pool).to_vector();
    EXPECT_EQ(tensor::max_abs_diff(a, b), 0.0f) << "rep " << rep;
  }
}

// --- K concurrent streams over one shared Network == serial. The
// TSan gate (scripts/check_sanitizers.sh tsan) runs this test: any
// hidden mutable state left in the Network shows up as a race on the
// shared weight arena. ---

TEST(Context, ConcurrentInferenceStreamsMatchSerial) {
  constexpr int kStreams = 4;
  constexpr int kRepsPerStream = 2;
  dnn::Network net = core::build_network(core::cosmoflow_scaled(16), 13);

  // Distinct input per (stream, rep) so streams genuinely diverge.
  std::vector<std::vector<Tensor>> inputs(kStreams);
  for (int s = 0; s < kStreams; ++s) {
    runtime::Rng rng(29, static_cast<std::uint64_t>(s));
    for (int r = 0; r < kRepsPerStream; ++r) {
      Tensor input(net.input_shape());
      tensor::fill_normal(input, rng, 0.0f, 1.0f);
      inputs[s].push_back(std::move(input));
    }
  }

  // Serial reference: one stream processes everything.
  std::vector<std::vector<std::vector<float>>> expected(kStreams);
  {
    dnn::ExecContext ctx = net.make_context(dnn::ExecMode::kInference);
    runtime::ThreadPool pool(1);
    for (int s = 0; s < kStreams; ++s) {
      for (const Tensor& input : inputs[s]) {
        expected[s].push_back(ctx.forward(input, pool).to_vector());
      }
    }
  }

  // Concurrent: one thread per stream, each with its own context and
  // its own worker pool, all sharing the Network's weights.
  std::vector<std::vector<std::vector<float>>> actual(kStreams);
  {
    std::vector<std::thread> threads;
    threads.reserve(kStreams);
    for (int s = 0; s < kStreams; ++s) {
      threads.emplace_back([&net, &inputs, &actual, s] {
        dnn::ExecContext ctx =
            net.make_context(dnn::ExecMode::kInference);
        runtime::ThreadPool pool(2);
        for (const Tensor& input : inputs[s]) {
          actual[s].push_back(ctx.forward(input, pool).to_vector());
        }
      });
    }
    for (auto& t : threads) t.join();
  }

  for (int s = 0; s < kStreams; ++s) {
    ASSERT_EQ(actual[s].size(), expected[s].size()) << "stream " << s;
    for (std::size_t r = 0; r < expected[s].size(); ++r) {
      EXPECT_EQ(tensor::max_abs_diff(actual[s][r], expected[s][r]), 0.0f)
          << "stream " << s << " rep " << r;
    }
  }
}

// --- The split does not move a single training bit: whole
// trajectories (losses + final params) are identical across every
// fusion×memplan combination. ---

TEST(ContextE2E, TrainingTrajectoryBitwiseAcrossModes) {
  runtime::ThreadPool gen_pool;
  core::DatasetGenConfig gen;
  gen.simulations = 6;
  gen.sim.grid = {16, 64.0};
  gen.sim.voxels = 16;
  gen.seed = 53;
  core::GeneratedDataset dataset = core::generate_dataset(gen, gen_pool);
  const data::InMemorySource train(std::move(dataset.train));
  const data::InMemorySource val(std::move(dataset.val));

  std::vector<float> reference_params;
  std::vector<double> reference_losses;
  for (const bool fuse : {true, false}) {
    for (const bool plan : {true, false}) {
      core::TrainerConfig config;
      config.nranks = 2;
      config.epochs = 2;
      config.fuse_eltwise = fuse;
      config.memplan = plan;
      core::Trainer trainer(core::cosmoflow_scaled(8), train, val,
                            config);
      const auto stats = trainer.run();
      std::vector<float> params(
          static_cast<std::size_t>(trainer.network(0).param_count()));
      trainer.network(0).copy_params_to(params);
      std::vector<double> losses;
      for (const auto& epoch : stats) {
        losses.push_back(epoch.train_loss);
        losses.push_back(epoch.val_loss);
      }
      if (reference_params.empty()) {
        reference_params = std::move(params);
        reference_losses = std::move(losses);
        continue;
      }
      EXPECT_EQ(tensor::max_abs_diff(reference_params, params), 0.0f)
          << "fuse " << fuse << " plan " << plan;
      EXPECT_EQ(reference_losses, losses)
          << "fuse " << fuse << " plan " << plan;
    }
  }
}

}  // namespace
}  // namespace cf
