// Unit tests for pooling, dense, activation, flatten and loss layers.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "dnn/activations.hpp"
#include "dnn/avgpool3d.hpp"
#include "dnn/dense.hpp"
#include "dnn/flatten.hpp"
#include "dnn/loss.hpp"
#include "runtime/rng.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/layout.hpp"
#include "tensor/tensor_ops.hpp"

namespace cf::dnn {
namespace {

using tensor::Shape;
using tensor::Tensor;

struct PoolCase {
  std::int64_t channels, dhw, kernel, stride;
};

class AvgPoolVsReference : public ::testing::TestWithParam<PoolCase> {};

TEST_P(AvgPoolVsReference, ForwardMatches) {
  const PoolCase& c = GetParam();
  runtime::Rng rng(21, static_cast<std::uint64_t>(c.channels));
  runtime::ThreadPool pool(3);

  Tensor plain(Shape{c.channels, c.dhw, c.dhw, c.dhw});
  tensor::fill_normal(plain, rng, 0.0f, 1.0f);

  AvgPool3d layer("pool", AvgPool3dConfig{c.kernel, c.stride});
  const Tensor src = tensor::to_blocked_activation(plain);
  layer.plan(src.shape());
  Tensor dst(layer.output_shape());
  layer.forward(src, dst, pool);

  const std::int64_t out =
      tensor::conv_out_dim(c.dhw, c.kernel, c.stride, 0);
  Tensor ref(Shape{c.channels, out, out, out});
  avgpool3d_forward_reference(plain, c.kernel, c.stride, ref);

  const Tensor plain_out = tensor::from_blocked_activation(dst, c.channels);
  EXPECT_TRUE(
      tensor::allclose(plain_out.values(), ref.values(), 1e-5f, 1e-6f));
}

INSTANTIATE_TEST_SUITE_P(Sweep, AvgPoolVsReference,
                         ::testing::Values(PoolCase{16, 8, 2, 2},
                                           PoolCase{32, 6, 2, 2},
                                           PoolCase{16, 9, 3, 3},
                                           PoolCase{16, 8, 3, 1},
                                           PoolCase{16, 7, 2, 1},
                                           PoolCase{48, 4, 2, 2}));

TEST(AvgPool3d, BackwardDistributesMassExactly) {
  // Sum of dsrc must equal sum of ddst: pooling conserves the total
  // difference signal (each window average redistributes 1/k^3 to k^3
  // voxels).
  runtime::Rng rng(22);
  runtime::ThreadPool pool(2);
  AvgPool3d layer("pool", AvgPool3dConfig{2, 2});
  layer.plan(Shape{1, 6, 6, 6, 16});
  Tensor src(layer.input_shape());
  Tensor dst(layer.output_shape());
  Tensor ddst(layer.output_shape());
  tensor::fill_normal(ddst, rng, 0.0f, 1.0f);
  Tensor dsrc(layer.input_shape());
  layer.backward(src, ddst, dsrc, true, pool);
  EXPECT_NEAR(tensor::sum(dsrc.values()), tensor::sum(ddst.values()), 1e-3);
}

TEST(AvgPool3d, BackwardGradCheck) {
  runtime::Rng rng(23);
  runtime::ThreadPool pool(2);
  AvgPool3d layer("pool", AvgPool3dConfig{3, 2});
  layer.plan(Shape{1, 7, 7, 7, 16});
  Tensor src(layer.input_shape());
  tensor::fill_normal(src, rng, 0.0f, 1.0f);
  Tensor dst(layer.output_shape());
  Tensor direction(layer.output_shape());
  tensor::fill_normal(direction, rng, 0.0f, 1.0f);

  const auto loss = [&] {
    layer.forward(src, dst, pool);
    return tensor::dot(dst.values(), direction.values());
  };
  loss();
  Tensor dsrc(layer.input_shape());
  layer.backward(src, direction, dsrc, true, pool);

  const float eps = 1e-2f;
  runtime::Rng pick(24);
  for (int trial = 0; trial < 16; ++trial) {
    const std::size_t i = pick.uniform_index(src.size());
    const float original = src[i];
    src[i] = original + eps;
    const double up = loss();
    src[i] = original - eps;
    const double down = loss();
    src[i] = original;
    EXPECT_NEAR(dsrc[i], (up - down) / (2 * eps), 1e-3) << "index " << i;
  }
}

TEST(AvgPool3d, RejectsPlainInput) {
  AvgPool3d layer("pool", AvgPool3dConfig{2, 2});
  EXPECT_THROW(layer.plan(Shape{16, 8, 8, 8}), std::invalid_argument);
}

TEST(Dense, ForwardMatchesManualGemv) {
  Dense layer("fc", 3, 2);
  layer.plan(Shape{3});
  // w(i, o): rows are inputs.
  layer.weights() = Tensor(Shape{3, 2}, std::vector<float>{1, 2,   //
                                                           3, 4,   //
                                                           5, 6});
  layer.bias() = Tensor(Shape{2}, std::vector<float>{0.5f, -0.5f});
  runtime::ThreadPool pool(2);
  Tensor src(Shape{3}, std::vector<float>{1.0f, 0.5f, -1.0f});
  Tensor dst(Shape{2});
  layer.forward(src, dst, pool);
  EXPECT_FLOAT_EQ(dst[0], 1 * 1 + 0.5f * 3 - 1 * 5 + 0.5f);
  EXPECT_FLOAT_EQ(dst[1], 1 * 2 + 0.5f * 4 - 1 * 6 - 0.5f);
}

TEST(Dense, GradCheck) {
  runtime::Rng rng(31);
  runtime::ThreadPool pool(2);
  Dense layer("fc", 20, 7);
  layer.plan(Shape{20});
  layer.init_xavier(rng);

  Tensor src(Shape{20});
  tensor::fill_normal(src, rng, 0.0f, 1.0f);
  Tensor dst(Shape{7});
  Tensor direction(Shape{7});
  tensor::fill_normal(direction, rng, 0.0f, 1.0f);

  const auto loss = [&] {
    layer.forward(src, dst, pool);
    return tensor::dot(dst.values(), direction.values());
  };
  loss();
  Tensor dsrc(Shape{20});
  layer.backward(src, direction, dsrc, true, pool);
  const auto params = layer.params();
  const Tensor& dw = *params[0].grad;
  const Tensor& db = *params[1].grad;

  const float eps = 1e-2f;
  runtime::Rng pick(32);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t i = pick.uniform_index(layer.weights().size());
    const float original = layer.weights()[i];
    layer.weights()[i] = original + eps;
    const double up = loss();
    layer.weights()[i] = original - eps;
    const double down = loss();
    layer.weights()[i] = original;
    EXPECT_NEAR(dw[i], (up - down) / (2 * eps), 1e-3);
  }
  for (std::size_t i = 0; i < 7; ++i) {
    const float original = layer.bias()[i];
    layer.bias()[i] = original + eps;
    const double up = loss();
    layer.bias()[i] = original - eps;
    const double down = loss();
    layer.bias()[i] = original;
    EXPECT_NEAR(db[i], (up - down) / (2 * eps), 1e-3);
  }
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t i = pick.uniform_index(src.size());
    const float original = src[i];
    src[i] = original + eps;
    const double up = loss();
    src[i] = original - eps;
    const double down = loss();
    src[i] = original;
    EXPECT_NEAR(dsrc[i], (up - down) / (2 * eps), 1e-3);
  }
}

TEST(Dense, FlopAndParamCounts) {
  Dense layer("fc", 100, 30);
  layer.plan(Shape{100});
  EXPECT_EQ(layer.flops().fwd, 2 * 100 * 30);
  EXPECT_EQ(layer.param_count(), 100 * 30 + 30);
}

TEST(LeakyRelu, ForwardAppliesSlope) {
  LeakyRelu layer("act", 0.1f);
  layer.plan(Shape{4});
  runtime::ThreadPool pool(1);
  Tensor src(Shape{4}, std::vector<float>{-2.0f, -0.5f, 0.0f, 3.0f});
  Tensor dst(Shape{4});
  layer.forward(src, dst, pool);
  EXPECT_FLOAT_EQ(dst[0], -0.2f);
  EXPECT_FLOAT_EQ(dst[1], -0.05f);
  EXPECT_FLOAT_EQ(dst[2], 0.0f);
  EXPECT_FLOAT_EQ(dst[3], 3.0f);
}

TEST(LeakyRelu, BackwardUsesInputSign) {
  LeakyRelu layer("act", 0.25f);
  layer.plan(Shape{3});
  runtime::ThreadPool pool(1);
  Tensor src(Shape{3}, std::vector<float>{-1.0f, 2.0f, -3.0f});
  Tensor ddst(Shape{3}, std::vector<float>{1.0f, 1.0f, 2.0f});
  Tensor dsrc(Shape{3});
  layer.backward(src, ddst, dsrc, true, pool);
  EXPECT_FLOAT_EQ(dsrc[0], 0.25f);
  EXPECT_FLOAT_EQ(dsrc[1], 1.0f);
  EXPECT_FLOAT_EQ(dsrc[2], 0.5f);
}

TEST(LeakyRelu, RejectsBadSlope) {
  EXPECT_THROW(LeakyRelu("a", -0.1f), std::invalid_argument);
  EXPECT_THROW(LeakyRelu("a", 1.0f), std::invalid_argument);
}

TEST(Flatten, MatchesPlainFlattening) {
  runtime::Rng rng(41);
  runtime::ThreadPool pool(2);
  Tensor plain(Shape{32, 3, 4, 5});
  tensor::fill_normal(plain, rng, 0.0f, 1.0f);
  const Tensor blocked = tensor::to_blocked_activation(plain);

  Flatten layer("flat", 32);
  layer.plan(blocked.shape());
  EXPECT_EQ(layer.output_shape(), Shape({32 * 3 * 4 * 5}));
  Tensor dst(layer.output_shape());
  layer.forward(blocked, dst, pool);
  EXPECT_EQ(tensor::max_abs_diff(dst.values(), plain.values()), 0.0f);
}

TEST(Flatten, BackwardRestoresBlockedLayout) {
  runtime::Rng rng(42);
  runtime::ThreadPool pool(2);
  Flatten layer("flat", 16);
  layer.plan(Shape{1, 2, 2, 2, 16});
  Tensor ddst(layer.output_shape());
  tensor::fill_normal(ddst, rng, 0.0f, 1.0f);
  Tensor dsrc(layer.input_shape());
  Tensor src(layer.input_shape());
  layer.backward(src, ddst, dsrc, true, pool);

  // Forward of the recovered dsrc must reproduce ddst.
  Tensor roundtrip(layer.output_shape());
  layer.forward(dsrc, roundtrip, pool);
  EXPECT_EQ(tensor::max_abs_diff(roundtrip.values(), ddst.values()), 0.0f);
}

TEST(Flatten, RejectsChannelMismatch) {
  Flatten layer("flat", 32);
  EXPECT_THROW(layer.plan(Shape{1, 2, 2, 2, 16}), std::invalid_argument);
}

TEST(MseLoss, ValueAndGradient) {
  const std::vector<float> pred{1.0f, 2.0f, 3.0f};
  const std::vector<float> target{1.5f, 2.0f, 1.0f};
  // ((0.5)^2 + 0 + 2^2) / 3
  EXPECT_NEAR(mse_loss(pred, target), (0.25 + 4.0) / 3.0, 1e-6);
  std::vector<float> grad(3);
  mse_loss_grad(pred, target, grad);
  EXPECT_NEAR(grad[0], 2.0 / 3.0 * -0.5, 1e-6);
  EXPECT_NEAR(grad[1], 0.0, 1e-6);
  EXPECT_NEAR(grad[2], 2.0 / 3.0 * 2.0, 1e-6);
}

TEST(MseLoss, GradMatchesNumericalDerivative) {
  std::vector<float> pred{0.3f, -0.2f, 0.9f, 0.1f};
  const std::vector<float> target{0.0f, 0.5f, 1.0f, -0.5f};
  std::vector<float> grad(4);
  mse_loss_grad(pred, target, grad);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    pred[i] += eps;
    const float up = mse_loss(pred, target);
    pred[i] -= 2 * eps;
    const float down = mse_loss(pred, target);
    pred[i] += eps;
    EXPECT_NEAR(grad[i], (up - down) / (2 * eps), 1e-3);
  }
}

TEST(MseLoss, RejectsBadInputs) {
  const std::vector<float> a{1.0f};
  const std::vector<float> b{1.0f, 2.0f};
  std::vector<float> g(1);
  EXPECT_THROW(mse_loss(a, b), std::invalid_argument);
  EXPECT_THROW(mse_loss({}, {}), std::invalid_argument);
  EXPECT_THROW(mse_loss_grad(a, b, g), std::invalid_argument);
}

}  // namespace
}  // namespace cf::dnn
