// The load-bearing property of the memory planner (DESIGN.md §2.2):
// rebinding every difference tensor onto the two parity ping-pong
// buffers and serving all backward scratch from one shared arena is a
// *placement-only* transformation — the planned step must be bitwise
// identical to the unplanned one, over whole training trajectories,
// with and without eltwise fusion, at any rank count. The zero-free
// backward kernels this rests on (conv gather, pool direct-write) must
// fully overwrite their dsrc, so reused buffers full of stale garbage
// must not leak a single bit into the results.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "core/dataset_gen.hpp"
#include "core/topology.hpp"
#include "core/trainer.hpp"
#include "dnn/avgpool3d.hpp"
#include "dnn/conv3d.hpp"
#include "dnn/network.hpp"
#include "runtime/rng.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/layout.hpp"
#include "tensor/tensor_ops.hpp"

namespace cf {
namespace {

using tensor::Shape;
using tensor::Tensor;

constexpr std::int64_t kB = tensor::kChannelBlock;

// --- Planner aliasing: parity classes share storage, live pairs don't. ---

TEST(MemplanPlanner, DiffsSharePingPongBuffersByParity) {
  dnn::Network net = core::build_network(core::cosmoflow_scaled(8), 5);
  ASSERT_TRUE(net.memory_planning());
  ASSERT_GE(net.layer_count(), 3u);
  dnn::ExecContext ctx = net.make_context(dnn::ExecMode::kTraining);

  const float* even_base = ctx.diff(0).data();
  const float* odd_base = ctx.diff(1).data();
  std::size_t max_even = 0;
  std::size_t max_odd = 0;
  for (std::size_t i = 0; i < net.layer_count(); ++i) {
    // Planned diffs are views into the context's arena, not owners.
    EXPECT_FALSE(ctx.diff(i).owns_storage()) << "layer " << i;
    // Every diff of a parity class starts at that class's buffer.
    EXPECT_EQ(ctx.diff(i).data(), i % 2 == 0 ? even_base : odd_base)
        << "layer " << i;
    std::size_t& slot = i % 2 == 0 ? max_even : max_odd;
    slot = std::max(slot, static_cast<std::size_t>(ctx.diff(i).size()));
  }
  // The two buffers back a live (ddst, dsrc) pair — they must not
  // overlap: the odd buffer starts past the even buffer's extent.
  EXPECT_GE(odd_base, even_base + max_even);
  EXPECT_EQ(net.diff_arena_bytes(), (max_even + max_odd) * sizeof(float));
  // The context allocated exactly what the network planned.
  EXPECT_EQ(ctx.diff_arena_bytes(), net.diff_arena_bytes());

  // A second stream gets its own arena — no storage shared between
  // contexts, only the (read-only) weights.
  dnn::ExecContext other = net.make_context(dnn::ExecMode::kTraining);
  EXPECT_NE(other.diff(0).data(), ctx.diff(0).data());
}

TEST(MemplanPlanner, UnplannedDiffsKeepPrivateStorage) {
  dnn::Network net = core::build_network(core::cosmoflow_scaled(8), 5,
                                         /*fuse_eltwise=*/true,
                                         /*memplan=*/false);
  ASSERT_FALSE(net.memory_planning());
  dnn::ExecContext ctx = net.make_context(dnn::ExecMode::kTraining);
  for (std::size_t i = 0; i < net.layer_count(); ++i) {
    EXPECT_TRUE(ctx.diff(i).owns_storage()) << "layer " << i;
    for (std::size_t j = i + 1; j < net.layer_count(); ++j) {
      EXPECT_NE(ctx.diff(i).data(), ctx.diff(j).data());
    }
  }
}

// --- Footprint regression: the exact planned byte budget of the fig3
// configuration (cosmoflow_scaled(32), fused). Any layer growing a new
// persistent stream shows up here. ---

TEST(MemplanPlanner, PeakBytesPinnedForScaled32) {
  dnn::Network planned = core::build_network(core::cosmoflow_scaled(32), 5);
  // Activations: conv1 {1,32,32,32,16} 524288 + pool1 65536 +
  // conv2 131072 + pool2 16384 + conv3 4096 + flatten 4096 +
  // fc 128 + 32 + 3 = 745635 floats.
  EXPECT_EQ(planned.activation_bytes(), 745635u * sizeof(float));
  // Ping-pong: max even diff 524288 (conv1) + max odd diff 65536
  // (pool1) — vs 745635 for the per-layer buffers it replaces.
  EXPECT_EQ(planned.diff_arena_bytes(), 589824u * sizeof(float));
  // Shared scratch: max transposed-weight request = conv3
  // (4 ocb * 2 icb * 27 taps * 256) = 55296 floats.
  EXPECT_EQ(planned.scratch_bytes(), 55296u * sizeof(float));
  EXPECT_EQ(planned.peak_tensor_bytes(),
            (745635u + 589824u + 55296u) * sizeof(float));

  dnn::Network unplanned =
      core::build_network(core::cosmoflow_scaled(32), 5,
                          /*fuse_eltwise=*/true, /*memplan=*/false);
  EXPECT_EQ(unplanned.activation_bytes(), planned.activation_bytes());
  EXPECT_LT(planned.diff_arena_bytes(), unplanned.diff_arena_bytes());
  EXPECT_LT(planned.scratch_bytes(), unplanned.scratch_bytes());
  EXPECT_LT(planned.peak_tensor_bytes(), unplanned.peak_tensor_bytes());
}

// --- Zero-free kernels fully overwrite dsrc: stale garbage in a
// reused buffer must not change a bit of the result. ---

TEST(MemplanCoverage, ConvGatherBackwardIgnoresStaleDsrc) {
  struct Case {
    std::int64_t kernel, stride;
    dnn::Padding pad;
  };
  // k2 s3 valid leaves input rows no output tap reaches (id = 2, 5, ...)
  // — the gather must still store its (zeroed) accumulator there.
  for (const Case& c : {Case{2, 3, dnn::Padding::kValid},
                        Case{3, 1, dnn::Padding::kSame},
                        Case{3, 2, dnn::Padding::kSame}}) {
    const std::int64_t kernel = c.kernel;
    const std::int64_t stride = c.stride;
    dnn::Conv3d conv("c", dnn::Conv3dConfig{16, 16, kernel, stride, c.pad});
    conv.plan(Shape{1, 8, 8, 8, kB});
    runtime::Rng rng(17, static_cast<std::uint64_t>(kernel * 10 + stride));
    conv.init_he(rng);
    runtime::ThreadPool pool(3);

    Tensor src(conv.input_shape());
    tensor::fill_normal(src, rng, 0.0f, 1.0f);
    Tensor dst(conv.output_shape());
    conv.forward(src, dst, pool);
    Tensor ddst(conv.output_shape());
    tensor::fill_normal(ddst, rng, 0.0f, 1.0f);

    Tensor dsrc_a(conv.input_shape());
    for (std::size_t i = 0; i < dsrc_a.size(); ++i) dsrc_a[i] = 1e9f;
    Tensor ddst_a = ddst.clone();
    conv.backward(src, ddst_a, dsrc_a, /*need_dsrc=*/true, pool);

    Tensor dsrc_b(conv.input_shape());
    for (std::size_t i = 0; i < dsrc_b.size(); ++i) dsrc_b[i] = -7e8f;
    Tensor ddst_b = ddst.clone();
    conv.backward(src, ddst_b, dsrc_b, /*need_dsrc=*/true, pool);

    EXPECT_EQ(tensor::max_abs_diff(dsrc_a.values(), dsrc_b.values()), 0.0f)
        << "k" << kernel << " s" << stride;
  }
}

/// Naive zero-then-accumulate oracle for blocked avg-pool backward.
void pool_backward_reference(const Tensor& ddst, std::int64_t k,
                             std::int64_t s, Tensor& dsrc) {
  dsrc.zero();
  const std::int64_t cb = dsrc.shape()[0];
  const std::int64_t in_d = dsrc.shape()[1];
  const std::int64_t in_h = dsrc.shape()[2];
  const std::int64_t in_w = dsrc.shape()[3];
  const std::int64_t out_d = ddst.shape()[1];
  const std::int64_t out_h = ddst.shape()[2];
  const std::int64_t out_w = ddst.shape()[3];
  const float inv = 1.0f / static_cast<float>(k * k * k);
  for (std::int64_t c = 0; c < cb; ++c) {
    for (std::int64_t od = 0; od < out_d; ++od) {
      for (std::int64_t oh = 0; oh < out_h; ++oh) {
        for (std::int64_t ow = 0; ow < out_w; ++ow) {
          const float* d =
              ddst.data() + (((c * out_d + od) * out_h + oh) * out_w + ow) * kB;
          for (std::int64_t kd = 0; kd < k; ++kd) {
            for (std::int64_t kh = 0; kh < k; ++kh) {
              for (std::int64_t kw = 0; kw < k; ++kw) {
                float* t = dsrc.data() +
                           (((c * in_d + od * s + kd) * in_h + oh * s + kh) *
                                in_w +
                            ow * s + kw) *
                               kB;
                for (int l = 0; l < kB; ++l) t[l] += d[l] * inv;
              }
            }
          }
        }
      }
    }
  }
}

TEST(MemplanCoverage, PoolBackwardGapsTailsAndStaleDsrc) {
  struct Case {
    std::int64_t kernel, stride, in;
  };
  // k2 s2: the CosmoFlow case (exact tiling). k2 s3: inter-window gaps.
  // k3 s3 in=10: depth/row/width tails. k2 s2 in=9: odd-input tails.
  // k3 s2: overlapping windows (accumulate fallback).
  for (const Case& c : {Case{2, 2, 8}, Case{2, 3, 8}, Case{3, 3, 10},
                        Case{2, 2, 9}, Case{3, 2, 8}}) {
    dnn::AvgPool3d layer("p", dnn::AvgPool3dConfig{c.kernel, c.stride});
    layer.plan(Shape{2, c.in, c.in, c.in, kB});
    runtime::ThreadPool pool(3);
    runtime::Rng rng(23, static_cast<std::uint64_t>(c.kernel * 100 + c.in));
    Tensor src(layer.input_shape());
    tensor::fill_normal(src, rng, 0.0f, 1.0f);
    Tensor ddst(layer.output_shape());
    tensor::fill_normal(ddst, rng, 0.0f, 1.0f);

    Tensor expected(layer.input_shape());
    pool_backward_reference(ddst, c.kernel, c.stride, expected);

    // Prefill with garbage: the direct-write path must overwrite or
    // zero every element (assignments produce the same bits as the
    // oracle's 0 + d*inv accumulation).
    Tensor dsrc(layer.input_shape());
    for (std::size_t i = 0; i < dsrc.size(); ++i) dsrc[i] = 3e9f;
    layer.backward(src, ddst, dsrc, /*need_dsrc=*/true, pool);

    EXPECT_EQ(tensor::max_abs_diff(dsrc.values(), expected.values()), 0.0f)
        << "k" << c.kernel << " s" << c.stride << " in" << c.in;
  }
}

// --- End-to-end: planned and unplanned training trajectories are
// bitwise identical — losses and final parameters — across fusion
// modes and rank counts. ---

TEST(MemplanE2E, TrajectoryBitwiseIdenticalToUnplanned) {
  runtime::ThreadPool gen_pool;
  core::DatasetGenConfig gen;
  gen.simulations = 6;
  gen.sim.grid = {16, 64.0};
  gen.sim.voxels = 16;
  gen.seed = 53;
  core::GeneratedDataset dataset = core::generate_dataset(gen, gen_pool);
  const data::InMemorySource train(std::move(dataset.train));
  const data::InMemorySource val(std::move(dataset.val));

  for (const bool fuse : {true, false}) {
    for (const int nranks : {1, 4}) {
      std::vector<float> params_planned;
      std::vector<float> params_unplanned;
      const auto run = [&](bool plan, std::vector<float>* params) {
        core::TrainerConfig config;
        config.nranks = nranks;
        config.epochs = 2;
        config.fuse_eltwise = fuse;
        config.memplan = plan;
        core::Trainer trainer(core::cosmoflow_scaled(8), train, val,
                              config);
        const auto stats = trainer.run();
        params->resize(
            static_cast<std::size_t>(trainer.network(0).param_count()));
        trainer.network(0).copy_params_to(*params);
        return stats;
      };
      const auto planned = run(true, &params_planned);
      const auto unplanned = run(false, &params_unplanned);
      ASSERT_EQ(planned.size(), unplanned.size());
      for (std::size_t e = 0; e < planned.size(); ++e) {
        EXPECT_EQ(planned[e].train_loss, unplanned[e].train_loss)
            << "fuse " << fuse << " nranks " << nranks << " epoch " << e;
        EXPECT_EQ(planned[e].val_loss, unplanned[e].val_loss)
            << "fuse " << fuse << " nranks " << nranks << " epoch " << e;
      }
      EXPECT_EQ(tensor::max_abs_diff(params_planned, params_unplanned),
                0.0f)
          << "fuse " << fuse << " nranks " << nranks;
    }
  }
}

}  // namespace
}  // namespace cf
