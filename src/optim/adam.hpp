// Adam (Kingma & Ba 2014) with the paper's hyper-parameters
// (beta1 = 0.9, beta2 = 0.999, epsilon = 1e-8, §III-B). Operates on one
// flat parameter/gradient pair; LarcAdam composes one AdamState per
// parameter tensor.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace cf::optim {

struct AdamConfig {
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
};

/// First/second moment state for one parameter tensor.
class AdamState {
 public:
  AdamState() = default;
  AdamState(std::size_t size, AdamConfig config);

  /// Applies one Adam update with learning rate `lr`. The internal step
  /// counter (used for bias correction) advances by one.
  void step(std::span<float> params, std::span<const float> grads,
            double lr);

  std::int64_t steps_taken() const noexcept { return t_; }
  const AdamConfig& config() const noexcept { return config_; }

  /// Serialized moment access for checkpointing.
  std::span<const float> first_moment() const { return m_; }
  std::span<const float> second_moment() const { return v_; }
  void restore(std::span<const float> m, std::span<const float> v,
               std::int64_t steps);

 private:
  AdamConfig config_;
  std::vector<float> m_;
  std::vector<float> v_;
  std::int64_t t_ = 0;
};

}  // namespace cf::optim
