// Reusable sense-reversing barrier for rank-thread synchronization.
//
// cf::comm models MPI ranks as threads of one process; every collective
// (broadcast, allreduce) is phrased as compute steps separated by
// barrier episodes, exactly like the bulk-synchronous structure of the
// paper's SSGD training loop.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace cf::runtime {

/// Blocking barrier for a fixed set of participants; reusable any
/// number of times. Uses a condition variable (ranks may oversubscribe
/// cores heavily, so spinning would be pathological on small machines).
class Barrier {
 public:
  explicit Barrier(std::size_t participants)
      : participants_(participants), remaining_(participants) {}

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Blocks until all participants arrive. Returns true on exactly one
  /// participant per episode (the last to arrive), false on the others —
  /// handy for electing a thread to do per-phase setup.
  bool arrive_and_wait() {
    std::unique_lock lock(mutex_);
    const std::size_t my_phase = phase_;
    if (--remaining_ == 0) {
      remaining_ = participants_;
      ++phase_;
      cv_.notify_all();
      return true;
    }
    cv_.wait(lock, [&] { return phase_ != my_phase; });
    return false;
  }

  std::size_t participants() const noexcept { return participants_; }

 private:
  const std::size_t participants_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t remaining_;
  std::size_t phase_ = 0;
};

}  // namespace cf::runtime
