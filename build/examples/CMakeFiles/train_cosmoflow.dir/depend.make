# Empty dependencies file for train_cosmoflow.
# This may be replaced when dependencies are built.
