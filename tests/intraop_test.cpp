// Cost-model-driven intra-op threading (DESIGN.md §2.6).
//
// The contract under test: a kernel's job grid is fixed by the layer
// geometry, threading and the per-layer grain only re-partition it, and
// per-chunk partials are combined in block order — so any thread count
// and any grain produce bitwise-identical results. On top of that sits
// the CostModel: a roofline + efficiency-curve predictor whose choose()
// must be sane at the degenerate 1-core budget (this VM) and monotone
// as the budget grows. The ThreadPool's nested-dispatch guard (a
// parallel_for issued from inside a parallel_for body runs serially
// instead of deadlocking) is pinned here too.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "core/topology.hpp"
#include "dnn/cost_model.hpp"
#include "dnn/network.hpp"
#include "runtime/rng.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/tensor_ops.hpp"

namespace cf {
namespace {

using tensor::Tensor;

// Forward + backward through the full scaled network, returning every
// bit the step produced: the outputs and the whole gradient arena.
std::vector<float> train_step_bits(int threads, bool fused,
                                   bool cost_model_grains) {
  dnn::Network net =
      core::build_network(core::cosmoflow_scaled(8), 7, fused);
  dnn::ExecContext ctx = net.make_context(dnn::ExecMode::kTraining);
  if (cost_model_grains) {
    const dnn::CostModel cm(net, {}, /*training=*/true);
    dnn::IntraopPlan plan;
    plan.threads_per_stream = static_cast<std::size_t>(threads);
    plan.grains = cm.grains_for(static_cast<std::size_t>(threads));
    plan.predicted_efficiency =
        cm.predicted_efficiency(static_cast<std::size_t>(threads));
    ctx.apply_intraop(plan);
  }
  runtime::ThreadPool pool(static_cast<std::size_t>(threads));
  runtime::Rng rng(17);
  Tensor input(net.input_shape());
  tensor::fill_normal(input, rng, 0.0f, 1.0f);
  std::vector<float> bits = ctx.forward(input, pool).to_vector();
  Tensor dloss(net.output_shape());
  tensor::fill_normal(dloss, rng, 0.0f, 1.0f);
  ctx.backward(dloss, pool);
  const auto grads = ctx.grad_arena();
  bits.insert(bits.end(), grads.begin(), grads.end());
  return bits;
}

class IntraopTrainInvariance
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(IntraopTrainInvariance, ForwardBackwardBitIdentical) {
  const auto [threads, fused] = GetParam();
  const auto serial = train_step_bits(1, fused, false);
  // Same thread count without the plan (default grain 1), and with the
  // cost model's grains: both must reproduce the serial bits.
  const auto threaded = train_step_bits(threads, fused, false);
  const auto planned = train_step_bits(threads, fused, true);
  ASSERT_EQ(serial.size(), threaded.size());
  ASSERT_EQ(serial.size(), planned.size());
  EXPECT_EQ(tensor::max_abs_diff(serial, threaded), 0.0f);
  EXPECT_EQ(tensor::max_abs_diff(serial, planned), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsAndFusion, IntraopTrainInvariance,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values(true, false)));

class IntraopPrecisionInvariance
    : public ::testing::TestWithParam<std::tuple<int, dnn::Precision>> {};

TEST_P(IntraopPrecisionInvariance, InferenceBitIdenticalToSerial) {
  const auto [threads, precision] = GetParam();
  dnn::Network net = core::build_network(core::cosmoflow_scaled(8), 11);
  net.prepare_inference_precision(precision);
  runtime::Rng rng(23);
  Tensor input(net.input_shape());
  tensor::fill_normal(input, rng, 0.0f, 1.0f);

  const auto run = [&](int nthreads, bool planned) {
    dnn::ExecContext ctx =
        net.make_context(dnn::ExecMode::kInference, precision);
    if (planned) {
      const dnn::CostModel cm(net);
      dnn::IntraopPlan plan;
      plan.threads_per_stream = static_cast<std::size_t>(nthreads);
      plan.grains = cm.grains_for(static_cast<std::size_t>(nthreads));
      ctx.apply_intraop(plan);
    }
    runtime::ThreadPool pool(static_cast<std::size_t>(nthreads));
    return ctx.forward(input, pool).to_vector();
  };

  const auto serial = run(1, false);
  EXPECT_EQ(tensor::max_abs_diff(serial, run(threads, false)), 0.0f);
  EXPECT_EQ(tensor::max_abs_diff(serial, run(threads, true)), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsAndPrecision, IntraopPrecisionInvariance,
    ::testing::Combine(::testing::Values(2, 4),
                       ::testing::Values(dnn::Precision::kFp32,
                                         dnn::Precision::kBf16,
                                         dnn::Precision::kInt8Weights)));

// --- CostModel unit tests --------------------------------------------

TEST(IntraopCostModel, OneCoreBudgetIsSerial) {
  const dnn::Network net =
      core::build_network(core::cosmoflow_scaled(8), 5);
  const dnn::CostModel cm(net);
  const dnn::IntraopPlan plan = cm.choose(1);
  EXPECT_EQ(plan.streams, 1u);
  EXPECT_EQ(plan.threads_per_stream, 1u);
  ASSERT_EQ(plan.grains.size(), net.layer_count());
  for (const std::size_t g : plan.grains) EXPECT_EQ(g, 1u);
  EXPECT_EQ(plan.predicted_efficiency, 1.0);
}

TEST(IntraopCostModel, PredictedSecondsNonIncreasingInThreads) {
  const dnn::Network net =
      core::build_network(core::cosmoflow_scaled(8), 5);
  const dnn::CostModel cm(net);
  double prev = cm.predicted_seconds(1);
  EXPECT_GT(prev, 0.0);
  for (std::size_t t = 2; t <= 16; ++t) {
    const double now = cm.predicted_seconds(t);
    EXPECT_LE(now, prev) << "threads " << t;
    prev = now;
  }
}

TEST(IntraopCostModel, ChooseIsMonotoneInBudget) {
  const dnn::Network net =
      core::build_network(core::cosmoflow_scaled(8), 5);
  const dnn::CostModel cm(net);
  std::size_t prev_cores = 0;
  double prev_rate = 0.0;
  for (std::size_t budget = 1; budget <= 16; ++budget) {
    const dnn::IntraopPlan plan = cm.choose(budget);
    const std::size_t cores = plan.streams * plan.threads_per_stream;
    EXPECT_GE(plan.streams, 1u);
    EXPECT_GE(plan.threads_per_stream, 1u);
    EXPECT_LE(cores, budget) << "budget " << budget;
    EXPECT_GE(cores, prev_cores) << "budget " << budget;
    // Predicted throughput never drops when the budget grows.
    const double rate = static_cast<double>(plan.streams) /
                        cm.predicted_seconds(plan.threads_per_stream);
    EXPECT_GE(rate, prev_rate) << "budget " << budget;
    prev_cores = cores;
    prev_rate = rate;
  }
}

TEST(IntraopCostModel, ChooseRespectsStreamCap) {
  const dnn::Network net =
      core::build_network(core::cosmoflow_scaled(8), 5);
  const dnn::CostModel cm(net);
  for (std::size_t cap = 1; cap <= 4; ++cap) {
    const dnn::IntraopPlan plan = cm.choose(16, cap);
    EXPECT_LE(plan.streams, cap);
  }
}

TEST(IntraopCostModel, GrainsStayWithinJobGrid) {
  const dnn::Network net =
      core::build_network(core::cosmoflow_scaled(8), 5);
  const dnn::CostModel cm(net);
  ASSERT_EQ(cm.layer_costs().size(), net.layer_count());
  for (const std::size_t t : {std::size_t{1}, std::size_t{4}}) {
    const std::vector<std::size_t> grains = cm.grains_for(t);
    ASSERT_EQ(grains.size(), net.layer_count());
    for (std::size_t i = 0; i < grains.size(); ++i) {
      EXPECT_GE(grains[i], 1u);
      EXPECT_LE(grains[i], cm.layer_costs()[i].jobs);
      if (t <= 1) EXPECT_EQ(grains[i], 1u);
    }
  }
}

TEST(IntraopCostModel, ApplyIntraopRejectsMismatchedPlan) {
  dnn::Network net = core::build_network(core::cosmoflow_scaled(8), 5);
  dnn::ExecContext ctx = net.make_context(dnn::ExecMode::kInference);
  dnn::IntraopPlan plan;
  plan.grains.assign(net.layer_count() + 1, 1);
  EXPECT_THROW(ctx.apply_intraop(plan), std::invalid_argument);
}

TEST(IntraopCostModel, RequiresFinalizedNetwork) {
  const dnn::Network net;
  EXPECT_THROW(dnn::CostModel cm(net), std::logic_error);
}

// --- ThreadPool nested-dispatch guard --------------------------------

TEST(IntraopNestedGuard, RegionFlagTracksParallelBody) {
  EXPECT_FALSE(runtime::ThreadPool::in_parallel_region());
  runtime::ThreadPool pool(2);
  std::atomic<int> inside{0};
  pool.parallel_for(8, [&](std::size_t, std::size_t, std::size_t) {
    if (runtime::ThreadPool::in_parallel_region()) inside.fetch_add(1);
  });
  EXPECT_GT(inside.load(), 0);
  EXPECT_FALSE(runtime::ThreadPool::in_parallel_region());
}

#ifdef NDEBUG
// In debug builds the nested dispatch trips an assert by design; the
// release-mode contract is graceful serial fallback with full coverage
// of the inner range.
TEST(IntraopNestedGuard, NestedDispatchFallsBackToSerial) {
  runtime::ThreadPool pool(4);
  constexpr std::size_t kOuter = 4;
  constexpr std::size_t kInner = 64;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.parallel_for(
      kOuter,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t o = begin; o < end; ++o) {
          // Nested dispatch: must run inline on this worker, once per
          // inner item, instead of deadlocking on the shared pool.
          pool.parallel_for(
              kInner, [&, o](std::size_t b, std::size_t e, std::size_t) {
                for (std::size_t i = b; i < e; ++i) {
                  hits[o * kInner + i].fetch_add(1);
                }
              });
        }
      },
      /*grain_threshold=*/1);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "item " << i;
  }
}
#endif  // NDEBUG

}  // namespace
}  // namespace cf
