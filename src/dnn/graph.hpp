// Explicit-edge graph IR for dnn::Network (DESIGN.md §2.8).
//
// Node = layer, edge = tensor. Each node records the node ids producing
// its inputs (kGraphInput names the network input tensor); fan-out
// (multiple consumers of one node) and multiple output heads are both
// allowed, so residual links and multi-head regression are expressible.
//
// The execution schedule IS the insertion order: add() only accepts
// input ids of already-added nodes, so the node list is topologically
// sorted by construction and every pass — plan, forward, backward (in
// reverse), the fusion pass, the liveness planner, the cost model —
// iterates it deterministically. There is no scheduler; graphs built in
// the same order execute in the same order, which is what keeps
// sequential networks bitwise identical to the pre-IR container and
// fan-in gradient accumulation deterministic.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "dnn/layer.hpp"

namespace cf::dnn {

/// Index into the graph's schedule. kGraphInput is the pseudo-producer
/// of the network input tensor.
using NodeId = std::size_t;
inline constexpr NodeId kGraphInput = static_cast<NodeId>(-1);

class Graph {
 public:
  /// Appends a node consuming the outputs of `inputs` (schedule position
  /// = node id). Every input must name an earlier node or kGraphInput,
  /// and the input count must match the layer's arity().
  NodeId add(std::unique_ptr<Layer> layer, std::vector<NodeId> inputs);

  /// Declares the output heads (default after seal(): the last node).
  /// Multi-head networks concatenate the head outputs, in this order,
  /// into the flat network output.
  void set_heads(std::vector<NodeId> heads);

  /// MKL-DNN-style post-op fusion, edge-aware: a LeakyRelu node is
  /// folded into its producer's epilogue only when it is the producer's
  /// *sole* consumer (a producer with fan-out must keep its
  /// pre-activation output materialized) and the producer is not itself
  /// an explicit head. Dropped nodes are compacted out: ids renumber,
  /// edges and heads rewire onto the producer. Returns the number of
  /// pairs fused. Must run before seal().
  std::size_t fuse_eltwise();

  /// Freezes the topology: defaults the head list to {last node},
  /// builds the consumer lists and validates that every non-head node
  /// is consumed (a dead node would burn a schedule slot for nothing).
  void seal();
  bool sealed() const noexcept { return sealed_; }

  std::size_t size() const noexcept { return nodes_.size(); }
  bool empty() const noexcept { return nodes_.empty(); }

  Layer& layer(NodeId i) { return *nodes_[i].layer; }
  const Layer& layer(NodeId i) const { return *nodes_[i].layer; }

  /// Producers of node i's inputs, in edge order (kGraphInput allowed).
  const std::vector<NodeId>& inputs(NodeId i) const {
    return nodes_[i].inputs;
  }
  /// Nodes consuming node i's output, in schedule order (valid after
  /// seal; a node consuming i through two edges appears twice).
  const std::vector<NodeId>& consumers(NodeId i) const {
    return nodes_[i].consumers;
  }

  const std::vector<NodeId>& heads() const noexcept { return heads_; }
  bool is_head(NodeId i) const;

  /// Total edge count, network-input edges included (the
  /// dnn/graph/edges gauge).
  std::size_t edge_count() const;

 private:
  struct Node {
    std::unique_ptr<Layer> layer;
    std::vector<NodeId> inputs;
    std::vector<NodeId> consumers;  // filled by seal()
  };

  std::vector<Node> nodes_;
  std::vector<NodeId> heads_;
  bool sealed_ = false;
};

}  // namespace cf::dnn
