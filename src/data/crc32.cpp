#include "data/crc32.hpp"

#include <array>

namespace cf::data {

namespace {

std::array<std::uint32_t, 256> build_table() {
  // Reflected CRC32-C polynomial.
  constexpr std::uint32_t kPoly = 0x82F63B78u;
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<std::uint32_t, 256>& table() {
  static const auto t = build_table();
  return t;
}

constexpr std::uint32_t kMaskDelta = 0xA282EAD8u;

}  // namespace

std::uint32_t crc32c(std::span<const std::uint8_t> bytes) {
  std::uint32_t crc = ~0u;
  for (const std::uint8_t b : bytes) {
    crc = (crc >> 8) ^ table()[(crc ^ b) & 0xFFu];
  }
  return ~crc;
}

std::uint32_t mask_crc(std::uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

std::uint32_t unmask_crc(std::uint32_t masked) {
  const std::uint32_t rot = masked - kMaskDelta;
  return (rot << 15) | (rot >> 17);
}

}  // namespace cf::data
