// Tests for field statistics and the classical summary-statistics
// baseline estimator.
#include <gtest/gtest.h>

#include <cmath>

#include "core/baseline.hpp"
#include "cosmo/gaussian_field.hpp"
#include "cosmo/statistics.hpp"
#include "runtime/rng.hpp"
#include "tensor/tensor_ops.hpp"

namespace cf {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(FieldMoments, MatchesHandComputedValues) {
  Tensor volume(Shape{4}, std::vector<float>{1.0f, 2.0f, 3.0f, 4.0f});
  const cosmo::FieldMoments m = cosmo::field_moments(volume);
  EXPECT_DOUBLE_EQ(m.mean, 2.5);
  EXPECT_DOUBLE_EQ(m.variance, 1.25);
  EXPECT_NEAR(m.skewness, 0.0, 1e-12);  // symmetric values
}

TEST(FieldMoments, GaussianFieldHasGaussianMoments) {
  runtime::Rng rng(1);
  Tensor volume(Shape{1, 16, 16, 16});
  tensor::fill_normal(volume, rng, 2.0f, 0.5f);
  const cosmo::FieldMoments m = cosmo::field_moments(volume);
  EXPECT_NEAR(m.mean, 2.0, 0.05);
  EXPECT_NEAR(m.variance, 0.25, 0.02);
  EXPECT_NEAR(m.skewness, 0.0, 0.15);
  EXPECT_NEAR(m.kurtosis, 0.0, 0.3);
}

TEST(FieldMoments, SkewnessDetectsAsymmetry) {
  // Exponentially distributed values are right-skewed.
  runtime::Rng rng(2);
  Tensor volume(Shape{4096});
  for (float& v : volume.values()) {
    v = -std::log(1.0f - rng.uniform() + 1e-9f);
  }
  EXPECT_GT(cosmo::field_moments(volume).skewness, 1.0);
}

TEST(RealFieldPowerSpectrum, RecoversGrfSpectrum) {
  // Generating a GRF and measuring its real-space field must give the
  // same shell powers as measuring the modes directly.
  const cosmo::GridSpec grid{32, 256.0};
  const cosmo::PowerSpectrum ps(cosmo::CosmoParams{});
  runtime::ThreadPool pool(2);
  runtime::Rng rng(3);
  auto modes = cosmo::generate_delta_k(ps, grid, rng, pool);
  const auto direct = cosmo::measure_power_spectrum(modes, grid, 6);
  const Tensor delta =
      cosmo::delta_x_from_modes(std::move(modes), grid, pool);

  const auto from_field =
      cosmo::real_field_power_spectrum(delta, grid.box_size, 6, pool);
  for (std::size_t b = 0; b < from_field.size(); ++b) {
    if (direct[b].modes < 50) continue;
    EXPECT_NEAR(from_field[b], direct[b].power, 0.05 * direct[b].power)
        << "bin " << b;
  }
}

TEST(RealFieldPowerSpectrum, RejectsBadInputs) {
  runtime::ThreadPool pool(1);
  Tensor rect(Shape{2, 4, 4});
  EXPECT_THROW(cosmo::real_field_power_spectrum(rect, 100.0, 4, pool),
               std::invalid_argument);
  Tensor cube(Shape{4, 4, 4});
  EXPECT_THROW(cosmo::real_field_power_spectrum(cube, -1.0, 4, pool),
               std::invalid_argument);
  EXPECT_THROW(cosmo::real_field_power_spectrum(cube, 100.0, 0, pool),
               std::invalid_argument);
}

TEST(SummaryFeatures, HasExpectedLayoutAndFiniteValues) {
  runtime::ThreadPool pool(1);
  runtime::Rng rng(4);
  Tensor volume(Shape{1, 8, 8, 8});
  tensor::fill_normal(volume, rng, 0.0f, 1.0f);
  const auto features = cosmo::summary_features(volume, 64.0, 5, pool);
  EXPECT_EQ(features.size(), 3u + 5u);
  for (const double f : features) EXPECT_TRUE(std::isfinite(f));
}

TEST(SolveSpd, SolvesKnownSystem) {
  // A = [[4, 2], [2, 3]], b = [2, 5] -> x = [-0.5, 2].
  const auto x = core::solve_spd({4, 2, 2, 3}, {2, 5});
  EXPECT_NEAR(x[0], -0.5, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SolveSpd, RejectsNonSpd) {
  EXPECT_THROW(core::solve_spd({1, 2, 2, 1}, {1, 1}),
               std::invalid_argument);
  EXPECT_THROW(core::solve_spd({1, 2, 3}, {1, 1}), std::invalid_argument);
}

TEST(SummaryStatBaseline, RecoversLinearSignal) {
  // Synthetic samples whose variance encodes target 0 exactly: the
  // baseline must learn the mapping almost perfectly.
  runtime::ThreadPool pool(2);
  runtime::Rng rng(5);
  std::vector<data::Sample> samples;
  for (int i = 0; i < 64; ++i) {
    const float level = 0.2f + 0.6f * rng.uniform();
    data::Sample s;
    s.volume = Tensor(Shape{1, 8, 8, 8});
    for (float& v : s.volume.values()) v = level * rng.normal();
    s.target = {level, 0.5f, 0.5f};
    samples.push_back(std::move(s));
  }
  std::vector<data::Sample> test_samples;
  for (int i = 0; i < 16; ++i) {
    test_samples.push_back(samples[static_cast<std::size_t>(i)].clone());
  }
  data::InMemorySource train(std::move(samples));
  data::InMemorySource test(std::move(test_samples));

  core::SummaryStatBaseline baseline(core::BaselineConfig{});
  EXPECT_FALSE(baseline.fitted());
  baseline.fit(train, pool);
  EXPECT_TRUE(baseline.fitted());

  const auto reader = test.make_reader();
  double worst = 0.0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    const data::Sample sample = reader->get(i);
    const auto pred = baseline.predict(sample, pool);
    worst = std::max(worst, std::fabs(static_cast<double>(pred[0]) -
                                      sample.target[0]));
  }
  EXPECT_LT(worst, 0.08);
}

TEST(SummaryStatBaseline, PredictBeforeFitThrows) {
  core::SummaryStatBaseline baseline(core::BaselineConfig{});
  runtime::ThreadPool pool(1);
  data::Sample sample;
  sample.volume = Tensor(Shape{1, 8, 8, 8});
  EXPECT_THROW(baseline.predict(sample, pool), std::logic_error);
}

TEST(SummaryStatBaseline, RejectsBadConfigAndTinyDatasets) {
  core::BaselineConfig bad;
  bad.spectrum_bins = 0;
  EXPECT_THROW(core::SummaryStatBaseline{bad}, std::invalid_argument);

  core::SummaryStatBaseline baseline(core::BaselineConfig{});
  runtime::ThreadPool pool(1);
  std::vector<data::Sample> few(2);
  for (auto& s : few) s.volume = Tensor(Shape{1, 8, 8, 8});
  data::InMemorySource source(std::move(few));
  EXPECT_THROW(baseline.fit(source, pool), std::invalid_argument);
}

}  // namespace
}  // namespace cf
