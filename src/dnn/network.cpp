#include "dnn/network.hpp"

#include <cstring>
#include <stdexcept>

#include "obs/telemetry.hpp"

namespace cf::dnn {

using tensor::Shape;
using tensor::Tensor;

void Network::add(std::unique_ptr<Layer> layer) {
  if (finalized_) {
    throw std::logic_error("Network::add: network already finalized");
  }
  layers_.push_back(std::move(layer));
}

void Network::finalize(const Shape& input_shape) {
  if (finalized_) throw std::logic_error("Network::finalize: called twice");
  if (layers_.empty()) {
    throw std::logic_error("Network::finalize: no layers");
  }
  input_shape_ = input_shape;
  input_ = Tensor(input_shape);
  Shape shape = input_shape;
  activations_.reserve(layers_.size());
  diffs_.reserve(layers_.size());
  for (auto& layer : layers_) {
    shape = layer->plan(shape);
    activations_.emplace_back(shape);
    diffs_.emplace_back(shape);
  }
  output_shape_ = shape;
  finalized_ = true;
}

const Tensor& Network::forward(const Tensor& input,
                               runtime::ThreadPool& pool) {
  if (!finalized_) throw std::logic_error("Network::forward: not finalized");
  if (input.shape() != input_shape_) {
    throw std::invalid_argument("Network::forward: input shape " +
                                input.shape().to_string() + ", expected " +
                                input_shape_.to_string());
  }
  CF_TRACE_SCOPE("net/forward", "dnn");
  std::memcpy(input_.data(), input.data(), input.size() * sizeof(float));
  const Tensor* src = &input_;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    CF_TRACE_SCOPE(layers_[i]->span_label_fwd().c_str(),
                   layers_[i]->kind().c_str());
    layers_[i]->forward(*src, activations_[i], pool);
    src = &activations_[i];
  }
  forward_done_ = true;
  return activations_.back();
}

void Network::backward(const Tensor& dloss, runtime::ThreadPool& pool) {
  if (!forward_done_) {
    throw std::logic_error("Network::backward: no preceding forward");
  }
  if (dloss.shape() != output_shape_) {
    throw std::invalid_argument("Network::backward: dloss shape mismatch");
  }
  CF_TRACE_SCOPE("net/backward", "dnn");
  std::memcpy(diffs_.back().data(), dloss.data(),
              dloss.size() * sizeof(float));
  for (std::size_t i = layers_.size(); i-- > 0;) {
    const Tensor& src = i == 0 ? input_ : activations_[i - 1];
    const bool need_dsrc = i > 0;
    // diffs_[i - 1] is overwritten by layer i's backward; pass a dummy
    // for the first layer (its dsrc is skipped).
    Tensor& dsrc = need_dsrc ? diffs_[i - 1] : diffs_[0];
    CF_TRACE_SCOPE(layers_[i]->span_label_bwd().c_str(),
                   layers_[i]->kind().c_str());
    layers_[i]->backward(src, diffs_[i], dsrc, need_dsrc, pool);
  }
}

void Network::zero_grads() {
  for (const ParamView& p : params()) p.grad->zero();
}

std::vector<ParamView> Network::params() {
  std::vector<ParamView> all;
  for (auto& layer : layers_) {
    for (ParamView& p : layer->params()) all.push_back(p);
  }
  return all;
}

std::int64_t Network::param_count() {
  std::int64_t n = 0;
  for (const ParamView& p : params()) n += p.value->shape().numel();
  return n;
}

FlopCounts Network::flops(bool skip_first_bwd_data) const {
  FlopCounts total;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    FlopCounts f = layers_[i]->flops();
    if (i == 0 && skip_first_bwd_data) f.bwd_data = 0;
    total += f;
  }
  return total;
}

namespace {

template <typename CopyFn>
void walk_flat(std::vector<ParamView> params, std::size_t expected,
               CopyFn&& copy) {
  std::size_t offset = 0;
  for (const ParamView& p : params) {
    const std::size_t n = static_cast<std::size_t>(p.value->shape().numel());
    copy(p, offset, n);
    offset += n;
  }
  if (offset != expected) {
    throw std::invalid_argument(
        "Network flat vector: span size does not match parameter count");
  }
}

}  // namespace

void Network::copy_params_to(std::span<float> out) {
  walk_flat(params(), out.size(),
            [&](const ParamView& p, std::size_t offset, std::size_t n) {
              std::memcpy(out.data() + offset, p.value->data(),
                          n * sizeof(float));
            });
}

void Network::set_params_from(std::span<const float> in) {
  walk_flat(params(), in.size(),
            [&](const ParamView& p, std::size_t offset, std::size_t n) {
              std::memcpy(p.value->data(), in.data() + offset,
                          n * sizeof(float));
            });
}

void Network::copy_grads_to(std::span<float> out) {
  walk_flat(params(), out.size(),
            [&](const ParamView& p, std::size_t offset, std::size_t n) {
              std::memcpy(out.data() + offset, p.grad->data(),
                          n * sizeof(float));
            });
}

void Network::set_grads_from(std::span<const float> in) {
  walk_flat(params(), in.size(),
            [&](const ParamView& p, std::size_t offset, std::size_t n) {
              std::memcpy(p.grad->data(), in.data() + offset,
                          n * sizeof(float));
            });
}

std::vector<LayerProfile> Network::profiles() const {
  std::vector<LayerProfile> rows;
  rows.reserve(layers_.size());
  for (const auto& layer : layers_) {
    LayerProfile row;
    row.name = layer->name();
    row.kind = layer->kind();
    row.fwd = layer->timers().fwd;
    row.bwd_data = layer->timers().bwd_data;
    row.bwd_weights = layer->timers().bwd_weights;
    row.flops = layer->flops();
    rows.push_back(row);
  }
  return rows;
}

void Network::reset_profiles() {
  for (auto& layer : layers_) layer->reset_timers();
}

}  // namespace cf::dnn
