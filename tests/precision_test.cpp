// Reduced-precision inference (DESIGN.md §2.5): conversion kernels,
// quantization edge cases, the network-level side arenas, and the
// accuracy-tolerance gate that licenses bf16/int8w serving.
//
// The tolerance tests run the SAME fixture (core::precision_eval) the
// precision ablation bench reports on, with hard MAE thresholds: a
// kernel change that degrades reduced-precision accuracy fails here
// before it ships a bench number. fp32 stays the reference — nothing
// in this suite permits it to change bits.
//
// Bit-exactness cases avoid denormal inputs deliberately: with native
// AVX512BF16 the vectorized narrow flushes denormals to zero while the
// scalar path round-trips them, and the network never produces them
// (precision.hpp documents the divergence).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "core/precision_eval.hpp"
#include "core/topology.hpp"
#include "dnn/network.hpp"
#include "dnn/precision.hpp"
#include "obs/metrics.hpp"
#include "runtime/rng.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/server.hpp"
#include "tensor/tensor_ops.hpp"

namespace cf {
namespace {

using dnn::bf16_t;
using tensor::Tensor;

// --- Conversion kernels ----------------------------------------------

TEST(Precision, Bf16RoundTripIsExactForRepresentableValues) {
  // Values whose mantissa fits in 8 bits survive the round trip
  // bit-for-bit, including signs and signed zero.
  for (const float v : {0.0f, -0.0f, 1.0f, -1.0f, 0.5f, -2.5f, 256.0f,
                        -3.140625f, 1.0f / 1024.0f}) {
    const float back = dnn::bf16_to_float(dnn::float_to_bf16(v));
    EXPECT_EQ(dnn::f32_bits(back), dnn::f32_bits(v)) << "v=" << v;
  }
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(dnn::bf16_to_float(dnn::float_to_bf16(inf)), inf);
  EXPECT_EQ(dnn::bf16_to_float(dnn::float_to_bf16(-inf)), -inf);
}

TEST(Precision, Bf16RoundsToNearestEven) {
  // 1.0 + 2^-9 sits exactly halfway between bf16(1.0) = 0x3f80 and
  // its successor 0x3f81; the keep bit is even, so RNE rounds down.
  EXPECT_EQ(dnn::float_to_bf16(dnn::bits_f32(0x3f808000u)), 0x3f80);
  // The next halfway point (keep bit odd) rounds up to even 0x3f82.
  EXPECT_EQ(dnn::float_to_bf16(dnn::bits_f32(0x3f818000u)), 0x3f82);
  // Just above / below halfway round to nearest regardless of parity.
  EXPECT_EQ(dnn::float_to_bf16(dnn::bits_f32(0x3f808001u)), 0x3f81);
  EXPECT_EQ(dnn::float_to_bf16(dnn::bits_f32(0x3f807fffu)), 0x3f80);
  // Mantissa carry propagates into the exponent: 1.9999... -> 2.0.
  EXPECT_EQ(dnn::float_to_bf16(dnn::bits_f32(0x3fffffffu)), 0x4000);
}

TEST(Precision, Bf16QuietsNaNAndNeverMakesInfinity) {
  // A signalling NaN whose payload lives entirely in the truncated
  // bits would become an infinity under plain truncation; the
  // converter forces the quiet bit instead.
  const float snan = dnn::bits_f32(0x7f800001u);
  const bf16_t h = dnn::float_to_bf16(snan);
  EXPECT_TRUE(std::isnan(dnn::bf16_to_float(h)));
  EXPECT_EQ(h & 0x0040u, 0x0040u);
  EXPECT_TRUE(std::isnan(
      dnn::bf16_to_float(dnn::float_to_bf16(std::nanf("")))));
}

TEST(Precision, Bf16ArrayConvertersMatchScalarBits) {
  // The vectorized converters (AVX-512 when available) must produce
  // the scalar helper's bits on every lane, across vector-width
  // boundaries and the remainder tail.
  runtime::Rng rng(17);
  std::vector<float> src(67);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = rng.normal() * std::pow(10.0f, static_cast<float>(i % 9) - 4.0f);
  }
  src[3] = 0.0f;
  src[19] = -std::numeric_limits<float>::infinity();
  src[33] = std::nanf("");
  std::vector<bf16_t> narrowed(src.size());
  dnn::bf16_from_f32(src.data(), narrowed.data(), src.size());
  std::vector<float> widened(src.size());
  dnn::f32_from_bf16(narrowed.data(), widened.data(), src.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(narrowed[i], dnn::float_to_bf16(src[i])) << "lane " << i;
    EXPECT_EQ(dnn::f32_bits(widened[i]),
              dnn::f32_bits(dnn::bf16_to_float(narrowed[i])))
        << "lane " << i;
  }
}

TEST(Precision, Int8ScaleAndQuantEdgeCases) {
  // Dead (all-zero) channel: scale 0, quants 0, dequant exact.
  EXPECT_EQ(dnn::int8_scale_from_max(0.0f), 0.0f);
  EXPECT_EQ(dnn::quantize_int8(0.0f, 0.0f), 0);
  EXPECT_EQ(dnn::quantize_int8(123.0f, 0.0f), 0);

  // The channel max maps to exactly ±127 (symmetric grid, no -128).
  const float max_abs = 0.37f;
  const float inv_scale = 127.0f / max_abs;
  EXPECT_EQ(dnn::quantize_int8(max_abs, inv_scale), 127);
  EXPECT_EQ(dnn::quantize_int8(-max_abs, inv_scale), -127);
  // Out-of-range values clamp instead of wrapping.
  EXPECT_EQ(dnn::quantize_int8(10.0f * max_abs, inv_scale), 127);
  EXPECT_EQ(dnn::quantize_int8(-10.0f * max_abs, inv_scale), -127);

  // Round half away from zero on the integer grid.
  EXPECT_EQ(dnn::quantize_int8(0.5f, 1.0f), 1);
  EXPECT_EQ(dnn::quantize_int8(-0.5f, 1.0f), -1);
  EXPECT_EQ(dnn::quantize_int8(0.49f, 1.0f), 0);

  // scale * 127 recovers the channel max exactly in round-trip terms.
  const float scale = dnn::int8_scale_from_max(max_abs);
  EXPECT_NEAR(scale * 127.0f, max_abs, 1e-7f);
}

// --- Shared eval fixture ---------------------------------------------

TEST(Precision, EvalFixtureIsDeterministicAndStreamStable) {
  const tensor::Shape shape{1, 4, 4, 4};
  const auto a = core::precision_eval_inputs(shape, 3);
  const auto b = core::precision_eval_inputs(shape, 3);
  ASSERT_EQ(a.size(), 3u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(tensor::max_abs_diff(a[i].to_vector(), b[i].to_vector()),
              0.0f);
  }
  // Per-input Philox streams: a longer set extends, never reshuffles.
  const auto c = core::precision_eval_inputs(shape, 5);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(tensor::max_abs_diff(a[i].to_vector(), c[i].to_vector()),
              0.0f);
  }
}

// --- Network-level arenas and context creation -----------------------

TEST(Precision, PrepareBuildsArenasAndRepacksOnReload) {
  dnn::Network net = core::build_network(core::cosmoflow_scaled(8), 7);
  EXPECT_TRUE(net.precision_prepared(dnn::Precision::kFp32));
  EXPECT_FALSE(net.precision_prepared(dnn::Precision::kBf16));
  EXPECT_FALSE(net.precision_prepared(dnn::Precision::kInt8Weights));

  net.prepare_inference_precision(dnn::Precision::kBf16);
  ASSERT_TRUE(net.precision_prepared(dnn::Precision::kBf16));
  // Conv segments keep the plain elementwise RNE image (the kernels
  // widen on load); dense segments are repacked into vdpbf16ps tiles,
  // so only their contents — not their layout — are the fp32 image.
  bool checked_conv = false;
  for (std::size_t i = 0; i < net.layer_count(); ++i) {
    if (net.layer(i).name().rfind("conv", 0) != 0) continue;
    checked_conv = true;
    const auto fp32 = net.param_segment(i);
    const auto packed = net.bf16_param_segment(i);
    ASSERT_EQ(fp32.size(), packed.size());
    for (std::size_t j = 0; j < fp32.size(); ++j) {
      ASSERT_EQ(packed[j], dnn::float_to_bf16(fp32[j]))
          << "layer " << i << " elem " << j;
    }
  }
  EXPECT_TRUE(checked_conv);

  // Re-pack after a weight change: the image follows the new values.
  std::vector<float> params(static_cast<std::size_t>(net.param_count()));
  net.copy_params_to(params);
  for (float& p : params) p *= 2.0f;
  net.set_params_from(params);
  net.prepare_inference_precision(dnn::Precision::kBf16);
  const auto seg0 = net.param_segment(0);
  const auto packed0 = net.bf16_param_segment(0);
  for (std::size_t j = 0; j < seg0.size(); ++j) {
    ASSERT_EQ(packed0[j], dnn::float_to_bf16(seg0[j]));
  }
}

TEST(Precision, Int8ScalesMatchChannelMaxima) {
  dnn::Network net = core::build_network(core::cosmoflow_scaled(8), 7);
  net.prepare_inference_precision(dnn::Precision::kInt8Weights);
  ASSERT_TRUE(net.precision_prepared(dnn::Precision::kInt8Weights));
  bool saw_quantized_layer = false;
  for (std::size_t i = 0; i < net.layer_count(); ++i) {
    const auto scales = net.int8_scale_segment(i);
    const auto quants = net.int8_weight_segment(i);
    if (scales.empty()) continue;
    saw_quantized_layer = true;
    ASSERT_FALSE(quants.empty());
    for (const float s : scales) {
      EXPECT_TRUE(std::isfinite(s));
      EXPECT_GE(s, 0.0f);
    }
    // Quants stay on the symmetric grid.
    for (const std::int8_t q : quants) EXPECT_GE(q, -127);
  }
  EXPECT_TRUE(saw_quantized_layer);
}

TEST(Precision, MakeContextRejectsUnpreparedAndTraining) {
  dnn::Network net = core::build_network(core::cosmoflow_scaled(8), 7);
  // Unprepared reduced precision is a hard error, not a silent fp32.
  EXPECT_THROW(
      net.make_context(dnn::ExecMode::kInference, dnn::Precision::kBf16),
      std::logic_error);
  net.prepare_inference_precision(dnn::Precision::kBf16);
  // Training contexts are fp32-only even when bf16 is prepared.
  EXPECT_THROW(
      net.make_context(dnn::ExecMode::kTraining, dnn::Precision::kBf16),
      std::logic_error);
  dnn::ExecContext ctx =
      net.make_context(dnn::ExecMode::kInference, dnn::Precision::kBf16);
  EXPECT_EQ(ctx.precision(), dnn::Precision::kBf16);
  EXPECT_EQ(obs::Registry::global().gauge("dnn/ctx/precision").value(),
            1.0);
}

// --- Determinism: each precision is bitwise stable against itself. ---

TEST(Precision, Bf16ForwardIsDeterministicAcrossContextsAndPools) {
  dnn::Network net = core::build_network(core::cosmoflow_scaled(16), 7);
  net.prepare_inference_precision(dnn::Precision::kBf16);
  const auto inputs = core::precision_eval_inputs(net.input_shape(), 2);

  runtime::ThreadPool pool1(1);
  dnn::ExecContext ref =
      net.make_context(dnn::ExecMode::kInference, dnn::Precision::kBf16);
  std::vector<std::vector<float>> expected;
  for (const Tensor& in : inputs) {
    expected.push_back(ref.forward(in, pool1).to_vector());
  }

  // Fresh context, wider pool: identical bits (the partitioner never
  // changes per-row summation order — DESIGN.md §2.4 holds per mode).
  runtime::ThreadPool pool3(3);
  dnn::ExecContext other =
      net.make_context(dnn::ExecMode::kInference, dnn::Precision::kBf16);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_EQ(tensor::max_abs_diff(
                  other.forward(inputs[i], pool3).to_vector(),
                  expected[i]),
              0.0f);
  }
}

// --- The accuracy-tolerance gate -------------------------------------

// MAE of `precision` predictions against fp32 over the shared fixture.
// Thresholds below are hard: measured at these exact settings
// (cosmoflow_scaled(16), seed 7, 12 inputs) and set ~4x above the
// observed value, so drift well past rounding noise fails the build.
double mae_vs_fp32(dnn::Network& net, dnn::Precision precision,
                   double* mean_abs_fp32 = nullptr) {
  const auto inputs = core::precision_eval_inputs(net.input_shape(), 12);
  runtime::ThreadPool pool(1);
  dnn::ExecContext fp32_ctx = net.make_context(dnn::ExecMode::kInference);
  dnn::ExecContext rp_ctx =
      net.make_context(dnn::ExecMode::kInference, precision);
  std::vector<float> ref, got;
  for (const Tensor& in : inputs) {
    const auto r = fp32_ctx.forward(in, pool).to_vector();
    const auto g = rp_ctx.forward(in, pool).to_vector();
    ref.insert(ref.end(), r.begin(), r.end());
    got.insert(got.end(), g.begin(), g.end());
  }
  if (mean_abs_fp32 != nullptr) {
    double total = 0.0;
    for (const float v : ref) total += std::abs(v);
    *mean_abs_fp32 = total / static_cast<double>(ref.size());
  }
  return core::prediction_mae(got, ref);
}

TEST(Precision, Bf16PredictionsWithinTolerance) {
  dnn::Network net = core::build_network(core::cosmoflow_scaled(16), 7);
  net.prepare_inference_precision(dnn::Precision::kBf16);
  double mean_abs = 0.0;
  const double mae = mae_vs_fp32(net, dnn::Precision::kBf16, &mean_abs);
  // bf16 is not fp32 — a zero MAE would mean the fast path silently
  // fell back to the reference kernels.
  EXPECT_GT(mae, 0.0);
  EXPECT_LT(mae, 8e-3);
  // And the error must be small relative to the prediction scale.
  EXPECT_LT(mae, 0.05 * mean_abs);
}

TEST(Precision, Int8WeightPredictionsWithinTolerance) {
  dnn::Network net = core::build_network(core::cosmoflow_scaled(16), 7);
  net.prepare_inference_precision(dnn::Precision::kInt8Weights);
  double mean_abs = 0.0;
  const double mae =
      mae_vs_fp32(net, dnn::Precision::kInt8Weights, &mean_abs);
  EXPECT_GT(mae, 0.0);
  EXPECT_LT(mae, 2.5e-2);
  EXPECT_LT(mae, 0.15 * mean_abs);
}

// --- Serving integration ---------------------------------------------

TEST(Precision, ServerRejectsUnpreparedPrecision) {
  const auto network = std::make_shared<const dnn::Network>(
      core::build_network(core::cosmoflow_scaled(8), 7));
  serve::ServerConfig config;
  config.workers = 1;
  config.precision = dnn::Precision::kBf16;
  EXPECT_THROW(serve::Server(network, config), std::invalid_argument);
}

TEST(Precision, ServedBf16MatchesSerialBf16Bits) {
  auto mutable_net = std::make_shared<dnn::Network>(
      core::build_network(core::cosmoflow_scaled(8), 7));
  mutable_net->prepare_inference_precision(dnn::Precision::kBf16);
  const std::shared_ptr<const dnn::Network> network = mutable_net;

  const auto inputs = core::precision_eval_inputs(network->input_shape(), 4);
  runtime::ThreadPool pool(1);
  dnn::ExecContext ref = network->make_context(
      dnn::ExecMode::kInference, dnn::Precision::kBf16);
  std::vector<std::vector<float>> expected;
  for (const Tensor& in : inputs) {
    expected.push_back(ref.forward(in, pool).to_vector());
  }

  serve::ServerConfig config;
  config.workers = 2;
  config.max_batch = 2;
  config.precision = dnn::Precision::kBf16;
  serve::Server server(network, config);
  EXPECT_EQ(obs::Registry::global().gauge("serve/precision").value(), 1.0);
  std::vector<std::future<serve::InferenceResult>> futures(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    ASSERT_EQ(server.submit(inputs[i].clone(), &futures[i]),
              serve::SubmitStatus::kAccepted);
  }
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const serve::InferenceResult r = futures[i].get();
    EXPECT_EQ(tensor::max_abs_diff(r.output, expected[i]), 0.0f);
  }
  server.shutdown();
}

}  // namespace
}  // namespace cf
