// Tests for the filesystem and step-time models that regenerate the
// paper's scaling study (Fig 4, §VI-A, §VI-B).
#include <gtest/gtest.h>

#include <cmath>

#include "iosim/filesystem_model.hpp"
#include "iosim/steptime_model.hpp"

namespace cf::iosim {
namespace {

TEST(FilesystemModel, AggregateBandwidthGrowsAndSaturates) {
  const FilesystemModel lustre(FilesystemSpec::cori_lustre());
  double previous = 0.0;
  for (const int nodes : {1, 8, 64, 512, 4096, 32768}) {
    const double bw = lustre.aggregate_bandwidth_gbps(nodes);
    EXPECT_GE(bw, previous);
    EXPECT_LE(bw, lustre.spec().aggregate_max_gbps);
    previous = bw;
  }
  // The cap binds at extreme scale.
  EXPECT_DOUBLE_EQ(lustre.aggregate_bandwidth_gbps(100000),
                   lustre.spec().aggregate_max_gbps);
}

TEST(FilesystemModel, PerNodeBandwidthDecreasesWithScale) {
  const FilesystemModel lustre(FilesystemSpec::cori_lustre());
  double previous = 1e9;
  for (const int nodes : {1, 16, 128, 1024, 8192}) {
    const double bw = lustre.node_bandwidth_gbps(nodes);
    EXPECT_LE(bw, previous);
    EXPECT_LE(bw, lustre.spec().node_max_gbps + 1e-12);
    previous = bw;
  }
}

TEST(FilesystemModel, DataWarpOutperformsLustreAtScale) {
  // The load-bearing fact behind Fig 4's two curves.
  const FilesystemModel lustre(FilesystemSpec::cori_lustre());
  const FilesystemModel datawarp(FilesystemSpec::cori_datawarp());
  for (const int nodes : {128, 512, 1024, 8192}) {
    EXPECT_GT(datawarp.node_bandwidth_gbps(nodes),
              lustre.node_bandwidth_gbps(nodes))
        << "nodes = " << nodes;
  }
}

TEST(FilesystemModel, DataWarpFeedsCosmoFlowAt8k) {
  // 62 MB/s/node required (§VI-A); the burst buffer must deliver it at
  // 8192 nodes, Lustre must not.
  const FilesystemModel datawarp(FilesystemSpec::cori_datawarp());
  const FilesystemModel lustre(FilesystemSpec::cori_lustre());
  const double required_gbps = 62.0 / 1000.0;
  EXPECT_GT(datawarp.node_bandwidth_gbps(8192), required_gbps);
  EXPECT_LT(lustre.node_bandwidth_gbps(8192), required_gbps);
}

TEST(FilesystemModel, ReadSecondsScalesWithBytes) {
  const FilesystemModel fs(FilesystemSpec::cori_datawarp());
  EXPECT_NEAR(fs.read_seconds(64, 16.0), 2.0 * fs.read_seconds(64, 8.0),
              1e-12);
  EXPECT_THROW(fs.read_seconds(0, 8.0), std::invalid_argument);
  EXPECT_THROW(fs.read_seconds(8, -1.0), std::invalid_argument);
}

TEST(FilesystemModel, StragglerSamplingHasUnitMeanAndSpread) {
  FilesystemSpec spec = FilesystemSpec::cori_lustre();
  const FilesystemModel fs(spec);
  runtime::Rng rng(17);
  const double expected = fs.read_seconds(256, 8.0);
  double sum = 0.0;
  double max_seen = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double t = fs.sample_read_seconds(256, 8.0, rng);
    EXPECT_GT(t, 0.0);
    sum += t;
    max_seen = std::max(max_seen, t);
  }
  EXPECT_NEAR(sum / n, expected, 0.03 * expected);  // unit-mean lognormal
  EXPECT_GT(max_seen, 1.5 * expected);              // heavy tail exists
}

TEST(BwMin, ReproducesPaperEquation1) {
  // b = 1, S = 8 MB, t = 0.129 s -> 62 MB/s/node (§VI-A).
  EXPECT_NEAR(bw_min_mb_per_s(1.0, 8.0, 0.129), 62.0, 0.5);
  // 2.8 GB/s per OST feeds ~46 nodes.
  EXPECT_NEAR(nodes_fed_per_ost(2.8, 62.0), 45.2, 1.0);
  EXPECT_THROW(bw_min_mb_per_s(1.0, 8.0, 0.0), std::invalid_argument);
}

class StepModel : public ::testing::Test {
 protected:
  StepModel()
      : datawarp_(StepModelParams{},
                  FilesystemModel(FilesystemSpec::cori_datawarp())),
        lustre_(StepModelParams{},
                FilesystemModel(FilesystemSpec::cori_lustre())) {}

  StepTimeModel datawarp_;
  StepTimeModel lustre_;
};

TEST_F(StepModel, AllreduceMatchesPaperMeasurements) {
  // §VI-B: 33 ms at 1024 nodes, ~39 ms at 8192.
  EXPECT_NEAR(datawarp_.allreduce_seconds(1024), 0.033, 0.004);
  EXPECT_NEAR(datawarp_.allreduce_seconds(8192), 0.039, 0.005);
  EXPECT_DOUBLE_EQ(datawarp_.allreduce_seconds(1), 0.0);
}

TEST_F(StepModel, StepTimesMatchPaperMeasurements) {
  // 129 ms single node (DataWarp), ~150 ms at 128, ~162 ms at 1024,
  // ~168 ms at 8192.
  EXPECT_NEAR(datawarp_.step_seconds(1), 0.129, 0.005);
  EXPECT_NEAR(datawarp_.step_seconds(128), 0.150, 0.012);
  EXPECT_NEAR(datawarp_.step_seconds(1024), 0.162, 0.012);
  EXPECT_NEAR(datawarp_.step_seconds(8192), 0.168, 0.012);
}

TEST_F(StepModel, LustreStepSlowerAt128Nodes) {
  // The paper measures 179 ms vs 150 ms at 128 ranks (~16% absolute
  // performance gap).
  const double lustre = lustre_.step_seconds(128);
  const double datawarp = datawarp_.step_seconds(128);
  EXPECT_GT(lustre, datawarp);
  EXPECT_NEAR(lustre, 0.179, 0.02);
}

TEST_F(StepModel, BurstBufferEfficiencyAt8kMatchesPaper) {
  // 77% parallel efficiency at 8192 nodes (the headline result).
  const auto points =
      datawarp_.sweep({1, 8192}, /*train=*/163840, /*val=*/8192, 69.33e9);
  EXPECT_NEAR(points[1].efficiency, 0.77, 0.05);
  // 3.5 Pflop/s sustained.
  EXPECT_NEAR(points[1].sustained_pflops, 3.5, 0.4);
}

TEST_F(StepModel, LustreKneesBeyond512Nodes) {
  const std::vector<int> nodes{64, 128, 256, 512, 1024, 2048};
  const auto lustre = lustre_.sweep(nodes, 163840, 8192, 69.33e9);
  const auto datawarp = datawarp_.sweep(nodes, 163840, 8192, 69.33e9);
  // Efficiency on Lustre decays monotonically and falls below ~58% at
  // 1024 nodes; the burst buffer stays high.
  for (std::size_t i = 1; i < lustre.size(); ++i) {
    EXPECT_LT(lustre[i].efficiency, lustre[i - 1].efficiency);
  }
  EXPECT_LT(lustre[4].efficiency, 0.62);   // 1024 nodes: "<58%" regime
  EXPECT_GT(datawarp[4].efficiency, 0.75);
  // And Lustre is strictly worse than the burst buffer at every scale.
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_LT(lustre[i].efficiency, datawarp[i].efficiency + 1e-12);
  }
}

TEST_F(StepModel, PizDaintEfficiencyAt512MatchesPaper) {
  StepModelParams params;
  params.compute_seconds = 69.33e9 / 388e9;  // P100 node: 388 Gflop/s
  const StepTimeModel piz(params,
                          FilesystemModel(FilesystemSpec::piz_daint_lustre()));
  const auto points = piz.sweep({1, 512}, 163840, 8192, 69.33e9);
  EXPECT_NEAR(points[1].efficiency, 0.44, 0.08);
}

TEST_F(StepModel, SpeedupIsBoundedByIdeal) {
  const auto points = datawarp_.sweep({1, 2, 4, 8, 16, 4096}, 163840, 8192,
                                      69.33e9);
  for (const auto& p : points) {
    EXPECT_LE(p.speedup, static_cast<double>(p.nodes) * 1.0001);
    EXPECT_GT(p.speedup, 0.0);
  }
  EXPECT_NEAR(points[0].speedup, 1.0, 1e-9);
}

TEST_F(StepModel, RejectsBadArguments) {
  EXPECT_THROW(datawarp_.allreduce_seconds(0), std::invalid_argument);
  EXPECT_THROW(datawarp_.epoch_seconds(4, 0, 0), std::invalid_argument);
  StepModelParams bad;
  bad.compute_seconds = 0.0;
  EXPECT_THROW(
      StepTimeModel(bad, FilesystemModel(FilesystemSpec::cori_datawarp())),
      std::invalid_argument);
}

}  // namespace
}  // namespace cf::iosim
