#include "data/crc32.hpp"

#include <array>
#include <atomic>
#include <stdexcept>

#include "data/bytes.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define COSMOFLOW_CRC32_X86 1
#include <nmmintrin.h>
#endif

namespace cf::data {

namespace {

// t[0] is the classic bytewise table; t[k] advances a byte through
// k additional zero bytes, so eight lanes of a 64-bit word can be
// folded independently and xor-combined (slice-by-8).
struct Tables {
  std::array<std::array<std::uint32_t, 256>, 8> t;
};

Tables build_tables() {
  // Reflected CRC32-C polynomial.
  constexpr std::uint32_t kPoly = 0x82F63B78u;
  Tables tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    tables.t[0][i] = crc;
  }
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      const std::uint32_t prev = tables.t[k - 1][i];
      tables.t[k][i] = (prev >> 8) ^ tables.t[0][prev & 0xFFu];
    }
  }
  return tables;
}

const Tables& tables() {
  static const Tables t = build_tables();
  return t;
}

constexpr std::uint32_t kMaskDelta = 0xA282EAD8u;

// --- kernels ---------------------------------------------------------
// Each takes and returns the *inverted* running state (~crc), so the
// dispatcher owns the single pre/post complement.

std::uint32_t update_table(std::uint32_t crc,
                           std::span<const std::uint8_t> bytes) {
  const auto& t0 = tables().t[0];
  for (const std::uint8_t b : bytes) {
    crc = (crc >> 8) ^ t0[(crc ^ b) & 0xFFu];
  }
  return crc;
}

std::uint32_t update_slice8(std::uint32_t crc,
                            std::span<const std::uint8_t> bytes) {
  const Tables& tb = tables();
  const std::uint8_t* p = bytes.data();
  std::size_t n = bytes.size();
  while (n >= 8) {
    const std::uint64_t x =
        static_cast<std::uint64_t>(crc) ^ load_le<std::uint64_t>(p);
    crc = tb.t[7][x & 0xFFu] ^ tb.t[6][(x >> 8) & 0xFFu] ^
          tb.t[5][(x >> 16) & 0xFFu] ^ tb.t[4][(x >> 24) & 0xFFu] ^
          tb.t[3][(x >> 32) & 0xFFu] ^ tb.t[2][(x >> 40) & 0xFFu] ^
          tb.t[1][(x >> 48) & 0xFFu] ^ tb.t[0][(x >> 56) & 0xFFu];
    p += 8;
    n -= 8;
  }
  return update_table(crc, {p, n});
}

#ifdef COSMOFLOW_CRC32_X86
__attribute__((target("sse4.2"))) std::uint32_t update_hardware(
    std::uint32_t crc, std::span<const std::uint8_t> bytes) {
  const std::uint8_t* p = bytes.data();
  std::size_t n = bytes.size();
  std::uint64_t state = crc;
  while (n >= 8) {
    state = _mm_crc32_u64(state, load_le<std::uint64_t>(p));
    p += 8;
    n -= 8;
  }
  std::uint32_t crc32 = static_cast<std::uint32_t>(state);
  while (n > 0) {
    crc32 = _mm_crc32_u8(crc32, *p++);
    --n;
  }
  return crc32;
}

bool detect_sse42() noexcept { return __builtin_cpu_supports("sse4.2"); }
#else
bool detect_sse42() noexcept { return false; }
#endif

CrcImpl default_impl() noexcept {
  return detect_sse42() ? CrcImpl::kHardware : CrcImpl::kSlice8;
}

std::atomic<CrcImpl> g_impl{default_impl()};

std::uint32_t update_with(CrcImpl impl, std::uint32_t crc,
                          std::span<const std::uint8_t> bytes) {
  switch (impl) {
    case CrcImpl::kTable:
      return update_table(crc, bytes);
    case CrcImpl::kSlice8:
      return update_slice8(crc, bytes);
    case CrcImpl::kHardware:
#ifdef COSMOFLOW_CRC32_X86
      return update_hardware(crc, bytes);
#else
      break;
#endif
  }
  throw std::logic_error("crc32c: hardware kernel unavailable");
}

}  // namespace

std::uint32_t crc32c(std::span<const std::uint8_t> bytes) {
  return ~update_with(g_impl.load(std::memory_order_relaxed), ~0u, bytes);
}

const char* to_string(CrcImpl impl) noexcept {
  switch (impl) {
    case CrcImpl::kTable:
      return "table";
    case CrcImpl::kSlice8:
      return "slice8";
    case CrcImpl::kHardware:
      return "hw";
  }
  return "?";
}

bool crc32c_hardware_available() noexcept { return detect_sse42(); }

CrcImpl crc32c_impl() noexcept {
  return g_impl.load(std::memory_order_relaxed);
}

void set_crc32c_impl(CrcImpl impl) {
  if (impl == CrcImpl::kHardware && !crc32c_hardware_available()) {
    throw std::invalid_argument(
        "set_crc32c_impl: this machine has no SSE4.2 crc32");
  }
  g_impl.store(impl, std::memory_order_relaxed);
}

std::uint32_t crc32c_with(CrcImpl impl,
                          std::span<const std::uint8_t> bytes) {
  if (impl == CrcImpl::kHardware && !crc32c_hardware_available()) {
    throw std::invalid_argument(
        "crc32c_with: this machine has no SSE4.2 crc32");
  }
  return ~update_with(impl, ~0u, bytes);
}

std::uint32_t mask_crc(std::uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

std::uint32_t unmask_crc(std::uint32_t masked) {
  const std::uint32_t rot = masked - kMaskDelta;
  return (rot << 15) | (rot >> 17);
}

}  // namespace cf::data
