// Multi-input / shape-agnostic graph nodes (DESIGN.md §2.8).
//
// Add is the residual-sum node: N equal-shaped inputs, one elementwise
// sum, summed left-to-right in edge order so fan-in stays bitwise
// deterministic. GlobalAvgPool collapses a blocked activation volume to
// one value per channel; because its output shape depends only on the
// channel count, a dense head behind it is input-size-agnostic — the
// enabler for variable input-size inference via per-shape contexts
// (Network::make_shape_view).
#pragma once

#include "dnn/layer.hpp"

namespace cf::dnn {

class Add final : public Layer {
 public:
  explicit Add(std::string name, std::size_t arity = 2);

  std::string kind() const override { return "eltwise"; }
  std::size_t arity() const override { return arity_; }

  /// Multi-input: plan()/forward()/backward() single-input entry points
  /// throw; the graph drives the *_multi set.
  tensor::Shape plan(const tensor::Shape& input) override;
  tensor::Shape plan_multi(std::span<const tensor::Shape> inputs) override;

  void forward(const tensor::Tensor& src, tensor::Tensor& dst,
               LayerExecState& exec,
               runtime::ThreadPool& pool) const override;
  void backward(const tensor::Tensor& src, tensor::Tensor& ddst,
                tensor::Tensor& dsrc, bool need_dsrc, LayerExecState& exec,
                runtime::ThreadPool& pool) const override;

  void forward_multi(std::span<const tensor::Tensor* const> srcs,
                     tensor::Tensor& dst, LayerExecState& exec,
                     runtime::ThreadPool& pool) const override;
  void backward_multi(std::span<const tensor::Tensor* const> srcs,
                      const tensor::Tensor& dst, tensor::Tensor& ddst,
                      std::span<tensor::Tensor* const> dsrcs,
                      std::span<const std::uint8_t> need_dsrc,
                      std::span<const std::uint8_t> accumulate,
                      LayerExecState& exec,
                      runtime::ThreadPool& pool) const override;

  FlopCounts flops() const override;
  std::unique_ptr<Layer> clone_unplanned() const override;

 private:
  std::size_t arity_;
};

class GlobalAvgPool final : public Layer {
 public:
  explicit GlobalAvgPool(std::string name);

  std::string kind() const override { return "pool"; }

  /// Blocked {Cb, D, H, W, 16} -> plain {Cb * 16}, or plain
  /// {C, D, H, W} -> {C}. The output depends only on the channel count.
  tensor::Shape plan(const tensor::Shape& input) override;

  using Layer::backward;
  using Layer::forward;

  void forward(const tensor::Tensor& src, tensor::Tensor& dst,
               LayerExecState& exec,
               runtime::ThreadPool& pool) const override;
  void backward(const tensor::Tensor& src, tensor::Tensor& ddst,
                tensor::Tensor& dsrc, bool need_dsrc, LayerExecState& exec,
                runtime::ThreadPool& pool) const override;

  FlopCounts flops() const override;
  std::unique_ptr<Layer> clone_unplanned() const override;

 private:
  bool blocked_ = false;
  std::int64_t channels_ = 0;
  std::int64_t voxels_ = 0;  // D * H * W
};

}  // namespace cf::dnn
