// End-to-end simulation driver: the §IV-C data path.
//
//   sample (OmegaM, sigma8, ns)  ->  Gaussian initial conditions
//   ->  LPT displacement (COLA substitute)  ->  deposit to voxels
//   ->  split into 8 sub-volumes  ->  (volume, parameters) samples.
//
// The paper runs 512 Mpc/h boxes with 512^3 particles histogrammed to
// 256^3 voxels and split to 8 x 128^3 sub-volumes; every size here is a
// parameter so the same path scales down to laptop grids.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "cosmo/deposit.hpp"
#include "cosmo/gaussian_field.hpp"
#include "cosmo/power_spectrum.hpp"
#include "cosmo/zeldovich.hpp"
#include "runtime/thread_pool.hpp"

namespace cf::cosmo {

struct SimulationConfig {
  GridSpec grid{64, 512.0};        // particle lattice / FFT grid
  std::int64_t voxels = 64;        // deposit grid per dimension (even)
  DepositScheme scheme = DepositScheme::kNgp;
  bool use_2lpt = false;           // ZA by default; 2LPT for ablations
  double growth = 1.0;             // extra displacement scale (ablation)
  /// Snapshot redshift. The paper trains on z = 0 only and names
  /// multi-redshift snapshots as future work (§VII-B); the linear
  /// growth factor D(z) scales the displacement field accordingly.
  double redshift = 0.0;
  TransferModel transfer = TransferModel::kBbks;
};

/// One simulated box: its parameters and the deposited voxel counts.
struct Universe {
  CosmoParams params;
  tensor::Tensor voxels;  // {V, V, V} particle counts
};

class Simulation {
 public:
  explicit Simulation(SimulationConfig config);

  const SimulationConfig& config() const noexcept { return config_; }

  /// Runs one box; fully deterministic in `seed`.
  Universe run(const CosmoParams& params, std::uint64_t seed,
               runtime::ThreadPool& pool) const;

 private:
  SimulationConfig config_;
};

/// Evenly sample the paper's parameter ranges; deterministic in seed.
std::vector<CosmoParams> sample_parameters(std::size_t count,
                                           std::uint64_t seed,
                                           const ParamRanges& ranges = {});

/// Splits a {V, V, V} voxel grid into its 8 octants, each returned as a
/// network-ready {1, V/2, V/2, V/2} tensor.
std::vector<tensor::Tensor> split_octants(const tensor::Tensor& voxels);

/// Input preprocessing: x -> log1p(x), applied in place. Counts are
/// heavy-tailed (cluster cores reach thousands of particles); the log
/// compresses the dynamic range the way the reference implementation
/// preprocesses its TFRecords.
void log1p_in_place(tensor::Tensor& voxels);

/// x -> x - offset: zero-centers the log1p counts around the global
/// mean-density level, log1p(mean count). Per-*sample* standardization
/// would destroy the amplitude information sigma8 lives in; a global
/// offset keeps it while conditioning the first conv layer.
void center_in_place(tensor::Tensor& voxels, float offset);

/// Target normalization to [0, 1] over the sampled ranges.
std::array<float, 3> normalize_params(const CosmoParams& params,
                                      const ParamRanges& ranges = {});
CosmoParams denormalize_params(const std::array<float, 3>& normalized,
                               const ParamRanges& ranges = {});

}  // namespace cf::cosmo
