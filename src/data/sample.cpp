#include "data/sample.hpp"

#include <cstring>
#include <stdexcept>

#include "data/bytes.hpp"

namespace cf::data {

namespace {

constexpr std::uint32_t kMagic = 0x43464C57u;  // "CFLW"
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeader = 4 + 4 + 3 * 8 + 3 * 4;

}  // namespace

void Sample::copy_from(const Sample& other) {
  if (volume.shape() != other.volume.shape() || !volume.owns_storage()) {
    volume = tensor::Tensor(other.volume.shape());
  }
  std::memcpy(volume.data(), other.volume.data(),
              other.volume.size() * sizeof(float));
  target = other.target;
}

std::vector<std::uint8_t> serialize_sample(const Sample& sample) {
  if (sample.volume.shape().rank() != 4 || sample.volume.shape()[0] != 1) {
    throw std::invalid_argument(
        "serialize_sample: volume must be {1, D, H, W}");
  }
  std::vector<std::uint8_t> out;
  const std::size_t voxel_bytes = sample.volume.size() * sizeof(float);
  out.reserve(kHeader + voxel_bytes);
  append_le<std::uint32_t>(out, kMagic);
  append_le<std::uint32_t>(out, kVersion);
  for (std::size_t axis = 1; axis < 4; ++axis) {
    append_le<std::uint64_t>(
        out, static_cast<std::uint64_t>(sample.volume.shape()[axis]));
  }
  for (const float t : sample.target) {
    std::uint32_t bits;
    std::memcpy(&bits, &t, 4);
    append_le<std::uint32_t>(out, bits);
  }
  const std::size_t payload_start = out.size();
  out.resize(payload_start + voxel_bytes);
  std::memcpy(out.data() + payload_start, sample.volume.data(),
              voxel_bytes);
  return out;
}

void deserialize_sample_into(std::span<const std::uint8_t> payload,
                             Sample& out) {
  if (payload.size() < kHeader) {
    throw std::invalid_argument("deserialize_sample: payload too short");
  }
  const std::uint8_t* p = payload.data();
  if (load_le<std::uint32_t>(p) != kMagic) {
    throw std::invalid_argument("deserialize_sample: bad magic");
  }
  if (load_le<std::uint32_t>(p + 4) != kVersion) {
    throw std::invalid_argument("deserialize_sample: unsupported version");
  }
  std::int64_t dims[3];
  for (int i = 0; i < 3; ++i) {
    dims[i] = static_cast<std::int64_t>(load_le<std::uint64_t>(p + 8 + 8 * i));
    if (dims[i] <= 0 || dims[i] > (1 << 20)) {
      throw std::invalid_argument("deserialize_sample: bad dimension");
    }
  }
  for (int i = 0; i < 3; ++i) {
    const std::uint32_t bits = load_le<std::uint32_t>(p + 32 + 4 * i);
    std::memcpy(&out.target[static_cast<std::size_t>(i)], &bits, 4);
  }
  const std::size_t voxels =
      static_cast<std::size_t>(dims[0] * dims[1] * dims[2]);
  if (payload.size() != kHeader + voxels * sizeof(float)) {
    throw std::invalid_argument("deserialize_sample: size mismatch");
  }
  const tensor::Shape shape{1, dims[0], dims[1], dims[2]};
  // Steady state of the pooled pipeline: the recycled slot already has
  // a matching buffer, so the voxel memcpy is the only byte movement.
  if (out.volume.shape() != shape || !out.volume.owns_storage()) {
    out.volume = tensor::Tensor(shape);
  }
  std::memcpy(out.volume.data(), p + kHeader, voxels * sizeof(float));
  return;
}

Sample deserialize_sample(std::span<const std::uint8_t> payload) {
  Sample sample;
  deserialize_sample_into(payload, sample);
  return sample;
}

}  // namespace cf::data
