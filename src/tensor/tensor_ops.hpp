// Element-wise vector math over float spans. These back the optimizer
// updates, LARC norms, gradient aggregation and test comparisons.
#pragma once

#include <span>

#include "runtime/rng.hpp"
#include "tensor/tensor.hpp"

namespace cf::tensor {

/// y += alpha * x
void axpy(float alpha, std::span<const float> x, std::span<float> y);

/// x *= alpha
void scale(std::span<float> x, float alpha);

/// sum_i x[i] * y[i] (accumulated in double).
double dot(std::span<const float> x, std::span<const float> y);

/// sqrt(sum x^2) (accumulated in double).
double l2_norm(std::span<const float> x);

double sum(std::span<const float> x);

float max_abs(std::span<const float> x);

/// max_i |x[i] - y[i]|
float max_abs_diff(std::span<const float> x, std::span<const float> y);

/// True when |x - y| <= atol + rtol * |y| element-wise.
bool allclose(std::span<const float> x, std::span<const float> y,
              float rtol = 1e-5f, float atol = 1e-6f);

void fill_uniform(Tensor& t, runtime::Rng& rng, float lo, float hi);
void fill_normal(Tensor& t, runtime::Rng& rng, float mean, float stddev);

}  // namespace cf::tensor
