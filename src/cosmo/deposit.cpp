#include "cosmo/deposit.hpp"

#include <cmath>
#include <stdexcept>

namespace cf::cosmo {

using tensor::Shape;
using tensor::Tensor;

namespace {

inline std::int64_t wrap_index(std::int64_t i, std::int64_t n) {
  return (i % n + n) % n;
}

void deposit_ngp(const ParticleSet& particles, std::int64_t n, Tensor& grid) {
  const double inv_cell =
      static_cast<double>(n) / particles.box_size;
  for (std::size_t p = 0; p < particles.size(); ++p) {
    const std::int64_t ix =
        wrap_index(static_cast<std::int64_t>(particles.x[p] * inv_cell), n);
    const std::int64_t iy =
        wrap_index(static_cast<std::int64_t>(particles.y[p] * inv_cell), n);
    const std::int64_t iz =
        wrap_index(static_cast<std::int64_t>(particles.z[p] * inv_cell), n);
    grid[static_cast<std::size_t>((iz * n + iy) * n + ix)] += 1.0f;
  }
}

void deposit_cic(const ParticleSet& particles, std::int64_t n, Tensor& grid) {
  const double inv_cell = static_cast<double>(n) / particles.box_size;
  for (std::size_t p = 0; p < particles.size(); ++p) {
    // Cell-centered CIC: the particle's fractional grid coordinate,
    // offset by half a cell so weights interpolate between centers.
    const double gx = particles.x[p] * inv_cell - 0.5;
    const double gy = particles.y[p] * inv_cell - 0.5;
    const double gz = particles.z[p] * inv_cell - 0.5;
    const std::int64_t ix = static_cast<std::int64_t>(std::floor(gx));
    const std::int64_t iy = static_cast<std::int64_t>(std::floor(gy));
    const std::int64_t iz = static_cast<std::int64_t>(std::floor(gz));
    const double fx = gx - static_cast<double>(ix);
    const double fy = gy - static_cast<double>(iy);
    const double fz = gz - static_cast<double>(iz);
    const double wx[2] = {1.0 - fx, fx};
    const double wy[2] = {1.0 - fy, fy};
    const double wz[2] = {1.0 - fz, fz};
    for (int dz = 0; dz < 2; ++dz) {
      const std::int64_t z = wrap_index(iz + dz, n);
      for (int dy = 0; dy < 2; ++dy) {
        const std::int64_t y = wrap_index(iy + dy, n);
        const double wzy = wz[dz] * wy[dy];
        for (int dx = 0; dx < 2; ++dx) {
          const std::int64_t x = wrap_index(ix + dx, n);
          grid[static_cast<std::size_t>((z * n + y) * n + x)] +=
              static_cast<float>(wzy * wx[dx]);
        }
      }
    }
  }
}

}  // namespace

Tensor deposit_particles(const ParticleSet& particles, std::int64_t n_vox,
                         DepositScheme scheme) {
  if (n_vox <= 0) {
    throw std::invalid_argument("deposit_particles: n_vox must be > 0");
  }
  if (particles.box_size <= 0.0) {
    throw std::invalid_argument("deposit_particles: box_size must be > 0");
  }
  Tensor grid(Shape{n_vox, n_vox, n_vox});
  switch (scheme) {
    case DepositScheme::kNgp:
      deposit_ngp(particles, n_vox, grid);
      break;
    case DepositScheme::kCic:
      deposit_cic(particles, n_vox, grid);
      break;
  }
  return grid;
}

}  // namespace cf::cosmo
