#include "dnn/cost_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dnn/network.hpp"
#include "tensor/layout.hpp"

namespace cf::dnn {

namespace {

/// Job-grid size of a layer's dominant parallel pass, mirroring the
/// decompositions the kernels actually dispatch (DESIGN.md §2.6):
/// conv/pool partition over (channel-block, output-depth) slabs, dense
/// over its fixed 16 reduction chunks, everything else over ~4096-item
/// elementwise blocks.
std::size_t job_grid_size(const Layer& layer) {
  const tensor::Shape& out = layer.output_shape();
  const std::string kind = layer.kind();
  if ((kind == "conv" || kind == "pool") && out.rank() == 5) {
    return static_cast<std::size_t>(
        std::max<std::int64_t>(1, out[0] * out[1]));
  }
  if (kind == "dense") return 16;  // Dense's fixed partial-chunk table
  return static_cast<std::size_t>(
      std::max<std::int64_t>(1, out.numel() / 4096));
}

}  // namespace

CostModel::CostModel(const Network& net, CostModelParams params,
                     bool training)
    : params_(params) {
  if (!net.finalized()) {
    throw std::logic_error("CostModel: network not finalized");
  }
  if (params_.flops_per_second <= 0 || params_.bytes_per_second <= 0) {
    throw std::invalid_argument("CostModel: rates must be positive");
  }
  costs_.reserve(net.layer_count());
  for (std::size_t i = 0; i < net.layer_count(); ++i) {
    const Layer& layer = net.layer(i);
    const FlopCounts fc = layer.flops();
    LayerCost cost;
    cost.name = layer.name();
    cost.kind = layer.kind();
    cost.flops = training ? fc.total() : fc.fwd;
    // Activation traffic: read the input, write the output (training
    // re-reads both on the way back). Weight traffic is folded into the
    // flop term — the blocked kernels keep tiles register/L1-resident.
    const std::int64_t elems =
        layer.input_shape().numel() + layer.output_shape().numel();
    cost.bytes = (training ? 3 : 1) * elems *
                 static_cast<std::int64_t>(sizeof(float));
    cost.jobs = job_grid_size(layer);
    cost.serial_seconds =
        static_cast<double>(cost.flops) / params_.flops_per_second +
        static_cast<double>(cost.bytes) / params_.bytes_per_second;
    costs_.push_back(std::move(cost));
  }
}

double CostModel::layer_seconds(const LayerCost& cost,
                                std::size_t threads) const {
  const std::size_t t =
      std::max<std::size_t>(1, std::min(threads, cost.jobs));
  if (t == 1) return cost.serial_seconds;
  const double eff =
      1.0 / (1.0 + params_.efficiency_alpha * static_cast<double>(t - 1));
  return cost.serial_seconds / (static_cast<double>(t) * eff) +
         params_.dispatch_seconds;
}

double CostModel::predicted_seconds(std::size_t threads) const {
  double total = 0.0;
  for (const LayerCost& cost : costs_) {
    total += layer_seconds(cost, threads);
  }
  return total;
}

double CostModel::predicted_efficiency(std::size_t threads) const {
  if (threads <= 1) return 1.0;
  const double serial = predicted_seconds(1);
  const double threaded = predicted_seconds(threads);
  if (serial <= 0.0 || threaded <= 0.0) return 1.0;
  return serial / (static_cast<double>(threads) * threaded);
}

std::vector<std::size_t> CostModel::grains_for(std::size_t threads) const {
  std::vector<std::size_t> grains;
  grains.reserve(costs_.size());
  for (const LayerCost& cost : costs_) {
    if (threads <= 1) {
      // Serial stream: grain only matters for the chunk count, and one
      // thread always runs one chunk; keep the neutral value.
      grains.push_back(1);
      continue;
    }
    const double per_job =
        cost.serial_seconds / static_cast<double>(cost.jobs);
    double g = 1.0;
    if (per_job > 0.0) {
      g = std::ceil(params_.min_chunk_seconds / per_job);
    }
    // Clamp: never ask for chunks larger than the whole grid (that is
    // exactly "run serial", which total/grain < 2 already encodes).
    g = std::clamp(g, 1.0, static_cast<double>(cost.jobs));
    grains.push_back(static_cast<std::size_t>(g));
  }
  return grains;
}

IntraopPlan CostModel::choose(std::size_t core_budget,
                              std::size_t max_streams) const {
  const std::size_t budget = std::max<std::size_t>(1, core_budget);
  const std::size_t stream_cap =
      max_streams == 0 ? budget : std::min(budget, max_streams);

  IntraopPlan best;
  double best_throughput = -1.0;
  for (std::size_t s = 1; s <= stream_cap; ++s) {
    const std::size_t t = std::max<std::size_t>(1, budget / s);
    const double seconds = predicted_seconds(t);
    if (seconds <= 0.0) continue;
    const double throughput = static_cast<double>(s) / seconds;
    // Strictly-better wins; ties prefer more streams (inter-op carries
    // no efficiency tax and keeps per-request latency machinery out of
    // the kernels). The enumeration order makes that the >= branch.
    if (throughput >= best_throughput) {
      best_throughput = throughput;
      best.streams = s;
      best.threads_per_stream = t;
    }
  }
  best.grains = grains_for(best.threads_per_stream);
  best.predicted_efficiency = predicted_efficiency(best.threads_per_stream);
  return best;
}

}  // namespace cf::dnn
