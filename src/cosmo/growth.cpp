#include "cosmo/growth.hpp"

#include <cmath>
#include <stdexcept>

namespace cf::cosmo {

namespace {

double hubble_sq(double a, double omega_m, double omega_l) {
  return omega_m / (a * a * a) + omega_l;
}

}  // namespace

GrowthFactor::GrowthFactor(double omega_m)
    : omega_m_(omega_m), omega_l_(1.0 - omega_m), norm_(1.0) {
  if (omega_m <= 0.0 || omega_m > 1.0) {
    throw std::invalid_argument("GrowthFactor: OmegaM must be in (0, 1]");
  }
  norm_ = unnormalized(1.0);
}

double GrowthFactor::unnormalized(double a) const {
  // Int_0^a da' / (a' H(a'))^3 by Simpson's rule in log a'. The
  // integrand vanishes like a'^(3/2) toward 0, so a finite lower cut
  // converges quickly.
  const double lo = std::log(1e-6);
  const double hi = std::log(a);
  const int steps = 512;  // even
  const double dln = (hi - lo) / steps;
  const auto integrand = [&](double lna) {
    const double ap = std::exp(lna);
    const double h = std::sqrt(hubble_sq(ap, omega_m_, omega_l_));
    // da = a dlna, integrand da/(a H)^3 -> dlna * a / (a H)^3.
    return ap / std::pow(ap * h, 3.0);
  };
  double acc = integrand(lo) + integrand(hi);
  for (int i = 1; i < steps; ++i) {
    acc += integrand(lo + i * dln) * (i % 2 == 0 ? 2.0 : 4.0);
  }
  const double integral = acc * dln / 3.0;
  return std::sqrt(hubble_sq(a, omega_m_, omega_l_)) * integral;
}

double GrowthFactor::at_scale_factor(double a) const {
  if (a <= 0.0 || a > 1.0) {
    throw std::invalid_argument("GrowthFactor: a must be in (0, 1]");
  }
  return unnormalized(a) / norm_;
}

double GrowthFactor::at_redshift(double z) const {
  if (z < 0.0) {
    throw std::invalid_argument("GrowthFactor: z must be >= 0");
  }
  return at_scale_factor(1.0 / (1.0 + z));
}

}  // namespace cf::cosmo
