#include "comm/mlcomm.hpp"

#include <cstring>
#include <stdexcept>
#include <thread>

#include "obs/telemetry.hpp"

namespace cf::comm {

int RankHandle::size() const noexcept { return comm_->size(); }

void RankHandle::barrier() { comm_->barrier_.arrive_and_wait(); }

void RankHandle::broadcast(std::span<float> data, int root) {
  CF_TRACE_SCOPE("comm/broadcast", "comm");
  const obs::ScopedStatTimer timer(*comm_->comm_stats_[rank_]);
  comm_->do_broadcast(rank_, data, root);
}

void RankHandle::allreduce_average(std::span<float> data) {
  CF_TRACE_SCOPE("comm/allreduce", "comm");
  const obs::ScopedStatTimer timer(*comm_->comm_stats_[rank_]);
  comm_->do_allreduce(rank_, data);
}

double RankHandle::allreduce_average_scalar(double value) {
  CF_TRACE_SCOPE("comm/allreduce_scalar", "comm");
  const obs::ScopedStatTimer timer(*comm_->comm_stats_[rank_]);
  comm_->scalar_slots_[rank_] = value;
  comm_->barrier_.arrive_and_wait();
  double acc = 0.0;
  for (int r = 0; r < comm_->nranks_; ++r) acc += comm_->scalar_slots_[r];
  comm_->barrier_.arrive_and_wait();
  return acc / comm_->nranks_;
}

runtime::TimeStats RankHandle::comm_time() const {
  return comm_->comm_stats_[rank_]->snapshot();
}

void RankHandle::reset_comm_time() { comm_->comm_stats_[rank_]->reset(); }

MlComm::MlComm(int nranks, MlCommConfig config)
    : nranks_(nranks),
      config_(std::move(config)),
      barrier_(static_cast<std::size_t>(nranks)),
      slots_(static_cast<std::size_t>(nranks), nullptr),
      slot_sizes_(static_cast<std::size_t>(nranks), 0),
      scalar_slots_(static_cast<std::size_t>(nranks), 0.0) {
  if (nranks <= 0) throw std::invalid_argument("MlComm: nranks must be > 0");
  if (config_.chunk_elems == 0) {
    throw std::invalid_argument("MlComm: chunk_elems must be > 0");
  }
  handles_.reserve(static_cast<std::size_t>(nranks));
  comm_stats_.reserve(static_cast<std::size_t>(nranks));
  obs::Registry& registry = obs::Registry::global();
  for (int r = 0; r < nranks; ++r) {
    handles_.push_back(RankHandle(this, r));
    obs::Stat& stat =
        registry.stat("comm/collective/r" + std::to_string(r));
    stat.reset();  // a new communicator starts a fresh measurement
    comm_stats_.push_back(&stat);
  }
  allreduce_calls_ = &registry.counter("comm/allreduce_calls");
  allreduce_bytes_ = &registry.counter("comm/allreduce_bytes");
  allreduce_chunks_ = &registry.counter("comm/allreduce_chunks");
}

RankHandle& MlComm::handle(int rank) {
  if (rank < 0 || rank >= nranks_) {
    throw std::out_of_range("MlComm::handle: bad rank");
  }
  return handles_[static_cast<std::size_t>(rank)];
}

void MlComm::run(const std::function<void(RankHandle&)>& body) {
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks_));
  threads.reserve(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) {
    threads.emplace_back([&, r] {
      try {
        body(handles_[static_cast<std::size_t>(r)]);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (const auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

void MlComm::publish(int rank, float* data, std::size_t size) {
  slots_[static_cast<std::size_t>(rank)] = data;
  slot_sizes_[static_cast<std::size_t>(rank)] = size;
}

void MlComm::check_uniform_size_locked(std::size_t size) {
  for (int r = 0; r < nranks_; ++r) {
    if (slot_sizes_[static_cast<std::size_t>(r)] != size) {
      throw std::invalid_argument(
          "MlComm: ranks passed buffers of different sizes");
    }
  }
}

void MlComm::do_broadcast(int rank, std::span<float> data, int root) {
  if (root < 0 || root >= nranks_) {
    throw std::invalid_argument("MlComm::broadcast: bad root");
  }
  publish(rank, data.data(), data.size());
  barrier_.arrive_and_wait();
  check_uniform_size_locked(data.size());
  if (rank != root) {
    std::memcpy(data.data(), slots_[static_cast<std::size_t>(root)],
                data.size() * sizeof(float));
  }
  barrier_.arrive_and_wait();
}

void MlComm::do_allreduce(int rank, std::span<float> data) {
  if (rank == 0) {
    allreduce_calls_->add(1);
    allreduce_bytes_->add(
        static_cast<std::int64_t>(data.size() * sizeof(float)));
  }
  if (config_.pre_reduce_hook) config_.pre_reduce_hook(rank);
  publish(rank, data.data(), data.size());
  if (barrier_.arrive_and_wait()) {
    // Leader grows the shared reduction buffer before anyone writes.
    if (reduce_buffer_.size() < data.size()) {
      reduce_buffer_.resize(data.size());
    }
  }
  barrier_.arrive_and_wait();
  check_uniform_size_locked(data.size());

  switch (config_.algorithm) {
    case AllreduceAlgorithm::kReduceScatter:
      reduce_scatter_allgather(rank, data);
      break;
    case AllreduceAlgorithm::kCentralRoot:
      central_root(rank, data);
      break;
  }
}

void MlComm::reduce_scatter_allgather(int rank, std::span<float> data) {
  const std::size_t n = data.size();
  const std::size_t k = static_cast<std::size_t>(nranks_);
  const std::size_t base = n / k;
  const std::size_t remainder = n % k;
  const std::size_t r = static_cast<std::size_t>(rank);
  const std::size_t begin = r * base + std::min(r, remainder);
  const std::size_t end = begin + base + (r < remainder ? 1 : 0);
  const float inv = 1.0f / static_cast<float>(nranks_);

  // Reduce-scatter: this rank reduces its owned range across all
  // ranks, in fixed rank order (determinism), chunk by chunk.
  std::int64_t chunks = 0;
  for (std::size_t chunk = begin; chunk < end;
       chunk += config_.chunk_elems) {
    const std::size_t stop = std::min(end, chunk + config_.chunk_elems);
    float* out = reduce_buffer_.data() + chunk;
    std::memcpy(out, slots_[0] + chunk, (stop - chunk) * sizeof(float));
    for (int src = 1; src < nranks_; ++src) {
      const float* in = slots_[static_cast<std::size_t>(src)] + chunk;
      for (std::size_t i = 0; i < stop - chunk; ++i) out[i] += in[i];
    }
    for (std::size_t i = 0; i < stop - chunk; ++i) out[i] *= inv;
    ++chunks;
  }
  if (chunks > 0) allreduce_chunks_->add(chunks);
  barrier_.arrive_and_wait();

  // Allgather: copy the full averaged vector back.
  std::memcpy(data.data(), reduce_buffer_.data(), n * sizeof(float));
  barrier_.arrive_and_wait();
}

void MlComm::central_root(int rank, std::span<float> data) {
  const std::size_t n = data.size();
  const float inv = 1.0f / static_cast<float>(nranks_);
  if (rank == 0) {
    float* out = reduce_buffer_.data();
    std::memcpy(out, slots_[0], n * sizeof(float));
    for (int src = 1; src < nranks_; ++src) {
      const float* in = slots_[static_cast<std::size_t>(src)];
      for (std::size_t i = 0; i < n; ++i) out[i] += in[i];
    }
    for (std::size_t i = 0; i < n; ++i) out[i] *= inv;
  }
  barrier_.arrive_and_wait();
  std::memcpy(data.data(), reduce_buffer_.data(), n * sizeof(float));
  barrier_.arrive_and_wait();
}

}  // namespace cf::comm
