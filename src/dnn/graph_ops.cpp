#include "dnn/graph_ops.hpp"

#include <cstring>
#include <stdexcept>

namespace cf::dnn {

using tensor::Shape;
using tensor::Tensor;

namespace {

/// Same elementwise dispatch threshold the activations use.
constexpr std::size_t kSerialWorkLimit = 4096;

}  // namespace

// --- Add -------------------------------------------------------------------

Add::Add(std::string name, std::size_t arity)
    : Layer(std::move(name)), arity_(arity) {
  if (arity < 2) {
    throw std::invalid_argument("Add: arity must be >= 2");
  }
}

Shape Add::plan(const Shape& input) {
  static_cast<void>(input);
  throw std::logic_error("Add::plan: multi-input node, use plan_multi");
}

Shape Add::plan_multi(std::span<const Shape> inputs) {
  if (inputs.size() != arity_) {
    throw std::invalid_argument("Add::plan_multi: expected " +
                                std::to_string(arity_) + " inputs");
  }
  for (const Shape& s : inputs) {
    if (s != inputs[0]) {
      throw std::invalid_argument(
          "Add::plan_multi: input shapes differ (" + s.to_string() +
          " vs " + inputs[0].to_string() + ")");
    }
  }
  set_shapes(inputs[0], inputs[0]);
  return inputs[0];
}

void Add::forward(const Tensor& src, Tensor& dst, LayerExecState& exec,
                  runtime::ThreadPool& pool) const {
  static_cast<void>(src);
  static_cast<void>(dst);
  static_cast<void>(exec);
  static_cast<void>(pool);
  throw std::logic_error("Add::forward: multi-input node");
}

void Add::backward(const Tensor& src, Tensor& ddst, Tensor& dsrc,
                   bool need_dsrc, LayerExecState& exec,
                   runtime::ThreadPool& pool) const {
  static_cast<void>(src);
  static_cast<void>(ddst);
  static_cast<void>(dsrc);
  static_cast<void>(need_dsrc);
  static_cast<void>(exec);
  static_cast<void>(pool);
  throw std::logic_error("Add::backward: multi-input node");
}

void Add::forward_multi(std::span<const Tensor* const> srcs, Tensor& dst,
                        LayerExecState& exec,
                        runtime::ThreadPool& pool) const {
  const runtime::ScopedTimer timer(exec.timers.fwd);
  if (srcs.size() != arity_ || dst.shape() != output_shape()) {
    throw std::invalid_argument("Add::forward_multi: shape mismatch");
  }
  for (const Tensor* s : srcs) {
    if (s->shape() != input_shape()) {
      throw std::invalid_argument("Add::forward_multi: shape mismatch");
    }
  }
  float* d = dst.data();
  pool.parallel_for(
      dst.size(),
      [&](std::size_t begin, std::size_t end, std::size_t) {
        // Left-to-right over the edges: fan-in summation order is part
        // of the bitwise contract (DESIGN.md §2.8).
        const float* a = srcs[0]->data();
        const float* b = srcs[1]->data();
        for (std::size_t i = begin; i < end; ++i) d[i] = a[i] + b[i];
        for (std::size_t k = 2; k < srcs.size(); ++k) {
          const float* s = srcs[k]->data();
          for (std::size_t i = begin; i < end; ++i) d[i] += s[i];
        }
      },
      kSerialWorkLimit);
}

void Add::backward_multi(std::span<const Tensor* const> srcs,
                         const Tensor& dst, Tensor& ddst,
                         std::span<Tensor* const> dsrcs,
                         std::span<const std::uint8_t> need_dsrc,
                         std::span<const std::uint8_t> accumulate,
                         LayerExecState& exec,
                         runtime::ThreadPool& pool) const {
  static_cast<void>(srcs);
  static_cast<void>(dst);
  const runtime::ScopedTimer timer(exec.timers.bwd_data);
  if (dsrcs.size() != arity_ || ddst.shape() != output_shape()) {
    throw std::invalid_argument("Add::backward_multi: shape mismatch");
  }
  const float* dd = ddst.data();
  for (std::size_t k = 0; k < dsrcs.size(); ++k) {
    if (need_dsrc[k] == 0) continue;
    float* ds = dsrcs[k]->data();
    if (accumulate[k] != 0) {
      pool.parallel_for(
          ddst.size(),
          [&](std::size_t begin, std::size_t end, std::size_t) {
            for (std::size_t i = begin; i < end; ++i) ds[i] += dd[i];
          },
          kSerialWorkLimit);
    } else {
      std::memcpy(ds, dd, ddst.size() * sizeof(float));
    }
  }
}

FlopCounts Add::flops() const {
  FlopCounts counts;
  counts.fwd =
      static_cast<std::int64_t>(arity_ - 1) * output_shape().numel();
  return counts;
}

std::unique_ptr<Layer> Add::clone_unplanned() const {
  return std::make_unique<Add>(name(), arity_);
}

// --- GlobalAvgPool ---------------------------------------------------------

GlobalAvgPool::GlobalAvgPool(std::string name) : Layer(std::move(name)) {}

Shape GlobalAvgPool::plan(const Shape& input) {
  if (input.rank() == 5) {
    if (input[4] != 16) {
      throw std::invalid_argument(
          "GlobalAvgPool::plan: blocked input must have 16 lanes");
    }
    blocked_ = true;
    channels_ = input[0] * 16;
    voxels_ = input[1] * input[2] * input[3];
  } else if (input.rank() == 4) {
    blocked_ = false;
    channels_ = input[0];
    voxels_ = input[1] * input[2] * input[3];
  } else {
    throw std::invalid_argument(
        "GlobalAvgPool::plan: expected a rank-4 plain or rank-5 blocked "
        "volume, got " +
        input.to_string());
  }
  if (voxels_ <= 0) {
    throw std::invalid_argument("GlobalAvgPool::plan: empty volume");
  }
  set_shapes(input, Shape{channels_});
  return Shape{channels_};
}

void GlobalAvgPool::forward(const Tensor& src, Tensor& dst,
                            LayerExecState& exec,
                            runtime::ThreadPool& pool) const {
  const runtime::ScopedTimer timer(exec.timers.fwd);
  if (src.shape() != input_shape() || dst.shape() != output_shape()) {
    throw std::invalid_argument("GlobalAvgPool::forward: shape mismatch");
  }
  const float inv = 1.0f / static_cast<float>(voxels_);
  const float* s = src.data();
  float* d = dst.data();
  const std::size_t voxels = static_cast<std::size_t>(voxels_);
  if (blocked_) {
    // {Cb, D, H, W, 16}: each job reduces one channel block's 16 lanes
    // over the voxel volume, in ascending voxel order.
    const std::size_t blocks = static_cast<std::size_t>(channels_ / 16);
    pool.parallel_for(
        blocks, [&](std::size_t begin, std::size_t end, std::size_t) {
          for (std::size_t cb = begin; cb < end; ++cb) {
            float acc[16] = {};
            const float* base = s + cb * voxels * 16;
            for (std::size_t v = 0; v < voxels; ++v) {
              for (std::size_t lane = 0; lane < 16; ++lane) {
                acc[lane] += base[v * 16 + lane];
              }
            }
            for (std::size_t lane = 0; lane < 16; ++lane) {
              d[cb * 16 + lane] = acc[lane] * inv;
            }
          }
        });
    return;
  }
  const std::size_t channels = static_cast<std::size_t>(channels_);
  pool.parallel_for(
      channels, [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t c = begin; c < end; ++c) {
          float acc = 0.0f;
          const float* base = s + c * voxels;
          for (std::size_t v = 0; v < voxels; ++v) acc += base[v];
          d[c] = acc * inv;
        }
      });
}

void GlobalAvgPool::backward(const Tensor& src, Tensor& ddst, Tensor& dsrc,
                             bool need_dsrc, LayerExecState& exec,
                             runtime::ThreadPool& pool) const {
  static_cast<void>(src);
  if (!need_dsrc) return;
  const runtime::ScopedTimer timer(exec.timers.bwd_data);
  if (ddst.shape() != output_shape() || dsrc.shape() != input_shape()) {
    throw std::invalid_argument("GlobalAvgPool::backward: shape mismatch");
  }
  const float inv = 1.0f / static_cast<float>(voxels_);
  const float* dd = ddst.data();
  float* ds = dsrc.data();
  const std::size_t voxels = static_cast<std::size_t>(voxels_);
  if (blocked_) {
    const std::size_t blocks = static_cast<std::size_t>(channels_ / 16);
    pool.parallel_for(
        blocks, [&](std::size_t begin, std::size_t end, std::size_t) {
          for (std::size_t cb = begin; cb < end; ++cb) {
            float g[16];
            for (std::size_t lane = 0; lane < 16; ++lane) {
              g[lane] = dd[cb * 16 + lane] * inv;
            }
            float* base = ds + cb * voxels * 16;
            for (std::size_t v = 0; v < voxels; ++v) {
              for (std::size_t lane = 0; lane < 16; ++lane) {
                base[v * 16 + lane] = g[lane];
              }
            }
          }
        });
    return;
  }
  const std::size_t channels = static_cast<std::size_t>(channels_);
  pool.parallel_for(
      channels, [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t c = begin; c < end; ++c) {
          const float g = dd[c] * inv;
          float* base = ds + c * voxels;
          for (std::size_t v = 0; v < voxels; ++v) base[v] = g;
        }
      });
}

FlopCounts GlobalAvgPool::flops() const {
  FlopCounts counts;
  counts.fwd = input_shape().numel();
  counts.bwd_data = input_shape().numel();
  return counts;
}

std::unique_ptr<Layer> GlobalAvgPool::clone_unplanned() const {
  return std::make_unique<GlobalAvgPool>(name());
}

}  // namespace cf::dnn
