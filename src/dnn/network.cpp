#include "dnn/network.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "dnn/activations.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"

namespace cf::dnn {

using tensor::Shape;
using tensor::Tensor;

void Network::add(std::unique_ptr<Layer> layer) {
  if (finalized_) {
    throw std::logic_error("Network::add: network already finalized");
  }
  layers_.push_back(std::move(layer));
}

void Network::fuse_eltwise_pass() {
  std::vector<std::unique_ptr<Layer>> kept;
  kept.reserve(layers_.size());
  for (auto& layer : layers_) {
    if (!kept.empty()) {
      if (const auto* act = dynamic_cast<const LeakyRelu*>(layer.get())) {
        if (kept.back()->fuse_leaky_relu(act->negative_slope())) {
          ++fused_pairs_;
          continue;  // drop the standalone activation layer
        }
      }
    }
    kept.push_back(std::move(layer));
  }
  layers_ = std::move(kept);
  obs::Registry::global().gauge("dnn/fused_pairs").set(
      static_cast<double>(fused_pairs_));
}

void Network::finalize(const Shape& input_shape) {
  if (finalized_) throw std::logic_error("Network::finalize: called twice");
  if (layers_.empty()) {
    throw std::logic_error("Network::finalize: no layers");
  }
  if (fuse_eltwise_) fuse_eltwise_pass();
  input_shape_ = input_shape;
  input_ = Tensor(input_shape);
  Shape shape = input_shape;
  activations_.reserve(layers_.size());
  diffs_.reserve(layers_.size());
  for (auto& layer : layers_) {
    shape = layer->plan(shape);
    activations_.emplace_back(shape);
    diffs_.emplace_back(shape);
  }
  output_shape_ = shape;
  build_arena();
  if (memplan_) plan_memory();
  obs::Registry::global().gauge("dnn/activation_bytes").set(
      static_cast<double>(activation_bytes()));
  obs::Registry::global().gauge("dnn/diff_arena_bytes").set(
      static_cast<double>(diff_arena_bytes()));
  obs::Registry::global().gauge("dnn/scratch_bytes").set(
      static_cast<double>(scratch_bytes()));
  finalized_ = true;
}

void Network::plan_memory() {
  // Liveness: backward visits layers last to first; at layer i only
  // diffs_[i] (its ddst, consumed) and diffs_[i-1] (its dsrc, fully
  // overwritten) exist. Since i and i-1 have opposite parity, two
  // buffers — each sized for the largest tensor of its parity class —
  // back every difference tensor without aliasing a live pair.
  std::size_t max_even = 0;
  std::size_t max_odd = 0;
  for (std::size_t i = 0; i < diffs_.size(); ++i) {
    std::size_t& slot = i % 2 == 0 ? max_even : max_odd;
    slot = std::max(slot, diffs_[i].size());
  }
  diff_arena_ = runtime::AlignedBuffer<float>(max_even + max_odd);
  for (std::size_t i = 0; i < diffs_.size(); ++i) {
    float* base = diff_arena_.data() + (i % 2 == 0 ? 0 : max_even);
    diffs_[i].rebind({base, diffs_[i].size()});
  }

  // One shared backward scratch arena sized to the largest request;
  // backward runs one layer at a time, so layers can all be handed the
  // same storage (each repopulates it on entry).
  std::size_t max_scratch = 0;
  for (const auto& layer : layers_) {
    max_scratch = std::max(max_scratch, layer->backward_scratch_floats());
  }
  scratch_arena_ = runtime::AlignedBuffer<float>(max_scratch);
  for (auto& layer : layers_) {
    const std::size_t n = layer->backward_scratch_floats();
    if (n > 0) layer->bind_backward_scratch({scratch_arena_.data(), n});
  }
}

std::size_t Network::activation_bytes() const noexcept {
  std::size_t n = 0;
  for (const auto& t : activations_) n += t.size();
  return n * sizeof(float);
}

std::size_t Network::diff_arena_bytes() const noexcept {
  if (memplan_) return diff_arena_.size() * sizeof(float);
  std::size_t n = 0;
  for (const auto& t : diffs_) n += t.size();
  return n * sizeof(float);
}

std::size_t Network::scratch_bytes() const noexcept {
  if (memplan_) return scratch_arena_.size() * sizeof(float);
  std::size_t n = 0;
  for (const auto& layer : layers_) n += layer->backward_scratch_floats();
  return n * sizeof(float);
}

void Network::build_arena() {
  segment_offsets_.assign(layers_.size(), 0);
  segment_sizes_.assign(layers_.size(), 0);
  std::size_t total = 0;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    segment_offsets_[i] = total;
    for (const ParamView& p : layers_[i]->params()) {
      segment_sizes_[i] += static_cast<std::size_t>(p.value->shape().numel());
    }
    total += segment_sizes_[i];
  }
  param_arena_ = runtime::AlignedBuffer<float>(total);
  grad_arena_ = runtime::AlignedBuffer<float>(total);
  // Rebind every layer tensor onto its arena segment; plan() contents
  // (zeros — init runs after finalize) are carried over by rebind.
  std::size_t offset = 0;
  for (auto& layer : layers_) {
    for (ParamView& p : layer->params()) {
      const std::size_t n =
          static_cast<std::size_t>(p.value->shape().numel());
      p.value->rebind({param_arena_.data() + offset, n});
      p.grad->rebind({grad_arena_.data() + offset, n});
      offset += n;
    }
  }
}

const Tensor& Network::forward(const Tensor& input,
                               runtime::ThreadPool& pool) {
  if (!finalized_) throw std::logic_error("Network::forward: not finalized");
  if (input.shape() != input_shape_) {
    throw std::invalid_argument("Network::forward: input shape " +
                                input.shape().to_string() + ", expected " +
                                input_shape_.to_string());
  }
  CF_TRACE_SCOPE("net/forward", "dnn");
  std::memcpy(input_.data(), input.data(), input.size() * sizeof(float));
  const Tensor* src = &input_;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    CF_TRACE_SCOPE(layers_[i]->span_label_fwd().c_str(),
                   layers_[i]->kind().c_str());
    layers_[i]->forward(*src, activations_[i], pool);
    src = &activations_[i];
  }
  forward_done_ = true;
  return activations_.back();
}

void Network::backward(const Tensor& dloss, runtime::ThreadPool& pool,
                       const GradReadyCallback& grad_ready) {
  if (!forward_done_) {
    throw std::logic_error("Network::backward: no preceding forward");
  }
  if (dloss.shape() != output_shape_) {
    throw std::invalid_argument("Network::backward: dloss shape mismatch");
  }
  CF_TRACE_SCOPE("net/backward", "dnn");
  std::memcpy(diffs_.back().data(), dloss.data(),
              dloss.size() * sizeof(float));
  for (std::size_t i = layers_.size(); i-- > 0;) {
    const Tensor& src = i == 0 ? input_ : activations_[i - 1];
    const bool need_dsrc = i > 0;
    // diffs_[i - 1] is overwritten by layer i's backward; pass a dummy
    // for the first layer (its dsrc is skipped).
    Tensor& dsrc = need_dsrc ? diffs_[i - 1] : diffs_[0];
    {
      CF_TRACE_SCOPE(layers_[i]->span_label_bwd().c_str(),
                     layers_[i]->kind().c_str());
      // The dst overload: fused layers recover their activation mask
      // from their own forward output.
      layers_[i]->backward(src, activations_[i], diffs_[i], dsrc,
                           need_dsrc, pool);
    }
    if (grad_ready && segment_sizes_[i] > 0) grad_ready(i);
  }
}

void Network::zero_grads() {
  if (grad_arena_.empty()) return;
  std::memset(grad_arena_.data(), 0, grad_arena_.size() * sizeof(float));
}

std::vector<ParamView> Network::params() {
  std::vector<ParamView> all;
  for (auto& layer : layers_) {
    for (ParamView& p : layer->params()) all.push_back(p);
  }
  return all;
}

std::int64_t Network::param_count() {
  if (finalized_) return static_cast<std::int64_t>(param_arena_.size());
  std::int64_t n = 0;
  for (const ParamView& p : params()) n += p.value->shape().numel();
  return n;
}

FlopCounts Network::flops(bool skip_first_bwd_data) const {
  FlopCounts total;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    FlopCounts f = layers_[i]->flops();
    if (i == 0 && skip_first_bwd_data) f.bwd_data = 0;
    total += f;
  }
  return total;
}

namespace {

void check_flat_size(std::size_t got, std::size_t expected) {
  if (got != expected) {
    throw std::invalid_argument(
        "Network flat vector: span size does not match parameter count");
  }
}

}  // namespace

void Network::copy_params_to(std::span<float> out) {
  check_flat_size(out.size(), param_arena_.size());
  if (param_arena_.empty()) return;
  std::memcpy(out.data(), param_arena_.data(),
              param_arena_.size() * sizeof(float));
}

void Network::set_params_from(std::span<const float> in) {
  check_flat_size(in.size(), param_arena_.size());
  if (param_arena_.empty()) return;
  std::memcpy(param_arena_.data(), in.data(),
              param_arena_.size() * sizeof(float));
}

void Network::copy_grads_to(std::span<float> out) {
  check_flat_size(out.size(), grad_arena_.size());
  if (grad_arena_.empty()) return;
  std::memcpy(out.data(), grad_arena_.data(),
              grad_arena_.size() * sizeof(float));
}

void Network::set_grads_from(std::span<const float> in) {
  check_flat_size(in.size(), grad_arena_.size());
  if (grad_arena_.empty()) return;
  std::memcpy(grad_arena_.data(), in.data(),
              grad_arena_.size() * sizeof(float));
}

std::vector<LayerProfile> Network::profiles() const {
  std::vector<LayerProfile> rows;
  rows.reserve(layers_.size());
  for (const auto& layer : layers_) {
    LayerProfile row;
    row.name = layer->name();
    row.kind = layer->kind();
    row.fwd = layer->timers().fwd;
    row.bwd_data = layer->timers().bwd_data;
    row.bwd_weights = layer->timers().bwd_weights;
    row.flops = layer->flops();
    rows.push_back(row);
  }
  return rows;
}

void Network::reset_profiles() {
  for (auto& layer : layers_) layer->reset_timers();
}

}  // namespace cf::dnn
