#include "dnn/network.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "dnn/activations.hpp"
#include "obs/metrics.hpp"

namespace cf::dnn {

using tensor::Shape;
using tensor::Tensor;

void Network::add(std::unique_ptr<Layer> layer) {
  if (finalized_) {
    throw std::logic_error("Network::add: network already finalized");
  }
  layers_.push_back(std::move(layer));
}

void Network::fuse_eltwise_pass() {
  std::vector<std::unique_ptr<Layer>> kept;
  kept.reserve(layers_.size());
  for (auto& layer : layers_) {
    if (!kept.empty()) {
      if (const auto* act = dynamic_cast<const LeakyRelu*>(layer.get())) {
        if (kept.back()->fuse_leaky_relu(act->negative_slope())) {
          ++fused_pairs_;
          continue;  // drop the standalone activation layer
        }
      }
    }
    kept.push_back(std::move(layer));
  }
  layers_ = std::move(kept);
  obs::Registry::global().gauge("dnn/fused_pairs").set(
      static_cast<double>(fused_pairs_));
}

void Network::finalize(const Shape& input_shape) {
  if (finalized_) throw std::logic_error("Network::finalize: called twice");
  if (layers_.empty()) {
    throw std::logic_error("Network::finalize: no layers");
  }
  if (fuse_eltwise_) fuse_eltwise_pass();
  input_shape_ = input_shape;
  Shape shape = input_shape;
  for (auto& layer : layers_) shape = layer->plan(shape);
  output_shape_ = shape;
  build_arena();

  // Record the buffer plan every context is built from. Liveness
  // (DESIGN.md §2.2): a pass visits layers in order (forward) or
  // reverse order (backward), and at layer i only buffers i and i-1
  // are live; since those have opposite parity, two buffers — each
  // sized for the largest tensor of its parity class — can back every
  // per-layer tensor of a pass without aliasing a live pair. Training
  // contexts apply this to the diff tensors (when memplan is on);
  // inference contexts apply the same trick to the activations
  // themselves, since no backward will ever re-read them.
  mem_plan_ = MemPlan{};
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const std::size_t n =
        static_cast<std::size_t>(layers_[i]->output_shape().numel());
    mem_plan_.act_sum += n;
    mem_plan_.diff_sum += n;
    std::size_t& act_slot =
        i % 2 == 0 ? mem_plan_.act_even : mem_plan_.act_odd;
    act_slot = std::max(act_slot, n);
    std::size_t& diff_slot =
        i % 2 == 0 ? mem_plan_.diff_even : mem_plan_.diff_odd;
    diff_slot = std::max(diff_slot, n);
    const std::size_t sc = layers_[i]->backward_scratch_floats();
    mem_plan_.scratch_max = std::max(mem_plan_.scratch_max, sc);
    mem_plan_.scratch_sum += sc;
    const std::size_t ws = layers_[i]->forward_workspace_floats();
    mem_plan_.workspace_max = std::max(mem_plan_.workspace_max, ws);
    mem_plan_.workspace_sum += ws;
  }

  obs::Registry::global().gauge("dnn/activation_bytes").set(
      static_cast<double>(activation_bytes()));
  obs::Registry::global().gauge("dnn/diff_arena_bytes").set(
      static_cast<double>(diff_arena_bytes()));
  obs::Registry::global().gauge("dnn/scratch_bytes").set(
      static_cast<double>(scratch_bytes()));
  finalized_ = true;
}

ExecContext Network::make_context(ExecMode mode) {
  if (!finalized_) {
    throw std::logic_error("Network::make_context: not finalized");
  }
  return ExecContext(*this, mode);
}

ExecContext Network::make_context(ExecMode mode) const {
  if (mode != ExecMode::kInference) {
    throw std::logic_error(
        "Network::make_context: only inference contexts can be created "
        "from a const Network");
  }
  if (!finalized_) {
    throw std::logic_error("Network::make_context: not finalized");
  }
  // The cast only unlocks const accessors in practice: an inference
  // context performs no mutating Network access (enforced by the mode
  // checks in ExecContext), so this never writes through the pointer.
  return ExecContext(const_cast<Network&>(*this), mode);
}

ExecContext Network::make_context(ExecMode mode, Precision precision) {
  if (!finalized_) {
    throw std::logic_error("Network::make_context: not finalized");
  }
  if (precision != Precision::kFp32 && mode != ExecMode::kInference) {
    throw std::logic_error(
        "Network::make_context: training contexts are fp32-only "
        "(DESIGN.md §2.5)");
  }
  if (!precision_prepared(precision)) {
    throw std::logic_error(
        std::string("Network::make_context: network not prepared for ") +
        std::string(to_string(precision)) +
        " (call prepare_inference_precision after loading weights)");
  }
  return ExecContext(*this, mode, precision);
}

ExecContext Network::make_context(ExecMode mode, Precision precision) const {
  if (mode != ExecMode::kInference) {
    throw std::logic_error(
        "Network::make_context: only inference contexts can be created "
        "from a const Network");
  }
  if (!finalized_) {
    throw std::logic_error("Network::make_context: not finalized");
  }
  if (!precision_prepared(precision)) {
    throw std::logic_error(
        std::string("Network::make_context: network not prepared for ") +
        std::string(to_string(precision)) +
        " (call prepare_inference_precision after loading weights)");
  }
  return ExecContext(const_cast<Network&>(*this), mode, precision);
}

ExecContext Network::make_context(ExecMode mode, Precision precision,
                                  const IntraopPlan& plan) {
  ExecContext ctx = make_context(mode, precision);
  ctx.apply_intraop(plan);
  return ctx;
}

ExecContext Network::make_context(ExecMode mode, Precision precision,
                                  const IntraopPlan& plan) const {
  ExecContext ctx = make_context(mode, precision);
  ctx.apply_intraop(plan);
  return ctx;
}

void Network::prepare_inference_precision(Precision precision) {
  if (!finalized_) {
    throw std::logic_error(
        "Network::prepare_inference_precision: not finalized");
  }
  if (precision == Precision::kFp32) return;  // always ready
  for (const auto& layer : layers_) {
    if (!layer->supports_precision(precision)) {
      throw std::logic_error(
          "Network::prepare_inference_precision: layer " + layer->name() +
          " does not support " + std::string(to_string(precision)));
    }
  }
  if (precision == Precision::kBf16) {
    // bf16 image of the whole arena; segment offsets carry over 1:1.
    if (bf16_arena_.size() != param_arena_.size()) {
      bf16_arena_ = runtime::AlignedBuffer<bf16_t>(param_arena_.size());
    }
    bf16_from_f32(param_arena_.data(), bf16_arena_.data(),
                  param_arena_.size());
    // Layers whose bf16 kernels read a different weight packing (the
    // dense layers' vdpbf16ps pair-interleaved tiles; convs keep the
    // plain image and widen on load) repack their slice in place.
    for (std::size_t i = 0; i < layers_.size(); ++i) {
      if (segment_sizes_[i] == 0) continue;
      layers_[i]->pack_weights_bf16(
          {bf16_arena_.data() + segment_offsets_[i], segment_sizes_[i]});
    }
    bf16_prepared_ = true;
    obs::Registry::global().gauge("dnn/precision/bf16_weight_bytes").set(
        static_cast<double>(bf16_arena_.size() * sizeof(bf16_t)));
    return;
  }
  // kInt8Weights: per-layer quant + scale tables.
  int8_weight_offsets_.assign(layers_.size(), 0);
  int8_weight_sizes_.assign(layers_.size(), 0);
  int8_scale_offsets_.assign(layers_.size(), 0);
  int8_scale_sizes_.assign(layers_.size(), 0);
  std::size_t wtotal = 0, stotal = 0;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    int8_weight_offsets_[i] = wtotal;
    int8_weight_sizes_[i] = layers_[i]->int8_weight_count();
    wtotal += int8_weight_sizes_[i];
    int8_scale_offsets_[i] = stotal;
    int8_scale_sizes_[i] = layers_[i]->int8_scale_count();
    stotal += int8_scale_sizes_[i];
  }
  if (int8_arena_.size() != wtotal) {
    int8_arena_ = runtime::AlignedBuffer<std::int8_t>(wtotal);
  }
  if (int8_scales_.size() != stotal) {
    int8_scales_ = runtime::AlignedBuffer<float>(stotal);
  }
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (int8_weight_sizes_[i] == 0) continue;
    layers_[i]->quantize_weights_int8(
        {int8_arena_.data() + int8_weight_offsets_[i],
         int8_weight_sizes_[i]},
        {int8_scales_.data() + int8_scale_offsets_[i],
         int8_scale_sizes_[i]});
  }
  int8_prepared_ = true;
  obs::Registry::global().gauge("dnn/precision/int8_weight_bytes").set(
      static_cast<double>(int8_arena_.size() * sizeof(std::int8_t) +
                          int8_scales_.size() * sizeof(float)));
}

std::size_t Network::activation_bytes() const noexcept {
  return mem_plan_.act_sum * sizeof(float);
}

std::size_t Network::diff_arena_bytes() const noexcept {
  const std::size_t n = memplan_ ? mem_plan_.diff_even + mem_plan_.diff_odd
                                 : mem_plan_.diff_sum;
  return n * sizeof(float);
}

std::size_t Network::scratch_bytes() const noexcept {
  const std::size_t n =
      memplan_ ? mem_plan_.scratch_max : mem_plan_.scratch_sum;
  return n * sizeof(float);
}

void Network::build_arena() {
  segment_offsets_.assign(layers_.size(), 0);
  segment_sizes_.assign(layers_.size(), 0);
  std::size_t total = 0;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    segment_offsets_[i] = total;
    for (const ParamSpec& p : layers_[i]->param_specs()) {
      segment_sizes_[i] += static_cast<std::size_t>(p.value->shape().numel());
    }
    total += segment_sizes_[i];
  }
  param_arena_ = runtime::AlignedBuffer<float>(total);
  // Rebind every layer weight tensor onto its arena segment; plan()
  // contents (zeros — init runs after finalize) are carried over by
  // rebind.
  std::size_t offset = 0;
  for (auto& layer : layers_) {
    for (const ParamSpec& p : layer->param_specs()) {
      const std::size_t n =
          static_cast<std::size_t>(p.value->shape().numel());
      p.value->rebind({param_arena_.data() + offset, n});
      offset += n;
    }
  }
}

std::int64_t Network::param_count() {
  if (finalized_) return static_cast<std::int64_t>(param_arena_.size());
  std::int64_t n = 0;
  for (auto& layer : layers_) n += layer->param_count();
  return n;
}

FlopCounts Network::flops(bool skip_first_bwd_data) const {
  FlopCounts total;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    FlopCounts f = layers_[i]->flops();
    if (i == 0 && skip_first_bwd_data) f.bwd_data = 0;
    total += f;
  }
  return total;
}

namespace {

void check_flat_size(std::size_t got, std::size_t expected) {
  if (got != expected) {
    throw std::invalid_argument(
        "Network flat vector: span size does not match parameter count");
  }
}

}  // namespace

void Network::copy_params_to(std::span<float> out) {
  check_flat_size(out.size(), param_arena_.size());
  if (param_arena_.empty()) return;
  std::memcpy(out.data(), param_arena_.data(),
              param_arena_.size() * sizeof(float));
}

void Network::set_params_from(std::span<const float> in) {
  check_flat_size(in.size(), param_arena_.size());
  if (param_arena_.empty()) return;
  std::memcpy(param_arena_.data(), in.data(),
              param_arena_.size() * sizeof(float));
}

}  // namespace cf::dnn
