// Shared fixture for the reduced-precision accuracy gates
// (DESIGN.md §2.5): the tolerance test, the precision ablation bench
// and the serving flag all compare bf16/int8w predictions against the
// fp32 reference on the SAME deterministic input set, so a tolerance
// measured in one place is the tolerance enforced everywhere.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace cf::core {

/// `count` deterministic standard-normal inputs of `shape` — the fixed
/// calibration/eval set. Input i is drawn from Philox stream (seed, i),
/// so the set is stable under reordering and count changes.
std::vector<tensor::Tensor> precision_eval_inputs(
    const tensor::Shape& shape, std::size_t count,
    std::uint64_t seed = 41);

/// Mean absolute error between two prediction vectors (flattened over
/// samples x outputs). Spans must be equal-sized and non-empty.
double prediction_mae(std::span<const float> a, std::span<const float> b);

}  // namespace cf::core
