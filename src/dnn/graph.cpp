#include "dnn/graph.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "dnn/activations.hpp"

namespace cf::dnn {

NodeId Graph::add(std::unique_ptr<Layer> layer, std::vector<NodeId> inputs) {
  if (sealed_) {
    throw std::logic_error("Graph::add: graph already sealed");
  }
  if (layer == nullptr) {
    throw std::invalid_argument("Graph::add: null layer");
  }
  if (inputs.empty()) {
    throw std::invalid_argument("Graph::add: node " + layer->name() +
                                " has no inputs");
  }
  if (inputs.size() != layer->arity()) {
    throw std::invalid_argument(
        "Graph::add: node " + layer->name() + " has arity " +
        std::to_string(layer->arity()) + " but " +
        std::to_string(inputs.size()) + " inputs");
  }
  for (NodeId in : inputs) {
    if (in != kGraphInput && in >= nodes_.size()) {
      throw std::invalid_argument(
          "Graph::add: node " + layer->name() +
          " references input node " + std::to_string(in) +
          " which does not exist yet (the schedule is insertion order)");
    }
  }
  nodes_.push_back(Node{std::move(layer), std::move(inputs), {}});
  return nodes_.size() - 1;
}

void Graph::set_heads(std::vector<NodeId> heads) {
  if (sealed_) {
    throw std::logic_error("Graph::set_heads: graph already sealed");
  }
  if (heads.empty()) {
    throw std::invalid_argument("Graph::set_heads: empty head list");
  }
  for (NodeId h : heads) {
    if (h >= nodes_.size()) {
      throw std::invalid_argument("Graph::set_heads: node " +
                                  std::to_string(h) + " does not exist");
    }
  }
  heads_ = std::move(heads);
}

std::size_t Graph::fuse_eltwise() {
  if (sealed_) {
    throw std::logic_error("Graph::fuse_eltwise: graph already sealed");
  }
  // Consumer counts over the pre-fusion ids decide "sole consumer".
  std::vector<std::size_t> consumer_count(nodes_.size(), 0);
  for (const Node& node : nodes_) {
    for (NodeId in : node.inputs) {
      if (in != kGraphInput) ++consumer_count[in];
    }
  }
  std::vector<bool> pinned(nodes_.size(), false);
  for (NodeId h : heads_) pinned[h] = true;  // heads keep their output

  std::vector<Node> kept;
  kept.reserve(nodes_.size());
  std::vector<NodeId> remap(nodes_.size());
  std::size_t fused = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    Node node = std::move(nodes_[i]);
    const NodeId orig_input = node.inputs[0];
    for (NodeId& in : node.inputs) {
      if (in != kGraphInput) in = remap[in];
    }
    if (const auto* act = dynamic_cast<const LeakyRelu*>(node.layer.get())) {
      if (node.inputs.size() == 1 && orig_input != kGraphInput &&
          consumer_count[orig_input] == 1 && !pinned[orig_input] &&
          kept[node.inputs[0]].layer->fuse_leaky_relu(
              act->negative_slope())) {
        // Drop the standalone activation; its consumers and head role
        // fall to the producer.
        remap[i] = node.inputs[0];
        ++fused;
        continue;
      }
    }
    remap[i] = kept.size();
    kept.push_back(std::move(node));
  }
  for (NodeId& h : heads_) h = remap[h];
  nodes_ = std::move(kept);
  return fused;
}

void Graph::seal() {
  if (sealed_) throw std::logic_error("Graph::seal: called twice");
  if (nodes_.empty()) throw std::logic_error("Graph::seal: empty graph");
  if (heads_.empty()) heads_ = {nodes_.size() - 1};
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (NodeId in : nodes_[i].inputs) {
      if (in != kGraphInput) nodes_[in].consumers.push_back(i);
    }
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].consumers.empty() && !is_head(i)) {
      throw std::logic_error("Graph::seal: node " + nodes_[i].layer->name() +
                             " is neither consumed nor a head");
    }
  }
  sealed_ = true;
}

bool Graph::is_head(NodeId i) const {
  return std::find(heads_.begin(), heads_.end(), i) != heads_.end();
}

std::size_t Graph::edge_count() const {
  std::size_t edges = 0;
  for (const Node& node : nodes_) edges += node.inputs.size();
  return edges;
}

}  // namespace cf::dnn
