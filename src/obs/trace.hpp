// cf::obs span tracer — nested begin/end events in per-thread ring
// buffers, exportable as chrome://tracing JSON.
//
// Every instrumented scope (a layer's forward pass, one allreduce, a
// pipeline read) records one *complete* event: name, category, start
// timestamp and duration. Recording is wait-free on the hot path: each
// thread owns a ring buffer (registered with the tracer on first use
// and reclaimed when the thread exits), so a record is a bounds check
// plus a ~64-byte write. When a ring fills, the oldest events are
// overwritten and a drop counter advances — tracing never blocks or
// allocates while training runs.
//
// Export (Tracer::write_chrome_trace) merges all buffers, sorts by
// timestamp and emits the Chrome Trace Event JSON format ("X" phase
// events), loadable in chrome://tracing or https://ui.perfetto.dev.
// The schema is documented in OBSERVABILITY.md.
//
// Snapshots taken while other threads are still recording may observe
// partially-written events; take them at quiesce points (after a
// training run, between benchmark iterations).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cf::obs {

struct TraceEvent {
  static constexpr std::size_t kNameCapacity = 48;
  static constexpr std::size_t kCategoryCapacity = 16;

  char name[kNameCapacity];
  char category[kCategoryCapacity];
  std::uint64_t ts_ns = 0;   // start, nanoseconds since tracer epoch
  std::uint64_t dur_ns = 0;  // duration, nanoseconds
  std::uint32_t tid = 0;     // logical thread id (registration order)
};

class Tracer {
 public:
  /// Process-wide tracer used by the CF_TRACE_SCOPE macros.
  static Tracer& global();

  explicit Tracer(std::size_t ring_capacity = default_ring_capacity());
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;
  ~Tracer();

  /// Runtime switch (spans also compile away entirely under
  /// COSMOFLOW_TELEMETRY=OFF; see obs/telemetry.hpp).
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Nanoseconds on the monotonic clock since the process-wide epoch.
  static std::uint64_t now_ns();

  /// Records one complete event on the calling thread's ring.
  void record(const char* name, const char* category, std::uint64_t ts_ns,
              std::uint64_t dur_ns);

  /// Test hook: records with an explicit timestamp and logical tid
  /// (deterministic-export golden tests inject fixed events).
  void record_at(const char* name, const char* category, std::uint32_t tid,
                 std::uint64_t ts_ns, std::uint64_t dur_ns);

  /// All recorded events, merged across threads and sorted by
  /// (ts_ns, tid). Take at a quiesce point.
  std::vector<TraceEvent> snapshot() const;

  /// Events overwritten because a ring filled.
  std::uint64_t dropped() const;

  /// Forgets all recorded events (buffers stay registered).
  void clear();

  /// Chrome Trace Event JSON. Deterministic for a fixed event set.
  std::string to_chrome_json() const;
  /// Writes to_chrome_json() to `path`; returns false on I/O error.
  bool write_chrome_trace(const std::string& path) const;

  /// Per-thread ring capacity in events; COSMOFLOW_TRACE_CAPACITY
  /// overrides the 16384 default.
  static std::size_t default_ring_capacity();
  std::size_t ring_capacity() const noexcept { return ring_capacity_; }

 private:
  struct ThreadBuffer {
    explicit ThreadBuffer(std::size_t capacity, std::uint32_t tid_)
        : ring(capacity), tid(tid_) {}
    std::vector<TraceEvent> ring;
    /// Single writer; readers use relaxed loads (see header comment).
    std::atomic<std::size_t> head{0};
    std::atomic<std::size_t> count{0};
    std::atomic<std::uint64_t> dropped{0};
    std::uint32_t tid = 0;
    /// Buffers of exited threads are reclaimed (events kept) so memory
    /// is bounded by the maximum number of concurrent traced threads.
    bool in_use = false;
  };

  friend struct ThreadBufferLease;
  ThreadBuffer* acquire_buffer();
  void release_buffer(ThreadBuffer* buffer);
  ThreadBuffer* local_buffer();
  static void push(ThreadBuffer& buf, const char* name, const char* category,
                   std::uint64_t ts_ns, std::uint64_t dur_ns);

  std::size_t ring_capacity_;
  std::atomic<bool> enabled_{true};
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::uint32_t next_tid_ = 0;
};

}  // namespace cf::obs
