// Wall-clock timing utilities used by the per-layer and per-category
// profiles (Table I, Fig 3) and by the bench harnesses.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace cf::runtime {

/// Monotonic stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates independent timing observations and reports summary
/// statistics. Not thread safe; use one per thread and merge.
class TimeStats {
 public:
  void add(double seconds) {
    total_ += seconds;
    min_ = std::min(min_, seconds);
    max_ = std::max(max_, seconds);
    ++count_;
    sum_sq_ += seconds * seconds;
  }

  void merge(const TimeStats& other) {
    total_ += other.total_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ += other.count_;
    sum_sq_ += other.sum_sq_;
  }

  std::size_t count() const noexcept { return count_; }
  double total() const noexcept { return total_; }
  double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return count_ == 0 ? 0.0 : max_; }
  double mean() const noexcept {
    return count_ == 0 ? 0.0 : total_ / static_cast<double>(count_);
  }
  double stddev() const noexcept {
    if (count_ < 2) return 0.0;
    const double n = static_cast<double>(count_);
    const double var = (sum_sq_ - total_ * total_ / n) / (n - 1.0);
    return var > 0.0 ? std::sqrt(var) : 0.0;
  }

 private:
  double total_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = 0.0;
  double sum_sq_ = 0.0;
  std::size_t count_ = 0;
};

/// RAII scope timer appending into a TimeStats.
class ScopedTimer {
 public:
  explicit ScopedTimer(TimeStats& stats) : stats_(stats) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { stats_.add(watch_.elapsed_seconds()); }

 private:
  TimeStats& stats_;
  Stopwatch watch_;
};

}  // namespace cf::runtime
