#include "data/augment.hpp"

#include <array>
#include <cstring>
#include <stdexcept>

namespace cf::data {

namespace {

constexpr std::array<std::array<int, 3>, 6> kPermutations{{
    {0, 1, 2},
    {0, 2, 1},
    {1, 0, 2},
    {1, 2, 0},
    {2, 0, 1},
    {2, 1, 0},
}};

void check_cubic(const tensor::Tensor& volume, std::uint32_t code) {
  if (code >= kOrientationCount) {
    throw std::invalid_argument("orient_volume: code out of range");
  }
  if (volume.shape().rank() != 4 || volume.shape()[0] != 1 ||
      volume.shape()[1] != volume.shape()[2] ||
      volume.shape()[1] != volume.shape()[3]) {
    throw std::invalid_argument("orient_volume: expected cubic {1,N,N,N}");
  }
}

void gather_oriented(const float* src, float* dst, std::int64_t n,
                     std::uint32_t code) {
  const std::uint32_t mirror = code % 8;
  const auto& perm = kPermutations[code / 8];
  for (std::int64_t z = 0; z < n; ++z) {
    for (std::int64_t y = 0; y < n; ++y) {
      for (std::int64_t x = 0; x < n; ++x) {
        std::int64_t coords[3] = {z, y, x};
        // Mirror selected axes, then permute.
        std::int64_t mirrored[3];
        for (int axis = 0; axis < 3; ++axis) {
          mirrored[axis] = (mirror >> axis) & 1u
                               ? n - 1 - coords[axis]
                               : coords[axis];
        }
        const std::int64_t sz = mirrored[perm[0]];
        const std::int64_t sy = mirrored[perm[1]];
        const std::int64_t sx = mirrored[perm[2]];
        dst[(z * n + y) * n + x] = src[(sz * n + sy) * n + sx];
      }
    }
  }
}

}  // namespace

void orient_volume(tensor::Tensor& volume, std::uint32_t code) {
  check_cubic(volume, code);
  if (code == 0) return;
  const tensor::Tensor source = volume.clone();
  gather_oriented(source.data(), volume.data(), volume.shape()[1], code);
}

void orient_volume_into(const tensor::Tensor& src, std::span<float> dst,
                        std::uint32_t code) {
  check_cubic(src, code);
  if (dst.size() != static_cast<std::size_t>(src.size())) {
    throw std::invalid_argument("orient_volume_into: dst size mismatch");
  }
  if (code == 0) {
    std::memcpy(dst.data(), src.data(), dst.size() * sizeof(float));
    return;
  }
  gather_oriented(src.data(), dst.data(), src.shape()[1], code);
}

}  // namespace cf::data
