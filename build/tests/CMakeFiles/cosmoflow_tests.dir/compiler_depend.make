# Empty compiler generated dependencies file for cosmoflow_tests.
# This may be replaced when dependencies are built.
