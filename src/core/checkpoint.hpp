// Binary model checkpoints: topology name + flat parameter vector,
// CRC-protected. Enables the train -> predict example split and
// restart-safety tests.
#pragma once

#include <string>

#include "dnn/network.hpp"

namespace cf::core {

/// Writes the network's parameters to `path`. Throws on I/O errors.
void save_checkpoint(const std::string& path, const std::string& topology,
                     const dnn::Network& network);

/// Loads parameters saved with save_checkpoint into `network`. Throws
/// if the topology name or parameter count does not match.
void load_checkpoint(const std::string& path,
                     const std::string& expected_topology,
                     dnn::Network& network);

}  // namespace cf::core
