// Per-stream execution state for a finalized dnn::Network.
//
// The model/stream split (DESIGN.md §2.3): a Network holds only
// immutable-after-finalize state — the graph (geometry + weights in
// the flat param arena) and the plans computed by the fusion and
// memory-planner passes. Everything one execution stream mutates lives
// here instead: the input staging copy, the activation buffers, the
// slot-colored diff arena, the shared backward scratch, the flat
// gradient arena, and each node's LayerExecState (timers, forward
// staging workspace, gradient tensors). N contexts over one Network run
// forward concurrently against one shared weight copy.
//
// Execution walks the network's schedule (insertion order, topological
// by construction). Each node reads its producers' activations by edge;
// backward walks the reverse schedule and accumulates fan-in gradient
// contributions deterministically in edge order (DESIGN.md §2.8).
//
// ExecMode picks what gets allocated:
//  * kTraining — the full set. Buffer placement matches the planner
//    exactly (slot-colored diff arena + shared scratch when the network
//    was finalized with memory planning, per-node buffers otherwise),
//    so a training step through a context is bitwise identical to the
//    pre-IR sequential step.
//  * kInference — forward-only: activations collapse onto the
//    interval-liveness slot arena (on a linear chain, the historical
//    even/odd ping-pong), one shared conv staging workspace sized to
//    the largest request, and *no* diff/scratch/grad arenas at all.
//    backward(), zero_grads() and params() throw.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "dnn/layer.hpp"
#include "dnn/precision.hpp"
#include "runtime/aligned_buffer.hpp"

namespace cf::dnn {

class Network;
struct IntraopPlan;

enum class ExecMode { kTraining, kInference };

class ExecContext {
 public:
  /// Built by Network::make_context. The context holds a pointer to the
  /// network: the network must outlive it and stay put (heap-owned or
  /// otherwise address-stable). Non-fp32 precisions are inference-only
  /// and require the network to be prepared
  /// (Network::prepare_inference_precision) — make_context enforces
  /// both. In kBf16 the activation slot arena and the input staging
  /// copy are bf16 (half the bytes); the forward() return value is
  /// still an fp32 tensor, widened from the head's output.
  explicit ExecContext(Network& net, ExecMode mode,
                       Precision precision = Precision::kFp32);

  ExecContext(ExecContext&&) = default;
  ExecContext& operator=(ExecContext&&) = default;
  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  ExecMode mode() const noexcept { return mode_; }
  Precision precision() const noexcept { return precision_; }

  /// Runs the forward pass through this stream; the returned view stays
  /// valid until the next forward() on the same context. A single-head
  /// network returns the head's activation directly; multiple heads are
  /// concatenated flat, in head order. Training contexts stage `input`
  /// into the context-owned input copy first (backward re-reads it);
  /// fp32/int8w *inference* contexts skip that staging copy entirely
  /// and read `input` in place — `input` must stay alive and unmodified
  /// until forward returns.
  const tensor::Tensor& forward(const tensor::Tensor& input,
                                runtime::ThreadPool& pool);

  /// The context-owned input staging buffer (shape = network input
  /// shape). Callers that assemble the network input anyway — the
  /// Trainer's batch gather, with augmentation folded in — write it
  /// directly and call forward_staged(), eliminating forward()'s
  /// staging memcpy. fp32/int8w only: a bf16 context has no fp32 input
  /// buffer (throws std::logic_error).
  std::span<float> input_staging();

  /// forward() over the bytes already written into input_staging();
  /// bitwise-identical to forward(t, pool) with t holding those bytes.
  const tensor::Tensor& forward_staged(runtime::ThreadPool& pool);

  /// Invoked by backward() right after node `i`'s backward pass (its
  /// bwd_weights included) finishes, i.e. the moment grad_segment(i)
  /// holds this step's final local gradients. Nodes are visited in
  /// reverse schedule order, so segments become ready tail-first and
  /// contiguously — callers can coalesce them into buckets and start
  /// communicating while earlier nodes are still computing.
  using GradReadyCallback = std::function<void(std::size_t layer_index)>;

  /// Runs the backward pass from the loss gradient w.r.t. the network
  /// output (per-head slices of `dloss` seed the head diffs). Parameter
  /// gradients accumulate into this context's grad arena; data
  /// gradients toward the network input are skipped (the input is data,
  /// §V-A workflow). A diff receiving several contributions — fan-out
  /// nodes, consumed heads — is summed deterministically in reverse
  /// schedule / edge order. Requires a preceding forward() on this
  /// context; training mode only.
  void backward(const tensor::Tensor& dloss, runtime::ThreadPool& pool,
                const GradReadyCallback& grad_ready = {});

  void zero_grads();

  /// Applies a cost-model intra-op plan to this stream (DESIGN.md
  /// §2.6): copies the per-layer grains into each LayerExecState and
  /// publishes the dnn/intraop/* gauges. The grain only changes how the
  /// kernels' fixed job grids are partitioned across the stream's
  /// ThreadPool, never what any job computes, so applying (or not
  /// applying) a plan is bitwise-neutral. Plans whose grain list does
  /// not match this network's layer count throw.
  void apply_intraop(const IntraopPlan& plan);

  /// The per-layer grain currently applied (1 until apply_intraop).
  std::size_t intraop_grain(std::size_t i) const {
    return exec_[i].intraop_grain;
  }

  /// Parameter views pairing the network's (shared) values with this
  /// context's gradients, in schedule order — the optimizer input.
  /// Training mode only.
  std::vector<ParamView> params();

  // Flat gradient arena views (training mode; empty in inference).
  // Layout is schedule order, parameter-tensor order — identical to the
  // network's param arena layout.
  std::span<float> grad_arena() noexcept {
    return {grad_arena_.data(), grad_arena_.size()};
  }
  /// Node i's slice of the grad arena (empty for parameterless layers).
  std::span<float> grad_segment(std::size_t i);

  void copy_grads_to(std::span<float> out);
  void set_grads_from(std::span<const float> in);

  /// Node i's difference tensor (test hook for planner aliasing checks;
  /// training mode).
  const tensor::Tensor& diff(std::size_t i) const { return diffs_[i]; }

  /// Per-layer timing rows for Table I / Fig 3, read from this stream's
  /// LayerExecStates.
  std::vector<LayerProfile> profiles() const;
  void reset_profiles();

  // What this context actually allocated, in bytes. For a training
  // context the first three match the network's planned accounting; an
  // inference context reports a collapsed activation arena and zeros
  // for diff/scratch/grad.
  std::size_t activation_bytes() const noexcept { return act_bytes_; }
  std::size_t diff_arena_bytes() const noexcept {
    return diff_bytes_;
  }
  std::size_t scratch_bytes() const noexcept {
    return scratch_arena_.size() * sizeof(float);
  }
  std::size_t workspace_bytes() const noexcept {
    return workspace_arena_.size() * sizeof(float);
  }
  std::size_t grad_bytes() const noexcept {
    return grad_arena_.size() * sizeof(float);
  }
  /// Same definition the network uses for its planned footprint
  /// (activations + diffs + scratch; staging workspace excluded).
  std::size_t peak_tensor_bytes() const noexcept {
    return activation_bytes() + diff_arena_bytes() + scratch_bytes();
  }
  /// Everything: input staging + activations + diffs + scratch +
  /// workspace + grads + fan-in accumulation buffer.
  std::size_t total_bytes() const noexcept;

 private:
  void build_training_buffers();
  void build_inference_buffers();
  void build_inference_buffers_bf16();
  const tensor::Tensor& forward_bf16_path(const tensor::Tensor& input,
                                          runtime::ThreadPool& pool);
  /// The fp32/int8w schedule loop over an already-staged input tensor.
  const tensor::Tensor& run_forward(const tensor::Tensor& staged,
                                    runtime::ThreadPool& pool);

  Network* net_ = nullptr;
  ExecMode mode_ = ExecMode::kTraining;
  Precision precision_ = Precision::kFp32;

  tensor::Tensor input_;
  std::vector<tensor::Tensor> activations_;  // output of each node
  std::vector<tensor::Tensor> diffs_;        // d(loss)/d(activation)
  std::vector<LayerExecState> exec_;         // one per node

  // kBf16 stream storage: bf16 input staging, bf16 activation slot
  // arena (offsets identical to the fp32 act slots) and the fp32
  // widening of the head outputs that forward() returns.
  runtime::AlignedBuffer<bf16_t> input16_;
  runtime::AlignedBuffer<bf16_t> act16_arena_;
  // The concatenated multi-head output (fp32; also the bf16 widening
  // target). Unallocated for single-head fp32/int8w contexts — those
  // return the head activation itself.
  tensor::Tensor output_;

  // Context-owned storage. act_arena_ backs the inference slot-colored
  // activations (training activations own per-node storage);
  // diff_arena_ backs the slot-colored diff buffers when the network
  // was planned; scratch_arena_ the backward scratch; workspace_arena_
  // the forward staging regions; grad_arena_ the flat gradients;
  // accum_arena_ the shared fan-in gradient accumulation buffer (all
  // accum tensors alias it — they are used strictly one at a time).
  runtime::AlignedBuffer<float> act_arena_;
  runtime::AlignedBuffer<float> diff_arena_;
  runtime::AlignedBuffer<float> scratch_arena_;
  runtime::AlignedBuffer<float> workspace_arena_;
  runtime::AlignedBuffer<float> grad_arena_;
  runtime::AlignedBuffer<float> accum_arena_;
  std::vector<tensor::Tensor> accum_;  // per fan-in node; alias accum_arena_
  std::size_t act_bytes_ = 0;   // per-node sum (training) / arena size
  std::size_t diff_bytes_ = 0;  // per-node sum or slot-arena size

  // backward() bookkeeping: which diffs already hold a contribution
  // this sweep, plus reusable gather scratch for multi-input dispatch.
  std::vector<std::uint8_t> diff_written_;
  std::vector<const tensor::Tensor*> src_ptrs_;
  std::vector<tensor::Tensor*> dsrc_ptrs_;
  std::vector<std::uint8_t> need_flags_;
  std::vector<std::uint8_t> accum_flags_;

  bool forward_done_ = false;
};

}  // namespace cf::dnn
