// cf::obs umbrella header: span macros + the compile-time switch.
//
// Instrumented code writes
//
//   CF_TRACE_SCOPE("conv1/fwd", "conv");
//
// which records one complete trace event for the enclosing scope into
// the global Tracer. With the CMake option COSMOFLOW_TELEMETRY=OFF the
// library is built with COSMOFLOW_TELEMETRY_ENABLED=0 and every span
// macro expands to nothing — zero code, zero clock reads — so kernels
// run at exactly their uninstrumented speed (the measured overhead
// budget lives in OBSERVABILITY.md). Counters and Stats (obs/metrics)
// stay available in both modes: they sit outside kernel loops and cost
// one relaxed atomic or one uncontended lock per event.
//
// SpanScope copies its name and category at construction, so passing a
// transient std::string's .c_str() is safe.
#pragma once

#include <cstring>

#include "obs/jsonl.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#ifndef COSMOFLOW_TELEMETRY_ENABLED
#define COSMOFLOW_TELEMETRY_ENABLED 1
#endif

namespace cf::obs {

/// Whether span macros in this translation unit compile to real spans.
inline constexpr bool kTelemetryEnabled = COSMOFLOW_TELEMETRY_ENABLED != 0;

/// RAII span: stamps the start on construction, records a complete
/// event on destruction. Does nothing when the tracer is disabled.
class SpanScope {
 public:
  explicit SpanScope(const char* name, const char* category = "span") {
    Tracer& tracer = Tracer::global();
    armed_ = tracer.enabled();
    if (!armed_) return;
    std::strncpy(name_, name == nullptr ? "" : name, sizeof(name_) - 1);
    name_[sizeof(name_) - 1] = '\0';
    std::strncpy(category_, category == nullptr ? "" : category,
                 sizeof(category_) - 1);
    category_[sizeof(category_) - 1] = '\0';
    start_ns_ = Tracer::now_ns();
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  ~SpanScope() {
    if (!armed_) return;
    Tracer::global().record(name_, category_, start_ns_,
                            Tracer::now_ns() - start_ns_);
  }

 private:
  char name_[TraceEvent::kNameCapacity];
  char category_[TraceEvent::kCategoryCapacity];
  std::uint64_t start_ns_ = 0;
  bool armed_ = false;
};

}  // namespace cf::obs

#define CF_OBS_CONCAT_INNER(a, b) a##b
#define CF_OBS_CONCAT(a, b) CF_OBS_CONCAT_INNER(a, b)

#if COSMOFLOW_TELEMETRY_ENABLED
/// CF_TRACE_SCOPE(name [, category]) — traces the enclosing scope.
#define CF_TRACE_SCOPE(...) \
  const ::cf::obs::SpanScope CF_OBS_CONCAT(cf_obs_span_, __LINE__){__VA_ARGS__}
#else
#define CF_TRACE_SCOPE(...) static_cast<void>(0)
#endif
