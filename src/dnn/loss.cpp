#include "dnn/loss.hpp"

#include <stdexcept>

namespace cf::dnn {

float mse_loss(std::span<const float> pred, std::span<const float> target) {
  if (pred.size() != target.size() || pred.empty()) {
    throw std::invalid_argument("mse_loss: size mismatch or empty");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double diff = static_cast<double>(pred[i]) - target[i];
    acc += diff * diff;
  }
  return static_cast<float>(acc / static_cast<double>(pred.size()));
}

void mse_loss_grad(std::span<const float> pred,
                   std::span<const float> target, std::span<float> dpred) {
  if (pred.size() != target.size() || pred.size() != dpred.size() ||
      pred.empty()) {
    throw std::invalid_argument("mse_loss_grad: size mismatch or empty");
  }
  const float scale = 2.0f / static_cast<float>(pred.size());
  for (std::size_t i = 0; i < pred.size(); ++i) {
    dpred[i] = scale * (pred[i] - target[i]);
  }
}

}  // namespace cf::dnn
