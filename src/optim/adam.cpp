#include "optim/adam.hpp"

#include <cmath>
#include <stdexcept>

namespace cf::optim {

AdamState::AdamState(std::size_t size, AdamConfig config)
    : config_(config), m_(size, 0.0f), v_(size, 0.0f) {
  if (config.beta1 < 0.0 || config.beta1 >= 1.0 || config.beta2 < 0.0 ||
      config.beta2 >= 1.0 || config.epsilon <= 0.0) {
    throw std::invalid_argument("AdamState: bad hyper-parameters");
  }
}

void AdamState::step(std::span<float> params, std::span<const float> grads,
                     double lr) {
  if (params.size() != m_.size() || grads.size() != m_.size()) {
    throw std::invalid_argument("AdamState::step: size mismatch");
  }
  ++t_;
  const float beta1 = static_cast<float>(config_.beta1);
  const float beta2 = static_cast<float>(config_.beta2);
  const double bias1 = 1.0 - std::pow(config_.beta1, t_);
  const double bias2 = 1.0 - std::pow(config_.beta2, t_);
  const float inv_bias1 = static_cast<float>(1.0 / bias1);
  const float inv_bias2 = static_cast<float>(1.0 / bias2);
  const float rate = static_cast<float>(lr);
  const float eps = static_cast<float>(config_.epsilon);

  const std::size_t n = params.size();
  for (std::size_t i = 0; i < n; ++i) {
    const float g = grads[i];
    m_[i] = beta1 * m_[i] + (1.0f - beta1) * g;
    v_[i] = beta2 * v_[i] + (1.0f - beta2) * g * g;
    const float m_hat = m_[i] * inv_bias1;
    const float v_hat = v_[i] * inv_bias2;
    params[i] -= rate * m_hat / (std::sqrt(v_hat) + eps);
  }
}

void AdamState::restore(std::span<const float> m, std::span<const float> v,
                        std::int64_t steps) {
  if (m.size() != m_.size() || v.size() != v_.size() || steps < 0) {
    throw std::invalid_argument("AdamState::restore: bad state");
  }
  std::copy(m.begin(), m.end(), m_.begin());
  std::copy(v.begin(), v.end(), v_.begin());
  t_ = steps;
}

}  // namespace cf::optim
