#include "cosmo/simulation.hpp"

#include <cmath>
#include <stdexcept>

#include "cosmo/growth.hpp"

namespace cf::cosmo {

using tensor::Shape;
using tensor::Tensor;

Simulation::Simulation(SimulationConfig config) : config_(config) {
  if (config_.voxels <= 0 || config_.voxels % 2 != 0) {
    throw std::invalid_argument(
        "Simulation: voxel grid must be positive and even (octant split)");
  }
  if (config_.growth <= 0.0) {
    throw std::invalid_argument("Simulation: growth must be positive");
  }
}

Universe Simulation::run(const CosmoParams& params, std::uint64_t seed,
                         runtime::ThreadPool& pool) const {
  const PowerSpectrum ps(params, config_.transfer);
  runtime::Rng rng(seed, /*stream=*/0x636f736d6fULL);  // "cosmo"
  const auto delta_k = generate_delta_k(ps, config_.grid, rng, pool);
  // delta_k is the z = 0 linear field; earlier snapshots displace by
  // the growth-suppressed amplitude D(z)/D(0).
  double growth = config_.growth;
  if (config_.redshift > 0.0) {
    growth *= GrowthFactor(params.omega_m).at_redshift(config_.redshift);
  }
  const ParticleSet particles =
      config_.use_2lpt
          ? lpt2_displace(delta_k, config_.grid, growth, pool)
          : zeldovich_displace(delta_k, config_.grid, growth, pool);
  Universe universe{params,
                    deposit_particles(particles, config_.voxels,
                                      config_.scheme)};
  return universe;
}

std::vector<CosmoParams> sample_parameters(std::size_t count,
                                           std::uint64_t seed,
                                           const ParamRanges& ranges) {
  std::vector<CosmoParams> params;
  params.reserve(count);
  runtime::Rng rng(seed, /*stream=*/0x706172616dULL);  // "param"
  for (std::size_t i = 0; i < count; ++i) {
    CosmoParams p;
    p.omega_m = rng.uniform(static_cast<float>(ranges.omega_m_lo),
                            static_cast<float>(ranges.omega_m_hi));
    p.sigma8 = rng.uniform(static_cast<float>(ranges.sigma8_lo),
                           static_cast<float>(ranges.sigma8_hi));
    p.ns = rng.uniform(static_cast<float>(ranges.ns_lo),
                       static_cast<float>(ranges.ns_hi));
    params.push_back(p);
  }
  return params;
}

std::vector<Tensor> split_octants(const Tensor& voxels) {
  if (voxels.shape().rank() != 3 || voxels.shape()[0] != voxels.shape()[1] ||
      voxels.shape()[0] != voxels.shape()[2]) {
    throw std::invalid_argument("split_octants: expected cubic {V, V, V}");
  }
  const std::int64_t v = voxels.shape()[0];
  if (v % 2 != 0) {
    throw std::invalid_argument("split_octants: V must be even");
  }
  const std::int64_t half = v / 2;
  std::vector<Tensor> octants;
  octants.reserve(8);
  for (std::int64_t oz = 0; oz < 2; ++oz) {
    for (std::int64_t oy = 0; oy < 2; ++oy) {
      for (std::int64_t ox = 0; ox < 2; ++ox) {
        Tensor sub(Shape{1, half, half, half});
        for (std::int64_t z = 0; z < half; ++z) {
          for (std::int64_t y = 0; y < half; ++y) {
            const float* src =
                voxels.data() +
                ((oz * half + z) * v + oy * half + y) * v + ox * half;
            float* dst = sub.data() + (z * half + y) * half;
            for (std::int64_t x = 0; x < half; ++x) dst[x] = src[x];
          }
        }
        octants.push_back(std::move(sub));
      }
    }
  }
  return octants;
}

void log1p_in_place(Tensor& voxels) {
  for (float& v : voxels.values()) v = std::log1p(v);
}

void center_in_place(Tensor& voxels, float offset) {
  for (float& v : voxels.values()) v -= offset;
}

std::array<float, 3> normalize_params(const CosmoParams& params,
                                      const ParamRanges& ranges) {
  const auto norm = [](double value, double lo, double hi) {
    return static_cast<float>((value - lo) / (hi - lo));
  };
  return {norm(params.omega_m, ranges.omega_m_lo, ranges.omega_m_hi),
          norm(params.sigma8, ranges.sigma8_lo, ranges.sigma8_hi),
          norm(params.ns, ranges.ns_lo, ranges.ns_hi)};
}

CosmoParams denormalize_params(const std::array<float, 3>& normalized,
                               const ParamRanges& ranges) {
  const auto denorm = [](float value, double lo, double hi) {
    return lo + static_cast<double>(value) * (hi - lo);
  };
  CosmoParams p;
  p.omega_m = denorm(normalized[0], ranges.omega_m_lo, ranges.omega_m_hi);
  p.sigma8 = denorm(normalized[1], ranges.sigma8_lo, ranges.sigma8_hi);
  p.ns = denorm(normalized[2], ranges.ns_lo, ranges.ns_hi);
  return p;
}

}  // namespace cf::cosmo
