#include "comm/mlcomm.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "obs/telemetry.hpp"

namespace cf::comm {

int RankHandle::size() const noexcept { return comm_->size(); }

void RankHandle::barrier() { comm_->barrier_.arrive_and_wait(); }

void RankHandle::broadcast(std::span<float> data, int root) {
  CF_TRACE_SCOPE("comm/broadcast", "comm");
  const obs::ScopedStatTimer timer(*comm_->comm_stats_[rank_]);
  comm_->do_broadcast(rank_, data, root);
}

void RankHandle::allreduce_average(std::span<float> data) {
  CF_TRACE_SCOPE("comm/allreduce", "comm");
  const obs::ScopedStatTimer timer(*comm_->comm_stats_[rank_]);
  comm_->do_allreduce(rank_, data);
}

double RankHandle::allreduce_average_scalar(double value) {
  CF_TRACE_SCOPE("comm/allreduce_scalar", "comm");
  const obs::ScopedStatTimer timer(*comm_->comm_stats_[rank_]);
  comm_->scalar_slots_[rank_] = value;
  comm_->barrier_.arrive_and_wait();
  double acc = 0.0;
  for (int r = 0; r < comm_->nranks_; ++r) acc += comm_->scalar_slots_[r];
  comm_->barrier_.arrive_and_wait();
  return acc / comm_->nranks_;
}

PendingReduce RankHandle::allreduce_average_async(std::span<float> data) {
  return comm_->post_async(rank_, data);
}

void RankHandle::wait(PendingReduce& pending) {
  CF_TRACE_SCOPE("comm/wait", "comm");
  comm_->wait_async(rank_, pending);
}

runtime::TimeStats RankHandle::comm_time() const {
  return comm_->comm_stats_[rank_]->snapshot();
}

void RankHandle::reset_comm_time() { comm_->comm_stats_[rank_]->reset(); }

runtime::TimeStats RankHandle::exposed_comm_time() const {
  return comm_->exposed_stats_[rank_]->snapshot();
}

runtime::TimeStats RankHandle::hidden_comm_time() const {
  return comm_->hidden_stats_[rank_]->snapshot();
}

MlComm::MlComm(int nranks, MlCommConfig config)
    : nranks_(nranks),
      config_(std::move(config)),
      barrier_(static_cast<std::size_t>(nranks)),
      slots_(static_cast<std::size_t>(nranks), nullptr),
      slot_sizes_(static_cast<std::size_t>(nranks), 0),
      scalar_slots_(static_cast<std::size_t>(nranks), 0.0) {
  if (nranks <= 0) throw std::invalid_argument("MlComm: nranks must be > 0");
  if (config_.chunk_elems == 0) {
    throw std::invalid_argument("MlComm: chunk_elems must be > 0");
  }
  handles_.reserve(static_cast<std::size_t>(nranks));
  comm_stats_.reserve(static_cast<std::size_t>(nranks));
  async_posts_.resize(static_cast<std::size_t>(nranks));
  posted_count_.assign(static_cast<std::size_t>(nranks), 0);
  obs::Registry& registry = obs::Registry::global();
  for (int r = 0; r < nranks; ++r) {
    handles_.push_back(RankHandle(this, r));
    const std::string suffix = "/r" + std::to_string(r);
    obs::Stat& stat = registry.stat("comm/collective" + suffix);
    stat.reset();  // a new communicator starts a fresh measurement
    comm_stats_.push_back(&stat);
    obs::Stat& exposed = registry.stat("comm/exposed" + suffix);
    exposed.reset();
    exposed_stats_.push_back(&exposed);
    obs::Stat& hidden = registry.stat("comm/hidden" + suffix);
    hidden.reset();
    hidden_stats_.push_back(&hidden);
    obs::Gauge& overlap =
        registry.gauge("comm/overlap_fraction" + suffix);
    overlap.reset();
    overlap_gauges_.push_back(&overlap);
  }
  allreduce_calls_ = &registry.counter("comm/allreduce_calls");
  allreduce_bytes_ = &registry.counter("comm/allreduce_bytes");
  allreduce_chunks_ = &registry.counter("comm/allreduce_chunks");
  bucket_count_ = &registry.counter("comm/buckets");
}

MlComm::~MlComm() {
  {
    const std::lock_guard<std::mutex> lock(async_mutex_);
    helper_stop_ = true;
  }
  async_work_cv_.notify_all();
  if (helper_.joinable()) helper_.join();
}

RankHandle& MlComm::handle(int rank) {
  if (rank < 0 || rank >= nranks_) {
    throw std::out_of_range("MlComm::handle: bad rank");
  }
  return handles_[static_cast<std::size_t>(rank)];
}

void MlComm::run(const std::function<void(RankHandle&)>& body) {
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks_));
  threads.reserve(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) {
    threads.emplace_back([&, r] {
      try {
        body(handles_[static_cast<std::size_t>(r)]);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (const auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

void MlComm::publish(int rank, float* data, std::size_t size) {
  slots_[static_cast<std::size_t>(rank)] = data;
  slot_sizes_[static_cast<std::size_t>(rank)] = size;
}

void MlComm::check_uniform_size_locked(std::size_t size) {
  for (int r = 0; r < nranks_; ++r) {
    if (slot_sizes_[static_cast<std::size_t>(r)] != size) {
      throw std::invalid_argument(
          "MlComm: ranks passed buffers of different sizes");
    }
  }
}

void MlComm::do_broadcast(int rank, std::span<float> data, int root) {
  if (root < 0 || root >= nranks_) {
    throw std::invalid_argument("MlComm::broadcast: bad root");
  }
  publish(rank, data.data(), data.size());
  barrier_.arrive_and_wait();
  check_uniform_size_locked(data.size());
  if (rank != root) {
    std::memcpy(data.data(), slots_[static_cast<std::size_t>(root)],
                data.size() * sizeof(float));
  }
  barrier_.arrive_and_wait();
}

void MlComm::do_allreduce(int rank, std::span<float> data) {
  if (rank == 0) {
    allreduce_calls_->add(1);
    allreduce_bytes_->add(
        static_cast<std::int64_t>(data.size() * sizeof(float)));
  }
  if (config_.pre_reduce_hook) config_.pre_reduce_hook(rank);
  publish(rank, data.data(), data.size());
  if (barrier_.arrive_and_wait()) {
    // Leader grows the shared reduction buffer before anyone writes.
    if (reduce_buffer_.size() < data.size()) {
      reduce_buffer_.resize(data.size());
    }
  }
  barrier_.arrive_and_wait();
  check_uniform_size_locked(data.size());

  switch (config_.algorithm) {
    case AllreduceAlgorithm::kReduceScatter:
      reduce_scatter_allgather(rank, data);
      break;
    case AllreduceAlgorithm::kCentralRoot:
      central_root(rank, data);
      break;
  }
}

void MlComm::reduce_scatter_allgather(int rank, std::span<float> data) {
  const std::size_t n = data.size();
  const std::size_t k = static_cast<std::size_t>(nranks_);
  const std::size_t base = n / k;
  const std::size_t remainder = n % k;
  const std::size_t r = static_cast<std::size_t>(rank);
  const std::size_t begin = r * base + std::min(r, remainder);
  const std::size_t end = begin + base + (r < remainder ? 1 : 0);
  const float inv = 1.0f / static_cast<float>(nranks_);

  // Reduce-scatter: this rank reduces its owned range across all
  // ranks, in fixed rank order (determinism), chunk by chunk.
  std::int64_t chunks = 0;
  for (std::size_t chunk = begin; chunk < end;
       chunk += config_.chunk_elems) {
    const std::size_t stop = std::min(end, chunk + config_.chunk_elems);
    float* out = reduce_buffer_.data() + chunk;
    std::memcpy(out, slots_[0] + chunk, (stop - chunk) * sizeof(float));
    for (int src = 1; src < nranks_; ++src) {
      const float* in = slots_[static_cast<std::size_t>(src)] + chunk;
      for (std::size_t i = 0; i < stop - chunk; ++i) out[i] += in[i];
    }
    for (std::size_t i = 0; i < stop - chunk; ++i) out[i] *= inv;
    simulate_chunk_delay();
    ++chunks;
  }
  if (chunks > 0) allreduce_chunks_->add(chunks);
  barrier_.arrive_and_wait();

  // Allgather: copy the full averaged vector back.
  std::memcpy(data.data(), reduce_buffer_.data(), n * sizeof(float));
  barrier_.arrive_and_wait();
}

void MlComm::simulate_chunk_delay() const {
  if (config_.simulated_chunk_delay.count() > 0) {
    std::this_thread::sleep_for(config_.simulated_chunk_delay);
  }
}

PendingReduce MlComm::post_async(int rank, std::span<float> data) {
  // Straggler injection delays the rank's contribution, same as the
  // synchronous path (the bucket cannot start until every rank posts).
  if (config_.pre_reduce_hook) config_.pre_reduce_hook(rank);
  const std::lock_guard<std::mutex> lock(async_mutex_);
  if (async_error_) std::rethrow_exception(async_error_);
  if (!helper_.joinable()) {
    // Lazy start: communicators that never go async never pay for a
    // helper thread.
    helper_ = std::thread(&MlComm::helper_loop, this);
  }
  async_posts_[static_cast<std::size_t>(rank)].push_back(
      BucketPost{data.data(), data.size()});
  PendingReduce pending;
  pending.seq_ = ++posted_count_[static_cast<std::size_t>(rank)];
  pending.post_seconds_ = comm_clock_.elapsed_seconds();
  pending.valid_ = true;
  async_work_cv_.notify_one();
  return pending;
}

void MlComm::wait_async(int rank, PendingReduce& pending) {
  if (!pending.valid_) {
    throw std::logic_error("RankHandle::wait: invalid PendingReduce ticket");
  }
  pending.valid_ = false;
  const double wait_start = comm_clock_.elapsed_seconds();
  double completed_seconds = 0.0;
  {
    std::unique_lock<std::mutex> lock(async_mutex_);
    async_done_cv_.wait(lock, [&] {
      return async_error_ != nullptr || completed_count_ >= pending.seq_;
    });
    if (completed_count_ < pending.seq_) {
      std::rethrow_exception(async_error_);
    }
    auto it = completed_.find(pending.seq_);
    completed_seconds = it->second.completed_seconds;
    if (--it->second.waiters_left == 0) completed_.erase(it);
  }
  // Exposed = time this rank actually blocked here; the rest of the
  // post-to-completion service time was hidden behind compute.
  const double exposed = comm_clock_.elapsed_seconds() - wait_start;
  const double service =
      std::max(0.0, completed_seconds - pending.post_seconds_);
  const double hidden = std::max(0.0, service - exposed);
  const std::size_t r = static_cast<std::size_t>(rank);
  exposed_stats_[r]->add(exposed);
  hidden_stats_[r]->add(hidden);
  comm_stats_[r]->add(exposed);
  const double h = hidden_stats_[r]->snapshot().total();
  const double e = exposed_stats_[r]->snapshot().total();
  overlap_gauges_[r]->set(h + e > 0.0 ? h / (h + e) : 0.0);
}

void MlComm::set_async_error_locked(std::exception_ptr error) {
  async_error_ = std::move(error);
  async_done_cv_.notify_all();
}

void MlComm::helper_loop() {
  std::unique_lock<std::mutex> lock(async_mutex_);
  std::vector<BucketPost> posts(static_cast<std::size_t>(nranks_));
  while (true) {
    async_work_cv_.wait(lock, [&] {
      if (helper_stop_) return true;
      // The next bucket is ready once every rank has posted it.
      for (const auto& queue : async_posts_) {
        if (queue.empty()) return false;
      }
      return true;
    });
    if (helper_stop_) return;
    for (std::size_t r = 0; r < async_posts_.size(); ++r) {
      posts[r] = async_posts_[r].front();
      async_posts_[r].pop_front();
    }
    const std::size_t n = posts[0].size;
    bool mismatch = false;
    for (const BucketPost& post : posts) {
      if (post.size != n) mismatch = true;
    }
    if (mismatch) {
      set_async_error_locked(std::make_exception_ptr(std::invalid_argument(
          "MlComm: ranks posted async buckets of different sizes")));
      return;
    }
    lock.unlock();
    {
      CF_TRACE_SCOPE("comm/helper/reduce", "comm");
      reduce_bucket(posts);
    }
    lock.lock();
    ++completed_count_;
    completed_[completed_count_] =
        BucketDone{comm_clock_.elapsed_seconds(), nranks_};
    bucket_count_->add(1);
    allreduce_calls_->add(1);
    allreduce_bytes_->add(static_cast<std::int64_t>(n * sizeof(float)));
    async_done_cv_.notify_all();
  }
}

void MlComm::reduce_bucket(const std::vector<BucketPost>& posts) {
  // Same fixed-rank-order chunked arithmetic as
  // reduce_scatter_allgather, so a vector split into async buckets
  // averages bitwise identically to one synchronous call over it:
  // each element sees copy-from-rank-0, += ranks 1..k-1 in order,
  // then *= 1/k, independent of bucket boundaries.
  const std::size_t n = posts[0].size;
  if (n == 0) return;
  const float inv = 1.0f / static_cast<float>(nranks_);
  if (async_scratch_.size() < n) async_scratch_.resize(n);
  std::int64_t chunks = 0;
  for (std::size_t chunk = 0; chunk < n; chunk += config_.chunk_elems) {
    const std::size_t stop = std::min(n, chunk + config_.chunk_elems);
    float* out = async_scratch_.data() + chunk;
    std::memcpy(out, posts[0].data + chunk, (stop - chunk) * sizeof(float));
    for (int src = 1; src < nranks_; ++src) {
      const float* in = posts[static_cast<std::size_t>(src)].data + chunk;
      for (std::size_t i = 0; i < stop - chunk; ++i) out[i] += in[i];
    }
    for (std::size_t i = 0; i < stop - chunk; ++i) out[i] *= inv;
    simulate_chunk_delay();
    ++chunks;
  }
  for (const BucketPost& post : posts) {
    std::memcpy(post.data, async_scratch_.data(), n * sizeof(float));
  }
  allreduce_chunks_->add(chunks);
}

void MlComm::central_root(int rank, std::span<float> data) {
  const std::size_t n = data.size();
  const float inv = 1.0f / static_cast<float>(nranks_);
  if (rank == 0) {
    float* out = reduce_buffer_.data();
    std::memcpy(out, slots_[0], n * sizeof(float));
    for (int src = 1; src < nranks_; ++src) {
      const float* in = slots_[static_cast<std::size_t>(src)];
      for (std::size_t i = 0; i < n; ++i) out[i] += in[i];
    }
    for (std::size_t i = 0; i < n; ++i) out[i] *= inv;
  }
  barrier_.arrive_and_wait();
  std::memcpy(data.data(), reduce_buffer_.data(), n * sizeof(float));
  barrier_.arrive_and_wait();
}

}  // namespace cf::comm
