// Little-endian scalar packing shared by the cfrecord framing and the
// sample serializer. On little-endian hosts (every target we build
// for) the load/store compiles to a single memcpy the optimizer folds
// into a plain word access; the shift loop is kept as the portable
// fallback so the on-disk format stays LE everywhere.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

namespace cf::data {

template <typename T>
inline T load_le(const std::uint8_t* bytes) noexcept {
  if constexpr (std::endian::native == std::endian::little) {
    T value;
    std::memcpy(&value, bytes, sizeof(T));
    return value;
  } else {
    T value = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      value |= static_cast<T>(bytes[i]) << (8 * i);
    }
    return value;
  }
}

template <typename T>
inline void store_le(std::uint8_t* bytes, T value) noexcept {
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(bytes, &value, sizeof(T));
  } else {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      bytes[i] = static_cast<std::uint8_t>(value >> (8 * i));
    }
  }
}

template <typename T>
inline void append_le(std::vector<std::uint8_t>& out, T value) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(T));
  store_le(out.data() + at, value);
}

}  // namespace cf::data
