// §VI-B reproduction: gradient-aggregation communication analysis.
//
//  * MEASURED: MlComm allreduce of the paper's exact 28.15 MB gradient
//    message across thread-rank counts, for the decentralized
//    reduce-scatter algorithm and the centralized root baseline (the
//    gRPC-style scheme the paper cites as non-scalable). Reported as
//    effective algorithm bandwidth = 2 * message / time, the paper's
//    own metric.
//  * MODEL: the alpha-beta model at the paper's anchors — 33 ms /
//    1.7 GB/s/node at 1024 nodes, 39 ms / 1.42 GB/s/node at 8192.
//  * straggler-hiding: allreduce time with an injected slow rank.
//
//   ./bench_comm [--iters=5]
#include <cstdio>
#include <cstring>
#include <thread>

#include "comm/mlcomm.hpp"
#include "iosim/steptime_model.hpp"
#include "runtime/rng.hpp"
#include "runtime/timer.hpp"

namespace {

double time_allreduce(int nranks, std::size_t elems,
                      cf::comm::AllreduceAlgorithm algorithm, int iters,
                      double straggler_ms = 0.0) {
  using namespace cf;
  comm::MlCommConfig config;
  config.algorithm = algorithm;
  if (straggler_ms > 0.0) {
    config.pre_reduce_hook = [straggler_ms](int rank) {
      if (rank == 0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(straggler_ms * 1e-3));
      }
    };
  }
  comm::MlComm comm(nranks, config);

  std::vector<std::vector<float>> data(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    runtime::Rng rng(31, static_cast<std::uint64_t>(r));
    auto& v = data[static_cast<std::size_t>(r)];
    v.resize(elems);
    for (auto& x : v) x = rng.uniform();
  }

  runtime::TimeStats stats;
  comm.run([&](comm::RankHandle& rank) {
    auto& mine = data[static_cast<std::size_t>(rank.rank())];
    rank.allreduce_average(mine);  // warm-up
    for (int it = 0; it < iters; ++it) {
      rank.barrier();
      const runtime::Stopwatch watch;
      rank.allreduce_average(mine);
      if (rank.rank() == 0) stats.add(watch.elapsed_seconds());
    }
  });
  return stats.mean();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cf;
  int iters = 5;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--iters=", 8) == 0) {
      iters = std::atoi(argv[i] + 8);
    }
  }
  // 28.15 MB of f32 gradients — the paper's exact model size.
  const std::size_t elems = 7054259;
  const double mbytes = elems * sizeof(float) / 1e6;

  std::printf("=== bench_comm: gradient aggregation (§VI-B) ===\n\n");
  std::printf("--- measured: %.2f MB allreduce-average on thread-ranks "
              "---\n",
              mbytes);
  std::printf("%6s | %16s %14s | %16s %14s\n", "ranks", "red-scat ms",
              "eff GB/s/rank", "central ms", "eff GB/s/rank");
  for (const int ranks : {2, 4, 8}) {
    const double rs = time_allreduce(
        ranks, elems, comm::AllreduceAlgorithm::kReduceScatter, iters);
    const double cr = time_allreduce(
        ranks, elems, comm::AllreduceAlgorithm::kCentralRoot, iters);
    // The paper's bandwidth convention: the reduction moves twice the
    // message length.
    std::printf("%6d | %16.2f %14.2f | %16.2f %14.2f\n", ranks, rs * 1e3,
                2.0 * mbytes / 1e3 / rs, cr * 1e3,
                2.0 * mbytes / 1e3 / cr);
  }
  std::printf("note: on one timesliced core both algorithms serialize to "
              "the same aggregate reduction work, so their walltimes tie "
              "here. The difference is the work *distribution*: "
              "reduce-scatter spreads it evenly (each rank reduces 1/k of "
              "the vector), the central root funnels every byte through "
              "rank 0 — the §II-C gRPC pathology that dominates at real "
              "node counts (see the model below, where bandwidth is a "
              "per-node resource).\n\n");

  std::printf("--- straggler hiding ---\n");
  for (const double straggle : {0.0, 5.0, 20.0}) {
    const double t = time_allreduce(
        4, elems, comm::AllreduceAlgorithm::kReduceScatter, iters,
        straggle);
    std::printf("injected %4.0f ms delay on rank 0 -> allreduce %7.2f "
                "ms\n",
                straggle, t * 1e3);
  }
  std::printf("(the bulk-synchronous reduction absorbs the delay once; "
              "it does not multiply across chunks)\n\n");

  std::printf("--- model: alpha-beta estimates at the paper's anchors "
              "---\n");
  const iosim::StepModelParams params;
  const iosim::StepTimeModel model(
      params,
      iosim::FilesystemModel(iosim::FilesystemSpec::cori_datawarp()));
  for (const int nodes : {128, 1024, 8192}) {
    const double t = model.allreduce_seconds(nodes);
    std::printf("nodes %5d: allreduce %5.1f ms, effective %.2f "
                "GB/s/node\n",
                nodes, t * 1e3, 2.0 * params.gradient_mbytes / 1e3 / t);
  }
  std::printf("paper: 33 ms / 1.7 GB/s/node at 1024; 39 ms / 1.42 "
              "GB/s/node at 8192 (Aries peak ~10 GB/s/node).\n");
  return 0;
}
