// One training sample: a preprocessed sub-volume and its normalized
// target parameters (OmegaM, sigma8, ns), plus the binary
// serialization used inside cfrecord payloads.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace cf::data {

struct Sample {
  /// Network-ready volume, shape {1, D, H, W} (log1p-compressed
  /// counts).
  tensor::Tensor volume;
  /// Targets normalized to [0, 1] over the sampled parameter ranges.
  std::array<float, 3> target{};

  Sample clone() const {
    Sample copy;
    copy.volume = volume.clone();
    copy.target = target;
    return copy;
  }
};

/// Serializes a sample into a record payload (little-endian, self-
/// describing: magic + version + dims + targets + voxels).
std::vector<std::uint8_t> serialize_sample(const Sample& sample);

/// Inverse of serialize_sample; throws std::invalid_argument on
/// malformed payloads.
Sample deserialize_sample(std::span<const std::uint8_t> payload);

}  // namespace cf::data
