// §VI-A reproduction: the I/O bandwidth analysis.
//
//  * Eq. 1: BWmin = b * S / t — the minimum per-node read bandwidth
//    that hides I/O behind compute (paper: 62 MB/s/node), and how many
//    nodes one 2.8 GB/s Lustre OST can feed (paper: 46).
//  * Step-time comparison at 128 nodes: Lustre 179 ms vs DataWarp
//    150 ms (the "16% better" observation).
//  * A measured demonstration of the prefetch pipeline hiding (or
//    failing to hide) injected read latencies — the QueueRunner
//    behaviour the paper relies on, with the lognormal straggler model.
//
//   ./bench_io_model
#include <cstdio>

#include "core/dataset_gen.hpp"
#include "data/pipeline.hpp"
#include "iosim/steptime_model.hpp"
#include "runtime/timer.hpp"

namespace {

void equation_one() {
  using namespace cf::iosim;
  std::printf("--- Eq. 1: minimum read bandwidth to hide I/O ---\n");
  const double bw_min = bw_min_mb_per_s(1.0, 8.0, 0.129);
  std::printf("BWmin(b=1, S=8 MB, t=129 ms) = %.1f MB/s/node   "
              "(paper: 62)\n",
              bw_min);
  std::printf("nodes fed by one 2.8 GB/s OST = %.0f            "
              "(paper: 46)\n",
              nodes_fed_per_ost(2.8, bw_min));
  // The paper's reverse application: 179 ms Lustre step at 128 nodes
  // implies ~90 MB/s delivered per OST over 64 OSTs.
  const double implied_node_bw = bw_min_mb_per_s(1.0, 8.0, 0.179 - 0.027);
  std::printf("implied per-OST delivery at 128 nodes / 64 OSTs = "
              "%.0f MB/s (paper estimates ~90)\n\n",
              implied_node_bw * 128.0 / 64.0);
}

void step_comparison() {
  using namespace cf::iosim;
  std::printf("--- modeled step times: DataWarp vs Lustre ---\n");
  const StepModelParams params;
  const StepTimeModel bb(params,
                         FilesystemModel(FilesystemSpec::cori_datawarp()));
  const StepTimeModel lustre(
      params, FilesystemModel(FilesystemSpec::cori_lustre()));
  std::printf("%6s %14s %14s %9s\n", "nodes", "DataWarp ms", "Lustre ms",
              "gap");
  for (const int nodes : {1, 64, 128, 512, 1024, 8192}) {
    const double b = bb.step_seconds(nodes) * 1e3;
    const double l = lustre.step_seconds(nodes) * 1e3;
    std::printf("%6d %14.1f %14.1f %8.1f%%\n", nodes, b, l,
                (l / b - 1.0) * 100.0);
  }
  std::printf("paper at 128 nodes: 150 ms vs 179 ms (DataWarp 16%% "
              "faster) — I/O already a bottleneck on Lustre there.\n\n");
}

void pipeline_demo() {
  using namespace cf;
  std::printf("--- measured: prefetch pipeline vs injected read latency "
              "---\n");
  runtime::ThreadPool pool;
  core::DatasetGenConfig gen;
  gen.simulations = 4;
  gen.sim.grid = {16, 128.0};
  gen.sim.voxels = 32;
  gen.seed = 17;
  core::GeneratedDataset dataset = core::generate_dataset(gen, pool);
  data::InMemorySource source(std::move(dataset.train));

  const double compute_per_sample = 0.004;  // emulated gradient step
  std::printf("%14s %10s %12s %14s\n", "read delay ms", "io thr",
              "epoch ms", "io wait ms");
  for (const double delay : {0.0, 0.002, 0.008}) {
    for (const std::size_t io_threads : {1u, 4u}) {
      data::PipelineConfig config;
      config.injected_read_delay = delay;
      config.io_threads = io_threads;
      config.queue_capacity = 8;
      data::Pipeline pipeline(source, config);
      std::vector<std::size_t> indices(source.size());
      for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;

      const runtime::Stopwatch watch;
      pipeline.start_epoch(indices);
      data::Sample sample;
      while (pipeline.next(sample)) {
        // "compute": burn the step time.
        const runtime::Stopwatch burn;
        while (burn.elapsed_seconds() < compute_per_sample) {
        }
      }
      std::printf("%14.1f %10zu %12.1f %14.1f\n", delay * 1e3, io_threads,
                  watch.elapsed_seconds() * 1e3,
                  pipeline.wait_time().total() * 1e3);
    }
  }
  std::printf("shape targets: delay <= compute stays hidden (wait ~ "
              "queue pops only); delay > compute surfaces as wait with "
              "1 I/O thread and is re-hidden by 4 threads — the paper's "
              "dedicated-I/O-thread design.\n");
}

}  // namespace

int main() {
  std::printf("=== bench_io_model: §VI-A I/O analysis ===\n\n");
  equation_one();
  step_comparison();
  pipeline_demo();
  return 0;
}
