// Sequential network container — the *model* half of the model/stream
// split (DESIGN.md §2.3). After finalize() a Network is immutable: it
// owns the layers (geometry + weights), the flat contiguous parameter
// arena every weight tensor is rebound onto, and the plans computed by
// the fusion and memory-planner passes. Nothing here changes during a
// step, so any number of execution streams can run against one Network
// concurrently — each stream's mutable state (activations, diffs,
// scratch, gradients, staging) lives in a dnn::ExecContext created via
// make_context().
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dnn/exec_context.hpp"
#include "dnn/layer.hpp"
#include "dnn/precision.hpp"
#include "runtime/aligned_buffer.hpp"

namespace cf::dnn {

class Network {
 public:
  Network() = default;

  /// Adds a layer; returns a reference for further configuration.
  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    add(std::move(layer));
    return ref;
  }

  void add(std::unique_ptr<Layer> layer);

  /// When enabled (before finalize), finalize() runs an MKL-DNN-style
  /// post-op fusion pass: every Conv3d→LeakyRelu / Dense→LeakyRelu pair
  /// is collapsed into the producer layer (forward epilogue + backward
  /// mask) and the standalone activation layer — its two buffers and
  /// its two full-tensor sweeps — disappears. Off by default so
  /// hand-built test networks keep their literal layer list;
  /// build_network() turns it on.
  void set_fuse_eltwise(bool enabled) noexcept { fuse_eltwise_ = enabled; }
  bool fuse_eltwise() const noexcept { return fuse_eltwise_; }
  /// Number of activation layers absorbed by the fusion pass.
  std::size_t fused_pairs() const noexcept { return fused_pairs_; }

  /// When enabled (before finalize), training contexts place their
  /// buffers with the liveness-based memory planner (DESIGN.md §2.2):
  /// during backward only diffs_[i] (read) and diffs_[i-1] (written)
  /// are live, so all difference tensors are rebound onto two
  /// alternating max-sized buffers keyed by layer-index parity, and
  /// every layer's backward scratch is served from one shared arena
  /// sized to the largest request. Placement-only: the planned step is
  /// bitwise identical to the unplanned one. Off by default so
  /// hand-built test networks keep per-layer buffers; build_network()
  /// turns it on.
  void set_memory_planning(bool enabled) noexcept { memplan_ = enabled; }
  bool memory_planning() const noexcept { return memplan_; }

  /// Plans every layer, allocating parameters, building the param
  /// arena and recording the buffer plans contexts are built from.
  /// Must be called exactly once, after all layers are added.
  void finalize(const tensor::Shape& input_shape);
  bool finalized() const noexcept { return finalized_; }

  /// Creates an execution stream over this network. The Network must
  /// outlive (and not move under) every context it handed out.
  ExecContext make_context(ExecMode mode);

  /// Reduced-precision variant (DESIGN.md §2.5): the context runs the
  /// forward pass in `precision`. Only inference contexts accept a
  /// non-fp32 precision, and the network must have been prepared for it
  /// (prepare_inference_precision) — both violations throw.
  ExecContext make_context(ExecMode mode, Precision precision);
  ExecContext make_context(ExecMode mode, Precision precision) const;

  /// Cost-model variants (DESIGN.md §2.6): the returned context has the
  /// plan's per-layer grains applied (ExecContext::apply_intraop) so
  /// its kernels partition for plan.threads_per_stream threads. The
  /// plan is advisory and bitwise-neutral — callers still own the
  /// ThreadPool sizing.
  ExecContext make_context(ExecMode mode, Precision precision,
                           const IntraopPlan& plan);
  ExecContext make_context(ExecMode mode, Precision precision,
                           const IntraopPlan& plan) const;

  /// Const overload for inference streams. A finalized Network is
  /// immutable during execution and an inference context only ever
  /// reads it (its mutating entry points — backward(), params(),
  /// zero_grads() — throw by mode), so handing contexts out from a
  /// `shared_ptr<const Network>` (the serving layer's ownership model,
  /// SERVING.md) is sound. Training contexts mutate weights through
  /// params() and stay gated behind the non-const overload; requesting
  /// kTraining here throws.
  ExecContext make_context(ExecMode mode) const;

  std::size_t layer_count() const noexcept { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }
  const Layer& layer(std::size_t i) const { return *layers_[i]; }

  const tensor::Shape& input_shape() const noexcept { return input_shape_; }
  const tensor::Shape& output_shape() const noexcept {
    return output_shape_;
  }

  std::int64_t param_count();
  std::size_t param_bytes() { return param_count() * sizeof(float); }

  // Flat arena view (valid after finalize). Layout is layer order,
  // parameter-tensor order — identical to the copy_params_to layout.
  std::span<float> param_arena() noexcept {
    return {param_arena_.data(), param_arena_.size()};
  }
  /// Layer i's slice of the arena (empty for parameterless layers).
  std::span<float> param_segment(std::size_t i) {
    return param_arena().subspan(segment_offsets_[i], segment_sizes_[i]);
  }
  std::size_t segment_offset(std::size_t i) const {
    return segment_offsets_[i];
  }
  std::size_t segment_size(std::size_t i) const {
    return segment_sizes_[i];
  }

  // --- Reduced-precision inference arenas (DESIGN.md §2.5) ------------

  /// Packs the side arenas for `precision` from the *current* fp32
  /// weights: a bf16 image of the whole param arena (same segment
  /// offsets) for kBf16, or per-layer int8 quants + per-output-channel
  /// scales for kInt8Weights. The fp32 arena is never modified. Must
  /// run after finalize() and after the weights hold their real values
  /// (init or checkpoint load — plan-time contents are zeros);
  /// re-callable to re-pack after a weight reload. kFp32 is a no-op.
  /// Throws if a layer declines the precision (supports_precision).
  void prepare_inference_precision(Precision precision);

  /// Whether contexts in `precision` can be created right now. kFp32 is
  /// always ready; bf16/int8w require a prepare_inference_precision
  /// call since the last finalize.
  bool precision_prepared(Precision precision) const noexcept {
    switch (precision) {
      case Precision::kBf16:
        return bf16_prepared_;
      case Precision::kInt8Weights:
        return int8_prepared_;
      case Precision::kFp32:
      default:
        return true;
    }
  }

  /// Layer i's slice of the bf16 param-arena image (same offsets as
  /// param_segment; empty for parameterless layers).
  std::span<const bf16_t> bf16_param_segment(std::size_t i) const {
    return {bf16_arena_.data() + segment_offsets_[i], segment_sizes_[i]};
  }
  /// Layer i's int8 weight quants / per-output-channel scales (empty
  /// for layers without quantizable weights).
  std::span<const std::int8_t> int8_weight_segment(std::size_t i) const {
    return {int8_arena_.data() + int8_weight_offsets_[i],
            int8_weight_sizes_[i]};
  }
  std::span<const float> int8_scale_segment(std::size_t i) const {
    return {int8_scales_.data() + int8_scale_offsets_[i],
            int8_scale_sizes_[i]};
  }

  /// Total per-sample flops; `skip_first_bwd_data` drops the unneeded
  /// first-layer data gradient (the default, matching the real
  /// workload).
  FlopCounts flops(bool skip_first_bwd_data = true) const;

  // Flat vector interface (checkpoints, tests). Order is layer order,
  // value tensor order — a straight copy of the arena.
  void copy_params_to(std::span<float> out);
  void set_params_from(std::span<const float> in);

  // Planned memory accounting for a *training* context (valid after
  // finalize; nothing is allocated here — contexts allocate).
  // Activations always keep per-layer storage; diff/scratch bytes
  // reflect the planner when it is on and the per-layer totals when it
  // is off.
  std::size_t activation_bytes() const noexcept;
  std::size_t diff_arena_bytes() const noexcept;
  std::size_t scratch_bytes() const noexcept;
  std::size_t peak_tensor_bytes() const noexcept {
    return activation_bytes() + diff_arena_bytes() + scratch_bytes();
  }

  /// The buffer plan finalize() records for make_context (sizes in
  /// floats).
  struct MemPlan {
    std::size_t act_sum = 0;        // per-layer activation total
    std::size_t act_even = 0;       // parity maxima over activations
    std::size_t act_odd = 0;        //   (inference ping-pong)
    std::size_t diff_sum = 0;       // per-layer diff total (unplanned)
    std::size_t diff_even = 0;      // parity maxima over diffs
    std::size_t diff_odd = 0;       //   (planned ping-pong)
    std::size_t scratch_max = 0;    // shared scratch (planned)
    std::size_t scratch_sum = 0;    // per-layer scratch (unplanned)
    std::size_t workspace_sum = 0;  // per-layer staging (training)
    std::size_t workspace_max = 0;  // shared staging (inference)
  };
  const MemPlan& mem_plan() const noexcept { return mem_plan_; }

 private:
  void build_arena();
  void fuse_eltwise_pass();

  std::vector<std::unique_ptr<Layer>> layers_;
  // Contiguous parameter storage; layer weight tensors are views into
  // this after finalize() (see build_arena).
  runtime::AlignedBuffer<float> param_arena_;
  std::vector<std::size_t> segment_offsets_;  // per layer, in floats
  std::vector<std::size_t> segment_sizes_;
  // Reduced-precision side arenas (prepare_inference_precision). The
  // bf16 arena mirrors param_arena_ element-for-element; the int8
  // arena/scales use their own per-layer offset tables.
  runtime::AlignedBuffer<bf16_t> bf16_arena_;
  runtime::AlignedBuffer<std::int8_t> int8_arena_;
  runtime::AlignedBuffer<float> int8_scales_;
  std::vector<std::size_t> int8_weight_offsets_;
  std::vector<std::size_t> int8_weight_sizes_;
  std::vector<std::size_t> int8_scale_offsets_;
  std::vector<std::size_t> int8_scale_sizes_;
  bool bf16_prepared_ = false;
  bool int8_prepared_ = false;
  MemPlan mem_plan_;
  tensor::Shape input_shape_;
  tensor::Shape output_shape_;
  bool finalized_ = false;
  bool fuse_eltwise_ = false;
  bool memplan_ = false;
  std::size_t fused_pairs_ = 0;
};

}  // namespace cf::dnn
