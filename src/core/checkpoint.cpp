#include "core/checkpoint.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "data/crc32.hpp"

namespace cf::core {

namespace {

constexpr std::uint32_t kMagic = 0x43464B50u;  // "CFKP"
constexpr std::uint32_t kVersion = 1;

}  // namespace

void save_checkpoint(const std::string& path, const std::string& topology,
                     const dnn::Network& network) {
  const std::size_t count = static_cast<std::size_t>(network.param_count());
  std::vector<float> params(count);
  network.copy_params_to(params);

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("save_checkpoint: cannot open " + path);

  const std::uint32_t name_len = static_cast<std::uint32_t>(topology.size());
  const std::uint64_t param_count = count;
  out.write(reinterpret_cast<const char*>(&kMagic), 4);
  out.write(reinterpret_cast<const char*>(&kVersion), 4);
  out.write(reinterpret_cast<const char*>(&name_len), 4);
  out.write(topology.data(), name_len);
  out.write(reinterpret_cast<const char*>(&param_count), 8);
  out.write(reinterpret_cast<const char*>(params.data()),
            static_cast<std::streamsize>(count * sizeof(float)));
  const std::uint32_t crc = data::crc32c(
      {reinterpret_cast<const std::uint8_t*>(params.data()),
       count * sizeof(float)});
  out.write(reinterpret_cast<const char*>(&crc), 4);
  if (!out) throw std::runtime_error("save_checkpoint: write failed");
}

void load_checkpoint(const std::string& path,
                     const std::string& expected_topology,
                     dnn::Network& network) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_checkpoint: cannot open " + path);

  std::uint32_t magic = 0, version = 0, name_len = 0;
  in.read(reinterpret_cast<char*>(&magic), 4);
  in.read(reinterpret_cast<char*>(&version), 4);
  in.read(reinterpret_cast<char*>(&name_len), 4);
  if (!in || magic != kMagic || version != kVersion || name_len > 4096) {
    throw std::runtime_error("load_checkpoint: bad header in " + path);
  }
  std::string topology(name_len, '\0');
  in.read(topology.data(), name_len);
  if (topology != expected_topology) {
    throw std::runtime_error("load_checkpoint: topology mismatch: file has '" +
                             topology + "', expected '" + expected_topology +
                             "'");
  }
  std::uint64_t param_count = 0;
  in.read(reinterpret_cast<char*>(&param_count), 8);
  if (param_count != static_cast<std::uint64_t>(network.param_count())) {
    throw std::runtime_error("load_checkpoint: parameter count mismatch");
  }
  std::vector<float> params(param_count);
  in.read(reinterpret_cast<char*>(params.data()),
          static_cast<std::streamsize>(param_count * sizeof(float)));
  std::uint32_t stored_crc = 0;
  in.read(reinterpret_cast<char*>(&stored_crc), 4);
  if (!in) throw std::runtime_error("load_checkpoint: truncated " + path);
  const std::uint32_t crc = data::crc32c(
      {reinterpret_cast<const std::uint8_t*>(params.data()),
       params.size() * sizeof(float)});
  if (crc != stored_crc) {
    throw std::runtime_error("load_checkpoint: checksum mismatch in " +
                             path);
  }
  network.set_params_from(params);
}

}  // namespace cf::core
