// Zero-copy data path benchmark (DESIGN.md §2.7): CRC32-C kernel
// throughput and end-to-end shard→batch samples/s, with the ablations
// that justify each piece.
//
// Three measurements:
//
//  * CRC32-C kernels — GB/s of the table / slice-by-8 / SSE4.2
//    hardware implementations over one large buffer, after verifying
//    all available kernels agree bitwise on random and adversarial
//    (every short length, every misalignment) inputs. The hardware
//    kernel's target is >= 4x the table baseline. The selected
//    implementation's throughput is published on the
//    data/pipeline/crc_gbps gauge (OBSERVABILITY.md).
//  * shard→batch — samples/s draining a Pipeline over cfrecord shards
//    written to a temp directory, one warmup epoch then timed epochs,
//    for the full zero-copy configuration (mmap + pooled buffers +
//    dispatched CRC) and each ablation: --no-mmap (stream reads),
//    --no-pool (allocate per sample), --crc=table, and the seed path
//    (all three off — the pre-§2.7 configuration). Target: the
//    zero-copy path >= 1.25x the seed path. Every configuration's
//    delivered sample stream is hashed and must match the seed path's
//    bytes exactly — the byte-identity invariant the tests pin.
//  * steady-state allocations — the data/pipeline/pool_allocs gauge
//    must not move across the timed epochs of a pooled run (after the
//    warmup epoch every buffer is recycled).
//
//   ./bench_pipeline [--dhw=16] [--sims=12] [--io-threads=2]
//       [--epochs=4] [--queue-capacity=8] [--no-mmap] [--no-pool]
//       [--crc=auto|hw|slice8|table] [--smoke]
//       [--json=BENCH_pipeline.json]
//
// --no-mmap / --no-pool / --crc pin the *main* configuration (the
// ablation grid is always measured); --smoke shrinks everything for
// the sanitizer legs.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/dataset_gen.hpp"
#include "data/crc32.hpp"
#include "data/dataset.hpp"
#include "data/pipeline.hpp"
#include "obs/jsonl.hpp"
#include "obs/metrics.hpp"
#include "runtime/rng.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/timer.hpp"

#ifndef COSMOFLOW_GIT_SHA
#define COSMOFLOW_GIT_SHA "unknown"
#endif

namespace {

using namespace cf;

// FNV-1a over the delivered sample stream — order-sensitive, so it
// certifies both bytes and delivery order.
struct StreamHash {
  std::uint64_t h = 1469598103934665603ull;
  void update(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
  }
};

struct CrcResult {
  data::CrcImpl impl;
  double gbps = 0.0;
};

// One pipeline configuration's measurement.
struct RunResult {
  std::string name;
  bool mmap = false;
  bool pool = false;
  data::CrcImpl crc = data::CrcImpl::kTable;
  double samples_per_s = 0.0;
  double gbs = 0.0;
  double allocs_delta = 0.0;  // pool_allocs movement over timed epochs
  std::uint64_t stream_hash = 0;
};

std::vector<CrcResult> crc_section(bool smoke, data::CrcImpl selected) {
  const std::size_t buf_size = smoke ? (4u << 20) : (64u << 20);
  std::vector<std::uint8_t> buf(buf_size);
  runtime::Rng rng(12345);
  for (auto& b : buf) {
    b = static_cast<std::uint8_t>(rng.uniform_index(256));
  }

  std::vector<data::CrcImpl> impls{data::CrcImpl::kTable,
                                   data::CrcImpl::kSlice8};
  if (data::crc32c_hardware_available()) {
    impls.push_back(data::CrcImpl::kHardware);
  }

  // Agreement first: random buffer, then every length 0..64 at every
  // offset 0..8 (the tails and misalignments where kernels diverge if
  // they are going to).
  const std::uint32_t reference =
      data::crc32c_with(data::CrcImpl::kTable, buf);
  for (const data::CrcImpl impl : impls) {
    if (data::crc32c_with(impl, buf) != reference) {
      throw std::runtime_error(std::string("crc32c kernel ") +
                               data::to_string(impl) +
                               " disagrees with the table reference");
    }
    for (std::size_t off = 0; off <= 8; ++off) {
      for (std::size_t len = 0; len <= 64; ++len) {
        const std::span<const std::uint8_t> window{buf.data() + off, len};
        if (data::crc32c_with(impl, window) !=
            data::crc32c_with(data::CrcImpl::kTable, window)) {
          throw std::runtime_error(
              std::string("crc32c kernel ") + data::to_string(impl) +
              " disagrees on a short/misaligned input");
        }
      }
    }
  }
  std::printf("all CRC32-C kernels agree bitwise (random %zu MB + every "
              "length<=64 at every offset<=8)\n\n",
              buf_size >> 20);

  std::printf("%-8s %12s\n", "kernel", "GB/s");
  std::vector<CrcResult> results;
  const int reps = smoke ? 2 : 4;
  volatile std::uint32_t sink = 0;
  for (const data::CrcImpl impl : impls) {
    const runtime::Stopwatch watch;
    for (int r = 0; r < reps; ++r) {
      sink = data::crc32c_with(impl, buf);
    }
    const double seconds = watch.elapsed_seconds();
    CrcResult res;
    res.impl = impl;
    res.gbps = static_cast<double>(buf_size) * reps / seconds / 1e9;
    std::printf("%-8s %12.2f\n", data::to_string(impl), res.gbps);
    results.push_back(res);
  }
  (void)sink;

  for (const CrcResult& res : results) {
    if (res.impl == selected) {
      obs::Registry::global()
          .gauge("data/pipeline/crc_gbps")
          .set(res.gbps);
    }
  }
  return results;
}

RunResult run_pipeline(const std::string& name,
                       const std::vector<std::string>& shards, bool mmap,
                       bool pool, data::CrcImpl crc,
                       std::size_t io_threads, std::size_t queue_capacity,
                       int epochs) {
  data::set_crc32c_impl(crc);
  data::CfrecordSource source(
      shards, mmap ? data::ReaderMode::kAuto : data::ReaderMode::kStream);

  data::PipelineConfig config;
  config.io_threads = io_threads;
  config.queue_capacity = queue_capacity;
  config.pool = pool;
  config.metric_prefix = "data/pipeline/bench";
  data::Pipeline pipeline(source, config);

  std::vector<std::size_t> indices(source.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;

  auto& reg = obs::Registry::global();
  RunResult result;
  result.name = name;
  result.mmap = source.mapped();
  result.pool = pool;
  result.crc = crc;

  data::Sample sample;
  StreamHash hash;
  std::size_t total = 0;
  std::uint64_t bytes = 0;

  // Warmup epoch: fills the pool (and the page cache) and feeds the
  // identity hash — the bytes delivered while warming up must match
  // the steady state's too.
  pipeline.start_epoch(indices);
  while (pipeline.next(sample)) {
    hash.update(sample.volume.data(), sample.volume.size() * sizeof(float));
    hash.update(sample.target.data(), sizeof(sample.target));
  }

  const double allocs_before =
      reg.gauge("data/pipeline/pool_allocs").value();
  const runtime::Stopwatch watch;
  for (int e = 0; e < epochs; ++e) {
    pipeline.start_epoch(indices);
    while (pipeline.next(sample)) {
      hash.update(sample.volume.data(),
                  sample.volume.size() * sizeof(float));
      hash.update(sample.target.data(), sizeof(sample.target));
      ++total;
      bytes += sample.volume.size() * sizeof(float);
    }
  }
  const double seconds = watch.elapsed_seconds();
  result.allocs_delta =
      reg.gauge("data/pipeline/pool_allocs").value() - allocs_before;
  result.samples_per_s = static_cast<double>(total) / seconds;
  result.gbs = static_cast<double>(bytes) / seconds / 1e9;
  result.stream_hash = hash.h;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t dhw = 16;
  std::size_t sims = 12;
  std::size_t io_threads = 2;
  std::size_t queue_capacity = 8;
  int epochs = 4;
  bool main_mmap = true;
  bool main_pool = true;
  std::string crc_flag = "auto";
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--dhw=", 6) == 0) dhw = std::atoll(argv[i] + 6);
    if (std::strncmp(argv[i], "--sims=", 7) == 0) {
      sims = static_cast<std::size_t>(std::atoll(argv[i] + 7));
    }
    if (std::strncmp(argv[i], "--io-threads=", 13) == 0) {
      io_threads = static_cast<std::size_t>(std::atoi(argv[i] + 13));
    }
    if (std::strncmp(argv[i], "--queue-capacity=", 17) == 0) {
      queue_capacity = static_cast<std::size_t>(std::atoi(argv[i] + 17));
    }
    if (std::strncmp(argv[i], "--epochs=", 9) == 0) {
      epochs = std::atoi(argv[i] + 9);
    }
    if (std::strcmp(argv[i], "--no-mmap") == 0) main_mmap = false;
    if (std::strcmp(argv[i], "--no-pool") == 0) main_pool = false;
    if (std::strncmp(argv[i], "--crc=", 6) == 0) crc_flag = argv[i] + 6;
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }
  if (smoke) {
    dhw = 8;
    sims = 4;
    epochs = 2;
  }
  if (epochs < 1) epochs = 1;

  data::CrcImpl main_crc = data::crc32c_impl();  // the auto dispatch
  if (crc_flag == "hw") {
    main_crc = data::CrcImpl::kHardware;
  } else if (crc_flag == "slice8") {
    main_crc = data::CrcImpl::kSlice8;
  } else if (crc_flag == "table") {
    main_crc = data::CrcImpl::kTable;
  } else if (crc_flag != "auto") {
    std::printf("unknown --crc=%s (auto|hw|slice8|table)\n",
                crc_flag.c_str());
    return 1;
  }
  if (main_crc == data::CrcImpl::kHardware &&
      !data::crc32c_hardware_available()) {
    std::printf("--crc=hw requested but SSE4.2 is unavailable\n");
    return 1;
  }

  std::printf("=== bench_pipeline: zero-copy data path (DESIGN.md §2.7) "
              "===\n");
  std::printf("(sub-volume %lld^3, %zu simulations, %zu io thread(s), "
              "queue %zu, %d timed epoch(s), main config: %s + %s + "
              "crc=%s)\n\n",
              static_cast<long long>(dhw), sims, io_threads,
              queue_capacity, epochs, main_mmap ? "mmap" : "stream",
              main_pool ? "pool" : "no-pool", data::to_string(main_crc));

  std::printf("--- CRC32-C kernels ---\n");
  const std::vector<CrcResult> crc_results =
      crc_section(smoke, main_crc);
  double table_gbps = 0.0, hw_gbps = 0.0, slice8_gbps = 0.0;
  for (const CrcResult& r : crc_results) {
    if (r.impl == data::CrcImpl::kTable) table_gbps = r.gbps;
    if (r.impl == data::CrcImpl::kSlice8) slice8_gbps = r.gbps;
    if (r.impl == data::CrcImpl::kHardware) hw_gbps = r.gbps;
  }
  if (hw_gbps > 0.0) {
    std::printf("hardware vs table: %.1fx (target >= 4x)\n",
                hw_gbps / table_gbps);
  }
  std::printf("\n");

  // Dataset: generate sub-volumes and shard them to a temp directory.
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("bench_pipeline_" + std::to_string(::getpid()));
  std::vector<std::string> shards;
  std::size_t n_samples = 0;
  {
    runtime::ThreadPool gen_pool;
    core::DatasetGenConfig gen;
    gen.simulations = sims;
    gen.sim.grid = {16, 128.0};
    gen.sim.voxels = static_cast<std::size_t>(2 * dhw);
    gen.seed = 29;
    core::GeneratedDataset dataset = core::generate_dataset(gen, gen_pool);
    n_samples = dataset.train.size();
    shards = data::write_shards(dataset.train, dir.string(), "bench",
                                /*samples_per_shard=*/16,
                                /*shuffle_seed=*/7);
  }
  std::printf("--- shard→batch: %zu samples across %zu shard(s) ---\n",
              n_samples, shards.size());

  // The grid: the main configuration plus each single ablation plus
  // the all-off seed path.
  std::vector<RunResult> runs;
  runs.push_back(run_pipeline("zero-copy", shards, main_mmap, main_pool,
                              main_crc, io_threads, queue_capacity,
                              epochs));
  runs.push_back(run_pipeline("no-mmap", shards, false, main_pool,
                              main_crc, io_threads, queue_capacity,
                              epochs));
  runs.push_back(run_pipeline("no-pool", shards, main_mmap, false,
                              main_crc, io_threads, queue_capacity,
                              epochs));
  runs.push_back(run_pipeline("crc-table", shards, main_mmap, main_pool,
                              data::CrcImpl::kTable, io_threads,
                              queue_capacity, epochs));
  runs.push_back(run_pipeline("seed-path", shards, false, false,
                              data::CrcImpl::kTable, io_threads,
                              queue_capacity, epochs));
  data::set_crc32c_impl(main_crc);

  std::printf("%-10s %6s %6s %-7s %14s %8s %12s\n", "config", "mmap",
              "pool", "crc", "samples/s", "GB/s", "pool allocs");
  for (const RunResult& r : runs) {
    std::printf("%-10s %6s %6s %-7s %14.0f %8.2f %12.0f\n",
                r.name.c_str(), r.mmap ? "yes" : "no",
                r.pool ? "yes" : "no", data::to_string(r.crc),
                r.samples_per_s, r.gbs, r.allocs_delta);
  }

  // Byte-identity across every configuration — the invariant the
  // tests pin, re-checked on the bench's own workload.
  bool identity_ok = true;
  for (const RunResult& r : runs) {
    if (r.stream_hash != runs.front().stream_hash) identity_ok = false;
  }
  if (!identity_ok) {
    std::filesystem::remove_all(dir);
    throw std::runtime_error(
        "delivered sample streams diverged across configurations");
  }
  std::printf("\nall configurations delivered byte-identical sample "
              "streams (hash %016llx)\n",
              static_cast<unsigned long long>(runs.front().stream_hash));

  const double speedup = runs.front().samples_per_s /
                         runs.back().samples_per_s;
  std::printf("zero-copy vs seed path: %.2fx (target >= 1.25x)\n",
              speedup);
  // Steady state: allocations are bounded by the peak number of
  // buffers in flight (ring + one per producer + one at the consumer),
  // never by the sample count. A delta past that bound means recycling
  // is broken.
  const double alloc_bound =
      static_cast<double>(queue_capacity + io_threads + 1);
  if (main_pool && runs.front().allocs_delta > alloc_bound) {
    std::printf("WARNING: pool_allocs moved by %.0f during the timed "
                "epochs of the pooled run (bound: %.0f) — buffer "
                "recycling is not reaching steady state\n",
                runs.front().allocs_delta, alloc_bound);
  }

  if (!json_path.empty()) {
    obs::JsonObject rec;
    rec.field("bench", "pipeline")
        .field("commit", COSMOFLOW_GIT_SHA)
        .field("dhw", static_cast<std::int64_t>(dhw))
        .field("samples", static_cast<std::int64_t>(n_samples))
        .field("shards", static_cast<std::int64_t>(shards.size()))
        .field("io_threads", static_cast<std::int64_t>(io_threads))
        .field("queue_capacity",
               static_cast<std::int64_t>(queue_capacity))
        .field("epochs", static_cast<std::int64_t>(epochs))
        .field("crc", data::to_string(main_crc))
        .field("crc_table_gbps", table_gbps)
        .field("crc_slice8_gbps", slice8_gbps)
        .field("crc_hw_gbps", hw_gbps)
        .field("crc_hw_vs_table",
               hw_gbps > 0.0 ? hw_gbps / table_gbps : 0.0)
        .field("identity_ok", identity_ok)
        .field("speedup_vs_seed", speedup);
    for (const RunResult& r : runs) {
      std::string base = r.name;
      for (char& ch : base) {
        if (ch == '-') ch = '_';
      }
      rec.field(base + "_samples_per_s", r.samples_per_s)
          .field(base + "_gbs", r.gbs)
          .field(base + "_pool_allocs_delta", r.allocs_delta);
    }
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::printf("FAILED to write json to %s\n", json_path.c_str());
      std::filesystem::remove_all(dir);
      return 1;
    }
    const std::string line = rec.str() + "\n";
    std::fwrite(line.data(), 1, line.size(), out);
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }

  std::filesystem::remove_all(dir);
  std::printf(
      "\nshape targets: hardware CRC >= 4x table; zero-copy shard→batch "
      ">= 1.25x the seed path; the pooled runs' pool_allocs stay within "
      "the in-flight bound across the timed epochs (no per-sample "
      "allocations); every configuration's sample stream hashes "
      "identically.\n");
  return 0;
}
