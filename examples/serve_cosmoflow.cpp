// Serving: stand up the micro-batching inference service (SERVING.md)
// over one shared network, submit a handful of concurrent requests,
// and read back predictions plus the serve/* metrics a production
// exporter would scrape.
//
// Uses a freshly initialized network by default so it runs with zero
// setup; pass --checkpoint=PATH (from train_cosmoflow) to serve
// trained weights.
//
//   ./examples/serve_cosmoflow [--dhw=16] [--workers=2]
//       [--max-batch=4] [--max-delay-us=2000] [--requests=8]
//       [--precision=fp32|bf16|int8w] [--checkpoint=PATH]
#include <cstdio>
#include <future>
#include <memory>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/topology.hpp"
#include "cosmo/simulation.hpp"
#include "dnn/network.hpp"
#include "examples/example_utils.hpp"
#include "obs/metrics.hpp"
#include "runtime/rng.hpp"
#include "serve/server.hpp"
#include "tensor/tensor_ops.hpp"

int main(int argc, char** argv) {
  using namespace cf;
  const examples::Flags flags(
      argc, argv,
      "usage: serve_cosmoflow [--dhw=16] [--workers=2] [--max-batch=4] "
      "[--max-delay-us=2000] [--requests=8] "
      "[--precision=fp32|bf16|int8w] [--checkpoint=PATH]");

  const std::int64_t dhw = flags.get_int("dhw", 16);
  const std::string ckpt = flags.get_string("checkpoint", "");
  const std::size_t requests =
      static_cast<std::size_t>(flags.get_int("requests", 8));

  // The model is built (or loaded) once and then shared read-only by
  // every worker stream — a const handle is all the server needs.
  // Reduced-precision serving packs the bf16/int8 side arenas here,
  // after the checkpoint load, so the quantized weights reflect the
  // weights actually served (DESIGN.md §2.5).
  const dnn::Precision precision =
      dnn::precision_from_string(flags.get_string("precision", "fp32"));
  const core::TopologyConfig topology = core::topology_for_input(dhw);
  auto net = std::make_shared<dnn::Network>(core::build_network(topology, 7));
  if (!ckpt.empty()) {
    core::load_checkpoint(ckpt, topology.name, *net);
    std::printf("loaded %s from %s\n", topology.name.c_str(), ckpt.c_str());
  }
  if (precision != dnn::Precision::kFp32) {
    net->prepare_inference_precision(precision);
  }
  const std::shared_ptr<const dnn::Network> network = net;

  serve::ServerConfig config;
  config.workers = static_cast<std::size_t>(flags.get_int("workers", 2));
  config.max_batch =
      static_cast<std::size_t>(flags.get_int("max-batch", 4));
  config.max_delay_seconds =
      flags.get_double("max-delay-us", 2000.0) * 1e-6;
  config.precision = precision;
  serve::Server server(network, config);
  std::printf("serving %s: %zu workers, max batch %zu, max delay "
              "%.0f us, queue %zu, %s inference\n\n",
              topology.name.c_str(), config.workers, config.max_batch,
              config.max_delay_seconds * 1e6, config.queue_capacity,
              dnn::to_string(config.precision).data());

  // Fire all requests before reading any result — submitted this
  // close together they coalesce into micro-batches.
  std::vector<std::future<serve::InferenceResult>> futures;
  runtime::Rng rng(101);
  for (std::size_t i = 0; i < requests; ++i) {
    tensor::Tensor input(network->input_shape());
    tensor::fill_normal(input, rng, 0.0f, 1.0f);
    std::future<serve::InferenceResult> future;
    const serve::SubmitStatus status =
        server.submit(std::move(input), &future);
    if (status != serve::SubmitStatus::kAccepted) {
      std::printf("request %zu shed: %s\n", i,
                  std::string(serve::to_string(status)).c_str());
      continue;
    }
    futures.push_back(std::move(future));
  }

  std::printf("%4s | %7s %7s %7s | %6s %6s | %12s\n", "req", "OmegaM",
              "sigma8", "ns", "batch", "worker", "latency");
  for (auto& future : futures) {
    const serve::InferenceResult r = future.get();
    const cosmo::CosmoParams params = cosmo::denormalize_params(
        {r.output[0], r.output[1], r.output[2]});
    std::printf("%4llu | %7.4f %7.4f %7.4f | %6zu %6zu | %9.2f ms\n",
                static_cast<unsigned long long>(r.request_id),
                params.omega_m, params.sigma8, params.ns, r.batch_size,
                r.worker, r.total_seconds * 1e3);
  }
  server.shutdown();

  // The metrics the service exported while it ran (OBSERVABILITY.md).
  auto& reg = obs::Registry::global();
  const auto latency = reg.histogram("serve/latency").snapshot();
  std::printf("\nserve/accepted %lld, serve/completed %lld, "
              "serve/batches %lld, mean fill %.2f, latency p50 %.2f ms "
              "p99 %.2f ms\n",
              static_cast<long long>(reg.counter("serve/accepted").value()),
              static_cast<long long>(
                  reg.counter("serve/completed").value()),
              static_cast<long long>(reg.counter("serve/batches").value()),
              reg.stat("serve/batch_fill").snapshot().mean(),
              latency.percentile(0.5) * 1e3,
              latency.percentile(0.99) * 1e3);
  return 0;
}
