#include "tensor/layout.hpp"

#include <stdexcept>

namespace cf::tensor {

std::int64_t blocked_channel_count(std::int64_t channels) {
  return (channels + kChannelBlock - 1) / kChannelBlock;
}

namespace {

void require_rank(const Tensor& t, std::size_t rank, const char* what) {
  if (t.shape().rank() != rank) {
    throw std::invalid_argument(std::string(what) + ": expected rank " +
                                std::to_string(rank) + ", got shape " +
                                t.shape().to_string());
  }
}

}  // namespace

Tensor to_blocked_activation(const Tensor& plain) {
  require_rank(plain, 4, "to_blocked_activation");
  const std::int64_t c = plain.shape()[0];
  const std::int64_t d = plain.shape()[1];
  const std::int64_t h = plain.shape()[2];
  const std::int64_t w = plain.shape()[3];
  const std::int64_t cb = blocked_channel_count(c);
  Tensor blocked(Shape{cb, d, h, w, kChannelBlock});

  const std::int64_t spatial = d * h * w;
  const float* src = plain.data();
  float* dst = blocked.data();
  for (std::int64_t ch = 0; ch < c; ++ch) {
    const std::int64_t block = ch / kChannelBlock;
    const std::int64_t lane = ch % kChannelBlock;
    const float* src_ch = src + ch * spatial;
    float* dst_block = dst + block * spatial * kChannelBlock + lane;
    for (std::int64_t v = 0; v < spatial; ++v) {
      dst_block[v * kChannelBlock] = src_ch[v];
    }
  }
  return blocked;
}

Tensor from_blocked_activation(const Tensor& blocked, std::int64_t channels) {
  require_rank(blocked, 5, "from_blocked_activation");
  if (blocked.shape()[4] != kChannelBlock) {
    throw std::invalid_argument(
        "from_blocked_activation: innermost dim must be 16");
  }
  if (blocked_channel_count(channels) != blocked.shape()[0]) {
    throw std::invalid_argument(
        "from_blocked_activation: channel count inconsistent with blocks");
  }
  const std::int64_t d = blocked.shape()[1];
  const std::int64_t h = blocked.shape()[2];
  const std::int64_t w = blocked.shape()[3];
  const std::int64_t spatial = d * h * w;
  Tensor plain(Shape{channels, d, h, w});

  const float* src = blocked.data();
  float* dst = plain.data();
  for (std::int64_t ch = 0; ch < channels; ++ch) {
    const std::int64_t block = ch / kChannelBlock;
    const std::int64_t lane = ch % kChannelBlock;
    const float* src_block = src + block * spatial * kChannelBlock + lane;
    float* dst_ch = dst + ch * spatial;
    for (std::int64_t v = 0; v < spatial; ++v) {
      dst_ch[v] = src_block[v * kChannelBlock];
    }
  }
  return plain;
}

Tensor to_blocked_weights(const Tensor& plain) {
  require_rank(plain, 5, "to_blocked_weights");
  const std::int64_t oc = plain.shape()[0];
  const std::int64_t ic = plain.shape()[1];
  const std::int64_t kd = plain.shape()[2];
  const std::int64_t kh = plain.shape()[3];
  const std::int64_t kw = plain.shape()[4];
  const std::int64_t ocb = blocked_channel_count(oc);
  const std::int64_t icb = blocked_channel_count(ic);
  Tensor blocked(
      Shape{ocb, icb, kd, kh, kw, kChannelBlock, kChannelBlock});

  const std::int64_t kvol = kd * kh * kw;
  for (std::int64_t o = 0; o < oc; ++o) {
    for (std::int64_t i = 0; i < ic; ++i) {
      const float* src = plain.data() + (o * ic + i) * kvol;
      float* dst = blocked.data() +
                   (((o / kChannelBlock) * icb + i / kChannelBlock) * kvol) *
                       kChannelBlock * kChannelBlock +
                   (i % kChannelBlock) * kChannelBlock + o % kChannelBlock;
      for (std::int64_t k = 0; k < kvol; ++k) {
        dst[k * kChannelBlock * kChannelBlock] = src[k];
      }
    }
  }
  return blocked;
}

Tensor from_blocked_weights(const Tensor& blocked, std::int64_t oc,
                            std::int64_t ic) {
  require_rank(blocked, 7, "from_blocked_weights");
  if (blocked.shape()[0] != blocked_channel_count(oc) ||
      blocked.shape()[1] != blocked_channel_count(ic)) {
    throw std::invalid_argument(
        "from_blocked_weights: channel counts inconsistent with blocks");
  }
  const std::int64_t icb = blocked.shape()[1];
  const std::int64_t kd = blocked.shape()[2];
  const std::int64_t kh = blocked.shape()[3];
  const std::int64_t kw = blocked.shape()[4];
  const std::int64_t kvol = kd * kh * kw;
  Tensor plain(Shape{oc, ic, kd, kh, kw});

  for (std::int64_t o = 0; o < oc; ++o) {
    for (std::int64_t i = 0; i < ic; ++i) {
      float* dst = plain.data() + (o * ic + i) * kvol;
      const float* src =
          blocked.data() +
          (((o / kChannelBlock) * icb + i / kChannelBlock) * kvol) *
              kChannelBlock * kChannelBlock +
          (i % kChannelBlock) * kChannelBlock + o % kChannelBlock;
      for (std::int64_t k = 0; k < kvol; ++k) {
        dst[k] = src[k * kChannelBlock * kChannelBlock];
      }
    }
  }
  return plain;
}

Tensor to_blocked_weights_small_ic(const Tensor& plain) {
  require_rank(plain, 5, "to_blocked_weights_small_ic");
  const std::int64_t oc = plain.shape()[0];
  const std::int64_t ic = plain.shape()[1];
  if (ic >= kChannelBlock) {
    throw std::invalid_argument(
        "to_blocked_weights_small_ic: IC must be < 16");
  }
  const std::int64_t kd = plain.shape()[2];
  const std::int64_t kh = plain.shape()[3];
  const std::int64_t kw = plain.shape()[4];
  const std::int64_t ocb = blocked_channel_count(oc);
  Tensor blocked(Shape{ocb, kd, kh, kw, ic, kChannelBlock});

  const std::int64_t kvol = kd * kh * kw;
  for (std::int64_t o = 0; o < oc; ++o) {
    for (std::int64_t i = 0; i < ic; ++i) {
      const float* src = plain.data() + (o * ic + i) * kvol;
      float* dst = blocked.data() +
                   (o / kChannelBlock) * kvol * ic * kChannelBlock +
                   i * kChannelBlock + o % kChannelBlock;
      for (std::int64_t k = 0; k < kvol; ++k) {
        dst[k * ic * kChannelBlock] = src[k];
      }
    }
  }
  return blocked;
}

Tensor from_blocked_weights_small_ic(const Tensor& blocked, std::int64_t oc,
                                     std::int64_t ic) {
  require_rank(blocked, 6, "from_blocked_weights_small_ic");
  if (blocked.shape()[0] != blocked_channel_count(oc) ||
      blocked.shape()[4] != ic) {
    throw std::invalid_argument(
        "from_blocked_weights_small_ic: shape inconsistent");
  }
  const std::int64_t kd = blocked.shape()[1];
  const std::int64_t kh = blocked.shape()[2];
  const std::int64_t kw = blocked.shape()[3];
  const std::int64_t kvol = kd * kh * kw;
  Tensor plain(Shape{oc, ic, kd, kh, kw});

  for (std::int64_t o = 0; o < oc; ++o) {
    for (std::int64_t i = 0; i < ic; ++i) {
      float* dst = plain.data() + (o * ic + i) * kvol;
      const float* src = blocked.data() +
                         (o / kChannelBlock) * kvol * ic * kChannelBlock +
                         i * kChannelBlock + o % kChannelBlock;
      for (std::int64_t k = 0; k < kvol; ++k) {
        dst[k] = src[k * ic * kChannelBlock];
      }
    }
  }
  return plain;
}

}  // namespace cf::tensor
