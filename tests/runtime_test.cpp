// Unit tests for the cf::runtime substrate: aligned buffers, Philox
// RNG streams, thread pool partitioning, barrier episodes, timers.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "runtime/aligned_buffer.hpp"
#include "runtime/barrier.hpp"
#include "runtime/rng.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/timer.hpp"

namespace cf::runtime {
namespace {

TEST(AlignedBuffer, Is64ByteAligned) {
  AlignedBuffer<float> buffer(100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buffer.data()) % 64, 0u);
  EXPECT_EQ(buffer.size(), 100u);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<float> a(16);
  a[0] = 42.0f;
  float* original = a.data();
  AlignedBuffer<float> b(std::move(a));
  EXPECT_EQ(b.data(), original);
  EXPECT_FLOAT_EQ(b[0], 42.0f);
  EXPECT_TRUE(a.empty());
}

TEST(AlignedBuffer, EmptyBufferHasNoStorage) {
  AlignedBuffer<double> buffer;
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(buffer.data(), nullptr);
}

TEST(Rng, DeterministicForSameSeedAndStream) {
  Rng a(123, 7);
  Rng b(123, 7);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u32(), b.next_u32());
  }
}

TEST(Rng, StreamsAreIndependent) {
  Rng a(123, 0);
  Rng b(123, 1);
  int identical = 0;
  for (int i = 0; i < 256; ++i) {
    if (a.next_u32() == b.next_u32()) ++identical;
  }
  EXPECT_LT(identical, 3);
}

TEST(Rng, SeedsChangeTheSequence) {
  Rng a(1, 0);
  Rng b(2, 0);
  int identical = 0;
  for (int i = 0; i < 256; ++i) {
    if (a.next_u32() == b.next_u32()) ++identical;
  }
  EXPECT_LT(identical, 3);
}

TEST(Rng, UniformIsInHalfOpenUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const float u = rng.uniform();
    ASSERT_GE(u, 0.0f);
    ASSERT_LT(u, 1.0f);
  }
}

TEST(Rng, UniformMeanAndVarianceMatchTheory) {
  Rng rng(4);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sum_sq += u * u;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 5e-3);
  EXPECT_NEAR(var, 1.0 / 12.0, 5e-3);
}

TEST(Rng, NormalMomentsMatchTheory) {
  Rng rng(5);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 1e-2);
  EXPECT_NEAR(sum_sq / n, 1.0, 2e-2);
}

TEST(Rng, SkipBlocksMatchesDrawing) {
  Rng jumped(11, 3);
  jumped.skip_blocks(25);
  Rng walked(11, 3);
  for (int i = 0; i < 25 * 4; ++i) walked.next_u32();
  for (int i = 0; i < 16; ++i) {
    ASSERT_EQ(jumped.next_u32(), walked.next_u32());
  }
}

TEST(Rng, UniformIndexStaysInRange) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_LT(rng.uniform_index(17), 17u);
  }
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t total = 1003;
  std::vector<std::atomic<int>> touched(total);
  pool.parallel_for(total,
                    [&](std::size_t begin, std::size_t end, std::size_t) {
                      for (std::size_t i = begin; i < end; ++i) {
                        touched[i].fetch_add(1);
                      }
                    });
  for (std::size_t i = 0; i < total; ++i) {
    ASSERT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, WorkerIdsAreDistinct) {
  ThreadPool pool(3);
  std::mutex mutex;
  std::set<std::size_t> workers;
  pool.parallel_for(3, [&](std::size_t, std::size_t, std::size_t worker) {
    std::lock_guard lock(mutex);
    workers.insert(worker);
  });
  EXPECT_EQ(workers.size(), 3u);
}

TEST(ThreadPool, SerialPoolRunsInline) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  pool.parallel_for(10, [&](std::size_t, std::size_t, std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t begin, std::size_t, std::size_t) {
                          if (begin == 0) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // Pool must remain usable afterwards.
  std::atomic<int> count{0};
  pool.parallel_for(8, [&](std::size_t begin, std::size_t end, std::size_t) {
    count += static_cast<int>(end - begin);
  });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, ReusableAcrossManyInvocations) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int iter = 0; iter < 200; ++iter) {
    pool.parallel_for(64,
                      [&](std::size_t begin, std::size_t end, std::size_t) {
                        total += static_cast<long>(end - begin);
                      });
  }
  EXPECT_EQ(total.load(), 200 * 64);
}

TEST(ThreadPool, RunOnAllHitsEveryWorker) {
  ThreadPool pool(5);
  std::vector<std::atomic<int>> hits(5);
  pool.run_on_all([&](std::size_t worker) { hits[worker].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Barrier, SynchronizesCounterAcrossPhases) {
  const std::size_t n = 4;
  Barrier barrier(n);
  std::atomic<int> counter{0};
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  for (std::size_t t = 0; t < n; ++t) {
    threads.emplace_back([&] {
      for (int phase = 0; phase < 50; ++phase) {
        counter.fetch_add(1);
        barrier.arrive_and_wait();
        if (counter.load() != static_cast<int>(n) * (phase + 1)) {
          failed = true;
        }
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_FALSE(failed.load());
}

TEST(Barrier, ElectsExactlyOneLeaderPerEpisode) {
  const std::size_t n = 3;
  Barrier barrier(n);
  std::atomic<int> leaders{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < n; ++t) {
    threads.emplace_back([&] {
      for (int phase = 0; phase < 20; ++phase) {
        if (barrier.arrive_and_wait()) leaders.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(leaders.load(), 20);
}

TEST(TimeStats, SummaryStatistics) {
  TimeStats stats;
  stats.add(1.0);
  stats.add(2.0);
  stats.add(3.0);
  EXPECT_EQ(stats.count(), 3u);
  EXPECT_DOUBLE_EQ(stats.total(), 6.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.0);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 3.0);
  EXPECT_NEAR(stats.stddev(), 1.0, 1e-12);
}

TEST(TimeStats, MergeEqualsCombinedStream) {
  TimeStats a;
  TimeStats b;
  TimeStats all;
  for (int i = 1; i <= 10; ++i) {
    const double v = i * 0.1;
    (i % 2 == 0 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.total(), all.total(), 1e-12);
  EXPECT_NEAR(a.stddev(), all.stddev(), 1e-12);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(watch.elapsed_ms(), 15.0);
}

}  // namespace
}  // namespace cf::runtime
