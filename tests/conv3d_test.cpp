// Validation of the blocked 3D convolution engine (Algorithm 1)
// against the plain-layout reference kernels and against numerical
// gradients.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "dnn/conv3d.hpp"
#include "runtime/rng.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/layout.hpp"
#include "tensor/tensor_ops.hpp"

namespace cf::dnn {
namespace {

using tensor::Shape;
using tensor::Tensor;

struct ConvCase {
  std::int64_t ic, oc, dhw, kernel, stride;
  Padding padding;
};

std::string case_name(const ::testing::TestParamInfo<ConvCase>& info) {
  const ConvCase& c = info.param;
  return "ic" + std::to_string(c.ic) + "_oc" + std::to_string(c.oc) + "_s" +
         std::to_string(c.dhw) + "_k" + std::to_string(c.kernel) + "_st" +
         std::to_string(c.stride) +
         (c.padding == Padding::kSame ? "_same" : "_valid");
}

class BlockedConvVsReference : public ::testing::TestWithParam<ConvCase> {
 protected:
  void SetUp() override {
    const ConvCase& c = GetParam();
    config_ = Conv3dConfig{c.ic, c.oc, c.kernel, c.stride, c.padding};
    conv_ = std::make_unique<Conv3d>("conv", config_);

    runtime::Rng rng(42, static_cast<std::uint64_t>(c.ic * 1000 + c.oc));
    plain_src_ = Tensor(Shape{c.ic, c.dhw, c.dhw, c.dhw});
    tensor::fill_normal(plain_src_, rng, 0.0f, 1.0f);
    plain_weights_ =
        Tensor(Shape{c.oc, c.ic, c.kernel, c.kernel, c.kernel});
    tensor::fill_normal(plain_weights_, rng, 0.0f, 0.5f);
    bias_ = Tensor(Shape{c.oc});
    tensor::fill_normal(bias_, rng, 0.0f, 0.1f);

    const Shape in_shape = conv_->input_is_plain()
                               ? plain_src_.shape()
                               : Shape{c.ic / 16, c.dhw, c.dhw, c.dhw, 16};
    conv_->plan(in_shape);
    conv_->set_plain_weights(plain_weights_, bias_);

    pd_ = resolve_pad(c.padding, c.dhw, c.kernel, c.stride);
    const std::int64_t out =
        tensor::conv_out_dim(c.dhw, c.kernel, c.stride, pd_.total());
    ref_dst_ = Tensor(Shape{c.oc, out, out, out});
    conv3d_forward_reference(plain_src_, plain_weights_, bias_, c.stride,
                             pd_, pd_, pd_, ref_dst_);

    src_ = conv_->input_is_plain() ? plain_src_.clone()
                                   : tensor::to_blocked_activation(plain_src_);
    dst_ = Tensor(conv_->output_shape());
  }

  Tensor blocked_output_as_plain() const {
    return tensor::from_blocked_activation(dst_, config_.out_channels);
  }

  Conv3dConfig config_;
  std::unique_ptr<Conv3d> conv_;
  Tensor plain_src_, plain_weights_, bias_;
  Tensor src_, dst_, ref_dst_;
  PadSpec pd_;
  runtime::ThreadPool pool_{3};
};

TEST_P(BlockedConvVsReference, ForwardMatches) {
  conv_->forward(src_, dst_, pool_);
  const Tensor plain_out = blocked_output_as_plain();
  EXPECT_TRUE(tensor::allclose(plain_out.values(), ref_dst_.values(), 1e-4f,
                               1e-4f))
      << "max diff "
      << tensor::max_abs_diff(plain_out.values(), ref_dst_.values());
}

TEST_P(BlockedConvVsReference, BackwardWeightsMatches) {
  const ConvCase& c = GetParam();
  conv_->forward(src_, dst_, pool_);

  runtime::Rng rng(7);
  Tensor plain_ddst(ref_dst_.shape());
  tensor::fill_normal(plain_ddst, rng, 0.0f, 1.0f);

  Tensor ref_dw(plain_weights_.shape());
  Tensor ref_db(Shape{c.oc});
  conv3d_backward_weights_reference(plain_src_, plain_ddst, c.stride, pd_,
                                    pd_, pd_, ref_dw, ref_db);

  Tensor ddst = tensor::to_blocked_activation(plain_ddst);
  Tensor dsrc(conv_->input_shape());
  conv_->backward(src_, ddst, dsrc, /*need_dsrc=*/false, pool_);

  const Tensor dw = conv_->plain_weight_grads();
  EXPECT_TRUE(tensor::allclose(dw.values(), ref_dw.values(), 1e-3f, 1e-3f))
      << "max dw diff "
      << tensor::max_abs_diff(dw.values(), ref_dw.values());
  EXPECT_TRUE(tensor::allclose(conv_->bias_grad().values(), ref_db.values(),
                               1e-3f, 1e-3f));
}

TEST_P(BlockedConvVsReference, BackwardDataMatches) {
  const ConvCase& c = GetParam();
  conv_->forward(src_, dst_, pool_);

  runtime::Rng rng(8);
  Tensor plain_ddst(ref_dst_.shape());
  tensor::fill_normal(plain_ddst, rng, 0.0f, 1.0f);

  Tensor ref_dsrc(plain_src_.shape());
  conv3d_backward_data_reference(plain_ddst, plain_weights_, c.stride, pd_,
                                 pd_, pd_, ref_dsrc);

  Tensor ddst = tensor::to_blocked_activation(plain_ddst);
  Tensor dsrc(conv_->input_shape());
  conv_->backward(src_, ddst, dsrc, /*need_dsrc=*/true, pool_);

  const Tensor plain_dsrc =
      conv_->input_is_plain()
          ? dsrc.clone()
          : tensor::from_blocked_activation(dsrc, c.ic);
  EXPECT_TRUE(tensor::allclose(plain_dsrc.values(), ref_dsrc.values(), 1e-3f,
                               1e-3f))
      << "max dsrc diff "
      << tensor::max_abs_diff(plain_dsrc.values(), ref_dsrc.values());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BlockedConvVsReference,
    ::testing::Values(
        // Blocked-source cases (IC multiple of 16).
        ConvCase{16, 16, 6, 3, 1, Padding::kSame},
        ConvCase{16, 16, 6, 3, 1, Padding::kValid},
        ConvCase{16, 32, 8, 3, 2, Padding::kSame},
        ConvCase{32, 16, 5, 3, 1, Padding::kSame},
        ConvCase{16, 16, 8, 4, 1, Padding::kSame},   // even kernel, asym pad
        ConvCase{16, 16, 9, 4, 2, Padding::kValid},
        ConvCase{32, 32, 6, 2, 2, Padding::kValid},
        ConvCase{16, 48, 6, 3, 1, Padding::kSame},
        ConvCase{16, 16, 7, 5, 1, Padding::kSame},   // k > stride coverage
        ConvCase{16, 16, 6, 3, 3, Padding::kValid},  // stride == kernel
        // Plain-source cases (first layer, IC < 16).
        ConvCase{1, 16, 8, 3, 1, Padding::kSame},
        ConvCase{1, 32, 8, 3, 1, Padding::kValid},
        ConvCase{2, 16, 6, 4, 2, Padding::kSame},
        ConvCase{4, 16, 6, 2, 1, Padding::kValid}),
    case_name);

TEST(Conv3d, RejectsBadConfigs) {
  EXPECT_THROW(Conv3d("c", Conv3dConfig{16, 20, 3, 1, Padding::kSame}),
               std::invalid_argument);  // OC not multiple of 16
  EXPECT_THROW(Conv3d("c", Conv3dConfig{24, 16, 3, 1, Padding::kSame}),
               std::invalid_argument);  // IC 16 < x not multiple of 16
  EXPECT_THROW(Conv3d("c", Conv3dConfig{16, 16, 0, 1, Padding::kSame}),
               std::invalid_argument);
  EXPECT_THROW(Conv3d("c", Conv3dConfig{0, 16, 3, 1, Padding::kSame}),
               std::invalid_argument);
}

TEST(Conv3d, PlanRejectsMismatchedInput) {
  Conv3d conv("c", Conv3dConfig{16, 16, 3, 1, Padding::kSame});
  EXPECT_THROW(conv.plan(Shape{16, 6, 6, 6}), std::invalid_argument);
  EXPECT_THROW(conv.plan(Shape{2, 6, 6, 6, 16}), std::invalid_argument);
  Conv3d first("c", Conv3dConfig{1, 16, 3, 1, Padding::kSame});
  EXPECT_THROW(first.plan(Shape{2, 6, 6, 6}), std::invalid_argument);
}

TEST(Conv3d, ForwardValidatesShapes) {
  Conv3d conv("c", Conv3dConfig{16, 16, 3, 1, Padding::kSame});
  conv.plan(Shape{1, 4, 4, 4, 16});
  runtime::ThreadPool pool(1);
  Tensor bad_src(Shape{1, 5, 4, 4, 16});
  Tensor dst(conv.output_shape());
  EXPECT_THROW(conv.forward(bad_src, dst, pool), std::invalid_argument);
}

TEST(Conv3d, FlopCountMatchesFormula) {
  Conv3d conv("c", Conv3dConfig{16, 32, 3, 1, Padding::kSame});
  conv.plan(Shape{1, 8, 8, 8, 16});
  const FlopCounts f = conv.flops();
  // 2 * 8^3 * 32 * 16 * 27
  EXPECT_EQ(f.fwd, 2LL * 512 * 32 * 16 * 27);
  EXPECT_EQ(f.bwd_data, f.fwd);
  EXPECT_EQ(f.bwd_weights, f.fwd);
}

TEST(Conv3d, ParamCountIncludesBias) {
  Conv3d conv("c", Conv3dConfig{16, 32, 3, 1, Padding::kSame});
  conv.plan(Shape{1, 8, 8, 8, 16});
  EXPECT_EQ(conv.param_count(), 32 * 16 * 27 + 32);
}

TEST(Conv3d, GradsAccumulateAcrossBackwardCalls) {
  Conv3d conv("c", Conv3dConfig{16, 16, 3, 1, Padding::kSame});
  conv.plan(Shape{1, 4, 4, 4, 16});
  runtime::Rng rng(3);
  conv.init_he(rng);
  runtime::ThreadPool pool(2);

  Tensor src(conv.input_shape());
  tensor::fill_normal(src, rng, 0.0f, 1.0f);
  Tensor dst(conv.output_shape());
  Tensor ddst(conv.output_shape());
  tensor::fill_normal(ddst, rng, 0.0f, 1.0f);
  Tensor dsrc(conv.input_shape());

  conv.forward(src, dst, pool);
  conv.backward(src, ddst, dsrc, false, pool);
  const Tensor once = conv.plain_weight_grads();
  conv.backward(src, ddst, dsrc, false, pool);
  const Tensor twice = conv.plain_weight_grads();

  Tensor doubled = once.clone();
  tensor::scale(doubled.values(), 2.0f);
  EXPECT_TRUE(
      tensor::allclose(twice.values(), doubled.values(), 1e-4f, 1e-4f));
}

// Central-difference gradient check through the blocked engine: for a
// loss L = sum(R * conv(src)), dL/dw must match the analytic backward.
TEST(Conv3dGradCheck, WeightsAndBiasAndData) {
  const Conv3dConfig config{16, 16, 3, 2, Padding::kSame};
  Conv3d conv("c", config);
  conv.plan(Shape{1, 5, 5, 5, 16});
  runtime::ThreadPool pool(2);
  runtime::Rng rng(11);

  Tensor weights(Shape{16, 16, 3, 3, 3});
  tensor::fill_normal(weights, rng, 0.0f, 0.3f);
  Tensor bias(Shape{16});
  tensor::fill_normal(bias, rng, 0.0f, 0.1f);
  conv.set_plain_weights(weights, bias);

  Tensor src(conv.input_shape());
  tensor::fill_normal(src, rng, 0.0f, 1.0f);
  Tensor direction(conv.output_shape());
  tensor::fill_normal(direction, rng, 0.0f, 1.0f);

  Tensor dst(conv.output_shape());
  const auto loss = [&] {
    conv.forward(src, dst, pool);
    return tensor::dot(dst.values(), direction.values());
  };

  loss();
  Tensor dsrc(conv.input_shape());
  conv.backward(src, direction, dsrc, true, pool);
  const Tensor analytic_dw = conv.plain_weight_grads();
  const Tensor analytic_db = conv.bias_grad().clone();
  const Tensor analytic_dsrc = dsrc.clone();

  const float eps = 1e-2f;
  runtime::Rng pick(13);
  // Sampled weight coordinates.
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t i = pick.uniform_index(weights.size());
    Tensor perturbed = weights.clone();
    perturbed[i] += eps;
    conv.set_plain_weights(perturbed, bias);
    const double up = loss();
    perturbed[i] -= 2 * eps;
    conv.set_plain_weights(perturbed, bias);
    const double down = loss();
    const double numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(analytic_dw[i], numeric,
                2e-2 * std::max(1.0, std::fabs(numeric)))
        << "weight index " << i;
  }
  conv.set_plain_weights(weights, bias);
  // Sampled bias coordinates.
  for (int trial = 0; trial < 4; ++trial) {
    const std::size_t i = pick.uniform_index(bias.size());
    Tensor perturbed = bias.clone();
    perturbed[i] += eps;
    conv.set_plain_weights(weights, perturbed);
    const double up = loss();
    perturbed[i] -= 2 * eps;
    conv.set_plain_weights(weights, perturbed);
    const double down = loss();
    const double numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(analytic_db[i], numeric,
                2e-2 * std::max(1.0, std::fabs(numeric)))
        << "bias index " << i;
  }
  conv.set_plain_weights(weights, bias);
  // Sampled input coordinates.
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t i = pick.uniform_index(src.size());
    const float original = src[i];
    src[i] = original + eps;
    const double up = loss();
    src[i] = original - eps;
    const double down = loss();
    src[i] = original;
    const double numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(analytic_dsrc[i], numeric,
                2e-2 * std::max(1.0, std::fabs(numeric)))
        << "src index " << i;
  }
}

}  // namespace
}  // namespace cf::dnn
