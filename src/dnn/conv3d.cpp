// Blocked 3D convolution engine (Algorithm 1 of the paper).
//
// Layout conventions (see tensor/layout.hpp):
//   src      {ICb, D, H, W, 16}   (or plain {IC, D, H, W} when IC < 16)
//   dst      {OCb, OD, OH, OW, 16}
//   weights  {OCb, ICb, K, K, K, 16ic, 16oc}
//            ({OCb, K, K, K, IC, 16oc} for the plain-source case)
//
// The source is copied once per step into a zero-padded staging
// workspace (owned by the stream's LayerExecState) so every inner loop
// is branch-free; the innermost (ow, ic, oc) loops operate on 16-float
// channel blocks that the compiler lowers to AVX-512 FMAs. Threading
// decomposes the output voxel space in the forward pass, the *input*
// voxel space in the backward-data pass (gather form over transposed
// weight tiles — each dsrc row is produced whole, with no zero-fill or
// scatter traffic), and (ocb, icb, kd) channel-block tiles in the
// backward-weights pass, as described in §III-C.
#include "dnn/conv3d.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <span>
#include <stdexcept>
#include <vector>

#include "obs/telemetry.hpp"

#if defined(__AVX512F__)
#include <immintrin.h>
#endif

#include "tensor/tensor_ops.hpp"

namespace cf::dnn {

using tensor::kChannelBlock;
using tensor::Shape;
using tensor::Tensor;

namespace {

constexpr std::int64_t kB = kChannelBlock;  // 16

/// dst[ow][oc] += sum_ic w[ic][oc] * src[ow*stride][ic] for a row of
/// `count` output positions; `w` is one 16x16 tile.
///
/// Algorithm 1 keeps many independent accumulator registers in flight
/// so the FMA chains are throughput- rather than latency-bound (the
/// paper blocks 28 output positions; 8 x 16-lane accumulators fill the
/// AVX-512 register file here, with the weight row shared by all of
/// them). The local accumulator arrays stay in registers once the
/// inner loops are unrolled.
constexpr std::int64_t kOwBlock = 8;

#if defined(__AVX512F__)

inline void micro_fwd_row(float* __restrict acc,
                          const float* __restrict src_row,
                          const float* __restrict w, std::int64_t count,
                          std::int64_t stride) {
  std::int64_t ow = 0;
  // 8 independent 16-lane accumulators keep the FMA pipes saturated;
  // one weight row is shared by all 8 output positions.
  for (; ow + kOwBlock <= count; ow += kOwBlock) {
    float* d = acc + ow * kB;
    const float* s = src_row + ow * stride * kB;
    __m512 a0 = _mm512_loadu_ps(d + 0 * kB);
    __m512 a1 = _mm512_loadu_ps(d + 1 * kB);
    __m512 a2 = _mm512_loadu_ps(d + 2 * kB);
    __m512 a3 = _mm512_loadu_ps(d + 3 * kB);
    __m512 a4 = _mm512_loadu_ps(d + 4 * kB);
    __m512 a5 = _mm512_loadu_ps(d + 5 * kB);
    __m512 a6 = _mm512_loadu_ps(d + 6 * kB);
    __m512 a7 = _mm512_loadu_ps(d + 7 * kB);
    const std::int64_t sstep = stride * kB;
    for (int ic = 0; ic < kB; ++ic) {
      const __m512 wv = _mm512_loadu_ps(w + ic * kB);
      a0 = _mm512_fmadd_ps(wv, _mm512_set1_ps(s[0 * sstep + ic]), a0);
      a1 = _mm512_fmadd_ps(wv, _mm512_set1_ps(s[1 * sstep + ic]), a1);
      a2 = _mm512_fmadd_ps(wv, _mm512_set1_ps(s[2 * sstep + ic]), a2);
      a3 = _mm512_fmadd_ps(wv, _mm512_set1_ps(s[3 * sstep + ic]), a3);
      a4 = _mm512_fmadd_ps(wv, _mm512_set1_ps(s[4 * sstep + ic]), a4);
      a5 = _mm512_fmadd_ps(wv, _mm512_set1_ps(s[5 * sstep + ic]), a5);
      a6 = _mm512_fmadd_ps(wv, _mm512_set1_ps(s[6 * sstep + ic]), a6);
      a7 = _mm512_fmadd_ps(wv, _mm512_set1_ps(s[7 * sstep + ic]), a7);
    }
    _mm512_storeu_ps(d + 0 * kB, a0);
    _mm512_storeu_ps(d + 1 * kB, a1);
    _mm512_storeu_ps(d + 2 * kB, a2);
    _mm512_storeu_ps(d + 3 * kB, a3);
    _mm512_storeu_ps(d + 4 * kB, a4);
    _mm512_storeu_ps(d + 5 * kB, a5);
    _mm512_storeu_ps(d + 6 * kB, a6);
    _mm512_storeu_ps(d + 7 * kB, a7);
  }
  for (; ow < count; ++ow) {
    const float* s = src_row + ow * stride * kB;
    float* d = acc + ow * kB;
    __m512 a = _mm512_loadu_ps(d);
    for (int ic = 0; ic < kB; ++ic) {
      a = _mm512_fmadd_ps(_mm512_loadu_ps(w + ic * kB),
                          _mm512_set1_ps(s[ic]), a);
    }
    _mm512_storeu_ps(d, a);
  }
}

/// acc[ic][oc] += src[ow*stride][ic] * ddst[ow][oc] outer products over
/// a row (backward-weights micro-kernel). The 16x16 accumulator tile
/// lives in 16 zmm registers across the whole row.
inline void micro_bww_row(float* __restrict acc,
                          const float* __restrict src_row,
                          const float* __restrict ddst_row,
                          std::int64_t count, std::int64_t stride) {
  __m512 a[kB];
  for (int ic = 0; ic < kB; ++ic) a[ic] = _mm512_loadu_ps(acc + ic * kB);
  for (std::int64_t ow = 0; ow < count; ++ow) {
    const float* s = src_row + ow * stride * kB;
    const __m512 dv = _mm512_loadu_ps(ddst_row + ow * kB);
    for (int ic = 0; ic < kB; ++ic) {
      a[ic] = _mm512_fmadd_ps(dv, _mm512_set1_ps(s[ic]), a[ic]);
    }
  }
  for (int ic = 0; ic < kB; ++ic) _mm512_storeu_ps(acc + ic * kB, a[ic]);
}

#else  // portable fallback

inline void micro_fwd_row(float* __restrict acc,
                          const float* __restrict src_row,
                          const float* __restrict w, std::int64_t count,
                          std::int64_t stride) {
  std::int64_t ow = 0;
  for (; ow + kOwBlock <= count; ow += kOwBlock) {
    float a[kOwBlock][kB];
    for (int j = 0; j < kOwBlock; ++j) {
      for (int oc = 0; oc < kB; ++oc) a[j][oc] = acc[(ow + j) * kB + oc];
    }
    const float* s = src_row + ow * stride * kB;
    for (int ic = 0; ic < kB; ++ic) {
      const float* wrow = w + ic * kB;
      for (int j = 0; j < kOwBlock; ++j) {
        const float sv = s[j * stride * kB + ic];
        for (int oc = 0; oc < kB; ++oc) a[j][oc] += wrow[oc] * sv;
      }
    }
    for (int j = 0; j < kOwBlock; ++j) {
      for (int oc = 0; oc < kB; ++oc) acc[(ow + j) * kB + oc] = a[j][oc];
    }
  }
  for (; ow < count; ++ow) {
    const float* s = src_row + ow * stride * kB;
    float a[kB];
    for (int oc = 0; oc < kB; ++oc) a[oc] = acc[ow * kB + oc];
    for (int ic = 0; ic < kB; ++ic) {
      const float sv = s[ic];
      const float* wrow = w + ic * kB;
      for (int oc = 0; oc < kB; ++oc) a[oc] += wrow[oc] * sv;
    }
    for (int oc = 0; oc < kB; ++oc) acc[ow * kB + oc] = a[oc];
  }
}

inline void micro_bww_row(float* __restrict acc,
                          const float* __restrict src_row,
                          const float* __restrict ddst_row,
                          std::int64_t count, std::int64_t stride) {
  float local[kB * kB];
  for (int i = 0; i < kB * kB; ++i) local[i] = acc[i];
  for (std::int64_t ow = 0; ow < count; ++ow) {
    const float* s = src_row + ow * stride * kB;
    const float* d = ddst_row + ow * kB;
    for (int ic = 0; ic < kB; ++ic) {
      const float sv = s[ic];
      float* arow = local + ic * kB;
      for (int oc = 0; oc < kB; ++oc) arow[oc] += d[oc] * sv;
    }
  }
  for (int i = 0; i < kB * kB; ++i) acc[i] = local[i];
}

#endif  // __AVX512F__

/// Fused-epilogue output write: dst[i] = lrelu(acc[i]). Same float ops
/// (compare, multiply) the standalone LeakyRelu would apply to the
/// memcpy'd values, so the fused output is bitwise identical.
inline void store_row_eltwise(float* __restrict dst,
                              const float* __restrict acc, std::int64_t n,
                              float slope) {
  for (std::int64_t i = 0; i < n; ++i) {
    const float v = acc[i];
    dst[i] = v > 0.0f ? v : slope * v;
  }
}

/// In-place variant for kernels that write dst rows directly.
inline void apply_eltwise_row(float* __restrict row, std::int64_t n,
                              float slope) {
  for (std::int64_t i = 0; i < n; ++i) {
    const float v = row[i];
    row[i] = v > 0.0f ? v : slope * v;
  }
}

/// acc[ow*astride][ic] += sum_oc wt[oc][ic] * ddst[ow][oc] — the
/// backward-data micro-kernel in *gather* form: micro_fwd_row with the
/// src/dst roles swapped. `wt` is one transposed 16oc x 16ic weight
/// tile, ddst is read at unit (16-float) stride and the accumulator row
/// — a local, zero-initialized copy of one unpadded dsrc row — is
/// addressed at `astride` = conv stride. Because each dsrc row is
/// produced whole by a single task, there is no zero-fill pass over a
/// padded volume, no scatter read-modify-write traffic, and no
/// interior copy-out.
#if defined(__AVX512F__)

inline void micro_bwd_gather_row(float* __restrict acc,
                                 const float* __restrict ddst_row,
                                 const float* __restrict wt,
                                 std::int64_t count, std::int64_t astride) {
  std::int64_t ow = 0;
  const std::int64_t astep = astride * kB;
  for (; ow + kOwBlock <= count; ow += kOwBlock) {
    float* a = acc + ow * astep;
    const float* d = ddst_row + ow * kB;
    __m512 a0 = _mm512_loadu_ps(a + 0 * astep);
    __m512 a1 = _mm512_loadu_ps(a + 1 * astep);
    __m512 a2 = _mm512_loadu_ps(a + 2 * astep);
    __m512 a3 = _mm512_loadu_ps(a + 3 * astep);
    __m512 a4 = _mm512_loadu_ps(a + 4 * astep);
    __m512 a5 = _mm512_loadu_ps(a + 5 * astep);
    __m512 a6 = _mm512_loadu_ps(a + 6 * astep);
    __m512 a7 = _mm512_loadu_ps(a + 7 * astep);
    for (int oc = 0; oc < kB; ++oc) {
      const __m512 wv = _mm512_loadu_ps(wt + oc * kB);
      a0 = _mm512_fmadd_ps(wv, _mm512_set1_ps(d[0 * kB + oc]), a0);
      a1 = _mm512_fmadd_ps(wv, _mm512_set1_ps(d[1 * kB + oc]), a1);
      a2 = _mm512_fmadd_ps(wv, _mm512_set1_ps(d[2 * kB + oc]), a2);
      a3 = _mm512_fmadd_ps(wv, _mm512_set1_ps(d[3 * kB + oc]), a3);
      a4 = _mm512_fmadd_ps(wv, _mm512_set1_ps(d[4 * kB + oc]), a4);
      a5 = _mm512_fmadd_ps(wv, _mm512_set1_ps(d[5 * kB + oc]), a5);
      a6 = _mm512_fmadd_ps(wv, _mm512_set1_ps(d[6 * kB + oc]), a6);
      a7 = _mm512_fmadd_ps(wv, _mm512_set1_ps(d[7 * kB + oc]), a7);
    }
    _mm512_storeu_ps(a + 0 * astep, a0);
    _mm512_storeu_ps(a + 1 * astep, a1);
    _mm512_storeu_ps(a + 2 * astep, a2);
    _mm512_storeu_ps(a + 3 * astep, a3);
    _mm512_storeu_ps(a + 4 * astep, a4);
    _mm512_storeu_ps(a + 5 * astep, a5);
    _mm512_storeu_ps(a + 6 * astep, a6);
    _mm512_storeu_ps(a + 7 * astep, a7);
  }
  for (; ow < count; ++ow) {
    const float* d = ddst_row + ow * kB;
    float* a = acc + ow * astep;
    __m512 av = _mm512_loadu_ps(a);
    for (int oc = 0; oc < kB; ++oc) {
      av = _mm512_fmadd_ps(_mm512_loadu_ps(wt + oc * kB),
                           _mm512_set1_ps(d[oc]), av);
    }
    _mm512_storeu_ps(a, av);
  }
}

#else  // portable fallback

inline void micro_bwd_gather_row(float* __restrict acc,
                                 const float* __restrict ddst_row,
                                 const float* __restrict wt,
                                 std::int64_t count, std::int64_t astride) {
  const std::int64_t astep = astride * kB;
  std::int64_t ow = 0;
  for (; ow + kOwBlock <= count; ow += kOwBlock) {
    float a[kOwBlock][kB];
    for (int j = 0; j < kOwBlock; ++j) {
      for (int ic = 0; ic < kB; ++ic) a[j][ic] = acc[(ow + j) * astep + ic];
    }
    const float* d = ddst_row + ow * kB;
    for (int oc = 0; oc < kB; ++oc) {
      const float* wrow = wt + oc * kB;
      for (int j = 0; j < kOwBlock; ++j) {
        const float dv = d[j * kB + oc];
        for (int ic = 0; ic < kB; ++ic) a[j][ic] += wrow[ic] * dv;
      }
    }
    for (int j = 0; j < kOwBlock; ++j) {
      for (int ic = 0; ic < kB; ++ic) acc[(ow + j) * astep + ic] = a[j][ic];
    }
  }
  for (; ow < count; ++ow) {
    const float* d = ddst_row + ow * kB;
    float a[kB];
    for (int ic = 0; ic < kB; ++ic) a[ic] = acc[ow * astep + ic];
    for (int oc = 0; oc < kB; ++oc) {
      const float dv = d[oc];
      const float* wrow = wt + oc * kB;
      for (int ic = 0; ic < kB; ++ic) a[ic] += wrow[ic] * dv;
    }
    for (int ic = 0; ic < kB; ++ic) acc[ow * astep + ic] = a[ic];
  }
}

#endif  // __AVX512F__

}  // namespace

Conv3d::Conv3d(std::string name, Conv3dConfig config)
    : Layer(std::move(name)), config_(config) {
  if (config_.in_channels <= 0 || config_.out_channels <= 0) {
    throw std::invalid_argument("Conv3d: channel counts must be positive");
  }
  if (config_.out_channels % kB != 0) {
    throw std::invalid_argument(
        "Conv3d: out_channels must be a multiple of 16 (blocked engine); "
        "the CosmoFlow topology keeps all channel counts multiples of 16");
  }
  if (config_.in_channels >= kB && config_.in_channels % kB != 0) {
    throw std::invalid_argument(
        "Conv3d: in_channels must be < 16 or a multiple of 16");
  }
  if (config_.kernel <= 0 || config_.stride <= 0) {
    throw std::invalid_argument("Conv3d: bad kernel/stride");
  }
  plain_input_ = config_.in_channels < kB;
}

Shape Conv3d::plan(const Shape& input) {
  const std::int64_t k = config_.kernel;
  if (plain_input_) {
    if (input.rank() != 4 || input[0] != config_.in_channels) {
      throw std::invalid_argument("Conv3d::plan: expected plain {IC,D,H,W}, "
                                  "got " + input.to_string());
    }
    in_d_ = input[1];
    in_h_ = input[2];
    in_w_ = input[3];
  } else {
    if (input.rank() != 5 || input[4] != kB ||
        input[0] != config_.in_channels / kB) {
      throw std::invalid_argument(
          "Conv3d::plan: expected blocked {ICb,D,H,W,16}, got " +
          input.to_string());
    }
    in_d_ = input[1];
    in_h_ = input[2];
    in_w_ = input[3];
  }

  pad_d_ = resolve_pad(config_.padding, in_d_, k, config_.stride);
  pad_h_ = resolve_pad(config_.padding, in_h_, k, config_.stride);
  pad_w_ = resolve_pad(config_.padding, in_w_, k, config_.stride);
  out_d_ = tensor::conv_out_dim(in_d_, k, config_.stride, pad_d_.total());
  out_h_ = tensor::conv_out_dim(in_h_, k, config_.stride, pad_h_.total());
  out_w_ = tensor::conv_out_dim(in_w_, k, config_.stride, pad_w_.total());
  pd_ = in_d_ + pad_d_.total();
  ph_ = in_h_ + pad_h_.total();
  pw_ = in_w_ + pad_w_.total();

  const std::int64_t ocb = config_.out_channels / kB;
  if (plain_input_) {
    weights_ = Tensor(Shape{ocb, k, k, k, config_.in_channels, kB});
  } else {
    weights_ =
        Tensor(Shape{ocb, config_.in_channels / kB, k, k, k, kB, kB});
  }
  bias_ = Tensor(Shape{config_.out_channels});

  const Shape out{ocb, out_d_, out_h_, out_w_, kB};
  set_shapes(input, out);
  return out;
}

std::vector<ParamSpec> Conv3d::param_specs() {
  return {{name() + ".weights", &weights_},
          {name() + ".bias", &bias_}};
}

FlopCounts Conv3d::flops() const {
  const std::int64_t k3 =
      config_.kernel * config_.kernel * config_.kernel;
  const std::int64_t per_pass = 2 * out_d_ * out_h_ * out_w_ *
                                config_.out_channels * config_.in_channels *
                                k3;
  FlopCounts counts;
  counts.fwd = per_pass;
  counts.bwd_data = per_pass;
  counts.bwd_weights = per_pass;
  if (fused_) {
    // The absorbed LeakyReLU: one op per output element in the forward
    // epilogue and one in the backward-entry mask.
    const std::int64_t out_numel =
        config_.out_channels * out_d_ * out_h_ * out_w_;
    counts.fwd += out_numel;
    counts.bwd_weights += out_numel;
  }
  return counts;
}

bool Conv3d::fuse_leaky_relu(float slope) {
  // The sign trick behind the fused backward mask needs slope in
  // [0, 1); LeakyRelu's constructor enforces the same domain.
  if (slope < 0.0f || slope >= 1.0f) return false;
  fused_ = true;
  slope_ = slope;
  return true;
}

void Conv3d::init_he(runtime::Rng& rng) {
  const std::int64_t fan_in =
      config_.in_channels * config_.kernel * config_.kernel * config_.kernel;
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  Tensor plain(Shape{config_.out_channels, config_.in_channels,
                     config_.kernel, config_.kernel, config_.kernel});
  tensor::fill_normal(plain, rng, 0.0f, stddev);
  Tensor bias(Shape{config_.out_channels});
  set_plain_weights(plain, bias);
}

void Conv3d::set_plain_weights(const Tensor& weights, const Tensor& bias) {
  const Shape expected{config_.out_channels, config_.in_channels,
                       config_.kernel, config_.kernel, config_.kernel};
  if (weights.shape() != expected) {
    throw std::invalid_argument("Conv3d::set_plain_weights: bad shape " +
                                weights.shape().to_string());
  }
  if (bias.shape() != Shape{config_.out_channels}) {
    throw std::invalid_argument("Conv3d::set_plain_weights: bad bias shape");
  }
  Tensor blocked = plain_input_ ? tensor::to_blocked_weights_small_ic(weights)
                                : tensor::to_blocked_weights(weights);
  if (weights_.empty()) {
    weights_ = std::move(blocked);
  } else {
    // Write through the existing tensor: after Network::finalize() it
    // is a view into the parameter arena and must stay bound there.
    std::memcpy(weights_.data(), blocked.data(),
                blocked.size() * sizeof(float));
  }
  std::memcpy(bias_.data(), bias.data(),
              static_cast<std::size_t>(bias.size()) * sizeof(float));
}

Tensor Conv3d::plain_weights() const {
  return plain_input_
             ? tensor::from_blocked_weights_small_ic(
                   weights_, config_.out_channels, config_.in_channels)
             : tensor::from_blocked_weights(weights_, config_.out_channels,
                                            config_.in_channels);
}

Tensor Conv3d::plain_weight_grads() {
  const Tensor& wg = standalone_state().grads[0];
  return plain_input_
             ? tensor::from_blocked_weights_small_ic(
                   wg, config_.out_channels, config_.in_channels)
             : tensor::from_blocked_weights(wg, config_.out_channels,
                                            config_.in_channels);
}

std::size_t Conv3d::forward_workspace_floats() const {
  const std::int64_t planes = plain_input_
                                  ? config_.in_channels
                                  : (config_.in_channels / kB) * kB;
  return static_cast<std::size_t>(planes * pd_ * ph_ * pw_);
}

std::size_t Conv3d::backward_scratch_floats() const {
  // The blocked gather path transposes every weight tile; the plain
  // first-layer path uses the reference kernel and needs none.
  return plain_input_ ? 0 : weights_.size();
}

namespace {

/// Copies a blocked activation into its zero-padded staging workspace.
/// The border is assumed zero on entry (see Conv3d::stage_padded_src)
/// and interior rows are fully overwritten each call.
void copy_padded_blocked(const Tensor& src, float* padded, const PadSpec& pd,
                         const PadSpec& ph, const PadSpec& pw,
                         std::int64_t hp, std::int64_t wp,
                         runtime::ThreadPool& pool, std::size_t grain) {
  const std::int64_t cb = src.shape()[0];
  const std::int64_t d = src.shape()[1];
  const std::int64_t h = src.shape()[2];
  const std::int64_t w = src.shape()[3];

  pool.parallel_for(
      static_cast<std::size_t>(cb * d),
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t job = begin; job < end; ++job) {
          const std::int64_t c = static_cast<std::int64_t>(job) / d;
          const std::int64_t dd = static_cast<std::int64_t>(job) % d;
          for (std::int64_t hh = 0; hh < h; ++hh) {
            const float* s =
                src.data() + (((c * d + dd) * h + hh) * w) * kB;
            float* t = padded +
                       (((c * (d + pd.total()) + dd + pd.lo) * hp + hh +
                         ph.lo) *
                            wp +
                        pw.lo) *
                           kB;
            std::memcpy(t, s, static_cast<std::size_t>(w) * kB *
                                  sizeof(float));
          }
        }
      },
      grain);
}

/// Plain-layout variant for the first layer.
void copy_padded_plain(const Tensor& src, float* padded, const PadSpec& pd,
                       const PadSpec& ph, const PadSpec& pw, std::int64_t hp,
                       std::int64_t wp, runtime::ThreadPool& pool,
                       std::size_t grain) {
  const std::int64_t c = src.shape()[0];
  const std::int64_t d = src.shape()[1];
  const std::int64_t h = src.shape()[2];
  const std::int64_t w = src.shape()[3];

  pool.parallel_for(
      static_cast<std::size_t>(c * d),
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t job = begin; job < end; ++job) {
          const std::int64_t cc = static_cast<std::int64_t>(job) / d;
          const std::int64_t dd = static_cast<std::int64_t>(job) % d;
          for (std::int64_t hh = 0; hh < h; ++hh) {
            const float* s = src.data() + ((cc * d + dd) * h + hh) * w;
            float* t = padded +
                       ((cc * (d + pd.total()) + dd + pd.lo) * hp + hh +
                        ph.lo) *
                           wp +
                       pw.lo;
            std::memcpy(t, s,
                        static_cast<std::size_t>(w) * sizeof(float));
          }
        }
      },
      grain);
}

}  // namespace

void Conv3d::stage_padded_src(const Tensor& src, LayerExecState& exec,
                              runtime::ThreadPool& pool) const {
  const std::size_t need = forward_workspace_floats();
  if (exec.workspace.size() < need) {
    throw std::logic_error("Conv3d: workspace smaller than "
                           "forward_workspace_floats()");
  }
  if (exec.workspace_shared) {
    // Another layer may have scribbled over this region since the last
    // call; re-establish the zero border. A private region was zeroed
    // once at context creation and only ever rewritten in the interior,
    // so it skips this (the padding values are zeros either way — the
    // kernels see identical bits).
    std::memset(exec.workspace.data(), 0, need * sizeof(float));
  }
  if (plain_input_) {
    copy_padded_plain(src, exec.workspace.data(), pad_d_, pad_h_, pad_w_,
                      ph_, pw_, pool, exec.intraop_grain);
  } else {
    copy_padded_blocked(src, exec.workspace.data(), pad_d_, pad_h_, pad_w_,
                        ph_, pw_, pool, exec.intraop_grain);
  }
}

void Conv3d::forward(const Tensor& src, Tensor& dst, LayerExecState& exec,
                     runtime::ThreadPool& pool) const {
  const runtime::ScopedTimer timer(exec.timers.fwd);
  if (src.shape() != input_shape() || dst.shape() != output_shape()) {
    throw std::invalid_argument("Conv3d::forward: shape mismatch");
  }
  stage_padded_src(src, exec, pool);
  if (plain_input_) {
    forward_plain_src(src, dst, exec.workspace.data(), pool,
                      exec.intraop_grain);
  } else {
    forward_blocked(src, dst, exec.workspace.data(), pool,
                    exec.intraop_grain);
  }
}

void Conv3d::backward(const Tensor& src, Tensor& ddst, Tensor& dsrc,
                      bool need_dsrc, LayerExecState& exec,
                      runtime::ThreadPool& pool) const {
  if (fused_) {
    throw std::logic_error(
        "Conv3d::backward: fused layer needs its forward output — use the "
        "dst overload");
  }
  backward(src, /*dst=*/ddst, ddst, dsrc, need_dsrc, exec, pool);
}

void Conv3d::backward(const Tensor& src, const Tensor& dst, Tensor& ddst,
                      Tensor& dsrc, bool need_dsrc, LayerExecState& exec,
                      runtime::ThreadPool& pool) const {
  if (src.shape() != input_shape() || ddst.shape() != output_shape()) {
    throw std::invalid_argument("Conv3d::backward: shape mismatch");
  }
  if (exec.grads.size() != 2) {
    throw std::logic_error("Conv3d::backward: exec state has no grads");
  }
  {
    CF_TRACE_SCOPE(span_label_bww().c_str(), "conv");
    const runtime::ScopedTimer timer(exec.timers.bwd_weights);
    if (fused_) {
      if (dst.shape() != output_shape()) {
        throw std::invalid_argument("Conv3d::backward: dst shape mismatch");
      }
      // One sweep masks ddst with the LeakyReLU derivative *in place*
      // (ddst is consumed — Layer contract) and accumulates the bias
      // gradient from the already-masked values.
      mask_bias_grad_pass(dst, ddst, exec.grads[1], pool,
                          exec.intraop_grain);
    } else {
      bias_grad_pass(ddst, exec.grads[1], pool, exec.intraop_grain);
    }
    // The padded source copy in the stream's workspace is still valid
    // from this stream's forward().
    if (plain_input_) {
      backward_weights_plain_src(ddst, exec.workspace.data(),
                                 exec.grads[0], pool, exec.intraop_grain);
    } else {
      backward_weights_blocked(ddst, exec.workspace.data(), exec.grads[0],
                               pool, exec.intraop_grain);
    }
  }
  if (!need_dsrc) return;
  CF_TRACE_SCOPE(span_label_bwd_data().c_str(), "conv");
  const runtime::ScopedTimer timer(exec.timers.bwd_data);
  if (dsrc.shape() != input_shape()) {
    throw std::invalid_argument("Conv3d::backward: dsrc shape mismatch");
  }
  if (plain_input_) {
    backward_data_plain_src(ddst, dsrc, pool);
  } else {
    backward_data_blocked(ddst, dsrc, exec.scratch, pool,
                          exec.intraop_grain);
  }
}

void Conv3d::bias_grad_pass(const Tensor& ddst, Tensor& bias_grad,
                            runtime::ThreadPool& pool,
                            std::size_t grain) const {
  const std::int64_t ocb_count = config_.out_channels / kB;
  const std::int64_t voxels = out_d_ * out_h_ * out_w_;
  pool.parallel_for(
      static_cast<std::size_t>(ocb_count),
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t ocb = begin; ocb < end; ++ocb) {
          double acc[kB] = {};
          const float* base =
              ddst.data() +
              static_cast<std::int64_t>(ocb) * voxels * kB;
          for (std::int64_t v = 0; v < voxels; ++v) {
            for (int oc = 0; oc < kB; ++oc) acc[oc] += base[v * kB + oc];
          }
          float* bg = bias_grad.data() + ocb * kB;
          for (int oc = 0; oc < kB; ++oc) {
            bg[oc] += static_cast<float>(acc[oc]);
          }
        }
      },
      grain);
}

void Conv3d::mask_bias_grad_pass(const Tensor& dst, Tensor& ddst,
                                 Tensor& bias_grad,
                                 runtime::ThreadPool& pool,
                                 std::size_t grain) const {
  const std::int64_t ocb_count = config_.out_channels / kB;
  const std::int64_t voxels = out_d_ * out_h_ * out_w_;
  const float slope = slope_;
  pool.parallel_for(
      static_cast<std::size_t>(ocb_count),
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t ocb = begin; ocb < end; ++ocb) {
          const std::int64_t off =
              static_cast<std::int64_t>(ocb) * voxels * kB;
          const float* y = dst.data() + off;
          float* md = ddst.data() + off;
          double acc[kB] = {};
          for (std::int64_t v = 0; v < voxels; ++v) {
            for (int oc = 0; oc < kB; ++oc) {
              const std::int64_t i = v * kB + oc;
              const float m = y[i] > 0.0f ? md[i] : slope * md[i];
              md[i] = m;
              acc[oc] += m;
            }
          }
          float* bg = bias_grad.data() + ocb * kB;
          for (int oc = 0; oc < kB; ++oc) {
            bg[oc] += static_cast<float>(acc[oc]);
          }
        }
      },
      grain);
}

void Conv3d::forward_blocked(const Tensor& /*src*/, Tensor& dst,
                             const float* padded,
                             runtime::ThreadPool& pool,
                             std::size_t grain) const {
  const std::int64_t icb_count = config_.in_channels / kB;
  const std::int64_t ocb_count = config_.out_channels / kB;
  const std::int64_t k = config_.kernel;
  const std::int64_t stride = config_.stride;
  const std::int64_t dp = pd_;
  const std::int64_t hp = ph_;
  const std::int64_t wp = pw_;

  // Thread decomposition over the output voxel space: one task per
  // (ocb, od) slab.
  pool.parallel_for(
      static_cast<std::size_t>(ocb_count * out_d_),
      [&](std::size_t begin, std::size_t end, std::size_t) {
        std::vector<float> acc(static_cast<std::size_t>(out_w_) * kB);
        for (std::size_t job = begin; job < end; ++job) {
          const std::int64_t ocb = static_cast<std::int64_t>(job) / out_d_;
          const std::int64_t od = static_cast<std::int64_t>(job) % out_d_;
          for (std::int64_t oh = 0; oh < out_h_; ++oh) {
            // Bias-initialize the accumulator row.
            const float* b = bias_.data() + ocb * kB;
            for (std::int64_t ow = 0; ow < out_w_; ++ow) {
              std::memcpy(acc.data() + ow * kB, b, kB * sizeof(float));
            }
            for (std::int64_t icb = 0; icb < icb_count; ++icb) {
              for (std::int64_t kd = 0; kd < k; ++kd) {
                const std::int64_t id = od * stride + kd;
                for (std::int64_t kh = 0; kh < k; ++kh) {
                  const std::int64_t ih = oh * stride + kh;
                  const float* srow =
                      padded + (((icb * dp + id) * hp + ih) * wp) * kB;
                  const float* wtile =
                      weights_.data() +
                      ((((ocb * icb_count + icb) * k + kd) * k + kh) * k) *
                          kB * kB;
                  for (std::int64_t kw = 0; kw < k; ++kw) {
                    micro_fwd_row(acc.data(), srow + kw * kB,
                                  wtile + kw * kB * kB, out_w_, stride);
                  }
                }
              }
            }
            float* drow = dst.data() +
                          (((ocb * out_d_ + od) * out_h_ + oh) * out_w_) *
                              kB;
            if (fused_) {
              store_row_eltwise(drow, acc.data(), out_w_ * kB, slope_);
            } else {
              std::memcpy(drow, acc.data(),
                          static_cast<std::size_t>(out_w_) * kB *
                              sizeof(float));
            }
          }
        }
      },
      grain);
}

#if defined(__AVX512F__)

/// First-layer (IC == 1) forward fast path: 8 x 16-lane accumulator
/// registers per output-row block, held across the whole kernel
/// window. `splane` is the padded single-channel source plane at
/// (id, ih), `wtap` the {K, 16oc} weight rows for this (kd, kh).
inline void micro_fwd_row_ic1(float* __restrict dst_row,
                              const float* __restrict bias16,
                              const float* const* splanes,
                              const float* const* wtaps, std::int64_t taps,
                              std::int64_t kernel_w, std::int64_t count,
                              std::int64_t stride) {
  std::int64_t ow = 0;
  for (; ow + kOwBlock <= count; ow += kOwBlock) {
    const __m512 b = _mm512_loadu_ps(bias16);
    __m512 a0 = b, a1 = b, a2 = b, a3 = b, a4 = b, a5 = b, a6 = b, a7 = b;
    for (std::int64_t tap = 0; tap < taps; ++tap) {
      const float* s = splanes[tap] + ow * stride;
      const float* w = wtaps[tap];
      for (std::int64_t kw = 0; kw < kernel_w; ++kw) {
        const __m512 wv = _mm512_loadu_ps(w + kw * kB);
        a0 = _mm512_fmadd_ps(wv, _mm512_set1_ps(s[0 * stride + kw]), a0);
        a1 = _mm512_fmadd_ps(wv, _mm512_set1_ps(s[1 * stride + kw]), a1);
        a2 = _mm512_fmadd_ps(wv, _mm512_set1_ps(s[2 * stride + kw]), a2);
        a3 = _mm512_fmadd_ps(wv, _mm512_set1_ps(s[3 * stride + kw]), a3);
        a4 = _mm512_fmadd_ps(wv, _mm512_set1_ps(s[4 * stride + kw]), a4);
        a5 = _mm512_fmadd_ps(wv, _mm512_set1_ps(s[5 * stride + kw]), a5);
        a6 = _mm512_fmadd_ps(wv, _mm512_set1_ps(s[6 * stride + kw]), a6);
        a7 = _mm512_fmadd_ps(wv, _mm512_set1_ps(s[7 * stride + kw]), a7);
      }
    }
    float* d = dst_row + ow * kB;
    _mm512_storeu_ps(d + 0 * kB, a0);
    _mm512_storeu_ps(d + 1 * kB, a1);
    _mm512_storeu_ps(d + 2 * kB, a2);
    _mm512_storeu_ps(d + 3 * kB, a3);
    _mm512_storeu_ps(d + 4 * kB, a4);
    _mm512_storeu_ps(d + 5 * kB, a5);
    _mm512_storeu_ps(d + 6 * kB, a6);
    _mm512_storeu_ps(d + 7 * kB, a7);
  }
  for (; ow < count; ++ow) {
    __m512 a = _mm512_loadu_ps(bias16);
    for (std::int64_t tap = 0; tap < taps; ++tap) {
      const float* s = splanes[tap] + ow * stride;
      const float* w = wtaps[tap];
      for (std::int64_t kw = 0; kw < kernel_w; ++kw) {
        a = _mm512_fmadd_ps(_mm512_loadu_ps(w + kw * kB),
                            _mm512_set1_ps(s[kw]), a);
      }
    }
    _mm512_storeu_ps(dst_row + ow * kB, a);
  }
}

#endif  // __AVX512F__

void Conv3d::forward_plain_src(const Tensor& /*src*/, Tensor& dst,
                               const float* padded,
                               runtime::ThreadPool& pool,
                               std::size_t grain) const {
  const std::int64_t ic_count = config_.in_channels;
  const std::int64_t ocb_count = config_.out_channels / kB;
  const std::int64_t k = config_.kernel;
  const std::int64_t stride = config_.stride;
  const std::int64_t dp = pd_;
  const std::int64_t hp = ph_;
  const std::int64_t wp = pw_;

#if defined(__AVX512F__)
  if (ic_count == 1) {
    // Dedicated first-layer kernel: register accumulators across the
    // whole window, writing output rows directly.
    pool.parallel_for(
        static_cast<std::size_t>(ocb_count * out_d_),
        [&](std::size_t begin, std::size_t end, std::size_t) {
          std::vector<const float*> splanes(static_cast<std::size_t>(k * k));
          std::vector<const float*> wtaps(static_cast<std::size_t>(k * k));
          for (std::size_t job = begin; job < end; ++job) {
            const std::int64_t ocb =
                static_cast<std::int64_t>(job) / out_d_;
            const std::int64_t od = static_cast<std::int64_t>(job) % out_d_;
            for (std::int64_t oh = 0; oh < out_h_; ++oh) {
              std::int64_t tap = 0;
              for (std::int64_t kd = 0; kd < k; ++kd) {
                const std::int64_t id = od * stride + kd;
                for (std::int64_t kh = 0; kh < k; ++kh, ++tap) {
                  const std::int64_t ih = oh * stride + kh;
                  splanes[static_cast<std::size_t>(tap)] =
                      padded + (id * hp + ih) * wp;
                  wtaps[static_cast<std::size_t>(tap)] =
                      weights_.data() +
                      (((ocb * k + kd) * k + kh) * k) * kB;
                }
              }
              float* drow =
                  dst.data() +
                  (((ocb * out_d_ + od) * out_h_ + oh) * out_w_) * kB;
              micro_fwd_row_ic1(drow, bias_.data() + ocb * kB,
                                splanes.data(), wtaps.data(), k * k, k,
                                out_w_, stride);
              // Post-op over the still-cache-hot row.
              if (fused_) apply_eltwise_row(drow, out_w_ * kB, slope_);
            }
          }
        },
        grain);
    return;
  }
#endif  // __AVX512F__

  pool.parallel_for(
      static_cast<std::size_t>(ocb_count * out_d_),
      [&](std::size_t begin, std::size_t end, std::size_t) {
        std::vector<float> acc(static_cast<std::size_t>(out_w_) * kB);
        for (std::size_t job = begin; job < end; ++job) {
          const std::int64_t ocb = static_cast<std::int64_t>(job) / out_d_;
          const std::int64_t od = static_cast<std::int64_t>(job) % out_d_;
          for (std::int64_t oh = 0; oh < out_h_; ++oh) {
            const float* b = bias_.data() + ocb * kB;
            for (std::int64_t ow = 0; ow < out_w_; ++ow) {
              std::memcpy(acc.data() + ow * kB, b, kB * sizeof(float));
            }
            for (std::int64_t kd = 0; kd < k; ++kd) {
              const std::int64_t id = od * stride + kd;
              for (std::int64_t kh = 0; kh < k; ++kh) {
                const std::int64_t ih = oh * stride + kh;
                for (std::int64_t kw = 0; kw < k; ++kw) {
                  const float* wtile =
                      weights_.data() +
                      ((((ocb * k + kd) * k + kh) * k + kw) * ic_count) *
                          kB;
                  for (std::int64_t ic = 0; ic < ic_count; ++ic) {
                    const float* splane =
                        padded + ((ic * dp + id) * hp + ih) * wp + kw;
                    const float* wrow = wtile + ic * kB;
                    for (std::int64_t ow = 0; ow < out_w_; ++ow) {
                      const float sv = splane[ow * stride];
                      float* d = acc.data() + ow * kB;
                      for (int oc = 0; oc < kB; ++oc) {
                        d[oc] += wrow[oc] * sv;
                      }
                    }
                  }
                }
              }
            }
            float* drow = dst.data() +
                          (((ocb * out_d_ + od) * out_h_ + oh) * out_w_) *
                              kB;
            if (fused_) {
              store_row_eltwise(drow, acc.data(), out_w_ * kB, slope_);
            } else {
              std::memcpy(drow, acc.data(),
                          static_cast<std::size_t>(out_w_) * kB *
                              sizeof(float));
            }
          }
        }
      },
      grain);
}

void Conv3d::backward_weights_blocked(const Tensor& ddst,
                                      const float* padded,
                                      Tensor& weight_grad,
                                      runtime::ThreadPool& pool,
                                      std::size_t grain) const {
  const std::int64_t icb_count = config_.in_channels / kB;
  const std::int64_t ocb_count = config_.out_channels / kB;
  const std::int64_t k = config_.kernel;
  const std::int64_t stride = config_.stride;
  const std::int64_t dp = pd_;
  const std::int64_t hp = ph_;
  const std::int64_t wp = pw_;

  // Weight gradient: teams over (ocb, icb, kd) tiles — disjoint writes,
  // no reduction needed when there are enough channel blocks (the
  // "skip the reduction entirely" case of §III-C).
  pool.parallel_for(
      static_cast<std::size_t>(ocb_count * icb_count * k),
      [&](std::size_t begin, std::size_t end, std::size_t) {
        std::vector<float> acc(kB * kB);
        for (std::size_t job = begin; job < end; ++job) {
          const std::int64_t kd = static_cast<std::int64_t>(job) % k;
          const std::int64_t pair = static_cast<std::int64_t>(job) / k;
          const std::int64_t icb = pair % icb_count;
          const std::int64_t ocb = pair / icb_count;
          for (std::int64_t kh = 0; kh < k; ++kh) {
            for (std::int64_t kw = 0; kw < k; ++kw) {
              std::fill(acc.begin(), acc.end(), 0.0f);
              for (std::int64_t od = 0; od < out_d_; ++od) {
                const std::int64_t id = od * stride + kd;
                for (std::int64_t oh = 0; oh < out_h_; ++oh) {
                  const std::int64_t ih = oh * stride + kh;
                  const float* drow =
                      ddst.data() +
                      (((ocb * out_d_ + od) * out_h_ + oh) * out_w_) * kB;
                  const float* srow =
                      padded + (((icb * dp + id) * hp + ih) * wp + kw) * kB;
                  micro_bww_row(acc.data(), srow, drow, out_w_, stride);
                }
              }
              float* wtile =
                  weight_grad.data() +
                  ((((ocb * icb_count + icb) * k + kd) * k + kh) * k + kw) *
                      kB * kB;
              for (std::int64_t i = 0; i < kB * kB; ++i) {
                wtile[i] += acc[static_cast<std::size_t>(i)];
              }
            }
          }
        }
      },
      grain);
}

void Conv3d::backward_weights_plain_src(const Tensor& ddst,
                                        const float* padded,
                                        Tensor& weight_grad,
                                        runtime::ThreadPool& pool,
                                        std::size_t grain) const {
  const std::int64_t ic_count = config_.in_channels;
  const std::int64_t ocb_count = config_.out_channels / kB;
  const std::int64_t k = config_.kernel;
  const std::int64_t stride = config_.stride;
  const std::int64_t dp = pd_;
  const std::int64_t hp = ph_;
  const std::int64_t wp = pw_;

  pool.parallel_for(
      static_cast<std::size_t>(ocb_count * k),
      [&](std::size_t begin, std::size_t end, std::size_t) {
        std::vector<float> acc(static_cast<std::size_t>(ic_count) * kB);
        for (std::size_t job = begin; job < end; ++job) {
          const std::int64_t kd = static_cast<std::int64_t>(job) % k;
          const std::int64_t ocb = static_cast<std::int64_t>(job) / k;
          for (std::int64_t kh = 0; kh < k; ++kh) {
            for (std::int64_t kw = 0; kw < k; ++kw) {
#if defined(__AVX512F__)
              if (ic_count == 1) {
                // Eight independent accumulator chains over the output
                // row hide the FMA latency.
                __m512 a0 = _mm512_setzero_ps();
                __m512 a1 = _mm512_setzero_ps();
                __m512 a2 = _mm512_setzero_ps();
                __m512 a3 = _mm512_setzero_ps();
                __m512 a4 = _mm512_setzero_ps();
                __m512 a5 = _mm512_setzero_ps();
                __m512 a6 = _mm512_setzero_ps();
                __m512 a7 = _mm512_setzero_ps();
                for (std::int64_t od = 0; od < out_d_; ++od) {
                  const std::int64_t id = od * stride + kd;
                  for (std::int64_t oh = 0; oh < out_h_; ++oh) {
                    const std::int64_t ih = oh * stride + kh;
                    const float* drow =
                        ddst.data() +
                        (((ocb * out_d_ + od) * out_h_ + oh) * out_w_) *
                            kB;
                    const float* splane = padded + (id * hp + ih) * wp + kw;
                    std::int64_t ow = 0;
                    for (; ow + 8 <= out_w_; ow += 8) {
                      const float* d = drow + ow * kB;
                      const float* s = splane + ow * stride;
                      a0 = _mm512_fmadd_ps(_mm512_loadu_ps(d + 0 * kB),
                                           _mm512_set1_ps(s[0 * stride]),
                                           a0);
                      a1 = _mm512_fmadd_ps(_mm512_loadu_ps(d + 1 * kB),
                                           _mm512_set1_ps(s[1 * stride]),
                                           a1);
                      a2 = _mm512_fmadd_ps(_mm512_loadu_ps(d + 2 * kB),
                                           _mm512_set1_ps(s[2 * stride]),
                                           a2);
                      a3 = _mm512_fmadd_ps(_mm512_loadu_ps(d + 3 * kB),
                                           _mm512_set1_ps(s[3 * stride]),
                                           a3);
                      a4 = _mm512_fmadd_ps(_mm512_loadu_ps(d + 4 * kB),
                                           _mm512_set1_ps(s[4 * stride]),
                                           a4);
                      a5 = _mm512_fmadd_ps(_mm512_loadu_ps(d + 5 * kB),
                                           _mm512_set1_ps(s[5 * stride]),
                                           a5);
                      a6 = _mm512_fmadd_ps(_mm512_loadu_ps(d + 6 * kB),
                                           _mm512_set1_ps(s[6 * stride]),
                                           a6);
                      a7 = _mm512_fmadd_ps(_mm512_loadu_ps(d + 7 * kB),
                                           _mm512_set1_ps(s[7 * stride]),
                                           a7);
                    }
                    for (; ow < out_w_; ++ow) {
                      a0 = _mm512_fmadd_ps(
                          _mm512_loadu_ps(drow + ow * kB),
                          _mm512_set1_ps(splane[ow * stride]), a0);
                    }
                  }
                }
                const __m512 total = _mm512_add_ps(
                    _mm512_add_ps(_mm512_add_ps(a0, a1),
                                  _mm512_add_ps(a2, a3)),
                    _mm512_add_ps(_mm512_add_ps(a4, a5),
                                  _mm512_add_ps(a6, a7)));
                float* wtile =
                    weight_grad.data() +
                    (((ocb * k + kd) * k + kh) * k + kw) * kB;
                _mm512_storeu_ps(
                    wtile, _mm512_add_ps(_mm512_loadu_ps(wtile), total));
                continue;
              }
#endif  // __AVX512F__
              std::fill(acc.begin(), acc.end(), 0.0f);
              for (std::int64_t od = 0; od < out_d_; ++od) {
                const std::int64_t id = od * stride + kd;
                for (std::int64_t oh = 0; oh < out_h_; ++oh) {
                  const std::int64_t ih = oh * stride + kh;
                  const float* drow =
                      ddst.data() +
                      (((ocb * out_d_ + od) * out_h_ + oh) * out_w_) * kB;
                  for (std::int64_t ic = 0; ic < ic_count; ++ic) {
                    const float* splane =
                        padded + ((ic * dp + id) * hp + ih) * wp + kw;
                    float* arow = acc.data() + ic * kB;
                    for (std::int64_t ow = 0; ow < out_w_; ++ow) {
                      const float sv = splane[ow * stride];
                      const float* d = drow + ow * kB;
                      for (int oc = 0; oc < kB; ++oc) {
                        arow[oc] += d[oc] * sv;
                      }
                    }
                  }
                }
              }
              float* wtile =
                  weight_grad.data() +
                  (((ocb * k + kd) * k + kh) * k + kw) * ic_count * kB;
              for (std::int64_t i = 0; i < ic_count * kB; ++i) {
                wtile[i] += acc[static_cast<std::size_t>(i)];
              }
            }
          }
        }
      },
      grain);
}

void Conv3d::backward_data_blocked(const Tensor& ddst, Tensor& dsrc,
                                   std::span<float> scratch,
                                   runtime::ThreadPool& pool,
                                   std::size_t grain) const {
  const std::int64_t icb_count = config_.in_channels / kB;
  const std::int64_t ocb_count = config_.out_channels / kB;
  const std::int64_t k = config_.kernel;
  const std::int64_t stride = config_.stride;

  if (scratch.size() < weights_.size()) {
    throw std::logic_error("Conv3d: backward scratch smaller than "
                           "backward_scratch_floats()");
  }

  // Transpose every 16ic x 16oc weight tile into 16oc x 16ic once per
  // step so the gather kernel broadcasts ddst lanes against contiguous
  // ic rows — the exact mirror of the forward kernel's access pattern.
  float* const wt_base = scratch.data();
  const std::int64_t tiles = ocb_count * icb_count * k * k * k;
  const std::size_t transpose_grain = std::max<std::size_t>(
      weights_.size() <= 4096 ? static_cast<std::size_t>(tiles) : 1, grain);
  pool.parallel_for(
      static_cast<std::size_t>(tiles),
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t t = begin; t < end; ++t) {
          const float* w =
              weights_.data() + static_cast<std::int64_t>(t) * kB * kB;
          float* o = wt_base + static_cast<std::int64_t>(t) * kB * kB;
          for (int ic = 0; ic < kB; ++ic) {
            for (int oc = 0; oc < kB; ++oc) o[oc * kB + ic] = w[ic * kB + oc];
          }
        }
      },
      transpose_grain);

  // Gather form: each (icb, id) task produces its unpadded dsrc rows
  // whole — accumulate into a local zeroed row, then store once. Every
  // dsrc element is written exactly once (rows no output tap reaches
  // store the zeroed accumulator), so there is no volume-wide zero
  // fill, no scatter read-modify-write, no copy-out, and the pass
  // fully overwrites dsrc — safe on reused planner buffers. The
  // ocb -> kd -> kh -> kw summation order is fixed per row and
  // independent of the thread count.
  pool.parallel_for(
      static_cast<std::size_t>(icb_count * in_d_),
      [&](std::size_t begin, std::size_t end, std::size_t) {
        std::vector<float> acc(static_cast<std::size_t>(in_w_) * kB);
        std::vector<std::int64_t> kd_tap(static_cast<std::size_t>(k));
        std::vector<std::int64_t> od_tap(static_cast<std::size_t>(k));
        for (std::size_t job = begin; job < end; ++job) {
          const std::int64_t icb = static_cast<std::int64_t>(job) / in_d_;
          const std::int64_t id = static_cast<std::int64_t>(job) % in_d_;
          // Depth taps reaching this input plane: kd with
          // od = (id + pad_d.lo - kd) / stride integral and in range.
          std::int64_t taps = 0;
          for (std::int64_t kd = 0; kd < k; ++kd) {
            const std::int64_t num = id + pad_d_.lo - kd;
            if (num < 0 || num % stride != 0) continue;
            const std::int64_t od = num / stride;
            if (od >= out_d_) continue;
            kd_tap[static_cast<std::size_t>(taps)] = kd;
            od_tap[static_cast<std::size_t>(taps)] = od;
            ++taps;
          }
          for (std::int64_t ih = 0; ih < in_h_; ++ih) {
            std::fill(acc.begin(), acc.end(), 0.0f);
            for (std::int64_t ocb = 0; ocb < ocb_count; ++ocb) {
              for (std::int64_t tap = 0; tap < taps; ++tap) {
                const std::int64_t kd = kd_tap[static_cast<std::size_t>(tap)];
                const std::int64_t od = od_tap[static_cast<std::size_t>(tap)];
                for (std::int64_t kh = 0; kh < k; ++kh) {
                  const std::int64_t hnum = ih + pad_h_.lo - kh;
                  if (hnum < 0 || hnum % stride != 0) continue;
                  const std::int64_t oh = hnum / stride;
                  if (oh >= out_h_) continue;
                  const float* drow =
                      ddst.data() +
                      (((ocb * out_d_ + od) * out_h_ + oh) * out_w_) * kB;
                  const float* wt_tap =
                      wt_base +
                      ((((ocb * icb_count + icb) * k + kd) * k + kh) * k) *
                          kB * kB;
                  for (std::int64_t kw = 0; kw < k; ++kw) {
                    // Edge-trimmed output window keeping
                    // iw = ow * stride + kw - pad_w.lo inside [0, in_w).
                    const std::int64_t lo_num = pad_w_.lo - kw;
                    const std::int64_t ow_lo =
                        lo_num > 0 ? (lo_num + stride - 1) / stride : 0;
                    const std::int64_t hi_num = in_w_ - 1 + pad_w_.lo - kw;
                    if (hi_num < 0) continue;
                    const std::int64_t ow_hi =
                        std::min(out_w_, hi_num / stride + 1);
                    const std::int64_t count = ow_hi - ow_lo;
                    if (count <= 0) continue;
                    micro_bwd_gather_row(
                        acc.data() +
                            (ow_lo * stride + kw - pad_w_.lo) * kB,
                        drow + ow_lo * kB, wt_tap + kw * kB * kB, count,
                        stride);
                  }
                }
              }
            }
            float* trow = dsrc.data() +
                          (((icb * in_d_ + id) * in_h_ + ih) * in_w_) * kB;
            std::memcpy(trow, acc.data(),
                        static_cast<std::size_t>(in_w_) * kB *
                            sizeof(float));
          }
        }
      },
      grain);
}

void Conv3d::backward_data_plain_src(const Tensor& ddst, Tensor& dsrc,
                                     runtime::ThreadPool& pool) const {
  // Cold path: the first layer's input difference signal is only
  // needed when a Conv3d with IC < 16 sits mid-network, which the
  // CosmoFlow topology never does. Use the reference kernel on plain
  // layouts.
  (void)pool;
  const Tensor plain_w = plain_weights();
  const Tensor plain_ddst =
      tensor::from_blocked_activation(ddst, config_.out_channels);
  conv3d_backward_data_reference(plain_ddst, plain_w, config_.stride, pad_d_,
                                 pad_h_, pad_w_, dsrc);
}

}  // namespace cf::dnn
