// CosmoFlow network topologies (§III-A).
//
// The canonical 128^3 network: 7 conv layers (channel counts multiples
// of 16 for AVX-512 vectorization), 3 average-pooling stride-2
// down-samplers, 3 dense layers, leaky-ReLU activations everywhere, no
// batch-norm, 3 outputs. The widths below reproduce the paper's
// published aggregates: 7,054,259 parameters (28.2 MB vs the paper's
// "slightly more than seven million" / 28.15 MB) and 68.4 Gflop per
// sample fwd+bwd (vs 69.33) — both pinned by unit tests.
//
// cosmoflow_64_baseline() is the Ravanbakhsh et al. (2017) starting
// point: 64^3 input, two predicted parameters. cosmoflow_scaled()
// shrinks the input for single-core training studies while keeping the
// architecture family identical.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dnn/network.hpp"
#include "runtime/rng.hpp"

namespace cf::core {

struct ConvSpec {
  std::int64_t out_channels = 16;
  std::int64_t kernel = 3;
  std::int64_t stride = 1;
  bool pool_after = false;  // AvgPool3d k2 s2 following the activation
};

struct TopologyConfig {
  std::string name;
  std::int64_t input_dhw = 128;
  std::vector<ConvSpec> convs;
  /// Hidden dense widths; the output layer is appended automatically.
  std::vector<std::int64_t> dense_hidden;
  std::int64_t outputs = 3;
  float leaky_slope = 0.01f;
};

/// The canonical 128^3 / 3-parameter network of the paper.
TopologyConfig cosmoflow_128();

/// Ravanbakhsh et al. (2017) baseline: 64^3 input, 2 parameters.
TopologyConfig cosmoflow_64_baseline();

/// Architecture-preserving reduction for small inputs (dhw in
/// {8, 16, 32, 64}); used by the convergence/accuracy experiments on
/// this single-core machine.
TopologyConfig cosmoflow_scaled(std::int64_t input_dhw);

/// Picks the topology matching an input size: the canonical network
/// for 128, the scaled variants otherwise.
TopologyConfig topology_for_input(std::int64_t input_dhw);

/// Looks up a stock topology by preset name — the --preset flag of
/// train_cosmoflow and bench_fig3_breakdown: "cosmoflow-128" (the
/// paper's canonical network), "cosmoflow-64" / "-32" / "-16" / "-8"
/// (the scaled variants) or "ravanbakhsh-64". Throws on unknown names.
TopologyConfig preset_topology(const std::string& name);

/// A residual / multi-head variant exercising the graph IR end to end
/// (DESIGN.md §2.8): two conv+pool stages into a residual block
/// (conv -> act -> conv, summed with the block input via Add, then
/// activated), a GlobalAvgPool — making the dense head input-size
/// agnostic, the enabler for Network::make_shape_view — a dense trunk
/// and one dense output head per head_outputs entry.
struct ResidualTopologyConfig {
  std::string name = "cosmoflow-residual";
  std::int64_t input_dhw = 32;
  std::int64_t width = 32;  // residual block channels (multiple of 16)
  std::int64_t trunk = 64;  // dense trunk width
  /// Output widths, one dense head per entry.
  std::vector<std::int64_t> head_outputs = {3, 1};
  float leaky_slope = 0.01f;
};

/// The stock residual demo topology (32^3 input, heads {3, 1}).
ResidualTopologyConfig cosmoflow_residual();

/// Builds and finalizes the network; parameters are deterministically
/// initialized (He for convs, Xavier for dense) from `seed`. By default
/// the network fuses every Conv3d/Dense → LeakyRelu pair into the
/// producer's epilogue (bitwise identical to the unfused graph);
/// `fuse_eltwise = false` keeps the standalone activation layers.
/// `memplan` likewise defaults to the liveness-planned diff/scratch
/// arenas (placement-only, bitwise identical; DESIGN.md §2.2);
/// `memplan = false` keeps per-layer buffers.
dnn::Network build_network(const TopologyConfig& config, std::uint64_t seed,
                           bool fuse_eltwise = true, bool memplan = true);

/// Builds, finalizes and deterministically initializes the residual
/// multi-head network (same RNG streaming as build_network: He for
/// convs, Xavier for dense, one stream per layer in schedule order).
dnn::Network build_residual_network(const ResidualTopologyConfig& config,
                                    std::uint64_t seed,
                                    bool fuse_eltwise = true,
                                    bool memplan = true);

/// Input tensor shape of a topology: plain {1, dhw, dhw, dhw}.
tensor::Shape input_shape(const TopologyConfig& config);
tensor::Shape input_shape(const ResidualTopologyConfig& config);

}  // namespace cf::core
