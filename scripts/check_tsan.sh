#!/usr/bin/env sh
# ThreadSanitizer gate for the concurrent machinery: builds the repo
# with -DCOSMOFLOW_TSAN=ON into build-tsan/ and runs the test suites
# that exercise cross-thread hand-offs — the MlComm collectives and
# helper thread (sync + async bucketed allreduce), the ThreadPool
# dispatch, and the overlapped trainer step loop. Any data race TSan
# reports fails the script.
#
# Usage: check_tsan.sh [repo_root]
set -eu

root="${1:-$(dirname "$0")/..}"
cd "$root" || exit 1

build_dir="build-tsan"

cmake -B "$build_dir" -S . \
  -DCOSMOFLOW_TSAN=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "$build_dir" --target cosmoflow_tests -j "$(nproc)"

# halt_on_error makes the run fail on the first race instead of only
# logging it; second_deadlock_stack improves lock-order reports.
export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"

"$build_dir/tests/cosmoflow_tests" \
  --gtest_filter='MlComm*.*:MlCommAsync*.*:ThreadPool*.*:OverlapBitwise*.*:OverlapTelemetry*.*:TrainerDeterminism*.*'

echo "TSan: no data races detected"
