#include "data/sample_pool.hpp"

#include <atomic>
#include <utility>

#include "obs/metrics.hpp"

namespace cf::data {

namespace {

// Process-wide cumulative counts backing the last-write-wins gauges;
// shared by every pool so concurrent pools (train + val pipelines)
// don't stomp each other's totals.
std::atomic<std::int64_t> g_hits{0};
std::atomic<std::int64_t> g_allocs{0};

obs::Gauge& hits_gauge() {
  static obs::Gauge& g =
      obs::Registry::global().gauge("data/pipeline/pool_hits");
  return g;
}

obs::Gauge& allocs_gauge() {
  static obs::Gauge& g =
      obs::Registry::global().gauge("data/pipeline/pool_allocs");
  return g;
}

}  // namespace

Sample SamplePool::acquire() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!free_.empty()) {
      Sample sample = std::move(free_.back());
      free_.pop_back();
      hits_gauge().set(static_cast<double>(
          g_hits.fetch_add(1, std::memory_order_relaxed) + 1));
      return sample;
    }
  }
  allocs_gauge().set(static_cast<double>(
      g_allocs.fetch_add(1, std::memory_order_relaxed) + 1));
  return Sample{};
}

void SamplePool::release(Sample&& sample) {
  if (sample.volume.size() == 0 || !sample.volume.owns_storage()) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  free_.push_back(std::move(sample));
}

std::size_t SamplePool::free_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return free_.size();
}

}  // namespace cf::data
