// MlComm: the Cray CPE ML Plugin substitute (DESIGN.md §1).
//
// The paper parallelizes training with an MPI-based plugin exposing
// three operations: initial model broadcast, synchronous gradient
// aggregation (a fully-synchronous allreduce-average) and scalar loss
// averaging. Here MPI ranks are modelled as threads of one process
// sharing an MlComm object; every collective is phrased exactly as its
// message-passing counterpart:
//
//  * kReduceScatter — each rank owns 1/k of the vector, reduces it
//    across all ranks in fixed rank order, then all-gathers the owned
//    pieces. This is the decentralized, every-rank-is-a-worker design
//    of the CPE ML Plugin (no parameter servers, §III-D), and is
//    bitwise deterministic.
//  * kCentralRoot — rank 0 reduces everything and redistributes: the
//    centralized gRPC-style scheme the paper cites as non-scalable
//    (Mathuriya et al. 2017), kept as the algorithmic baseline.
//
// Chunked processing emulates the plugin's helper-thread pipelining
// granularity, and an injectable per-rank delay hook reproduces the
// "straggler" effect studied in §II-C/§VI-B.
//
// Beyond the blocking collectives, MlComm implements the plugin's
// helper-thread model (§III-D): allreduce_average_async() posts a
// bucket descriptor to a queue drained by one helper thread per
// communicator, which reduces each bucket with the same fixed-rank-
// order chunk loop as the synchronous path — results are bitwise
// identical — while the rank threads keep computing backprop. wait()
// blocks only for whatever the overlap failed to hide; the hidden vs
// exposed split is recorded in the obs registry (comm/hidden/r{r},
// comm/exposed/r{r}, comm/buckets, comm/overlap_fraction/r{r}).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "runtime/barrier.hpp"
#include "runtime/timer.hpp"

namespace cf::comm {

enum class AllreduceAlgorithm { kReduceScatter, kCentralRoot };

struct MlCommConfig {
  AllreduceAlgorithm algorithm = AllreduceAlgorithm::kReduceScatter;
  /// Reduction work is processed in chunks of this many floats,
  /// mirroring the helper-thread pipelining granularity of the plugin.
  std::size_t chunk_elems = 1 << 16;
  /// Test hook: invoked by each rank before it contributes to a
  /// collective (straggler injection).
  std::function<void(int rank)> pre_reduce_hook;
  /// Bench hook: sleep this long per reduction chunk to simulate a
  /// slower interconnect (applies to the synchronous reduce-scatter
  /// loop and to the helper thread's bucket loop alike, so overlap
  /// benches can dial in a realistic comm/compute ratio).
  std::chrono::nanoseconds simulated_chunk_delay{0};
};

class MlComm;

/// Ticket for one in-flight bucket posted with
/// allreduce_average_async(); redeem exactly once with
/// RankHandle::wait(). Default-constructed tickets are invalid.
class PendingReduce {
 public:
  PendingReduce() = default;
  bool valid() const noexcept { return valid_; }

 private:
  friend class MlComm;
  friend class RankHandle;
  std::uint64_t seq_ = 0;       // bucket sequence number (global FIFO)
  double post_seconds_ = 0.0;   // communicator-clock time of the post
  bool valid_ = false;
};

/// Per-rank interface; each rank thread holds one.
class RankHandle {
 public:
  int rank() const noexcept { return rank_; }
  int size() const noexcept;

  void barrier();

  /// Copies root's buffer into every other rank's buffer. All ranks
  /// pass spans of identical size.
  void broadcast(std::span<float> data, int root = 0);

  /// In-place sum-then-divide-by-k over all ranks (the
  /// mc.gradients() call of Algorithm 2). Deterministic.
  void allreduce_average(std::span<float> data);

  /// Nonblocking allreduce-average: posts `data` as one bucket to the
  /// communicator's helper thread and returns immediately. Every rank
  /// must post the same sequence of equally-sized buckets (the i-th
  /// async call of each rank forms one collective); the result lands
  /// in place once wait() returns. Bitwise identical to
  /// allreduce_average over the same elements, regardless of how a
  /// vector is split into buckets. `data` must stay valid and
  /// untouched until wait().
  PendingReduce allreduce_average_async(std::span<float> data);

  /// Blocks until the bucket behind `pending` is reduced, then records
  /// the hidden/exposed timing split for this rank. Invalidates the
  /// ticket.
  void wait(PendingReduce& pending);

  /// Averaged scalar (validation-loss averaging).
  double allreduce_average_scalar(double value);

  /// Wall-clock spent inside collectives on this rank — a snapshot of
  /// the `comm/collective/r<rank>` Stat in the obs registry (each
  /// MlComm resets its ranks' stats at construction). Async buckets
  /// contribute only their *exposed* (blocked-in-wait) portion here.
  runtime::TimeStats comm_time() const;
  void reset_comm_time();

  /// Async-bucket time this rank spent blocked in wait() (exposed on
  /// the critical path) vs hidden behind compute — snapshots of the
  /// comm/exposed/r<rank> and comm/hidden/r<rank> Stats.
  runtime::TimeStats exposed_comm_time() const;
  runtime::TimeStats hidden_comm_time() const;

 private:
  friend class MlComm;
  RankHandle(MlComm* comm, int rank) : comm_(comm), rank_(rank) {}

  MlComm* comm_;
  int rank_;
};

class MlComm {
 public:
  explicit MlComm(int nranks, MlCommConfig config = {});
  ~MlComm();

  int size() const noexcept { return nranks_; }
  RankHandle& handle(int rank);

  /// Convenience harness: spawns `nranks` threads, gives each its
  /// handle, joins. The first exception thrown by any rank is
  /// rethrown.
  void run(const std::function<void(RankHandle&)>& body);

 private:
  friend class RankHandle;

  /// One rank's contribution to an async bucket collective.
  struct BucketPost {
    float* data = nullptr;
    std::size_t size = 0;
  };
  /// Completion record a bucket leaves behind for its waiters.
  struct BucketDone {
    double completed_seconds = 0.0;
    int waiters_left = 0;  // erased when every rank has waited
  };

  void publish(int rank, float* data, std::size_t size);
  void do_broadcast(int rank, std::span<float> data, int root);
  void do_allreduce(int rank, std::span<float> data);
  void reduce_scatter_allgather(int rank, std::span<float> data);
  void central_root(int rank, std::span<float> data);
  void check_uniform_size_locked(std::size_t size);

  PendingReduce post_async(int rank, std::span<float> data);
  void wait_async(int rank, PendingReduce& pending);
  void helper_loop();
  void reduce_bucket(const std::vector<BucketPost>& posts);
  void set_async_error_locked(std::exception_ptr error);
  void simulate_chunk_delay() const;

  int nranks_;
  MlCommConfig config_;
  runtime::Barrier barrier_;
  std::vector<RankHandle> handles_;
  std::vector<float*> slots_;
  std::vector<std::size_t> slot_sizes_;
  std::vector<float> reduce_buffer_;
  std::vector<double> scalar_slots_;

  // --- async bucket queue, serviced by the helper thread -----------
  runtime::Stopwatch comm_clock_;  // shared time base for post/complete
  std::mutex async_mutex_;
  std::condition_variable async_work_cv_;  // wakes the helper
  std::condition_variable async_done_cv_;  // wakes waiting ranks
  std::vector<std::deque<BucketPost>> async_posts_;  // per rank, FIFO
  std::vector<std::uint64_t> posted_count_;          // per rank
  std::uint64_t completed_count_ = 0;
  std::unordered_map<std::uint64_t, BucketDone> completed_;
  std::vector<float> async_scratch_;  // helper-thread private
  std::exception_ptr async_error_;
  std::thread helper_;          // started lazily on the first post
  bool helper_stop_ = false;

  // Telemetry handles (obs registry), looked up once at construction.
  std::vector<obs::Stat*> comm_stats_;     // comm/collective/r<rank>
  std::vector<obs::Stat*> exposed_stats_;  // comm/exposed/r<rank>
  std::vector<obs::Stat*> hidden_stats_;   // comm/hidden/r<rank>
  std::vector<obs::Gauge*> overlap_gauges_;  // comm/overlap_fraction/r<r>
  obs::Counter* allreduce_calls_ = nullptr;
  obs::Counter* allreduce_bytes_ = nullptr;
  obs::Counter* allreduce_chunks_ = nullptr;
  obs::Counter* bucket_count_ = nullptr;
};

}  // namespace cf::comm
