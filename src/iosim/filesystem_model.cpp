#include "iosim/filesystem_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cf::iosim {

FilesystemSpec FilesystemSpec::cori_lustre() {
  FilesystemSpec spec;
  spec.name = "cori-lustre";
  // Calibrated to the paper's measured step times: ~53 MB/s/node at
  // 128 clients (179 ms step vs 129 ms compute) and ~42 MB/s/node at
  // 1024 (58% efficiency) imply S(n) ~ 0.086 * n^0.9 GB/s — far below
  // the filesystem's 700 GB/s streaming peak, as expected for shared
  // random reads over a 64-OST stripe.
  spec.prefactor_gbps = 0.0863;
  spec.gamma = 0.897;
  spec.aggregate_max_gbps = 280.0;
  spec.node_max_gbps = 2.0;  // single-client ceiling over 64 OSTs
  spec.straggler_sigma = 0.35;
  return spec;
}

FilesystemSpec FilesystemSpec::cori_datawarp() {
  FilesystemSpec spec;
  spec.name = "cori-datawarp";
  // 1.7 TB/s measured peak over 288 DataWarp nodes; supply is linear
  // in clients until the peak. Demand at 8192 nodes is 8192 * 62 MB/s
  // = 0.5 TB/s — comfortably inside supply, hence no I/O knee.
  spec.prefactor_gbps = 2.0;
  spec.gamma = 1.0;
  spec.aggregate_max_gbps = 1700.0;
  spec.node_max_gbps = 2.0;
  spec.straggler_sigma = 0.10;
  return spec;
}

FilesystemSpec FilesystemSpec::piz_daint_lustre() {
  FilesystemSpec spec;
  spec.name = "pizdaint-lustre";
  // 40 OSTs / 112 GB/s peak, 16-OST striping, heavily shared;
  // calibrated to the 44% efficiency at 512 nodes the paper reports
  // (P100 nodes compute a step in ~179 ms).
  spec.prefactor_gbps = 0.090;
  spec.gamma = 0.769;
  spec.aggregate_max_gbps = 30.0;
  spec.node_max_gbps = 1.5;
  spec.straggler_sigma = 0.40;
  return spec;
}

FilesystemModel::FilesystemModel(FilesystemSpec spec)
    : spec_(std::move(spec)) {
  if (spec_.prefactor_gbps <= 0.0 || spec_.gamma <= 0.0 ||
      spec_.gamma > 1.0 || spec_.aggregate_max_gbps <= 0.0 ||
      spec_.node_max_gbps <= 0.0 || spec_.straggler_sigma < 0.0) {
    throw std::invalid_argument("FilesystemModel: bad spec");
  }
  obs::Registry& registry = obs::Registry::global();
  reads_counter_ = &registry.counter("iosim/reads_sampled");
  stalls_counter_ = &registry.counter("iosim/straggler_stalls");
  stall_stat_ = &registry.stat("iosim/stall_seconds");
}

double FilesystemModel::aggregate_bandwidth_gbps(int nodes) const {
  if (nodes <= 0) throw std::invalid_argument("nodes must be positive");
  const double n = static_cast<double>(nodes);
  const double supply = spec_.prefactor_gbps * std::pow(n, spec_.gamma);
  // A single client can also be NIC-bound.
  return std::min({supply, spec_.aggregate_max_gbps,
                   n * spec_.node_max_gbps});
}

double FilesystemModel::node_bandwidth_gbps(int nodes) const {
  return aggregate_bandwidth_gbps(nodes) / static_cast<double>(nodes);
}

double FilesystemModel::read_seconds(int nodes, double mbytes) const {
  if (mbytes < 0.0) throw std::invalid_argument("mbytes must be >= 0");
  return mbytes / 1000.0 / node_bandwidth_gbps(nodes);
}

double FilesystemModel::sample_read_seconds(int nodes, double mbytes,
                                            runtime::Rng& rng) const {
  reads_counter_->add(1);
  const double expected = read_seconds(nodes, mbytes);
  if (spec_.straggler_sigma == 0.0) return expected;
  // Lognormal with unit mean: exp(sigma * z - sigma^2 / 2).
  const double sigma = spec_.straggler_sigma;
  const double z = rng.normal();
  const double sampled = expected * std::exp(sigma * z - 0.5 * sigma * sigma);
  // A read 50% over expectation counts as a straggler stall — the tail
  // the paper blames for uneven OST delivery (§VI-A).
  if (sampled > 1.5 * expected) {
    stalls_counter_->add(1);
    stall_stat_->add(sampled - expected);
  }
  return sampled;
}

double bw_min_mb_per_s(double batch_per_node, double sample_mbytes,
                       double step_seconds) {
  if (step_seconds <= 0.0) {
    throw std::invalid_argument("bw_min: step_seconds must be > 0");
  }
  return batch_per_node * sample_mbytes / step_seconds;
}

double nodes_fed_per_ost(double ost_gbps, double bw_min_mb_per_s_value) {
  if (bw_min_mb_per_s_value <= 0.0) {
    throw std::invalid_argument("nodes_fed_per_ost: BWmin must be > 0");
  }
  return ost_gbps * 1000.0 / bw_min_mb_per_s_value;
}

}  // namespace cf::iosim
