# Empty dependencies file for bench_io_model.
# This may be replaced when dependencies are built.
