// Dense float32 tensor with 64-byte-aligned storage.
//
// Activations, weights and gradients are all f32 (the paper trains in
// single precision). A Tensor is a shape plus owned storage; layers
// interpret the same storage in either plain (row-major) or blocked
// (nCdhw16c) layouts — see tensor/layout.hpp.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "runtime/aligned_buffer.hpp"
#include "tensor/shape.hpp"

namespace cf::tensor {

class Tensor {
 public:
  Tensor() = default;

  /// Allocates storage for `shape`; contents are zero-initialized.
  explicit Tensor(Shape shape);

  /// Allocates and copies `values` (size must match shape.numel()).
  Tensor(Shape shape, std::span<const float> values);

  Tensor(Tensor&&) noexcept = default;
  Tensor& operator=(Tensor&&) noexcept = default;
  Tensor(const Tensor&) = delete;
  Tensor& operator=(const Tensor&) = delete;

  /// Deep copy (explicit, to keep accidental copies out of kernels).
  Tensor clone() const;

  const Shape& shape() const noexcept { return shape_; }
  std::size_t size() const noexcept {
    return view_ != nullptr ? view_size_ : data_.size();
  }
  bool empty() const noexcept { return size() == 0; }

  float* data() noexcept { return view_ != nullptr ? view_ : data_.data(); }
  const float* data() const noexcept {
    return view_ != nullptr ? view_ : data_.data();
  }

  std::span<float> values() noexcept { return {data(), size()}; }
  std::span<const float> values() const noexcept { return {data(), size()}; }

  float& operator[](std::size_t i) noexcept { return data()[i]; }
  float operator[](std::size_t i) const noexcept { return data()[i]; }

  /// Row-major multi-index access (bounds-checked); test/debug helper.
  float& at(std::initializer_list<std::int64_t> index);
  float at(std::initializer_list<std::int64_t> index) const;

  void fill(float value) noexcept;
  void zero() noexcept { fill(0.0f); }

  /// Reinterpret the same storage with a new shape of equal numel.
  void reshape(Shape shape);

  /// Rebinds this tensor onto externally owned storage (the network's
  /// parameter/gradient arena), copying the current contents over and
  /// releasing the owned buffer. `storage.size()` must equal numel and
  /// must outlive the tensor. Kernels keep working unchanged — they
  /// only ever touch data()/values().
  void rebind(std::span<float> storage);

  /// Like rebind(), but without the content copy: the tensor simply
  /// starts reading/writing `storage` as-is. Used where the target
  /// already holds the authoritative values (a shape view aliasing its
  /// parent network's weight arena) — a copy there would clobber them
  /// and race with concurrent readers.
  void alias(std::span<float> storage);

  /// False once rebind()/alias() has pointed the tensor at an arena
  /// segment.
  bool owns_storage() const noexcept { return view_ == nullptr; }

  std::vector<float> to_vector() const;

 private:
  std::size_t flat_index(std::initializer_list<std::int64_t> index) const;

  Shape shape_;
  runtime::AlignedBuffer<float> data_;
  // Non-owning view set by rebind(); data()/size() prefer it.
  float* view_ = nullptr;
  std::size_t view_size_ = 0;
};

}  // namespace cf::tensor
