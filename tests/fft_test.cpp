// FFT validation: against a naive DFT, roundtrips, Parseval, and the
// frequency indexing helper.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "cosmo/fft3d.hpp"
#include "runtime/rng.hpp"
#include "runtime/thread_pool.hpp"

namespace cf::cosmo {
namespace {

constexpr double kPi = 3.14159265358979323846;

std::vector<std::complex<double>> naive_dft(
    const std::vector<std::complex<float>>& in, bool inverse) {
  const std::size_t n = in.size();
  std::vector<std::complex<double>> out(n);
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double angle = sign * 2.0 * kPi * static_cast<double>(k * j) /
                           static_cast<double>(n);
      acc += std::complex<double>(in[j]) *
             std::complex<double>(std::cos(angle), std::sin(angle));
    }
    out[k] = acc;
  }
  return out;
}

class Fft1dVsDft : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(Fft1dVsDft, ForwardMatchesNaiveDft) {
  const std::int64_t n = GetParam();
  runtime::Rng rng(1, static_cast<std::uint64_t>(n));
  std::vector<std::complex<float>> data(static_cast<std::size_t>(n));
  for (auto& v : data) v = {rng.normal(), rng.normal()};
  const auto expected = naive_dft(data, false);

  fft_1d(data.data(), n, false);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_NEAR(data[i].real(), expected[i].real(), 1e-3) << "bin " << i;
    ASSERT_NEAR(data[i].imag(), expected[i].imag(), 1e-3) << "bin " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, Fft1dVsDft,
                         ::testing::Values<std::int64_t>(1, 2, 4, 8, 16, 32,
                                                         64));

TEST(Fft1d, InverseRoundTrip) {
  const std::int64_t n = 128;
  runtime::Rng rng(2);
  std::vector<std::complex<float>> data(static_cast<std::size_t>(n));
  for (auto& v : data) v = {rng.normal(), rng.normal()};
  const auto original = data;

  fft_1d(data.data(), n, false);
  fft_1d(data.data(), n, true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    // Inverse is unnormalized: expect n * original.
    ASSERT_NEAR(data[i].real(), n * original[i].real(), 1e-2);
    ASSERT_NEAR(data[i].imag(), n * original[i].imag(), 1e-2);
  }
}

TEST(Fft1d, RejectsNonPowerOfTwo) {
  std::vector<std::complex<float>> data(12);
  EXPECT_THROW(fft_1d(data.data(), 12, false), std::invalid_argument);
  EXPECT_THROW(fft_1d(data.data(), 0, false), std::invalid_argument);
}

TEST(Fft3d, RoundTripIsIdentity) {
  const std::int64_t n = 16;
  runtime::ThreadPool pool(2);
  runtime::Rng rng(3);
  std::vector<std::complex<float>> grid(static_cast<std::size_t>(n * n * n));
  for (auto& v : grid) v = {rng.normal(), 0.0f};
  const auto original = grid;

  Fft3d fft(n);
  fft.forward(grid.data(), pool);
  fft.inverse(grid.data(), pool);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    ASSERT_NEAR(grid[i].real(), original[i].real(), 1e-3);
    ASSERT_NEAR(grid[i].imag(), original[i].imag(), 1e-3);
  }
}

TEST(Fft3d, ImpulseTransformsToConstant) {
  const std::int64_t n = 8;
  runtime::ThreadPool pool(1);
  std::vector<std::complex<float>> grid(static_cast<std::size_t>(n * n * n),
                                        {0.0f, 0.0f});
  grid[0] = {1.0f, 0.0f};
  Fft3d fft(n);
  fft.forward(grid.data(), pool);
  for (const auto& v : grid) {
    ASSERT_NEAR(v.real(), 1.0f, 1e-5);
    ASSERT_NEAR(v.imag(), 0.0f, 1e-5);
  }
}

TEST(Fft3d, SinglePlaneWaveHitsOneBin) {
  const std::int64_t n = 8;
  runtime::ThreadPool pool(1);
  std::vector<std::complex<float>> grid(static_cast<std::size_t>(n * n * n));
  // exp(+2 pi i * (2x + y) / n) should land in bin (kx=2, ky=1, kz=0)
  // with amplitude n^3.
  for (std::int64_t z = 0; z < n; ++z) {
    for (std::int64_t y = 0; y < n; ++y) {
      for (std::int64_t x = 0; x < n; ++x) {
        const double phase = 2.0 * kPi * (2.0 * x + 1.0 * y) / n;
        grid[static_cast<std::size_t>((z * n + y) * n + x)] = {
            static_cast<float>(std::cos(phase)),
            static_cast<float>(std::sin(phase))};
      }
    }
  }
  Fft3d fft(n);
  fft.forward(grid.data(), pool);
  for (std::int64_t z = 0; z < n; ++z) {
    for (std::int64_t y = 0; y < n; ++y) {
      for (std::int64_t x = 0; x < n; ++x) {
        const auto v = grid[static_cast<std::size_t>((z * n + y) * n + x)];
        const double expected = (x == 2 && y == 1 && z == 0) ? n * n * n : 0;
        ASSERT_NEAR(v.real(), expected, 2e-2)
            << "(" << x << "," << y << "," << z << ")";
        ASSERT_NEAR(v.imag(), 0.0, 2e-2);
      }
    }
  }
}

TEST(Fft3d, ParsevalHolds) {
  const std::int64_t n = 16;
  runtime::ThreadPool pool(2);
  runtime::Rng rng(5);
  std::vector<std::complex<float>> grid(static_cast<std::size_t>(n * n * n));
  double real_energy = 0.0;
  for (auto& v : grid) {
    v = {rng.normal(), 0.0f};
    real_energy += std::norm(std::complex<double>(v));
  }
  Fft3d fft(n);
  fft.forward(grid.data(), pool);
  double freq_energy = 0.0;
  for (const auto& v : grid) freq_energy += std::norm(std::complex<double>(v));
  EXPECT_NEAR(freq_energy / (n * n * n), real_energy,
              1e-4 * real_energy);
}

TEST(FftFreqIndex, StandardOrdering) {
  EXPECT_EQ(fft_freq_index(0, 8), 0);
  EXPECT_EQ(fft_freq_index(1, 8), 1);
  EXPECT_EQ(fft_freq_index(4, 8), 4);   // Nyquist
  EXPECT_EQ(fft_freq_index(5, 8), -3);
  EXPECT_EQ(fft_freq_index(7, 8), -1);
}

TEST(Fft3d, RejectsBadSize) {
  EXPECT_THROW(Fft3d(12), std::invalid_argument);
}

}  // namespace
}  // namespace cf::cosmo
