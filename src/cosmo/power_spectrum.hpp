// Linear matter power spectrum P(k; OmegaM, sigma8, ns).
//
// The paper varies exactly three cosmological parameters when building
// its training suite (§IV-C): OmegaM (matter fraction; flat universe,
// OmegaL = 1 - OmegaM), sigma8 (fluctuation amplitude in 8 Mpc/h
// spheres) and ns (scalar spectral index). We model the transfer
// function with the BBKS fit (Bardeen et al. 1986) with shape parameter
// Gamma = OmegaM * h — the same parameter dependence MUSIC feeds the
// initial conditions from — and normalize the amplitude numerically so
// the top-hat variance at R = 8 Mpc/h equals sigma8^2.
//
// Units: k in h/Mpc, P in (Mpc/h)^3.
#pragma once

#include <cstdint>

namespace cf::cosmo {

struct CosmoParams {
  double omega_m = 0.3089;  // Planck 2015 central values (§IV-C)
  double sigma8 = 0.8159;
  double ns = 0.9667;
  double h = 0.6774;        // fixed in the paper's suite
  double omega_b = 0.0486;  // baryon fraction (Eisenstein-Hu model only)
};

/// Transfer-function fit. BBKS (Bardeen et al. 1986) is the default —
/// a pure shape-parameter fit, adequate for the paper's parameter
/// dependence; Eisenstein & Hu (1998, no-wiggle) adds the baryon
/// suppression MUSIC-grade initial conditions use.
enum class TransferModel { kBbks, kEisensteinHu };

/// Paper sampling ranges (§IV-C).
struct ParamRanges {
  double omega_m_lo = 0.25, omega_m_hi = 0.35;
  double sigma8_lo = 0.78, sigma8_hi = 0.95;
  double ns_lo = 0.9, ns_hi = 1.0;
};

class PowerSpectrum {
 public:
  explicit PowerSpectrum(CosmoParams params,
                         TransferModel model = TransferModel::kBbks);

  const CosmoParams& params() const noexcept { return params_; }
  TransferModel model() const noexcept { return model_; }

  /// Transfer function of the selected model, T(k -> 0) = 1.
  double transfer(double k) const;

  /// Normalized linear power spectrum at z = 0.
  double operator()(double k) const;

  /// Top-hat-filtered rms fluctuation at radius R (Mpc/h); sigma(8)
  /// equals params.sigma8 by construction.
  double sigma_r(double radius) const;

  double amplitude() const noexcept { return amplitude_; }

 private:
  double unnormalized(double k) const;
  double sigma_r_unnormalized_sq(double radius) const;
  double transfer_bbks(double k) const;
  double transfer_eisenstein_hu(double k) const;

  CosmoParams params_;
  TransferModel model_;
  double gamma_;       // BBKS shape parameter OmegaM * h
  double eh_sound_;    // EH98 no-wiggle sound horizon s (Mpc)
  double eh_alpha_;    // EH98 alpha_Gamma
  double amplitude_;   // normalization constant A
};

/// Spherical top-hat window in Fourier space.
double tophat_window(double x);

}  // namespace cf::cosmo
