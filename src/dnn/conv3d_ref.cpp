// Reference direct 3D convolution on plain layouts. Slow but obviously
// correct; the blocked engine is validated against these kernels in
// tests/conv3d_test.cpp.
#include <stdexcept>

#include "dnn/conv3d.hpp"
#include "tensor/shape.hpp"

namespace cf::dnn {

PadSpec resolve_pad(Padding mode, std::int64_t in, std::int64_t kernel,
                    std::int64_t stride) {
  if (mode == Padding::kValid) return {0, 0};
  const std::int64_t total = tensor::same_pad_total(in, kernel, stride);
  PadSpec pad;
  pad.lo = total / 2;
  pad.hi = total - pad.lo;
  return pad;
}

namespace {

struct Geometry {
  std::int64_t ic, id, ih, iw;
  std::int64_t oc, od, oh, ow;
  std::int64_t kd, kh, kw;
};

Geometry check_geometry(const tensor::Tensor& src,
                        const tensor::Tensor& weights, std::int64_t stride,
                        const PadSpec& pd, const PadSpec& ph,
                        const PadSpec& pw) {
  if (src.shape().rank() != 4 || weights.shape().rank() != 5) {
    throw std::invalid_argument("conv3d reference: bad ranks");
  }
  Geometry g{};
  g.ic = src.shape()[0];
  g.id = src.shape()[1];
  g.ih = src.shape()[2];
  g.iw = src.shape()[3];
  g.oc = weights.shape()[0];
  if (weights.shape()[1] != g.ic) {
    throw std::invalid_argument("conv3d reference: channel mismatch");
  }
  g.kd = weights.shape()[2];
  g.kh = weights.shape()[3];
  g.kw = weights.shape()[4];
  g.od = tensor::conv_out_dim(g.id, g.kd, stride, pd.total());
  g.oh = tensor::conv_out_dim(g.ih, g.kh, stride, ph.total());
  g.ow = tensor::conv_out_dim(g.iw, g.kw, stride, pw.total());
  return g;
}

}  // namespace

void conv3d_forward_reference(const tensor::Tensor& src,
                              const tensor::Tensor& weights,
                              const tensor::Tensor& bias, std::int64_t stride,
                              const PadSpec& pd, const PadSpec& ph,
                              const PadSpec& pw, tensor::Tensor& dst) {
  const Geometry g = check_geometry(src, weights, stride, pd, ph, pw);
  if (dst.shape() != tensor::Shape{g.oc, g.od, g.oh, g.ow}) {
    throw std::invalid_argument("conv3d reference: bad dst shape");
  }
  if (bias.shape() != tensor::Shape{g.oc}) {
    throw std::invalid_argument("conv3d reference: bad bias shape");
  }

  for (std::int64_t oc = 0; oc < g.oc; ++oc) {
    for (std::int64_t od = 0; od < g.od; ++od) {
      for (std::int64_t oh = 0; oh < g.oh; ++oh) {
        for (std::int64_t ow = 0; ow < g.ow; ++ow) {
          float acc = bias[static_cast<std::size_t>(oc)];
          for (std::int64_t ic = 0; ic < g.ic; ++ic) {
            for (std::int64_t kd = 0; kd < g.kd; ++kd) {
              const std::int64_t id = od * stride - pd.lo + kd;
              if (id < 0 || id >= g.id) continue;
              for (std::int64_t kh = 0; kh < g.kh; ++kh) {
                const std::int64_t ih = oh * stride - ph.lo + kh;
                if (ih < 0 || ih >= g.ih) continue;
                for (std::int64_t kw = 0; kw < g.kw; ++kw) {
                  const std::int64_t iw = ow * stride - pw.lo + kw;
                  if (iw < 0 || iw >= g.iw) continue;
                  acc += src.at({ic, id, ih, iw}) *
                         weights.at({oc, ic, kd, kh, kw});
                }
              }
            }
          }
          dst.at({oc, od, oh, ow}) = acc;
        }
      }
    }
  }
}

void conv3d_backward_data_reference(const tensor::Tensor& ddst,
                                    const tensor::Tensor& weights,
                                    std::int64_t stride, const PadSpec& pd,
                                    const PadSpec& ph, const PadSpec& pw,
                                    tensor::Tensor& dsrc) {
  const Geometry g = check_geometry(dsrc, weights, stride, pd, ph, pw);
  if (ddst.shape() != tensor::Shape{g.oc, g.od, g.oh, g.ow}) {
    throw std::invalid_argument("conv3d reference bwd-data: bad ddst shape");
  }
  dsrc.zero();
  for (std::int64_t oc = 0; oc < g.oc; ++oc) {
    for (std::int64_t od = 0; od < g.od; ++od) {
      for (std::int64_t oh = 0; oh < g.oh; ++oh) {
        for (std::int64_t ow = 0; ow < g.ow; ++ow) {
          const float diff = ddst.at({oc, od, oh, ow});
          for (std::int64_t ic = 0; ic < g.ic; ++ic) {
            for (std::int64_t kd = 0; kd < g.kd; ++kd) {
              const std::int64_t id = od * stride - pd.lo + kd;
              if (id < 0 || id >= g.id) continue;
              for (std::int64_t kh = 0; kh < g.kh; ++kh) {
                const std::int64_t ih = oh * stride - ph.lo + kh;
                if (ih < 0 || ih >= g.ih) continue;
                for (std::int64_t kw = 0; kw < g.kw; ++kw) {
                  const std::int64_t iw = ow * stride - pw.lo + kw;
                  if (iw < 0 || iw >= g.iw) continue;
                  dsrc.at({ic, id, ih, iw}) +=
                      diff * weights.at({oc, ic, kd, kh, kw});
                }
              }
            }
          }
        }
      }
    }
  }
}

void conv3d_backward_weights_reference(
    const tensor::Tensor& src, const tensor::Tensor& ddst,
    std::int64_t stride, const PadSpec& pd, const PadSpec& ph,
    const PadSpec& pw, tensor::Tensor& dweights, tensor::Tensor& dbias) {
  const Geometry g = check_geometry(src, dweights, stride, pd, ph, pw);
  if (ddst.shape() != tensor::Shape{g.oc, g.od, g.oh, g.ow}) {
    throw std::invalid_argument(
        "conv3d reference bwd-weights: bad ddst shape");
  }
  if (dbias.shape() != tensor::Shape{g.oc}) {
    throw std::invalid_argument("conv3d reference bwd-weights: bad dbias");
  }
  for (std::int64_t oc = 0; oc < g.oc; ++oc) {
    double bias_acc = 0.0;
    for (std::int64_t od = 0; od < g.od; ++od) {
      for (std::int64_t oh = 0; oh < g.oh; ++oh) {
        for (std::int64_t ow = 0; ow < g.ow; ++ow) {
          bias_acc += ddst.at({oc, od, oh, ow});
        }
      }
    }
    dbias[static_cast<std::size_t>(oc)] += static_cast<float>(bias_acc);
  }
  for (std::int64_t oc = 0; oc < g.oc; ++oc) {
    for (std::int64_t ic = 0; ic < g.ic; ++ic) {
      for (std::int64_t kd = 0; kd < g.kd; ++kd) {
        for (std::int64_t kh = 0; kh < g.kh; ++kh) {
          for (std::int64_t kw = 0; kw < g.kw; ++kw) {
            double acc = 0.0;
            for (std::int64_t od = 0; od < g.od; ++od) {
              const std::int64_t id = od * stride - pd.lo + kd;
              if (id < 0 || id >= g.id) continue;
              for (std::int64_t oh = 0; oh < g.oh; ++oh) {
                const std::int64_t ih = oh * stride - ph.lo + kh;
                if (ih < 0 || ih >= g.ih) continue;
                for (std::int64_t ow = 0; ow < g.ow; ++ow) {
                  const std::int64_t iw = ow * stride - pw.lo + kw;
                  if (iw < 0 || iw >= g.iw) continue;
                  acc += static_cast<double>(src.at({ic, id, ih, iw})) *
                         ddst.at({oc, od, oh, ow});
                }
              }
            }
            dweights.at({oc, ic, kd, kh, kw}) += static_cast<float>(acc);
          }
        }
      }
    }
  }
}

}  // namespace cf::dnn
