// Inference: load a trained checkpoint, run the held-out test set, and
// report the per-parameter relative errors — the paper's Fig 6
// analysis.
//
//   ./examples/predict_params --data=/tmp/cosmoflow_data
//       --checkpoint=/tmp/cosmoflow.ckpt
#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "core/checkpoint.hpp"
#include "core/metrics.hpp"
#include "core/topology.hpp"
#include "cosmo/simulation.hpp"
#include "data/dataset.hpp"
#include "dnn/network.hpp"
#include "examples/example_utils.hpp"

namespace {

std::vector<std::string> find_shards(const std::string& dir,
                                     const std::string& prefix) {
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) == 0 &&
        name.find(".cfrecord") != std::string::npos) {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cf;
  const examples::Flags flags(
      argc, argv,
      "usage: predict_params --data=DIR --checkpoint=PATH");

  const std::string dir = flags.get_string("data", "/tmp/cosmoflow_data");
  const std::string ckpt =
      flags.get_string("checkpoint", "/tmp/cosmoflow.ckpt");

  const auto test_shards = find_shards(dir, "test");
  if (test_shards.empty()) {
    std::fprintf(stderr, "no test shards under %s\n", dir.c_str());
    return 1;
  }
  const data::CfrecordSource test(test_shards);
  const data::Sample first = test.make_reader()->get(0);
  const std::int64_t dhw = first.volume.shape()[1];

  const core::TopologyConfig topology = core::topology_for_input(dhw);
  dnn::Network net = core::build_network(topology, 0);
  core::load_checkpoint(ckpt, topology.name, net);
  std::printf("loaded %s (%lld parameters) from %s\n",
              topology.name.c_str(),
              static_cast<long long>(net.param_count()), ckpt.c_str());

  // Forward-only stream: no diff/scratch/grad arenas, activations
  // collapsed onto the ping-pong arena.
  dnn::ExecContext ctx = net.make_context(dnn::ExecMode::kInference);
  std::printf("inference context: %.2f MB peak tensors (%.2f MB total) "
              "vs %.2f MB planned for training\n",
              static_cast<double>(ctx.peak_tensor_bytes()) / 1e6,
              static_cast<double>(ctx.total_bytes()) / 1e6,
              static_cast<double>(net.peak_tensor_bytes()) / 1e6);

  runtime::ThreadPool pool;
  const auto reader = test.make_reader();
  std::vector<core::Prediction> predictions;
  predictions.reserve(test.size());
  std::printf("\n%28s | %28s\n", "predicted", "true");
  std::printf("%9s %9s %8s | %9s %9s %8s\n", "OmegaM", "sigma8", "ns",
              "OmegaM", "sigma8", "ns");
  for (std::size_t i = 0; i < test.size(); ++i) {
    const data::Sample sample = reader->get(i);
    const tensor::Tensor& out = ctx.forward(sample.volume, pool);
    const cosmo::CosmoParams pred =
        cosmo::denormalize_params({out[0], out[1], out[2]});
    const cosmo::CosmoParams truth = cosmo::denormalize_params(
        {sample.target[0], sample.target[1], sample.target[2]});
    core::Prediction p;
    p.predicted = {pred.omega_m, pred.sigma8, pred.ns};
    p.truth = {truth.omega_m, truth.sigma8, truth.ns};
    predictions.push_back(p);
    if (i < 12) {
      std::printf("%9.4f %9.4f %8.4f | %9.4f %9.4f %8.4f\n",
                  p.predicted[0], p.predicted[1], p.predicted[2],
                  p.truth[0], p.truth[1], p.truth[2]);
    }
  }

  const auto rel = core::mean_relative_error(predictions);
  const auto rms = core::rmse(predictions);
  const auto corr = core::correlation(predictions);
  std::printf("\n%zu test samples\n", predictions.size());
  std::printf("mean relative error:  OmegaM %.4f  sigma8 %.4f  ns %.4f\n",
              rel[0], rel[1], rel[2]);
  std::printf("rmse:                 OmegaM %.4f  sigma8 %.4f  ns %.4f\n",
              rms[0], rms[1], rms[2]);
  std::printf("correlation:          OmegaM %.4f  sigma8 %.4f  ns %.4f\n",
              corr[0], corr[1], corr[2]);
  std::printf("\npaper reference (full scale): 2048-node run "
              "(0.0022, 0.0094, 0.0096); 8192-node run "
              "(0.052, 0.014, 0.022)\n");
  return 0;
}
