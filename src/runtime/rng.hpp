// Counter-based random number generation (Philox4x32-10).
//
// Training, simulation and data sharding all need reproducible streams
// that can be split per rank / per simulation box without coordination.
// A counter-based generator gives every (seed, stream) pair an
// independent sequence; jumping to any offset is O(1). This mirrors the
// Philox generator TensorFlow uses for its random ops.
#pragma once

#include <array>
#include <cstdint>

namespace cf::runtime {

/// Raw Philox4x32-10 block function: maps (counter, key) -> 4x u32.
struct Philox4x32 {
  using Counter = std::array<std::uint32_t, 4>;
  using Key = std::array<std::uint32_t, 2>;

  static Counter round10(Counter ctr, Key key) noexcept;
};

/// Convenience stream wrapping Philox with buffered output and
/// float/double/normal helpers.
class Rng {
 public:
  /// `seed` selects the key, `stream` partitions independent substreams
  /// (e.g. one per MPI rank or per simulation box).
  explicit Rng(std::uint64_t seed = 0, std::uint64_t stream = 0) noexcept;

  std::uint32_t next_u32() noexcept;
  std::uint64_t next_u64() noexcept;

  /// Uniform in [0, 1).
  float uniform() noexcept;
  double uniform_double() noexcept;

  /// Uniform in [lo, hi).
  float uniform(float lo, float hi) noexcept;

  /// Standard normal via Box-Muller (caches the second variate).
  float normal() noexcept;
  float normal(float mean, float stddev) noexcept;

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Jump the counter forward by `n` 128-bit blocks. O(1).
  void skip_blocks(std::uint64_t n) noexcept;

 private:
  void refill() noexcept;

  Philox4x32::Counter counter_{};
  Philox4x32::Key key_{};
  std::array<std::uint32_t, 4> buffer_{};
  int buffered_ = 0;      // unread values remaining in buffer_
  bool has_cached_normal_ = false;
  float cached_normal_ = 0.0f;
};

}  // namespace cf::runtime
