// Reorder boundary between the blocked conv stack and the dense head:
// blocked {Cb, D, H, W, 16} -> plain {C * D * H * W} (channel-major,
// the same order a plain {C, D, H, W} tensor flattens to). This is one
// of the "data reordering between the blocked and non-blocked layout"
// stages the paper profiles in §V-B.
#pragma once

#include "dnn/layer.hpp"

namespace cf::dnn {

class Flatten final : public Layer {
 public:
  /// `channels` is the true channel count (Cb * 16 when the conv stack
  /// keeps multiples of 16).
  Flatten(std::string name, std::int64_t channels);

  std::string kind() const override { return "reorder"; }

  tensor::Shape plan(const tensor::Shape& input) override;

  using Layer::backward;
  using Layer::forward;

  void forward(const tensor::Tensor& src, tensor::Tensor& dst,
               LayerExecState& exec,
               runtime::ThreadPool& pool) const override;
  void backward(const tensor::Tensor& src, tensor::Tensor& ddst,
                tensor::Tensor& dsrc, bool need_dsrc, LayerExecState& exec,
                runtime::ThreadPool& pool) const override;

  // bf16 pass-through (dnn/forward_rp.cpp): the reorder is a pure
  // gather, so bf16 values move untouched — no conversion at all.
  bool supports_precision(Precision p) const override {
    static_cast<void>(p);
    return true;
  }
  void forward_bf16(const bf16_t* src, bf16_t* dst,
                    std::span<const bf16_t> params, LayerExecState& exec,
                    runtime::ThreadPool& pool) const override;

  std::unique_ptr<Layer> clone_unplanned() const override {
    return std::make_unique<Flatten>(name(), channels_);
  }

 private:
  std::int64_t channels_ = 0;
  std::int64_t d_ = 0, h_ = 0, w_ = 0;
};

}  // namespace cf::dnn
