// End-to-end integration tests: the full §IV-C + §III pipeline from
// simulated universes through synchronous training to parameter
// prediction, plus cross-module invariants that only appear when the
// pieces are composed.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "core/baseline.hpp"
#include "core/checkpoint.hpp"
#include "core/dataset_gen.hpp"
#include "core/metrics.hpp"
#include "core/trainer.hpp"
#include "cosmo/statistics.hpp"
#include "data/pipeline.hpp"

namespace cf {
namespace {

core::DatasetGenConfig small_suite(std::size_t sims, std::uint64_t seed) {
  core::DatasetGenConfig gen;
  gen.simulations = sims;
  gen.sim.grid = {64, 128.0};  // mean count 8 at 32^3 voxels
  gen.sim.voxels = 32;
  gen.seed = seed;
  gen.val_fraction = 0.2;
  gen.test_fraction = 0.2;
  return gen;
}

TEST(Integration, TrainingBeatsTheMeanPredictor) {
  runtime::ThreadPool pool;
  core::GeneratedDataset dataset =
      core::generate_dataset(small_suite(12, 101), pool);
  data::InMemorySource train(std::move(dataset.train));
  data::InMemorySource val(std::move(dataset.val));

  core::TrainerConfig config;
  config.nranks = 2;
  config.epochs = 6;
  config.base_lr = 4e-3;
  core::Trainer trainer(core::cosmoflow_scaled(16), train, val, config);
  const auto stats = trainer.run();

  // Targets are uniform in [0, 1], so a mean predictor scores an MSE
  // of 1/12 per parameter. The trained network must do better at its
  // best epoch.
  double best_val = 1e9;
  for (const auto& epoch : stats) {
    best_val = std::min(best_val, epoch.val_loss);
    EXPECT_TRUE(std::isfinite(epoch.train_loss));
  }
  EXPECT_LT(best_val, 1.0 / 12.0);
  EXPECT_LT(stats.back().train_loss, stats.front().train_loss);
}

TEST(Integration, SimulationStatisticsCarryTheSigma8Signal) {
  // The learnability premise: across a suite, the log-density variance
  // of sub-volumes must correlate positively with sigma8.
  runtime::ThreadPool pool;
  core::DatasetGenConfig gen = small_suite(24, 102);
  gen.val_fraction = 0.0;
  gen.test_fraction = 0.0;
  core::GeneratedDataset dataset = core::generate_dataset(gen, pool);

  const std::size_t n = dataset.train.size();
  ASSERT_GT(n, 100u);
  double sx = 0.0, sy = 0.0, sxx = 0.0, syy = 0.0, sxy = 0.0;
  for (const auto& sample : dataset.train) {
    const double x = cosmo::field_moments(sample.volume).variance;
    const double y = sample.target[1];  // normalized sigma8
    sx += x;
    sy += y;
    sxx += x * x;
    syy += y * y;
    sxy += x * y;
  }
  const double nd = static_cast<double>(n);
  const double corr =
      (sxy / nd - sx / nd * sy / nd) /
      std::sqrt((sxx / nd - sx / nd * sx / nd) *
                (syy / nd - sy / nd * sy / nd));
  EXPECT_GT(corr, 0.15);
}

TEST(Integration, CfrecordRoundTripPreservesTraining) {
  // Writing the dataset to shards and training from the files must
  // give the same trajectory as training from memory (ordering is
  // pinned by the order-preserving pipeline).
  runtime::ThreadPool pool;
  core::GeneratedDataset dataset =
      core::generate_dataset(small_suite(8, 103), pool);

  const auto clone_all = [](const std::vector<data::Sample>& v) {
    std::vector<data::Sample> copy;
    for (const auto& s : v) copy.push_back(s.clone());
    return copy;
  };
  const std::string dir =
      (std::filesystem::temp_directory_path() / "cf_integration_shards")
          .string();
  const auto train_paths =
      data::write_shards(dataset.train, dir, "train", 8, 1);
  const auto val_paths = data::write_shards(dataset.val, dir, "val", 8, 2);

  core::TrainerConfig config;
  config.nranks = 2;
  config.epochs = 2;

  data::InMemorySource mem_train(clone_all(dataset.train));
  data::InMemorySource mem_val(clone_all(dataset.val));
  // Note: shards are written in shuffled order, so "same data" is the
  // multiset, not the sequence; compare final losses loosely and
  // determinism of the file path exactly.
  core::Trainer mem_trainer(core::cosmoflow_scaled(16), mem_train, mem_val,
                            config);
  const double mem_loss = mem_trainer.run().back().train_loss;

  const auto run_from_files = [&] {
    data::CfrecordSource file_train(train_paths);
    data::CfrecordSource file_val(val_paths);
    core::TrainerConfig file_config = config;
    file_config.pipeline.io_threads = 2;
    core::Trainer trainer(core::cosmoflow_scaled(16), file_train, file_val,
                          file_config);
    return trainer.run().back().train_loss;
  };
  const double file_loss_a = run_from_files();
  const double file_loss_b = run_from_files();
  EXPECT_EQ(file_loss_a, file_loss_b);  // bitwise reproducible from disk
  EXPECT_TRUE(std::isfinite(mem_loss));
  EXPECT_LT(std::fabs(file_loss_a - mem_loss), 0.2);

  std::filesystem::remove_all(dir);
}

TEST(Integration, CheckpointedModelPredictsIdentically) {
  runtime::ThreadPool pool;
  core::GeneratedDataset dataset =
      core::generate_dataset(small_suite(8, 104), pool);
  data::InMemorySource test([&] {
    std::vector<data::Sample> copy;
    for (const auto& s : dataset.test) copy.push_back(s.clone());
    return copy;
  }());
  data::InMemorySource train(std::move(dataset.train));
  data::InMemorySource val(std::move(dataset.val));

  core::TrainerConfig config;
  config.nranks = 2;
  config.epochs = 2;
  core::Trainer trainer(core::cosmoflow_scaled(16), train, val, config);
  trainer.run();
  const auto before = trainer.evaluate(test);

  const std::string path =
      (std::filesystem::temp_directory_path() / "cf_integration.ckpt")
          .string();
  core::save_checkpoint(path, "cosmoflow-16", trainer.network(0));
  dnn::Network restored = core::build_network(core::cosmoflow_scaled(16),
                                              /*seed=*/999);
  core::load_checkpoint(path, "cosmoflow-16", restored);
  dnn::ExecContext restored_ctx =
      restored.make_context(dnn::ExecMode::kInference);

  const auto reader = test.make_reader();
  for (std::size_t i = 0; i < test.size(); ++i) {
    const data::Sample sample = reader->get(i);
    const tensor::Tensor& out =
        restored_ctx.forward(sample.volume, pool);
    const cosmo::CosmoParams pred =
        cosmo::denormalize_params({out[0], out[1], out[2]});
    EXPECT_DOUBLE_EQ(pred.omega_m, before[i].predicted[0]);
    EXPECT_DOUBLE_EQ(pred.sigma8, before[i].predicted[1]);
    EXPECT_DOUBLE_EQ(pred.ns, before[i].predicted[2]);
  }
  std::filesystem::remove(path);
}

TEST(Integration, BaselineExtractsSignalFromSimulatedSuite) {
  // The classical estimator must recover sigma8 from real simulated
  // data clearly better than chance (its correlation on held-out boxes
  // is strongly positive).
  runtime::ThreadPool pool;
  core::GeneratedDataset dataset =
      core::generate_dataset(small_suite(24, 105), pool);
  data::InMemorySource train(std::move(dataset.train));
  data::InMemorySource test(std::move(dataset.test));

  core::BaselineConfig config;
  config.box_size = 64.0;  // half the 128 Mpc/h box
  core::SummaryStatBaseline baseline(config);
  baseline.fit(train, pool);
  const auto preds = baseline.evaluate(test, pool);
  const auto corr = core::correlation(preds);
  EXPECT_GT(corr[1], 0.3);  // sigma8
}

}  // namespace
}  // namespace cf
