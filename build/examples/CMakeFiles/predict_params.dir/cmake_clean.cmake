file(REMOVE_RECURSE
  "CMakeFiles/predict_params.dir/predict_params.cpp.o"
  "CMakeFiles/predict_params.dir/predict_params.cpp.o.d"
  "predict_params"
  "predict_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predict_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
