// Synchronous data-parallel trainer — Algorithm 2 of the paper.
//
// Every MPI rank (a thread here, see comm/mlcomm.hpp) owns a full model
// replica and processes a mini-batch of one sample per step; the
// global batch size therefore equals the rank count (§III-B). A step
// is: local gradient computation, gradient averaging through the
// communicator, identical Adam+LARC update on every replica. By
// default the averaging is overlapped with backprop: layer gradients
// are bucketed and posted to the communicator's helper thread as they
// become ready (the CPE ML Plugin's pipelining, §III-D), and the step
// only blocks on whatever communication backward failed to hide. The
// replicas stay bit-identical because both the synchronous and the
// bucketed-async allreduce are deterministic — a property the tests
// assert.
//
// The trainer also instruments every stage (conv / pool / dense /
// element-wise / reorder / optimizer / communication / unhidden I/O)
// to regenerate the paper's single-node profile (Fig 3) and per-layer
// table (Table I).
#pragma once

#include <array>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "comm/mlcomm.hpp"
#include "core/metrics.hpp"
#include "core/topology.hpp"
#include "data/pipeline.hpp"
#include "obs/jsonl.hpp"
#include "optim/larc_adam.hpp"
#include "optim/sgd.hpp"
#include "runtime/thread_pool.hpp"

namespace cf::core {

enum class OptimizerKind { kAdamLarc, kAdam, kSgdMomentum };

struct TrainerConfig {
  int nranks = 1;
  int epochs = 4;
  std::uint64_t seed = 0;

  // §III-B hyper-parameters.
  double base_lr = 2e-3;
  double min_lr = 1e-4;
  /// Learning-rate decay horizon in epochs; 0 means "the full run".
  int decay_epochs = 0;
  optim::AdamConfig adam{};
  optim::LarcConfig larc{};
  OptimizerKind optimizer = OptimizerKind::kAdamLarc;
  double sgd_momentum = 0.9;  // used by kSgdMomentum only

  /// Intra-op threads in each rank's private ThreadPool. 0 = auto: the
  /// per-rank budget becomes hardware_threads / nranks (at least 1) and
  /// the dnn::CostModel picks the per-layer grains for that width
  /// (DESIGN.md §2.6). Any value is bitwise-identical to 1 — threading
  /// only re-partitions the kernels' fixed job grids.
  std::size_t threads_per_rank = 1;
  /// Fuse Conv3d/Dense → LeakyRelu pairs into the producer kernels'
  /// epilogues (MKL-DNN post-op style). Bitwise identical to the
  /// unfused graph — false only for ablation (`--no-fusion`).
  bool fuse_eltwise = true;
  /// Liveness-planned diff ping-pong + shared backward scratch arenas
  /// (DESIGN.md §2.2). Placement-only, bitwise identical to per-layer
  /// buffers — false only for ablation (`--no-memplan`).
  bool memplan = true;
  /// Overlap gradient aggregation with backprop (default): as layer
  /// gradients become ready (last layer first) they are coalesced into
  /// ~bucket_bytes buckets and posted to the communicator's helper
  /// thread, hiding allreduce time behind the remaining backward
  /// compute. false = one synchronous allreduce after backward. Both
  /// paths produce bitwise-identical models (the async reduction uses
  /// the same deterministic chunk arithmetic).
  bool overlap_comm = true;
  /// Target async bucket size in bytes; a bucket closes once the ready
  /// gradient region reaches this size. Extremes are valid: 0 posts
  /// one bucket per parameterized layer, huge values post a single
  /// whole-arena bucket.
  std::size_t bucket_bytes = 4u << 20;
  data::PipelineConfig pipeline{};
  bool shuffle = true;
  /// Random cube-orientation augmentation per training draw (48
  /// symmetries; see data/augment.hpp). Validation is never augmented.
  bool augment = true;
  comm::MlCommConfig comm{};
  /// When non-empty, every rank appends one JSONL record per step
  /// (phase/epoch/step/rank/loss/lr plus per-category stage-second
  /// deltas) and rank 0 adds one record per epoch; the records
  /// telescope so their rank-0 per-category sums equal breakdown().
  /// See OBSERVABILITY.md for the schema. Empty disables.
  std::string step_log_path;
};

struct EpochStats {
  int epoch = 0;
  double train_loss = 0.0;
  double val_loss = 0.0;
  double epoch_seconds = 0.0;
  runtime::TimeStats step_time;  // rank-0 per-step walltime
};

/// Fig 3 category breakdown (seconds accumulated on rank 0). The
/// "comm" entry is critical-path communication (broadcasts, scalar
/// reductions, async-bucket time exposed in wait()); "comm_hidden" is
/// allreduce service time that ran concurrently with backward compute
/// and must NOT be summed into wall-clock accounting.
struct CategoryBreakdown {
  std::map<std::string, double> seconds;  // conv, pool, dense, ...
  double total = 0.0;
  /// hidden / (hidden + exposed) async allreduce seconds on rank 0;
  /// 0 when the synchronous path ran.
  double overlap_fraction = 0.0;
};

class Trainer {
 public:
  Trainer(TopologyConfig topology, const data::SampleSource& train,
          const data::SampleSource& val, TrainerConfig config);

  /// Runs the full training; returns per-epoch statistics.
  std::vector<EpochStats> run();

  const TopologyConfig& topology() const noexcept { return topology_; }
  const TrainerConfig& config() const noexcept { return config_; }

  /// Rank r's replica (valid after run()); replicas are identical.
  dnn::Network& network(int rank = 0);

  /// Rank r's training execution stream (valid after run()); carries
  /// the per-layer timers behind breakdown().
  dnn::ExecContext& context(int rank = 0);

  /// Forward pass through the rank-0 replica; returns the raw
  /// (normalized) outputs.
  std::vector<float> predict(const tensor::Tensor& volume);

  /// Evaluates every sample of `source`, mapping normalized outputs
  /// and targets back to physical parameters (3-output networks only).
  std::vector<Prediction> evaluate(const data::SampleSource& source);

  /// Accumulated stage breakdown on rank 0 (Fig 3).
  CategoryBreakdown breakdown() const;

  std::int64_t steps_per_epoch_per_rank() const noexcept {
    return steps_per_epoch_;
  }

 private:
  void rank_body(comm::RankHandle& rank, const data::SampleSource& train,
                 const data::SampleSource& val);
  /// config_.threads_per_rank, with 0 resolved to the cost-model auto
  /// budget: hardware_threads / nranks, at least 1.
  std::size_t resolved_threads_per_rank() const;
  /// Shared pool for predict()/evaluate(), built on first use (the
  /// training pools are per-rank and die with rank_body).
  runtime::ThreadPool& inference_pool();
  /// Forward-only stream over the rank-0 replica for predict()/
  /// evaluate(), built on first use. Deterministic reductions make its
  /// outputs bitwise identical to a training context's forward.
  dnn::ExecContext& inference_context();

  TopologyConfig topology_;
  TrainerConfig config_;
  const data::SampleSource& train_;
  const data::SampleSource& val_;
  std::int64_t steps_per_epoch_ = 0;

  std::vector<std::unique_ptr<dnn::Network>> networks_;
  // One training stream per rank (owned separately from the replica so
  // both survive rank_body for breakdown()/network() readers).
  std::vector<std::unique_ptr<dnn::ExecContext>> contexts_;
  std::unique_ptr<dnn::ExecContext> inference_ctx_;
  std::vector<EpochStats> stats_;
  std::unique_ptr<obs::JsonlSink> step_log_;
  std::unique_ptr<runtime::ThreadPool> inference_pool_;
  // Rank-0 snapshots of the obs registry stats, taken when rank 0
  // leaves rank_body so breakdown() stays stable afterwards.
  runtime::TimeStats optimizer_time_;
  runtime::TimeStats io_wait_time_;
  runtime::TimeStats comm_time_;
  runtime::TimeStats exposed_comm_time_;
  runtime::TimeStats hidden_comm_time_;
  double train_walltime_ = 0.0;
  bool ran_ = false;
};

}  // namespace cf::core
