// Fig 5 reproduction: training/validation loss vs epoch at two
// concurrency levels.
//
// The paper compares a 2048-node and an 8192-node run and observes
// that "the network clearly converges with fewer number of epochs in
// the 2048-node run" — a global-batch-size effect (batch == rank
// count, §V). We reproduce the effect at a 4:1 rank ratio on simulated
// data: the small-batch run reaches a given loss in fewer epochs.
//
//   ./bench_fig5_convergence [--epochs=8] [--sims=24] [--ranks-small=2]
//       [--ranks-large=8]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/dataset_gen.hpp"
#include "core/trainer.hpp"

int main(int argc, char** argv) {
  using namespace cf;
  int epochs = 10;
  std::size_t sims = 48;
  int ranks_small = 2;
  int ranks_large = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--epochs=", 9) == 0) {
      epochs = std::atoi(argv[i] + 9);
    }
    if (std::strncmp(argv[i], "--sims=", 7) == 0) {
      sims = static_cast<std::size_t>(std::atoll(argv[i] + 7));
    }
    if (std::strncmp(argv[i], "--ranks-small=", 14) == 0) {
      ranks_small = std::atoi(argv[i] + 14);
    }
    if (std::strncmp(argv[i], "--ranks-large=", 14) == 0) {
      ranks_large = std::atoi(argv[i] + 14);
    }
  }

  std::printf("=== bench_fig5_convergence: loss vs epoch at two global "
              "batch sizes ===\n");
  std::printf("(%d vs %d thread-ranks stand in for the paper's 2048 vs "
              "8192 nodes; 4:1 batch ratio preserved)\n\n",
              ranks_small, ranks_large);

  runtime::ThreadPool pool;
  core::DatasetGenConfig gen;
  gen.simulations = sims;
  gen.sim.grid = {128, 256.0};  // mean count 8, the paper's density
  gen.sim.voxels = 64;
  gen.seed = 5;
  core::GeneratedDataset dataset = core::generate_dataset(gen, pool);
  std::printf("dataset: %zu train / %zu val sub-volumes (32^3 voxels)\n\n",
              dataset.train.size(), dataset.val.size());

  const auto run = [&](int ranks) {
    data::InMemorySource train_src(
        [&] {
          std::vector<data::Sample> copy;
          copy.reserve(dataset.train.size());
          for (const auto& s : dataset.train) copy.push_back(s.clone());
          return copy;
        }());
    data::InMemorySource val_src([&] {
      std::vector<data::Sample> copy;
      copy.reserve(dataset.val.size());
      for (const auto& s : dataset.val) copy.push_back(s.clone());
      return copy;
    }());
    core::TrainerConfig config;
    config.nranks = ranks;
    config.epochs = epochs;
    config.base_lr = 2e-3;  // §III-B
    core::Trainer trainer(core::cosmoflow_scaled(32), train_src, val_src,
                          config);
    return trainer.run();
  };

  const auto small = run(ranks_small);
  const auto large = run(ranks_large);

  std::printf("%6s | %12s %12s | %12s %12s\n", "epoch",
              "train(small)", "val(small)", "train(large)", "val(large)");
  for (int e = 0; e < epochs; ++e) {
    std::printf("%6d | %12.5f %12.5f | %12.5f %12.5f\n", e,
                small[static_cast<std::size_t>(e)].train_loss,
                small[static_cast<std::size_t>(e)].val_loss,
                large[static_cast<std::size_t>(e)].train_loss,
                large[static_cast<std::size_t>(e)].val_loss);
  }

  // Convergence summary: first epoch reaching a fixed validation-loss
  // target, and the mean over the final three epochs (single-epoch val
  // losses are noisy on small suites).
  const double target = 0.05;
  const auto epochs_to_target = [&](const std::vector<core::EpochStats>& s) {
    for (std::size_t e = 0; e < s.size(); ++e) {
      if (s[e].val_loss <= target) return static_cast<int>(e);
    }
    return -1;
  };
  const auto tail_mean = [&](const std::vector<core::EpochStats>& s) {
    double acc = 0.0;
    const std::size_t k = std::min<std::size_t>(3, s.size());
    for (std::size_t e = s.size() - k; e < s.size(); ++e) {
      acc += s[e].val_loss;
    }
    return acc / static_cast<double>(k);
  };
  const auto print_epochs = [](int e) {
    return e < 0 ? std::string("not reached") : std::to_string(e);
  };
  std::printf("\nfirst epoch with val loss <= %.2f: small batch %s, "
              "large batch %s\n",
              target, print_epochs(epochs_to_target(small)).c_str(),
              print_epochs(epochs_to_target(large)).c_str());
  std::printf("val loss, mean of final 3 epochs: small %.5f vs large "
              "%.5f\n",
              tail_mean(small), tail_mean(large));
  std::printf("first-epoch training loss: small %.5f vs large %.5f "
              "(the large global batch takes fewer optimizer steps per "
              "epoch)\n",
              small.front().train_loss, large.front().train_loss);
  std::printf("\npaper (Fig 5): the 2048-node run converges in fewer "
              "epochs than the 8192-node run.\n");
  std::printf("shape target: the small-batch run reaches lower loss "
              "earlier.\n");
  return 0;
}
