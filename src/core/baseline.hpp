// Classical parameter estimator: ridge regression over traditional
// summary statistics.
//
// This is the comparator behind the paper's headline scientific claim
// (§II-A, via Ravanbakhsh et al. 2017): parameter estimates built on
// reduced statistics of the matter distribution — power-spectrum bins
// and PDF moments — are beaten by a CNN that sees the raw field.
// bench_fig6_params trains both and reports the gap.
#pragma once

#include <vector>

#include "core/metrics.hpp"
#include "data/dataset.hpp"
#include "runtime/thread_pool.hpp"

namespace cf::core {

struct BaselineConfig {
  /// Sub-volume physical size handed to the spectrum estimator.
  double box_size = 128.0;
  int spectrum_bins = 8;
  /// Ridge regularization (features are standardized internally).
  double ridge_lambda = 1e-3;
};

/// Ridge regression from summary features to the three normalized
/// parameters. Fitting standardizes features to zero mean / unit
/// variance and solves the normal equations by Cholesky decomposition.
class SummaryStatBaseline {
 public:
  explicit SummaryStatBaseline(BaselineConfig config);

  void fit(const data::SampleSource& train, runtime::ThreadPool& pool);

  /// Normalized-parameter prediction for one sample.
  std::array<float, 3> predict(const data::Sample& sample,
                               runtime::ThreadPool& pool) const;

  /// Physical-unit predictions for a whole source (Fig 6 format).
  std::vector<Prediction> evaluate(const data::SampleSource& source,
                                   runtime::ThreadPool& pool) const;

  bool fitted() const noexcept { return fitted_; }
  std::size_t feature_count() const noexcept { return feature_mean_.size(); }

 private:
  std::vector<double> featurize(const data::Sample& sample,
                                runtime::ThreadPool& pool) const;

  BaselineConfig config_;
  bool fitted_ = false;
  std::vector<double> feature_mean_;
  std::vector<double> feature_std_;
  // weights_[t] has one coefficient per feature plus an intercept.
  std::array<std::vector<double>, 3> weights_;
};

/// Solves the symmetric positive-definite system A x = b in place via
/// Cholesky decomposition; throws on non-SPD input. Exposed for tests.
std::vector<double> solve_spd(std::vector<double> a, std::vector<double> b);

}  // namespace cf::core
