#!/usr/bin/env sh
# UndefinedBehaviorSanitizer gate for the pointer-arithmetic-heavy
# paths: builds the repo with -DCOSMOFLOW_UBSAN=ON into build-ubsan/
# and runs the suites that drive the fused conv/dense epilogue kernels,
# the blocked optimizer sweeps, and the layout/reorder code — the
# places where a bad offset, misaligned view, or signed overflow would
# hide. Any UB report fails the script.
#
# Usage: check_ubsan.sh [repo_root]
set -eu

root="${1:-$(dirname "$0")/..}"
cd "$root" || exit 1

build_dir="build-ubsan"

cmake -B "$build_dir" -S . \
  -DCOSMOFLOW_UBSAN=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "$build_dir" --target cosmoflow_tests -j "$(nproc)"

# halt_on_error turns the first report into a failure instead of a
# log line; print_stacktrace makes it actionable.
export UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1"

"$build_dir/tests/cosmoflow_tests" \
  --gtest_filter='Shapes/FusedConvVsUnfused*.*:FusedDenseVsUnfused*.*:Fusion*.*:Blocked*.*:Threads/ConvThreadInvariance*.*:Adam*.*:LarcFixture*.*:LarcAdamIntegration*.*:SgdMomentum*.*:Network*.*:Flatten*.*'

echo "UBSan: no undefined behavior detected"
