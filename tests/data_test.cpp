// Tests for the data pipeline: CRC32-C, cfrecord framing + corruption
// detection, sample serialization, sharding, splits, prefetch
// pipeline.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <span>

#include "data/cfrecord.hpp"
#include "data/crc32.hpp"
#include "data/dataset.hpp"
#include "data/pipeline.hpp"
#include "data/sample.hpp"
#include "runtime/rng.hpp"
#include "tensor/tensor_ops.hpp"

namespace cf::data {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    path_ = fs::temp_directory_path() /
            ("cf_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }
  fs::path path() const { return path_; }

 private:
  fs::path path_;
  static inline int counter_ = 0;
};

Sample make_sample(std::uint64_t seed, std::int64_t dhw = 4) {
  runtime::Rng rng(seed);
  Sample sample;
  sample.volume = tensor::Tensor(tensor::Shape{1, dhw, dhw, dhw});
  tensor::fill_normal(sample.volume, rng, 0.0f, 1.0f);
  sample.target = {rng.uniform(), rng.uniform(), rng.uniform()};
  return sample;
}

TEST(Crc32c, KnownVectors) {
  // RFC 3720 test vector: 32 bytes of zeros.
  std::vector<std::uint8_t> zeros(32, 0);
  EXPECT_EQ(crc32c(zeros), 0x8A9136AAu);
  // "123456789"
  const std::string digits = "123456789";
  EXPECT_EQ(crc32c({reinterpret_cast<const std::uint8_t*>(digits.data()),
                    digits.size()}),
            0xE3069283u);
}

TEST(Crc32c, MaskRoundTrip) {
  for (const std::uint32_t crc : {0u, 1u, 0xDEADBEEFu, 0xFFFFFFFFu}) {
    EXPECT_EQ(unmask_crc(mask_crc(crc)), crc);
  }
}

std::vector<CrcImpl> available_impls() {
  std::vector<CrcImpl> impls{CrcImpl::kTable, CrcImpl::kSlice8};
  if (crc32c_hardware_available()) impls.push_back(CrcImpl::kHardware);
  return impls;
}

TEST(Crc32c, AllKernelsAgreeOnRandomInputs) {
  runtime::Rng rng(42);
  for (const std::size_t size : {1u, 7u, 8u, 9u, 63u, 64u, 65u, 1000u,
                                 4096u, 65537u}) {
    std::vector<std::uint8_t> buf(size);
    for (auto& b : buf) {
      b = static_cast<std::uint8_t>(rng.uniform_index(256));
    }
    const std::uint32_t reference = crc32c_with(CrcImpl::kTable, buf);
    for (const CrcImpl impl : available_impls()) {
      EXPECT_EQ(crc32c_with(impl, buf), reference)
          << to_string(impl) << " size " << size;
    }
  }
}

TEST(Crc32c, AllKernelsAgreeOnAdversarialInputs) {
  // Every length 0..64 at every offset 0..8 — the word-at-a-time
  // kernels' tail and misalignment handling — over pessimal byte
  // patterns (all-zero, all-ones, ramp).
  std::vector<std::uint8_t> backing(96);
  const auto sweep = [&] {
    for (std::size_t off = 0; off <= 8; ++off) {
      for (std::size_t len = 0; len <= 64; ++len) {
        const std::span<const std::uint8_t> window{backing.data() + off,
                                                   len};
        const std::uint32_t reference =
            crc32c_with(CrcImpl::kTable, window);
        for (const CrcImpl impl : available_impls()) {
          ASSERT_EQ(crc32c_with(impl, window), reference)
              << to_string(impl) << " off " << off << " len " << len;
        }
      }
    }
  };
  std::fill(backing.begin(), backing.end(), std::uint8_t{0});
  sweep();
  std::fill(backing.begin(), backing.end(), std::uint8_t{0xFF});
  sweep();
  for (std::size_t i = 0; i < backing.size(); ++i) {
    backing[i] = static_cast<std::uint8_t>(i * 37);
  }
  sweep();
}

TEST(Crc32c, DispatchIsSwitchableAndConsistent) {
  const CrcImpl before = crc32c_impl();
  const std::vector<std::uint8_t> bytes{1, 2, 3, 4, 5, 6, 7, 8, 9};
  const std::uint32_t reference = crc32c(bytes);
  for (const CrcImpl impl : available_impls()) {
    set_crc32c_impl(impl);
    EXPECT_EQ(crc32c_impl(), impl);
    EXPECT_EQ(crc32c(bytes), reference);
  }
  set_crc32c_impl(before);
  if (!crc32c_hardware_available()) {
    EXPECT_THROW(set_crc32c_impl(CrcImpl::kHardware),
                 std::invalid_argument);
    EXPECT_THROW(crc32c_with(CrcImpl::kHardware, bytes),
                 std::invalid_argument);
  }
}

TEST(Cfrecord, WriteReadRoundTrip) {
  TempDir dir;
  const std::string path = (dir.path() / "t.cfrecord").string();
  std::vector<std::vector<std::uint8_t>> records = {
      {1, 2, 3}, {}, std::vector<std::uint8_t>(1000, 42)};
  {
    RecordWriter writer(path);
    for (const auto& r : records) writer.write(r);
    writer.close();
    EXPECT_EQ(writer.records_written(), 3u);
  }
  RecordReader reader(path);
  std::vector<std::uint8_t> payload;
  for (const auto& expected : records) {
    ASSERT_TRUE(reader.read(payload));
    EXPECT_EQ(payload, expected);
  }
  EXPECT_FALSE(reader.read(payload));
}

TEST(Cfrecord, IndexAndRandomAccess) {
  TempDir dir;
  const std::string path = (dir.path() / "t.cfrecord").string();
  {
    RecordWriter writer(path);
    for (int i = 0; i < 10; ++i) {
      std::vector<std::uint8_t> payload(static_cast<std::size_t>(i + 1),
                                        static_cast<std::uint8_t>(i));
      writer.write(payload);
    }
    writer.close();
  }
  RecordReader reader(path);
  const auto offsets = reader.build_index();
  ASSERT_EQ(offsets.size(), 10u);
  std::vector<std::uint8_t> payload;
  reader.read_at(offsets[7], payload);
  EXPECT_EQ(payload.size(), 8u);
  EXPECT_EQ(payload[0], 7);
  reader.read_at(offsets[0], payload);
  EXPECT_EQ(payload.size(), 1u);
}

TEST(Cfrecord, DetectsPayloadCorruption) {
  TempDir dir;
  const std::string path = (dir.path() / "t.cfrecord").string();
  {
    RecordWriter writer(path);
    std::vector<std::uint8_t> payload(100, 7);
    writer.write(payload);
    writer.close();
  }
  // Flip a payload byte.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(12 + 50);
    const char corrupt = 8;
    f.write(&corrupt, 1);
  }
  RecordReader reader(path);
  std::vector<std::uint8_t> payload;
  EXPECT_THROW(reader.read(payload), CorruptRecordError);
}

TEST(Cfrecord, DetectsTruncation) {
  TempDir dir;
  const std::string path = (dir.path() / "t.cfrecord").string();
  {
    RecordWriter writer(path);
    std::vector<std::uint8_t> payload(100, 7);
    writer.write(payload);
    writer.close();
  }
  fs::resize_file(path, 50);
  RecordReader reader(path);
  std::vector<std::uint8_t> payload;
  EXPECT_THROW(reader.read(payload), CorruptRecordError);
}

TEST(Cfrecord, DetectsLengthCorruption) {
  TempDir dir;
  const std::string path = (dir.path() / "t.cfrecord").string();
  {
    RecordWriter writer(path);
    std::vector<std::uint8_t> payload(100, 7);
    writer.write(payload);
    writer.close();
  }
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(0);
    const char corrupt = 99;
    f.write(&corrupt, 1);
  }
  RecordReader reader(path);
  std::vector<std::uint8_t> payload;
  EXPECT_THROW(reader.read(payload), CorruptRecordError);
}

TEST(Cfrecord, MmapModeRoundTripAndViews) {
  TempDir dir;
  const std::string path = (dir.path() / "t.cfrecord").string();
  std::vector<std::vector<std::uint8_t>> records = {
      {1, 2, 3}, {}, std::vector<std::uint8_t>(1000, 42)};
  {
    RecordWriter writer(path);
    for (const auto& r : records) writer.write(r);
    writer.close();
  }
  RecordReader reader(path, ReaderMode::kMmap);
  ASSERT_TRUE(reader.mapped());
  std::span<const std::uint8_t> view;
  for (const auto& expected : records) {
    ASSERT_TRUE(reader.read_view(&view));
    EXPECT_TRUE(std::equal(view.begin(), view.end(), expected.begin(),
                           expected.end()));
  }
  EXPECT_FALSE(reader.read_view(&view));

  // build_index + view_at random access; views are stable (they point
  // into the mapping, not scratch).
  const auto offsets = reader.build_index();
  ASSERT_EQ(offsets.size(), records.size());
  const auto v2 = reader.view_at(offsets[2]);
  const auto v0 = reader.view_at(offsets[0]);
  EXPECT_EQ(v2.size(), 1000u);
  EXPECT_EQ(v2[0], 42);
  EXPECT_EQ(v0.size(), 3u);
  EXPECT_EQ(v0[0], 1);
  EXPECT_THROW(reader.view_at(offsets[2] + 1), CorruptRecordError);

  // Stream mode has no mapped views.
  RecordReader stream(path, ReaderMode::kStream);
  EXPECT_FALSE(stream.mapped());
  EXPECT_THROW(stream.view_at(0), std::logic_error);
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(stream.read(payload));
  EXPECT_EQ(payload, records[0]);
}

TEST(Cfrecord, StreamAndMmapModesDeliverIdenticalBytes) {
  TempDir dir;
  const std::string path = (dir.path() / "t.cfrecord").string();
  runtime::Rng rng(77);
  std::vector<std::vector<std::uint8_t>> records;
  {
    RecordWriter writer(path);
    for (int i = 0; i < 17; ++i) {
      std::vector<std::uint8_t> payload(rng.uniform_index(200));
      for (auto& b : payload) {
        b = static_cast<std::uint8_t>(rng.uniform_index(256));
      }
      writer.write(payload);
      records.push_back(std::move(payload));
    }
    writer.close();
  }
  RecordReader mapped(path, ReaderMode::kMmap);
  RecordReader stream(path, ReaderMode::kStream);
  std::vector<std::uint8_t> a;
  std::vector<std::uint8_t> b;
  for (const auto& expected : records) {
    ASSERT_TRUE(mapped.read(a));
    ASSERT_TRUE(stream.read(b));
    EXPECT_EQ(a, expected);
    EXPECT_EQ(b, expected);
  }
  EXPECT_FALSE(mapped.read(a));
  EXPECT_FALSE(stream.read(b));
}

TEST(Cfrecord, EmptyFileIsACleanEndInBothModes) {
  TempDir dir;
  const std::string path = (dir.path() / "empty.cfrecord").string();
  { std::ofstream touch(path, std::ios::binary); }
  for (const ReaderMode mode : {ReaderMode::kMmap, ReaderMode::kStream}) {
    RecordReader reader(path, mode);
    std::vector<std::uint8_t> payload;
    EXPECT_FALSE(reader.read(payload));
    EXPECT_TRUE(reader.build_index().empty());
  }
}

TEST(Cfrecord, CraftedHugeLengthIsCorruptionNotAllocation) {
  // A length field of multiple GB whose own checksum *matches* must be
  // rejected by the remaining-file-size bound before any payload
  // buffer is sized — the attack the length CRC alone cannot catch.
  TempDir dir;
  const std::string path = (dir.path() / "t.cfrecord").string();
  {
    std::ofstream out(path, std::ios::binary);
    std::uint8_t header[12];
    const std::uint64_t huge = 1ull << 40;  // 1 TB claim
    for (std::size_t i = 0; i < 8; ++i) {
      header[i] = static_cast<std::uint8_t>(huge >> (8 * i));
    }
    const std::uint32_t masked = mask_crc(crc32c({header, 8}));
    for (std::size_t i = 0; i < 4; ++i) {
      header[8 + i] = static_cast<std::uint8_t>(masked >> (8 * i));
    }
    out.write(reinterpret_cast<const char*>(header), 12);
    const char junk[32] = {0};
    out.write(junk, sizeof(junk));
  }
  for (const ReaderMode mode : {ReaderMode::kMmap, ReaderMode::kStream}) {
    RecordReader reader(path, mode);
    std::vector<std::uint8_t> payload;
    EXPECT_THROW(reader.read(payload), CorruptRecordError);
  }
}

TEST(SampleSerialization, RoundTrip) {
  const Sample sample = make_sample(5, 6);
  const auto payload = serialize_sample(sample);
  const Sample back = deserialize_sample(payload);
  EXPECT_EQ(back.volume.shape(), sample.volume.shape());
  EXPECT_EQ(tensor::max_abs_diff(back.volume.values(),
                                 sample.volume.values()),
            0.0f);
  EXPECT_EQ(back.target, sample.target);
}

TEST(SampleSerialization, RejectsMalformedPayloads) {
  const Sample sample = make_sample(6);
  auto payload = serialize_sample(sample);
  payload[0] ^= 0xFF;  // bad magic
  EXPECT_THROW(deserialize_sample(payload), std::invalid_argument);

  auto truncated = serialize_sample(sample);
  truncated.resize(truncated.size() - 4);
  EXPECT_THROW(deserialize_sample(truncated), std::invalid_argument);

  std::vector<std::uint8_t> tiny(8, 0);
  EXPECT_THROW(deserialize_sample(tiny), std::invalid_argument);
}

TEST(SampleSerialization, DeserializeIntoReusesStorage) {
  const Sample sample = make_sample(5, 6);
  const auto payload = serialize_sample(sample);

  // Matching shape: the destination tensor's storage must be reused.
  Sample out = make_sample(99, 6);
  const float* storage = out.volume.data();
  deserialize_sample_into(payload, out);
  EXPECT_EQ(out.volume.data(), storage);
  EXPECT_EQ(out.volume.shape(), sample.volume.shape());
  EXPECT_EQ(tensor::max_abs_diff(out.volume.values(),
                                 sample.volume.values()),
            0.0f);
  EXPECT_EQ(out.target, sample.target);

  // Mismatched shape: reallocates, still correct.
  Sample small = make_sample(98, 3);
  deserialize_sample_into(payload, small);
  EXPECT_EQ(small.volume.shape(), sample.volume.shape());
  EXPECT_EQ(tensor::max_abs_diff(small.volume.values(),
                                 sample.volume.values()),
            0.0f);

  // Empty destination works too.
  Sample fresh;
  deserialize_sample_into(payload, fresh);
  EXPECT_EQ(fresh.volume.shape(), sample.volume.shape());
  EXPECT_EQ(fresh.target, sample.target);
}

TEST(InMemorySource, ReadsClones) {
  std::vector<Sample> samples;
  samples.push_back(make_sample(1));
  samples.push_back(make_sample(2));
  InMemorySource source(std::move(samples));
  EXPECT_EQ(source.size(), 2u);
  const auto reader = source.make_reader();
  Sample a = reader->get(0);
  a.volume.fill(0.0f);  // must not affect the source
  const Sample again = reader->get(0);
  EXPECT_GT(tensor::l2_norm(again.volume.values()), 0.0);
  EXPECT_THROW(reader->get(2), std::out_of_range);
}

TEST(WriteShards, RoundTripThroughCfrecordSource) {
  TempDir dir;
  std::vector<Sample> samples;
  for (int i = 0; i < 23; ++i) samples.push_back(make_sample(100 + i));

  const auto paths = write_shards(samples, dir.str(), "train",
                                  /*samples_per_shard=*/8, /*seed=*/3);
  EXPECT_EQ(paths.size(), 3u);  // ceil(23 / 8)

  CfrecordSource source(paths);
  EXPECT_EQ(source.size(), 23u);
  EXPECT_EQ(source.shard_count(), 3u);

  // Every original sample must appear exactly once (identified by its
  // target triple).
  const auto reader = source.make_reader();
  std::set<float> seen;
  for (std::size_t i = 0; i < source.size(); ++i) {
    seen.insert(reader->get(i).target[0]);
  }
  std::set<float> expected;
  for (const auto& s : samples) expected.insert(s.target[0]);
  EXPECT_EQ(seen, expected);
}

TEST(WriteShards, ShuffleIsDeterministicInSeed) {
  TempDir dir_a;
  TempDir dir_b;
  std::vector<Sample> samples;
  for (int i = 0; i < 10; ++i) samples.push_back(make_sample(200 + i));
  const auto a = write_shards(samples, dir_a.str(), "x", 4, 7);
  const auto b = write_shards(samples, dir_b.str(), "x", 4, 7);
  CfrecordSource sa(a);
  CfrecordSource sb(b);
  const auto ra = sa.make_reader();
  const auto rb = sb.make_reader();
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(ra->get(i).target[0], rb->get(i).target[0]);
  }
}

TEST(SplitByGroup, GroupsNeverStraddleSplits) {
  std::vector<std::size_t> groups;
  for (std::size_t sim = 0; sim < 40; ++sim) {
    for (int sub = 0; sub < 8; ++sub) groups.push_back(sim);
  }
  const SplitIndices split = split_by_group(groups, 0.15, 0.05, 9);
  EXPECT_EQ(split.train.size() + split.val.size() + split.test.size(),
            groups.size());
  std::set<std::size_t> val_groups;
  std::set<std::size_t> test_groups;
  for (const std::size_t i : split.val) val_groups.insert(groups[i]);
  for (const std::size_t i : split.test) test_groups.insert(groups[i]);
  std::set<std::size_t> train_groups;
  for (const std::size_t i : split.train) train_groups.insert(groups[i]);
  for (const std::size_t g : val_groups) {
    EXPECT_EQ(train_groups.count(g), 0u);
    EXPECT_EQ(test_groups.count(g), 0u);
  }
  // 15% of 40 = 6 val groups, 5% = 2 test groups.
  EXPECT_EQ(val_groups.size(), 6u);
  EXPECT_EQ(test_groups.size(), 2u);
}

TEST(SplitByGroup, RejectsBadFractions) {
  const std::vector<std::size_t> groups{0, 1};
  EXPECT_THROW(split_by_group(groups, 0.7, 0.5, 1), std::invalid_argument);
  EXPECT_THROW(split_by_group(groups, -0.1, 0.1, 1), std::invalid_argument);
}

TEST(EpochIndices, PartitionIsDisjointAndComplete) {
  const std::size_t total = 64;
  const int nranks = 4;
  std::set<std::size_t> all;
  for (int r = 0; r < nranks; ++r) {
    const auto mine = epoch_indices_for_rank(total, nranks, r, 5, true);
    EXPECT_EQ(mine.size(), total / nranks);
    for (const std::size_t i : mine) {
      EXPECT_TRUE(all.insert(i).second) << "duplicate index " << i;
    }
  }
  EXPECT_EQ(all.size(), total);
}

TEST(EpochIndices, RemainderIsDropped) {
  const auto mine = epoch_indices_for_rank(10, 3, 0, 1, false);
  EXPECT_EQ(mine.size(), 3u);
}

TEST(EpochIndices, ShuffleChangesWithSeedOnly) {
  const auto a = epoch_indices_for_rank(32, 2, 0, 1, true);
  const auto b = epoch_indices_for_rank(32, 2, 0, 1, true);
  const auto c = epoch_indices_for_rank(32, 2, 0, 2, true);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Pipeline, DeliversEveryIndexedSampleOnce) {
  std::vector<Sample> samples;
  for (int i = 0; i < 12; ++i) samples.push_back(make_sample(300 + i));
  InMemorySource source(std::move(samples));

  PipelineConfig config;
  config.queue_capacity = 3;
  config.io_threads = 2;
  Pipeline pipeline(source, config);

  std::vector<std::size_t> indices{0, 2, 4, 6, 8, 10};
  pipeline.start_epoch(indices);
  std::multiset<float> got;
  Sample sample;
  while (pipeline.next(sample)) got.insert(sample.target[0]);
  EXPECT_EQ(got.size(), indices.size());

  const auto reader = source.make_reader();
  for (const std::size_t i : indices) {
    EXPECT_EQ(got.count(reader->get(i).target[0]), 1u);
  }
}

TEST(Pipeline, SupportsMultipleEpochs) {
  std::vector<Sample> samples;
  for (int i = 0; i < 6; ++i) samples.push_back(make_sample(400 + i));
  InMemorySource source(std::move(samples));
  Pipeline pipeline(source, PipelineConfig{});
  for (int epoch = 0; epoch < 3; ++epoch) {
    pipeline.start_epoch({0, 1, 2, 3, 4, 5});
    int count = 0;
    Sample sample;
    while (pipeline.next(sample)) ++count;
    EXPECT_EQ(count, 6);
  }
}

TEST(Pipeline, EmptyEpochTerminatesImmediately) {
  InMemorySource source({});
  Pipeline pipeline(source, PipelineConfig{});
  pipeline.start_epoch({});
  Sample sample;
  EXPECT_FALSE(pipeline.next(sample));
}

TEST(Pipeline, StartEpochBeforeDrainThrows) {
  std::vector<Sample> samples;
  samples.push_back(make_sample(500));
  samples.push_back(make_sample(501));
  InMemorySource source(std::move(samples));
  Pipeline pipeline(source, PipelineConfig{});
  pipeline.start_epoch({0, 1});
  Sample sample;
  ASSERT_TRUE(pipeline.next(sample));
  EXPECT_THROW(pipeline.start_epoch({0}), std::logic_error);
  // Drain, then a new epoch is fine.
  ASSERT_TRUE(pipeline.next(sample));
  ASSERT_FALSE(pipeline.next(sample));
  pipeline.start_epoch({0});
  ASSERT_TRUE(pipeline.next(sample));
}

TEST(Pipeline, TracksWaitTime) {
  std::vector<Sample> samples;
  samples.push_back(make_sample(600));
  InMemorySource source(std::move(samples));
  PipelineConfig config;
  config.injected_read_delay = 0.02;  // slow "filesystem"
  Pipeline pipeline(source, config);
  pipeline.start_epoch({0});
  Sample sample;
  ASSERT_TRUE(pipeline.next(sample));
  ASSERT_FALSE(pipeline.next(sample));
  EXPECT_GT(pipeline.wait_time().total(), 0.005);
}

TEST(Pipeline, RejectsBadConfig) {
  InMemorySource source({});
  PipelineConfig bad;
  bad.queue_capacity = 0;
  EXPECT_THROW(Pipeline(source, bad), std::invalid_argument);
  bad = PipelineConfig{};
  bad.io_threads = 0;
  EXPECT_THROW(Pipeline(source, bad), std::invalid_argument);
}

TEST(Pipeline, ReadsFromCfrecordShards) {
  TempDir dir;
  std::vector<Sample> samples;
  for (int i = 0; i < 9; ++i) samples.push_back(make_sample(700 + i));
  const auto paths = write_shards(samples, dir.str(), "p", 4, 1);
  CfrecordSource source(paths);

  PipelineConfig config;
  config.io_threads = 2;
  Pipeline pipeline(source, config);
  std::vector<std::size_t> all(source.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  pipeline.start_epoch(all);
  int count = 0;
  Sample sample;
  while (pipeline.next(sample)) {
    EXPECT_EQ(sample.volume.shape(), tensor::Shape({1, 4, 4, 4}));
    ++count;
  }
  EXPECT_EQ(count, 9);
}

}  // namespace
}  // namespace cf::data
