#include "dnn/activations.hpp"

#include <stdexcept>

namespace cf::dnn {

using tensor::Shape;
using tensor::Tensor;

namespace {

/// Below this element count the pool's dispatch overhead exceeds the
/// sweep itself (the fc_act layers are 32-128 floats); parallel_for
/// runs the identical body serially on the caller.
constexpr std::size_t kSerialWorkLimit = 4096;

}  // namespace

LeakyRelu::LeakyRelu(std::string name, float negative_slope)
    : Layer(std::move(name)), slope_(negative_slope) {
  if (negative_slope < 0.0f || negative_slope >= 1.0f) {
    throw std::invalid_argument("LeakyRelu: slope must be in [0, 1)");
  }
}

Shape LeakyRelu::plan(const Shape& input) {
  set_shapes(input, input);
  return input;
}

FlopCounts LeakyRelu::flops() const {
  FlopCounts counts;
  counts.fwd = input_shape().numel();
  counts.bwd_data = input_shape().numel();
  return counts;
}

void LeakyRelu::forward(const Tensor& src, Tensor& dst,
                        LayerExecState& exec,
                        runtime::ThreadPool& pool) const {
  const runtime::ScopedTimer timer(exec.timers.fwd);
  if (src.shape() != input_shape() || dst.shape() != output_shape()) {
    throw std::invalid_argument("LeakyRelu::forward: shape mismatch");
  }
  const float slope = slope_;
  const float* s = src.data();
  float* d = dst.data();
  pool.parallel_for(src.size(),
                    [&](std::size_t begin, std::size_t end, std::size_t) {
                      for (std::size_t i = begin; i < end; ++i) {
                        const float v = s[i];
                        d[i] = v > 0.0f ? v : slope * v;
                      }
                    },
                    kSerialWorkLimit);
}

void LeakyRelu::backward(const Tensor& src, Tensor& ddst, Tensor& dsrc,
                         bool need_dsrc, LayerExecState& exec,
                         runtime::ThreadPool& pool) const {
  if (!need_dsrc) return;
  const runtime::ScopedTimer timer(exec.timers.bwd_data);
  if (src.shape() != input_shape() || ddst.shape() != output_shape() ||
      dsrc.shape() != input_shape()) {
    throw std::invalid_argument("LeakyRelu::backward: shape mismatch");
  }
  const float slope = slope_;
  const float* s = src.data();
  const float* dd = ddst.data();
  float* ds = dsrc.data();
  pool.parallel_for(src.size(),
                    [&](std::size_t begin, std::size_t end, std::size_t) {
                      for (std::size_t i = begin; i < end; ++i) {
                        ds[i] = s[i] > 0.0f ? dd[i] : slope * dd[i];
                      }
                    },
                    kSerialWorkLimit);
}

}  // namespace cf::dnn
