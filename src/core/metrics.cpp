#include "core/metrics.hpp"

#include <cmath>
#include <stdexcept>

namespace cf::core {

namespace {

void require_nonempty(const std::vector<Prediction>& predictions) {
  if (predictions.empty()) {
    throw std::invalid_argument("metrics: no predictions");
  }
}

}  // namespace

std::array<double, 3> mean_relative_error(
    const std::vector<Prediction>& predictions) {
  require_nonempty(predictions);
  std::array<double, 3> acc{};
  for (const Prediction& p : predictions) {
    for (std::size_t i = 0; i < 3; ++i) {
      if (p.predicted[i] == 0.0) {
        throw std::invalid_argument(
            "mean_relative_error: zero model estimate");
      }
      acc[i] += std::fabs(p.predicted[i] - p.truth[i]) /
                std::fabs(p.predicted[i]);
    }
  }
  for (double& v : acc) v /= static_cast<double>(predictions.size());
  return acc;
}

std::array<double, 3> rmse(const std::vector<Prediction>& predictions) {
  require_nonempty(predictions);
  std::array<double, 3> acc{};
  for (const Prediction& p : predictions) {
    for (std::size_t i = 0; i < 3; ++i) {
      const double d = p.predicted[i] - p.truth[i];
      acc[i] += d * d;
    }
  }
  for (double& v : acc) {
    v = std::sqrt(v / static_cast<double>(predictions.size()));
  }
  return acc;
}

std::array<double, 3> correlation(
    const std::vector<Prediction>& predictions) {
  require_nonempty(predictions);
  std::array<double, 3> result{};
  const double n = static_cast<double>(predictions.size());
  for (std::size_t i = 0; i < 3; ++i) {
    double sx = 0.0, sy = 0.0, sxx = 0.0, syy = 0.0, sxy = 0.0;
    for (const Prediction& p : predictions) {
      const double x = p.predicted[i];
      const double y = p.truth[i];
      sx += x;
      sy += y;
      sxx += x * x;
      syy += y * y;
      sxy += x * y;
    }
    const double cov = sxy / n - sx / n * sy / n;
    const double vx = sxx / n - sx / n * sx / n;
    const double vy = syy / n - sy / n * sy / n;
    result[i] = (vx > 0.0 && vy > 0.0) ? cov / std::sqrt(vx * vy) : 0.0;
  }
  return result;
}

}  // namespace cf::core
