#include "dnn/network.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace cf::dnn {

using tensor::Shape;
using tensor::Tensor;

void Network::add(std::unique_ptr<Layer> layer) {
  // Sequential sugar: consume the previously added node (the network
  // input for the first layer) — lowers onto a linear graph.
  add_node(std::move(layer), {last_node_});
}

NodeId Network::add_node(std::unique_ptr<Layer> layer,
                         std::vector<NodeId> inputs) {
  if (finalized_) {
    throw std::logic_error("Network::add_node: network already finalized");
  }
  last_node_ = graph_.add(std::move(layer), std::move(inputs));
  return last_node_;
}

void Network::set_heads(std::vector<NodeId> heads) {
  if (finalized_) {
    throw std::logic_error("Network::set_heads: network already finalized");
  }
  graph_.set_heads(std::move(heads));
}

namespace {

/// One tensor's live interval on a pass timeline (positions inclusive).
struct LiveInterval {
  std::size_t node = 0;
  std::size_t start = 0;
  std::size_t end = 0;
  std::size_t size = 0;  // floats
};

/// Greedy interval coloring: process intervals in birth order and put
/// each tensor in the first slot whose previous occupant is already
/// dead, growing each slot to its largest occupant. Slots are then
/// canonically reordered by the smallest node id they serve before
/// offsets are assigned — on a linear chain this reproduces the
/// historical even/odd parity placement bit for bit (the slot serving
/// node 0 sits at offset 0).
Network::SlotPlan color_slots(std::vector<LiveInterval> intervals,
                              std::size_t n_nodes) {
  std::sort(intervals.begin(), intervals.end(),
            [](const LiveInterval& a, const LiveInterval& b) {
              if (a.start != b.start) return a.start < b.start;
              // Equal starts: the contribution written earliest on the
              // timeline first (for diffs that is the head seeding /
              // the later-scheduled node's backward).
              return a.node > b.node;
            });

  struct Slot {
    std::size_t end = 0;
    std::size_t size = 0;
    std::size_t min_node = 0;
  };
  std::vector<Slot> slots;
  std::vector<std::size_t> slot_of(n_nodes, 0);
  for (const LiveInterval& iv : intervals) {
    std::size_t chosen = slots.size();
    for (std::size_t s = 0; s < slots.size(); ++s) {
      if (slots[s].end < iv.start) {
        chosen = s;
        break;
      }
    }
    if (chosen == slots.size()) {
      slots.push_back(Slot{iv.end, iv.size, iv.node});
    } else {
      slots[chosen].end = iv.end;
      slots[chosen].size = std::max(slots[chosen].size, iv.size);
      slots[chosen].min_node = std::min(slots[chosen].min_node, iv.node);
    }
    slot_of[iv.node] = chosen;
  }

  std::vector<std::size_t> order(slots.size());
  for (std::size_t s = 0; s < order.size(); ++s) order[s] = s;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return slots[a].min_node < slots[b].min_node;
  });
  std::vector<std::size_t> slot_offset(slots.size(), 0);
  Network::SlotPlan plan;
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    slot_offset[order[rank]] = plan.total;
    plan.total += slots[order[rank]].size;
  }
  plan.offsets.resize(n_nodes, 0);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    plan.offsets[i] = slot_offset[slot_of[i]];
  }
  plan.slot_count = slots.size();
  return plan;
}

}  // namespace

void Network::plan_memory() {
  const std::size_t n = graph_.size();
  mem_plan_ = MemPlan{};
  std::vector<std::size_t> sizes(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Layer& layer = graph_.layer(i);
    sizes[i] = static_cast<std::size_t>(layer.output_shape().numel());
    mem_plan_.act_sum += sizes[i];
    mem_plan_.diff_sum += sizes[i];
    const std::size_t sc = layer.backward_scratch_floats();
    mem_plan_.scratch_max = std::max(mem_plan_.scratch_max, sc);
    mem_plan_.scratch_sum += sc;
    const std::size_t ws = layer.forward_workspace_floats();
    mem_plan_.workspace_max = std::max(mem_plan_.workspace_max, ws);
    mem_plan_.workspace_sum += ws;
  }

  // Activation liveness (forward timeline, position i = node i's
  // forward): born when produced, dead after the last consumer ran;
  // heads survive the whole pass (the caller reads them).
  std::vector<LiveInterval> act_iv(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t end = graph_.is_head(i) ? n : i;
    for (NodeId c : graph_.consumers(i)) end = std::max(end, c);
    act_iv[i] = {i, i, end, sizes[i]};
  }
  act_slots_ = color_slots(std::move(act_iv), n);

  // Diff liveness (reverse timeline, position n-1-i = node i's
  // backward): born at the first gradient contribution — a consumer's
  // backward, or the pre-sweep dloss seeding for heads — and dead once
  // node i's own backward consumed it.
  std::vector<LiveInterval> diff_iv(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t start =
        graph_.is_head(i) ? 0 : std::numeric_limits<std::size_t>::max();
    for (NodeId c : graph_.consumers(i)) {
      start = std::min(start, n - 1 - c);
    }
    diff_iv[i] = {i, start, n - 1 - i, sizes[i]};
  }
  diff_slots_ = color_slots(std::move(diff_iv), n);

  // Fan-in accumulation buffer: a node whose diff receives more than
  // one contribution (several consumers, or a consumed head) needs a
  // place to compute the non-first contributions before the in-order
  // add. One shared buffer sized to the largest such tensor suffices —
  // contributions are strictly sequential within a backward sweep.
  bwd_accum_floats_ = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t contributions =
        graph_.consumers(i).size() + (graph_.is_head(i) ? 1 : 0);
    if (contributions > 1) {
      bwd_accum_floats_ = std::max(bwd_accum_floats_, sizes[i]);
    }
  }
}

void Network::finalize(const Shape& input_shape) {
  if (finalized_) throw std::logic_error("Network::finalize: called twice");
  if (graph_.empty()) {
    throw std::logic_error("Network::finalize: no layers");
  }
  if (fuse_eltwise_) {
    fused_pairs_ = graph_.fuse_eltwise();
    obs::Registry::global().gauge("dnn/fused_pairs").set(
        static_cast<double>(fused_pairs_));
  }
  graph_.seal();
  input_shape_ = input_shape;

  // Plan pass over the schedule: every node sees its producers' output
  // shapes, in edge order.
  const std::size_t n = graph_.size();
  std::vector<Shape> shapes(n);
  std::vector<Shape> node_inputs;
  for (std::size_t i = 0; i < n; ++i) {
    node_inputs.clear();
    for (NodeId p : graph_.inputs(i)) {
      node_inputs.push_back(p == kGraphInput ? input_shape : shapes[p]);
    }
    shapes[i] = graph_.layer(i).plan_multi(node_inputs);
  }

  // Output heads: a single head keeps its own shape; multiple heads
  // concatenate flat, in head order.
  const std::vector<NodeId>& heads = graph_.heads();
  head_offsets_.assign(heads.size(), 0);
  if (heads.size() == 1) {
    output_shape_ = shapes[heads[0]];
  } else {
    std::int64_t total = 0;
    for (std::size_t h = 0; h < heads.size(); ++h) {
      head_offsets_[h] = static_cast<std::size_t>(total);
      total += shapes[heads[h]].numel();
    }
    output_shape_ = Shape{total};
  }

  build_arena();
  plan_memory();

  auto& reg = obs::Registry::global();
  reg.gauge("dnn/activation_bytes")
      .set(static_cast<double>(activation_bytes()));
  reg.gauge("dnn/diff_arena_bytes")
      .set(static_cast<double>(diff_arena_bytes()));
  reg.gauge("dnn/scratch_bytes").set(static_cast<double>(scratch_bytes()));
  reg.gauge("dnn/graph/nodes").set(static_cast<double>(n));
  reg.gauge("dnn/graph/edges")
      .set(static_cast<double>(graph_.edge_count()));
  reg.gauge("dnn/graph/heads").set(static_cast<double>(heads.size()));
  finalized_ = true;
}

ExecContext Network::make_context(ExecMode mode) {
  if (!finalized_) {
    throw std::logic_error("Network::make_context: not finalized");
  }
  if (mode == ExecMode::kTraining && weights_shared_) {
    throw std::logic_error(
        "Network::make_context: shape views are inference-only "
        "(train through the parent network)");
  }
  return ExecContext(*this, mode);
}

ExecContext Network::make_context(ExecMode mode) const {
  if (mode != ExecMode::kInference) {
    throw std::logic_error(
        "Network::make_context: only inference contexts can be created "
        "from a const Network");
  }
  if (!finalized_) {
    throw std::logic_error("Network::make_context: not finalized");
  }
  // The cast only unlocks const accessors in practice: an inference
  // context performs no mutating Network access (enforced by the mode
  // checks in ExecContext), so this never writes through the pointer.
  return ExecContext(const_cast<Network&>(*this), mode);
}

ExecContext Network::make_context(ExecMode mode, Precision precision) {
  if (!finalized_) {
    throw std::logic_error("Network::make_context: not finalized");
  }
  if (precision != Precision::kFp32 && mode != ExecMode::kInference) {
    throw std::logic_error(
        "Network::make_context: training contexts are fp32-only "
        "(DESIGN.md §2.5)");
  }
  if (mode == ExecMode::kTraining && weights_shared_) {
    throw std::logic_error(
        "Network::make_context: shape views are inference-only "
        "(train through the parent network)");
  }
  if (!precision_prepared(precision)) {
    throw std::logic_error(
        std::string("Network::make_context: network not prepared for ") +
        std::string(to_string(precision)) +
        " (call prepare_inference_precision after loading weights)");
  }
  return ExecContext(*this, mode, precision);
}

ExecContext Network::make_context(ExecMode mode, Precision precision) const {
  if (mode != ExecMode::kInference) {
    throw std::logic_error(
        "Network::make_context: only inference contexts can be created "
        "from a const Network");
  }
  if (!finalized_) {
    throw std::logic_error("Network::make_context: not finalized");
  }
  if (!precision_prepared(precision)) {
    throw std::logic_error(
        std::string("Network::make_context: network not prepared for ") +
        std::string(to_string(precision)) +
        " (call prepare_inference_precision after loading weights)");
  }
  return ExecContext(const_cast<Network&>(*this), mode, precision);
}

ExecContext Network::make_context(ExecMode mode, Precision precision,
                                  const IntraopPlan& plan) {
  ExecContext ctx = make_context(mode, precision);
  ctx.apply_intraop(plan);
  return ctx;
}

ExecContext Network::make_context(ExecMode mode, Precision precision,
                                  const IntraopPlan& plan) const {
  ExecContext ctx = make_context(mode, precision);
  ctx.apply_intraop(plan);
  return ctx;
}

std::unique_ptr<Network> Network::make_shape_view(
    const Shape& input_shape) const {
  if (!finalized_) {
    throw std::logic_error("Network::make_shape_view: not finalized");
  }
  if (weights_shared_) {
    throw std::logic_error(
        "Network::make_shape_view: cannot view a view (use the parent)");
  }
  auto view = std::make_unique<Network>();
  // The topology is already post-fusion; re-running the fusion pass
  // would double-fuse. Memory planning carries over.
  view->set_fuse_eltwise(false);
  view->set_memory_planning(memplan_);
  for (std::size_t i = 0; i < graph_.size(); ++i) {
    view->add_node(graph_.layer(i).clone_unplanned(), graph_.inputs(i));
  }
  view->set_heads(graph_.heads());
  view->finalize(input_shape);

  // Share the weights: every view parameter tensor aliases the parent's
  // arena segment (no copy — see Tensor::alias), so a weight reload on
  // the parent is immediately visible through the view. Requires every
  // parameter shape to be input-size invariant.
  for (std::size_t i = 0; i < graph_.size(); ++i) {
    if (view->segment_sizes_[i] != segment_sizes_[i]) {
      throw std::invalid_argument(
          "Network::make_shape_view: layer " + graph_.layer(i).name() +
          "'s parameter count depends on the input shape (" +
          std::to_string(view->segment_sizes_[i]) + " vs " +
          std::to_string(segment_sizes_[i]) +
          " floats) — use a shape-agnostic head (GlobalAvgPool)");
    }
  }
  // Views only read weights (inference-only, enforced in make_context),
  // so aliasing through the const parent is sound — same argument as
  // the const make_context overloads.
  float* arena = const_cast<float*>(param_arena_.data());
  std::size_t offset = 0;
  for (std::size_t i = 0; i < view->graph_.size(); ++i) {
    for (const ParamSpec& p : view->graph_.layer(i).param_specs()) {
      const std::size_t count =
          static_cast<std::size_t>(p.value->shape().numel());
      p.value->alias({arena + offset, count});
      offset += count;
    }
  }
  view->param_arena_ = runtime::AlignedBuffer<float>{};
  view->weights_shared_ = true;
  return view;
}

void Network::prepare_inference_precision(Precision precision) {
  if (!finalized_) {
    throw std::logic_error(
        "Network::prepare_inference_precision: not finalized");
  }
  if (precision == Precision::kFp32) return;  // always ready
  for (std::size_t i = 0; i < graph_.size(); ++i) {
    const Layer& layer = graph_.layer(i);
    if (!layer.supports_precision(precision)) {
      throw std::logic_error(
          "Network::prepare_inference_precision: layer " + layer.name() +
          " does not support " + std::string(to_string(precision)));
    }
  }
  if (precision == Precision::kBf16) {
    if (weights_shared_) {
      throw std::logic_error(
          "Network::prepare_inference_precision: a shape view has no "
          "param arena to image — prepare bf16 on the parent");
    }
    // bf16 image of the whole arena; segment offsets carry over 1:1.
    if (bf16_arena_.size() != param_arena_.size()) {
      bf16_arena_ = runtime::AlignedBuffer<bf16_t>(param_arena_.size());
    }
    bf16_from_f32(param_arena_.data(), bf16_arena_.data(),
                  param_arena_.size());
    // Layers whose bf16 kernels read a different weight packing (the
    // dense layers' vdpbf16ps pair-interleaved tiles; convs keep the
    // plain image and widen on load) repack their slice in place.
    for (std::size_t i = 0; i < graph_.size(); ++i) {
      if (segment_sizes_[i] == 0) continue;
      graph_.layer(i).pack_weights_bf16(
          {bf16_arena_.data() + segment_offsets_[i], segment_sizes_[i]});
    }
    bf16_prepared_ = true;
    obs::Registry::global().gauge("dnn/precision/bf16_weight_bytes").set(
        static_cast<double>(bf16_arena_.size() * sizeof(bf16_t)));
    return;
  }
  // kInt8Weights: per-layer quant + scale tables (per-view on shape
  // views — quantization reads the aliased weight tensors, not the
  // arena).
  const std::size_t n = graph_.size();
  int8_weight_offsets_.assign(n, 0);
  int8_weight_sizes_.assign(n, 0);
  int8_scale_offsets_.assign(n, 0);
  int8_scale_sizes_.assign(n, 0);
  std::size_t wtotal = 0, stotal = 0;
  for (std::size_t i = 0; i < n; ++i) {
    int8_weight_offsets_[i] = wtotal;
    int8_weight_sizes_[i] = graph_.layer(i).int8_weight_count();
    wtotal += int8_weight_sizes_[i];
    int8_scale_offsets_[i] = stotal;
    int8_scale_sizes_[i] = graph_.layer(i).int8_scale_count();
    stotal += int8_scale_sizes_[i];
  }
  if (int8_arena_.size() != wtotal) {
    int8_arena_ = runtime::AlignedBuffer<std::int8_t>(wtotal);
  }
  if (int8_scales_.size() != stotal) {
    int8_scales_ = runtime::AlignedBuffer<float>(stotal);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (int8_weight_sizes_[i] == 0) continue;
    graph_.layer(i).quantize_weights_int8(
        {int8_arena_.data() + int8_weight_offsets_[i],
         int8_weight_sizes_[i]},
        {int8_scales_.data() + int8_scale_offsets_[i],
         int8_scale_sizes_[i]});
  }
  int8_prepared_ = true;
  obs::Registry::global().gauge("dnn/precision/int8_weight_bytes").set(
      static_cast<double>(int8_arena_.size() * sizeof(std::int8_t) +
                          int8_scales_.size() * sizeof(float)));
}

std::size_t Network::activation_bytes() const noexcept {
  return mem_plan_.act_sum * sizeof(float);
}

std::size_t Network::diff_arena_bytes() const noexcept {
  const std::size_t n = memplan_ ? diff_slots_.total : mem_plan_.diff_sum;
  return n * sizeof(float);
}

std::size_t Network::scratch_bytes() const noexcept {
  const std::size_t n =
      memplan_ ? mem_plan_.scratch_max : mem_plan_.scratch_sum;
  return n * sizeof(float);
}

std::span<float> Network::param_arena() {
  if (weights_shared_) {
    throw std::logic_error(
        "Network::param_arena: shape views share the parent's arena");
  }
  return {param_arena_.data(), param_arena_.size()};
}

void Network::build_arena() {
  const std::size_t n = graph_.size();
  segment_offsets_.assign(n, 0);
  segment_sizes_.assign(n, 0);
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    segment_offsets_[i] = total;
    for (const ParamSpec& p : graph_.layer(i).param_specs()) {
      segment_sizes_[i] += static_cast<std::size_t>(p.value->shape().numel());
    }
    total += segment_sizes_[i];
  }
  param_arena_ = runtime::AlignedBuffer<float>(total);
  param_total_ = total;
  // Rebind every layer weight tensor onto its arena segment; plan()
  // contents (zeros — init runs after finalize) are carried over by
  // rebind.
  std::size_t offset = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (const ParamSpec& p : graph_.layer(i).param_specs()) {
      const std::size_t count =
          static_cast<std::size_t>(p.value->shape().numel());
      p.value->rebind({param_arena_.data() + offset, count});
      offset += count;
    }
  }
}

std::int64_t Network::param_count() const {
  if (finalized_) return static_cast<std::int64_t>(param_total_);
  // param_specs() is non-const only because it hands out mutable
  // tensor pointers; counting reads shapes alone.
  std::int64_t count = 0;
  for (std::size_t i = 0; i < graph_.size(); ++i) {
    count += const_cast<Layer&>(graph_.layer(i)).param_count();
  }
  return count;
}

FlopCounts Network::flops(bool skip_first_bwd_data) const {
  FlopCounts total;
  for (std::size_t i = 0; i < graph_.size(); ++i) {
    FlopCounts f = graph_.layer(i).flops();
    if (skip_first_bwd_data) {
      // A node reading only the network input owes no data gradient
      // (the input is data, §V-A workflow).
      bool input_only = true;
      for (NodeId p : graph_.inputs(i)) {
        if (p != kGraphInput) input_only = false;
      }
      if (input_only) f.bwd_data = 0;
    }
    total += f;
  }
  return total;
}

namespace {

void check_flat_size(std::size_t got, std::size_t expected) {
  if (got != expected) {
    throw std::invalid_argument(
        "Network flat vector: span size does not match parameter count");
  }
}

}  // namespace

void Network::copy_params_to(std::span<float> out) const {
  if (weights_shared_) {
    throw std::logic_error(
        "Network::copy_params_to: shape views share the parent's "
        "weights — copy from the parent");
  }
  check_flat_size(out.size(), param_arena_.size());
  if (param_arena_.empty()) return;
  std::memcpy(out.data(), param_arena_.data(),
              param_arena_.size() * sizeof(float));
}

void Network::set_params_from(std::span<const float> in) {
  if (weights_shared_) {
    throw std::logic_error(
        "Network::set_params_from: shape views share the parent's "
        "weights — load through the parent");
  }
  check_flat_size(in.size(), param_arena_.size());
  if (param_arena_.empty()) return;
  std::memcpy(param_arena_.data(), in.data(),
              param_arena_.size() * sizeof(float));
}

}  // namespace cf::dnn
