#include "cosmo/zeldovich.hpp"

#include <cmath>
#include <stdexcept>

#include "cosmo/fft3d.hpp"

namespace cf::cosmo {

namespace {

/// Signed wavenumber for axis index i, with the Nyquist plane flagged:
/// derivatives (multiplication by i*k) must zero the Nyquist mode to
/// keep the inverse transform real.
struct Wavenumber {
  double k = 0.0;
  bool nyquist = false;
};

Wavenumber wavenumber(std::int64_t i, std::int64_t n, double kf) {
  Wavenumber w;
  w.nyquist = (i == n / 2);
  w.k = kf * static_cast<double>(fft_freq_index(i, n));
  return w;
}

/// Inverse-FFTs the gradient component  i * (k_axis / k^2) * modes
/// into a real field. axis: 0 = x, 1 = y, 2 = z.
std::vector<float> gradient_inverse_laplacian(
    const std::vector<std::complex<float>>& modes, const GridSpec& grid,
    int axis, runtime::ThreadPool& pool) {
  const std::int64_t n = grid.n;
  const double kf = grid.k_fundamental();
  std::vector<std::complex<float>> work(modes.size());

  pool.parallel_for(
      static_cast<std::size_t>(n),
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t zi = begin; zi < end; ++zi) {
          const std::int64_t z = static_cast<std::int64_t>(zi);
          const Wavenumber wz = wavenumber(z, n, kf);
          for (std::int64_t y = 0; y < n; ++y) {
            const Wavenumber wy = wavenumber(y, n, kf);
            for (std::int64_t x = 0; x < n; ++x) {
              const Wavenumber wx = wavenumber(x, n, kf);
              const std::size_t idx =
                  static_cast<std::size_t>((z * n + y) * n + x);
              const double k2 = wx.k * wx.k + wy.k * wy.k + wz.k * wz.k;
              const Wavenumber& wa = axis == 0 ? wx : (axis == 1 ? wy : wz);
              if (k2 == 0.0 || wa.nyquist) {
                work[idx] = {0.0f, 0.0f};
                continue;
              }
              // i * k_a / k^2 * delta
              const std::complex<double> d(modes[idx]);
              const std::complex<double> value =
                  std::complex<double>(0.0, wa.k / k2) * d;
              work[idx] = std::complex<float>(value);
            }
          }
        }
      });

  Fft3d fft(n);
  fft.inverse(work.data(), pool);
  std::vector<float> field(modes.size());
  for (std::size_t i = 0; i < work.size(); ++i) field[i] = work[i].real();
  return field;
}

/// Inverse-FFTs  (k_a * k_b / k^2) * modes  — the second-derivative
/// fields phi_{,ab} of the first-order potential (note phi1_k =
/// -delta_k / k^2, so -k_a k_b phi1_k = +k_a k_b delta_k / k^2).
std::vector<float> second_derivative(
    const std::vector<std::complex<float>>& modes, const GridSpec& grid,
    int axis_a, int axis_b, runtime::ThreadPool& pool) {
  const std::int64_t n = grid.n;
  const double kf = grid.k_fundamental();
  std::vector<std::complex<float>> work(modes.size());

  pool.parallel_for(
      static_cast<std::size_t>(n),
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t zi = begin; zi < end; ++zi) {
          const std::int64_t z = static_cast<std::int64_t>(zi);
          const Wavenumber wz = wavenumber(z, n, kf);
          for (std::int64_t y = 0; y < n; ++y) {
            const Wavenumber wy = wavenumber(y, n, kf);
            for (std::int64_t x = 0; x < n; ++x) {
              const Wavenumber wx = wavenumber(x, n, kf);
              const std::size_t idx =
                  static_cast<std::size_t>((z * n + y) * n + x);
              const double k2 = wx.k * wx.k + wy.k * wy.k + wz.k * wz.k;
              const Wavenumber& wa =
                  axis_a == 0 ? wx : (axis_a == 1 ? wy : wz);
              const Wavenumber& wb =
                  axis_b == 0 ? wx : (axis_b == 1 ? wy : wz);
              if (k2 == 0.0) {
                work[idx] = {0.0f, 0.0f};
                continue;
              }
              const double factor = wa.k * wb.k / k2;
              work[idx] = std::complex<float>(
                  std::complex<double>(modes[idx]) * factor);
            }
          }
        }
      });

  Fft3d fft(n);
  fft.inverse(work.data(), pool);
  std::vector<float> field(modes.size());
  for (std::size_t i = 0; i < work.size(); ++i) field[i] = work[i].real();
  return field;
}

float wrap(double value, double box) {
  double w = std::fmod(value, box);
  if (w < 0.0) w += box;
  // Guard against fmod returning exactly box after rounding.
  if (w >= box) w = 0.0;
  return static_cast<float>(w);
}

ParticleSet displace_lattice(const std::vector<float>& psi_x,
                             const std::vector<float>& psi_y,
                             const std::vector<float>& psi_z, double growth,
                             const GridSpec& grid,
                             runtime::ThreadPool& pool) {
  const std::int64_t n = grid.n;
  const double cell = grid.cell_size();
  ParticleSet particles;
  particles.box_size = grid.box_size;
  particles.x.resize(static_cast<std::size_t>(grid.cells()));
  particles.y.resize(static_cast<std::size_t>(grid.cells()));
  particles.z.resize(static_cast<std::size_t>(grid.cells()));

  pool.parallel_for(
      static_cast<std::size_t>(n),
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t zi = begin; zi < end; ++zi) {
          const std::int64_t z = static_cast<std::int64_t>(zi);
          for (std::int64_t y = 0; y < n; ++y) {
            for (std::int64_t x = 0; x < n; ++x) {
              const std::size_t idx =
                  static_cast<std::size_t>((z * n + y) * n + x);
              particles.x[idx] = wrap(
                  x * cell + growth * psi_x[idx], grid.box_size);
              particles.y[idx] = wrap(
                  y * cell + growth * psi_y[idx], grid.box_size);
              particles.z[idx] = wrap(
                  z * cell + growth * psi_z[idx], grid.box_size);
            }
          }
        }
      });
  return particles;
}

}  // namespace

ParticleSet zeldovich_displace(const std::vector<std::complex<float>>& delta_k,
                               const GridSpec& grid, double growth,
                               runtime::ThreadPool& pool) {
  if (delta_k.size() != static_cast<std::size_t>(grid.cells())) {
    throw std::invalid_argument("zeldovich_displace: mode count mismatch");
  }
  const auto psi_x = gradient_inverse_laplacian(delta_k, grid, 0, pool);
  const auto psi_y = gradient_inverse_laplacian(delta_k, grid, 1, pool);
  const auto psi_z = gradient_inverse_laplacian(delta_k, grid, 2, pool);
  return displace_lattice(psi_x, psi_y, psi_z, growth, grid, pool);
}

ParticleSet lpt2_displace(const std::vector<std::complex<float>>& delta_k,
                          const GridSpec& grid, double growth,
                          runtime::ThreadPool& pool) {
  if (delta_k.size() != static_cast<std::size_t>(grid.cells())) {
    throw std::invalid_argument("lpt2_displace: mode count mismatch");
  }
  // First-order displacement.
  const auto psi1_x = gradient_inverse_laplacian(delta_k, grid, 0, pool);
  const auto psi1_y = gradient_inverse_laplacian(delta_k, grid, 1, pool);
  const auto psi1_z = gradient_inverse_laplacian(delta_k, grid, 2, pool);

  // Second-order source delta2 = sum_{a<b} (phi_aa phi_bb - phi_ab^2).
  const auto pxx = second_derivative(delta_k, grid, 0, 0, pool);
  const auto pyy = second_derivative(delta_k, grid, 1, 1, pool);
  const auto pzz = second_derivative(delta_k, grid, 2, 2, pool);
  const auto pxy = second_derivative(delta_k, grid, 0, 1, pool);
  const auto pxz = second_derivative(delta_k, grid, 0, 2, pool);
  const auto pyz = second_derivative(delta_k, grid, 1, 2, pool);

  std::vector<std::complex<float>> delta2(delta_k.size());
  for (std::size_t i = 0; i < delta2.size(); ++i) {
    const float value = pxx[i] * pyy[i] + pxx[i] * pzz[i] +
                        pyy[i] * pzz[i] - pxy[i] * pxy[i] -
                        pxz[i] * pxz[i] - pyz[i] * pyz[i];
    delta2[i] = {value, 0.0f};
  }
  Fft3d fft(grid.n);
  fft.forward(delta2.data(), pool);

  const auto psi2_x = gradient_inverse_laplacian(delta2, grid, 0, pool);
  const auto psi2_y = gradient_inverse_laplacian(delta2, grid, 1, pool);
  const auto psi2_z = gradient_inverse_laplacian(delta2, grid, 2, pool);

  // x = q + D psi1 - (3/7) D^2 psi2 (Einstein-de-Sitter prefactor; the
  // OmegaM dependence of the 2LPT growth ratio is percent-level).
  const double d2 = -3.0 / 7.0 * growth * growth;
  std::vector<float> px(psi1_x.size());
  std::vector<float> py(psi1_y.size());
  std::vector<float> pz(psi1_z.size());
  for (std::size_t i = 0; i < px.size(); ++i) {
    px[i] = static_cast<float>(growth * psi1_x[i] + d2 * psi2_x[i]);
    py[i] = static_cast<float>(growth * psi1_y[i] + d2 * psi2_y[i]);
    pz[i] = static_cast<float>(growth * psi1_z[i] + d2 * psi2_z[i]);
  }
  return displace_lattice(px, py, pz, 1.0, grid, pool);
}

}  // namespace cf::cosmo
