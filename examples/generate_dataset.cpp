// Dataset generation: the paper's §IV-C data path end-to-end.
//
// Runs a suite of LPT dark-matter simulations over sampled
// (OmegaM, sigma8, ns), histograms each box to voxels, splits it into
// 8 sub-volumes, and writes train/val/test cfrecord shards. Also
// renders one sub-volume as ASCII (the Fig 1 stand-in) and prints the
// measured power spectrum of the first box as a sanity check.
//
//   ./examples/generate_dataset --out=/tmp/cosmoflow_data
//       [--sims=24] [--grid=32] [--voxels=32] [--box=256]
//       [--samples-per-shard=16] [--seed=1] [--2lpt]
#include <cstdio>

#include "core/dataset_gen.hpp"
#include "cosmo/gaussian_field.hpp"
#include "examples/example_utils.hpp"

int main(int argc, char** argv) {
  using namespace cf;
  const examples::Flags flags(
      argc, argv,
      "usage: generate_dataset --out=DIR [--sims=N] [--grid=N] "
      "[--voxels=N] [--box=MPC] [--samples-per-shard=N] [--seed=N] "
      "[--2lpt]");

  const std::string out = flags.get_string("out", "/tmp/cosmoflow_data");

  core::DatasetGenConfig gen;
  gen.simulations = static_cast<std::size_t>(flags.get_int("sims", 24));
  gen.sim.grid.n = flags.get_int("grid", 64);
  gen.sim.grid.box_size = flags.get_double("box", 128.0);
  gen.sim.voxels = flags.get_int("voxels", 32);
  gen.sim.use_2lpt = flags.get_int("2lpt", 0) != 0;
  gen.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  runtime::ThreadPool pool;
  std::printf("simulating %zu boxes: %lld^3 particles, %.0f Mpc/h, "
              "%lld^3 voxels, %s displacement\n",
              gen.simulations, static_cast<long long>(gen.sim.grid.n),
              gen.sim.grid.box_size,
              static_cast<long long>(gen.sim.voxels),
              gen.sim.use_2lpt ? "2LPT" : "Zel'dovich");

  core::GeneratedDataset dataset = core::generate_dataset(gen, pool);
  std::printf("generated %zu train / %zu val / %zu test sub-volumes of "
              "%lld^3 voxels\n",
              dataset.train.size(), dataset.val.size(),
              dataset.test.size(),
              static_cast<long long>(gen.sim.voxels / 2));

  // Fig 1 stand-in: projected density of one training sub-volume.
  if (!dataset.train.empty()) {
    std::printf("\nprojected density of one sub-volume (log1p counts):\n");
    examples::render_volume_ascii(dataset.train.front().volume);
  }

  // Power-spectrum sanity check of the first cosmology.
  {
    const cosmo::PowerSpectrum ps(dataset.simulation_params.front());
    runtime::Rng rng(gen.seed);
    const auto modes = generate_delta_k(ps, gen.sim.grid, rng, pool);
    std::printf("\nmeasured vs input linear P(k), first cosmology "
                "(OmegaM=%.3f sigma8=%.3f ns=%.3f):\n",
                ps.params().omega_m, ps.params().sigma8, ps.params().ns);
    std::printf("  %10s %14s %14s %8s\n", "k[h/Mpc]", "P_meas", "P_input",
                "modes");
    for (const auto& bin :
         measure_power_spectrum(modes, gen.sim.grid, 8)) {
      if (bin.modes < 10) continue;
      std::printf("  %10.4f %14.2f %14.2f %8lld\n", bin.k, bin.power,
                  ps(bin.k), static_cast<long long>(bin.modes));
    }
  }

  const std::size_t per_shard = static_cast<std::size_t>(
      flags.get_int("samples-per-shard", 16));
  const auto train_shards =
      data::write_shards(dataset.train, out, "train", per_shard, gen.seed);
  const auto val_shards =
      data::write_shards(dataset.val, out, "val", per_shard, gen.seed + 1);
  const auto test_shards =
      data::write_shards(dataset.test, out, "test", per_shard,
                         gen.seed + 2);
  std::printf("\nwrote %zu train / %zu val / %zu test shards under %s\n",
              train_shards.size(), val_shards.size(), test_shards.size(),
              out.c_str());
  std::printf("next: ./examples/train_cosmoflow --data=%s\n", out.c_str());
  return 0;
}
