// Mass deposit: particles -> voxel counts.
//
// The paper histograms 512^3 particles into a 256^3 grid with
// numpy.histogramdd — nearest-grid-point (NGP) counting — before
// splitting into 128^3 sub-volumes (§IV-C). NGP is the default here;
// cloud-in-cell (CIC) is provided as the standard smoother alternative
// used by N-body analysis pipelines.
#pragma once

#include "cosmo/zeldovich.hpp"
#include "tensor/tensor.hpp"

namespace cf::cosmo {

enum class DepositScheme { kNgp, kCic };

/// Deposits periodic particles into an n_vox^3 grid. The returned
/// tensor is {n_vox, n_vox, n_vox} and its sum equals the particle
/// count (mass conservation) for both schemes.
tensor::Tensor deposit_particles(const ParticleSet& particles,
                                 std::int64_t n_vox, DepositScheme scheme);

}  // namespace cf::cosmo
