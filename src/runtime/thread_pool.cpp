#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace cf::runtime {

std::size_t ThreadPool::default_num_threads() {
  if (const char* env = std::getenv("COSMOFLOW_NUM_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::ThreadPool(std::size_t num_threads)
    : num_threads_(std::max<std::size_t>(1, num_threads)) {
  workers_.reserve(num_threads_ - 1);
  for (std::size_t i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::chunk_bounds(std::size_t total, std::size_t worker,
                              std::size_t* begin, std::size_t* end) const {
  const std::size_t base = total / num_threads_;
  const std::size_t remainder = total % num_threads_;
  *begin = worker * base + std::min(worker, remainder);
  *end = *begin + base + (worker < remainder ? 1 : 0);
}

void ThreadPool::run_chunk(std::size_t worker) {
  std::size_t begin = 0;
  std::size_t end = 0;
  chunk_bounds(task_.total, worker, &begin, &end);
  if (begin >= end) return;
  task_.invoke(task_.ctx, begin, end, worker);
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  std::size_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock lock(mutex_);
      work_ready_.wait(lock, [&] {
        return stopping_ || generation_ != seen_generation;
      });
      if (stopping_) return;
      seen_generation = generation_;
    }
    std::exception_ptr error;
    try {
      run_chunk(worker_index);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      if (--pending_ == 0) work_done_.notify_all();
    }
  }
}

void ThreadPool::dispatch(std::size_t total, void* ctx, TaskInvoke invoke,
                          std::size_t grain_threshold) {
  if (total == 0) return;
  if (num_threads_ == 1 || total <= std::max<std::size_t>(1, grain_threshold)) {
    invoke(ctx, 0, total, 0);
    return;
  }
  {
    std::lock_guard lock(mutex_);
    task_.ctx = ctx;
    task_.invoke = invoke;
    task_.total = total;
    pending_ = num_threads_ - 1;
    first_error_ = nullptr;
    ++generation_;
  }
  work_ready_.notify_all();

  std::exception_ptr caller_error;
  try {
    run_chunk(0);
  } catch (...) {
    caller_error = std::current_exception();
  }

  std::unique_lock lock(mutex_);
  work_done_.wait(lock, [&] { return pending_ == 0; });
  task_.ctx = nullptr;
  task_.invoke = nullptr;
  const std::exception_ptr error =
      caller_error ? caller_error : first_error_;
  first_error_ = nullptr;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

}  // namespace cf::runtime
