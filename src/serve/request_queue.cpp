#include "serve/request_queue.hpp"

namespace cf::serve {

std::string_view to_string(SubmitStatus status) noexcept {
  switch (status) {
    case SubmitStatus::kAccepted:
      return "accepted";
    case SubmitStatus::kOverloaded:
      return "overloaded";
    case SubmitStatus::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

RequestQueue::RequestQueue(std::size_t capacity, obs::Gauge* depth_gauge)
    : capacity_(capacity == 0 ? 1 : capacity), depth_gauge_(depth_gauge) {}

SubmitStatus RequestQueue::try_push(Request&& request) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return SubmitStatus::kShutdown;
    if (items_.size() >= capacity_) return SubmitStatus::kOverloaded;
    items_.push_back(std::move(request));
    update_gauge_locked();
  }
  not_empty_.notify_one();
  return SubmitStatus::kAccepted;
}

RequestQueue::PopStatus RequestQueue::pop(
    Request* out, std::chrono::steady_clock::time_point deadline) {
  return pop_impl(out, /*has_deadline=*/true, deadline);
}

RequestQueue::PopStatus RequestQueue::pop(Request* out) {
  return pop_impl(out, /*has_deadline=*/false, {});
}

RequestQueue::PopStatus RequestQueue::pop_impl(
    Request* out, bool has_deadline,
    std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (!items_.empty()) {
      *out = std::move(items_.front());
      items_.pop_front();
      update_gauge_locked();
      return PopStatus::kItem;
    }
    if (closed_) return PopStatus::kClosed;
    if (has_deadline) {
      if (not_empty_.wait_until(lock, deadline) ==
          std::cv_status::timeout) {
        // Re-check: a push may have raced the timeout.
        if (!items_.empty()) continue;
        return PopStatus::kTimeout;
      }
    } else {
      not_empty_.wait(lock);
    }
  }
}

void RequestQueue::close() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  not_empty_.notify_all();
}

std::size_t RequestQueue::depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return items_.size();
}

bool RequestQueue::closed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

void RequestQueue::update_gauge_locked() {
  if (depth_gauge_ != nullptr) {
    depth_gauge_->set(static_cast<double>(items_.size()));
  }
}

}  // namespace cf::serve
