#include "cosmo/power_spectrum.hpp"

#include <cmath>
#include <stdexcept>

namespace cf::cosmo {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

double tophat_window(double x) {
  if (std::fabs(x) < 1e-4) {
    // Series expansion: W(x) = 1 - x^2/10 + O(x^4).
    return 1.0 - x * x / 10.0;
  }
  return 3.0 * (std::sin(x) - x * std::cos(x)) / (x * x * x);
}

PowerSpectrum::PowerSpectrum(CosmoParams params, TransferModel model)
    : params_(params), model_(model) {
  if (params.omega_m <= 0.0 || params.omega_m > 1.0 || params.sigma8 <= 0.0 ||
      params.h <= 0.0 || params.omega_b < 0.0 ||
      params.omega_b >= params.omega_m) {
    throw std::invalid_argument("PowerSpectrum: unphysical parameters");
  }
  gamma_ = params.omega_m * params.h;

  // Eisenstein & Hu (1998) no-wiggle constants (eqs. 26, 31).
  const double omh2 = params.omega_m * params.h * params.h;
  const double obh2 = params.omega_b * params.h * params.h;
  const double fb = params.omega_b / params.omega_m;
  eh_sound_ = 44.5 * std::log(9.83 / omh2) /
              std::sqrt(1.0 + 10.0 * std::pow(obh2, 0.75));
  eh_alpha_ = 1.0 - 0.328 * std::log(431.0 * omh2) * fb +
              0.38 * std::log(22.3 * omh2) * fb * fb;

  amplitude_ = 1.0;
  const double unnorm = sigma_r_unnormalized_sq(8.0);
  amplitude_ = params.sigma8 * params.sigma8 / unnorm;
}

double PowerSpectrum::transfer_bbks(double k) const {
  // BBKS 1986 fit; q in units where k is h/Mpc.
  const double q = k / gamma_;
  const double poly = 1.0 + 3.89 * q + std::pow(16.1 * q, 2) +
                      std::pow(5.46 * q, 3) + std::pow(6.71 * q, 4);
  const double x = 2.34 * q;
  const double log_term = x < 1e-6 ? 1.0 - x / 2.0 : std::log(1.0 + x) / x;
  return log_term * std::pow(poly, -0.25);
}

double PowerSpectrum::transfer_eisenstein_hu(double k) const {
  // Eisenstein & Hu (1998) "no-wiggle" fit (eqs. 28-31), k in h/Mpc.
  const double theta = 2.725 / 2.7;  // T_CMB / 2.7 K
  const double k_mpc = k * params_.h;
  const double gamma_eff =
      params_.omega_m * params_.h *
      (eh_alpha_ +
       (1.0 - eh_alpha_) / (1.0 + std::pow(0.43 * k_mpc * eh_sound_, 4)));
  const double q = k * theta * theta / gamma_eff;
  const double l0 = std::log(2.0 * 2.718281828459045 + 1.8 * q);
  const double c0 = 14.2 + 731.0 / (1.0 + 62.5 * q);
  return l0 / (l0 + c0 * q * q);
}

double PowerSpectrum::transfer(double k) const {
  if (k <= 0.0) return 1.0;
  switch (model_) {
    case TransferModel::kBbks:
      return transfer_bbks(k);
    case TransferModel::kEisensteinHu:
      return transfer_eisenstein_hu(k);
  }
  return 1.0;
}

double PowerSpectrum::unnormalized(double k) const {
  const double t = transfer(k);
  return std::pow(k, params_.ns) * t * t;
}

double PowerSpectrum::operator()(double k) const {
  if (k <= 0.0) return 0.0;
  return amplitude_ * unnormalized(k);
}

double PowerSpectrum::sigma_r_unnormalized_sq(double radius) const {
  // sigma^2(R) = 1/(2 pi^2) Int dk k^2 P(k) W(kR)^2; integrate in
  // log k with Simpson's rule over a generous dynamic range.
  const double lnk_lo = std::log(1e-5);
  const double lnk_hi = std::log(1e3);
  const int steps = 2048;  // even
  const double dlnk = (lnk_hi - lnk_lo) / steps;

  const auto integrand = [&](double lnk) {
    const double k = std::exp(lnk);
    const double w = tophat_window(k * radius);
    // dk = k dlnk, so the log-space integrand carries k^3.
    return k * k * k * unnormalized(k) * w * w;
  };

  double acc = integrand(lnk_lo) + integrand(lnk_hi);
  for (int i = 1; i < steps; ++i) {
    acc += integrand(lnk_lo + i * dlnk) * (i % 2 == 0 ? 2.0 : 4.0);
  }
  return acc * dlnk / 3.0 / (2.0 * kPi * kPi);
}

double PowerSpectrum::sigma_r(double radius) const {
  if (radius <= 0.0) {
    throw std::invalid_argument("PowerSpectrum::sigma_r: radius <= 0");
  }
  return std::sqrt(amplitude_ * sigma_r_unnormalized_sq(radius));
}

}  // namespace cf::cosmo
