// Ablations over the design choices DESIGN.md calls out:
//
//  * optimizer: Adam+LARC (the paper's §III-B stack) vs plain Adam vs
//    SGD+momentum, at a large effective batch — where LARC's per-layer
//    trust ratio is supposed to earn its keep;
//  * LARC clip: LARC vs unclipped LARS;
//  * simulation fidelity: Zel'dovich vs 2LPT displacement as the
//    training-data generator;
//  * deposit scheme: NGP (the paper's histogramdd) vs CIC.
//
//   ./bench_ablation [--epochs=6] [--sims=16]
#include <cstdio>
#include <cstring>

#include "core/dataset_gen.hpp"
#include "core/trainer.hpp"

namespace {

using namespace cf;

std::vector<data::Sample> clone_all(const std::vector<data::Sample>& v) {
  std::vector<data::Sample> copy;
  copy.reserve(v.size());
  for (const auto& s : v) copy.push_back(s.clone());
  return copy;
}

double train_once(const core::GeneratedDataset& dataset,
                  core::TrainerConfig config) {
  data::InMemorySource train(clone_all(dataset.train));
  data::InMemorySource val(clone_all(dataset.val));
  core::Trainer trainer(core::cosmoflow_scaled(16), train, val, config);
  return trainer.run().back().val_loss;
}

}  // namespace

int main(int argc, char** argv) {
  int epochs = 6;
  std::size_t sims = 16;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--epochs=", 9) == 0) {
      epochs = std::atoi(argv[i] + 9);
    }
    if (std::strncmp(argv[i], "--sims=", 7) == 0) {
      sims = static_cast<std::size_t>(std::atoll(argv[i] + 7));
    }
  }

  std::printf("=== bench_ablation: design-choice ablations ===\n\n");

  runtime::ThreadPool pool;
  core::DatasetGenConfig gen;
  gen.simulations = sims;
  gen.sim.grid = {64, 128.0};  // mean count 8, the paper's density
  gen.sim.voxels = 32;
  gen.seed = 29;
  const core::GeneratedDataset za = core::generate_dataset(gen, pool);

  std::printf("--- optimizer at large effective batch (8 ranks, %d "
              "epochs) ---\n",
              epochs);
  core::TrainerConfig base;
  base.nranks = 8;
  base.epochs = epochs;
  base.base_lr = 4e-3;

  {
    core::TrainerConfig larc = base;
    std::printf("%-24s final val loss %.5f\n", "Adam + LARC (paper)",
                train_once(za, larc));
  }
  {
    core::TrainerConfig lars = base;
    lars.larc.clip = false;
    std::printf("%-24s final val loss %.5f\n", "Adam + LARS (no clip)",
                train_once(za, lars));
  }
  {
    core::TrainerConfig adam = base;
    adam.optimizer = core::OptimizerKind::kAdam;
    std::printf("%-24s final val loss %.5f\n", "plain Adam",
                train_once(za, adam));
  }
  {
    core::TrainerConfig sgd = base;
    sgd.optimizer = core::OptimizerKind::kSgdMomentum;
    std::printf("%-24s final val loss %.5f\n", "SGD + momentum 0.9",
                train_once(za, sgd));
  }

  std::printf("\n--- simulation fidelity: Zel'dovich vs 2LPT training "
              "data ---\n");
  core::DatasetGenConfig gen2 = gen;
  gen2.sim.use_2lpt = true;
  const core::GeneratedDataset lpt2 = core::generate_dataset(gen2, pool);
  {
    core::TrainerConfig config = base;
    config.nranks = 2;
    std::printf("%-24s final val loss %.5f\n", "Zel'dovich (default)",
                train_once(za, config));
    std::printf("%-24s final val loss %.5f\n", "2LPT",
                train_once(lpt2, config));
  }

  std::printf("\n--- deposit scheme: NGP (paper) vs CIC ---\n");
  core::DatasetGenConfig gen3 = gen;
  gen3.sim.scheme = cosmo::DepositScheme::kCic;
  const core::GeneratedDataset cic = core::generate_dataset(gen3, pool);
  {
    core::TrainerConfig config = base;
    config.nranks = 2;
    std::printf("%-24s final val loss %.5f\n", "NGP histogram (paper)",
                train_once(za, config));
    std::printf("%-24s final val loss %.5f\n", "CIC deposit",
                train_once(cic, config));
  }

  std::printf("\nreading: LARC should match or beat its ablations at "
              "large batch (its clip guards the early training phase); "
              "data-generator variants should train comparably — the "
              "network learns from clumpiness statistics that ZA/2LPT "
              "and NGP/CIC all preserve.\n");
  return 0;
}
