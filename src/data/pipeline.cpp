#include "data/pipeline.hpp"

#include <chrono>
#include <stdexcept>

#include "obs/telemetry.hpp"
#include "runtime/rng.hpp"

namespace cf::data {

Pipeline::Pipeline(const SampleSource& source, PipelineConfig config)
    : source_(source), config_(config) {
  if (config_.queue_capacity == 0 || config_.io_threads == 0) {
    throw std::invalid_argument(
        "Pipeline: queue capacity and io_threads must be positive");
  }
  obs::Registry& registry = obs::Registry::global();
  wait_stat_ = &registry.stat(config_.metric_prefix + "/wait");
  wait_stat_->reset();  // a new pipeline starts a fresh measurement
  samples_counter_ = &registry.counter("data/pipeline/samples_prefetched");
  bytes_counter_ = &registry.counter("data/pipeline/bytes_prefetched");
  ring_.resize(config_.queue_capacity);
  producers_.reserve(config_.io_threads);
  for (std::size_t t = 0; t < config_.io_threads; ++t) {
    producers_.emplace_back([this, t] { producer_loop(t); });
  }
}

Pipeline::~Pipeline() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  epoch_started_.notify_all();
  queue_not_full_.notify_all();
  for (auto& producer : producers_) producer.join();
}

void Pipeline::start_epoch(std::vector<std::size_t> indices) {
  std::lock_guard lock(mutex_);
  if (consumed_ != indices_.size()) {
    throw std::logic_error("Pipeline::start_epoch: previous epoch not "
                           "drained");
  }
  indices_ = std::move(indices);
  cursor_ = 0;
  consumed_ = 0;
  ++epoch_;
  epoch_started_.notify_all();
}

bool Pipeline::next(Sample& out) {
  CF_TRACE_SCOPE("io/wait_sample", "io");
  const obs::ScopedStatTimer timer(*wait_stat_);
  // Recycle the caller's previous buffer before blocking so a producer
  // can reuse it while we wait (pool has its own lock).
  if (config_.pool && out.volume.size() > 0) {
    pool_.release(std::move(out));
    out = Sample{};
  }
  std::unique_lock lock(mutex_);
  if (consumed_ == indices_.size()) return false;  // epoch exhausted
  Slot& slot = ring_[consumed_ % config_.queue_capacity];
  queue_not_empty_.wait(lock, [&] { return slot.full; });
  out = std::move(slot.sample);
  slot.full = false;
  ++consumed_;
  lock.unlock();
  queue_not_full_.notify_all();
  return true;
}

void Pipeline::producer_loop(std::size_t /*thread_index*/) {
  const std::unique_ptr<SampleReader> reader = source_.make_reader();
  std::size_t seen_epoch = 0;
  for (;;) {
    std::size_t index = 0;
    std::size_t position = 0;
    {
      std::unique_lock lock(mutex_);
      epoch_started_.wait(lock, [&] {
        return stopping_ || (epoch_ != seen_epoch && cursor_ < indices_.size());
      });
      if (stopping_) return;
      if (cursor_ >= indices_.size()) {
        seen_epoch = epoch_;
        continue;
      }
      position = cursor_;
      index = indices_[cursor_++];
      if (cursor_ >= indices_.size()) seen_epoch = epoch_;
    }
    Sample sample = config_.pool ? pool_.acquire() : Sample{};
    {
      CF_TRACE_SCOPE("io/read_sample", "io");
      reader->get_into(index, sample);
      if (config_.injected_read_delay > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(
            config_.injected_read_delay));
      }
    }
    samples_counter_->add(1);
    bytes_counter_->add(static_cast<std::int64_t>(
        sample.volume.size() * sizeof(float) + sizeof(sample.target)));
    {
      std::unique_lock lock(mutex_);
      // Backpressure: at most queue_capacity positions may be in
      // flight beyond the consumer, so slot position % capacity is
      // free once its previous occupant (position - capacity) has been
      // consumed — exactly the wait condition. The producer holding
      // the very next position is never blocked, so there is no
      // deadlock.
      queue_not_full_.wait(lock, [&] {
        return stopping_ ||
               position < consumed_ + config_.queue_capacity;
      });
      if (stopping_) return;
      Slot& slot = ring_[position % config_.queue_capacity];
      slot.sample = std::move(sample);
      slot.full = true;
    }
    queue_not_empty_.notify_all();
  }
}

std::vector<std::size_t> epoch_indices_for_rank(std::size_t total,
                                                int nranks, int rank,
                                                std::uint64_t epoch_seed,
                                                bool shuffle) {
  if (nranks <= 0 || rank < 0 || rank >= nranks) {
    throw std::invalid_argument("epoch_indices_for_rank: bad rank");
  }
  std::vector<std::size_t> order(total);
  for (std::size_t i = 0; i < total; ++i) order[i] = i;
  if (shuffle) {
    runtime::Rng rng(epoch_seed, /*stream=*/0x65706F6368ULL);  // "epoch"
    for (std::size_t i = total; i > 1; --i) {
      std::swap(order[i - 1], order[rng.uniform_index(i)]);
    }
  }
  const std::size_t per_rank = total / static_cast<std::size_t>(nranks);
  std::vector<std::size_t> mine;
  mine.reserve(per_rank);
  for (std::size_t i = 0; i < per_rank; ++i) {
    mine.push_back(order[i * static_cast<std::size_t>(nranks) +
                         static_cast<std::size_t>(rank)]);
  }
  return mine;
}

}  // namespace cf::data
