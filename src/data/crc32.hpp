// CRC32-C (Castagnoli) and the TFRecord masking scheme.
//
// The cfrecord container (data/cfrecord.hpp) reuses TFRecord's exact
// integrity framing: every length word and payload carries a masked
// CRC32-C so truncation and corruption are detected at read time.
#pragma once

#include <cstdint>
#include <span>

namespace cf::data {

/// CRC32-C over `bytes` (polynomial 0x1EDC6F41, reflected).
std::uint32_t crc32c(std::span<const std::uint8_t> bytes);

/// TFRecord CRC masking: rotate right by 15 and add a constant, so
/// CRCs stored alongside CRC-covered data do not confuse the checker.
std::uint32_t mask_crc(std::uint32_t crc);
std::uint32_t unmask_crc(std::uint32_t masked);

}  // namespace cf::data
