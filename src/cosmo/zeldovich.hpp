// Zel'dovich (first-order Lagrangian perturbation theory) particle
// displacement — the COLA/pycola substitute (DESIGN.md §1).
//
// COLA evolves particles as "LPT trajectory + small N-body residual";
// its large-scale accuracy comes from the LPT backbone implemented
// here: particles start on a uniform lattice q and move to
//
//   x = q + D * psi(q),   psi_k = i k / k^2 * delta_k
//
// with growth factor D (= 1 when delta_k is the z = 0 linear field).
// This preserves exactly the property the network learns from — how
// the clumpiness of the deposited density field responds to
// (OmegaM, sigma8, ns).
#pragma once

#include <complex>
#include <vector>

#include "cosmo/gaussian_field.hpp"
#include "runtime/thread_pool.hpp"

namespace cf::cosmo {

/// Structure-of-arrays particle positions, periodic in [0, box).
struct ParticleSet {
  std::vector<float> x, y, z;
  double box_size = 0.0;

  std::size_t size() const noexcept { return x.size(); }
};

/// Displaces an n^3 lattice of particles (one per grid cell) by the
/// Zel'dovich field derived from `delta_k`. `growth` scales the
/// displacement (D = 1 reproduces the z = 0 linear field amplitude;
/// larger values push further into shell crossing — an intentionally
/// exposed knob for ablations).
ParticleSet zeldovich_displace(const std::vector<std::complex<float>>& delta_k,
                               const GridSpec& grid, double growth,
                               runtime::ThreadPool& pool);

/// Second-order LPT correction (2LPT): adds the second-order
/// displacement psi2 with the standard -3/7 prefactor, bringing the
/// trajectory to the order COLA uses as its exact integrator backbone.
ParticleSet lpt2_displace(const std::vector<std::complex<float>>& delta_k,
                          const GridSpec& grid, double growth,
                          runtime::ThreadPool& pool);

}  // namespace cf::cosmo
