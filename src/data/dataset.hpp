// Sample sources and the sharded dataset builder.
//
// SampleSource abstracts where samples come from: an in-memory vector
// (tests, small benches) or a set of cfrecord shard files (the §IV-C
// layout: sub-volumes randomly assigned to fixed-size record files,
// train/val/test split held out by simulation, training set optionally
// duplicated once for augmentation).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "data/cfrecord.hpp"
#include "data/sample.hpp"

namespace cf::data {

/// A thread's private reading handle; SampleSource::make_reader gives
/// every I/O thread its own. (Stream-mode file handles are not
/// shareable; a mapped shard is shared by every reader — see
/// CfrecordSource.)
class SampleReader {
 public:
  virtual ~SampleReader() = default;
  virtual Sample get(std::size_t index) = 0;

  /// Allocation-free variant: deserializes sample `index` into `out`,
  /// reusing its volume storage when the shape matches (the pooled
  /// pipeline's steady state). Byte-identical to get().
  virtual void get_into(std::size_t index, Sample& out) {
    out = get(index);
  }
};

class SampleSource {
 public:
  virtual ~SampleSource() = default;
  virtual std::size_t size() const = 0;
  virtual std::unique_ptr<SampleReader> make_reader() const = 0;
};

/// Samples held in memory; get() clones.
class InMemorySource final : public SampleSource {
 public:
  explicit InMemorySource(std::vector<Sample> samples);

  std::size_t size() const override { return samples_.size(); }
  std::unique_ptr<SampleReader> make_reader() const override;

  const std::vector<Sample>& samples() const noexcept { return samples_; }

 private:
  std::vector<Sample> samples_;
};

/// Samples stored across cfrecord shards; an index (shard, offset) per
/// sample is built *once* at construction by a validating scan and
/// shared by every reader. In mmap mode (the default where supported)
/// the shard mappings built for that scan are kept and shared too —
/// view_at() is const and thread-safe — so readers deserialize
/// straight out of the page cache with zero per-reader file handles
/// and zero payload copies. In stream mode (ReaderMode::kStream, the
/// `--no-mmap` ablation) each reader opens private ifstream handles
/// but still reuses the prebuilt index.
class CfrecordSource final : public SampleSource {
 public:
  explicit CfrecordSource(std::vector<std::string> shard_paths,
                          ReaderMode mode = ReaderMode::kAuto);

  std::size_t size() const override { return index_.size(); }
  std::unique_ptr<SampleReader> make_reader() const override;

  std::size_t shard_count() const noexcept { return paths_.size(); }
  /// True when every shard is memory-mapped and shared across readers.
  bool mapped() const noexcept { return !shared_readers_.empty(); }

 private:
  std::vector<std::string> paths_;
  /// (shard, byte offset) per sample.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> index_;
  /// Mapped shard readers shared by all SampleReaders (mmap mode
  /// only; empty in stream mode). Only the const, thread-safe
  /// view_at() is called through these after construction.
  std::vector<std::unique_ptr<RecordReader>> shared_readers_;
};

/// Writes `samples` into fixed-size cfrecord shards under `directory`
/// with the given prefix, randomly assigning samples to shards
/// (§IV-C: "we randomly assign the training sub-volumes to TFRecord
/// files"). Returns the shard paths.
std::vector<std::string> write_shards(const std::vector<Sample>& samples,
                                      const std::string& directory,
                                      const std::string& prefix,
                                      std::size_t samples_per_shard,
                                      std::uint64_t shuffle_seed);

/// Deterministic train/val/test split *by simulation* so sub-volumes
/// of one box never straddle splits (the paper holds out 150 + 50
/// whole simulations). `groups[i]` gives the simulation id of sample i.
struct SplitIndices {
  std::vector<std::size_t> train;
  std::vector<std::size_t> val;
  std::vector<std::size_t> test;
};
SplitIndices split_by_group(const std::vector<std::size_t>& groups,
                            double val_fraction, double test_fraction,
                            std::uint64_t seed);

}  // namespace cf::data
