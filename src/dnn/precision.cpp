#include "dnn/precision.hpp"

namespace cf::dnn {

void bf16_from_f32(const float* src, bf16_t* dst, std::size_t n) noexcept {
  std::size_t i = 0;
#if defined(__AVX512F__)
  for (; i + 16 <= n; i += 16) {
    bf16_store_16(dst + i, _mm512_loadu_ps(src + i));
  }
#endif
  for (; i < n; ++i) dst[i] = float_to_bf16(src[i]);
}

void f32_from_bf16(const bf16_t* src, float* dst, std::size_t n) noexcept {
  std::size_t i = 0;
#if defined(__AVX512F__)
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(dst + i, bf16_load_16(src + i));
  }
#endif
  for (; i < n; ++i) dst[i] = bf16_to_float(src[i]);
}

}  // namespace cf::dnn
