// Adam + LARC + polynomial decay: the exact optimizer of §III-B.
//
// Per parameter tensor l at step t with weights v and gradients g:
//
//   eta*  = 0.002 * ||v|| / ||g||   when both norms are nonzero,
//           6.25e-5                 otherwise
//   eta†  = min(eta*, 1)                 (the LARC clip)
//   g*    = eta† * g
//   v    <- Adam(v, g*, eta_t)           (eta_t from the schedule)
//
// LARC normalizes the update magnitude per layer for stability at
// large effective batch sizes; the clip guarantees the effective rate
// never exceeds the nominal Adam rate. The paper applies the rule "for
// each layer"; as in the reference LARS/LARC implementations we apply
// it per parameter tensor (weights and biases separately).
#pragma once

#include <memory>
#include <vector>

#include "dnn/layer.hpp"
#include "optim/adam.hpp"
#include "optim/lr_schedule.hpp"

namespace cf::optim {

struct LarcConfig {
  double trust_coefficient = 0.002;
  double fallback_ratio = 6.25e-5;
  bool clip = true;  // disable for plain LARS behaviour (ablation)
};

class LarcAdam {
 public:
  /// Binds to the network's parameter tensors; the views must stay
  /// valid for the optimizer's lifetime. After Network::finalize()
  /// these tensors are views into the network's contiguous
  /// parameter/gradient arenas, so the step walks one flat region in
  /// layer order.
  LarcAdam(std::vector<dnn::ParamView> params, AdamConfig adam,
           LarcConfig larc, std::shared_ptr<const LrSchedule> schedule);

  /// One synchronous update from the (already-averaged) gradients held
  /// in the bound gradient tensors.
  void step();

  std::int64_t steps_taken() const noexcept { return step_; }
  double last_lr() const noexcept { return last_lr_; }

  /// Local rates eta† of the last step, per parameter tensor (exposed
  /// for tests and the Fig 3 instrumentation).
  const std::vector<double>& last_local_rates() const noexcept {
    return last_local_rates_;
  }

  std::size_t group_count() const noexcept { return params_.size(); }
  AdamState& adam_state(std::size_t group) { return states_[group]; }
  const dnn::ParamView& param(std::size_t group) const {
    return params_[group];
  }

 private:
  std::vector<dnn::ParamView> params_;
  std::vector<AdamState> states_;
  LarcConfig larc_;
  std::shared_ptr<const LrSchedule> schedule_;
  std::vector<float> scaled_grad_;  // scratch
  std::vector<double> last_local_rates_;
  std::int64_t step_ = 0;
  double last_lr_ = 0.0;
};

}  // namespace cf::optim
