#include "tensor/tensor.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace cf::tensor {

Tensor::Tensor(Shape shape)
    : shape_(shape),
      data_(static_cast<std::size_t>(shape.numel())) {
  zero();
}

Tensor::Tensor(Shape shape, std::span<const float> values) : Tensor(shape) {
  if (values.size() != data_.size()) {
    throw std::invalid_argument("Tensor: value count does not match shape " +
                                shape.to_string());
  }
  std::memcpy(data_.data(), values.data(), values.size() * sizeof(float));
}

Tensor Tensor::clone() const {
  Tensor copy(shape_);
  std::memcpy(copy.data_.data(), data(), size() * sizeof(float));
  return copy;
}

void Tensor::rebind(std::span<float> storage) {
  if (storage.size() != size()) {
    throw std::invalid_argument(
        "Tensor::rebind: storage size does not match shape " +
        shape_.to_string());
  }
  if (storage.data() != data()) {
    std::memcpy(storage.data(), data(), size() * sizeof(float));
  }
  data_ = runtime::AlignedBuffer<float>{};  // release owned storage
  view_ = storage.data();
  view_size_ = storage.size();
}

void Tensor::alias(std::span<float> storage) {
  if (storage.size() != size()) {
    throw std::invalid_argument(
        "Tensor::alias: storage size does not match shape " +
        shape_.to_string());
  }
  data_ = runtime::AlignedBuffer<float>{};  // release owned storage
  view_ = storage.data();
  view_size_ = storage.size();
}

std::size_t Tensor::flat_index(
    std::initializer_list<std::int64_t> index) const {
  if (index.size() != shape_.rank()) {
    throw std::invalid_argument("Tensor::at: index rank mismatch");
  }
  std::size_t flat = 0;
  std::size_t axis = 0;
  for (const std::int64_t i : index) {
    if (i < 0 || i >= shape_.dim(axis)) {
      throw std::out_of_range("Tensor::at: index out of range on axis " +
                              std::to_string(axis));
    }
    flat += static_cast<std::size_t>(i * shape_.stride(axis));
    ++axis;
  }
  return flat;
}

float& Tensor::at(std::initializer_list<std::int64_t> index) {
  return data()[flat_index(index)];
}

float Tensor::at(std::initializer_list<std::int64_t> index) const {
  return data()[flat_index(index)];
}

void Tensor::fill(float value) noexcept {
  std::fill_n(data(), size(), value);
}

void Tensor::reshape(Shape shape) {
  if (shape.numel() != shape_.numel()) {
    throw std::invalid_argument("Tensor::reshape: numel mismatch " +
                                shape_.to_string() + " -> " +
                                shape.to_string());
  }
  shape_ = shape;
}

std::vector<float> Tensor::to_vector() const {
  return {data(), data() + size()};
}

}  // namespace cf::tensor
