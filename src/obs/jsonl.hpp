// Structured JSONL emission — the per-step stats sink.
//
// Training emits one JSON object per line (step, rank, loss, lr, stage
// seconds); the bench harness and OBSERVABILITY.md queries consume the
// file with standard line-oriented tools. JsonObject builds one record
// with deterministic formatting (insertion order, "%.9g" doubles) and
// JsonlSink appends records to a file under a mutex so every rank
// thread can log through one sink.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>

namespace cf::obs {

namespace json {

/// Shortest round-trippable double representation; deterministic.
void append_double(std::string& out, double value);
/// Appends `s` quoted, escaping backslashes, quotes and control bytes.
void append_quoted(std::string& out, std::string_view s);

}  // namespace json

/// Builder for one flat JSON object; fields keep insertion order.
class JsonObject {
 public:
  JsonObject& field(std::string_view key, double value);
  JsonObject& field(std::string_view key, std::int64_t value);
  JsonObject& field(std::string_view key, int value) {
    return field(key, static_cast<std::int64_t>(value));
  }
  JsonObject& field(std::string_view key, std::string_view value);
  // Without this overload a string literal would convert to bool (a
  // standard conversion) in preference to string_view.
  JsonObject& field(std::string_view key, const char* value) {
    return field(key, std::string_view(value));
  }
  JsonObject& field(std::string_view key, bool value);

  /// The completed `{...}` object.
  std::string str() const { return body_ + "}"; }

 private:
  void key(std::string_view k);
  std::string body_ = "{";
};

/// Append-only JSONL file; write() is thread safe and flushes per
/// record so the log is complete up to the last step on any exit.
class JsonlSink {
 public:
  explicit JsonlSink(const std::string& path);
  ~JsonlSink();

  JsonlSink(const JsonlSink&) = delete;
  JsonlSink& operator=(const JsonlSink&) = delete;

  bool ok() const noexcept { return file_ != nullptr; }
  const std::string& path() const noexcept { return path_; }

  void write(const JsonObject& record);
  void write_line(const std::string& line);

 private:
  std::string path_;
  std::mutex mutex_;
  std::FILE* file_ = nullptr;
};

}  // namespace cf::obs
