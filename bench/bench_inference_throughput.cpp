// Concurrent inference throughput over one shared Network — the
// payoff of the model/stream split (DESIGN.md §2.3) and the precision
// ablation for the reduced-precision fast path (DESIGN.md §2.5).
//
// One immutable Network holds the weights; S streams each own an
// inference-mode ExecContext (ping-pong activations + staging
// workspace, no backward state) and a private worker pool, and hammer
// forward passes concurrently. Because the replica is shared, the
// weight arena is read by every stream and copied by none — aggregate
// throughput should scale with the stream count until the cores run
// out, and the per-stream memory cost is the lean inference footprint
// rather than a full training replica.
//
// The sweep runs every prepared precision (fp32, bf16, int8w) through
// 1..--streams streams (powers of two). Single-stream rates — the
// basis of the reported per-precision speedups — are measured
// round-robin across the precisions over --rounds blocks and reported
// as the best block, so a background-load spike on a shared VM hits
// every mode instead of biasing one. Every stream's outputs are
// checked bitwise against a serial reference of the SAME precision
// (the determinism rule holds per precision), and each reduced
// precision's predictions are scored against fp32 as a parameter-
// regression MAE on the shared core::precision_eval fixture — the
// same dataset the accuracy-tolerance test gates on.
//
// `scaling_valid` is false when the sweep oversubscribes the hardware
// (streams x threads-per-stream > hardware threads): on a 1-core VM
// the multi-stream rows measure time-slicing overhead, not scaling,
// and must not be read as a regression. Oversubscription also prints
// a run-time WARNING so an interactive run can't miss it.
//
// `--cost-model` is the intra-op ablation (DESIGN.md §2.6): the
// dnn::CostModel splits the hardware-thread budget into {streams,
// threads_per_stream} and per-layer kernel grains; the chosen width
// overrides --threads-per-stream and the grains are applied to every
// context. Bitwise-neutral — the verification against the serial
// reference is unchanged.
//
//   ./bench_inference_throughput [--dhw=32] [--streams=4]
//       [--threads-per-stream=1] [--cost-model] [--reps=16]
//       [--rounds=4] [--json=BENCH_inference.json]
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/precision_eval.hpp"
#include "core/topology.hpp"
#include "dnn/cost_model.hpp"
#include "obs/jsonl.hpp"
#include "runtime/rng.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/timer.hpp"
#include "tensor/tensor_ops.hpp"

#ifndef COSMOFLOW_GIT_SHA
#define COSMOFLOW_GIT_SHA "unknown"
#endif

namespace {

using namespace cf;

const char* precision_tag(dnn::Precision p) {
  return p == dnn::Precision::kFp32    ? ""
         : p == dnn::Precision::kBf16 ? "bf16_"
                                       : "int8w_";
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t dhw = 32;
  int max_streams = 4;
  int threads_per_stream = 1;
  bool use_cost_model = false;
  int reps = 16;
  int rounds = 4;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--dhw=", 6) == 0) dhw = std::atoll(argv[i] + 6);
    if (std::strncmp(argv[i], "--streams=", 10) == 0) {
      max_streams = std::atoi(argv[i] + 10);
    }
    if (std::strncmp(argv[i], "--threads-per-stream=", 21) == 0) {
      threads_per_stream = std::atoi(argv[i] + 21);
    }
    if (std::strcmp(argv[i], "--cost-model") == 0) use_cost_model = true;
    if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      reps = std::atoi(argv[i] + 7);
    }
    if (std::strncmp(argv[i], "--rounds=", 9) == 0) {
      rounds = std::atoi(argv[i] + 9);
    }
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }
  if (rounds < 1) rounds = 1;

  const unsigned hardware_threads = std::thread::hardware_concurrency();
  std::printf("=== bench_inference_throughput: concurrent streams over "
              "one shared Network, per-precision ===\n");
  std::printf("(cosmoflow_scaled(%lld), %d reps/stream, %d round(s), %d "
              "worker thread(s) per stream, %u hardware threads)\n\n",
              static_cast<long long>(dhw), reps, rounds,
              threads_per_stream, hardware_threads);

  dnn::Network net = core::build_network(core::cosmoflow_scaled(dhw), 7);
  net.prepare_inference_precision(dnn::Precision::kBf16);
  net.prepare_inference_precision(dnn::Precision::kInt8Weights);
  const std::vector<dnn::Precision> precisions = {
      dnn::Precision::kFp32, dnn::Precision::kBf16,
      dnn::Precision::kInt8Weights};

  // Cost-model ablation: the model splits the hardware budget into
  // {streams, threads_per_stream} + per-layer grains; the chosen width
  // overrides --threads-per-stream and the grains travel with every
  // context created below (bitwise-neutral, DESIGN.md §2.6).
  dnn::IntraopPlan plan;
  if (use_cost_model) {
    const dnn::CostModel cost_model(net);
    plan = cost_model.choose(
        hardware_threads > 0 ? hardware_threads : 1,
        static_cast<std::size_t>(max_streams));
    threads_per_stream = static_cast<int>(plan.threads_per_stream);
    std::printf("cost model: chose %zu stream(s) x %zu thread(s), "
                "predicted parallel efficiency %.2f\n\n",
                plan.streams, plan.threads_per_stream,
                plan.predicted_efficiency);
  }
  const auto make_ctx = [&](dnn::Precision p) {
    return use_cost_model
               ? net.make_context(dnn::ExecMode::kInference, p, plan)
               : net.make_context(dnn::ExecMode::kInference, p);
  };
  if (static_cast<unsigned long long>(max_streams) *
          static_cast<unsigned long long>(threads_per_stream) >
      hardware_threads) {
    std::printf("WARNING: %d streams x %d thread(s)/stream oversubscribe "
                "%u hardware thread(s) — the multi-stream rows will "
                "measure time-slicing, not scaling (scaling_valid will "
                "be false)\n\n",
                max_streams, threads_per_stream, hardware_threads);
  }
  {
    dnn::ExecContext probe = net.make_context(dnn::ExecMode::kInference);
    std::printf("per-stream context: %.2f MB total (%.2f MB planned "
                "training footprint)\n\n",
                static_cast<double>(probe.total_bytes()) / 1e6,
                static_cast<double>(net.peak_tensor_bytes()) / 1e6);
  }

  // One distinct input per stream; a serial reference per precision
  // fixes the expected bits for each (the reduced-precision forwards
  // are deterministic too, just against their own reference).
  std::vector<tensor::Tensor> inputs;
  for (int s = 0; s < max_streams; ++s) {
    runtime::Rng rng(41, static_cast<std::uint64_t>(s));
    tensor::Tensor input(net.input_shape());
    tensor::fill_normal(input, rng, 0.0f, 1.0f);
    inputs.push_back(std::move(input));
  }
  std::vector<std::vector<std::vector<float>>> expected;  // [prec][stream]
  for (const dnn::Precision p : precisions) {
    dnn::ExecContext ctx = make_ctx(p);
    runtime::ThreadPool pool(static_cast<std::size_t>(threads_per_stream));
    std::vector<std::vector<float>> per_stream;
    for (int s = 0; s < max_streams; ++s) {
      per_stream.push_back(ctx.forward(inputs[s], pool).to_vector());
    }
    expected.push_back(std::move(per_stream));
  }

  // Accuracy attribution: parameter-regression MAE of each reduced
  // precision against fp32 on the shared eval fixture.
  double mae_bf16 = 0.0, mae_int8w = 0.0;
  {
    const std::vector<tensor::Tensor> eval_inputs =
        core::precision_eval_inputs(net.input_shape(), 24);
    runtime::ThreadPool pool(static_cast<std::size_t>(threads_per_stream));
    std::vector<std::vector<float>> preds;  // [prec] flattened
    for (const dnn::Precision p : precisions) {
      dnn::ExecContext ctx = make_ctx(p);
      std::vector<float> flat;
      for (const tensor::Tensor& in : eval_inputs) {
        const std::vector<float> out = ctx.forward(in, pool).to_vector();
        flat.insert(flat.end(), out.begin(), out.end());
      }
      preds.push_back(std::move(flat));
    }
    mae_bf16 = core::prediction_mae(preds[1], preds[0]);
    mae_int8w = core::prediction_mae(preds[2], preds[0]);
    std::printf("accuracy vs fp32 (24-input eval fixture): "
                "mae_bf16 %.6g, mae_int8w %.6g\n\n",
                mae_bf16, mae_int8w);
  }

  // Timed sweep: S streams of one precision, each forwarding its input
  // `reps` times. Contexts and worker pools are built before the clock
  // starts — the steady-state sample rate is the quantity of interest,
  // not the one-time arena setup.
  const auto run_streams = [&](int streams, std::size_t prec_index) {
    const dnn::Precision precision = precisions[prec_index];
    std::atomic<int> mismatches{0};
    std::vector<dnn::ExecContext> ctxs;
    std::vector<std::unique_ptr<runtime::ThreadPool>> pools;
    ctxs.reserve(static_cast<std::size_t>(streams));
    for (int s = 0; s < streams; ++s) {
      ctxs.push_back(make_ctx(precision));
      pools.push_back(std::make_unique<runtime::ThreadPool>(
          static_cast<std::size_t>(threads_per_stream)));
    }
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(streams));
    const runtime::Stopwatch watch;
    for (int s = 0; s < streams; ++s) {
      threads.emplace_back([&, s] {
        for (int r = 0; r < reps; ++r) {
          const auto out =
              ctxs[s].forward(inputs[s], *pools[s]).to_vector();
          if (tensor::max_abs_diff(out, expected[prec_index][s]) != 0.0f) {
            mismatches.fetch_add(1);
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    const double seconds = watch.elapsed_seconds();
    if (mismatches.load() != 0) {
      throw std::runtime_error(
          "concurrent stream output diverged from serial reference");
    }
    return static_cast<double>(streams) * reps / seconds;
  };

  for (std::size_t p = 0; p < precisions.size(); ++p) {
    run_streams(1, p);  // warm-up: pages in weights, arenas and code
  }

  // Single-stream rates, round-robin: the per-precision speedups are
  // ratios of rates measured through interleaved time slices, so
  // machine-load drift degrades all modes together.
  std::vector<double> single_sps(precisions.size(), 0.0);
  for (int round = 0; round < rounds; ++round) {
    for (std::size_t p = 0; p < precisions.size(); ++p) {
      single_sps[p] = std::max(single_sps[p], run_streams(1, p));
    }
  }

  std::printf("%8s | %7s | %14s | %8s\n", "streams", "prec", "samples/s",
              "speedup");
  // results[prec] holds (streams, sps); streams == 1 comes from the
  // round-robin block above.
  std::vector<std::vector<std::pair<int, double>>> results(
      precisions.size());
  for (std::size_t p = 0; p < precisions.size(); ++p) {
    for (int streams = 1; streams <= max_streams; streams *= 2) {
      const double sps =
          streams == 1 ? single_sps[p] : run_streams(streams, p);
      results[p].emplace_back(streams, sps);
      std::printf("%8d | %7s | %14.2f | %7.2fx\n", streams,
                  to_string(precisions[p]).data(), sps,
                  single_sps[p] > 0.0 ? sps / single_sps[p] : 0.0);
    }
  }
  const double speedup_bf16 =
      single_sps[0] > 0.0 ? single_sps[1] / single_sps[0] : 0.0;
  const double speedup_int8w =
      single_sps[0] > 0.0 ? single_sps[2] / single_sps[0] : 0.0;
  std::printf("\nsingle-stream speedup vs fp32: bf16 %.3fx, int8w "
              "%.3fx\n",
              speedup_bf16, speedup_int8w);

  const bool scaling_valid =
      static_cast<unsigned long long>(max_streams) *
          static_cast<unsigned long long>(threads_per_stream) <=
      hardware_threads;
  if (!scaling_valid) {
    std::printf("scaling_valid: false — %d streams x %d thread(s) "
                "oversubscribe %u hardware thread(s); multi-stream rows "
                "measure time-slicing, not scaling\n",
                max_streams, threads_per_stream, hardware_threads);
  }

  if (!json_path.empty()) {
    obs::JsonObject rec;
    rec.field("bench", "inference_throughput")
        .field("commit", COSMOFLOW_GIT_SHA)
        .field("dhw", static_cast<std::int64_t>(dhw))
        .field("reps", reps)
        .field("rounds", rounds)
        .field("threads_per_stream", threads_per_stream)
        .field("cost_model", use_cost_model)
        .field("hardware_threads",
               static_cast<std::int64_t>(hardware_threads))
        .field("scaling_valid", scaling_valid);
    for (std::size_t p = 0; p < precisions.size(); ++p) {
      for (const auto& [streams, sps] : results[p]) {
        rec.field(std::string("sps_") + precision_tag(precisions[p]) +
                      "streams_" + std::to_string(streams),
                  sps);
      }
    }
    rec.field("speedup_max_streams",
              single_sps[0] > 0.0 ? results[0].back().second / single_sps[0]
                                  : 0.0);
    rec.field("speedup_bf16", speedup_bf16)
        .field("speedup_int8w", speedup_int8w)
        .field("mae_bf16", mae_bf16)
        .field("mae_int8w", mae_int8w);
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::printf("FAILED to write json to %s\n", json_path.c_str());
      return 1;
    }
    const std::string line = rec.str() + "\n";
    std::fwrite(line.data(), 1, line.size(), out);
    std::fclose(out);
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  std::printf("\nshape target: bf16 beats fp32 on single-stream "
              "samples/s (halved activation/weight bytes, fp32 "
              "accumulate); aggregate samples/s grows with the stream "
              "count only while streams fit the hardware threads — "
              "beyond that (scaling_valid=false) the rows measure "
              "time-sliced streams, not concurrency.\n");
  return 0;
}
