// Fig 4 reproduction: scaling of fully-synchronous training.
//
// Two parts:
//  1. MEASURED: thread-rank SSGD on this machine at 1..8 ranks (scaled
//     network, in-memory data). On one physical core the ranks
//     timeslice, so per-epoch walltime stays ~flat while aggregate
//     samples/step grows — reported for transparency, not as the
//     headline curve.
//  2. MODEL: the calibrated StepTimeModel swept to 8192 nodes for the
//     paper's three configurations — Cori + DataWarp burst buffer,
//     Cori + Lustre, Piz Daint + Lustre. Shape targets: near-linear BB
//     scaling with 77% efficiency at 8192 (3.5 Pflop/s sustained); a
//     Lustre knee past ~512 nodes (<58% at 1024 on Cori, ~44% at 512
//     on Piz Daint).
//
//   ./bench_fig4_scaling [--max-ranks=4] [--epochs=2]
#include <cstdio>
#include <cstring>

#include "core/dataset_gen.hpp"
#include "core/trainer.hpp"
#include "iosim/steptime_model.hpp"

namespace {

void run_measured(int max_ranks, int epochs) {
  using namespace cf;
  std::printf("--- measured: thread-rank SSGD (cosmoflow-16, single "
              "physical core) ---\n");
  runtime::ThreadPool pool;
  core::DatasetGenConfig gen;
  gen.simulations = 12;
  gen.sim.grid = {16, 128.0};
  gen.sim.voxels = 32;
  gen.seed = 11;
  core::GeneratedDataset dataset = core::generate_dataset(gen, pool);
  data::InMemorySource train(std::move(dataset.train));
  data::InMemorySource val(std::move(dataset.val));

  std::printf("%6s %12s %14s %16s\n", "ranks", "epoch s", "samples/s",
              "step ms (rank0)");
  double epoch1 = 0.0;
  for (int ranks = 1; ranks <= max_ranks; ranks *= 2) {
    core::TrainerConfig config;
    config.nranks = ranks;
    config.epochs = epochs;
    core::Trainer trainer(core::cosmoflow_scaled(16), train, val, config);
    const auto stats = trainer.run();
    const core::EpochStats& last = stats.back();
    if (ranks == 1) epoch1 = last.epoch_seconds;
    const double samples_per_s =
        static_cast<double>(trainer.steps_per_epoch_per_rank() * ranks) /
        last.epoch_seconds;
    std::printf("%6d %12.3f %14.1f %16.2f\n", ranks, last.epoch_seconds,
                samples_per_s, last.step_time.mean() * 1e3);
  }
  std::printf("(single-core baseline epoch: %.3fs; rank-concurrency here "
              "validates correctness and overheads, not parallel "
              "speedup)\n\n",
              epoch1);
}

void run_model() {
  using namespace cf::iosim;
  std::printf("--- model: calibrated step-time model swept to 8192 nodes "
              "---\n");
  const std::int64_t train_samples = 163840;  // 8192 nodes x 20 steps
  const std::int64_t val_samples = 8192;
  const double flops = 69.33e9;
  const std::vector<int> nodes{1,   2,    4,    8,    16,   32,  64, 128,
                               256, 512, 1024, 2048, 4096, 8192};

  const StepModelParams cori;
  const StepTimeModel bb(cori,
                         FilesystemModel(FilesystemSpec::cori_datawarp()));
  const StepTimeModel lustre(
      cori, FilesystemModel(FilesystemSpec::cori_lustre()));
  StepModelParams daint;
  daint.compute_seconds = 69.33e9 / 388e9;  // P100 node (388 Gflop/s)
  const StepTimeModel piz(
      daint, FilesystemModel(FilesystemSpec::piz_daint_lustre()));

  const auto pb = bb.sweep(nodes, train_samples, val_samples, flops);
  const auto pl = lustre.sweep(nodes, train_samples, val_samples, flops);
  const auto pd = piz.sweep(nodes, train_samples, val_samples, flops);

  std::printf("%6s | %9s %6s %8s | %9s %6s | %9s %6s\n", "nodes",
              "BB spdup", "eff", "Pflop/s", "Lus spdup", "eff",
              "Piz spdup", "eff");
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    std::printf("%6d | %9.0f %5.0f%% %8.3f | %9.0f %5.0f%% | %9.0f "
                "%5.0f%%\n",
                nodes[i], pb[i].speedup, pb[i].efficiency * 100.0,
                pb[i].sustained_pflops, pl[i].speedup,
                pl[i].efficiency * 100.0, pd[i].speedup,
                pd[i].efficiency * 100.0);
  }
  std::printf("\npaper anchors: BB 77%% efficiency / 6324x speedup / "
              "3.5 Pflop/s at 8192; Cori Lustre <58%% at 1024; Piz Daint "
              "Lustre ~44%% at 512.\n");
  std::printf("model at anchors: BB %.0f%% / %.0fx / %.2f Pflop/s; "
              "Cori Lustre %.0f%% at 1024; Piz Daint %.0f%% at 512.\n",
              pb[13].efficiency * 100.0, pb[13].speedup,
              pb[13].sustained_pflops, pl[10].efficiency * 100.0,
              pd[9].efficiency * 100.0);
}

}  // namespace

int main(int argc, char** argv) {
  int max_ranks = 4;
  int epochs = 2;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--max-ranks=", 12) == 0) {
      max_ranks = std::atoi(argv[i] + 12);
    }
    if (std::strncmp(argv[i], "--epochs=", 9) == 0) {
      epochs = std::atoi(argv[i] + 9);
    }
  }
  std::printf("=== bench_fig4_scaling: synchronous-training scaling "
              "===\n\n");
  run_measured(max_ranks, epochs);
  run_model();
  return 0;
}
