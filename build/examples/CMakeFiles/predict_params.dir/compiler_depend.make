# Empty compiler generated dependencies file for predict_params.
# This may be replaced when dependencies are built.
