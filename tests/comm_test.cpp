// Tests for the MlComm thread-rank communicator: correctness of
// broadcast / allreduce across rank counts and algorithms, determinism,
// straggler tolerance.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <span>
#include <thread>
#include <vector>

#include "comm/mlcomm.hpp"
#include "runtime/rng.hpp"

namespace cf::comm {
namespace {

std::vector<std::vector<float>> make_rank_data(int nranks, std::size_t n,
                                               std::uint64_t seed) {
  std::vector<std::vector<float>> data(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    runtime::Rng rng(seed, static_cast<std::uint64_t>(r));
    auto& v = data[static_cast<std::size_t>(r)];
    v.resize(n);
    for (auto& x : v) x = rng.normal();
  }
  return data;
}

std::vector<float> expected_average(
    const std::vector<std::vector<float>>& data) {
  std::vector<float> avg(data[0].size(), 0.0f);
  for (const auto& v : data) {
    for (std::size_t i = 0; i < v.size(); ++i) avg[i] += v[i];
  }
  for (auto& x : avg) x /= static_cast<float>(data.size());
  return avg;
}

struct CommCase {
  int nranks;
  std::size_t n;
  AllreduceAlgorithm algorithm;
};

class AllreduceCorrectness : public ::testing::TestWithParam<CommCase> {};

TEST_P(AllreduceCorrectness, AveragesAcrossRanks) {
  const CommCase& c = GetParam();
  MlCommConfig config;
  config.algorithm = c.algorithm;
  config.chunk_elems = 64;  // force multi-chunk processing
  MlComm comm(c.nranks, config);

  auto data = make_rank_data(c.nranks, c.n, 3);
  const auto expected = expected_average(data);

  comm.run([&](RankHandle& rank) {
    rank.allreduce_average(data[static_cast<std::size_t>(rank.rank())]);
  });

  for (int r = 0; r < c.nranks; ++r) {
    const auto& v = data[static_cast<std::size_t>(r)];
    for (std::size_t i = 0; i < v.size(); ++i) {
      ASSERT_NEAR(v[i], expected[i], 1e-5f)
          << "rank " << r << " element " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllreduceCorrectness,
    ::testing::Values(
        CommCase{1, 100, AllreduceAlgorithm::kReduceScatter},
        CommCase{2, 1000, AllreduceAlgorithm::kReduceScatter},
        CommCase{4, 1000, AllreduceAlgorithm::kReduceScatter},
        CommCase{8, 257, AllreduceAlgorithm::kReduceScatter},
        CommCase{3, 7, AllreduceAlgorithm::kReduceScatter},  // n < chunk
        CommCase{5, 3, AllreduceAlgorithm::kReduceScatter},  // n < nranks
        CommCase{2, 1000, AllreduceAlgorithm::kCentralRoot},
        CommCase{7, 513, AllreduceAlgorithm::kCentralRoot}));

TEST(MlComm, AllreduceIsBitwiseDeterministic) {
  const int nranks = 4;
  const std::size_t n = 4096;
  std::vector<std::vector<float>> first;
  for (int repeat = 0; repeat < 2; ++repeat) {
    MlComm comm(nranks, MlCommConfig{});
    auto data = make_rank_data(nranks, n, 11);
    comm.run([&](RankHandle& rank) {
      rank.allreduce_average(data[static_cast<std::size_t>(rank.rank())]);
    });
    if (repeat == 0) {
      first = data;
    } else {
      for (int r = 0; r < nranks; ++r) {
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(data[static_cast<std::size_t>(r)][i],
                    first[static_cast<std::size_t>(r)][i]);
        }
      }
    }
  }
}

TEST(MlComm, AllRanksSeeIdenticalResult) {
  // Data-parallel SSGD correctness hinges on every replica applying
  // bit-identical averaged gradients.
  const int nranks = 6;
  MlComm comm(nranks, MlCommConfig{});
  auto data = make_rank_data(nranks, 999, 13);
  comm.run([&](RankHandle& rank) {
    rank.allreduce_average(data[static_cast<std::size_t>(rank.rank())]);
  });
  for (int r = 1; r < nranks; ++r) {
    for (std::size_t i = 0; i < 999; ++i) {
      ASSERT_EQ(data[static_cast<std::size_t>(r)][i], data[0][i]);
    }
  }
}

TEST(MlComm, BroadcastCopiesRootModel) {
  const int nranks = 5;
  MlComm comm(nranks, MlCommConfig{});
  auto data = make_rank_data(nranks, 321, 17);
  const auto root_copy = data[2];
  comm.run([&](RankHandle& rank) {
    rank.broadcast(data[static_cast<std::size_t>(rank.rank())], /*root=*/2);
  });
  for (int r = 0; r < nranks; ++r) {
    for (std::size_t i = 0; i < root_copy.size(); ++i) {
      ASSERT_EQ(data[static_cast<std::size_t>(r)][i], root_copy[i]);
    }
  }
}

TEST(MlComm, ScalarAverage) {
  const int nranks = 4;
  MlComm comm(nranks, MlCommConfig{});
  std::vector<double> results(nranks);
  comm.run([&](RankHandle& rank) {
    results[static_cast<std::size_t>(rank.rank())] =
        rank.allreduce_average_scalar(rank.rank() + 1.0);
  });
  for (const double r : results) EXPECT_DOUBLE_EQ(r, 2.5);  // (1+2+3+4)/4
}

TEST(MlComm, SequentialCollectivesDoNotInterfere) {
  const int nranks = 3;
  MlComm comm(nranks, MlCommConfig{});
  auto a = make_rank_data(nranks, 50, 19);
  auto b = make_rank_data(nranks, 75, 23);
  const auto ea = expected_average(a);
  const auto eb = expected_average(b);
  comm.run([&](RankHandle& rank) {
    const auto r = static_cast<std::size_t>(rank.rank());
    rank.allreduce_average(a[r]);
    rank.barrier();
    rank.allreduce_average(b[r]);
  });
  for (std::size_t i = 0; i < 50; ++i) ASSERT_NEAR(a[0][i], ea[i], 1e-5f);
  for (std::size_t i = 0; i < 75; ++i) ASSERT_NEAR(b[0][i], eb[i], 1e-5f);
}

TEST(MlComm, ToleratesStragglers) {
  // A deliberately slow rank must not corrupt the reduction (the
  // barrier-structured algorithm hides the imbalance, §III-D).
  const int nranks = 4;
  MlCommConfig config;
  config.pre_reduce_hook = [](int rank) {
    if (rank == 2) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  };
  MlComm comm(nranks, config);
  auto data = make_rank_data(nranks, 128, 29);
  const auto expected = expected_average(data);
  comm.run([&](RankHandle& rank) {
    rank.allreduce_average(data[static_cast<std::size_t>(rank.rank())]);
  });
  for (std::size_t i = 0; i < 128; ++i) {
    ASSERT_NEAR(data[0][i], expected[i], 1e-5f);
  }
}

TEST(MlComm, TracksCommTime) {
  MlComm comm(2, MlCommConfig{});
  auto data = make_rank_data(2, 1 << 16, 31);
  comm.run([&](RankHandle& rank) {
    rank.allreduce_average(data[static_cast<std::size_t>(rank.rank())]);
  });
  EXPECT_EQ(comm.handle(0).comm_time().count(), 1u);
  EXPECT_GT(comm.handle(0).comm_time().total(), 0.0);
  comm.handle(0).reset_comm_time();
  EXPECT_EQ(comm.handle(0).comm_time().count(), 0u);
}

TEST(MlComm, RejectsBadConfiguration) {
  EXPECT_THROW(MlComm(0, MlCommConfig{}), std::invalid_argument);
  MlCommConfig bad;
  bad.chunk_elems = 0;
  EXPECT_THROW(MlComm(2, bad), std::invalid_argument);
  MlComm comm(2, MlCommConfig{});
  EXPECT_THROW(comm.handle(5), std::out_of_range);
}

TEST(MlComm, MismatchedBufferSizesThrow) {
  MlComm comm(2, MlCommConfig{});
  EXPECT_THROW(comm.run([&](RankHandle& rank) {
                 std::vector<float> v(rank.rank() == 0 ? 10 : 20, 1.0f);
                 rank.allreduce_average(v);
               }),
               std::invalid_argument);
}

TEST(MlComm, RunPropagatesRankExceptions) {
  MlComm comm(2, MlCommConfig{});
  EXPECT_THROW(comm.run([&](RankHandle& rank) {
                 if (rank.rank() == 1) throw std::runtime_error("rank died");
                 // Rank 0 does no collective, so no deadlock.
               }),
               std::runtime_error);
}

// --- nonblocking bucketed allreduce (helper thread) -----------------

TEST(MlCommAsync, SingleBucketAveragesAcrossRanks) {
  for (const int nranks : {1, 4}) {
    MlCommConfig config;
    config.chunk_elems = 64;
    MlComm comm(nranks, config);
    auto data = make_rank_data(nranks, 500, 37);
    const auto expected = expected_average(data);
    comm.run([&](RankHandle& rank) {
      PendingReduce pending = rank.allreduce_average_async(
          data[static_cast<std::size_t>(rank.rank())]);
      EXPECT_TRUE(pending.valid());
      rank.wait(pending);
      EXPECT_FALSE(pending.valid());
    });
    for (int r = 0; r < nranks; ++r) {
      for (std::size_t i = 0; i < expected.size(); ++i) {
        ASSERT_NEAR(data[static_cast<std::size_t>(r)][i], expected[i],
                    1e-5f)
            << "nranks " << nranks << " rank " << r << " element " << i;
      }
    }
  }
}

TEST(MlCommAsync, BitwiseMatchesSyncRegardlessOfBucketing) {
  // The acceptance property of the overlapped path: splitting a vector
  // into async buckets — any split — averages bitwise identically to
  // one synchronous allreduce over the whole vector.
  const std::size_t n = 2048;
  for (const int nranks : {1, 4}) {
    auto reference = make_rank_data(nranks, n, 41);
    {
      MlCommConfig config;
      config.chunk_elems = 64;
      MlComm comm(nranks, config);
      comm.run([&](RankHandle& rank) {
        rank.allreduce_average(
            reference[static_cast<std::size_t>(rank.rank())]);
      });
    }
    // Uneven bucket sizes, including a 1-element and a large tail.
    for (const std::size_t bucket : {std::size_t{1}, std::size_t{7},
                                     std::size_t{500}, n}) {
      auto data = make_rank_data(nranks, n, 41);
      MlCommConfig config;
      config.chunk_elems = 64;
      MlComm comm(nranks, config);
      comm.run([&](RankHandle& rank) {
        auto& v = data[static_cast<std::size_t>(rank.rank())];
        std::vector<PendingReduce> pending;
        for (std::size_t begin = 0; begin < n; begin += bucket) {
          const std::size_t len = std::min(bucket, n - begin);
          pending.push_back(rank.allreduce_average_async(
              std::span<float>(v).subspan(begin, len)));
        }
        for (PendingReduce& p : pending) rank.wait(p);
      });
      for (int r = 0; r < nranks; ++r) {
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(data[static_cast<std::size_t>(r)][i],
                    reference[static_cast<std::size_t>(r)][i])
              << "nranks " << nranks << " bucket " << bucket
              << " rank " << r << " element " << i;
        }
      }
    }
  }
}

TEST(MlCommAsync, ToleratesStragglers) {
  const int nranks = 4;
  MlCommConfig config;
  config.pre_reduce_hook = [](int rank) {
    if (rank == 2) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  };
  MlComm comm(nranks, config);
  auto data = make_rank_data(nranks, 128, 43);
  const auto expected = expected_average(data);
  comm.run([&](RankHandle& rank) {
    PendingReduce pending = rank.allreduce_average_async(
        data[static_cast<std::size_t>(rank.rank())]);
    rank.wait(pending);
  });
  for (std::size_t i = 0; i < 128; ++i) {
    ASSERT_NEAR(data[0][i], expected[i], 1e-5f);
  }
}

TEST(MlCommAsync, RecordsHiddenExposedSplitAndBucketCount) {
  const int nranks = 2;
  const std::size_t n = 600;
  const std::int64_t buckets_before =
      obs::Registry::global().counter("comm/buckets").value();
  MlComm comm(nranks, MlCommConfig{});
  auto data = make_rank_data(nranks, n, 47);
  comm.run([&](RankHandle& rank) {
    auto& v = data[static_cast<std::size_t>(rank.rank())];
    std::vector<PendingReduce> pending;
    for (std::size_t begin = 0; begin < n; begin += 200) {
      pending.push_back(rank.allreduce_average_async(
          std::span<float>(v).subspan(begin, 200)));
    }
    for (PendingReduce& p : pending) rank.wait(p);
  });
  for (int r = 0; r < nranks; ++r) {
    // One exposed and one hidden observation per bucket wait.
    EXPECT_EQ(comm.handle(r).exposed_comm_time().count(), 3u);
    EXPECT_EQ(comm.handle(r).hidden_comm_time().count(), 3u);
    // Exposed wait time is critical-path comm time.
    EXPECT_EQ(comm.handle(r).comm_time().count(), 3u);
  }
  EXPECT_EQ(obs::Registry::global().counter("comm/buckets").value() -
                buckets_before,
            3);
}

TEST(MlCommAsync, MismatchedBucketSizesThrow) {
  MlComm comm(2, MlCommConfig{});
  EXPECT_THROW(comm.run([&](RankHandle& rank) {
                 std::vector<float> v(rank.rank() == 0 ? 10 : 20, 1.0f);
                 PendingReduce pending = rank.allreduce_average_async(v);
                 rank.wait(pending);
               }),
               std::invalid_argument);
}

TEST(MlCommAsync, WaitOnInvalidTicketThrows) {
  MlComm comm(1, MlCommConfig{});
  comm.run([&](RankHandle& rank) {
    PendingReduce never_posted;
    EXPECT_THROW(rank.wait(never_posted), std::logic_error);
    // Waiting twice on the same ticket is also a misuse.
    std::vector<float> v(16, 1.0f);
    PendingReduce pending = rank.allreduce_average_async(v);
    rank.wait(pending);
    EXPECT_THROW(rank.wait(pending), std::logic_error);
  });
}

}  // namespace
}  // namespace cf::comm
