// Persistent worker-thread pool with a static-partition parallel_for.
//
// This is the threading substrate under every compute kernel in cf::dnn
// (the paper threads its MKL-DNN primitives over output voxels /
// channel blocks with OpenMP; we provide the same decomposition with a
// owned pool so partitioning is deterministic and testable).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace cf::runtime {

class ThreadPool {
 public:
  /// `num_threads` counts workers *including* the calling thread:
  /// parallel_for(n) runs chunk 0 on the caller and chunks 1..n-1 on
  /// pool threads. num_threads == 1 means fully serial (no threads
  /// spawned).
  explicit ThreadPool(std::size_t num_threads = default_num_threads());

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  std::size_t num_threads() const noexcept { return num_threads_; }

  /// Run body(begin, end, worker) over [0, total) split into
  /// min(num_threads, total / grain) contiguous chunks — `grain` is the
  /// minimum number of items a chunk is worth dispatching for, so a
  /// small range on a wide pool collapses to few (or one) chunks
  /// instead of paying a wake per thread. Blocks until every chunk is
  /// done. Exceptions thrown by `body` are rethrown on the caller
  /// (first one wins). The callable is captured by reference —
  /// parallel_for returns only after every chunk finished, so it
  /// outlives the dispatch — which keeps the hot path free of
  /// std::function allocation/copying (one pointer + one function
  /// pointer are stored under the mutex instead).
  ///
  /// When the chunk count comes out 1 the body runs serially on the
  /// caller over the whole range — the dispatch/wake machinery costs
  /// more than a tiny elementwise loop saves. The serial path executes
  /// the identical body over [0, total), so results cannot depend on
  /// which path was taken. NOTE: the chunk count never depends on which
  /// worker is free — for a fixed (total, grain, num_threads) the
  /// partition is a pure function, which is what keeps threaded
  /// reductions bitwise-reproducible (DESIGN.md §2.1/§2.6).
  ///
  /// Calling parallel_for from inside a body already running on this or
  /// any other pool (a nested region) falls back to serial execution of
  /// the nested body on the calling thread instead of deadlocking on
  /// the pool's single task slot or oversubscribing cores; a debug
  /// assert flags the nesting so it gets fixed rather than relied on.
  template <typename Body>
  void parallel_for(std::size_t total, Body&& body,
                    std::size_t grain_threshold = 1) {
    using Fn = std::remove_reference_t<Body>;
    void* ctx = const_cast<void*>(
        static_cast<const void*>(std::addressof(body)));
    dispatch(total, ctx,
             [](void* c, std::size_t begin, std::size_t end,
                std::size_t worker) {
               (*static_cast<Fn*>(c))(begin, end, worker);
             },
             grain_threshold);
  }

  /// Run body(worker) once on each of the num_threads workers.
  template <typename Body>
  void run_on_all(Body&& body) {
    parallel_for(num_threads_, [&body](std::size_t begin, std::size_t end,
                                       std::size_t) {
      for (std::size_t i = begin; i < end; ++i) body(i);
    });
  }

  /// Process-wide pool sized from the COSMOFLOW_NUM_THREADS environment
  /// variable (default: hardware_concurrency).
  static ThreadPool& global();

  static std::size_t default_num_threads();

  /// True while the calling thread is executing a parallel_for body (on
  /// any pool). Used by the nested-dispatch guard and exposed so tests
  /// and kernels can verify the serial-fallback contract.
  static bool in_parallel_region() noexcept;

 private:
  /// Type-erased borrowed callable: valid only while the dispatching
  /// parallel_for is blocked, which is exactly the workers' window.
  using TaskInvoke = void (*)(void* ctx, std::size_t begin,
                              std::size_t end, std::size_t worker);
  struct Task {
    void* ctx = nullptr;
    TaskInvoke invoke = nullptr;
    std::size_t total = 0;
    std::size_t chunks = 0;
  };

  void dispatch(std::size_t total, void* ctx, TaskInvoke invoke,
                std::size_t grain_threshold);
  void worker_loop(std::size_t worker_index);
  void chunk_bounds(std::size_t total, std::size_t worker,
                    std::size_t* begin, std::size_t* end) const;
  void run_chunk(std::size_t worker);

  std::size_t num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  Task task_;
  std::size_t pending_ = 0;
  std::size_t generation_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

}  // namespace cf::runtime
