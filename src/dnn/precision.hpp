// Reduced-precision inference support (DESIGN.md §2.5).
//
// fp32 is the reference numeric format: training, checkpoints and the
// bitwise-determinism contract all live there and nothing in this
// module changes a single fp32 bit. On top of it sit two inference-only
// fast paths, both tolerance-gated (tests/precision_test.cpp):
//
//  * kBf16 — bf16 storage for weights *and* activations with fp32
//    accumulation in every kernel. A 16-wide nCdhw16c channel block is
//    exactly one 256-bit bf16 load widened to a __m512
//    (vpmovzxwd + vpslld), so halving the bytes moved needs no layout
//    change — the memory-bound win ROADMAP item 2 asks for.
//  * kInt8Weights — weights-only int8 with per-output-channel symmetric
//    scales calibrated from the weight maxima at prepare time;
//    activations and accumulation stay fp32. Quarter-size weight
//    streams, unchanged activation traffic.
//
// Conversions are defined here once, with bit-identical scalar and
// AVX-512 forms: fp32 -> bf16 uses round-to-nearest-even via the
// integer bias trick (NaNs are quieted), and the vector narrowing
// deliberately uses the same integer ops (not vcvtneps2bf16) so a
// context produces the same bits with or without the intrinsics.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>

#if defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace cf::dnn {

/// Inference numeric mode of an ExecContext. kFp32 is the default and
/// the only mode training contexts accept.
enum class Precision { kFp32 = 0, kBf16 = 1, kInt8Weights = 2 };

constexpr std::string_view to_string(Precision p) noexcept {
  switch (p) {
    case Precision::kBf16:
      return "bf16";
    case Precision::kInt8Weights:
      return "int8w";
    case Precision::kFp32:
    default:
      return "fp32";
  }
}

/// Parses the CLI spelling ("fp32" | "bf16" | "int8w"); throws
/// std::invalid_argument on anything else.
inline Precision precision_from_string(std::string_view s) {
  if (s == "fp32") return Precision::kFp32;
  if (s == "bf16") return Precision::kBf16;
  if (s == "int8w") return Precision::kInt8Weights;
  throw std::invalid_argument("unknown precision \"" + std::string(s) +
                              "\" (expected fp32 | bf16 | int8w)");
}

/// Storage type for brain-float16 values: the top 16 bits of an IEEE
/// binary32. Kept as a plain integer so AlignedBuffer/memcpy treat it
/// as raw kernel data.
using bf16_t = std::uint16_t;

inline std::uint32_t f32_bits(float v) noexcept {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

inline float bits_f32(std::uint32_t bits) noexcept {
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

/// fp32 -> bf16, round-to-nearest-even (the integer bias trick:
/// add 0x7fff plus the keep-bit's LSB, then truncate). NaNs are
/// quieted so the truncation cannot turn a NaN into an infinity;
/// ±inf and ±0 map exactly.
inline bf16_t float_to_bf16(float v) noexcept {
  const std::uint32_t bits = f32_bits(v);
  if ((bits & 0x7fffffffu) > 0x7f800000u) {
    return static_cast<bf16_t>((bits >> 16) | 0x0040u);
  }
  const std::uint32_t lsb = (bits >> 16) & 1u;
  return static_cast<bf16_t>((bits + 0x7fffu + lsb) >> 16);
}

/// bf16 -> fp32 is exact: shift back into the high half.
inline float bf16_to_float(bf16_t h) noexcept {
  return bits_f32(static_cast<std::uint32_t>(h) << 16);
}

// Array converters (vectorized under __AVX512F__, same bits either
// way).
void bf16_from_f32(const float* src, bf16_t* dst, std::size_t n) noexcept;
void f32_from_bf16(const bf16_t* src, float* dst, std::size_t n) noexcept;

// --- int8 weight quantization -----------------------------------------

/// Per-output-channel symmetric scale from the channel's weight
/// maximum: dequant(q) = q * scale, q in [-127, 127]. A zero-max (dead)
/// channel gets scale 0 and all-zero quants — dequantization stays
/// exact instead of dividing by zero.
inline float int8_scale_from_max(float max_abs) noexcept {
  return max_abs > 0.0f ? max_abs / 127.0f : 0.0f;
}

/// Quantizes one value given inv_scale = 127 / max_abs (0 for a dead
/// channel). Round-half-away-from-zero, clamped to ±127 (the symmetric
/// grid; -128 is never produced).
inline std::int8_t quantize_int8(float v, float inv_scale) noexcept {
  const float scaled = v * inv_scale;
  const long q = std::lround(scaled);
  const long clamped = q < -127 ? -127 : (q > 127 ? 127 : q);
  return static_cast<std::int8_t>(clamped);
}

// --- AVX-512 lane helpers ---------------------------------------------
// Shared by the bf16/int8 micro-kernels in dnn/forward_rp.cpp.

#if defined(__AVX512F__)

/// 16 bf16 lanes -> one __m512: vpmovzxwd + vpslld + bitcast. Exact.
inline __m512 bf16_load_16(const bf16_t* p) noexcept {
  const __m256i raw =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  return _mm512_castsi512_ps(
      _mm512_slli_epi32(_mm512_cvtepu16_epi32(raw), 16));
}

/// One __m512 -> 16 bf16 lanes with the same RNE + NaN-quieting bits
/// as float_to_bf16. With AVX512BF16 this is the native narrow
/// (vcvtneps2bf16, one uop — it carries the forward epilogues);
/// otherwise an integer RNE sequence with identical bits for every
/// normal value, zero, inf and NaN. The only divergence between the
/// two (and from the scalar fallback build) is that the native narrow
/// flushes denormals to zero — never produced by the network's
/// normal-range activations.
inline void bf16_store_16(bf16_t* p, __m512 v) noexcept {
#if defined(__AVX512BF16__)
  const __m256bh narrowed = _mm512_cvtneps_pbh(v);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p),
                      reinterpret_cast<const __m256i&>(narrowed));
#else
  const __m512i bits = _mm512_castps_si512(v);
  const __mmask16 is_nan = _mm512_cmp_epu32_mask(
      _mm512_and_si512(bits, _mm512_set1_epi32(0x7fffffff)),
      _mm512_set1_epi32(0x7f800000), _MM_CMPINT_GT);
  const __m512i lsb = _mm512_and_si512(_mm512_srli_epi32(bits, 16),
                                       _mm512_set1_epi32(1));
  __m512i rounded = _mm512_srli_epi32(
      _mm512_add_epi32(_mm512_add_epi32(bits, _mm512_set1_epi32(0x7fff)),
                       lsb),
      16);
  const __m512i quiet_nan = _mm512_or_si512(_mm512_srli_epi32(bits, 16),
                                            _mm512_set1_epi32(0x0040));
  rounded = _mm512_mask_mov_epi32(rounded, is_nan, quiet_nan);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p),
                      _mm512_cvtepi32_epi16(rounded));
#endif  // __AVX512BF16__
}

/// 16 int8 weight lanes dequantized against a 16-lane scale vector.
inline __m512 int8_dequant_16(const std::int8_t* p,
                              __m512 scale16) noexcept {
  const __m128i raw =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  return _mm512_mul_ps(_mm512_cvtepi32_ps(_mm512_cvtepi8_epi32(raw)),
                       scale16);
}

#endif  // __AVX512F__

}  // namespace cf::dnn
