// cf::obs metrics registry — named counters, gauges and stats.
//
// The paper's evidence is instrumentation (Fig 3's stage breakdown,
// Table I's per-layer costs, Fig 4's scaling study); this registry is
// the single authoritative store those views read from. Three metric
// kinds:
//
//  * Counter — monotonically increasing 64-bit integer (bytes read,
//    samples prefetched, allreduce chunks, straggler stalls). Lock-free
//    relaxed atomics: safe to bump from ThreadPool::parallel_for bodies
//    and pipeline producer threads.
//  * Gauge — last-write-wins double (current lr, queue depth).
//  * Stat — an aggregated distribution of observations (seconds,
//    usually): count/total/min/max/stddev, i.e. a thread-safe
//    runtime::TimeStats. Collectives, optimizer steps and pipeline
//    waits record here; Trainer::breakdown() and EpochStats are views
//    over these.
//
// Handles returned by the registry are stable for the process lifetime
// (metrics are never deleted, only reset), so instrumented components
// look a name up once and record through the pointer on the hot path.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "runtime/timer.hpp"

namespace cf::obs {

/// Monotonic counter; relaxed atomics (no ordering is implied between
/// metric updates and the work they describe).
class Counter {
 public:
  void add(std::int64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-write-wins double.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Thread-safe observation aggregate (a mutex-guarded TimeStats).
/// Recording is one uncontended lock (~20 ns); instrumented sites sit
/// at span granularity (per layer call, per collective), never inside
/// compute kernels.
class Stat {
 public:
  void add(double value) {
    const std::lock_guard<std::mutex> lock(mutex_);
    stats_.add(value);
  }
  runtime::TimeStats snapshot() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }
  void reset() {
    const std::lock_guard<std::mutex> lock(mutex_);
    stats_ = runtime::TimeStats{};
  }

 private:
  mutable std::mutex mutex_;
  runtime::TimeStats stats_;
};

/// RAII timer recording elapsed seconds into a Stat on scope exit.
class ScopedStatTimer {
 public:
  explicit ScopedStatTimer(Stat& stat) : stat_(stat) {}
  ScopedStatTimer(const ScopedStatTimer&) = delete;
  ScopedStatTimer& operator=(const ScopedStatTimer&) = delete;
  ~ScopedStatTimer() { stat_.add(watch_.elapsed_seconds()); }

 private:
  Stat& stat_;
  runtime::Stopwatch watch_;
};

/// Point-in-time copy of every registered metric.
struct MetricsSnapshot {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, runtime::TimeStats> stats;
};

class Registry {
 public:
  /// Process-wide registry; every instrumented module records here.
  static Registry& global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create. The returned reference never moves.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Stat& stat(std::string_view name);

  MetricsSnapshot snapshot() const;

  /// Zeroes every metric (registrations and handles survive).
  void reset();
  /// Zeroes metrics whose name starts with `prefix`.
  void reset_prefix(std::string_view prefix);

  /// Deterministic JSON dump: names sorted, fixed formatting. Schema
  /// documented in OBSERVABILITY.md.
  std::string to_json() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Stat>, std::less<>> stats_;
};

}  // namespace cf::obs
