// Adam + LARC + polynomial decay: the exact optimizer of §III-B.
//
// Per parameter tensor l at step t with weights v and gradients g:
//
//   eta*  = 0.002 * ||v|| / ||g||   when both norms are nonzero,
//           6.25e-5                 otherwise
//   eta†  = min(eta*, 1)                 (the LARC clip)
//   g*    = eta† * g
//   v    <- Adam(v, g*, eta_t)           (eta_t from the schedule)
//
// LARC normalizes the update magnitude per layer for stability at
// large effective batch sizes; the clip guarantees the effective rate
// never exceeds the nominal Adam rate. The paper applies the rule "for
// each layer"; as in the reference LARS/LARC implementations we apply
// it per parameter tensor (weights and biases separately).
//
// The step is a fused two-phase pass over the network's flat
// parameter/gradient arenas (the bound tensors are arena views after
// Network::finalize()), chopped into fixed ~4096-element blocks:
//
//   phase 1  per-block partial sums of squares for ||v|| and ||g||,
//            then a serial in-order combine per tensor -> eta†
//   phase 2  the Adam update with eta† folded into the gradient read
//            (g* never materializes; the old scaled-gradient scratch
//            pass is gone)
//
// Both phases parallelize over blocks, and the block decomposition —
// not the thread partition — fixes every reduction order, so the
// result is bitwise identical for any thread count including the
// serial step() path.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dnn/layer.hpp"
#include "optim/adam.hpp"
#include "optim/lr_schedule.hpp"
#include "runtime/thread_pool.hpp"

namespace cf::optim {

struct LarcConfig {
  double trust_coefficient = 0.002;
  double fallback_ratio = 6.25e-5;
  bool clip = true;  // disable for plain LARS behaviour (ablation)
};

class LarcAdam {
 public:
  /// Binds to the network's parameter tensors; the views must stay
  /// valid for the optimizer's lifetime. After Network::finalize()
  /// these tensors are views into the network's contiguous
  /// parameter/gradient arenas, so the step walks one flat region in
  /// layer order.
  LarcAdam(std::vector<dnn::ParamView> params, AdamConfig adam,
           LarcConfig larc, std::shared_ptr<const LrSchedule> schedule);

  /// One synchronous update from the (already-averaged) gradients held
  /// in the bound gradient tensors.
  void step();

  /// Same update, thread-parallel over the block table. Bitwise
  /// identical to the serial step() for any pool size.
  void step(runtime::ThreadPool& pool);

  std::int64_t steps_taken() const noexcept { return step_; }
  double last_lr() const noexcept { return last_lr_; }

  /// Local rates eta† of the last step, per parameter tensor (exposed
  /// for tests and the Fig 3 instrumentation).
  const std::vector<double>& last_local_rates() const noexcept {
    return last_local_rates_;
  }

  std::size_t group_count() const noexcept { return params_.size(); }
  const dnn::ParamView& param(std::size_t group) const {
    return params_[group];
  }

 private:
  /// One fixed-size slice of one parameter tensor; the unit of both
  /// the norm reduction and the update sweep.
  struct Block {
    std::uint32_t group = 0;
    std::uint32_t lo = 0;
    std::uint32_t hi = 0;
  };

  void step_impl(runtime::ThreadPool* pool);
  void norm_blocks(std::size_t begin, std::size_t end);
  void update_blocks(std::size_t begin, std::size_t end, float rate,
                     float inv_bias1, float inv_bias2);

  std::vector<dnn::ParamView> params_;
  AdamConfig adam_;
  LarcConfig larc_;
  std::shared_ptr<const LrSchedule> schedule_;

  std::vector<Block> blocks_;
  std::vector<double> weight_sumsq_;  // per-block partials, phase 1
  std::vector<double> grad_sumsq_;
  std::vector<float> group_scale_;  // eta† per tensor, phase 1 -> 2
  std::vector<float> m_;            // flat first/second moments,
  std::vector<float> v_;            // group-major like the arena
  std::vector<std::size_t> moment_offset_;

  std::vector<double> last_local_rates_;
  std::int64_t step_ = 0;
  double last_lr_ = 0.0;
};

}  // namespace cf::optim
