// Evaluation metrics for the cosmological parameter regression
// (Fig 6 / §VII-A).
#pragma once

#include <array>
#include <cstddef>
#include <vector>

namespace cf::core {

/// One prediction/truth pair in *physical* parameter units.
struct Prediction {
  std::array<double, 3> predicted{};
  std::array<double, 3> truth{};
};

/// The paper's relative error: |theta_model - theta_true| /
/// theta_model, averaged over samples, per parameter (§VII-A).
std::array<double, 3> mean_relative_error(
    const std::vector<Prediction>& predictions);

/// Root-mean-square error per parameter (physical units).
std::array<double, 3> rmse(const std::vector<Prediction>& predictions);

/// Pearson correlation between prediction and truth per parameter —
/// the "tightness" of the Fig 6 scatter.
std::array<double, 3> correlation(const std::vector<Prediction>& predictions);

}  // namespace cf::core
