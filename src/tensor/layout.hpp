// Blocked data layouts for the 3D convolution primitives.
//
// Algorithm 1 of the paper blocks activations and weights by 16
// channels so the innermost loops vectorize over a full AVX-512
// register:
//   activation  plain {C, D, H, W}        -> blocked {Cb, D, H, W, 16}
//   weights     plain {OC, IC, KD, KH, KW} -> blocked {OCb, ICb, KD, KH,
//                                             KW, 16ic, 16oc}
// Channel counts that are not multiples of 16 are zero-padded in the
// blocked form (the canonical CosmoFlow topology keeps every channel
// count a multiple of 16 precisely to avoid this, §III-A). The first
// conv layer (IC == 1) uses a dedicated weight layout
// {OCb, KD, KH, KW, IC, 16oc} so the 128^3 input volume is not blown up
// 16x.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace cf::tensor {

inline constexpr std::int64_t kChannelBlock = 16;

/// ceil(channels / 16)
std::int64_t blocked_channel_count(std::int64_t channels);

/// plain {C, D, H, W} -> blocked {Cb, D, H, W, 16}; tail channels of the
/// last block are zero.
Tensor to_blocked_activation(const Tensor& plain);

/// blocked {Cb, D, H, W, 16} -> plain {channels, D, H, W}.
Tensor from_blocked_activation(const Tensor& blocked, std::int64_t channels);

/// plain {OC, IC, KD, KH, KW} -> blocked {OCb, ICb, KD, KH, KW, 16, 16}
/// with layout w[ocb][icb][kd][kh][kw][ic][oc].
Tensor to_blocked_weights(const Tensor& plain);

/// Inverse of to_blocked_weights.
Tensor from_blocked_weights(const Tensor& blocked, std::int64_t oc,
                            std::int64_t ic);

/// plain {OC, IC, KD, KH, KW} with small IC (< 16) ->
/// {OCb, KD, KH, KW, IC, 16oc}.
Tensor to_blocked_weights_small_ic(const Tensor& plain);

/// Inverse of to_blocked_weights_small_ic.
Tensor from_blocked_weights_small_ic(const Tensor& blocked, std::int64_t oc,
                                     std::int64_t ic);

}  // namespace cf::tensor
