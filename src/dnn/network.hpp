// Network container — the *model* half of the model/stream split
// (DESIGN.md §2.3), organized as a graph IR (DESIGN.md §2.8). The
// Network owns a dnn::Graph (node = layer, edge = tensor, fan-out and
// multiple output heads allowed) whose insertion order is the
// topologically-sorted execution schedule. After finalize() a Network
// is immutable: it owns the layers (geometry + weights), the flat
// contiguous parameter arena every weight tensor is rebound onto, and
// the plans computed by the edge-aware fusion and interval-liveness
// memory-planner passes. Nothing here changes during a step, so any
// number of execution streams can run against one Network concurrently
// — each stream's mutable state (activations, diffs, scratch,
// gradients, staging) lives in a dnn::ExecContext created via
// make_context().
//
// Sequential networks built through add()/emplace() lower onto linear
// graphs and stay bitwise identical to the pre-IR container end to end
// (trajectories, fused pairs, planned byte budgets).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dnn/exec_context.hpp"
#include "dnn/graph.hpp"
#include "dnn/layer.hpp"
#include "dnn/precision.hpp"
#include "runtime/aligned_buffer.hpp"

namespace cf::dnn {

class Network {
 public:
  Network() = default;

  /// Adds a layer consuming the previously added one (the network input
  /// for the first layer) — the sequential sugar every linear topology
  /// uses; returns a reference for further configuration.
  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    add(std::move(layer));
    return ref;
  }

  void add(std::unique_ptr<Layer> layer);

  /// Graph-building interface (DESIGN.md §2.8): appends a node
  /// consuming the named producers (kGraphInput = the network input).
  /// Node ids are schedule positions; inputs must already exist.
  NodeId add_node(std::unique_ptr<Layer> layer, std::vector<NodeId> inputs);

  template <typename L, typename... Args>
  NodeId emplace_node(std::vector<NodeId> inputs, Args&&... args) {
    return add_node(std::make_unique<L>(std::forward<Args>(args)...),
                    std::move(inputs));
  }

  /// Declares the output heads (before finalize; default: the last
  /// node). A multi-head network's output_shape() is the flat
  /// concatenation {sum of head numels}, in head order.
  void set_heads(std::vector<NodeId> heads);

  const Graph& graph() const noexcept { return graph_; }

  /// When enabled (before finalize), finalize() runs an MKL-DNN-style
  /// post-op fusion pass: every Conv3d→LeakyRelu / Dense→LeakyRelu edge
  /// whose activation is the producer's *sole* consumer is collapsed
  /// into the producer layer (forward epilogue + backward mask) and the
  /// standalone activation node — its two buffers and its two
  /// full-tensor sweeps — disappears. Off by default so hand-built test
  /// networks keep their literal layer list; build_network() turns it
  /// on.
  void set_fuse_eltwise(bool enabled) noexcept { fuse_eltwise_ = enabled; }
  bool fuse_eltwise() const noexcept { return fuse_eltwise_; }
  /// Number of activation layers absorbed by the fusion pass.
  std::size_t fused_pairs() const noexcept { return fused_pairs_; }

  /// When enabled (before finalize), training contexts place their
  /// buffers with the liveness-based memory planner (DESIGN.md §2.2 /
  /// §2.8): every diff tensor's live interval over the reverse schedule
  /// is computed (born at its first gradient contribution, dead once
  /// its own node's backward consumed it) and greedily colored onto a
  /// minimal set of max-sized slots; backward scratch is served from
  /// one shared arena sized to the largest request. On a linear chain
  /// the slot coloring reduces exactly to the old layer-index-parity
  /// ping-pong. Placement-only: the planned step is bitwise identical
  /// to the unplanned one. Off by default so hand-built test networks
  /// keep per-layer buffers; build_network() turns it on.
  void set_memory_planning(bool enabled) noexcept { memplan_ = enabled; }
  bool memory_planning() const noexcept { return memplan_; }

  /// Plans every node over the schedule, allocating parameters,
  /// building the param arena and recording the buffer plans contexts
  /// are built from. Must be called exactly once, after all nodes are
  /// added.
  void finalize(const tensor::Shape& input_shape);
  bool finalized() const noexcept { return finalized_; }

  /// Creates an execution stream over this network. The Network must
  /// outlive (and not move under) every context it handed out.
  ExecContext make_context(ExecMode mode);

  /// Reduced-precision variant (DESIGN.md §2.5): the context runs the
  /// forward pass in `precision`. Only inference contexts accept a
  /// non-fp32 precision, and the network must have been prepared for it
  /// (prepare_inference_precision) — both violations throw.
  ExecContext make_context(ExecMode mode, Precision precision);
  ExecContext make_context(ExecMode mode, Precision precision) const;

  /// Cost-model variants (DESIGN.md §2.6): the returned context has the
  /// plan's per-layer grains applied (ExecContext::apply_intraop) so
  /// its kernels partition for plan.threads_per_stream threads. The
  /// plan is advisory and bitwise-neutral — callers still own the
  /// ThreadPool sizing.
  ExecContext make_context(ExecMode mode, Precision precision,
                           const IntraopPlan& plan);
  ExecContext make_context(ExecMode mode, Precision precision,
                           const IntraopPlan& plan) const;

  /// Const overload for inference streams. A finalized Network is
  /// immutable during execution and an inference context only ever
  /// reads it (its mutating entry points — backward(), params(),
  /// zero_grads() — throw by mode), so handing contexts out from a
  /// `shared_ptr<const Network>` (the serving layer's ownership model,
  /// SERVING.md) is sound. Training contexts mutate weights through
  /// params() and stay gated behind the non-const overload; requesting
  /// kTraining here throws.
  ExecContext make_context(ExecMode mode) const;

  /// Variable input-size inference (DESIGN.md §2.8): a *shape view* is
  /// a second Network with the same topology re-planned at another
  /// input shape, whose weight tensors alias this network's param arena
  /// — zero weight copies, so reloading/retraining the parent is
  /// immediately visible through every view. Views are inference-only
  /// (kTraining contexts, param_arena(), copy/set_params and the bf16
  /// arena throw on a view; int8w works — its tables are per-view).
  /// Requires every layer to be clone-able (clone_unplanned) and every
  /// parameter shape to be input-size-invariant — a fixed-feature dense
  /// head behind Flatten throws here; GlobalAvgPool heads qualify. The
  /// parent must outlive its views.
  std::unique_ptr<Network> make_shape_view(
      const tensor::Shape& input_shape) const;
  /// True when this network's weights alias another network's arena.
  bool is_shape_view() const noexcept { return weights_shared_; }

  std::size_t layer_count() const noexcept { return graph_.size(); }
  Layer& layer(std::size_t i) { return graph_.layer(i); }
  const Layer& layer(std::size_t i) const { return graph_.layer(i); }

  const tensor::Shape& input_shape() const noexcept { return input_shape_; }
  const tensor::Shape& output_shape() const noexcept {
    return output_shape_;
  }

  /// Output heads (valid after finalize; {last node} by default).
  std::size_t head_count() const noexcept { return graph_.heads().size(); }
  NodeId head(std::size_t h) const { return graph_.heads()[h]; }
  /// Float offset of head h's slice in the concatenated network output.
  std::size_t head_offset(std::size_t h) const { return head_offsets_[h]; }

  std::int64_t param_count() const;
  std::size_t param_bytes() const {
    return static_cast<std::size_t>(param_count()) * sizeof(float);
  }

  // Flat arena view (valid after finalize). Layout is schedule order,
  // parameter-tensor order — identical to the copy_params_to layout.
  // Throws on a shape view (the weights live in the parent's arena).
  std::span<float> param_arena();
  /// Layer i's slice of the arena (empty for parameterless layers).
  std::span<float> param_segment(std::size_t i) {
    return param_arena().subspan(segment_offsets_[i], segment_sizes_[i]);
  }
  std::size_t segment_offset(std::size_t i) const {
    return segment_offsets_[i];
  }
  std::size_t segment_size(std::size_t i) const {
    return segment_sizes_[i];
  }

  // --- Reduced-precision inference arenas (DESIGN.md §2.5) ------------

  /// Packs the side arenas for `precision` from the *current* fp32
  /// weights: a bf16 image of the whole param arena (same segment
  /// offsets) for kBf16, or per-layer int8 quants + per-output-channel
  /// scales for kInt8Weights. The fp32 arena is never modified. Must
  /// run after finalize() and after the weights hold their real values
  /// (init or checkpoint load — plan-time contents are zeros);
  /// re-callable to re-pack after a weight reload. kFp32 is a no-op.
  /// Throws if a layer declines the precision (supports_precision).
  void prepare_inference_precision(Precision precision);

  /// Whether contexts in `precision` can be created right now. kFp32 is
  /// always ready; bf16/int8w require a prepare_inference_precision
  /// call since the last finalize.
  bool precision_prepared(Precision precision) const noexcept {
    switch (precision) {
      case Precision::kBf16:
        return bf16_prepared_;
      case Precision::kInt8Weights:
        return int8_prepared_;
      case Precision::kFp32:
      default:
        return true;
    }
  }

  /// Layer i's slice of the bf16 param-arena image (same offsets as
  /// param_segment; empty for parameterless layers).
  std::span<const bf16_t> bf16_param_segment(std::size_t i) const {
    return {bf16_arena_.data() + segment_offsets_[i], segment_sizes_[i]};
  }
  /// Layer i's int8 weight quants / per-output-channel scales (empty
  /// for layers without quantizable weights).
  std::span<const std::int8_t> int8_weight_segment(std::size_t i) const {
    return {int8_arena_.data() + int8_weight_offsets_[i],
            int8_weight_sizes_[i]};
  }
  std::span<const float> int8_scale_segment(std::size_t i) const {
    return {int8_scales_.data() + int8_scale_offsets_[i],
            int8_scale_sizes_[i]};
  }

  /// Total per-sample flops; `skip_first_bwd_data` drops the unneeded
  /// data gradient of nodes reading only the network input (the
  /// default, matching the real workload).
  FlopCounts flops(bool skip_first_bwd_data = true) const;

  // Flat vector interface (checkpoints, tests). Order is schedule
  // order, value tensor order — a straight copy of the arena. Throws on
  // a shape view (use the parent).
  void copy_params_to(std::span<float> out) const;
  void set_params_from(std::span<const float> in);

  // Planned memory accounting for a *training* context (valid after
  // finalize; nothing is allocated here — contexts allocate).
  // Activations always keep per-layer storage; diff/scratch bytes
  // reflect the planner when it is on and the per-layer totals when it
  // is off.
  std::size_t activation_bytes() const noexcept;
  std::size_t diff_arena_bytes() const noexcept;
  std::size_t scratch_bytes() const noexcept;
  std::size_t peak_tensor_bytes() const noexcept {
    return activation_bytes() + diff_arena_bytes() + scratch_bytes();
  }

  /// Per-pass totals finalize() records for make_context (floats).
  struct MemPlan {
    std::size_t act_sum = 0;        // per-layer activation total
    std::size_t diff_sum = 0;       // per-layer diff total (unplanned)
    std::size_t scratch_max = 0;    // shared scratch (planned)
    std::size_t scratch_sum = 0;    // per-layer scratch (unplanned)
    std::size_t workspace_sum = 0;  // per-layer staging (training)
    std::size_t workspace_max = 0;  // shared staging (inference)
  };
  const MemPlan& mem_plan() const noexcept { return mem_plan_; }

  /// Interval-liveness slot coloring over the schedule (DESIGN.md
  /// §2.8): node i's tensor lives at arena offset offsets[i]; `total`
  /// is the arena size in floats. Two tensors share an offset only if
  /// their live intervals are disjoint. Slots are canonically ordered
  /// by the smallest node id they serve, which on a linear chain
  /// reproduces the historical even/odd parity placement exactly.
  struct SlotPlan {
    std::vector<std::size_t> offsets;  // per node, floats
    std::size_t total = 0;
    std::size_t slot_count = 0;
  };
  /// Forward-pass activation slots (inference contexts collapse their
  /// activations onto these; training keeps per-node storage).
  const SlotPlan& act_slots() const noexcept { return act_slots_; }
  /// Reverse-pass diff slots (training contexts, when planning is on).
  const SlotPlan& diff_slots() const noexcept { return diff_slots_; }

  /// Floats of the largest tensor that can receive more than one
  /// gradient contribution (fan-out nodes / consumed heads) — the size
  /// of the training context's shared accumulation buffer. Zero for
  /// purely sequential networks.
  std::size_t bwd_accum_floats() const noexcept { return bwd_accum_floats_; }

 private:
  void build_arena();
  void plan_memory();

  Graph graph_;
  // Contiguous parameter storage; layer weight tensors are views into
  // this after finalize() (see build_arena). Empty on a shape view —
  // the tensors alias the parent's arena instead.
  runtime::AlignedBuffer<float> param_arena_;
  std::size_t param_total_ = 0;               // floats, set by finalize
  std::vector<std::size_t> segment_offsets_;  // per layer, in floats
  std::vector<std::size_t> segment_sizes_;
  // Reduced-precision side arenas (prepare_inference_precision). The
  // bf16 arena mirrors param_arena_ element-for-element; the int8
  // arena/scales use their own per-layer offset tables.
  runtime::AlignedBuffer<bf16_t> bf16_arena_;
  runtime::AlignedBuffer<std::int8_t> int8_arena_;
  runtime::AlignedBuffer<float> int8_scales_;
  std::vector<std::size_t> int8_weight_offsets_;
  std::vector<std::size_t> int8_weight_sizes_;
  std::vector<std::size_t> int8_scale_offsets_;
  std::vector<std::size_t> int8_scale_sizes_;
  bool bf16_prepared_ = false;
  bool int8_prepared_ = false;
  MemPlan mem_plan_;
  SlotPlan act_slots_;
  SlotPlan diff_slots_;
  std::size_t bwd_accum_floats_ = 0;
  std::vector<std::size_t> head_offsets_;
  tensor::Shape input_shape_;
  tensor::Shape output_shape_;
  bool finalized_ = false;
  bool fuse_eltwise_ = false;
  bool memplan_ = false;
  bool weights_shared_ = false;  // shape view: params alias the parent
  std::size_t fused_pairs_ = 0;
  NodeId last_node_ = kGraphInput;  // tail of the add() chain
};

}  // namespace cf::dnn
