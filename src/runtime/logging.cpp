#include "runtime/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace cf::runtime {

namespace {

LogLevel parse_env_level() {
  const char* env = std::getenv("COSMOFLOW_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kInfo;
}

std::atomic<int>& level_storage() {
  static std::atomic<int> level{static_cast<int>(parse_env_level())};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel log_level() {
  return static_cast<LogLevel>(level_storage().load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) {
  level_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  static std::mutex mutex;
  std::lock_guard lock(mutex);
  std::fprintf(stderr, "[cosmoflow %s] %s\n", level_name(level),
               message.c_str());
}

}  // namespace cf::runtime
