// §V-A reproduction: the network's analytic compute/parameter budget.
//
// Paper numbers, canonical 128^3 topology with batch size 1:
//   * "slightly more than seven million parameters"
//   * 28.15 MB of parameters
//   * 69.33 Gflop total computation per sample
// This bench prints the per-layer budget of our reconstruction and the
// totals next to the paper's.
#include <cstdio>

#include "core/topology.hpp"

int main() {
  using namespace cf;
  std::printf("=== bench_flops_model: §V-A compute/parameter budget ===\n\n");

  for (const core::TopologyConfig& config :
       {core::cosmoflow_128(), core::cosmoflow_64_baseline()}) {
    dnn::Network net = core::build_network(config, /*seed=*/0);
    std::printf("--- %s (input %lld^3) ---\n", config.name.c_str(),
                static_cast<long long>(config.input_dhw));
    std::printf("%-10s %-10s %12s %12s %12s %12s\n", "layer", "kind",
                "params", "fwd MF", "bww MF", "bwd MF");
    for (std::size_t i = 0; i < net.layer_count(); ++i) {
      dnn::Layer& layer = net.layer(i);
      const dnn::FlopCounts flops = layer.flops();
      if (layer.kind() == "activation" || layer.kind() == "reorder") {
        continue;  // sub-0.1% contributors, folded into the totals
      }
      std::printf("%-10s %-10s %12lld %12.1f %12.1f %12.1f\n",
                  layer.name().c_str(), layer.kind().c_str(),
                  static_cast<long long>(layer.param_count()),
                  flops.fwd / 1e6, flops.bwd_weights / 1e6,
                  flops.bwd_data / 1e6);
    }
    const std::int64_t params = net.param_count();
    const dnn::FlopCounts total = net.flops(/*skip_first_bwd_data=*/true);
    std::printf("%-10s %-10s %12lld\n", "TOTAL", "",
                static_cast<long long>(params));
    std::printf("\n  parameters: %lld (%.2f MB)\n",
                static_cast<long long>(params),
                static_cast<double>(params) * 4.0 / 1e6);
    std::printf("  flops/sample (fwd + bww + bwd, first-layer bwd "
                "skipped): %.2f Gflop\n",
                static_cast<double>(total.total()) / 1e9);
    if (config.name == "cosmoflow-128") {
      std::printf("  paper:      7.0M params, 28.15 MB, 69.33 Gflop "
                  "(deltas: %+.1f%% params, %+.1f%% flops)\n",
                  (static_cast<double>(params) / 7.04e6 - 1.0) * 100.0,
                  (static_cast<double>(total.total()) / 69.33e9 - 1.0) *
                      100.0);
    }
    std::printf("\n");
  }
  return 0;
}
