// Fig 6 / §VII-A reproduction: cosmological-parameter estimation
// accuracy.
//
// Trains the scaled CosmoFlow network on simulated universes at two
// concurrency levels (standing in for the paper's 2048- and 8192-node
// runs), evaluates the held-out test simulations, and prints the mean
// relative error per parameter plus predicted/true pairs (the Fig 6
// scatter, rendered as a table).
//
// Shape targets: the smaller-batch run estimates better; sigma8 (which
// directly controls the clumpiness amplitude the network sees) is well
// constrained; the estimates track the truths positively.
//
//   ./bench_fig6_params [--epochs=12] [--sims=32]
#include <cstdio>
#include <cstring>

#include "core/baseline.hpp"
#include "core/dataset_gen.hpp"
#include "core/metrics.hpp"
#include "core/trainer.hpp"

int main(int argc, char** argv) {
  using namespace cf;
  int epochs = 10;
  std::size_t sims = 48;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--epochs=", 9) == 0) {
      epochs = std::atoi(argv[i] + 9);
    }
    if (std::strncmp(argv[i], "--sims=", 7) == 0) {
      sims = static_cast<std::size_t>(std::atoll(argv[i] + 7));
    }
  }

  std::printf("=== bench_fig6_params: parameter-estimation accuracy "
              "===\n\n");

  runtime::ThreadPool pool;
  core::DatasetGenConfig gen;
  gen.simulations = sims;
  gen.sim.grid = {128, 256.0};  // mean count 8, the paper's density
  gen.sim.voxels = 64;
  gen.seed = 13;
  gen.val_fraction = 0.15;
  gen.test_fraction = 0.15;
  core::GeneratedDataset dataset = core::generate_dataset(gen, pool);
  std::printf("dataset: %zu train / %zu val / %zu test sub-volumes from "
              "%zu simulations\n\n",
              dataset.train.size(), dataset.val.size(),
              dataset.test.size(), sims);

  const auto clone_all = [](const std::vector<data::Sample>& samples) {
    std::vector<data::Sample> copy;
    copy.reserve(samples.size());
    for (const auto& s : samples) copy.push_back(s.clone());
    return copy;
  };
  data::InMemorySource test(clone_all(dataset.test));

  struct RunResult {
    std::vector<core::Prediction> predictions;
    double final_val = 0.0;
  };
  const auto run = [&](int ranks) {
    data::InMemorySource train_src(clone_all(dataset.train));
    data::InMemorySource val_src(clone_all(dataset.val));
    core::TrainerConfig config;
    config.nranks = ranks;
    config.epochs = epochs;
    config.base_lr = 2e-3;  // §III-B
    core::Trainer trainer(core::cosmoflow_scaled(32), train_src, val_src,
                          config);
    const auto stats = trainer.run();
    RunResult result;
    result.predictions = trainer.evaluate(test);
    result.final_val = stats.back().val_loss;
    return result;
  };

  const RunResult small = run(2);   // "2048-node" analogue
  const RunResult large = run(8);   // "8192-node" analogue

  const auto report = [](const char* label, const RunResult& r) {
    const auto rel = core::mean_relative_error(r.predictions);
    const auto corr = core::correlation(r.predictions);
    std::printf("%s: final val loss %.5f\n", label, r.final_val);
    std::printf("  mean relative error: OmegaM %.4f  sigma8 %.4f  "
                "ns %.4f\n",
                rel[0], rel[1], rel[2]);
    std::printf("  correlation:         OmegaM %.4f  sigma8 %.4f  "
                "ns %.4f\n",
                corr[0], corr[1], corr[2]);
  };
  report("small-batch run (2 ranks, '2048-node')", small);
  report("large-batch run (8 ranks, '8192-node')", large);

  // The classical comparator (§II-A): ridge regression on traditional
  // summary statistics — power-spectrum bins + PDF moments.
  {
    data::InMemorySource train_src(clone_all(dataset.train));
    core::BaselineConfig baseline_config;
    baseline_config.box_size = gen.sim.grid.box_size / 2.0;  // sub-volume
    core::SummaryStatBaseline baseline(baseline_config);
    baseline.fit(train_src, pool);
    const auto preds = baseline.evaluate(test, pool);
    const auto rel = core::mean_relative_error(preds);
    const auto corr = core::correlation(preds);
    std::printf("summary-statistics baseline (P(k) bins + moments, ridge "
                "regression):\n");
    std::printf("  mean relative error: OmegaM %.4f  sigma8 %.4f  "
                "ns %.4f\n",
                rel[0], rel[1], rel[2]);
    std::printf("  correlation:         OmegaM %.4f  sigma8 %.4f  "
                "ns %.4f\n",
                corr[0], corr[1], corr[2]);
  }

  std::printf("\npredicted vs true (small-batch run, first 10 test "
              "samples):\n");
  std::printf("%9s %9s %8s | %9s %9s %8s\n", "OmegaM^", "sigma8^", "ns^",
              "OmegaM", "sigma8", "ns");
  for (std::size_t i = 0;
       i < std::min<std::size_t>(10, small.predictions.size()); ++i) {
    const core::Prediction& p = small.predictions[i];
    std::printf("%9.4f %9.4f %8.4f | %9.4f %9.4f %8.4f\n", p.predicted[0],
                p.predicted[1], p.predicted[2], p.truth[0], p.truth[1],
                p.truth[2]);
  }

  std::printf("\npaper (full scale): 2048-node relative errors "
              "(0.0022, 0.0094, 0.0096); 8192-node "
              "(0.052, 0.014, 0.022) — the less-converged large-batch "
              "run is worse on every parameter.\n");
  const auto rel_small = core::mean_relative_error(small.predictions);
  const auto rel_large = core::mean_relative_error(large.predictions);
  int small_wins = 0;
  for (int i = 0; i < 3; ++i) small_wins += rel_small[i] <= rel_large[i];
  std::printf("here: small-batch run wins on %d of 3 parameters.\n",
              small_wins);
  return 0;
}
