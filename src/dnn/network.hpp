// Sequential network container: owns the layers, the inter-layer
// activation/difference buffers, and the flat parameter/gradient
// vector interface used by the optimizer, the gradient allreduce and
// checkpoints.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dnn/layer.hpp"

namespace cf::dnn {

/// Per-layer profile row (Table I).
struct LayerProfile {
  std::string name;
  std::string kind;
  runtime::TimeStats fwd;
  runtime::TimeStats bwd_data;
  runtime::TimeStats bwd_weights;
  FlopCounts flops;
};

class Network {
 public:
  Network() = default;

  /// Adds a layer; returns a reference for further configuration.
  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    add(std::move(layer));
    return ref;
  }

  void add(std::unique_ptr<Layer> layer);

  /// Plans every layer, allocating parameters and activation buffers.
  /// Must be called exactly once, after all layers are added.
  void finalize(const tensor::Shape& input_shape);
  bool finalized() const noexcept { return finalized_; }

  std::size_t layer_count() const noexcept { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }
  const Layer& layer(std::size_t i) const { return *layers_[i]; }

  const tensor::Shape& input_shape() const noexcept { return input_shape_; }
  const tensor::Shape& output_shape() const noexcept {
    return output_shape_;
  }

  /// Runs the forward pass; the returned view stays valid until the
  /// next forward() call.
  const tensor::Tensor& forward(const tensor::Tensor& input,
                                runtime::ThreadPool& pool);

  /// Runs the backward pass from the loss gradient w.r.t. the network
  /// output. Parameter gradients accumulate; the first layer's input
  /// difference signal is skipped (the input is data, §V-A workflow).
  /// Requires a preceding forward() on the same input.
  void backward(const tensor::Tensor& dloss, runtime::ThreadPool& pool);

  void zero_grads();

  std::vector<ParamView> params();
  std::int64_t param_count();
  std::size_t param_bytes() { return param_count() * sizeof(float); }

  /// Total per-sample flops; `skip_first_bwd_data` drops the unneeded
  /// first-layer data gradient (the default, matching the real
  /// workload).
  FlopCounts flops(bool skip_first_bwd_data = true) const;

  // Flat vector interface. Order is layer order, value tensor order.
  void copy_params_to(std::span<float> out);
  void set_params_from(std::span<const float> in);
  void copy_grads_to(std::span<float> out);
  void set_grads_from(std::span<const float> in);

  std::vector<LayerProfile> profiles() const;
  void reset_profiles();

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  std::vector<tensor::Tensor> activations_;   // output of each layer
  std::vector<tensor::Tensor> diffs_;         // d(loss)/d(activation)
  tensor::Tensor input_;
  tensor::Shape input_shape_;
  tensor::Shape output_shape_;
  bool finalized_ = false;
  bool forward_done_ = false;
};

}  // namespace cf::dnn
