#include "core/topology.hpp"

#include <stdexcept>

#include "dnn/activations.hpp"
#include "dnn/avgpool3d.hpp"
#include "dnn/conv3d.hpp"
#include "dnn/dense.hpp"
#include "dnn/flatten.hpp"
#include "dnn/graph_ops.hpp"

namespace cf::core {

TopologyConfig cosmoflow_128() {
  TopologyConfig config;
  config.name = "cosmoflow-128";
  config.input_dhw = 128;
  config.convs = {
      {16, 3, 1, true},    // 128^3 x 16 -> pool -> 64^3
      {32, 4, 1, true},    // 64^3 x 32 -> pool -> 32^3 (dominant layer)
      {64, 3, 1, true},    // 32^3 x 64 -> pool -> 16^3
      {128, 3, 2, false},  // -> 8^3 x 128
      {128, 3, 1, false},
      {128, 3, 2, false},  // -> 4^3 x 128
      {128, 3, 1, false},
  };
  config.dense_hidden = {656, 64};  // 4^3 * 128 = 8192 -> 656 -> 64 -> 3
  config.outputs = 3;
  return config;
}

TopologyConfig cosmoflow_64_baseline() {
  TopologyConfig config;
  config.name = "ravanbakhsh-64";
  config.input_dhw = 64;
  config.convs = {
      {16, 3, 1, true},    // 64^3 -> 32^3
      {32, 4, 1, true},    // -> 16^3
      {64, 3, 1, true},    // -> 8^3
      {128, 3, 2, false},  // -> 4^3
      {128, 3, 1, false},
      {128, 3, 2, false},  // -> 2^3
  };
  config.dense_hidden = {256, 64};  // 2^3 * 128 = 1024 -> 256 -> 64 -> 2
  config.outputs = 2;
  return config;
}

TopologyConfig cosmoflow_scaled(std::int64_t input_dhw) {
  TopologyConfig config;
  config.input_dhw = input_dhw;
  config.outputs = 3;
  switch (input_dhw) {
    case 64:
      config.name = "cosmoflow-64";
      config.convs = {
          {16, 3, 1, true},    // -> 32^3
          {32, 3, 1, true},    // -> 16^3
          {64, 3, 2, false},   // -> 8^3
          {64, 3, 2, false},   // -> 4^3
      };
      config.dense_hidden = {128, 32};  // 4^3 * 64 = 4096
      break;
    case 32:
      config.name = "cosmoflow-32";
      config.convs = {
          {16, 3, 1, true},   // -> 16^3
          {32, 3, 1, true},   // -> 8^3
          {64, 3, 2, false},  // -> 4^3
      };
      config.dense_hidden = {128, 32};  // 4^3 * 64 = 4096
      break;
    case 16:
      config.name = "cosmoflow-16";
      config.convs = {
          {16, 3, 1, true},   // -> 8^3
          {32, 3, 2, false},  // -> 4^3
      };
      config.dense_hidden = {64, 32};  // 4^3 * 32 = 2048
      break;
    case 8:
      config.name = "cosmoflow-8";
      config.convs = {
          {16, 3, 1, true},   // -> 4^3
          {32, 3, 1, false},
      };
      config.dense_hidden = {64, 32};  // 4^3 * 32 = 2048
      break;
    default:
      throw std::invalid_argument(
          "cosmoflow_scaled: supported inputs are 8, 16, 32, 64");
  }
  return config;
}

TopologyConfig topology_for_input(std::int64_t input_dhw) {
  return input_dhw == 128 ? cosmoflow_128() : cosmoflow_scaled(input_dhw);
}

TopologyConfig preset_topology(const std::string& name) {
  if (name == "cosmoflow-128") return cosmoflow_128();
  if (name == "ravanbakhsh-64") return cosmoflow_64_baseline();
  for (const std::int64_t dhw : {std::int64_t{8}, std::int64_t{16},
                                 std::int64_t{32}, std::int64_t{64}}) {
    if (name == "cosmoflow-" + std::to_string(dhw)) {
      return cosmoflow_scaled(dhw);
    }
  }
  throw std::invalid_argument(
      "preset_topology: unknown preset '" + name +
      "' (expected cosmoflow-128, cosmoflow-64, cosmoflow-32, "
      "cosmoflow-16, cosmoflow-8 or ravanbakhsh-64)");
}

ResidualTopologyConfig cosmoflow_residual() { return {}; }

tensor::Shape input_shape(const TopologyConfig& config) {
  return tensor::Shape{1, config.input_dhw, config.input_dhw,
                       config.input_dhw};
}

tensor::Shape input_shape(const ResidualTopologyConfig& config) {
  return tensor::Shape{1, config.input_dhw, config.input_dhw,
                       config.input_dhw};
}

dnn::Network build_residual_network(const ResidualTopologyConfig& config,
                                    std::uint64_t seed, bool fuse_eltwise,
                                    bool memplan) {
  if (config.width % 16 != 0 || config.width <= 0) {
    throw std::invalid_argument(
        "build_residual_network: width must be a positive multiple of 16");
  }
  if (config.input_dhw < 4 || config.input_dhw % 4 != 0) {
    throw std::invalid_argument(
        "build_residual_network: input_dhw must be a multiple of 4");
  }
  if (config.head_outputs.empty()) {
    throw std::invalid_argument(
        "build_residual_network: at least one output head");
  }
  using dnn::kGraphInput;
  using dnn::NodeId;
  dnn::Network net;
  net.set_fuse_eltwise(fuse_eltwise);
  net.set_memory_planning(memplan);
  const float slope = config.leaky_slope;
  std::vector<dnn::Conv3d*> convs;
  std::vector<dnn::Dense*> denses;
  auto conv = [&](const std::string& name, std::vector<NodeId> inputs,
                  std::int64_t in_c, std::int64_t out_c) {
    auto layer = std::make_unique<dnn::Conv3d>(
        name, dnn::Conv3dConfig{in_c, out_c, 3, 1, dnn::Padding::kSame});
    convs.push_back(layer.get());
    return net.add_node(std::move(layer), std::move(inputs));
  };
  auto dense = [&](const std::string& name, std::vector<NodeId> inputs,
                   std::int64_t in_f, std::int64_t out_f) {
    auto layer = std::make_unique<dnn::Dense>(name, in_f, out_f);
    denses.push_back(layer.get());
    return net.add_node(std::move(layer), std::move(inputs));
  };

  // Stem: two conv/act/pool stages, 1 -> 16 -> width channels.
  NodeId c1 = conv("conv1", {kGraphInput}, 1, 16);
  NodeId a1 = net.emplace_node<dnn::LeakyRelu>({c1}, "act1", slope);
  NodeId p1 = net.emplace_node<dnn::AvgPool3d>({a1}, "pool1",
                                               dnn::AvgPool3dConfig{2, 2});
  NodeId c2 = conv("conv2", {p1}, 16, config.width);
  NodeId a2 = net.emplace_node<dnn::LeakyRelu>({c2}, "act2", slope);
  NodeId p2 = net.emplace_node<dnn::AvgPool3d>({a2}, "pool2",
                                               dnn::AvgPool3dConfig{2, 2});

  // Residual block: conv -> act -> conv, summed with the block input.
  // The trailing activation consumes the Add node (which declines
  // fusion), so it stays a standalone graph node.
  NodeId r1 = conv("res_conv1", {p2}, config.width, config.width);
  NodeId ra = net.emplace_node<dnn::LeakyRelu>({r1}, "res_act1", slope);
  NodeId r2 = conv("res_conv2", {ra}, config.width, config.width);
  NodeId sum = net.emplace_node<dnn::Add>({p2, r2}, "res_add");
  NodeId res = net.emplace_node<dnn::LeakyRelu>({sum}, "res_act2", slope);

  // Shape-agnostic head: GlobalAvgPool -> dense trunk -> one dense
  // output node per head.
  NodeId gap = net.emplace_node<dnn::GlobalAvgPool>({res}, "gap");
  NodeId fc1 = dense("fc1", {gap}, config.width, config.trunk);
  NodeId fa1 = net.emplace_node<dnn::LeakyRelu>({fc1}, "fc_act1", slope);
  std::vector<NodeId> heads;
  for (std::size_t h = 0; h < config.head_outputs.size(); ++h) {
    heads.push_back(dense("head" + std::to_string(h + 1), {fa1},
                          config.trunk, config.head_outputs[h]));
  }
  net.set_heads(heads);
  net.finalize(input_shape(config));

  // Deterministic initialization, same streaming as build_network.
  std::uint64_t stream = 1;
  for (dnn::Conv3d* c : convs) {
    runtime::Rng rng(seed, stream++);
    c->init_he(rng);
  }
  for (dnn::Dense* d : denses) {
    runtime::Rng rng(seed, stream++);
    d->init_xavier(rng);
  }
  return net;
}

dnn::Network build_network(const TopologyConfig& config, std::uint64_t seed,
                           bool fuse_eltwise, bool memplan) {
  if (config.convs.empty() || config.outputs <= 0) {
    throw std::invalid_argument("build_network: malformed topology");
  }
  dnn::Network net;
  net.set_fuse_eltwise(fuse_eltwise);
  net.set_memory_planning(memplan);
  std::int64_t channels = 1;
  std::int64_t dhw = config.input_dhw;
  int index = 1;
  std::vector<dnn::Conv3d*> convs;
  for (const ConvSpec& spec : config.convs) {
    const std::string id = std::to_string(index++);
    auto& conv = net.emplace<dnn::Conv3d>(
        "conv" + id,
        dnn::Conv3dConfig{channels, spec.out_channels, spec.kernel,
                          spec.stride, dnn::Padding::kSame});
    convs.push_back(&conv);
    net.emplace<dnn::LeakyRelu>("act" + id, config.leaky_slope);
    dhw = (dhw + spec.stride - 1) / spec.stride;  // same padding
    if (spec.pool_after) {
      net.emplace<dnn::AvgPool3d>("pool" + id, dnn::AvgPool3dConfig{2, 2});
      if (dhw % 2 != 0) {
        throw std::invalid_argument(
            "build_network: pooled dimension must be even");
      }
      dhw /= 2;
    }
    channels = spec.out_channels;
  }
  net.emplace<dnn::Flatten>("flatten", channels);

  std::int64_t features = channels * dhw * dhw * dhw;
  int dense_index = 1;
  std::vector<dnn::Dense*> denses;
  for (const std::int64_t width : config.dense_hidden) {
    const std::string id = std::to_string(dense_index++);
    denses.push_back(&net.emplace<dnn::Dense>("fc" + id, features, width));
    net.emplace<dnn::LeakyRelu>("fc_act" + id, config.leaky_slope);
    features = width;
  }
  denses.push_back(&net.emplace<dnn::Dense>(
      "fc" + std::to_string(dense_index), features, config.outputs));

  net.finalize(input_shape(config));

  // Deterministic initialization: one RNG stream per layer.
  std::uint64_t stream = 1;
  for (dnn::Conv3d* conv : convs) {
    runtime::Rng rng(seed, stream++);
    conv->init_he(rng);
  }
  for (dnn::Dense* dense : denses) {
    runtime::Rng rng(seed, stream++);
    dense->init_xavier(rng);
  }
  return net;
}

}  // namespace cf::core
