// Unit tests for shapes, tensors, blocked-layout reorders and vector
// math.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "runtime/rng.hpp"
#include "tensor/layout.hpp"
#include "tensor/shape.hpp"
#include "tensor/tensor.hpp"
#include "tensor/tensor_ops.hpp"

namespace cf::tensor {
namespace {

TEST(Shape, BasicProperties) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s[2], 4);
  EXPECT_EQ(s.stride(0), 12);
  EXPECT_EQ(s.stride(2), 1);
  EXPECT_EQ(s.to_string(), "{2, 3, 4}");
}

TEST(Shape, EqualityAndRankZero) {
  EXPECT_EQ(Shape({1, 2}), Shape({1, 2}));
  EXPECT_NE(Shape({1, 2}), Shape({2, 1}));
  EXPECT_NE(Shape({1, 2}), Shape({1, 2, 1}));
  EXPECT_EQ(Shape{}.numel(), 1);
}

TEST(Shape, RejectsNegativeDims) {
  EXPECT_THROW(Shape({2, -1}), std::invalid_argument);
}

TEST(Shape, OutOfRangeAxisThrows) {
  const Shape s{2, 3};
  EXPECT_THROW(s.dim(2), std::out_of_range);
  EXPECT_THROW(s.stride(5), std::out_of_range);
}

TEST(ConvOutDim, ValidStrideAndPadding) {
  EXPECT_EQ(conv_out_dim(128, 3, 1, 2), 128);  // same, k3 s1
  EXPECT_EQ(conv_out_dim(128, 3, 1, 0), 126);  // valid
  EXPECT_EQ(conv_out_dim(16, 3, 2, 2), 8);     // same, s2
  EXPECT_EQ(conv_out_dim(64, 4, 1, 3), 64);    // same, even kernel
  EXPECT_THROW(conv_out_dim(2, 5, 1, 0), std::invalid_argument);
}

TEST(SamePad, KeepsCeilDivOutput) {
  for (const std::int64_t in : {7, 8, 16, 33, 64, 128}) {
    for (const std::int64_t k : {2, 3, 4, 5}) {
      for (const std::int64_t s : {1, 2, 3}) {
        const std::int64_t pad = same_pad_total(in, k, s);
        EXPECT_EQ(conv_out_dim(in, k, s, pad), (in + s - 1) / s)
            << "in=" << in << " k=" << k << " s=" << s;
      }
    }
  }
}

TEST(Tensor, ZeroInitialized) {
  Tensor t(Shape{3, 4});
  for (const float v : t.values()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, MultiIndexAccess) {
  Tensor t(Shape{2, 3, 4});
  t.at({1, 2, 3}) = 5.0f;
  EXPECT_FLOAT_EQ(t[1 * 12 + 2 * 4 + 3], 5.0f);
  EXPECT_THROW(t.at({2, 0, 0}), std::out_of_range);
  EXPECT_THROW(t.at({0, 0}), std::invalid_argument);
}

TEST(Tensor, CloneIsDeep) {
  Tensor t(Shape{4});
  t.fill(1.0f);
  Tensor copy = t.clone();
  copy[0] = 9.0f;
  EXPECT_FLOAT_EQ(t[0], 1.0f);
}

TEST(Tensor, ReshapePreservesData) {
  std::vector<float> values(12);
  std::iota(values.begin(), values.end(), 0.0f);
  Tensor t(Shape{3, 4}, values);
  t.reshape(Shape{2, 6});
  EXPECT_EQ(t.shape(), Shape({2, 6}));
  EXPECT_FLOAT_EQ(t.at({1, 1}), 7.0f);
  EXPECT_THROW(t.reshape(Shape{5}), std::invalid_argument);
}

TEST(Layout, BlockedChannelCount) {
  EXPECT_EQ(blocked_channel_count(1), 1);
  EXPECT_EQ(blocked_channel_count(16), 1);
  EXPECT_EQ(blocked_channel_count(17), 2);
  EXPECT_EQ(blocked_channel_count(64), 4);
}

class ActivationRoundTrip : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ActivationRoundTrip, PlainToBlockedAndBack) {
  const std::int64_t channels = GetParam();
  runtime::Rng rng(7, channels);
  Tensor plain(Shape{channels, 3, 4, 5});
  fill_normal(plain, rng, 0.0f, 1.0f);

  const Tensor blocked = to_blocked_activation(plain);
  EXPECT_EQ(blocked.shape(),
            Shape({blocked_channel_count(channels), 3, 4, 5, 16}));
  const Tensor back = from_blocked_activation(blocked, channels);
  EXPECT_EQ(back.shape(), plain.shape());
  EXPECT_EQ(max_abs_diff(back.values(), plain.values()), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(Channels, ActivationRoundTrip,
                         ::testing::Values<std::int64_t>(1, 3, 16, 17, 32,
                                                         48));

TEST(Layout, BlockedActivationElementPlacement) {
  // channel 17 (block 1, lane 1) of a {18, 1, 1, 2} tensor.
  Tensor plain(Shape{18, 1, 1, 2});
  plain.at({17, 0, 0, 1}) = 3.0f;
  const Tensor blocked = to_blocked_activation(plain);
  EXPECT_FLOAT_EQ(blocked.at({1, 0, 0, 1, 1}), 3.0f);
  // Padded lanes stay zero.
  EXPECT_FLOAT_EQ(blocked.at({1, 0, 0, 0, 5}), 0.0f);
}

class WeightRoundTrip
    : public ::testing::TestWithParam<std::pair<std::int64_t, std::int64_t>> {
};

TEST_P(WeightRoundTrip, PlainToBlockedAndBack) {
  const auto [oc, ic] = GetParam();
  runtime::Rng rng(8, static_cast<std::uint64_t>(oc * 100 + ic));
  Tensor plain(Shape{oc, ic, 3, 3, 3});
  fill_normal(plain, rng, 0.0f, 1.0f);

  const Tensor blocked = to_blocked_weights(plain);
  EXPECT_EQ(blocked.shape()[0], blocked_channel_count(oc));
  EXPECT_EQ(blocked.shape()[1], blocked_channel_count(ic));
  const Tensor back = from_blocked_weights(blocked, oc, ic);
  EXPECT_EQ(max_abs_diff(back.values(), plain.values()), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(
    Channels, WeightRoundTrip,
    ::testing::Values(std::pair<std::int64_t, std::int64_t>{16, 16},
                      std::pair<std::int64_t, std::int64_t>{32, 16},
                      std::pair<std::int64_t, std::int64_t>{16, 32},
                      std::pair<std::int64_t, std::int64_t>{48, 32},
                      std::pair<std::int64_t, std::int64_t>{8, 4},
                      std::pair<std::int64_t, std::int64_t>{20, 18}));

TEST(Layout, SmallIcWeightsRoundTrip) {
  runtime::Rng rng(9);
  Tensor plain(Shape{32, 1, 3, 3, 3});
  fill_normal(plain, rng, 0.0f, 1.0f);
  const Tensor blocked = to_blocked_weights_small_ic(plain);
  EXPECT_EQ(blocked.shape(), Shape({2, 3, 3, 3, 1, 16}));
  const Tensor back = from_blocked_weights_small_ic(blocked, 32, 1);
  EXPECT_EQ(max_abs_diff(back.values(), plain.values()), 0.0f);
}

TEST(Layout, SmallIcRejectsLargeIc) {
  Tensor plain(Shape{16, 16, 3, 3, 3});
  EXPECT_THROW(to_blocked_weights_small_ic(plain), std::invalid_argument);
}

TEST(TensorOps, AxpyAndScale) {
  std::vector<float> x{1.0f, 2.0f, 3.0f};
  std::vector<float> y{10.0f, 20.0f, 30.0f};
  axpy(2.0f, x, y);
  EXPECT_FLOAT_EQ(y[2], 36.0f);
  scale(y, 0.5f);
  EXPECT_FLOAT_EQ(y[0], 6.0f);
}

TEST(TensorOps, DotAndNorm) {
  std::vector<float> x{3.0f, 4.0f};
  EXPECT_DOUBLE_EQ(dot(x, x), 25.0);
  EXPECT_DOUBLE_EQ(l2_norm(x), 5.0);
  EXPECT_DOUBLE_EQ(sum(x), 7.0);
  EXPECT_FLOAT_EQ(max_abs(x), 4.0f);
}

TEST(TensorOps, SizeMismatchThrows) {
  std::vector<float> x{1.0f};
  std::vector<float> y{1.0f, 2.0f};
  EXPECT_THROW(axpy(1.0f, x, y), std::invalid_argument);
  EXPECT_THROW(dot(x, y), std::invalid_argument);
}

TEST(TensorOps, AllClose) {
  std::vector<float> x{1.0f, 2.0f};
  std::vector<float> y{1.0f + 1e-7f, 2.0f};
  EXPECT_TRUE(allclose(x, y));
  y[1] = 2.1f;
  EXPECT_FALSE(allclose(x, y));
}

TEST(TensorOps, FillRoutinesAreDeterministic) {
  runtime::Rng a(3, 1);
  runtime::Rng b(3, 1);
  Tensor ta(Shape{100});
  Tensor tb(Shape{100});
  fill_uniform(ta, a, -1.0f, 1.0f);
  fill_uniform(tb, b, -1.0f, 1.0f);
  EXPECT_EQ(max_abs_diff(ta.values(), tb.values()), 0.0f);
}

}  // namespace
}  // namespace cf::tensor
