#include "data/cfrecord.hpp"

#include <cstring>

#include "data/crc32.hpp"

namespace cf::data {

namespace {

template <typename T>
void append_le(std::vector<std::uint8_t>& out, T value) {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    out.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
  }
}

template <typename T>
T load_le(const std::uint8_t* bytes) {
  T value = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    value |= static_cast<T>(bytes[i]) << (8 * i);
  }
  return value;
}

}  // namespace

RecordWriter::RecordWriter(const std::string& path)
    : out_(path, std::ios::binary | std::ios::trunc), path_(path) {
  if (!out_) {
    throw std::runtime_error("RecordWriter: cannot open " + path);
  }
}

RecordWriter::~RecordWriter() {
  try {
    close();
  } catch (...) {
    // Destructor must not throw; explicit close() reports errors.
  }
}

void RecordWriter::write(std::span<const std::uint8_t> payload) {
  if (closed_) throw std::logic_error("RecordWriter: writer closed");
  std::vector<std::uint8_t> header;
  header.reserve(12);
  append_le<std::uint64_t>(header, payload.size());
  const std::uint32_t length_crc =
      mask_crc(crc32c({header.data(), 8}));
  append_le<std::uint32_t>(header, length_crc);

  out_.write(reinterpret_cast<const char*>(header.data()),
             static_cast<std::streamsize>(header.size()));
  out_.write(reinterpret_cast<const char*>(payload.data()),
             static_cast<std::streamsize>(payload.size()));
  std::vector<std::uint8_t> footer;
  append_le<std::uint32_t>(footer, mask_crc(crc32c(payload)));
  out_.write(reinterpret_cast<const char*>(footer.data()),
             static_cast<std::streamsize>(footer.size()));
  if (!out_) {
    throw std::runtime_error("RecordWriter: write failed for " + path_);
  }
  ++count_;
}

void RecordWriter::close() {
  if (closed_) return;
  closed_ = true;
  out_.flush();
  if (!out_) {
    throw std::runtime_error("RecordWriter: flush failed for " + path_);
  }
  out_.close();
}

RecordReader::RecordReader(const std::string& path)
    : in_(path, std::ios::binary), path_(path) {
  if (!in_) {
    throw std::runtime_error("RecordReader: cannot open " + path);
  }
}

bool RecordReader::read_one(std::vector<std::uint8_t>& payload) {
  std::uint8_t header[12];
  in_.read(reinterpret_cast<char*>(header), 12);
  if (in_.gcount() == 0 && in_.eof()) return false;  // clean EOF
  if (in_.gcount() != 12) {
    throw CorruptRecordError(path_ + ": truncated record header");
  }
  const std::uint64_t length = load_le<std::uint64_t>(header);
  const std::uint32_t length_crc = load_le<std::uint32_t>(header + 8);
  if (mask_crc(crc32c({header, 8})) != length_crc) {
    throw CorruptRecordError(path_ + ": length checksum mismatch");
  }
  payload.resize(length);
  if (length > 0) {
    in_.read(reinterpret_cast<char*>(payload.data()),
             static_cast<std::streamsize>(length));
    if (static_cast<std::uint64_t>(in_.gcount()) != length) {
      throw CorruptRecordError(path_ + ": truncated record payload");
    }
  }
  std::uint8_t footer[4];
  in_.read(reinterpret_cast<char*>(footer), 4);
  if (in_.gcount() != 4) {
    throw CorruptRecordError(path_ + ": truncated record footer");
  }
  if (mask_crc(crc32c(payload)) != load_le<std::uint32_t>(footer)) {
    throw CorruptRecordError(path_ + ": payload checksum mismatch");
  }
  return true;
}

bool RecordReader::read(std::vector<std::uint8_t>& payload) {
  return read_one(payload);
}

std::vector<std::uint64_t> RecordReader::build_index() {
  in_.clear();
  in_.seekg(0);
  std::vector<std::uint64_t> offsets;
  std::vector<std::uint8_t> payload;
  for (;;) {
    const std::uint64_t offset = static_cast<std::uint64_t>(in_.tellg());
    if (!read_one(payload)) break;
    offsets.push_back(offset);
  }
  in_.clear();
  in_.seekg(0);
  return offsets;
}

void RecordReader::read_at(std::uint64_t offset,
                           std::vector<std::uint8_t>& payload) {
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(offset));
  if (!in_ || !read_one(payload)) {
    throw CorruptRecordError(path_ + ": no record at offset " +
                             std::to_string(offset));
  }
}

}  // namespace cf::data
