#include "optim/larc_adam.hpp"

#include <algorithm>
#include <stdexcept>

#include "tensor/tensor_ops.hpp"

namespace cf::optim {

LarcAdam::LarcAdam(std::vector<dnn::ParamView> params, AdamConfig adam,
                   LarcConfig larc,
                   std::shared_ptr<const LrSchedule> schedule)
    : params_(std::move(params)),
      larc_(larc),
      schedule_(std::move(schedule)) {
  if (params_.empty()) {
    throw std::invalid_argument("LarcAdam: no parameters");
  }
  if (!schedule_) {
    throw std::invalid_argument("LarcAdam: schedule is null");
  }
  if (larc_.trust_coefficient <= 0.0 || larc_.fallback_ratio <= 0.0) {
    throw std::invalid_argument("LarcAdam: bad LARC constants");
  }
  std::size_t max_size = 0;
  states_.reserve(params_.size());
  for (const dnn::ParamView& p : params_) {
    if (p.value == nullptr || p.grad == nullptr ||
        p.value->shape() != p.grad->shape()) {
      throw std::invalid_argument("LarcAdam: malformed parameter view");
    }
    states_.emplace_back(p.value->size(), adam);
    max_size = std::max(max_size, p.value->size());
  }
  scaled_grad_.resize(max_size);
  last_local_rates_.resize(params_.size(), 0.0);
}

void LarcAdam::step() {
  const double eta_t = schedule_->lr(step_);
  ++step_;
  last_lr_ = eta_t;

  for (std::size_t group = 0; group < params_.size(); ++group) {
    const dnn::ParamView& p = params_[group];
    const std::size_t n = p.value->size();
    const double weight_norm = tensor::l2_norm(p.value->values());
    const double grad_norm = tensor::l2_norm(p.grad->values());

    double local_rate = larc_.fallback_ratio;
    if (weight_norm != 0.0 && grad_norm != 0.0) {
      local_rate = larc_.trust_coefficient * weight_norm / grad_norm;
    }
    if (larc_.clip) local_rate = std::min(local_rate, 1.0);
    last_local_rates_[group] = local_rate;

    const float scale = static_cast<float>(local_rate);
    const float* g = p.grad->data();
    for (std::size_t i = 0; i < n; ++i) scaled_grad_[i] = scale * g[i];

    states_[group].step(p.value->values(),
                        std::span<const float>(scaled_grad_.data(), n),
                        eta_t);
  }
}

}  // namespace cf::optim
