// Analytic + stochastic model of the striped parallel filesystems the
// paper measures (§IV-A/B, §VI-A).
//
// We cannot attach 248 Lustre OSTs or a DataWarp burst buffer to this
// machine, so Fig 4's I/O behaviour is reproduced by the bandwidth
// arithmetic of §VI-A. A filesystem's aggregate read supply grows
// sub-linearly with client count (contention, shared OSTs, small
// random reads):
//
//   S(n) = min(prefactor * n^gamma, aggregate_max)
//   per-node b(n) = min(node_max, S(n) / n)
//
// and per-read times fluctuate lognormally (the "wide range in
// bandwidth actually being delivered across the OSTs" the paper
// suspects). Presets are calibrated against the paper's published
// numbers: Cori Lustre delivers ~53 MB/s/node at 128 clients (179 ms
// step vs 129 ms compute) and ~42 MB/s/node at 1024 (sub-58%
// efficiency); the burst buffer's 1.7 TB/s never bottlenecks
// CosmoFlow's 62 MB/s/node demand below ~25k nodes.
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "runtime/rng.hpp"

namespace cf::iosim {

struct FilesystemSpec {
  std::string name;
  /// Aggregate supply S(n) = prefactor * n^gamma (GB/s), capped below.
  double prefactor_gbps = 1.0;
  double gamma = 1.0;
  double aggregate_max_gbps = 100.0;
  /// Per-node NIC ceiling.
  double node_max_gbps = 10.0;
  /// Lognormal sigma of per-read straggling.
  double straggler_sigma = 0.0;

  /// Cori Sonnexion Lustre, 64-OST striping (§IV-A): sub-linear supply
  /// calibrated to the 16% Lustre-vs-BB gap at 128 nodes and the <58%
  /// efficiency at 1024 the paper reports.
  static FilesystemSpec cori_lustre();
  /// Cori DataWarp burst buffer, 125-node striping: 1.7 TB/s peak,
  /// effectively linear supply — no knee at CosmoFlow's demand.
  static FilesystemSpec cori_datawarp();
  /// Piz Daint Sonexion 3000, 16-OST striping on a heavily shared
  /// system: calibrated to ~44% efficiency at 512 nodes.
  static FilesystemSpec piz_daint_lustre();
};

class FilesystemModel {
 public:
  explicit FilesystemModel(FilesystemSpec spec);

  const FilesystemSpec& spec() const noexcept { return spec_; }

  /// Aggregate read supply with `nodes` concurrent clients (GB/s).
  double aggregate_bandwidth_gbps(int nodes) const;

  /// Expected per-node read bandwidth (GB/s).
  double node_bandwidth_gbps(int nodes) const;

  /// Expected time to read `mbytes` on one of `nodes` clients.
  double read_seconds(int nodes, double mbytes) const;

  /// One stochastic read sample (lognormal straggling around the
  /// expectation, unit mean).
  double sample_read_seconds(int nodes, double mbytes,
                             runtime::Rng& rng) const;

 private:
  FilesystemSpec spec_;
  // Telemetry handles (obs registry), looked up once at construction.
  obs::Counter* reads_counter_ = nullptr;     // iosim/reads_sampled
  obs::Counter* stalls_counter_ = nullptr;    // iosim/straggler_stalls
  obs::Stat* stall_stat_ = nullptr;           // iosim/stall_seconds
};

/// Eq. 1 of the paper: the minimum per-node read bandwidth that hides
/// I/O behind compute, BWmin = b * S / t (MB/s).
double bw_min_mb_per_s(double batch_per_node, double sample_mbytes,
                       double step_seconds);

/// §VI-A: how many nodes one OST of the given bandwidth can feed.
double nodes_fed_per_ost(double ost_gbps, double bw_min_mb_per_s_value);

}  // namespace cf::iosim
