#include "data/cfrecord.hpp"

#include <cstring>
#include <filesystem>

#include "data/bytes.hpp"
#include "data/crc32.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define COSMOFLOW_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace cf::data {

namespace {

constexpr std::size_t kHeaderBytes = 12;  // u64 length + u32 masked crc
constexpr std::size_t kFooterBytes = 4;   // u32 masked payload crc

}  // namespace

RecordWriter::RecordWriter(const std::string& path)
    : out_(path, std::ios::binary | std::ios::trunc), path_(path) {
  if (!out_) {
    throw std::runtime_error("RecordWriter: cannot open " + path);
  }
}

RecordWriter::~RecordWriter() {
  try {
    close();
  } catch (...) {
    // Destructor must not throw; explicit close() reports errors.
  }
}

void RecordWriter::write(std::span<const std::uint8_t> payload) {
  if (closed_) throw std::logic_error("RecordWriter: writer closed");
  // Assemble the whole frame in scratch and issue a single write: one
  // ofstream call (and at most one syscall) per record instead of
  // three, and the buffer's capacity is reused across records.
  frame_.resize(kHeaderBytes + payload.size() + kFooterBytes);
  store_le<std::uint64_t>(frame_.data(), payload.size());
  store_le<std::uint32_t>(frame_.data() + 8,
                          mask_crc(crc32c({frame_.data(), 8})));
  if (!payload.empty()) {
    std::memcpy(frame_.data() + kHeaderBytes, payload.data(),
                payload.size());
  }
  store_le<std::uint32_t>(frame_.data() + kHeaderBytes + payload.size(),
                          mask_crc(crc32c(payload)));
  out_.write(reinterpret_cast<const char*>(frame_.data()),
             static_cast<std::streamsize>(frame_.size()));
  if (!out_) {
    throw std::runtime_error("RecordWriter: write failed for " + path_);
  }
  ++count_;
}

void RecordWriter::close() {
  if (closed_) return;
  closed_ = true;
  out_.flush();
  if (!out_) {
    throw std::runtime_error("RecordWriter: flush failed for " + path_);
  }
  out_.close();
}

RecordReader::RecordReader(const std::string& path, ReaderMode mode)
    : path_(path) {
#ifdef COSMOFLOW_HAVE_MMAP
  if (mode != ReaderMode::kStream) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
      struct stat st{};
      if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode)) {
        map_size_ = static_cast<std::size_t>(st.st_size);
        file_size_ = map_size_;
        if (map_size_ == 0) {
          // An empty shard is a valid mapped reader with no records
          // (mmap itself rejects zero-length maps).
          static const std::uint8_t kEmptyFile = 0;
          map_data_ = &kEmptyFile;
        } else {
          void* p = ::mmap(nullptr, map_size_, PROT_READ, MAP_PRIVATE,
                           fd, 0);
          if (p != MAP_FAILED) {
            map_data_ = static_cast<const std::uint8_t*>(p);
          }
        }
      }
      ::close(fd);
    }
    if (mapped()) return;
    if (mode == ReaderMode::kMmap) {
      throw std::runtime_error("RecordReader: cannot mmap " + path);
    }
  }
#else
  if (mode == ReaderMode::kMmap) {
    throw std::runtime_error(
        "RecordReader: mmap unsupported on this platform (" + path + ")");
  }
#endif
  in_.open(path, std::ios::binary);
  if (!in_) {
    throw std::runtime_error("RecordReader: cannot open " + path);
  }
  std::error_code ec;
  file_size_ = std::filesystem::file_size(path, ec);
  if (ec) {
    throw std::runtime_error("RecordReader: cannot stat " + path);
  }
}

RecordReader::~RecordReader() {
#ifdef COSMOFLOW_HAVE_MMAP
  if (map_data_ != nullptr && map_size_ > 0) {
    ::munmap(const_cast<std::uint8_t*>(map_data_), map_size_);
  }
#endif
}

std::span<const std::uint8_t> RecordReader::parse_mapped(
    std::uint64_t offset, std::uint64_t* next) const {
  if (offset > map_size_) {
    throw CorruptRecordError(path_ + ": no record at offset " +
                             std::to_string(offset));
  }
  const std::uint64_t remaining = map_size_ - offset;
  if (remaining < kHeaderBytes) {
    throw CorruptRecordError(path_ + ": truncated record header");
  }
  const std::uint8_t* frame = map_data_ + offset;
  const std::uint64_t length = load_le<std::uint64_t>(frame);
  const std::uint32_t length_crc = load_le<std::uint32_t>(frame + 8);
  if (mask_crc(crc32c({frame, 8})) != length_crc) {
    throw CorruptRecordError(path_ + ": length checksum mismatch");
  }
  // Bound the claimed length against the bytes actually present
  // before touching the payload — a crafted length field must fail as
  // corruption, never drive a huge read.
  if (remaining - kHeaderBytes < kFooterBytes ||
      length > remaining - kHeaderBytes - kFooterBytes) {
    throw CorruptRecordError(path_ + ": truncated record payload");
  }
  const std::span<const std::uint8_t> payload{frame + kHeaderBytes,
                                              length};
  const std::uint32_t payload_crc =
      load_le<std::uint32_t>(frame + kHeaderBytes + length);
  if (mask_crc(crc32c(payload)) != payload_crc) {
    throw CorruptRecordError(path_ + ": payload checksum mismatch");
  }
  if (next != nullptr) {
    *next = offset + kHeaderBytes + length + kFooterBytes;
  }
  return payload;
}

bool RecordReader::read_one(std::vector<std::uint8_t>& payload) {
  std::uint8_t header[kHeaderBytes];
  const std::uint64_t offset = static_cast<std::uint64_t>(in_.tellg());
  in_.read(reinterpret_cast<char*>(header), kHeaderBytes);
  if (in_.gcount() == 0 && in_.eof()) return false;  // clean EOF
  if (in_.gcount() != kHeaderBytes) {
    throw CorruptRecordError(path_ + ": truncated record header");
  }
  const std::uint64_t length = load_le<std::uint64_t>(header);
  const std::uint32_t length_crc = load_le<std::uint32_t>(header + 8);
  if (mask_crc(crc32c({header, 8})) != length_crc) {
    throw CorruptRecordError(path_ + ": length checksum mismatch");
  }
  // Validate the claimed length against the remaining file size before
  // resizing — a corrupt-but-checksum-matching length field must raise
  // CorruptRecordError, not attempt a multi-GB allocation.
  const std::uint64_t remaining =
      file_size_ > offset + kHeaderBytes
          ? file_size_ - offset - kHeaderBytes
          : 0;
  if (remaining < kFooterBytes || length > remaining - kFooterBytes) {
    throw CorruptRecordError(path_ + ": truncated record payload");
  }
  payload.resize(length);
  if (length > 0) {
    in_.read(reinterpret_cast<char*>(payload.data()),
             static_cast<std::streamsize>(length));
    if (static_cast<std::uint64_t>(in_.gcount()) != length) {
      throw CorruptRecordError(path_ + ": truncated record payload");
    }
  }
  std::uint8_t footer[kFooterBytes];
  in_.read(reinterpret_cast<char*>(footer), kFooterBytes);
  if (in_.gcount() != kFooterBytes) {
    throw CorruptRecordError(path_ + ": truncated record footer");
  }
  if (mask_crc(crc32c(payload)) != load_le<std::uint32_t>(footer)) {
    throw CorruptRecordError(path_ + ": payload checksum mismatch");
  }
  return true;
}

bool RecordReader::read(std::vector<std::uint8_t>& payload) {
  if (mapped()) {
    if (cursor_ >= map_size_) return false;
    std::uint64_t next = 0;
    const auto view = parse_mapped(cursor_, &next);
    payload.assign(view.begin(), view.end());
    cursor_ = next;
    return true;
  }
  return read_one(payload);
}

bool RecordReader::read_view(std::span<const std::uint8_t>* payload) {
  if (mapped()) {
    if (cursor_ >= map_size_) return false;
    std::uint64_t next = 0;
    *payload = parse_mapped(cursor_, &next);
    cursor_ = next;
    return true;
  }
  if (!read_one(scratch_)) return false;
  *payload = scratch_;
  return true;
}

std::vector<std::uint64_t> RecordReader::build_index() {
  std::vector<std::uint64_t> offsets;
  if (mapped()) {
    std::uint64_t offset = 0;
    while (offset < map_size_) {
      std::uint64_t next = 0;
      parse_mapped(offset, &next);  // validating scan, zero copies
      offsets.push_back(offset);
      offset = next;
    }
    cursor_ = 0;
    return offsets;
  }
  in_.clear();
  in_.seekg(0);
  std::vector<std::uint8_t> payload;
  for (;;) {
    const std::uint64_t offset = static_cast<std::uint64_t>(in_.tellg());
    if (!read_one(payload)) break;
    offsets.push_back(offset);
  }
  in_.clear();
  in_.seekg(0);
  return offsets;
}

void RecordReader::read_at(std::uint64_t offset,
                           std::vector<std::uint8_t>& payload) {
  if (mapped()) {
    if (offset >= map_size_) {
      throw CorruptRecordError(path_ + ": no record at offset " +
                               std::to_string(offset));
    }
    const auto view = parse_mapped(offset, nullptr);
    payload.assign(view.begin(), view.end());
    return;
  }
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(offset));
  if (!in_ || !read_one(payload)) {
    throw CorruptRecordError(path_ + ": no record at offset " +
                             std::to_string(offset));
  }
}

std::span<const std::uint8_t> RecordReader::view_at(
    std::uint64_t offset) const {
  if (!mapped()) {
    throw std::logic_error(
        "RecordReader::view_at: stream-mode reader has no mapped views");
  }
  if (offset >= map_size_) {
    throw CorruptRecordError(path_ + ": no record at offset " +
                             std::to_string(offset));
  }
  return parse_mapped(offset, nullptr);
}

}  // namespace cf::data
